// Command pacstack-cluster drives the multi-backend serving tier
// (internal/cluster) in two modes.
//
// Default mode runs the deterministic cluster soak: N modeled backends
// behind the breaker-aware router take seeded virtual-time traffic,
// optionally losing backends mid-run (-kill-at takes a comma-separated
// list of virtual cycles for a cascading-failure scenario). Each dead
// backend's checkpointed machines migrate to a survivor over the snap
// codec with re-seeded PA keys, and its in-flight requests replay
// exactly once — while the failover budget lasts; deaths beyond the
// budget abandon their orphans loudly. One seed produces a
// byte-identical report on any machine at any worker-pool width
// (-par) — run it twice and diff.
//
//	pacstack-cluster [-backends N] [-clients N] [-requests N]
//	                 [-workload NAME] [-schemes LIST] [-seed N]
//	                 [-chaos-rate F] [-chaos-kinds LIST] [-heal N]
//	                 [-workers N] [-queue N] [-retries N]
//	                 [-breaker-threshold N] [-checkpoint-every N]
//	                 [-checkpoint-crash F] [-kill-at CYCLES[,CYCLES...]]
//	                 [-kill-backend N[,N...]] [-migrate-latency CYCLES]
//	                 [-failover-budget N] [-par N]
//	                 [-json] [-check] [-telemetry-dump PATH]
//
// With -check, the exit status enforces the failover acceptance
// criteria: non-zero unless every request reached a terminal state
// (zero silent losses), migrated machines restored with re-seeded
// keys, no request replayed twice, and the restart budget was charged
// exactly once per absorbed kill.
//
// With -daemon, it serves the live fleet over HTTP instead:
//
//	POST /v1/run         route one workload through the cluster
//	GET  /v1/cluster     fleet status (liveness, breakers, machines)
//	POST /v1/kill?backend=N   kill a backend: drain, migrate, re-seed
//	GET  /metrics /events /v1/telemetry /healthz   as in pacstack-serve
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pacstack/internal/cluster"
	"pacstack/internal/harness"
	"pacstack/internal/par"
	"pacstack/internal/serve"
	"pacstack/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pacstack-cluster: ")
	backends := flag.Int("backends", 3, "fleet width")
	clients := flag.Int("clients", 8, "concurrent virtual clients (soak)")
	requests := flag.Int("requests", 25, "requests per client (soak)")
	workload := flag.String("workload", "chain", "workload name")
	schemes := flag.String("schemes", "pacstack", "comma-separated scheme list; requests round-robin across it")
	seed := flag.Int64("seed", 1, "cluster seed (same seed, byte-identical soak report)")
	chaosRate := flag.Float64("chaos-rate", 0.1, "per-attempt fault-injection probability")
	chaosKinds := flag.String("chaos-kinds", "", "comma-separated kinds: bitflip, retaddr, smash, register, sigframe (default retaddr,smash,sigframe)")
	heal := flag.Int("heal", 0, "supervised respawns per request after a detected kill")
	checkpointEvery := flag.Uint64("checkpoint-every", 0, "per-request snapshot commit interval in instructions (0: off)")
	checkpointCrash := flag.Float64("checkpoint-crash", 0, "per-request probability of a machine death mid-checkpoint")
	workers := flag.Int("workers", 2, "modelled workers per backend")
	queue := flag.Int("queue", 0, "modelled per-backend queue (0: 2*workers, <0: none)")
	retries := flag.Int("retries", 3, "client retry budget for sheds and breaker denials")
	brThreshold := flag.Int("breaker-threshold", 8, "per-backend breaker threshold (<0: disabled)")
	killAt := flag.String("kill-at", "", "comma-separated virtual cycles; one backend dies at each (empty: never)")
	killBackend := flag.String("kill-backend", "", "comma-separated victims aligned with -kill-at (missing or <0: seeded pick)")
	migrateLatency := flag.Uint64("migrate-latency", 5_000, "virtual cycles to ship snapshots and replay orphans")
	failoverBudget := flag.Int("failover-budget", 1, "backend deaths the cluster absorbs with migration")
	parWidth := flag.Int("par", 0, "precompute worker-pool width (0: GOMAXPROCS); the report must not depend on it")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of the table")
	check := flag.Bool("check", false, "exit non-zero unless the failover criteria hold (zero silent losses, keys re-seeded, budget charged once)")
	telemetryDump := flag.String("telemetry-dump", "", "write the run's telemetry (metrics + events) as JSON to this path")

	daemon := flag.Bool("daemon", false, "serve the live fleet over HTTP instead of running the soak")
	addr := flag.String("addr", ":8438", "listen address (daemon)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline (daemon; 0: none)")
	drainWait := flag.Duration("drain-timeout", 30*time.Second, "shutdown drain deadline (daemon)")
	flag.Parse()

	kinds, err := serve.ParseKinds(*chaosKinds)
	if err != nil {
		log.Fatal(err)
	}
	schemeList := strings.Split(*schemes, ",")
	killList, err := parseKills(*killAt, *killBackend)
	if err != nil {
		log.Fatal(err)
	}

	if *daemon {
		cl, err := cluster.New(cluster.Config{
			Backends: *backends,
			Seed:     *seed,
			Backend: serve.Config{
				Workers:         *workers,
				Queue:           *queue,
				Chaos:           *chaosRate > 0,
				ChaosRate:       *chaosRate,
				ChaosKinds:      kinds,
				Heal:            *heal,
				CheckpointEvery: *checkpointEvery,
				Timeout:         *timeout,
			},
			MachineSchemes:   schemeList,
			BreakerThreshold: *brThreshold,
			FailoverBudget:   *failoverBudget,
		})
		if err != nil {
			log.Fatal(err)
		}
		runDaemon(cl, *addr, *drainWait)
		return
	}

	if *parWidth > 0 {
		restore := par.SetWorkers(*parWidth)
		defer restore()
	}
	var tel *telemetry.Set
	if *telemetryDump != "" {
		tel = telemetry.New(telemetry.Options{})
	}
	rep, err := cluster.Soak(context.Background(), cluster.SoakConfig{
		Backends:         *backends,
		Clients:          *clients,
		Requests:         *requests,
		Workload:         *workload,
		Schemes:          schemeList,
		Seed:             *seed,
		ChaosRate:        *chaosRate,
		ChaosKinds:       kinds,
		Heal:             *heal,
		CheckpointEvery:  *checkpointEvery,
		CheckpointCrash:  *checkpointCrash,
		Workers:          *workers,
		Queue:            *queue,
		Retries:          *retries,
		BreakerThreshold: *brThreshold,
		Kills:            killList,
		MigrateLatency:   *migrateLatency,
		FailoverBudget:   *failoverBudget,
		Telemetry:        tel,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *telemetryDump != "" {
		f, err := os.Create(*telemetryDump)
		if err != nil {
			log.Fatal(err)
		}
		if err := tel.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(harness.ClusterSoak(rep))
	}

	if *check {
		if err := rep.Check(); err != nil {
			log.Printf("CHECK FAILED: %v", err)
			// Leave the full report on disk so the failure can be
			// diffed against a known-good run.
			if f, err := os.CreateTemp("", "pacstack-cluster-failed-*.json"); err == nil {
				enc := json.NewEncoder(f)
				enc.SetIndent("", "  ")
				if enc.Encode(rep) == nil {
					log.Printf("failing report written to %s", f.Name())
				}
				f.Close()
			}
			os.Exit(1)
		}
	}
}

// parseKills turns the -kill-at / -kill-backend comma lists into kill
// specs. Backends align positionally with the cycles; a missing or
// negative entry means a seeded pick from the then-alive backends.
func parseKills(ats, backends string) ([]cluster.KillSpec, error) {
	if strings.TrimSpace(ats) == "" {
		if strings.TrimSpace(backends) != "" {
			return nil, fmt.Errorf("-kill-backend without -kill-at")
		}
		return nil, nil
	}
	atParts := strings.Split(ats, ",")
	var beParts []string
	if strings.TrimSpace(backends) != "" {
		beParts = strings.Split(backends, ",")
		if len(beParts) > len(atParts) {
			return nil, fmt.Errorf("-kill-backend lists %d victims for %d kills", len(beParts), len(atParts))
		}
	}
	kills := make([]cluster.KillSpec, 0, len(atParts))
	for i, p := range atParts {
		at, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil || at == 0 {
			return nil, fmt.Errorf("-kill-at entry %d: want a positive virtual cycle, got %q", i, p)
		}
		spec := cluster.KillSpec{At: at, Backend: -1}
		if i < len(beParts) {
			b, err := strconv.Atoi(strings.TrimSpace(beParts[i]))
			if err != nil {
				return nil, fmt.Errorf("-kill-backend entry %d: %q", i, beParts[i])
			}
			spec.Backend = b
		}
		kills = append(kills, spec)
	}
	return kills, nil
}

// runDaemon serves the live fleet until SIGTERM/SIGINT, then drains
// every backend and exits with the fleet status logged.
func runDaemon(cl *cluster.Cluster, addr string, drainWait time.Duration) {
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           cl.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		st := cl.Status()
		log.Printf("listening on %s (%d backends alive)", addr, st.Alive)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("%s: draining fleet", sig)
	case err := <-errc:
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := cl.Drain(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	<-errc

	out, _ := json.MarshalIndent(cl.Status(), "", "  ")
	log.Printf("final cluster status:\n%s", out)
	log.Printf("drained cleanly")
}
