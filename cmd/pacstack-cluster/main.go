// Command pacstack-cluster drives the multi-backend serving tier
// (internal/cluster) in two modes.
//
// Default mode runs the deterministic cluster soak: N modeled backends
// behind the breaker-aware router take seeded virtual-time traffic,
// optionally losing backends mid-run (-kill-at takes a comma-separated
// list of virtual cycles for a cascading-failure scenario). Each dead
// backend's checkpointed machines migrate to a survivor over the snap
// codec with re-seeded PA keys, and its in-flight requests replay
// exactly once — while the failover budget lasts; deaths beyond the
// budget abandon their orphans loudly. One seed produces a
// byte-identical report on any machine at any worker-pool width
// (-par) — run it twice and diff.
//
//	pacstack-cluster [-backends N] [-clients N] [-requests N]
//	                 [-workload NAME] [-schemes LIST] [-seed N]
//	                 [-chaos-rate F] [-chaos-kinds LIST] [-heal N]
//	                 [-workers N] [-queue N] [-retries N]
//	                 [-breaker-threshold N] [-checkpoint-every N]
//	                 [-checkpoint-crash F] [-kill-at CYCLES[,CYCLES...]]
//	                 [-kill-backend N[,N...]] [-migrate-latency CYCLES]
//	                 [-failover-budget N] [-par N]
//	                 [-json] [-check] [-telemetry-dump PATH]
//
// With -check, the exit status enforces the failover acceptance
// criteria: non-zero unless every request reached a terminal state
// (zero silent losses), migrated machines restored with re-seeded
// keys, no request replayed twice, and the restart budget was charged
// exactly once per absorbed kill.
//
// With -traffic, the soak takes the serving tier's open-loop traffic
// model instead of the closed client loop: heavy-tailed arrival
// classes with per-class SLOs, optionally a network fault mesh
// (-mesh FILE or -mesh-gray N), and the chaos-mesh defense — hedged
// requests (-hedge), the cluster-global retry budget, outlier
// ejection, priority brownout and vertical core scaling
// (-vertical-max) — all switched on together by -resilient. The
// report gains the per-class SLO evaluation (-slo-report writes it as
// JSON) and stays byte-identical across -par widths.
//
// With -mesh-gate, it runs the canned gray-backend burst twice —
// naive, then resilient — and exits non-zero unless the naive run
// demonstrably blows at least one class SLO, the resilient run holds
// every class through the same faults, and the secondaries the
// resilient run spent stayed inside the configured retry budget.
//
// With -daemon, it serves the live fleet over HTTP instead:
//
//	POST /v1/run         route one workload through the cluster
//	GET  /v1/cluster     fleet status (liveness, breakers, machines)
//	POST /v1/kill?backend=N   kill a backend: drain, migrate, re-seed
//	GET  /v1/mesh        live link state (config + up/down ruling)
//	POST /v1/mesh        replace the live link state wholesale
//	GET  /metrics /events /v1/telemetry /healthz   as in pacstack-serve
//
// With -daemon -state-dir DIR, each backend recovers its prior
// incarnation's checkpoint from DIR/backend-N at startup, and a final
// boot-state checkpoint per alive backend is committed there after the
// SIGTERM drain — the pacstack-serve durability contract, per fleet
// member.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pacstack/internal/cluster"
	"pacstack/internal/harness"
	"pacstack/internal/mesh"
	"pacstack/internal/par"
	"pacstack/internal/resilience"
	"pacstack/internal/serve"
	"pacstack/internal/snap"
	"pacstack/internal/telemetry"
	"pacstack/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pacstack-cluster: ")
	backends := flag.Int("backends", 3, "fleet width")
	clients := flag.Int("clients", 8, "concurrent virtual clients (soak)")
	requests := flag.Int("requests", 25, "requests per client (soak)")
	workload := flag.String("workload", "chain", "workload name")
	schemes := flag.String("schemes", "pacstack", "comma-separated scheme list; requests round-robin across it")
	seed := flag.Int64("seed", 1, "cluster seed (same seed, byte-identical soak report)")
	chaosRate := flag.Float64("chaos-rate", 0.1, "per-attempt fault-injection probability")
	chaosKinds := flag.String("chaos-kinds", "", "comma-separated kinds: bitflip, retaddr, smash, register, sigframe (default retaddr,smash,sigframe)")
	heal := flag.Int("heal", 0, "supervised respawns per request after a detected kill")
	checkpointEvery := flag.Uint64("checkpoint-every", 0, "per-request snapshot commit interval in instructions (0: off)")
	checkpointCrash := flag.Float64("checkpoint-crash", 0, "per-request probability of a machine death mid-checkpoint")
	workers := flag.Int("workers", 2, "modelled workers per backend")
	queue := flag.Int("queue", 0, "modelled per-backend queue (0: 2*workers, <0: none)")
	retries := flag.Int("retries", 3, "client retry budget for sheds and breaker denials")
	brThreshold := flag.Int("breaker-threshold", 8, "per-backend breaker threshold (<0: disabled)")
	killAt := flag.String("kill-at", "", "comma-separated virtual cycles; one backend dies at each (empty: never)")
	killBackend := flag.String("kill-backend", "", "comma-separated victims aligned with -kill-at (missing or <0: seeded pick)")
	migrateLatency := flag.Uint64("migrate-latency", 5_000, "virtual cycles to ship snapshots and replay orphans")
	failoverBudget := flag.Int("failover-budget", 1, "backend deaths the cluster absorbs with migration")
	parWidth := flag.Int("par", 0, "precompute worker-pool width (0: GOMAXPROCS); the report must not depend on it")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of the table")
	check := flag.Bool("check", false, "exit non-zero unless the failover criteria hold (zero silent losses, keys re-seeded, budget charged once)")
	telemetryDump := flag.String("telemetry-dump", "", "write the run's telemetry (metrics + events) as JSON to this path")

	trafficMode := flag.String("traffic", "", "open-loop traffic model: default or burst (empty: closed client loop)")
	cores := flag.Int("cores", 0, "modelled cores per backend for the contention model (traffic mode; 0: default)")
	meshFile := flag.String("mesh", "", "JSON mesh.Config file with per-backend link faults (traffic mode)")
	meshGray := flag.Int("mesh-gray", -1, "put the canned gray link (slow, lossy, never dead) on this backend (traffic mode; <0: none)")
	hedge := flag.Bool("hedge", false, "hedge slow requests onto the next-ranked backend (traffic mode)")
	outlier := flag.Bool("outlier", false, "eject statistical-outlier backends from routing (traffic mode)")
	brownout := flag.Bool("brownout", false, "shed low-priority classes under overload (traffic mode)")
	verticalMax := flag.Int("vertical-max", 0, "vertically scale per-backend cores up to this cap (traffic mode; 0: off)")
	resilient := flag.Bool("resilient", false, "enable the full chaos-mesh defense: hedging, retry budget, outlier ejection, brownout")
	meshGate := flag.Bool("mesh-gate", false, "run the canned gray-backend burst naive vs resilient and grade the pair")
	sloReport := flag.String("slo-report", "", "write the per-class SLO evaluation as JSON to this path (traffic mode)")

	daemon := flag.Bool("daemon", false, "serve the live fleet over HTTP instead of running the soak")
	coldDaemon := flag.Bool("cold", false, "daemon backends boot a fresh machine per request instead of serving from warm snapshot-fork pools")
	addr := flag.String("addr", ":8438", "listen address (daemon)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline (daemon; 0: none)")
	drainWait := flag.Duration("drain-timeout", 30*time.Second, "shutdown drain deadline (daemon)")
	stateDir := flag.String("state-dir", "", "per-backend on-disk snapshot stores (daemon); recovered at startup, final checkpoints committed on graceful shutdown")
	flag.Parse()

	kinds, err := serve.ParseKinds(*chaosKinds)
	if err != nil {
		log.Fatal(err)
	}
	schemeList := strings.Split(*schemes, ",")
	killList, err := parseKills(*killAt, *killBackend)
	if err != nil {
		log.Fatal(err)
	}

	if *daemon {
		cl, err := cluster.New(cluster.Config{
			Backends: *backends,
			Seed:     *seed,
			Backend: serve.Config{
				Workers:         *workers,
				Queue:           *queue,
				Chaos:           *chaosRate > 0,
				ChaosRate:       *chaosRate,
				ChaosKinds:      kinds,
				Heal:            *heal,
				CheckpointEvery: *checkpointEvery,
				Timeout:         *timeout,
				Warm:            !*coldDaemon,
			},
			MachineSchemes:   schemeList,
			BreakerThreshold: *brThreshold,
			FailoverBudget:   *failoverBudget,
		})
		if err != nil {
			log.Fatal(err)
		}
		runDaemon(cl, *addr, *drainWait, *stateDir)
		return
	}

	if *parWidth > 0 {
		restore := par.SetWorkers(*parWidth)
		defer restore()
	}

	if *meshGate {
		os.Exit(runMeshGate(*seed, *asJSON))
	}

	cfg := cluster.SoakConfig{
		Backends:         *backends,
		Clients:          *clients,
		Requests:         *requests,
		Workload:         *workload,
		Schemes:          schemeList,
		Seed:             *seed,
		ChaosRate:        *chaosRate,
		ChaosKinds:       kinds,
		Heal:             *heal,
		CheckpointEvery:  *checkpointEvery,
		CheckpointCrash:  *checkpointCrash,
		Workers:          *workers,
		Queue:            *queue,
		Cores:            *cores,
		Retries:          *retries,
		BreakerThreshold: *brThreshold,
		Kills:            killList,
		MigrateLatency:   *migrateLatency,
		FailoverBudget:   *failoverBudget,
	}

	if *trafficMode != "" {
		var model traffic.Model
		switch *trafficMode {
		case "default":
			model = traffic.Default(*seed)
		case "burst":
			model = traffic.BurstScenario(*seed)
		default:
			log.Fatalf("unknown -traffic mode %q (want default or burst)", *trafficMode)
		}
		cfg.Traffic = &model
	}
	meshCfg, err := loadMesh(*meshFile, *meshGray)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Mesh = meshCfg
	if *resilient {
		// The canned defense: the same shape the mesh gate's resilient
		// arm runs, minus its fleet sizing.
		gate := cluster.MeshGateConfig(*seed, true)
		cfg.Hedge = gate.Hedge
		cfg.RetryBudget = gate.RetryBudget
		cfg.Outlier = gate.Outlier
		cfg.Brownout = gate.Brownout
	}
	if *hedge && cfg.Hedge == nil {
		cfg.Hedge = &cluster.HedgeConfig{}
	}
	if *outlier && cfg.Outlier == nil {
		cfg.Outlier = &cluster.OutlierConfig{}
	}
	if *brownout && cfg.Brownout == nil {
		cfg.Brownout = &cluster.BrownoutConfig{}
	}
	if *verticalMax > 0 {
		cfg.VerticalAdaptive = &resilience.AIMDConfig{Max: *verticalMax}
	}

	var tel *telemetry.Set
	if *telemetryDump != "" {
		tel = telemetry.New(telemetry.Options{})
	}
	cfg.Telemetry = tel
	rep, err := cluster.Soak(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *sloReport != "" {
		if rep.SLO == nil {
			log.Fatal("-slo-report needs a traffic-mode run (-traffic)")
		}
		out, err := json.MarshalIndent(rep.SLO, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*sloReport, append(out, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	if *telemetryDump != "" {
		f, err := os.Create(*telemetryDump)
		if err != nil {
			log.Fatal(err)
		}
		if err := tel.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(harness.ClusterSoak(rep))
	}

	if *check {
		if err := rep.Check(); err != nil {
			log.Printf("CHECK FAILED: %v", err)
			// Leave the full report on disk so the failure can be
			// diffed against a known-good run.
			if f, err := os.CreateTemp("", "pacstack-cluster-failed-*.json"); err == nil {
				enc := json.NewEncoder(f)
				enc.SetIndent("", "  ")
				if enc.Encode(rep) == nil {
					log.Printf("failing report written to %s", f.Name())
				}
				f.Close()
			}
			os.Exit(1)
		}
	}
}

// parseKills turns the -kill-at / -kill-backend comma lists into kill
// specs. Backends align positionally with the cycles; a missing or
// negative entry means a seeded pick from the then-alive backends.
func parseKills(ats, backends string) ([]cluster.KillSpec, error) {
	if strings.TrimSpace(ats) == "" {
		if strings.TrimSpace(backends) != "" {
			return nil, fmt.Errorf("-kill-backend without -kill-at")
		}
		return nil, nil
	}
	atParts := strings.Split(ats, ",")
	var beParts []string
	if strings.TrimSpace(backends) != "" {
		beParts = strings.Split(backends, ",")
		if len(beParts) > len(atParts) {
			return nil, fmt.Errorf("-kill-backend lists %d victims for %d kills", len(beParts), len(atParts))
		}
	}
	kills := make([]cluster.KillSpec, 0, len(atParts))
	for i, p := range atParts {
		at, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil || at == 0 {
			return nil, fmt.Errorf("-kill-at entry %d: want a positive virtual cycle, got %q", i, p)
		}
		spec := cluster.KillSpec{At: at, Backend: -1}
		if i < len(beParts) {
			b, err := strconv.Atoi(strings.TrimSpace(beParts[i]))
			if err != nil {
				return nil, fmt.Errorf("-kill-backend entry %d: %q", i, beParts[i])
			}
			spec.Backend = b
		}
		kills = append(kills, spec)
	}
	return kills, nil
}

// loadMesh builds the soak's mesh config from the flags: a JSON file,
// the canned gray link on one backend, or both (the gray link wins a
// collision on its index). Nil when neither flag is set.
func loadMesh(file string, gray int) (*mesh.Config, error) {
	var cfg mesh.Config
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			return nil, fmt.Errorf("mesh file %s: %w", file, err)
		}
	}
	if gray >= 0 {
		if cfg.Links == nil {
			cfg.Links = map[int]mesh.LinkConfig{}
		}
		cfg.Links[gray] = mesh.Gray()
	}
	if len(cfg.Links) == 0 {
		return nil, nil
	}
	return &cfg, nil
}

// runMeshGate runs the canned gray-backend burst scenario twice —
// naive, then with the full chaos-mesh defense — and grades the pair.
// The robustness criterion: the naive fleet must demonstrably blow at
// least one class SLO under the gray link and the burst, the resilient
// fleet must hold every class through the same faults with zero hedge
// key-sharing violations, and the secondaries it spent (hedges +
// retries) must stay inside the configured retry budget. A gray link
// too weak to hurt the naive fleet proves nothing, so that also fails
// the gate. Returns the process exit code.
func runMeshGate(seed int64, asJSON bool) int {
	run := func(resilient bool) *cluster.ClusterReport {
		rep, err := cluster.Soak(context.Background(), cluster.MeshGateConfig(seed, resilient))
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}
	naive := run(false)
	res := run(true)

	if asJSON {
		out, err := json.MarshalIndent(map[string]*traffic.SLOReport{
			"naive": naive.SLO, "resilient": res.SLO,
		}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(harness.ClusterSoak(naive))
		fmt.Println()
		fmt.Print(harness.ClusterSoak(res))
		fmt.Println()
	}

	code := 0
	bad := func(format string, args ...any) {
		log.Printf("MESH GATE FAILED: "+format, args...)
		code = 1
	}
	if !naive.Graceful() || !res.Graceful() {
		bad("a run was not graceful (naive %v, resilient %v)", naive.Graceful(), res.Graceful())
	}
	if naive.SLO == nil || res.SLO == nil {
		bad("missing SLO report")
		return 1
	}
	if naive.SLO.Pass {
		bad("the naive fleet survived the gray backend — the scenario exercises nothing")
	}
	if !res.SLO.Pass {
		var failed []string
		for _, c := range res.SLO.Classes {
			if !c.Pass {
				failed = append(failed, fmt.Sprintf("%s (%s)", c.Class, strings.Join(c.Violations, "; ")))
			}
		}
		bad("resilient fleet out of SLO: %s", strings.Join(failed, ", "))
	}
	if err := res.Check(); err != nil {
		bad("resilient acceptance: %v", err)
	}
	if res.Hedges == 0 {
		bad("the resilient fleet never hedged — the pass is not its doing")
	}
	if res.HedgeKeyViolations > 0 {
		bad("%d hedged pair(s) shared PA keys", res.HedgeKeyViolations)
	}
	if res.Budget == nil {
		bad("resilient run carried no retry budget")
	} else if res.Budget.Granted > res.BudgetBound {
		bad("retry amplification %d secondaries exceeds the budget bound %d", res.Budget.Granted, res.BudgetBound)
	}
	if code == 0 {
		var naiveFailed []string
		for _, c := range naive.SLO.Classes {
			if !c.Pass {
				naiveFailed = append(naiveFailed, c.Class)
			}
		}
		log.Printf("mesh gate OK: naive fleet violates SLO for %s behind the gray link; resilient fleet (hedges %d won %d, browned %d, ejections %d, secondaries %d <= bound %d) holds every class",
			strings.Join(naiveFailed, ","), res.Hedges, res.HedgeWins, res.BrownedOut, res.Ejections, res.Budget.Granted, res.BudgetBound)
	}
	return code
}

// runDaemon serves the live fleet until SIGTERM/SIGINT, then drains
// every backend and exits with the fleet status logged. With stateDir,
// each backend recovers its prior checkpoint from DIR/backend-N before
// traffic and commits a final one after the drain — the pacstack-serve
// durability contract applied per fleet member.
func runDaemon(cl *cluster.Cluster, addr string, drainWait time.Duration, stateDir string) {
	stores := make([]*snap.Store, cl.Size())
	if stateDir != "" {
		for i := 0; i < cl.Size(); i++ {
			dir := filepath.Join(stateDir, fmt.Sprintf("backend-%d", i))
			fs, err := snap.NewDirFS(dir)
			if err != nil {
				log.Fatal(err)
			}
			st := snap.NewStore(fs)
			st.Tel = snap.NewTelemetry(cl.Telemetry().Registry())
			_, _, rep, err := st.Recover()
			switch {
			case errors.Is(err, snap.ErrNoSnapshot):
				log.Printf("state dir %s: no prior checkpoint (fresh start)", dir)
			case err != nil:
				log.Fatalf("state dir %s: recovery failed: %v", dir, err)
			default:
				log.Printf("state dir %s: recovered checkpoint seq %d (%d snapshot(s), %d anomalies)",
					dir, rep.RestoredSeq, len(rep.Snapshots), len(rep.Anomalies))
				for _, a := range rep.Anomalies {
					log.Printf("state dir anomaly: %s %s: %s", a.Kind, a.Name, a.Detail)
				}
			}
			stores[i] = st
		}
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           cl.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		st := cl.Status()
		log.Printf("listening on %s (%d backends alive)", addr, st.Alive)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("%s: draining fleet", sig)
	case err := <-errc:
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := cl.Drain(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	<-errc

	// Final checkpoints only after the drain, and only for backends
	// that are still alive — a killed backend's machines migrated away
	// and its durable record belongs to the survivor that took them.
	if stateDir != "" {
		for i := 0; i < cl.Size(); i++ {
			srv, alive := cl.Server(i)
			if !alive {
				log.Printf("backend %d: dead, no final checkpoint", i)
				continue
			}
			n, err := srv.FinalCheckpoint(stores[i])
			if err != nil {
				log.Printf("backend %d: final checkpoint incomplete after %d commit(s): %v", i, n, err)
			} else {
				log.Printf("backend %d: final checkpoint, %d scheme snapshot(s) committed", i, n)
			}
		}
	}

	out, _ := json.MarshalIndent(cl.Status(), "", "  ")
	log.Printf("final cluster status:\n%s", out)
	log.Printf("drained cleanly")
}
