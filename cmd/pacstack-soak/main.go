// Command pacstack-soak drives the deterministic chaos soak: a
// discrete-event simulation of concurrent clients hammering the
// serving layer (internal/serve) in virtual time, with seeded fault
// injection, client retry/backoff, per-scheme circuit breaking and
// bounded-queue load shedding. Request outcomes are precomputed on a
// real parallel worker pool; the traffic replay is serial and
// virtual-timed, so one seed produces a byte-identical report on any
// machine — run it twice and diff.
//
// Usage:
//
//	pacstack-soak [-clients N] [-requests N] [-workload NAME]
//	              [-schemes LIST] [-seed N] [-chaos-rate F]
//	              [-chaos-kinds LIST] [-heal N] [-workers N] [-queue N]
//	              [-retries N] [-breaker-threshold N]
//	              [-checkpoint-every N] [-checkpoint-crash F]
//	              [-traffic default|burst] [-traffic-rate F]
//	              [-traffic-horizon N] [-traffic-hostile]
//	              [-burst-factor F] [-cores N]
//	              [-adaptive] [-adaptive-max N] [-adaptive-step N]
//	              [-adaptive-interval N] [-adaptive-target N]
//	              [-boot-model cold|warm] [-warm-gate]
//	              [-slo-report PATH] [-traffic-gate] [-par N]
//	              [-json] [-check] [-telemetry-dump PATH]
//	              [-cpuprofile FILE] [-memprofile FILE]
//
// With -traffic, the closed-loop client model is replaced by the
// open-loop heavy-tail replay (internal/traffic): a seeded
// diurnal/burst arrival stream over a production-shaped cost mixture,
// per-class SLO evaluation appended to the report, and — with
// -adaptive — the clock-free AIMD controller resizing the admission
// limit in virtual time. -clients/-requests/-workload are ignored in
// this mode; the model decides arrivals and workloads.
//
// With -traffic-gate, the canned burst scenario (traffic.BurstScenario)
// runs twice with the other flags' parameters — once static, once
// adaptive — and the exit status is non-zero unless the adaptive run
// holds every class SLO where the static run demonstrably fails. This
// is the check.sh overload-control criterion.
//
// With -boot-model, machine acquisition is charged in virtual time:
// "cold" prices every execution at the modeled full-boot cost, "warm"
// serves from the snapshot-fork pools (internal/pool) and prices the
// restore. The report gains a requests/virtual-second line either way.
// Outcomes are identical across models (warm restores replay the cold
// entropy stream), so the ratio isolates acquisition cost.
//
// With -warm-gate, the warm-pool acceptance gate runs: the closed-loop
// soak twice (cold model, then warm) with breakers and shedding
// disabled — outcomes must be identical and warm throughput at least
// 10x cold — then the boot-dominated open-loop fork-server scenario
// twice, where warm must clear 20x cold requests/virtual-second. Zero
// §4.3 key violations are required throughout. Non-zero exit on any
// miss.
//
// With -check, the exit status enforces the robustness acceptance
// criteria: non-zero if any silent corruption was recorded or the run
// was not graceful (some request never reached a terminal state). On
// failure the full report is written to a temp file and its path
// printed, so a failing gate leaves something to diff.
//
// With -telemetry-dump, the run's full telemetry (virtual-time
// metrics registry plus security event ring) is written to PATH as
// JSON — byte-identical for one seed, which is what the check.sh
// double-run cmp gate rests on.
//
// The -cpuprofile / -memprofile flags (same contract as
// pacstack-bench) write pprof profiles of the run, so the execution
// engine can be profiled under serving load — outcome precompute,
// checkpointing and chaos included — not just under the bare
// benchmark loop.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"pacstack/internal/harness"
	"pacstack/internal/par"
	"pacstack/internal/resilience"
	"pacstack/internal/serve"
	"pacstack/internal/telemetry"
	"pacstack/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pacstack-soak: ")
	clients := flag.Int("clients", 8, "concurrent virtual clients")
	requests := flag.Int("requests", 25, "requests per client")
	workload := flag.String("workload", "chain", "workload name")
	schemes := flag.String("schemes", "pacstack", "comma-separated scheme list; requests round-robin across it")
	seed := flag.Int64("seed", 1, "soak seed (same seed, byte-identical report)")
	chaosRate := flag.Float64("chaos-rate", 0.1, "per-attempt fault-injection probability")
	chaosKinds := flag.String("chaos-kinds", "", "comma-separated kinds: bitflip, retaddr, smash, register, sigframe (default retaddr,smash,sigframe)")
	heal := flag.Int("heal", 0, "supervised respawns per request after a detected kill")
	checkpointEvery := flag.Uint64("checkpoint-every", 0, "per-request snapshot commit interval in instructions (0: off)")
	checkpointCrash := flag.Float64("checkpoint-crash", 0, "per-request probability of a machine death mid-checkpoint")
	workers := flag.Int("workers", 4, "modelled server workers")
	queue := flag.Int("queue", 0, "modelled admission queue (0: 2*workers, <0: none)")
	retries := flag.Int("retries", 3, "client retry budget for sheds and breaker denials")
	brThreshold := flag.Int("breaker-threshold", 8, "breaker threshold in the traffic model (<0: disabled)")
	trafficMode := flag.String("traffic", "", "open-loop traffic model: default or burst (empty: closed-loop clients)")
	trafficRate := flag.Float64("traffic-rate", 0, "override the model's base arrival rate per kcycle (0: model default)")
	trafficHorizon := flag.Uint64("traffic-horizon", 0, "override the model's horizon in virtual cycles (0: model default)")
	trafficHostile := flag.Bool("traffic-hostile", false, "add the hostile classes (slow clients, poison requests) to the model")
	burstFactor := flag.Float64("burst-factor", 0, "override every burst overlay's rate multiplier (0: model default)")
	cores := flag.Int("cores", 0, "modelled host cores bounding the contention penalty in traffic mode (0: workers)")
	adaptive := flag.Bool("adaptive", false, "resize the admission limit with the AIMD controller (traffic mode)")
	adaptiveMax := flag.Int("adaptive-max", 48, "AIMD limit ceiling")
	adaptiveStep := flag.Int("adaptive-step", 4, "AIMD additive-increase step")
	adaptiveInterval := flag.Uint64("adaptive-interval", 0, "AIMD control-window length in virtual cycles (0: 10000)")
	adaptiveTarget := flag.Uint64("adaptive-target", 0, "AIMD service-dilation congestion target in cycles (0: 1048576)")
	bootModel := flag.String("boot-model", "", "machine-acquisition cost model: cold or warm (empty: acquisition-free legacy model)")
	warmGate := flag.Bool("warm-gate", false, "run the warm-vs-cold acceptance gate; exit non-zero unless warm clears the throughput floors with identical outcomes and zero key violations")
	sloReport := flag.String("slo-report", "", "write the SLO report as JSON to this path (traffic mode)")
	trafficGate := flag.Bool("traffic-gate", false, "run the canned burst scenario static then adaptive; exit non-zero unless adaptive holds every SLO where static fails")
	parWidth := flag.Int("par", 0, "precompute worker-pool width (0: GOMAXPROCS); the report must not depend on it")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of the table")
	check := flag.Bool("check", false, "exit non-zero on silent corruption or a non-graceful run")
	telemetryDump := flag.String("telemetry-dump", "", "write the run's telemetry (metrics + events) as JSON to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *parWidth > 0 {
		restore := par.SetWorkers(*parWidth)
		defer restore()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	kinds, err := serve.ParseKinds(*chaosKinds)
	if err != nil {
		log.Fatal(err)
	}

	var aimd *resilience.AIMDConfig
	if *adaptive || *trafficGate {
		aimd = &resilience.AIMDConfig{
			Max:           *adaptiveMax,
			Step:          *adaptiveStep,
			Interval:      *adaptiveInterval,
			LatencyTarget: *adaptiveTarget,
		}
	}
	baseCfg := serve.SoakConfig{
		Clients:          *clients,
		Requests:         *requests,
		Workload:         *workload,
		Schemes:          strings.Split(*schemes, ","),
		Seed:             *seed,
		ChaosRate:        *chaosRate,
		ChaosKinds:       kinds,
		Heal:             *heal,
		CheckpointEvery:  *checkpointEvery,
		CheckpointCrash:  *checkpointCrash,
		Workers:          *workers,
		Queue:            *queue,
		Retries:          *retries,
		BreakerThreshold: *brThreshold,
		Cores:            *cores,
		BootModel:        *bootModel,
	}

	if *trafficGate {
		os.Exit(runTrafficGate(baseCfg, aimd, *asJSON))
	}
	if *warmGate {
		os.Exit(runWarmGate(baseCfg, *asJSON))
	}

	if *trafficMode != "" {
		var model traffic.Model
		switch *trafficMode {
		case "default":
			model = traffic.Default(*seed)
		case "burst":
			model = traffic.BurstScenario(*seed)
		default:
			log.Fatalf("unknown -traffic mode %q (want default or burst)", *trafficMode)
		}
		if *trafficHostile {
			have := map[string]bool{}
			for _, c := range model.Classes {
				have[c.Name] = true
			}
			for _, c := range traffic.HostileClasses() {
				if !have[c.Name] {
					model.Classes = append(model.Classes, c)
				}
			}
		}
		if *trafficRate > 0 {
			model.Rate = *trafficRate
		}
		if *trafficHorizon > 0 {
			model.Horizon = *trafficHorizon
		}
		if *burstFactor > 0 {
			for i := range model.Bursts {
				model.Bursts[i].Factor = *burstFactor
			}
		}
		baseCfg.Traffic = &model
		if *adaptive {
			baseCfg.Adaptive = aimd
		}
	}

	var tel *telemetry.Set
	if *telemetryDump != "" {
		tel = telemetry.New(telemetry.Options{})
	}
	baseCfg.Telemetry = tel
	rep, err := serve.Soak(context.Background(), baseCfg)
	if err != nil {
		log.Fatal(err)
	}

	if *sloReport != "" {
		if rep.SLO == nil {
			log.Fatal("-slo-report needs a traffic-mode run (-traffic)")
		}
		out, err := json.MarshalIndent(rep.SLO, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*sloReport, append(out, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	if *telemetryDump != "" {
		f, err := os.Create(*telemetryDump)
		if err != nil {
			log.Fatal(err)
		}
		if err := tel.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(harness.Soak(rep))
	}

	if *check {
		fail := func(format string, args ...any) {
			log.Printf(format, args...)
			// Leave the full report on disk so the failure can be
			// diffed against a known-good run.
			if f, err := os.CreateTemp("", "pacstack-soak-failed-*.json"); err == nil {
				enc := json.NewEncoder(f)
				enc.SetIndent("", "  ")
				if enc.Encode(rep) == nil {
					log.Printf("failing report written to %s", f.Name())
				}
				f.Close()
			}
			os.Exit(1)
		}
		if rep.Silent != 0 {
			fail("CHECK FAILED: %d silent corruption(s)", rep.Silent)
		}
		if !rep.Graceful() {
			fail("CHECK FAILED: run not graceful (%d in flight, %d unaccounted)",
				rep.InFlightAtEnd, rep.Issued-(rep.OK+rep.Detected+rep.Silent+rep.GaveUp))
		}
	}
}

// runWarmGate grades the warm-pool subsystem against the cold-boot
// baseline at one seed. Two comparisons:
//
//   - Closed loop, breakers and shedding disabled (retry dynamics
//     silenced so the DES terminals are a pure function of the
//     precomputed outcomes): the cold-model and warm-model runs must
//     agree EXACTLY on every outcome count — the draw-parity property,
//     measured end to end — with zero silent corruptions, and the warm
//     run must deliver at least 10x the cold requests/virtual-second.
//   - The boot-dominated open-loop scenario (traffic.ForkServerScenario):
//     short interactive requests offered far beyond cold capacity, where
//     warm must clear 20x cold goodput. Outcome equality is NOT asserted
//     here — under overload the two cost models legitimately shed
//     different arrivals.
//
// Both warm runs must finish with zero §4.3 image-key probe violations
// and must actually have exercised the pool (restores > 0). Returns
// the process exit code.
func runWarmGate(base serve.SoakConfig, asJSON bool) int {
	run := func(cfg serve.SoakConfig) *serve.SoakReport {
		rep, err := serve.Soak(context.Background(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	closed := base
	closed.Traffic = nil
	closed.Adaptive = nil
	closed.BreakerThreshold = -1
	closed.Retries = -1 // nothing to retry once shedding is off; keep it inert
	if closed.Clients <= 0 {
		closed.Clients = 8
	}
	if closed.Queue < closed.Clients {
		closed.Queue = closed.Clients // at most Clients outstanding: never shed
	}
	coldCfg, warmCfg := closed, closed
	coldCfg.BootModel = "cold"
	warmCfg.BootModel = "warm"
	cold := run(coldCfg)
	warm := run(warmCfg)

	tColdCfg, tWarmCfg := base, base
	tColdCfg.Adaptive, tWarmCfg.Adaptive = nil, nil
	coldModel := traffic.ForkServerScenario(base.Seed)
	warmModel := traffic.ForkServerScenario(base.Seed)
	tColdCfg.Traffic, tColdCfg.BootModel = &coldModel, "cold"
	tWarmCfg.Traffic, tWarmCfg.BootModel = &warmModel, "warm"
	tCold := run(tColdCfg)
	tWarm := run(tWarmCfg)

	ratio := func(w, c uint64) float64 {
		if c == 0 {
			return 0
		}
		return float64(w) / float64(c)
	}
	closedRatio := ratio(warm.RPVSMilli, cold.RPVSMilli)
	trafficRatio := ratio(tWarm.RPVSMilli, tCold.RPVSMilli)

	if asJSON {
		out, err := json.MarshalIndent(map[string]*serve.SoakReport{
			"closed_cold": cold, "closed_warm": warm,
			"traffic_cold": tCold, "traffic_warm": tWarm,
		}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Printf("closed loop: cold %d.%03d rpvs, warm %d.%03d rpvs (%.1fx)\n",
			cold.RPVSMilli/1000, cold.RPVSMilli%1000, warm.RPVSMilli/1000, warm.RPVSMilli%1000, closedRatio)
		fmt.Printf("fork-server traffic: cold %d.%03d rpvs, warm %d.%03d rpvs (%.1fx)\n",
			tCold.RPVSMilli/1000, tCold.RPVSMilli%1000, tWarm.RPVSMilli/1000, tWarm.RPVSMilli%1000, trafficRatio)
	}

	code := 0
	bad := func(format string, args ...any) {
		log.Printf("WARM GATE FAILED: "+format, args...)
		code = 1
	}
	if !cold.Graceful() || !warm.Graceful() || !tCold.Graceful() || !tWarm.Graceful() {
		bad("a run was not graceful (closed cold %v warm %v, traffic cold %v warm %v)",
			cold.Graceful(), warm.Graceful(), tCold.Graceful(), tWarm.Graceful())
	}
	if cold.OK != warm.OK || cold.Detected != warm.Detected || cold.Silent != warm.Silent ||
		cold.GaveUp != warm.GaveUp || cold.Injected != warm.Injected {
		bad("closed-loop outcomes diverged across boot models: cold ok/detected/silent/gave-up/injected %d/%d/%d/%d/%d, warm %d/%d/%d/%d/%d",
			cold.OK, cold.Detected, cold.Silent, cold.GaveUp, cold.Injected,
			warm.OK, warm.Detected, warm.Silent, warm.GaveUp, warm.Injected)
	}
	if warm.Silent != 0 {
		bad("%d silent corruption(s) under the warm pool", warm.Silent)
	}
	if warm.PoolKeyViolations != 0 || tWarm.PoolKeyViolations != 0 {
		bad("image-key probe violations: closed %d, traffic %d — a restore kept the snapshot's PA keys",
			warm.PoolKeyViolations, tWarm.PoolKeyViolations)
	}
	if warm.PoolRestores == 0 || tWarm.PoolRestores == 0 {
		bad("a warm run served no pool restores (closed %d, traffic %d) — the pool was not exercised",
			warm.PoolRestores, tWarm.PoolRestores)
	}
	if closedRatio < 10 {
		bad("closed-loop warm/cold throughput %.2fx, need >= 10x", closedRatio)
	}
	if trafficRatio < 20 {
		bad("fork-server traffic warm/cold throughput %.2fx, need >= 20x", trafficRatio)
	}
	if code == 0 {
		log.Printf("warm gate OK: identical closed-loop outcomes, %.1fx closed-loop and %.1fx open-loop goodput, %d+%d restores, zero key violations",
			closedRatio, trafficRatio, warm.PoolRestores, tWarm.PoolRestores)
	}
	return code
}

// runTrafficGate runs the canned burst scenario (traffic.BurstScenario
// with the flags' seed and capacity parameters) twice — static
// admission, then adaptive — and grades the pair. The overload-control
// criterion: the static run must demonstrably fail at least one class
// SLO under the burst, and the adaptive run must pass every one; a
// burst too weak to hurt the static policy proves nothing, so it also
// fails the gate. Returns the process exit code.
func runTrafficGate(base serve.SoakConfig, aimd *resilience.AIMDConfig, asJSON bool) int {
	run := func(adaptive bool) *serve.SoakReport {
		cfg := base
		model := traffic.BurstScenario(base.Seed)
		cfg.Traffic = &model
		if adaptive {
			cfg.Adaptive = aimd
		}
		rep, err := serve.Soak(context.Background(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}
	static := run(false)
	adapt := run(true)

	if asJSON {
		out, err := json.MarshalIndent(map[string]*traffic.SLOReport{
			"static": static.SLO, "adaptive": adapt.SLO,
		}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(harness.Soak(static))
		fmt.Println()
		fmt.Print(harness.Soak(adapt))
		fmt.Println()
	}

	code := 0
	bad := func(format string, args ...any) {
		log.Printf("TRAFFIC GATE FAILED: "+format, args...)
		code = 1
	}
	if !static.Graceful() || !adapt.Graceful() {
		bad("a run was not graceful (static %v, adaptive %v)", static.Graceful(), adapt.Graceful())
	}
	if static.SLO == nil || adapt.SLO == nil {
		bad("missing SLO report")
		return 1
	}
	if static.SLO.Pass {
		bad("static admission survived the burst — the scenario exercises nothing")
	}
	if !adapt.SLO.Pass {
		var failed []string
		for _, c := range adapt.SLO.Classes {
			if !c.Pass {
				failed = append(failed, fmt.Sprintf("%s (%s)", c.Class, strings.Join(c.Violations, "; ")))
			}
		}
		bad("adaptive admission out of SLO: %s", strings.Join(failed, ", "))
	}
	if st := adapt.SLO.Controller; st == nil || st.LimitMax <= base.Workers {
		bad("adaptive controller never grew the pool — the pass is not its doing")
	}
	if code == 0 {
		var staticFailed []string
		for _, c := range static.SLO.Classes {
			if !c.Pass {
				staticFailed = append(staticFailed, c.Class)
			}
		}
		log.Printf("traffic gate OK: static admission violates SLO for %s under the 10x burst; adaptive (limit %d -> %d) holds every class",
			strings.Join(staticFailed, ","), base.Workers, adapt.SLO.Controller.LimitMax)
	}
	return code
}
