// Command pacstack-soak drives the deterministic chaos soak: a
// discrete-event simulation of concurrent clients hammering the
// serving layer (internal/serve) in virtual time, with seeded fault
// injection, client retry/backoff, per-scheme circuit breaking and
// bounded-queue load shedding. Request outcomes are precomputed on a
// real parallel worker pool; the traffic replay is serial and
// virtual-timed, so one seed produces a byte-identical report on any
// machine — run it twice and diff.
//
// Usage:
//
//	pacstack-soak [-clients N] [-requests N] [-workload NAME]
//	              [-schemes LIST] [-seed N] [-chaos-rate F]
//	              [-chaos-kinds LIST] [-heal N] [-workers N] [-queue N]
//	              [-retries N] [-breaker-threshold N]
//	              [-checkpoint-every N] [-checkpoint-crash F]
//	              [-json] [-check] [-telemetry-dump PATH]
//	              [-cpuprofile FILE] [-memprofile FILE]
//
// With -check, the exit status enforces the robustness acceptance
// criteria: non-zero if any silent corruption was recorded or the run
// was not graceful (some request never reached a terminal state). On
// failure the full report is written to a temp file and its path
// printed, so a failing gate leaves something to diff.
//
// With -telemetry-dump, the run's full telemetry (virtual-time
// metrics registry plus security event ring) is written to PATH as
// JSON — byte-identical for one seed, which is what the check.sh
// double-run cmp gate rests on.
//
// The -cpuprofile / -memprofile flags (same contract as
// pacstack-bench) write pprof profiles of the run, so the execution
// engine can be profiled under serving load — outcome precompute,
// checkpointing and chaos included — not just under the bare
// benchmark loop.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"pacstack/internal/harness"
	"pacstack/internal/serve"
	"pacstack/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pacstack-soak: ")
	clients := flag.Int("clients", 8, "concurrent virtual clients")
	requests := flag.Int("requests", 25, "requests per client")
	workload := flag.String("workload", "chain", "workload name")
	schemes := flag.String("schemes", "pacstack", "comma-separated scheme list; requests round-robin across it")
	seed := flag.Int64("seed", 1, "soak seed (same seed, byte-identical report)")
	chaosRate := flag.Float64("chaos-rate", 0.1, "per-attempt fault-injection probability")
	chaosKinds := flag.String("chaos-kinds", "", "comma-separated kinds: bitflip, retaddr, smash, register, sigframe (default retaddr,smash,sigframe)")
	heal := flag.Int("heal", 0, "supervised respawns per request after a detected kill")
	checkpointEvery := flag.Uint64("checkpoint-every", 0, "per-request snapshot commit interval in instructions (0: off)")
	checkpointCrash := flag.Float64("checkpoint-crash", 0, "per-request probability of a machine death mid-checkpoint")
	workers := flag.Int("workers", 4, "modelled server workers")
	queue := flag.Int("queue", 0, "modelled admission queue (0: 2*workers, <0: none)")
	retries := flag.Int("retries", 3, "client retry budget for sheds and breaker denials")
	brThreshold := flag.Int("breaker-threshold", 8, "breaker threshold in the traffic model (<0: disabled)")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of the table")
	check := flag.Bool("check", false, "exit non-zero on silent corruption or a non-graceful run")
	telemetryDump := flag.String("telemetry-dump", "", "write the run's telemetry (metrics + events) as JSON to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	kinds, err := serve.ParseKinds(*chaosKinds)
	if err != nil {
		log.Fatal(err)
	}
	var tel *telemetry.Set
	if *telemetryDump != "" {
		tel = telemetry.New(telemetry.Options{})
	}
	rep, err := serve.Soak(context.Background(), serve.SoakConfig{
		Clients:          *clients,
		Requests:         *requests,
		Workload:         *workload,
		Schemes:          strings.Split(*schemes, ","),
		Seed:             *seed,
		ChaosRate:        *chaosRate,
		ChaosKinds:       kinds,
		Heal:             *heal,
		CheckpointEvery:  *checkpointEvery,
		CheckpointCrash:  *checkpointCrash,
		Workers:          *workers,
		Queue:            *queue,
		Retries:          *retries,
		BreakerThreshold: *brThreshold,
		Telemetry:        tel,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *telemetryDump != "" {
		f, err := os.Create(*telemetryDump)
		if err != nil {
			log.Fatal(err)
		}
		if err := tel.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(harness.Soak(rep))
	}

	if *check {
		fail := func(format string, args ...any) {
			log.Printf(format, args...)
			// Leave the full report on disk so the failure can be
			// diffed against a known-good run.
			if f, err := os.CreateTemp("", "pacstack-soak-failed-*.json"); err == nil {
				enc := json.NewEncoder(f)
				enc.SetIndent("", "  ")
				if enc.Encode(rep) == nil {
					log.Printf("failing report written to %s", f.Name())
				}
				f.Close()
			}
			os.Exit(1)
		}
		if rep.Silent != 0 {
			fail("CHECK FAILED: %d silent corruption(s)", rep.Silent)
		}
		if !rep.Graceful() {
			fail("CHECK FAILED: run not graceful (%d in flight, %d unaccounted)",
				rep.InFlightAtEnd, rep.Issued-(rep.OK+rep.Detected+rep.Silent+rep.GaveUp))
		}
	}
}
