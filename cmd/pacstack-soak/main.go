// Command pacstack-soak drives the deterministic chaos soak: a
// discrete-event simulation of concurrent clients hammering the
// serving layer (internal/serve) in virtual time, with seeded fault
// injection, client retry/backoff, per-scheme circuit breaking and
// bounded-queue load shedding. Request outcomes are precomputed on a
// real parallel worker pool; the traffic replay is serial and
// virtual-timed, so one seed produces a byte-identical report on any
// machine — run it twice and diff.
//
// Usage:
//
//	pacstack-soak [-clients N] [-requests N] [-workload NAME]
//	              [-schemes LIST] [-seed N] [-chaos-rate F]
//	              [-chaos-kinds LIST] [-heal N] [-workers N] [-queue N]
//	              [-retries N] [-breaker-threshold N]
//	              [-checkpoint-every N] [-checkpoint-crash F]
//	              [-json] [-check]
//
// With -check, the exit status enforces the robustness acceptance
// criteria: non-zero if any silent corruption was recorded or the run
// was not graceful (some request never reached a terminal state).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pacstack/internal/harness"
	"pacstack/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pacstack-soak: ")
	clients := flag.Int("clients", 8, "concurrent virtual clients")
	requests := flag.Int("requests", 25, "requests per client")
	workload := flag.String("workload", "chain", "workload name")
	schemes := flag.String("schemes", "pacstack", "comma-separated scheme list; requests round-robin across it")
	seed := flag.Int64("seed", 1, "soak seed (same seed, byte-identical report)")
	chaosRate := flag.Float64("chaos-rate", 0.1, "per-attempt fault-injection probability")
	chaosKinds := flag.String("chaos-kinds", "", "comma-separated kinds: bitflip, retaddr, smash, register, sigframe (default retaddr,smash,sigframe)")
	heal := flag.Int("heal", 0, "supervised respawns per request after a detected kill")
	checkpointEvery := flag.Uint64("checkpoint-every", 0, "per-request snapshot commit interval in instructions (0: off)")
	checkpointCrash := flag.Float64("checkpoint-crash", 0, "per-request probability of a machine death mid-checkpoint")
	workers := flag.Int("workers", 4, "modelled server workers")
	queue := flag.Int("queue", 0, "modelled admission queue (0: 2*workers, <0: none)")
	retries := flag.Int("retries", 3, "client retry budget for sheds and breaker denials")
	brThreshold := flag.Int("breaker-threshold", 8, "breaker threshold in the traffic model (<0: disabled)")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of the table")
	check := flag.Bool("check", false, "exit non-zero on silent corruption or a non-graceful run")
	flag.Parse()

	kinds, err := serve.ParseKinds(*chaosKinds)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := serve.Soak(context.Background(), serve.SoakConfig{
		Clients:          *clients,
		Requests:         *requests,
		Workload:         *workload,
		Schemes:          strings.Split(*schemes, ","),
		Seed:             *seed,
		ChaosRate:        *chaosRate,
		ChaosKinds:       kinds,
		Heal:             *heal,
		CheckpointEvery:  *checkpointEvery,
		CheckpointCrash:  *checkpointCrash,
		Workers:          *workers,
		Queue:            *queue,
		Retries:          *retries,
		BreakerThreshold: *brThreshold,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(harness.Soak(rep))
	}

	if *check {
		if rep.Silent != 0 {
			log.Printf("CHECK FAILED: %d silent corruption(s)", rep.Silent)
			os.Exit(1)
		}
		if !rep.Graceful() {
			log.Printf("CHECK FAILED: run not graceful (%d in flight, %d unaccounted)",
				rep.InFlightAtEnd, rep.Issued-(rep.OK+rep.Detected+rep.Silent+rep.GaveUp))
			os.Exit(1)
		}
	}
}
