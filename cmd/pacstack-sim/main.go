// Command pacstack-sim assembles and runs a program on the simulated
// machine, optionally with instruction tracing — the quickest way to
// poke at the PA instructions and protection schemes interactively.
//
// With -demo it compiles a built-in demo program under the chosen
// scheme and prints its disassembly and output. With a file argument
// it assembles raw .s source (see internal/isa for the syntax) and
// runs it under the kernel.
//
// Usage:
//
//	pacstack-sim -demo [-scheme pacstack] [-disasm] [-trace]
//	pacstack-sim [-trace] program.s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"pacstack/internal/compile"
	"pacstack/internal/ir"
	"pacstack/internal/isa"
	"pacstack/internal/kernel"
	"pacstack/internal/mem"
	"pacstack/internal/pa"
	"pacstack/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pacstack-sim: ")
	demo := flag.Bool("demo", false, "run the built-in demo program")
	schemeName := flag.String("scheme", "pacstack", "protection scheme: none, canary, branchprot, shadowstack, pacstack-nomask, pacstack")
	disasm := flag.Bool("disasm", false, "print the program disassembly before running")
	traceFlag := flag.Bool("trace", false, "trace every retired instruction")
	profile := flag.Bool("profile", false, "print a flat profile and dynamic call graph after the run")
	encodeTo := flag.String("encode", "", "write the encoded binary image to this file instead of running")
	steps := flag.Uint64("steps", 10_000_000, "instruction budget")
	flag.Parse()

	switch {
	case *demo && *encodeTo != "":
		encodeDemo(*schemeName, *encodeTo)
	case *demo:
		runDemo(*schemeName, *disasm, *traceFlag, *profile, *steps)
	case flag.NArg() == 1:
		runFile(flag.Arg(0), *disasm, *traceFlag, *profile, *steps)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// encodeDemo compiles the demo and writes the stripped binary image —
// what the loader maps into the text segment.
func encodeDemo(schemeName, path string) {
	img, err := compile.Compile(demoProgram(), parseScheme(schemeName), compile.DefaultLayout())
	if err != nil {
		log.Fatal(err)
	}
	bin, err := isa.EncodeProgram(img.Prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, bin, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes (%d instructions) to %s\n", len(bin), len(img.Prog.Instrs), path)
}

func parseScheme(name string) compile.Scheme {
	switch name {
	case "none":
		return compile.SchemeNone
	case "canary":
		return compile.SchemeCanary
	case "branchprot":
		return compile.SchemeBranchProtection
	case "shadowstack":
		return compile.SchemeShadowStack
	case "pacstack-nomask":
		return compile.SchemePACStackNoMask
	case "pacstack":
		return compile.SchemePACStack
	}
	log.Fatalf("unknown scheme %q", name)
	return compile.SchemeNone
}

func demoProgram() *ir.Program {
	return &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Locals: 1, Body: []ir.Op{
			ir.StoreLocal{Slot: 0, Value: 7},
			ir.Loop{Count: 3, Body: []ir.Op{
				ir.Call{Target: "greet"},
			}},
			ir.Write{Byte: '\n'},
		}},
		{Name: "greet", Body: []ir.Op{
			ir.Write{Byte: 'h'}, ir.Write{Byte: 'i'}, ir.Write{Byte: ' '},
			ir.Call{Target: "leaf"},
		}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 4}}},
	}}
}

func runDemo(schemeName string, disasm, traceFlag, profile bool, steps uint64) {
	scheme := parseScheme(schemeName)
	img, err := compile.Compile(demoProgram(), scheme, compile.DefaultLayout())
	if err != nil {
		log.Fatal(err)
	}
	if disasm {
		fmt.Println(img.Prog.Disassemble())
	}
	proc, err := img.Boot(kernel.New(pa.DefaultConfig()))
	if err != nil {
		log.Fatal(err)
	}
	attachTrace(proc, traceFlag)
	runProc(proc, profile, steps)
}

func runFile(path string, disasm, traceFlag, profile bool, steps uint64) {
	src, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	l := compile.DefaultLayout()
	var prog *isa.Program
	var codeBase, stackTop uint64
	if strings.HasSuffix(path, ".bin") {
		// A stripped binary image, as produced by -encode: its branch
		// targets are absolute, so it loads at the standard layout's
		// code base with the standard data segments mapped.
		codeBase, stackTop = l.CodeBase, l.StackTop()
		prog, err = isa.DecodeProgram(codeBase, src)
	} else {
		codeBase, stackTop = 0x10000, 0x110000
		prog, err = isa.Assemble(codeBase, string(src))
	}
	if err != nil {
		log.Fatal(err)
	}
	if disasm {
		fmt.Println(prog.Disassemble())
	}
	m := mem.New()
	codeLen := (prog.Size()/mem.PageSize + 1) * mem.PageSize
	if err := m.Map(codeBase, codeLen, mem.PermRX); err != nil {
		log.Fatal(err)
	}
	if strings.HasSuffix(path, ".bin") {
		for _, seg := range [][2]uint64{
			{l.GlobalsBase, mem.PageSize},
			{l.ShadowBase, l.ShadowSize},
			{l.StackBase, l.StackSize},
		} {
			if err := m.Map(seg[0], seg[1], mem.PermRW); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		if err := m.Map(0x100000, 0x10000, mem.PermRW); err != nil {
			log.Fatal(err)
		}
	}
	entry := prog.Base
	if a, ok := prog.Lookup("_start"); ok {
		entry = a
	} else if a, ok := prog.Lookup("main"); ok {
		entry = a
	}
	proc := kernel.New(pa.DefaultConfig()).NewProcess(prog, m, entry, stackTop)
	attachTrace(proc, traceFlag)
	runProc(proc, profile, steps)
}

func attachTrace(proc *kernel.Process, traceFlag bool) {
	if !traceFlag {
		return
	}
	for _, t := range proc.Tasks {
		m := t.M
		m.Trace = func(pc uint64, ins isa.Instr) {
			sym, off := m.Prog.SymbolFor(pc)
			fmt.Fprintf(os.Stderr, "%#08x %-16s %s\n", pc, fmt.Sprintf("<%s+%d>", sym, off), ins)
		}
	}
}

func runProc(proc *kernel.Process, profile bool, steps uint64) {
	var prof *trace.Profiler
	if profile {
		prof = trace.AttachProfiler(proc.Tasks[0].M)
	}
	err := proc.Run(steps)
	if prof != nil {
		fmt.Println("flat profile:")
		fmt.Print(prof.Report())
		fmt.Println("dynamic call graph:")
		fmt.Print(prof.CallGraph())
	}
	if len(proc.Output) > 0 {
		fmt.Printf("output: %q\n", proc.Output)
	}
	m := proc.Tasks[0].M
	fmt.Printf("instructions: %d, cycles: %d\n", m.Instrs, m.Cycles)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Printf("exit code: %d\n", proc.ExitCode)
}
