// Command pacstack-fault runs the robustness evaluation: seeded
// fault-injection campaigns against every protection scheme (the
// detection-coverage table), and the Section 4.3 brute-force guessing
// game against a supervised, restarting victim.
//
// Usage:
//
//	pacstack-fault [-exp coverage|supervise|all] [-kind KIND] [-scheme NAME]
//	               [-trials N] [-seed N] [-budget N] [-restarts N]
//
// Every experiment is deterministic in -seed: identical invocations
// print identical tables.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pacstack/internal/attack"
	"pacstack/internal/compile"
	"pacstack/internal/fault"
	"pacstack/internal/harness"
	"pacstack/internal/supervise"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pacstack-fault: ")
	exp := flag.String("exp", "all", "experiment: coverage, supervise, or all")
	kindName := flag.String("kind", "all", "campaign kind: bitflip, retaddr, smash, register, sigframe, or all")
	schemeName := flag.String("scheme", "all", "scheme: baseline, canary, branchprot, shadowstack, pacstack-nomask, pacstack, staticcfi, or all")
	trials := flag.Int("trials", 200, "fault-injection trials per (scheme, kind)")
	seed := flag.Int64("seed", 1, "campaign seed (same seed, same table)")
	budget := flag.Uint64("budget", 0, "per-run instruction watchdog (0: derived from the golden run)")
	restarts := flag.Int("restarts", 64, "supervised victim incarnation budget")
	flag.Parse()

	switch *exp {
	case "coverage":
		coverage(*kindName, *schemeName, *trials, *seed, *budget)
	case "supervise":
		supervised(*restarts, *seed)
	case "all":
		coverage(*kindName, *schemeName, *trials, *seed, *budget)
		supervised(*restarts, *seed)
	default:
		log.Printf("unknown experiment %q", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

var kinds = map[string]fault.Kind{
	"bitflip":  fault.KindBitFlip,
	"retaddr":  fault.KindRetAddr,
	"smash":    fault.KindStackSmash,
	"register": fault.KindRegister,
	"sigframe": fault.KindSigFrame,
}

var schemes = map[string]compile.Scheme{
	"baseline":        compile.SchemeNone,
	"canary":          compile.SchemeCanary,
	"branchprot":      compile.SchemeBranchProtection,
	"shadowstack":     compile.SchemeShadowStack,
	"pacstack-nomask": compile.SchemePACStackNoMask,
	"pacstack":        compile.SchemePACStack,
	"staticcfi":       compile.SchemeStaticCFI,
}

func coverage(kindName, schemeName string, trials int, seed int64, budget uint64) {
	kindList := []fault.Kind{fault.KindBitFlip, fault.KindRetAddr, fault.KindStackSmash,
		fault.KindRegister, fault.KindSigFrame}
	if kindName != "all" {
		k, ok := kinds[kindName]
		if !ok {
			log.Fatalf("unknown kind %q", kindName)
		}
		kindList = []fault.Kind{k}
	}
	schemeList := compile.Schemes
	if schemeName != "all" {
		s, ok := schemes[schemeName]
		if !ok {
			log.Fatalf("unknown scheme %q", schemeName)
		}
		schemeList = []compile.Scheme{s}
	}

	engine := fault.NewEngine(fault.DefaultProgram())
	var reports []fault.Report
	for _, k := range kindList {
		rs, err := engine.RunAll(schemeList, fault.Campaign{
			Kind: k, Trials: trials, Seed: seed, Budget: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, rs...)
	}
	fmt.Println(harness.DetectionCoverage(reports))
}

func supervised(restarts int, seed int64) {
	var results []attack.SupervisedResult
	for _, r := range []supervise.Respawn{supervise.RespawnFork, supervise.RespawnExec} {
		res, err := attack.SupervisedBruteForce(r, restarts, seed)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
	}
	fmt.Println(harness.Supervision(results))
}
