// Command pacstack-cc is the toolchain driver: it compiles a .acs
// source file (the internal/ir surface syntax, see internal/irtext)
// under a chosen protection scheme, and then disassembles, encodes,
// runs, or analyses the result — the workflow a user of the paper's
// LLVM artifact has with clang.
//
// Usage:
//
//	pacstack-cc [-scheme pacstack] prog.acs              # compile + run
//	pacstack-cc -S prog.acs                              # print assembly
//	pacstack-cc -o prog.bin prog.acs                     # emit binary image
//	pacstack-cc -gadgets prog.acs                        # static gadget census
//	pacstack-cc -fmt prog.acs                            # reformat source
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pacstack/internal/compile"
	"pacstack/internal/gadget"
	"pacstack/internal/irtext"
	"pacstack/internal/isa"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pacstack-cc: ")
	schemeName := flag.String("scheme", "pacstack", "protection scheme: none, canary, branchprot, shadowstack, pacstack-nomask, pacstack")
	asm := flag.Bool("S", false, "print the generated assembly instead of running")
	out := flag.String("o", "", "write the encoded binary image to this file instead of running")
	gadgets := flag.Bool("gadgets", false, "print the static gadget census instead of running")
	format := flag.Bool("fmt", false, "reformat the source to standard style and print it")
	steps := flag.Uint64("steps", 10_000_000, "instruction budget when running")
	flag.Parse()

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := irtext.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}

	if *format {
		fmt.Print(irtext.Format(prog))
		return
	}

	img, err := compile.Compile(prog, parseScheme(*schemeName), compile.DefaultLayout())
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *asm:
		fmt.Print(img.Prog.Disassemble())
	case *out != "":
		bin, err := isa.EncodeProgram(img.Prog)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, bin, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d bytes (%d instructions, %v) to %s\n",
			len(bin), len(img.Prog.Instrs), img.Scheme, *out)
	case *gadgets:
		gs := gadget.UserCode(gadget.Scan(img.Prog, 0))
		fmt.Printf("%v:\n%s", img.Scheme, gadget.Report(gs))
	default:
		run(img, *steps)
	}
}

func run(img *compile.Image, steps uint64) {
	proc, err := img.Boot(kernel.New(pa.DefaultConfig()))
	if err != nil {
		log.Fatal(err)
	}
	err = proc.Run(steps)
	if len(proc.Output) > 0 {
		fmt.Printf("output: %q\n", proc.Output)
	}
	m := proc.Tasks[0].M
	fmt.Printf("instructions: %d, cycles: %d\n", m.Instrs, m.Cycles)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Printf("exit code: %d\n", proc.ExitCode)
}

func parseScheme(name string) compile.Scheme {
	switch name {
	case "none":
		return compile.SchemeNone
	case "canary":
		return compile.SchemeCanary
	case "branchprot":
		return compile.SchemeBranchProtection
	case "shadowstack":
		return compile.SchemeShadowStack
	case "pacstack-nomask":
		return compile.SchemePACStackNoMask
	case "pacstack":
		return compile.SchemePACStack
	}
	log.Fatalf("unknown scheme %q", name)
	return compile.SchemeNone
}
