// Command pacstack-bench regenerates the paper's performance
// evaluation: Figure 5 (per-benchmark overheads), Table 2 (geometric
// means), Table 3 (NGINX SSL TPS), and the PAC-cost ablation called
// out in DESIGN.md.
//
// Usage:
//
//	pacstack-bench [-exp fig5|table2|table3|paccost|all] [-seed N]
//	               [-cpuprofile FILE] [-memprofile FILE]
//
// Every measurement is deterministic in -seed: identical invocations
// print identical tables. The -cpuprofile / -memprofile flags write
// pprof profiles of the run, so performance work on the execution
// engine can be measured against the real experiment mix.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"pacstack/internal/compile"
	"pacstack/internal/cpu"
	"pacstack/internal/harness"
	"pacstack/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pacstack-bench: ")
	exp := flag.String("exp", "all", "experiment: fig5, table2, table3, paccost, or all")
	seed := flag.Int64("seed", 1, "kernel entropy seed (same seed, same tables)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	cm := cpu.DefaultCostModel()
	switch *exp {
	case "fig5":
		fig5AndTable2(cm, true, false, *seed)
	case "table2":
		fig5AndTable2(cm, false, true, *seed)
	case "table3":
		table3(cm, *seed)
	case "paccost":
		pacCostAblation(*seed)
	case "all":
		fig5AndTable2(cm, true, true, *seed)
		table3(cm, *seed)
		pacCostAblation(*seed)
	default:
		log.Printf("unknown experiment %q", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

func fig5AndTable2(cm cpu.CostModel, wantFig5, wantTable2 bool, seed int64) {
	results, err := workload.RunSuite(workload.SPEC, compile.Schemes, cm, seed)
	if err != nil {
		log.Fatal(err)
	}
	if wantFig5 {
		fmt.Println(harness.Figure5(results))
	}
	if wantTable2 {
		fmt.Println(harness.Table2(workload.Table2(results)))
		fmt.Printf("C++ benchmarks: PACStack %.1f%% (paper ~2.0%%), PACStack-nomask %.1f%% (paper ~0.9%%)\n\n",
			100*workload.CPPMean(results, compile.SchemePACStack),
			100*workload.CPPMean(results, compile.SchemePACStackNoMask))
	}
}

func table3(cm cpu.CostModel, seed int64) {
	rows, err := workload.Table3(cm, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(harness.Table3(rows))
}

// pacCostAblation varies the modelled PAC instruction latency (the
// paper uses the 4-cycle QARMA estimate) and reports how the PACStack
// SPECrate geometric mean responds.
func pacCostAblation(seed int64) {
	fmt.Println("Ablation: PACStack SPECrate geomean vs. modelled PAC latency")
	subset := workload.SPEC[:8] // the C SPECrate benchmarks
	for _, pacCycles := range []int{0, 2, 4, 8} {
		cm := cpu.DefaultCostModel()
		cm.PAC = pacCycles
		var results []workload.Result
		for _, b := range subset {
			rs, err := workload.RunBenchmarkCosts(b, []compile.Scheme{
				compile.SchemeNone, compile.SchemePACStack,
			}, cpu.DefaultCostModel(), cm, seed)
			if err != nil {
				log.Fatal(err)
			}
			results = append(results, rs...)
		}
		t2 := workload.Table2(results)
		fmt.Printf("  PAC = %d cycles: %5.2f%%\n",
			pacCycles, 100*t2[compile.SchemePACStack][workload.SPECrate])
	}
	fmt.Println()
}
