// Command pacstack-metrics is the telemetry snapshot and diff tool.
// It reads a telemetry dump — from a running pacstack-serve daemon
// (GET /v1/telemetry) or from a dump file written by
// `pacstack-soak -telemetry-dump` — and renders it, or diffs two
// dumps to show exactly which counters moved between them.
//
// Usage:
//
//	pacstack-metrics [-o prom|json|events] SOURCE
//	pacstack-metrics -diff OLD NEW
//
// SOURCE (and OLD/NEW) is either a dump-file path or an http(s) URL;
// a bare base URL like http://localhost:8437 gets /v1/telemetry
// appended. Output formats:
//
//	prom    Prometheus text exposition of the metrics section (default)
//	json    the full dump, indented
//	events  the security event ring only
//
// The diff lists every series whose value changed, plus histogram
// count/sum deltas, gauge old -> new transitions, and the event-ring
// movement (records appended, records dropped). Exit status 0 means
// the diff is empty; 3 means something changed — scriptable as a
// "did any security events fire during this window?" probe.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"

	"pacstack/internal/telemetry"
)

// load fetches a telemetry dump from a file path or an http(s) URL.
func load(src string) (telemetry.Dump, error) {
	var d telemetry.Dump
	var raw []byte
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		u, err := url.Parse(src)
		if err != nil {
			return d, err
		}
		if u.Path == "" || u.Path == "/" {
			u.Path = "/v1/telemetry"
		}
		resp, err := http.Get(u.String())
		if err != nil {
			return d, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return d, fmt.Errorf("GET %s: %s", u, resp.Status)
		}
		if raw, err = io.ReadAll(resp.Body); err != nil {
			return d, err
		}
	} else {
		var err error
		if raw, err = os.ReadFile(src); err != nil {
			return d, err
		}
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		return d, fmt.Errorf("%s: not a telemetry dump: %w", src, err)
	}
	return d, nil
}

// seriesKey identifies one series across two snapshots: family name
// plus its rendered label set (labels are sorted at Gather time).
func seriesKey(fam string, labels []telemetry.Label) string {
	if len(labels) == 0 {
		return fam
	}
	var b strings.Builder
	b.WriteString(fam)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// point is one series' value in a form diffable across snapshots.
type point struct {
	typ   string
	value uint64 // counter value or histogram count
	gauge int64
	sum   uint64 // histogram sum
}

func index(snap telemetry.MetricsSnapshot) map[string]point {
	m := make(map[string]point)
	for _, f := range snap.Families {
		for _, s := range f.Series {
			p := point{typ: f.Type}
			switch f.Type {
			case "counter":
				p.value = s.Value
			case "gauge":
				p.gauge = s.GaugeValue
			case "histogram":
				p.value = s.Count
				p.sum = s.Sum
			}
			m[seriesKey(f.Name, s.Labels)] = p
		}
	}
	return m
}

// diff prints every changed series and reports whether anything moved.
func diff(w io.Writer, old, new telemetry.Dump) bool {
	before, after := index(old.Metrics), index(new.Metrics)
	keys := make([]string, 0, len(after))
	for k := range after {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	changed := false
	for _, k := range keys {
		b, a := before[k], after[k] // missing-before reads as zero
		switch a.typ {
		case "counter":
			if a.value != b.value {
				fmt.Fprintf(w, "%-64s %+d\n", k, int64(a.value-b.value))
				changed = true
			}
		case "gauge":
			if a.gauge != b.gauge {
				fmt.Fprintf(w, "%-64s %d -> %d\n", k, b.gauge, a.gauge)
				changed = true
			}
		case "histogram":
			if a.value != b.value || a.sum != b.sum {
				fmt.Fprintf(w, "%-64s count %+d sum %+d\n", k, int64(a.value-b.value), int64(a.sum-b.sum))
				changed = true
			}
		}
	}
	// Series that vanished (a daemon restart) are worth flagging: the
	// whole registry reset, so deltas above are against zero history.
	for k := range before {
		if _, ok := after[k]; !ok {
			fmt.Fprintf(w, "%-64s (gone: registry reset?)\n", k)
			changed = true
		}
	}

	recs := int64(new.Events.NextSeq - old.Events.NextSeq)
	drops := int64(new.Events.Dropped - old.Events.Dropped)
	if recs != 0 || drops != 0 {
		fmt.Fprintf(w, "%-64s %+d recorded, %+d dropped\n", "events", recs, drops)
		changed = true
	}
	return changed
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pacstack-metrics: ")
	format := flag.String("o", "prom", "output format: prom, json, or events")
	doDiff := flag.Bool("diff", false, "diff two dumps: pacstack-metrics -diff OLD NEW")
	flag.Parse()

	if *doDiff {
		if flag.NArg() != 2 {
			log.Fatal("-diff needs exactly two sources: OLD NEW")
		}
		old, err := load(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		cur, err := load(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		if diff(os.Stdout, old, cur) {
			os.Exit(3)
		}
		return
	}

	if flag.NArg() != 1 {
		log.Fatal("need one source: a dump file or a daemon URL (see -h)")
	}
	d, err := load(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	switch *format {
	case "prom":
		if err := telemetry.WritePrometheus(os.Stdout, d.Metrics); err != nil {
			log.Fatal(err)
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			log.Fatal(err)
		}
	case "events":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d.Events); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -o %q (want prom, json, or events)", *format)
	}
}
