// Command pacstack-snap drives the crash-consistency experiments for
// the snapshot subsystem (internal/snap): for each seed it runs a
// PACStack victim, commits a checkpoint, then re-commits under a
// simulated power cut at every interesting byte offset of the commit
// protocol — the image-write region at its boundaries plus seeded
// samples, then every metadata step and journal-append offset
// exhaustively — plus seeded post-hoc bit rot, truncation and
// duplicate-rename faults. Recovery after each fault must restore
// exactly the previous or the new snapshot (never a torn hybrid),
// must report the damage whenever damage exists, and the restored
// machine must replay to a final state byte-identical to the
// uninterrupted run.
//
// The report is a pure function of the flags: run it twice and the
// output is byte-identical, which is how check.sh gates on it. The
// -json report embeds the campaign's telemetry dump (store commits,
// recoveries, anomaly tallies by kind) under a pinned clock, so the
// same double-run cmp also proves the telemetry deterministic.
//
// Usage:
//
//	pacstack-snap -crash-matrix [-seeds N] [-base-seed N]
//	              [-scheme NAME] [-samples N] [-json]
//
// Exit status is non-zero unless the campaign is clean: zero silent
// corruptions, zero restore panics, zero replay divergences.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"pacstack/internal/harness"
	"pacstack/internal/serve"
	"pacstack/internal/snap"
	"pacstack/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pacstack-snap: ")
	crashMatrix := flag.Bool("crash-matrix", false, "run the torn-write crash matrix")
	seeds := flag.Int("seeds", 8, "kernel seeds to sweep")
	baseSeed := flag.Int64("base-seed", 1, "first seed; seed i is base+i")
	scheme := flag.String("scheme", "pacstack", "protection scheme the victim is compiled under")
	samples := flag.Int("samples", 24, "seeded torn offsets inside the image-write region (its boundaries and everything after it are exhaustive)")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of the table")
	flag.Parse()

	if !*crashMatrix {
		log.Fatal("nothing to do: pass -crash-matrix (see -h)")
	}
	sc, err := serve.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	// The matrix has no timeline — pin the clock to zero so the
	// embedded telemetry dump is a pure function of the flags.
	tel := telemetry.New(telemetry.Options{Clock: func() uint64 { return 0 }})
	rep, err := snap.RunMatrix(snap.MatrixConfig{
		Seeds:        *seeds,
		BaseSeed:     *baseSeed,
		Scheme:       sc,
		ImageSamples: *samples,
		Tel:          snap.NewTelemetry(tel.Registry()),
	})
	if err != nil {
		log.Fatal(err)
	}

	if *asJSON {
		out, err := json.MarshalIndent(struct {
			*snap.MatrixReport
			Telemetry telemetry.Dump `json:"telemetry"`
		}{rep, tel.Dump()}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(harness.CrashMatrix(rep))
	}

	if !rep.Clean() {
		log.Printf("CHECK FAILED: silent=%d replay-mismatches=%d panics=%d",
			rep.Totals.Silent, rep.Totals.ReplayMismatches, rep.Totals.Panics)
		os.Exit(1)
	}
}
