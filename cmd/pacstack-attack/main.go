// Command pacstack-attack regenerates the paper's security
// evaluation: Table 1 (violation success probabilities), the Section
// 6.2.1 birthday-harvest numbers, the Section 4.3 brute-force
// comparison, the Section 6.1 reuse attack, the Section 6.3.1
// tail-call signing-gadget probe, and the masked-collision modelling
// note.
//
// Usage:
//
//	pacstack-attack [-exp table1|birthday|bruteforce|reuse|signgadget|ablation|all]
//	                [-bits N] [-trials N] [-seed N]
//
// Every experiment is deterministic in -seed: identical invocations
// print identical tables.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pacstack/internal/attack"
	"pacstack/internal/compile"
	"pacstack/internal/confirm"
	"pacstack/internal/cpu"
	"pacstack/internal/gadget"
	"pacstack/internal/harness"
	"pacstack/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pacstack-attack: ")
	exp := flag.String("exp", "all", "experiment: table1, birthday, bruteforce, guess, reuse, bending, signgadget, jmpbuf, gadgets, confirm, ablation, or all")
	bits := flag.Int("bits", 8, "token width b for Monte-Carlo experiments")
	trials := flag.Int("trials", 2000, "Monte-Carlo trials")
	seed := flag.Int64("seed", 1, "experiment seed (same seed, same tables)")
	flag.Parse()

	switch *exp {
	case "table1":
		table1(*bits, *trials, *seed)
	case "birthday":
		birthday(*bits, *trials, *seed)
	case "bruteforce":
		bruteforce(*seed)
	case "reuse":
		reuse()
	case "bending":
		bending()
	case "signgadget":
		signGadget()
	case "guess":
		guessOnMachine(*trials, *seed)
	case "jmpbuf":
		expiredJmpBuf()
	case "gadgets":
		gadgetCensus()
	case "confirm":
		confirmSuite()
	case "ablation":
		ablation(*bits, *trials, *seed)
	case "all":
		table1(*bits, *trials, *seed)
		birthday(12, 200, *seed)
		bruteforce(*seed)
		reuse()
		bending()
		signGadget()
		guessOnMachine(300, *seed)
		expiredJmpBuf()
		gadgetCensus()
		confirmSuite()
		ablation(*bits, 500, *seed)
	default:
		log.Printf("unknown experiment %q", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

func table1(bits, trials int, seed int64) {
	cfg := attack.DefaultTable1Config()
	cfg.Bits = bits
	cfg.Trials = trials
	cfg.Seed = seed
	fmt.Println(harness.Table1(attack.Table1(cfg), bits))
}

func birthday(bits, trials int, seed int64) {
	fmt.Println(harness.Birthday(attack.Birthday(bits, trials, seed)))
}

func bruteforce(seed int64) {
	// Distinct derived seeds keep the three strategies' rng streams
	// independent while remaining a function of -seed alone.
	results := []attack.BruteForceResult{
		attack.BruteForce(attack.RestartingVictim, 4, 200, seed),
		attack.BruteForce(attack.ForkedSiblings, 8, 400, seed+1),
		attack.BruteForce(attack.ReseededSiblings, 8, 400, seed+2),
	}
	fmt.Println(harness.BruteForce(results))
}

func reuse() {
	results, err := attack.ReuseAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(harness.Reuse(results))
}

func signGadget() {
	fmt.Println("Section 6.3.1: tail-call signing gadget (Listings 7-8)")
	for _, s := range []compile.Scheme{compile.SchemePACStack, compile.SchemePACStackNoMask} {
		res, err := attack.TailCallGadget(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", res)
	}
	fmt.Println()
}

func ablation(bits, trials int, seed int64) {
	res := attack.MaskedCollisionAblation(bits, 96, trials, seed+6)
	fmt.Println(harness.Ablation(res, bits, 96))
}

func confirmSuite() {
	results, err := confirm.RunAll(compile.Schemes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(harness.Confirm(results))
}

// gadgetCensus statically counts usable ROP gadgets in a library-
// sized image under each scheme — the Section 9.2 claim that
// protected code removes reusable gadgets, quantified.
func gadgetCensus() {
	fmt.Println("Section 9.2: usable ROP gadgets in a library-sized image (static scan)")
	prog := workload.SPEC[0].Program(cpuDefault())
	for _, s := range compile.Schemes {
		img, err := compile.Compile(prog, s, compile.DefaultLayout())
		if err != nil {
			log.Fatal(err)
		}
		gs := gadget.UserCode(gadget.Scan(img.Prog, 0))
		sum := gadget.Summary(gs)
		fmt.Printf("  %-26s usable return sites %3d   (suffixes: %d usable, %d guarded, %d inherited)\n",
			s, gadget.UsableReturns(gs), sum[gadget.Usable], sum[gadget.Guarded], sum[gadget.Inherited])
	}
	fmt.Println("  note: 'guarded' means a valid PAC is required, not that the PAC is")
	fmt.Println("  unforgeable — the -exp reuse experiment shows -mbranch-protection's")
	fmt.Println("  guarded gadgets are still dynamically reusable via modifier collisions.")
	fmt.Println()
}

func cpuDefault() cpu.CostModel { return cpu.DefaultCostModel() }

// guessOnMachine runs the end-to-end PAC guessing experiment at the
// hardware token width.
func guessOnMachine(trials int, seed int64) {
	res, err := attack.GuessOnMachine(trials, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("End-to-end guessing on the machine (b = %d): %d trials, %d crashes, %d hijacks\n",
		res.PACBits, res.Crashes.Trials, res.Crashes.Successes, res.Hijacks)
	fmt.Printf("  (a single guess hijacks with probability 2^-%d; crash-and-fresh-keys makes\n", 2*res.PACBits)
	fmt.Println("   accumulation impossible, per Sections 4.3 and 6.2.2)")
	fmt.Println()
}

// expiredJmpBuf reproduces the Section 9.1 limitation and its
// mitigation.
func expiredJmpBuf() {
	res, err := attack.ExpiredJmpBuf()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Section 9.1: longjmp through an EXPIRED jmp_buf (undefined behaviour)")
	fmt.Printf("  wrapper-checked longjmp: reused=%v output=%q\n", res.Reused, res.Output)
	fmt.Printf("  frame-by-frame validated unwind accepts the same replay: %v\n",
		attack.ValidatedUnwindRejectsReplay())
	fmt.Println("  (the wrapper binds the buffer but cannot prove freshness; the paper's")
	fmt.Println("   planned libunwind integration — our core.Unwind / __acs_validate — does)")
	fmt.Println()
}

// bending runs the Section 6.3 control-flow bending comparison.
func bending() {
	results, err := attack.BendingAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Section 6.3: control-flow bending (redirect a return between two")
	fmt.Println("valid return sites of the same function — legal under any stateless CFI)")
	for _, r := range results {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println()
}
