// Command qarma64 exercises the QARMA-64 block cipher underlying the
// pointer-authentication model: it verifies the published known-
// answer vector and encrypts or decrypts user-supplied blocks.
//
// Usage:
//
//	qarma64 -check
//	qarma64 [-dec] [-rounds 7] [-sbox 0] -w0 HEX -k0 HEX -tweak HEX BLOCK
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"pacstack/internal/qarma"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qarma64: ")
	check := flag.Bool("check", false, "verify the published sigma0 test vectors (r = 5, 6, 7)")
	dec := flag.Bool("dec", false, "decrypt instead of encrypt")
	rounds := flag.Int("rounds", qarma.DefaultRounds, "forward round count r")
	sbox := flag.Int("sbox", 0, "S-box variant (0, 1 or 2)")
	w0 := flag.String("w0", "", "whitening key half (hex)")
	k0 := flag.String("k0", "", "core key half (hex)")
	tweak := flag.String("tweak", "0", "tweak (hex)")
	flag.Parse()

	if *check {
		runCheck()
		return
	}
	if flag.NArg() != 1 || *w0 == "" || *k0 == "" {
		flag.Usage()
		os.Exit(2)
	}
	c := qarma.New(parseHex(*w0), parseHex(*k0), qarma.Config{
		Rounds: *rounds,
		Sbox:   qarma.Sigma(*sbox),
	})
	block := parseHex(flag.Arg(0))
	t := parseHex(*tweak)
	if *dec {
		fmt.Printf("%016x\n", c.Decrypt(block, t))
	} else {
		fmt.Printf("%016x\n", c.Encrypt(block, t))
	}
}

func parseHex(s string) uint64 {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		log.Fatalf("bad hex value %q: %v", s, err)
	}
	return v
}

func runCheck() {
	// The QARMA specification's sigma0 vectors at r = 5, 6 and 7.
	const (
		w0 uint64 = 0x84be85ce9804e94b
		k0 uint64 = 0xec2802d4e0a488e9
		pt uint64 = 0xfb623599da6e8127
		tw uint64 = 0x477d469dec0b8762
	)
	vectors := []struct {
		rounds int
		want   uint64
	}{
		{5, 0x3ee99a6c82af0c38},
		{6, 0x9f5c41ec525603c9},
		{7, 0xbcaf6c89de930765},
	}
	for _, v := range vectors {
		c := qarma.New(w0, k0, qarma.Config{Rounds: v.rounds, Sbox: qarma.Sigma0})
		got := c.Encrypt(pt, tw)
		fmt.Printf("QARMA-64 sigma0 r=%d: enc(%016x, %016x) = %016x (want %016x)\n",
			v.rounds, pt, tw, got, v.want)
		if got != v.want {
			log.Fatal("MISMATCH against the published test vector")
		}
		if back := c.Decrypt(got, tw); back != pt {
			log.Fatalf("decrypt mismatch: %016x", back)
		}
	}
	fmt.Println("OK: all three published vectors match and decryption inverts encryption")
}
