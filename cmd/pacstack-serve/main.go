// Command pacstack-serve is the resilient serving daemon: an HTTP/JSON
// front end that executes sandboxed PACStack workloads per request on a
// pool of supervised simulated kernels, with per-request deadlines,
// bounded admission with load shedding, per-scheme circuit breaking,
// panic isolation, and graceful drain on SIGTERM/SIGINT.
//
// With -chaos, the internal/fault injection engine is wired into live
// traffic at -chaos-rate: a fraction of requests get a seeded
// corruption (return-address overwrite, stack smash, signal-frame
// tamper by default) armed inside their victim process. Detected
// corruptions surface as typed 502s carrying the kernel post-mortem;
// the daemon itself never dies.
//
// Endpoints:
//
//	POST /v1/run        {"workload":"chain","scheme":"pacstack","seed":7}
//	GET  /v1/stats      counter snapshot (requests, detections, sheds, ...)
//	GET  /metrics       Prometheus text exposition of the telemetry registry
//	GET  /events        security event ring (auth failures, kills, ...) as JSON
//	GET  /v1/telemetry  combined metrics + events dump (pacstack-metrics reads it)
//	GET  /healthz       200, or 503 once draining
//
// Usage:
//
//	pacstack-serve [-addr :8437] [-workers N] [-queue N] [-heal N]
//	               [-cold] [-pool-machines N]
//	               [-seed N] [-timeout D] [-budget N]
//	               [-chaos] [-chaos-rate F] [-chaos-kinds LIST]
//	               [-breaker-threshold N] [-breaker-cooldown D]
//	               [-checkpoint-every N] [-state-dir DIR]
//	               [-read-header-timeout D]
//	               [-read-timeout D] [-idle-timeout D]
//
// With -state-dir, the daemon opens an on-disk snapshot store there at
// startup, logs its recovery report (prior shutdown checkpoints, crash
// anomalies — detected, never silent), and on graceful shutdown
// commits one final boot-state snapshot per served scheme after the
// drain completes, so the next incarnation (or a migration target)
// restores from a quiescent image and re-seeds its own PA keys.
//
// The daemon serves warm by default: each (workload, scheme) pair gets
// a snapshot-fork pool (internal/pool) holding booted, hardened
// machines that are restored from an in-memory boot image and re-keyed
// per request, instead of re-encoding and re-mapping the program every
// time. -cold disables the pools (the previous per-request boot path);
// -pool-machines caps pool growth, with leases past the cap falling
// back to cold boots (counted in pacstack_pool_cold_fallback_total).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pacstack/internal/serve"
	"pacstack/internal/snap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pacstack-serve: ")
	addr := flag.String("addr", ":8437", "listen address")
	workers := flag.Int("workers", 4, "simultaneous request executions")
	queue := flag.Int("queue", 0, "admission queue depth beyond the workers (0: 2*workers, <0: none)")
	heal := flag.Int("heal", 0, "supervised respawns after a detected kill before surfacing the error")
	seed := flag.Int64("seed", 1, "server entropy seed (kernel keys, chaos draws)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline (0: none)")
	budget := flag.Uint64("budget", 0, "per-attempt instruction watchdog (0: derived from the golden run)")
	cold := flag.Bool("cold", false, "boot a fresh machine per request instead of serving from the warm snapshot-fork pools")
	poolMachines := flag.Int("pool-machines", 0, "warm-pool size cap across shards (0: grow on demand)")
	chaos := flag.Bool("chaos", false, "inject seeded faults into live traffic")
	chaosRate := flag.Float64("chaos-rate", 0.1, "per-attempt injection probability under -chaos")
	chaosKinds := flag.String("chaos-kinds", "", "comma-separated kinds: bitflip, retaddr, smash, register, sigframe (default retaddr,smash,sigframe)")
	brThreshold := flag.Int("breaker-threshold", 8, "consecutive backend failures that open a scheme's breaker (<0: disabled)")
	brCooldown := flag.Duration("breaker-cooldown", 100*time.Millisecond, "how long an open breaker waits before probing")
	drainWait := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	checkpointEvery := flag.Uint64("checkpoint-every", 0, "per-request snapshot commit interval in instructions (0: off)")
	stateDir := flag.String("state-dir", "", "on-disk snapshot store; recovered at startup, final checkpoint committed on graceful shutdown")
	readHeaderTimeout := flag.Duration("read-header-timeout", 5*time.Second, "max time to read a request's headers (slowloris guard; 0: none)")
	readTimeout := flag.Duration("read-timeout", 15*time.Second, "max time to read a full request including body (0: none)")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "max keep-alive idle time per connection (0: none)")
	flag.Parse()

	kinds, err := serve.ParseKinds(*chaosKinds)
	if err != nil {
		log.Fatal(err)
	}
	s := serve.New(serve.Config{
		Workers:          *workers,
		Queue:            *queue,
		Seed:             *seed,
		Chaos:            *chaos,
		ChaosRate:        *chaosRate,
		ChaosKinds:       kinds,
		Heal:             *heal,
		Budget:           *budget,
		Timeout:          *timeout,
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  uint64(*brCooldown),
		CheckpointEvery:  *checkpointEvery,
		Warm:             !*cold,
		PoolMachines:     *poolMachines,
	})

	// -state-dir makes shutdown durable: the previous incarnation's
	// final checkpoint is recovered (and its report logged — anomalies
	// here are crash evidence, never silent) before we take traffic,
	// and a fresh boot-state snapshot per served scheme is committed
	// after the drain below.
	var stateStore *snap.Store
	if *stateDir != "" {
		fs, err := snap.NewDirFS(*stateDir)
		if err != nil {
			log.Fatal(err)
		}
		stateStore = snap.NewStore(fs)
		stateStore.Tel = snap.NewTelemetry(s.Telemetry().Registry())
		_, _, rep, err := stateStore.Recover()
		switch {
		case errors.Is(err, snap.ErrNoSnapshot):
			log.Printf("state dir %s: no prior checkpoint (fresh start)", *stateDir)
		case err != nil:
			log.Fatalf("state dir %s: recovery failed: %v", *stateDir, err)
		default:
			log.Printf("state dir %s: recovered checkpoint seq %d (%d snapshot(s), %d anomalies)",
				*stateDir, rep.RestoredSeq, len(rep.Snapshots), len(rep.Anomalies))
			for _, a := range rep.Anomalies {
				log.Printf("state dir anomaly: %s %s: %s", a.Kind, a.Name, a.Detail)
			}
		}
	}

	// Connection-level timeouts: without these a client that dribbles
	// header bytes (slowloris) or parks idle keep-alives pins a
	// connection forever — the per-request -timeout only starts once a
	// request has been read. No WriteTimeout: responses are small and
	// cut off by the request deadline; a hard write cap would also
	// truncate slow-but-legitimate drains.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	errc := make(chan error, 1)
	go func() {
		mode := "warm pool"
		if *cold {
			mode = "cold boot"
		}
		log.Printf("listening on %s (workers %d, queue %d, chaos %v, seed %d, %s)",
			*addr, s.Config().Workers, s.Config().Queue, *chaos, *seed, mode)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("%s: draining", sig)
	case err := <-errc:
		log.Fatal(err)
	}

	// Graceful drain: stop admitting (healthz flips to 503 so load
	// balancers stop routing here), let in-flight requests finish,
	// then stop the listener and report the final counters.
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		log.Printf("drain incomplete: %v (%d in flight)", err, s.InFlight())
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	<-errc // ListenAndServe has returned ErrServerClosed

	// Commit the final checkpoint only after the drain: the store's
	// commits are cheap, but a snapshot taken while requests were still
	// running would not describe a quiescent daemon.
	if stateStore != nil {
		n, err := s.FinalCheckpoint(stateStore)
		if err != nil {
			log.Printf("final checkpoint incomplete after %d commit(s): %v", n, err)
		} else {
			log.Printf("final checkpoint: %d scheme snapshot(s) committed to %s", n, *stateDir)
		}
	}

	out, _ := json.MarshalIndent(s.Stats(), "", "  ")
	log.Printf("final stats:\n%s", out)
	if s.InFlight() != 0 {
		log.Fatalf("exiting with %d requests still in flight", s.InFlight())
	}
	log.Printf("drained cleanly")
}
