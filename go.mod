module pacstack

go 1.22
