// unwinder: irregular stack unwinding under PACStack (Sections 4.4,
// 5.3 and 9.1).
//
// Part 1 runs a compiled program that uses the PACStack
// setjmp/longjmp wrappers (paper Listings 4 and 5): the jmp_buf is
// cryptographically bound to the ACS state and the SP at the setjmp,
// and a longjmp across five live frames both restores the chain
// register and verifies the buffer.
//
// Part 2 shows the attack side: a forged jmp_buf — the classic
// longjmp-to-anywhere primitive — fails authentication in the
// longjmp wrapper and the jump faults.
//
// Part 3 demonstrates the libunwind-style validator (__acs_validate):
// a deep function walks its own frame chain, verifying every ACS link
// without transferring control — the backtrace-with-validation the
// paper plans for libunwind and C++ exceptions.
//
// Run with: go run ./examples/unwinder
package main

import (
	"fmt"
	"log"

	"pacstack/internal/compile"
	"pacstack/internal/ir"
	"pacstack/internal/isa"
	"pacstack/internal/kernel"
	"pacstack/internal/mem"
	"pacstack/internal/pa"
)

func program() *ir.Program {
	return &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{
			ir.SetJmp{Buf: 0},
			ir.IfNZ{Then: []ir.Op{
				ir.Write{Byte: 'R'}, ir.Write{Byte: '\n'},
				ir.Exit{Code: 0},
			}},
			ir.Write{Byte: 'S'},
			ir.Call{Target: "d1"},
			ir.Write{Byte: 'X'}, // skipped by the longjmp
		}},
		{Name: "d1", Body: []ir.Op{ir.Write{Byte: '1'}, ir.Call{Target: "d2"}}},
		{Name: "d2", Body: []ir.Op{ir.Write{Byte: '2'}, ir.Call{Target: "d3"}}},
		{Name: "d3", Body: []ir.Op{ir.Write{Byte: '3'}, ir.Call{Target: "d4"}}},
		{Name: "d4", Body: []ir.Op{ir.Write{Byte: '4'}, ir.Call{Target: "d5"}}},
		{Name: "d5", Body: []ir.Op{
			ir.Write{Byte: '!'},
			ir.ValidateFrames{Max: 6}, // d5..d1 + main, validated in place
			ir.LongJmp{Buf: 0, Value: 1},
		}},
		{Name: "victim", Body: []ir.Op{
			ir.Write{Byte: 'P'}, ir.Write{Byte: 'W'}, ir.Write{Byte: 'N'},
			ir.Exit{Code: 66},
		}},
	}}
}

func main() {
	log.SetFlags(0)
	img, err := compile.Compile(program(), compile.SchemePACStack, compile.DefaultLayout())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== part 1: longjmp across five live frames, ACS-bound jmp_buf ==")
	fmt.Println("   (d5 also runs the frame-by-frame validator before jumping:")
	fmt.Println("    the digit is the count of verified frames, Section 9.1)")
	proc := img.MustBoot(kernel.New(pa.DefaultConfig()))
	if err := proc.Run(1_000_000); err != nil {
		log.Fatalf("legitimate longjmp failed: %v", err)
	}
	fmt.Printf("output: %q (S = setjmp taken, 1..4! = descent, 6 = frames verified, R = resumed)\n\n", proc.Output)

	fmt.Println("== part 2: the adversary forges the jmp_buf ==")
	proc = img.MustBoot(kernel.New(pa.DefaultConfig()))
	adv := mem.NewAdversary(proc.Mem)
	m := proc.Tasks[0].M
	fired := false
	m.Trace = func(pc uint64, ins isa.Instr) {
		// Just before d5 longjmps, rewrite the buffer's stored return
		// address to the victim gadget. Without the ACS binding this
		// is a one-write control-flow hijack.
		if pc == img.FuncEntries["d5"] && !fired {
			fired = true
			buf := img.Layout.JmpBufAddr(0)
			_ = adv.Poke(buf+88, img.FuncEntries["victim"]) // jmp_buf LR slot
		}
	}
	err = proc.Run(1_000_000)
	switch {
	case err != nil:
		fmt.Printf("process CRASHED: %v\n", err)
		fmt.Println("=> the forged buffer failed authentication in the longjmp wrapper")
	case proc.ExitCode == 66:
		fmt.Printf("output %q — hijack succeeded (should not happen under PACStack)\n", proc.Output)
	default:
		fmt.Printf("output %q exit %d\n", proc.Output, proc.ExitCode)
	}
}
