// ropdefense: a return-oriented hijack on the simulated machine, run
// against the unprotected baseline and against PACStack.
//
// A vulnerable function spills its return address; the adversary —
// with full data-memory write access, per the Section 3 model —
// overwrites it to point at a "gadget" that exfiltrates a secret.
// Under the baseline the gadget runs; under PACStack the return
// authentication fails and the process takes a translation fault.
//
// Run with: go run ./examples/ropdefense
package main

import (
	"fmt"
	"log"

	"pacstack/internal/compile"
	"pacstack/internal/ir"
	"pacstack/internal/isa"
	"pacstack/internal/kernel"
	"pacstack/internal/mem"
	"pacstack/internal/pa"
)

// victimProgram: main processes a "request" in handle(), which calls
// a parser; the parser's stack frame is where the overflow lands.
func victimProgram() *ir.Program {
	return &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{
			ir.Call{Target: "handle"},
			ir.Write{Byte: 'o'}, ir.Write{Byte: 'k'}, ir.Write{Byte: '\n'},
		}},
		{Name: "handle", Locals: 2, Body: []ir.Op{
			ir.StoreLocal{Slot: 0, Value: 0x11},
			ir.Call{Target: "parse"},
		}},
		{Name: "parse", Locals: 4, Body: []ir.Op{
			ir.StoreLocal{Slot: 0, Value: 0x22},
			ir.Call{Target: "memread"},
		}},
		{Name: "memread", Body: []ir.Op{ir.Compute{Units: 8}}},
		// The gadget the attacker wants to reach: it leaks the
		// "secret" and exits before any check can run.
		{Name: "gadget", Body: []ir.Op{
			ir.Write{Byte: 'P'}, ir.Write{Byte: 'W'}, ir.Write{Byte: 'N'}, ir.Write{Byte: '\n'},
			ir.Exit{Code: 66},
		}},
	}}
}

func run(scheme compile.Scheme) {
	img, err := compile.Compile(victimProgram(), scheme, compile.DefaultLayout())
	if err != nil {
		log.Fatal(err)
	}
	proc, err := img.Boot(kernel.New(pa.DefaultConfig()))
	if err != nil {
		log.Fatal(err)
	}
	adv := mem.NewAdversary(proc.Mem)
	m := proc.Tasks[0].M

	// The adversary strikes while memread runs: it sweeps parse's
	// frame region and overwrites every plausible return-address slot
	// with the gadget address — a crude but realistic stack smash.
	fired := false
	m.Trace = func(pc uint64, ins isa.Instr) {
		if pc == img.FuncEntries["memread"] && !fired {
			fired = true
			sp := m.Reg(isa.SP)
			for off := uint64(0); off < 96; off += 8 {
				_ = adv.Poke(sp+off, img.FuncEntries["gadget"])
			}
		}
	}

	fmt.Printf("--- %v ---\n", scheme)
	err = proc.Run(1_000_000)
	switch {
	case err != nil:
		fmt.Printf("process CRASHED: %v\n", err)
		fmt.Println("=> hijack detected; the smashed return address never took effect")
	case proc.ExitCode == 66:
		fmt.Printf("output: %q\n", proc.Output)
		fmt.Println("=> hijack SUCCEEDED: the gadget ran")
	default:
		fmt.Printf("output: %q (exit %d)\n", proc.Output, proc.ExitCode)
	}
	fmt.Println()
}

func main() {
	log.SetFlags(0)
	run(compile.SchemeNone)
	run(compile.SchemePACStack)
}
