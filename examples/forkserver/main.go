// forkserver: the Section 4.3 scenario — a pre-forking server whose
// workers share PA keys — on the simulated kernel.
//
// The demo shows the three facts the paper's brute-force analysis
// rests on:
//
//  1. fork() does not change PA keys: a pointer signed in the parent
//     authenticates in every worker;
//  2. exec() does: after a worker re-execs, old signatures are dead;
//  3. a crashing worker does not stop its siblings — which is exactly
//     why guessing against pre-forked workers is cheaper (2^b) than
//     against a restarting process (2^2b), and why the paper
//     recommends re-seeding each worker's ACS chain (raising the cost
//     back to 2^(b+1); measured in `pacstack-attack -exp bruteforce`).
//
// Run with: go run ./examples/forkserver
package main

import (
	"fmt"
	"log"

	"pacstack/internal/compile"
	"pacstack/internal/ir"
	"pacstack/internal/isa"
	"pacstack/internal/kernel"
	"pacstack/internal/mem"
	"pacstack/internal/pa"
)

func serverProgram() *ir.Program {
	return &ir.Program{Entry: "main", Functions: []*ir.Function{
		// The parent forks twice, then serves; each child serves and
		// exits. (The fork syscall returns the child PID in the
		// parent, 0 in the child.)
		{Name: "main", Body: []ir.Op{
			ir.Call{Target: "serve"},
			ir.Write{Byte: '.'},
		}},
		{Name: "serve", Body: []ir.Op{
			ir.Loop{Count: 3, Body: []ir.Op{ir.Call{Target: "handle"}}},
		}},
		{Name: "handle", Body: []ir.Op{
			ir.Compute{Units: 20},
			ir.Call{Target: "leaf"},
			ir.Write{Byte: 'r'}, // one request served
		}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 2}}},
	}}
}

func main() {
	log.SetFlags(0)
	img, err := compile.Compile(serverProgram(), compile.SchemePACStack, compile.DefaultLayout())
	if err != nil {
		log.Fatal(err)
	}
	k := kernel.New(pa.DefaultConfig())
	parent, err := img.Boot(k)
	if err != nil {
		log.Fatal(err)
	}

	// Pre-fork two workers before the parent runs.
	w1 := parent.Fork(parent.Tasks[0])
	w2 := parent.Fork(parent.Tasks[0])
	fmt.Printf("parent pid %d, workers pid %d and %d\n", parent.PID, w1.PID, w2.PID)

	// 1. Keys are shared across fork.
	signed := parent.Auth.AddPAC(pa.KeyIA, 0x41000, 7)
	for _, w := range []*kernel.Process{w1, w2} {
		if _, ok := w.Auth.Auth(pa.KeyIA, signed, 7); !ok {
			log.Fatalf("worker %d could not authenticate a parent-signed pointer", w.PID)
		}
	}
	fmt.Println("parent-signed pointer authenticates in both workers (keys shared across fork)")

	// 3. A worker crash leaves the siblings alive: corrupt worker 1's
	// chain and run everything.
	adv := mem.NewAdversary(w1.Mem)
	m := w1.Tasks[0].M
	fired := false
	m.Trace = func(pc uint64, ins isa.Instr) {
		if pc == img.FuncEntries["handle"]+6*isa.InstrSize && !fired {
			fired = true
			_ = adv.Poke(m.Reg(isa.SP), 0x4141_4141) // smash the spilled aret
		}
	}
	for _, p := range []*kernel.Process{parent, w2} {
		if err := p.Run(1_000_000); err != nil {
			log.Fatalf("pid %d: %v", p.PID, err)
		}
	}
	err = w1.Run(1_000_000)
	fmt.Printf("worker %d (attacked): crash = %v\n", w1.PID, err != nil)
	fmt.Printf("worker %d served %q; parent served %q — siblings unaffected\n",
		w2.PID, w2.Output, parent.Output)
	fmt.Println("=> the attacker gets a fresh guess per killed worker: this is why the")
	fmt.Println("   paper re-seeds each worker's chain (cost 2^b -> 2^(b+1); see")
	fmt.Println("   `pacstack-attack -exp bruteforce` for the measured comparison)")

	// 2. exec() kills old signatures.
	prog2 := img.Prog // same image, fresh address space
	m2 := mem.New()
	codeLen := (prog2.Size()/mem.PageSize + 1) * mem.PageSize
	if err := m2.Map(img.Layout.CodeBase, codeLen, mem.PermRX); err != nil {
		log.Fatal(err)
	}
	if err := m2.Map(img.Layout.StackBase, img.Layout.StackSize, mem.PermRW); err != nil {
		log.Fatal(err)
	}
	w2.Exec(prog2, m2, prog2.MustLookup("_start"), img.Layout.StackTop())
	if _, ok := w2.Auth.Auth(pa.KeyIA, signed, 7); ok {
		log.Fatal("signature survived exec!")
	}
	fmt.Println("after exec, the old signature no longer authenticates (fresh keys per exec)")
}
