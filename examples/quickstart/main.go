// Quickstart: protecting a call stack with the ACS core library.
//
// This example uses the architecture-independent authenticated call
// stack (internal/core) directly: pushes simulate calls, pops
// simulate returns, and the adversary's writes to the spilled chain
// values are detected exactly as Section 4 promises.
//
// Run with: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"pacstack/internal/core"
)

func main() {
	log.SetFlags(0)

	// A fresh 16-bit-token stack with masking — the PACStack default
	// (VA_SIZE = 39 leaves 16 PAC bits, Figure 1).
	acs := core.New(core.NewRandomQarmaMAC(16), core.Config{Mask: true})

	fmt.Println("== normal operation ==")
	callChain := []uint64{0x401000, 0x40104c, 0x4010d8} // return addresses
	for _, ret := range callChain {
		acs.Push(ret)
		fmt.Printf("call  -> CR = %#018x (auth %#06x | ret %#x)\n",
			acs.CR(), core.Auth(acs.CR()), core.Ret(acs.CR()))
	}
	for acs.Depth() > 0 {
		ret, err := acs.Pop()
		if err != nil {
			log.Fatalf("unexpected: %v", err)
		}
		fmt.Printf("ret   -> %#x verified\n", ret)
	}

	fmt.Println("\n== the adversary corrupts a spilled chain value ==")
	for _, ret := range callChain {
		acs.Push(ret)
	}
	// Everything but the last link lives in attacker-writable memory.
	fmt.Printf("attacker flips one bit in frame 1 (was %#018x)\n", acs.Spilled(1))
	acs.SetSpilled(1, acs.Spilled(1)^(1<<3))

	if _, err := acs.Pop(); err != nil {
		log.Fatalf("top frame was untouched, pop must succeed: %v", err)
	}
	_, err := acs.Pop()
	if !errors.Is(err, core.ErrAuthFailure) {
		log.Fatalf("corruption went undetected: %v", err)
	}
	fmt.Printf("second return: %v\n", err)
	fmt.Println("the process would crash here — the ROP chain is dead")

	fmt.Println("\n== setjmp/longjmp-style unwinding (Section 4.4 / 9.1) ==")
	acs = core.New(core.NewRandomQarmaMAC(16), core.Config{Mask: true})
	acs.Push(0x401000)
	mark := acs.Snapshot() // setjmp
	acs.Push(0x402000)
	acs.Push(0x403000)
	if err := acs.Unwind(mark); err != nil { // longjmp, frame-by-frame validated
		log.Fatalf("unwind: %v", err)
	}
	fmt.Printf("unwound to depth %d, CR restored to %#018x\n", acs.Depth(), acs.CR())

	forged := core.State{Aret: 0xBAD0000000401000, Depth: 0}
	if err := acs.Unwind(forged); err == nil {
		log.Fatal("forged jmp_buf accepted!")
	} else {
		fmt.Printf("forged jmp_buf rejected: %v\n", err)
	}
}
