// reuseattack: the Section 6.1 / Listing 6 PAC reuse attack, run
// against every protection scheme.
//
// Two functions A and B are called from the same function at the same
// stack depth, so -mbranch-protection signs both return addresses
// with the same SP modifier — making them interchangeable. The
// adversary records A's protected return address and splices it into
// B's frame; B then "returns" to A's return site. PACStack's chained
// modifier is statistically unique per path, so there is nothing
// interchangeable to splice.
//
// Run with: go run ./examples/reuseattack
package main

import (
	"fmt"
	"log"

	"pacstack/internal/attack"
)

func main() {
	log.SetFlags(0)
	fmt.Println("PAC reuse attack (paper Section 6.1, Listing 6)")
	fmt.Println("normal output is \"ab\"; a hijacked run prints \"aab\"")
	fmt.Println()

	results, err := attack.ReuseAll()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println(" ", r)
	}

	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println("  - the baseline and the canary fall to a plain overwrite;")
	fmt.Println("  - -mbranch-protection falls to *reuse*: both signatures share the SP modifier;")
	fmt.Println("  - the software shadow stack falls because its location is readable and writable;")
	fmt.Println("  - fully-precise static CFI detects this transfer (the target is not a valid")
	fmt.Println("    return site for B) but remains bendable — see pacstack-attack -exp bending;")
	fmt.Println("  - PACStack (both variants) is unaffected: the spliced values are either")
	fmt.Println("    identical anyway (the chain slot) or never trusted (the frame record).")
}
