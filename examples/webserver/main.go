// webserver: the NGINX SSL-TPS experiment (Section 7.2, Table 3) as a
// runnable demo: simulate a TLS-terminating worker pool serving
// handshake-heavy connections under the baseline, PACStack-nomask and
// PACStack, and print the throughput table next to the paper's.
//
// Run with: go run ./examples/webserver
package main

import (
	"fmt"
	"log"

	"pacstack/internal/compile"
	"pacstack/internal/cpu"
	"pacstack/internal/harness"
	"pacstack/internal/workload"
)

func main() {
	log.SetFlags(0)
	fmt.Println("Simulating an NGINX-style TLS worker pool (ECDHE-RSA handshakes,")
	fmt.Println("zero-byte responses, CPU-bound — the paper's SSL TPS setup).")
	fmt.Println()

	cm := cpu.DefaultCostModel()
	cfg := workload.DefaultNginxConfig()
	for _, s := range []compile.Scheme{
		compile.SchemeNone, compile.SchemePACStackNoMask, compile.SchemePACStack,
	} {
		r, err := workload.RunNginx(s, cfg, cm, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s %9.0f cycles/connection  -> %7.0f req/s on %d workers\n",
			s, r.CyclesPerReq, r.RequestsPerSec, cfg.Workers)
	}
	fmt.Println()

	rows, err := workload.Table3(cm, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(harness.Table3(rows))
}
