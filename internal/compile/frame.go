package compile

import "pacstack/internal/isa"

// This file emits the scheme-specific prologue and epilogue sequences.
// The PACStack sequences follow paper Listings 2 (no masking) and 3
// (masking) instruction for instruction; -mbranch-protection follows
// Listing 1; ShadowCallStack matches the Clang AArch64 lowering
// (X18-based parallel stack); the stack protector matches the classic
// canary-below-frame-record layout.

// pacFrameSize is the PACStack saved area: X28 at +0, padding at +8,
// the unmodified frame record (FP, LR) at +16 — kept for debugger
// compatibility exactly as Section 5 describes (requirement R3).
const pacFrameSize = 32

func (c *compiler) emitPrologue(fi *frameInfo) {
	switch {
	case fi.leaf:
		// Leaf functions never spill LR; no scheme instruments them.
		if fi.localSize > 0 {
			c.i(isa.SUBI, func(i *isa.Instr) { i.Rd = isa.SP; i.Rn = isa.SP; i.Imm = fi.localSize })
			c.emitCanaryStore(fi)
		}
	case fi.scheme == SchemePACStack, fi.scheme == SchemePACStackNoMask:
		// str X28, [SP, #-32]!        ; stack <- aret_{i-1}
		c.i(isa.STRPRE, func(i *isa.Instr) { i.Rd = isa.CR; i.Rn = isa.SP; i.Imm = -pacFrameSize })
		// stp FP, LR, [SP, #16]       ; stack <- frame record
		c.i(isa.STP, func(i *isa.Instr) { i.Rd = isa.FP; i.Rm = isa.LR; i.Rn = isa.SP; i.Imm = 16 })
		c.i(isa.ADDI, func(i *isa.Instr) { i.Rd = isa.FP; i.Rn = isa.SP; i.Imm = 16 })
		if fi.scheme == SchemePACStack {
			// Listing 3: compute the masked authenticated return
			// address; the mask pacia(0, aret_{i-1}) is cleared from
			// X15 immediately after use.
			c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.XZR })
			c.i(isa.PACIA, func(i *isa.Instr) { i.Rd = isa.LR; i.Rn = isa.CR })
			c.i(isa.PACIA, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.CR })
			c.i(isa.EOR, func(i *isa.Instr) { i.Rd = isa.LR; i.Rn = isa.LR; i.Rm = isa.X15 })
			c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.XZR })
		} else {
			// Listing 2: unmasked aret_i.
			c.i(isa.PACIA, func(i *isa.Instr) { i.Rd = isa.LR; i.Rn = isa.CR })
		}
		// mov X28, LR                 ; CR <- aret_i
		c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.CR; i.Rn = isa.LR })
		if fi.localSize > 0 {
			c.i(isa.SUBI, func(i *isa.Instr) { i.Rd = isa.SP; i.Rn = isa.SP; i.Imm = fi.localSize })
		}
	default:
		if fi.scheme == SchemeBranchProtection {
			c.i(isa.PACIASP, nil) // Listing 1: sign LR using SP
		}
		c.i(isa.STPPRE, func(i *isa.Instr) { i.Rd = isa.FP; i.Rm = isa.LR; i.Rn = isa.SP; i.Imm = -16 })
		c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.FP; i.Rn = isa.SP })
		if fi.scheme == SchemeShadowStack {
			// str LR, [X18], #8: push the return address to the
			// shadow stack.
			c.i(isa.STR, func(i *isa.Instr) { i.Rd = isa.LR; i.Rn = isa.SCS; i.Imm = 0 })
			c.i(isa.ADDI, func(i *isa.Instr) { i.Rd = isa.SCS; i.Rn = isa.SCS; i.Imm = 8 })
		}
		if fi.localSize > 0 {
			c.i(isa.SUBI, func(i *isa.Instr) { i.Rd = isa.SP; i.Rn = isa.SP; i.Imm = fi.localSize })
			c.emitCanaryStore(fi)
		}
	}
}

// emitEpilogue restores the frame; emitReturn (or a tail branch)
// follows it.
func (c *compiler) emitEpilogue(fi *frameInfo) {
	switch {
	case fi.leaf:
		if fi.localSize > 0 {
			c.emitCanaryCheck(fi)
			c.i(isa.ADDI, func(i *isa.Instr) { i.Rd = isa.SP; i.Rn = isa.SP; i.Imm = fi.localSize })
		}
	case fi.scheme == SchemePACStack, fi.scheme == SchemePACStackNoMask:
		if fi.localSize > 0 {
			c.i(isa.ADDI, func(i *isa.Instr) { i.Rd = isa.SP; i.Rn = isa.SP; i.Imm = fi.localSize })
		}
		// mov LR, X28                 ; LR <- aret_i
		c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.LR; i.Rn = isa.CR })
		// ldr FP, [SP, #16]           ; skip ret in frame record
		c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.FP; i.Rn = isa.SP; i.Imm = 16 })
		// ldr X28, [SP], #32          ; CR <- aret_{i-1} from stack
		c.i(isa.LDRPOST, func(i *isa.Instr) { i.Rd = isa.CR; i.Rn = isa.SP; i.Imm = pacFrameSize })
		if fi.scheme == SchemePACStack {
			// Recreate and remove the mask before verification.
			c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.XZR })
			c.i(isa.PACIA, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.CR })
			c.i(isa.EOR, func(i *isa.Instr) { i.Rd = isa.LR; i.Rn = isa.LR; i.Rm = isa.X15 })
			c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.XZR })
		}
		// autia LR, X28               ; LR <- ret_i or ret*
		c.i(isa.AUTIA, func(i *isa.Instr) { i.Rd = isa.LR; i.Rn = isa.CR })
	default:
		if fi.localSize > 0 {
			c.emitCanaryCheck(fi)
			c.i(isa.ADDI, func(i *isa.Instr) { i.Rd = isa.SP; i.Rn = isa.SP; i.Imm = fi.localSize })
		}
		c.i(isa.LDPPOST, func(i *isa.Instr) { i.Rd = isa.FP; i.Rm = isa.LR; i.Rn = isa.SP; i.Imm = 16 })
		if fi.scheme == SchemeShadowStack {
			// Reload the return address from the shadow stack,
			// overriding whatever was on the main stack.
			c.i(isa.SUBI, func(i *isa.Instr) { i.Rd = isa.SCS; i.Rn = isa.SCS; i.Imm = 8 })
			c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.LR; i.Rn = isa.SCS; i.Imm = 0 })
		}
	}
}

func (c *compiler) emitReturn(fi *frameInfo) {
	if !fi.leaf && fi.scheme == SchemeBranchProtection {
		c.i(isa.RETAA, nil) // Listing 1: verify LR and return
		return
	}
	c.i(isa.RET, func(i *isa.Instr) { i.Rn = isa.LR })
}

// emitTailBranch ends a function with a non-linking branch (Listing
// 8). -mbranch-protection must authenticate LR explicitly because
// RETAA is not executed.
func (c *compiler) emitTailBranch(fi *frameInfo, target string) {
	if !fi.leaf && fi.scheme == SchemeBranchProtection {
		c.i(isa.AUTIASP, nil)
	}
	c.i(isa.B, func(i *isa.Instr) { i.Label = target })
}

func (c *compiler) emitCanaryStore(fi *frameInfo) {
	if !fi.hasCanary {
		return
	}
	off := fi.canaryOff()
	c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X9; i.Imm = int64(c.layout.CanaryAddr()) })
	c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.X10; i.Rn = isa.X9; i.Imm = 0 })
	c.i(isa.STR, func(i *isa.Instr) { i.Rd = isa.X10; i.Rn = isa.SP; i.Imm = off })
}

func (c *compiler) emitCanaryCheck(fi *frameInfo) {
	if !fi.hasCanary {
		return
	}
	off := fi.canaryOff()
	c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.X10; i.Rn = isa.SP; i.Imm = off })
	c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X9; i.Imm = int64(c.layout.CanaryAddr()) })
	c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.X11; i.Rn = isa.X9; i.Imm = 0 })
	c.i(isa.CMP, func(i *isa.Instr) { i.Rn = isa.X10; i.Rm = isa.X11 })
	c.i(isa.BCND, func(i *isa.Instr) { i.Cond = isa.NE; i.Label = "__stack_chk_fail" })
}
