package compile

import (
	"fmt"

	"pacstack/internal/cpu"
	"pacstack/internal/isa"
	"pacstack/internal/kernel"
	"pacstack/internal/mem"
)

// Boot loads the image into a fresh address space and creates a
// process for it: code pages are mapped read-execute (W⊕X), globals,
// shadow stack and main stack read-write; the stack-protector canary
// is drawn fresh per process like glibc's; and the assumption-A2
// forward-edge CFI is installed with the image's function entries as
// the allowed indirect-call targets.
func (img *Image) Boot(k *kernel.Kernel) (*kernel.Process, error) {
	m := mem.New()
	l := img.Layout
	codeLen := (img.Prog.Size()/mem.PageSize + 1) * mem.PageSize
	// Load the encoded text segment the way an OS loader does: map the
	// pages writable, copy the image in, then seal them execute-only
	// (W⊕X). The bytes in memory and the symbolic program the CPU
	// executes are thereafter two views of the same code.
	if err := m.Map(l.CodeBase, codeLen, mem.PermRW); err != nil {
		return nil, fmt.Errorf("compile: mapping code: %w", err)
	}
	text, err := isa.EncodeProgram(img.Prog)
	if err != nil {
		return nil, fmt.Errorf("compile: encoding text segment: %w", err)
	}
	if err := m.WriteBytes(l.CodeBase, text); err != nil {
		return nil, fmt.Errorf("compile: loading text segment: %w", err)
	}
	if err := m.Protect(l.CodeBase, codeLen, mem.PermRX); err != nil {
		return nil, fmt.Errorf("compile: sealing text segment: %w", err)
	}
	if err := m.Map(l.GlobalsBase, mem.PageSize, mem.PermRW); err != nil {
		return nil, fmt.Errorf("compile: mapping globals: %w", err)
	}
	if err := m.Map(l.ShadowBase, l.ShadowSize, mem.PermRW); err != nil {
		return nil, fmt.Errorf("compile: mapping shadow stack: %w", err)
	}
	if err := m.Map(l.StackBase, l.StackSize, mem.PermRW); err != nil {
		return nil, fmt.Errorf("compile: mapping stack: %w", err)
	}

	p := k.NewProcess(img.Prog, m, img.Prog.MustLookup("_start"), l.StackTop())

	// Seed the canary. The reference value lives in a global the
	// program can read — but the adversary can too, which is exactly
	// the weakness of canaries under the paper's R2 (full disclosure).
	// The entropy comes from the kernel so that a seeded kernel
	// (kernel.Kernel.Seed) boots byte-identical processes.
	if err := m.Write64(l.CanaryAddr(), k.Entropy64()); err != nil {
		return nil, err
	}

	allowed := make(map[uint64]bool, len(img.FuncEntries))
	for _, a := range img.FuncEntries {
		allowed[a] = true
	}
	p.CallCFI = func(target uint64) error {
		if !allowed[target] {
			return &cpu.CFIViolation{Edge: "call", Target: target,
				Detail: "indirect call target is not a function entry"}
		}
		return nil
	}
	if img.Scheme == SchemeStaticCFI {
		img.installStaticCFI(func(f func(retPC, target uint64) error) { p.RetCFI = f })
	}
	return p, nil
}

// MustBoot is Boot that panics on error.
func (img *Image) MustBoot(k *kernel.Kernel) *kernel.Process {
	p, err := img.Boot(k)
	if err != nil {
		panic(err)
	}
	return p
}
