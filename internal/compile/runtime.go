package compile

import "pacstack/internal/isa"

// The runtime appended to every image: process entry, stack-protector
// failure handler, the libc-analogue setjmp/longjmp, the PACStack
// setjmp/longjmp wrappers (paper Listings 4 and 5), and the ACS
// re-seeding helper for threads (Section 4.3).

// jmp_buf layout, 8-byte slots: X19..X28 at 0..72, FP at 80, LR at
// 88, SP at 96.
const (
	jmpBufX19  = 0
	jmpBufCR   = 72 // X28 slot: under PACStack this is aret_i
	jmpBufFP   = 80
	jmpBufLR   = 88 // return address; aret_b under PACStack
	jmpBufSP   = 96
	JmpBufSize = 112 // rounded to 16
)

// SetjmpLabel returns the function a program should call for setjmp
// under this image's scheme: the PACStack wrapper binds the buffer to
// the current ACS state, other schemes use the plain implementation.
func (img *Image) SetjmpLabel() string {
	if img.Scheme == SchemePACStack || img.Scheme == SchemePACStackNoMask {
		return "__setjmp_wrapper"
	}
	return "__setjmp"
}

// LongjmpLabel is the counterpart of SetjmpLabel.
func (img *Image) LongjmpLabel() string {
	if img.Scheme == SchemePACStack || img.Scheme == SchemePACStackNoMask {
		return "__longjmp_wrapper"
	}
	return "__longjmp"
}

func (c *compiler) emitStart(entry string) {
	c.b.Label("_start")
	// Shadow stack base for X18; harmless under other schemes.
	c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.SCS; i.Imm = int64(c.layout.ShadowBase) })
	// CR starts as the ACS seed value (auth_0 = H(ret_0, 0)).
	c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.CR; i.Imm = 0 })
	c.i(isa.BL, func(i *isa.Instr) { i.Label = entry })
	c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X0; i.Imm = 0 })
	c.i(isa.SVC, func(i *isa.Instr) { i.Imm = 0 }) // exit(0)
}

func (c *compiler) emitRuntime() {
	c.emitTaskExit()
	c.emitAcsValidate()
	c.emitStackChkFail()
	c.emitSetjmp()
	c.emitLongjmp()
	c.emitSetjmpWrapper()
	c.emitLongjmpWrapper()
	c.emitThreadSeed()
	c.emitSignalRuntime()
}

// __acs_validate is the Section 9.1 libunwind-style validator: it
// walks up to X0 stack frames along the frame-pointer chain, verifying
// each ACS link exactly as a return would — unmask with the next
// spilled aret, authenticate, compare against the stripped pointer —
// without transferring control. It returns in X0 the number of frames
// that validated, so an unwinder can ensure "a fresh and valid state
// is reached" before resuming there. The walk assumes the PACStack
// frame layout (spilled aret at [FP - 16], caller FP at [FP]); under
// other schemes the routine is a stub returning 0.
//
// Register use: X9 current aret, X10 frame pointer, X11 count,
// X12 loaded aret_{i-1}, X13/X14/X15 scratch (X15 cleared after
// carrying the mask, as in Listing 3).
func (c *compiler) emitAcsValidate() {
	c.b.Label("__acs_validate")
	if c.scheme != SchemePACStack && c.scheme != SchemePACStackNoMask {
		c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X0; i.Imm = 0 })
		c.i(isa.RET, func(i *isa.Instr) { i.Rn = isa.LR })
		return
	}
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.CR })
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X10; i.Rn = isa.FP })
	c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X11; i.Imm = 0 })
	c.b.Label("__acs_validate$loop")
	c.i(isa.CBZ, func(i *isa.Instr) { i.Rn = isa.X0; i.Label = "__acs_validate$done" })
	// X12 <- spilled aret_{i-1} of the current frame.
	c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.X12; i.Rn = isa.X10; i.Imm = -16 })
	if c.scheme == SchemePACStack {
		c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.XZR })
		c.i(isa.PACIA, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.X12 })
		c.i(isa.EOR, func(i *isa.Instr) { i.Rd = isa.X13; i.Rn = isa.X9; i.Rm = isa.X15 })
		c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.XZR })
	} else {
		c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X13; i.Rn = isa.X9 })
	}
	// Authenticate, then compare against the stripped pointer: equal
	// iff the link verifies.
	c.i(isa.AUTIA, func(i *isa.Instr) { i.Rd = isa.X13; i.Rn = isa.X12 })
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X14; i.Rn = isa.X9 })
	c.i(isa.XPACI, func(i *isa.Instr) { i.Rd = isa.X14 })
	c.i(isa.CMP, func(i *isa.Instr) { i.Rn = isa.X13; i.Rm = isa.X14 })
	c.i(isa.BCND, func(i *isa.Instr) { i.Cond = isa.NE; i.Label = "__acs_validate$done" })
	// Step outward: count, aret <- loaded, FP <- caller FP.
	c.i(isa.ADDI, func(i *isa.Instr) { i.Rd = isa.X11; i.Rn = isa.X11; i.Imm = 1 })
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.X12 })
	c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.X10; i.Rn = isa.X10; i.Imm = 0 })
	c.i(isa.SUBI, func(i *isa.Instr) { i.Rd = isa.X0; i.Rn = isa.X0; i.Imm = 1 })
	c.i(isa.B, func(i *isa.Instr) { i.Label = "__acs_validate$loop" })
	c.b.Label("__acs_validate$done")
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X0; i.Rn = isa.X11 })
	c.i(isa.RET, func(i *isa.Instr) { i.Rn = isa.LR })
}

// __task_exit terminates the calling task; it is the LR a spawned
// thread starts with, so returning from the thread function ends the
// thread (Section 4.3's "a return from the function starting the
// thread causes the thread to exit").
func (c *compiler) emitTaskExit() {
	c.b.Label("__task_exit")
	c.i(isa.SVC, func(i *isa.Instr) { i.Imm = 6 })
}

func (c *compiler) emitStackChkFail() {
	c.b.Label("__stack_chk_fail")
	// glibc aborts; exit code 134 = 128 + SIGABRT.
	c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X0; i.Imm = 134 })
	c.i(isa.SVC, func(i *isa.Instr) { i.Imm = 0 })
}

// __setjmp stores the callee-saved registers, FP, LR and SP into the
// jmp_buf at X0 and returns 0.
func (c *compiler) emitSetjmp() {
	c.b.Label("__setjmp")
	for k := 0; k < 10; k++ {
		reg, off := isa.X19+isa.Reg(k), int64(jmpBufX19+8*k)
		c.i(isa.STR, func(i *isa.Instr) { i.Rd = reg; i.Rn = isa.X0; i.Imm = off })
	}
	c.i(isa.STR, func(i *isa.Instr) { i.Rd = isa.FP; i.Rn = isa.X0; i.Imm = jmpBufFP })
	c.i(isa.STR, func(i *isa.Instr) { i.Rd = isa.LR; i.Rn = isa.X0; i.Imm = jmpBufLR })
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.SP })
	c.i(isa.STR, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.X0; i.Imm = jmpBufSP })
	c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X0; i.Imm = 0 })
	c.i(isa.RET, func(i *isa.Instr) { i.Rn = isa.LR })
}

// __longjmp restores the environment from the jmp_buf at X0 and
// resumes at the stored return address with X0 = X1 (or 1 if X1 was
// 0, per the C standard).
func (c *compiler) emitLongjmp() {
	c.b.Label("__longjmp")
	for k := 0; k < 10; k++ {
		reg, off := isa.X19+isa.Reg(k), int64(jmpBufX19+8*k)
		c.i(isa.LDR, func(i *isa.Instr) { i.Rd = reg; i.Rn = isa.X0; i.Imm = off })
	}
	c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.FP; i.Rn = isa.X0; i.Imm = jmpBufFP })
	c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.LR; i.Rn = isa.X0; i.Imm = jmpBufLR })
	c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.X0; i.Imm = jmpBufSP })
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.SP; i.Rn = isa.X9 })
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X0; i.Rn = isa.X1 })
	c.i(isa.CBNZ, func(i *isa.Instr) { i.Rn = isa.X0; i.Label = "__longjmp$go" })
	c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X0; i.Imm = 1 })
	c.b.Label("__longjmp$go")
	c.i(isa.RET, func(i *isa.Instr) { i.Rn = isa.LR })
}

// __setjmp_wrapper is the Listing 4 construction: before the buffer
// is filled, the stored return address is replaced by
//
//	aret_b = pacia(ret_b, aret_i) XOR pacia(SP_b, aret_i)
//
// which cryptographically binds it to both the current ACS state
// (aret_i, in CR) and the SP at the setjmp call. The wrapper itself is
// a leaf and returns normally.
func (c *compiler) emitSetjmpWrapper() {
	c.b.Label("__setjmp_wrapper")
	// Fill the buffer exactly like __setjmp (X28 slot = aret_i).
	for k := 0; k < 10; k++ {
		reg, off := isa.X19+isa.Reg(k), int64(jmpBufX19+8*k)
		c.i(isa.STR, func(i *isa.Instr) { i.Rd = reg; i.Rn = isa.X0; i.Imm = off })
	}
	c.i(isa.STR, func(i *isa.Instr) { i.Rd = isa.FP; i.Rn = isa.X0; i.Imm = jmpBufFP })
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.SP })
	c.i(isa.STR, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.X0; i.Imm = jmpBufSP })
	// aret_b = pacia(ret_b, aret_i) ^ pacia(SP_b, aret_i).
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.SP })
	c.i(isa.PACIA, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.CR })
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.LR })
	c.i(isa.PACIA, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.CR })
	c.i(isa.EOR, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.X9; i.Rm = isa.X15 })
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.XZR })
	c.i(isa.STR, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.X0; i.Imm = jmpBufLR })
	c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X0; i.Imm = 0 })
	c.i(isa.RET, func(i *isa.Instr) { i.Rn = isa.LR })
}

// __longjmp_wrapper is the Listing 5 construction: it restores CR to
// the aret_i stored in the buffer, recomputes the SP binding, and
// authenticates aret_b before jumping. A forged or stale buffer fails
// authentication and the jump faults.
func (c *compiler) emitLongjmpWrapper() {
	c.b.Label("__longjmp_wrapper")
	// CR <- aret_i; also restores the other callee-saved registers.
	for k := 0; k < 10; k++ {
		reg, off := isa.X19+isa.Reg(k), int64(jmpBufX19+8*k)
		c.i(isa.LDR, func(i *isa.Instr) { i.Rd = reg; i.Rn = isa.X0; i.Imm = off })
	}
	c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.FP; i.Rn = isa.X0; i.Imm = jmpBufFP })
	c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.X0; i.Imm = jmpBufLR })  // aret_b
	c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.X0; i.Imm = jmpBufSP }) // SP_b
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X10; i.Rn = isa.X15 })
	// Strip the SP binding: X9 ^= pacia(SP_b, aret_i).
	c.i(isa.PACIA, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.CR })
	c.i(isa.EOR, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.X9; i.Rm = isa.X15 })
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X15; i.Rn = isa.XZR })
	// Verify against aret_i; a mismatch poisons X9.
	c.i(isa.AUTIA, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.CR })
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.LR; i.Rn = isa.X9 })
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.SP; i.Rn = isa.X10 })
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.X0; i.Rn = isa.X1 })
	c.i(isa.CBNZ, func(i *isa.Instr) { i.Rn = isa.X0; i.Label = "__longjmp_wrapper$go" })
	c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X0; i.Imm = 1 })
	c.b.Label("__longjmp_wrapper$go")
	c.i(isa.RET, func(i *isa.Instr) { i.Rn = isa.LR })
}

// emitSignalRuntime emits the signal-handling runtime every image
// carries, the libc rt_sigreturn analogue:
//
//   - __sigreturn is the trampoline the kernel points LR at when it
//     delivers a signal (kernel.Process.DeliverSignal); returning from
//     the handler lands here and issues the sigreturn system call,
//     which restores the interrupted context from the frame at SP.
//   - __sig_handler is a minimal do-nothing handler (a leaf: it
//     neither spills LR nor touches CR) that programs without their
//     own handler can field signals with; the fault-injection engine
//     uses it for its signal-frame tampering campaigns.
func (c *compiler) emitSignalRuntime() {
	c.b.Label("__sigreturn")
	c.i(isa.SVC, func(i *isa.Instr) { i.Imm = 4 })
	c.b.Label("__sig_handler")
	c.i(isa.RET, func(i *isa.Instr) { i.Rn = isa.LR })
}

// __thread_seed re-seeds the ACS for a new thread (Section 4.3): CR is
// derived from the thread ID, making the thread's chain disjoint from
// every other chain and defeating divide-and-conquer guessing.
func (c *compiler) emitThreadSeed() {
	c.b.Label("__thread_seed")
	c.i(isa.SVC, func(i *isa.Instr) { i.Imm = 8 }) // gettid -> X0
	c.i(isa.MOV, func(i *isa.Instr) { i.Rd = isa.CR; i.Rn = isa.X0 })
	c.i(isa.PACIA, func(i *isa.Instr) { i.Rd = isa.CR; i.Rn = isa.XZR })
	c.i(isa.RET, func(i *isa.Instr) { i.Rn = isa.LR })
}
