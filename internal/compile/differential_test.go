package compile

import (
	"fmt"
	"testing"

	"pacstack/internal/ir"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
)

// The differential test: randomly generated programs must behave
// identically — same output, same exit code — under every protection
// scheme. This is the strongest functional statement about the
// instrumentation (requirement R3: applicable to standard code
// without modification), and it exercises tail calls, indirect calls,
// setjmp/longjmp, mixed instrumentation and frame layouts in
// combinations no hand-written test covers.

type behaviour struct {
	output string
	exit   uint64
	err    string
}

func observe(t *testing.T, p *ir.Program, s Scheme) behaviour {
	t.Helper()
	img, err := Compile(p, s, DefaultLayout())
	if err != nil {
		t.Fatalf("%v: compile: %v", s, err)
	}
	proc, err := img.Boot(kernel.New(pa.DefaultConfig()))
	if err != nil {
		t.Fatalf("%v: boot: %v", s, err)
	}
	b := behaviour{}
	if err := proc.Run(5_000_000); err != nil {
		b.err = fmt.Sprintf("%T", err) // error class only; addresses differ
	}
	b.output = string(proc.Output)
	b.exit = proc.ExitCode
	return b
}

func TestDifferentialSchemesAgree(t *testing.T) {
	const programs = 60
	cfg := ir.DefaultGenConfig()
	for seed := int64(0); seed < programs; seed++ {
		p := ir.Generate(cfg, seed)
		ref := observe(t, p, SchemeNone)
		if ref.err != "" {
			t.Fatalf("seed %d: baseline errored: %s", seed, ref.err)
		}
		for _, s := range Schemes[1:] {
			got := observe(t, p, s)
			if got != ref {
				t.Errorf("seed %d: %v diverged: %+v != %+v", seed, s, got, ref)
			}
		}
	}
}

func TestDifferentialLargePrograms(t *testing.T) {
	cfg := ir.GenConfig{
		Functions: 24,
		MaxOps:    10,
		MaxLocals: 5,
		MaxLoop:   4,
		TailCalls: true,
		Jmp:       true,
	}
	for seed := int64(100); seed < 110; seed++ {
		p := ir.Generate(cfg, seed)
		ref := observe(t, p, SchemeNone)
		for _, s := range []Scheme{SchemePACStack, SchemePACStackNoMask, SchemeShadowStack} {
			got := observe(t, p, s)
			if got != ref {
				t.Errorf("seed %d: %v diverged: %+v != %+v", seed, s, got, ref)
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := ir.Generate(ir.DefaultGenConfig(), 7)
	b := ir.Generate(ir.DefaultGenConfig(), 7)
	if len(a.Functions) != len(b.Functions) {
		t.Fatal("non-deterministic function count")
	}
	for i := range a.Functions {
		if fmt.Sprint(a.Functions[i].Body) != fmt.Sprint(b.Functions[i].Body) {
			t.Fatalf("function %d differs between identical seeds", i)
		}
	}
	c := ir.Generate(ir.DefaultGenConfig(), 8)
	if fmt.Sprint(a.Functions[0].Body) == fmt.Sprint(c.Functions[0].Body) &&
		fmt.Sprint(a.Functions[1].Body) == fmt.Sprint(c.Functions[1].Body) {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratedProgramsTerminate(t *testing.T) {
	// Structural termination: every generated program must halt well
	// within the step budget under the baseline.
	for seed := int64(200); seed < 230; seed++ {
		p := ir.Generate(ir.DefaultGenConfig(), seed)
		b := observe(t, p, SchemeNone)
		if b.err != "" {
			t.Errorf("seed %d: %s", seed, b.err)
		}
	}
}

func TestDifferentialSeed70Regression(t *testing.T) {
	// Found by BenchmarkDifferentialSchemes: an *uninstrumented*
	// function performing longjmp in a PACStack build must use the
	// binding wrapper (program-wide interposition), or it restores a
	// signed LR from a buffer the instrumented setjmp wrote and
	// faults. Seed 70 generates exactly that shape.
	p := ir.Generate(ir.DefaultGenConfig(), 70)
	ref := observe(t, p, SchemeNone)
	for _, s := range Schemes[1:] {
		got := observe(t, p, s)
		if got != ref {
			t.Errorf("%v diverged: %+v != %+v", s, got, ref)
		}
	}
}

func TestDifferentialWideSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("wide sweep skipped in -short mode")
	}
	cfg := ir.DefaultGenConfig()
	for seed := int64(60); seed < 160; seed++ {
		p := ir.Generate(cfg, seed)
		ref := observe(t, p, SchemeNone)
		for _, s := range []Scheme{SchemePACStack, SchemePACStackNoMask, SchemeStaticCFI} {
			if got := observe(t, p, s); got != ref {
				t.Errorf("seed %d: %v diverged: %+v != %+v", seed, s, got, ref)
			}
		}
	}
}
