// Package compile lowers the function-level IR of internal/ir to
// machine code, applying one of the return-address protection schemes
// evaluated in the paper. It is the analogue of the modified LLVM
// AArch64 backend: all schemes differ only in the prologue/epilogue
// sequences emitted around otherwise identical function bodies
// (Section 5, Listings 1–3).
package compile

import "fmt"

// Scheme selects the return-address protection applied to every
// instrumentable (non-leaf) function.
type Scheme int

// The six configurations measured in Section 7.
const (
	// SchemeNone is the uninstrumented baseline.
	SchemeNone Scheme = iota
	// SchemeCanary is -mstack-protector-strong: a per-process random
	// canary between local buffers and the frame record, checked
	// before return in functions with addressable locals.
	SchemeCanary
	// SchemeBranchProtection is -mbranch-protection (Listing 1):
	// paciasp/retaa with the SP value as modifier.
	SchemeBranchProtection
	// SchemeShadowStack is the Clang ShadowCallStack: return
	// addresses are pushed to a separate stack addressed by X18 and
	// reloaded from there before returning.
	SchemeShadowStack
	// SchemePACStackNoMask is ACS without PAC masking (Listing 2).
	SchemePACStackNoMask
	// SchemePACStack is full ACS with PAC masking (Listing 3).
	SchemePACStack
	// SchemeStaticCFI is the fully-precise *stateless* static CFI
	// comparator for returns (Sections 6.3/8): returns in F may target
	// any instruction following a call to F. Modelled as an
	// oracle-checked policy (see staticcfi.go); it exists to
	// demonstrate control-flow bending, which stateless policies
	// permit and PACStack does not.
	SchemeStaticCFI
)

// Schemes lists every scheme in evaluation order.
var Schemes = []Scheme{
	SchemeNone,
	SchemeCanary,
	SchemeBranchProtection,
	SchemeShadowStack,
	SchemePACStackNoMask,
	SchemePACStack,
	SchemeStaticCFI,
}

// String returns the name used in the paper's tables.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "baseline"
	case SchemeCanary:
		return "-mstack-protector-strong"
	case SchemeBranchProtection:
		return "-mbranch-protection"
	case SchemeShadowStack:
		return "ShadowCallStack"
	case SchemePACStackNoMask:
		return "PACStack-nomask"
	case SchemePACStack:
		return "PACStack"
	case SchemeStaticCFI:
		return "fully-precise static CFI"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Layout fixes the address-space plan of a compiled image.
type Layout struct {
	CodeBase    uint64
	GlobalsBase uint64 // canary and other process globals
	ShadowBase  uint64 // ShadowCallStack region
	ShadowSize  uint64
	StackBase   uint64
	StackSize   uint64
}

// DefaultLayout returns the layout used throughout the test suite and
// benchmarks.
func DefaultLayout() Layout {
	return Layout{
		CodeBase:    0x0010_0000,
		GlobalsBase: 0x0020_0000,
		ShadowBase:  0x0030_0000,
		ShadowSize:  0x8000,
		StackBase:   0x0040_0000,
		StackSize:   0x10000,
	}
}

// CanaryAddr is where the stack-protector reference canary lives.
func (l Layout) CanaryAddr() uint64 { return l.GlobalsBase }

// JmpBufAddr returns the address of process-global jmp_buf number n.
func (l Layout) JmpBufAddr(n int) uint64 {
	return l.GlobalsBase + 0x100 + uint64(n)*JmpBufSize
}

// StackTop is the initial SP.
func (l Layout) StackTop() uint64 { return l.StackBase + l.StackSize }
