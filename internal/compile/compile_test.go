package compile

import (
	"errors"
	"strings"
	"testing"

	"pacstack/internal/cpu"
	"pacstack/internal/ir"
	"pacstack/internal/isa"
	"pacstack/internal/kernel"
	"pacstack/internal/mem"
	"pacstack/internal/pa"
)

func testKernel() *kernel.Kernel { return kernel.New(pa.DefaultConfig()) }

// demoProgram exercises calls, indirect calls, locals, loops and
// output; every scheme must run it to the same result.
func demoProgram() *ir.Program {
	return &ir.Program{
		Entry: "main",
		Functions: []*ir.Function{
			{
				Name:   "main",
				Locals: 2,
				Body: []ir.Op{
					ir.StoreLocal{Slot: 0, Value: 7},
					ir.Call{Target: "work"},
					ir.Loop{Count: 3, Body: []ir.Op{
						ir.Call{Target: "work"},
						ir.Write{Byte: '.'},
					}},
					ir.CallPtr{Target: "leafy"},
					ir.LoadLocal{Slot: 0},
					ir.Write{Byte: '!'},
				},
			},
			{
				Name:   "work",
				Locals: 1,
				Body: []ir.Op{
					ir.StoreLocal{Slot: 0, Value: 1},
					ir.Compute{Units: 10},
					ir.Call{Target: "leafy"},
					ir.Write{Byte: 'w'},
				},
			},
			{
				Name: "leafy",
				Body: []ir.Op{ir.Compute{Units: 3}},
			},
		},
	}
}

func runScheme(t *testing.T, p *ir.Program, s Scheme) *kernel.Process {
	t.Helper()
	img, err := Compile(p, s, DefaultLayout())
	if err != nil {
		t.Fatalf("%v: %v", s, err)
	}
	proc, err := img.Boot(testKernel())
	if err != nil {
		t.Fatalf("%v: %v", s, err)
	}
	if err := proc.Run(10_000_000); err != nil {
		t.Fatalf("%v: %v\n%s", s, err, img.Prog.Disassemble())
	}
	return proc
}

func TestAllSchemesBehaveIdentically(t *testing.T) {
	const want = "ww.w.w.!"
	for _, s := range Schemes {
		proc := runScheme(t, demoProgram(), s)
		if got := string(proc.Output); got != want {
			t.Errorf("%v: output %q, want %q", s, got, want)
		}
		if proc.ExitCode != 0 {
			t.Errorf("%v: exit code %d", s, proc.ExitCode)
		}
	}
}

func TestSchemeOverheadOrdering(t *testing.T) {
	// A call-heavy workload: instrumentation cost must rank
	// baseline <= every scheme, nomask <= mask, and PACStack must be
	// the most expensive of the PA-based schemes (Table 2's shape).
	p := &ir.Program{
		Entry: "main",
		Functions: []*ir.Function{
			{Name: "main", Body: []ir.Op{
				ir.Loop{Count: 200, Body: []ir.Op{ir.Call{Target: "f"}}},
			}},
			{Name: "f", Body: []ir.Op{ir.Call{Target: "g"}}},
			{Name: "g", Body: []ir.Op{ir.Compute{Units: 2}}},
		},
	}
	cycles := map[Scheme]uint64{}
	for _, s := range Schemes {
		cycles[s] = runScheme(t, p, s).Cycles()
	}
	base := cycles[SchemeNone]
	for _, s := range Schemes[1:] {
		if cycles[s] < base {
			t.Errorf("%v (%d cycles) cheaper than baseline (%d)", s, cycles[s], base)
		}
	}
	if cycles[SchemePACStackNoMask] >= cycles[SchemePACStack] {
		t.Errorf("nomask (%d) should be cheaper than masked (%d)",
			cycles[SchemePACStackNoMask], cycles[SchemePACStack])
	}
	if cycles[SchemeBranchProtection] > cycles[SchemePACStack] {
		t.Errorf("-mbranch-protection (%d) should not exceed PACStack (%d)",
			cycles[SchemeBranchProtection], cycles[SchemePACStack])
	}
}

// sequence extracts the ops of function fn from the image.
func sequence(t *testing.T, img *Image, fn string) []isa.Op {
	t.Helper()
	start := img.Prog.MustLookup(fn)
	var ops []isa.Op
	for addr := start; ; addr += isa.InstrSize {
		ins, err := img.Prog.At(addr)
		if err != nil {
			break
		}
		ops = append(ops, ins.Op)
		if ins.Op == isa.RET || ins.Op == isa.RETAA {
			break
		}
	}
	return ops
}

func TestPACStackEmitsListing3(t *testing.T) {
	p := &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{ir.Call{Target: "leaf"}}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
	img := MustCompile(p, SchemePACStack, DefaultLayout())
	got := sequence(t, img, "main")
	want := []isa.Op{
		// Prologue, Listing 3.
		isa.STRPRE, isa.STP, isa.ADDI, // str X28; stp FP, LR; FP setup
		isa.MOV, isa.PACIA, isa.PACIA, isa.EOR, isa.MOV, // masking
		isa.MOV, // CR <- aret
		isa.BL,
		// Epilogue, Listing 3.
		isa.MOV, isa.LDR, isa.LDRPOST,
		isa.MOV, isa.PACIA, isa.EOR, isa.MOV,
		isa.AUTIA, isa.RET,
	}
	if len(got) != len(want) {
		t.Fatalf("sequence length %d, want %d:\n%s", len(got), len(want), img.Prog.Disassemble())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("op %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPACStackNoMaskEmitsListing2(t *testing.T) {
	p := &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{ir.Call{Target: "leaf"}}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
	img := MustCompile(p, SchemePACStackNoMask, DefaultLayout())
	got := sequence(t, img, "main")
	want := []isa.Op{
		isa.STRPRE, isa.STP, isa.ADDI, isa.PACIA, isa.MOV,
		isa.BL,
		isa.MOV, isa.LDR, isa.LDRPOST, isa.AUTIA, isa.RET,
	}
	if len(got) != len(want) {
		t.Fatalf("sequence length %d, want %d:\n%s", len(got), len(want), img.Prog.Disassemble())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("op %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBranchProtectionEmitsListing1(t *testing.T) {
	p := &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{ir.Call{Target: "leaf"}}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
	img := MustCompile(p, SchemeBranchProtection, DefaultLayout())
	got := sequence(t, img, "main")
	if got[0] != isa.PACIASP {
		t.Errorf("first op = %v, want PACIASP", got[0])
	}
	if got[len(got)-1] != isa.RETAA {
		t.Errorf("last op = %v, want RETAA", got[len(got)-1])
	}
}

func TestLeafFunctionsNotInstrumented(t *testing.T) {
	p := &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{ir.Call{Target: "leaf"}}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
	for _, s := range Schemes {
		img := MustCompile(p, s, DefaultLayout())
		for _, op := range sequence(t, img, "leaf") {
			switch op {
			case isa.PACIA, isa.PACIASP, isa.RETAA, isa.AUTIA, isa.STP, isa.STRPRE:
				t.Errorf("%v: leaf contains %v", s, op)
			}
		}
	}
}

func TestTailCallLowering(t *testing.T) {
	p := &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{
			ir.Call{Target: "a"},
			ir.Write{Byte: 'm'},
		}},
		{Name: "a", Body: []ir.Op{
			ir.Write{Byte: 'a'},
			ir.TailCall{Target: "b"},
		}},
		{Name: "b", Body: []ir.Op{
			ir.Call{Target: "leaf"},
			ir.Write{Byte: 'b'},
		}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
	// b must return directly to main through a's tail call, under
	// every scheme (Listing 8 behaviour).
	for _, s := range Schemes {
		proc := runScheme(t, p, s)
		if got := string(proc.Output); got != "abm" {
			t.Errorf("%v: output %q, want \"abm\"", s, got)
		}
	}
}

func TestNestedLoopsAndLocals(t *testing.T) {
	p := &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Locals: 1, Body: []ir.Op{
			ir.Loop{Count: 2, Body: []ir.Op{
				ir.Loop{Count: 3, Body: []ir.Op{
					ir.Call{Target: "tick"},
				}},
			}},
		}},
		{Name: "tick", Body: []ir.Op{ir.Write{Byte: 't'}, ir.Call{Target: "leaf"}}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
	for _, s := range []Scheme{SchemeNone, SchemePACStack} {
		proc := runScheme(t, p, s)
		if got := strings.Count(string(proc.Output), "t"); got != 6 {
			t.Errorf("%v: %d ticks, want 6", s, got)
		}
	}
}

func TestSetjmpLongjmpAcrossSchemes(t *testing.T) {
	// main: setjmp; if returned via longjmp write 'R'; else call f
	// which longjmps back.
	p := &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{
			ir.SetJmp{Buf: 0},
			ir.IfNZ{Then: []ir.Op{
				ir.Write{Byte: 'R'},
				ir.Exit{Code: 7},
			}},
			ir.Write{Byte: 'S'},
			ir.Call{Target: "f"},
			ir.Write{Byte: 'X'}, // must be skipped by the longjmp
		}},
		{Name: "f", Body: []ir.Op{
			ir.Write{Byte: 'f'},
			ir.LongJmp{Buf: 0, Value: 1},
			ir.Write{Byte: 'Y'}, // unreachable
		}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
	for _, s := range Schemes {
		proc := runScheme(t, p, s)
		if got := string(proc.Output); got != "SfR" {
			t.Errorf("%v: output %q, want \"SfR\"", s, got)
		}
		if proc.ExitCode != 7 {
			t.Errorf("%v: exit %d, want 7", s, proc.ExitCode)
		}
	}
}

// pokeOnEntry arranges for fn() to run once when execution first
// reaches the given symbol.
func pokeOnEntry(proc *kernel.Process, addr uint64, fn func(m interface{ Reg(isa.Reg) uint64 })) {
	fired := false
	m := proc.Tasks[0].M
	m.Trace = func(pc uint64, ins isa.Instr) {
		if pc == addr && !fired {
			fired = true
			fn(m)
		}
	}
}

func TestPACStackDetectsChainSlotCorruption(t *testing.T) {
	// The adversary overwrites the spilled aret_{i-1} in main's
	// frame while a callee runs; main's epilogue must then poison LR
	// and the return faults.
	p := &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{ir.Call{Target: "f"}}},
		{Name: "f", Body: []ir.Op{ir.Call{Target: "leaf"}}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
	for _, s := range []Scheme{SchemePACStack, SchemePACStackNoMask} {
		img := MustCompile(p, s, DefaultLayout())
		proc := img.MustBoot(testKernel())
		adv := mem.NewAdversary(proc.Mem)
		// When f is entered, f's frame holds main's aret at [SP];
		// corrupt it.
		pokeOnEntry(proc, img.FuncEntries["f"]+5*isa.InstrSize, func(m interface{ Reg(isa.Reg) uint64 }) {
			if err := adv.Poke(m.Reg(isa.SP), 0x1234_5678); err != nil {
				t.Fatal(err)
			}
		})
		err := proc.Run(100_000)
		if err == nil {
			t.Errorf("%v: chain-slot corruption went undetected", s)
		}
	}
}

func TestPACStackIgnoresFrameRecordReturnAddress(t *testing.T) {
	// Section 5 / R3: the unmodified frame record is stored for
	// compatibility but never trusted. Corrupting it must have no
	// effect under PACStack — while the baseline is hijacked by the
	// same write.
	p := &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{ir.Call{Target: "f"}, ir.Write{Byte: 'k'}}},
		{Name: "f", Body: []ir.Op{ir.Call{Target: "leaf"}}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
	img := MustCompile(p, SchemePACStack, DefaultLayout())
	proc := img.MustBoot(testKernel())
	adv := mem.NewAdversary(proc.Mem)
	pokeOnEntry(proc, img.FuncEntries["f"]+5*isa.InstrSize, func(m interface{ Reg(isa.Reg) uint64 }) {
		// f's frame record return-address slot is at [SP, #24].
		if err := adv.Poke(m.Reg(isa.SP)+24, 0xBAD); err != nil {
			t.Fatal(err)
		}
	})
	if err := proc.Run(100_000); err != nil {
		t.Fatalf("PACStack used the frame-record return address: %v", err)
	}
	if string(proc.Output) != "k" {
		t.Errorf("output %q", proc.Output)
	}
}

func TestBaselineHijackedByReturnAddressOverwrite(t *testing.T) {
	// Control: without protection, overwriting the spilled LR
	// redirects the return.
	p := &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{ir.Call{Target: "f"}, ir.Write{Byte: 'k'}}},
		{Name: "f", Body: []ir.Op{ir.Call{Target: "leaf"}}},
		{Name: "gadget", Body: []ir.Op{ir.Write{Byte: 'G'}, ir.Exit{Code: 42}}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
	img := MustCompile(p, SchemeNone, DefaultLayout())
	proc := img.MustBoot(testKernel())
	adv := mem.NewAdversary(proc.Mem)
	// Baseline f prologue: stp FP, LR, [SP, #-16]! => return address
	// at [SP, #8] once the two prologue instructions ran.
	pokeOnEntry(proc, img.FuncEntries["f"]+2*isa.InstrSize, func(m interface{ Reg(isa.Reg) uint64 }) {
		if err := adv.Poke(m.Reg(isa.SP)+8, img.FuncEntries["gadget"]); err != nil {
			t.Fatal(err)
		}
	})
	if err := proc.Run(100_000); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if !strings.Contains(string(proc.Output), "G") {
		t.Errorf("hijack failed; output %q", proc.Output)
	}
}

func TestCanaryDetectsOverflowStyleCorruption(t *testing.T) {
	p := &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{
			ir.Call{Target: "victim"},
			ir.Write{Byte: 'k'},
		}},
		{Name: "victim", Locals: 1, Body: []ir.Op{
			ir.StoreLocal{Slot: 0, Value: 5},
			ir.Call{Target: "leaf"},
		}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
	img := MustCompile(p, SchemeCanary, DefaultLayout())
	proc := img.MustBoot(testKernel())
	adv := mem.NewAdversary(proc.Mem)
	// While leaf runs, victim's canary sits at [SP + 8] (slot above
	// the one user local; leaf has no frame).
	pokeOnEntry(proc, img.FuncEntries["leaf"], func(m interface{ Reg(isa.Reg) uint64 }) {
		if err := adv.Poke(m.Reg(isa.SP)+8, 0xDEAD_BEEF); err != nil {
			t.Fatal(err)
		}
	})
	if err := proc.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if proc.ExitCode != 134 {
		t.Errorf("exit code %d, want 134 (__stack_chk_fail)", proc.ExitCode)
	}
	if strings.Contains(string(proc.Output), "k") {
		t.Error("function returned normally despite canary corruption")
	}
}

func TestCFIBlocksIndirectCallToNonEntry(t *testing.T) {
	p := &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{ir.CallPtr{Target: "f"}}},
		{Name: "f", Body: []ir.Op{ir.Call{Target: "leaf"}}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
	img := MustCompile(p, SchemeNone, DefaultLayout())
	proc := img.MustBoot(testKernel())
	// Redirect the indirect call into the middle of f by rewriting
	// X12 just before the BLR retires.
	m := proc.Tasks[0].M
	m.Trace = func(pc uint64, ins isa.Instr) {
		if ins.Op == isa.BLR {
			m.SetReg(isa.X12, img.FuncEntries["f"]+8)
		}
	}
	err := proc.Run(100_000)
	var viol *cpu.CFIViolation
	if !errors.As(err, &viol) || viol.Edge != "call" {
		t.Errorf("err = %v, want call-edge CFI violation", err)
	}
}

func TestCompileRejectsBadPrograms(t *testing.T) {
	bad := []*ir.Program{
		{Entry: "missing"},
		{Entry: "f", Functions: []*ir.Function{
			{Name: "f", Body: []ir.Op{ir.Call{Target: "nope"}}},
		}},
		{Entry: "f", Functions: []*ir.Function{
			{Name: "f", Body: []ir.Op{ir.TailCall{Target: "f"}, ir.Write{Byte: 'x'}}},
		}},
		{Entry: "__evil", Functions: []*ir.Function{
			{Name: "__evil", Body: nil},
		}},
		{Entry: "f", Functions: []*ir.Function{
			{Name: "f", Locals: 1, Body: []ir.Op{ir.StoreLocal{Slot: 5}}},
		}},
		{Entry: "f", Functions: []*ir.Function{
			{Name: "f", Body: []ir.Op{ir.SetJmp{Buf: 99}}},
		}},
	}
	for i, p := range bad {
		if _, err := Compile(p, SchemeNone, DefaultLayout()); err == nil {
			t.Errorf("program %d compiled, want error", i)
		}
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		SchemeNone:             "baseline",
		SchemeCanary:           "-mstack-protector-strong",
		SchemeBranchProtection: "-mbranch-protection",
		SchemeShadowStack:      "ShadowCallStack",
		SchemePACStackNoMask:   "PACStack-nomask",
		SchemePACStack:         "PACStack",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestShadowStackReloadsFromShadowRegion(t *testing.T) {
	// Corrupting the main-stack frame record must not divert a
	// ShadowCallStack-protected return.
	p := &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{ir.Call{Target: "f"}, ir.Write{Byte: 'k'}}},
		{Name: "f", Body: []ir.Op{ir.Call{Target: "leaf"}}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
	img := MustCompile(p, SchemeShadowStack, DefaultLayout())
	proc := img.MustBoot(testKernel())
	adv := mem.NewAdversary(proc.Mem)
	pokeOnEntry(proc, img.FuncEntries["leaf"], func(m interface{ Reg(isa.Reg) uint64 }) {
		// f's frame record LR is at [SP, #8] while leaf runs.
		if err := adv.Poke(m.Reg(isa.SP)+8, 0xBAD); err != nil {
			t.Fatal(err)
		}
	})
	if err := proc.Run(100_000); err != nil {
		t.Fatalf("shadow stack used the corrupted main-stack value: %v", err)
	}
	if string(proc.Output) != "k" {
		t.Errorf("output %q", proc.Output)
	}
}

func TestShadowStackVulnerableWhenLocationKnown(t *testing.T) {
	// The paper's point about software shadow stacks (Section 1):
	// with full memory disclosure the shadow region itself can be
	// rewritten. Our adversary knows the layout, so the same hijack
	// succeeds against the shadow copy.
	p := &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{ir.Call{Target: "f"}, ir.Write{Byte: 'k'}}},
		{Name: "f", Body: []ir.Op{ir.Call{Target: "leaf"}}},
		{Name: "gadget", Body: []ir.Op{ir.Write{Byte: 'G'}, ir.Exit{Code: 42}}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
	img := MustCompile(p, SchemeShadowStack, DefaultLayout())
	proc := img.MustBoot(testKernel())
	adv := mem.NewAdversary(proc.Mem)
	pokeOnEntry(proc, img.FuncEntries["leaf"], func(m interface{ Reg(isa.Reg) uint64 }) {
		// The shadow stack holds main's and f's return addresses; f's
		// is the most recent push, at ShadowBase + 8.
		if err := adv.Poke(img.Layout.ShadowBase+8, img.FuncEntries["gadget"]); err != nil {
			t.Fatal(err)
		}
	})
	if err := proc.Run(100_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(string(proc.Output), "G") {
		t.Errorf("shadow-stack hijack failed; output %q", proc.Output)
	}
}

func validateProgram() *ir.Program {
	return &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{ir.Call{Target: "f"}, ir.Write{Byte: 'k'}}},
		{Name: "f", Body: []ir.Op{ir.Call{Target: "g"}}},
		{Name: "g", Body: []ir.Op{
			ir.Call{Target: "leaf"},
			ir.ValidateFrames{Max: 3},
		}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 1}}},
	}}
}

func TestAcsValidateWalksCleanChain(t *testing.T) {
	// Section 9.1: the frame-by-frame validator confirms the whole
	// chain g -> f -> main on an untampered stack.
	for _, s := range []Scheme{SchemePACStack, SchemePACStackNoMask} {
		proc := runScheme(t, validateProgram(), s)
		if got := string(proc.Output); got != "3k" {
			t.Errorf("%v: output %q, want \"3k\"", s, got)
		}
	}
	// Under unprotected schemes the validator is a stub returning 0.
	proc := runScheme(t, validateProgram(), SchemeNone)
	if got := string(proc.Output); got != "0k" {
		t.Errorf("baseline: output %q, want \"0k\"", got)
	}
}

func TestAcsValidateDetectsCorruptDepth(t *testing.T) {
	// Corrupting f's spilled chain value must stop the walk after
	// exactly one valid frame (g's own link), before any control
	// transfer happens.
	img := MustCompile(validateProgram(), SchemePACStack, DefaultLayout())
	proc := img.MustBoot(testKernel())
	adv := mem.NewAdversary(proc.Mem)
	pokeOnEntry(proc, img.FuncEntries["g"]+9*isa.InstrSize, func(m interface{ Reg(isa.Reg) uint64 }) {
		// At this point g's prologue ran; f's frame (and its spilled
		// slot holding main's aret) sits just above g's 32-byte frame.
		if err := adv.Poke(m.Reg(isa.SP)+32, 0xBADBAD); err != nil {
			t.Fatal(err)
		}
	})
	err := proc.Run(100_000)
	if err == nil {
		t.Fatal("f's eventual return should fault on the corrupt chain")
	}
	if got := string(proc.Output); got != "1" {
		t.Errorf("validator output %q, want \"1\" (stop after g's link)", got)
	}
}

func TestBootLoadsRealCodeBytes(t *testing.T) {
	// The text segment in simulated memory must decode back to the
	// program the CPU executes — code is real data in the address
	// space, sealed execute-only by the loader.
	img := MustCompile(demoProgram(), SchemePACStack, DefaultLayout())
	proc := img.MustBoot(testKernel())
	raw, err := proc.Mem.ReadBytes(img.Layout.CodeBase, img.Prog.Size())
	if err != nil {
		t.Fatal(err)
	}
	back, err := isa.DecodeProgram(img.Layout.CodeBase, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !isa.SameCode(img.Prog, back) {
		t.Error("memory image does not decode to the executing program")
	}
	// And W(+)X still holds: the adversary cannot patch the bytes.
	adv := mem.NewAdversary(proc.Mem)
	if err := adv.Poke(img.Layout.CodeBase, 0); err == nil {
		t.Error("adversary modified sealed code")
	}
	// The process still runs from the sealed pages.
	if err := proc.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
}
