package compile

import (
	"fmt"
	"strings"

	"pacstack/internal/ir"
	"pacstack/internal/isa"
)

// Image is a compiled program: the linked machine code plus the
// metadata the loader needs.
type Image struct {
	Prog   *isa.Program
	Scheme Scheme
	Layout Layout
	IR     *ir.Program

	// FuncEntries maps every function (including runtime functions)
	// to its entry address; Boot uses it as the allowed-target set
	// for the assumption-A2 forward-edge CFI.
	FuncEntries map[string]uint64
}

// reservedPrefix guards generated label space.
const reservedPrefix = "__"

// Compile lowers p under the given scheme.
func Compile(p *ir.Program, scheme Scheme, layout Layout) (*Image, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for _, f := range p.Functions {
		if strings.HasPrefix(f.Name, reservedPrefix) || strings.Contains(f.Name, "$") {
			return nil, fmt.Errorf("compile: function name %q collides with generated labels", f.Name)
		}
	}

	c := &compiler{
		b:      isa.NewBuilder(layout.CodeBase),
		scheme: scheme,
		layout: layout,
	}
	c.emitStart(p.Entry)
	for _, f := range p.Functions {
		c.lowerFunction(f)
	}
	c.emitRuntime()

	prog, err := c.b.Link()
	if err != nil {
		return nil, err
	}
	img := &Image{
		Prog:        prog,
		Scheme:      scheme,
		Layout:      layout,
		IR:          p,
		FuncEntries: make(map[string]uint64),
	}
	for _, f := range p.Functions {
		img.FuncEntries[f.Name] = prog.MustLookup(f.Name)
	}
	for _, rt := range []string{"_start", "__task_exit", "__acs_validate", "__stack_chk_fail",
		"__setjmp", "__longjmp", "__setjmp_wrapper", "__longjmp_wrapper", "__thread_seed",
		"__sigreturn", "__sig_handler"} {
		img.FuncEntries[rt] = prog.MustLookup(rt)
	}
	return img, nil
}

// MustCompile is Compile that panics on error, for static fixtures.
func MustCompile(p *ir.Program, scheme Scheme, layout Layout) *Image {
	img, err := Compile(p, scheme, layout)
	if err != nil {
		panic(err)
	}
	return img
}

type compiler struct {
	b      *isa.Builder
	scheme Scheme
	layout Layout
	labels int
}

func (c *compiler) newLabel(fn, kind string) string {
	c.labels++
	return fmt.Sprintf("%s$%s%d", fn, kind, c.labels)
}

func (c *compiler) i(op isa.Op, mk func(*isa.Instr)) {
	ins := isa.Instr{Op: op}
	if mk != nil {
		mk(&ins)
	}
	c.b.Emit(ins)
}

// frameInfo captures the per-function stack frame plan.
type frameInfo struct {
	f         *ir.Function
	scheme    Scheme // effective scheme: SchemeNone when uninstrumented
	leaf      bool
	userSlots int
	loopSlots int
	hasCanary bool
	localSize int64 // bytes reserved below the frame record, 16-aligned
}

func (c *compiler) plan(f *ir.Function) frameInfo {
	fi := frameInfo{
		f:         f,
		scheme:    c.scheme,
		leaf:      f.IsLeaf(),
		userSlots: f.Locals,
		loopSlots: countLoops(f.Body),
	}
	if f.Uninstrumented {
		fi.scheme = SchemeNone
	}
	fi.hasCanary = fi.scheme == SchemeCanary && f.Locals > 0
	slots := fi.userSlots + fi.loopSlots
	if fi.hasCanary {
		slots++
	}
	fi.localSize = int64(8*slots+15) &^ 15
	return fi
}

func countLoops(ops []ir.Op) int {
	n := 0
	for _, op := range ops {
		switch o := op.(type) {
		case ir.Loop:
			n += 1 + countLoops(o.Body)
		case ir.IfNZ:
			n += countLoops(o.Then)
		}
	}
	return n
}

// Local slot offsets from SP while the body runs: user slots first,
// hidden loop slots after them, the canary (when present) last so it
// sits directly below the caller-saved frame record — the position a
// buffer overflow must cross.
func (fi *frameInfo) userOff(slot int) int64 { return int64(8 * slot) }
func (fi *frameInfo) loopOff(k int) int64    { return int64(8 * (fi.userSlots + k)) }
func (fi *frameInfo) canaryOff() int64       { return int64(8 * (fi.userSlots + fi.loopSlots)) }
func (c *compiler) lowerFunction(f *ir.Function) {
	fi := c.plan(f)
	c.b.Label(f.Name)
	c.emitPrologue(&fi)

	loopIdx := 0
	c.lowerOps(&fi, f.Body, &loopIdx, true)

	// Functions ending in a tail call emitted their own epilogue.
	if !endsInTailCall(f.Body) {
		c.emitEpilogue(&fi)
		c.emitReturn(&fi)
	}
}

func endsInTailCall(ops []ir.Op) bool {
	if len(ops) == 0 {
		return false
	}
	_, ok := ops[len(ops)-1].(ir.TailCall)
	return ok
}

func (c *compiler) lowerOps(fi *frameInfo, ops []ir.Op, loopIdx *int, tail bool) {
	for k, op := range ops {
		last := tail && k == len(ops)-1
		switch o := op.(type) {
		case ir.Compute:
			c.lowerCompute(fi, o)
		case ir.StoreLocal:
			c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X10; i.Imm = o.Value })
			off := fi.userOff(o.Slot)
			c.i(isa.STR, func(i *isa.Instr) { i.Rd = isa.X10; i.Rn = isa.SP; i.Imm = off })
		case ir.LoadLocal:
			off := fi.userOff(o.Slot)
			c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.X10; i.Rn = isa.SP; i.Imm = off })
		case ir.Call:
			c.i(isa.BL, func(i *isa.Instr) { i.Label = o.Target })
		case ir.CallPtr:
			c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X12; i.Label = o.Target })
			c.i(isa.BLR, func(i *isa.Instr) { i.Rn = isa.X12 })
		case ir.TailCall:
			if !last {
				panic("compile: tail call not in tail position (validated earlier)")
			}
			c.emitEpilogue(fi)
			c.emitTailBranch(fi, o.Target)
		case ir.Loop:
			c.lowerLoop(fi, o, loopIdx)
		case ir.Write:
			c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X0; i.Imm = int64(o.Byte) })
			c.i(isa.SVC, func(i *isa.Instr) { i.Imm = 1 })
		case ir.SetJmp:
			// Wrapper selection is program-wide, like libc symbol
			// interposition: an uninstrumented caller in a PACStack
			// process still gets the binding wrappers, or a buffer
			// written by one side could not be consumed by the other.
			label := "__setjmp"
			if c.scheme == SchemePACStack || c.scheme == SchemePACStackNoMask {
				label = "__setjmp_wrapper"
			}
			c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X0; i.Imm = int64(c.layout.JmpBufAddr(o.Buf)) })
			c.i(isa.BL, func(i *isa.Instr) { i.Label = label })
		case ir.LongJmp:
			label := "__longjmp"
			if c.scheme == SchemePACStack || c.scheme == SchemePACStackNoMask {
				label = "__longjmp_wrapper"
			}
			c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X0; i.Imm = int64(c.layout.JmpBufAddr(o.Buf)) })
			c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X1; i.Imm = o.Value })
			c.i(isa.BL, func(i *isa.Instr) { i.Label = label })
		case ir.IfNZ:
			skip := c.newLabel(fi.f.Name, "ifnz")
			c.i(isa.CBZ, func(i *isa.Instr) { i.Rn = isa.X0; i.Label = skip })
			c.lowerOps(fi, o.Then, loopIdx, false)
			c.b.Label(skip)
		case ir.Exit:
			c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X0; i.Imm = o.Code })
			c.i(isa.SVC, func(i *isa.Instr) { i.Imm = 0 })
		case ir.ValidateFrames:
			c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X0; i.Imm = int64(o.Max) })
			c.i(isa.BL, func(i *isa.Instr) { i.Label = "__acs_validate" })
			// Print the validated-frame count as an ASCII digit.
			c.i(isa.ADDI, func(i *isa.Instr) { i.Rd = isa.X0; i.Rn = isa.X0; i.Imm = '0' })
			c.i(isa.SVC, func(i *isa.Instr) { i.Imm = 1 })
		case ir.AssertLocal:
			ok := c.newLabel(fi.f.Name, "assert")
			c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.X10; i.Rn = isa.SP; i.Imm = fi.userOff(o.Slot) })
			c.i(isa.CMPI, func(i *isa.Instr) { i.Rn = isa.X10; i.Imm = o.Value })
			c.i(isa.BCND, func(i *isa.Instr) { i.Cond = isa.EQ; i.Label = ok })
			c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X0; i.Imm = 77 })
			c.i(isa.SVC, func(i *isa.Instr) { i.Imm = 0 })
			c.b.Label(ok)
		}
	}
}

func (c *compiler) lowerCompute(fi *frameInfo, o ir.Compute) {
	switch {
	case o.Units == 0:
	case o.Units <= 4:
		for n := 0; n < o.Units; n++ {
			c.i(isa.ADDI, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.X9; i.Imm = 1 })
		}
	default:
		head := c.newLabel(fi.f.Name, "compute")
		c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X9; i.Imm = int64(o.Units) })
		c.b.Label(head)
		c.i(isa.SUBI, func(i *isa.Instr) { i.Rd = isa.X9; i.Rn = isa.X9; i.Imm = 1 })
		c.i(isa.CBNZ, func(i *isa.Instr) { i.Rn = isa.X9; i.Label = head })
	}
}

func (c *compiler) lowerLoop(fi *frameInfo, o ir.Loop, loopIdx *int) {
	slot := *loopIdx
	*loopIdx++
	off := fi.loopOff(slot)
	head := c.newLabel(fi.f.Name, "loop")
	end := c.newLabel(fi.f.Name, "endloop")

	c.i(isa.MOVZ, func(i *isa.Instr) { i.Rd = isa.X10; i.Imm = int64(o.Count) })
	c.i(isa.STR, func(i *isa.Instr) { i.Rd = isa.X10; i.Rn = isa.SP; i.Imm = off })
	c.b.Label(head)
	c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.X10; i.Rn = isa.SP; i.Imm = off })
	c.i(isa.CBZ, func(i *isa.Instr) { i.Rn = isa.X10; i.Label = end })
	c.lowerOps(fi, o.Body, loopIdx, false)
	c.i(isa.LDR, func(i *isa.Instr) { i.Rd = isa.X10; i.Rn = isa.SP; i.Imm = off })
	c.i(isa.SUBI, func(i *isa.Instr) { i.Rd = isa.X10; i.Rn = isa.X10; i.Imm = 1 })
	c.i(isa.STR, func(i *isa.Instr) { i.Rd = isa.X10; i.Rn = isa.SP; i.Imm = off })
	c.i(isa.B, func(i *isa.Instr) { i.Label = head })
	c.b.Label(end)
}
