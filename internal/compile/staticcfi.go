package compile

import (
	"fmt"
	"strings"

	"pacstack/internal/cpu"
	"pacstack/internal/isa"
)

// Fully-precise static CFI for returns — the strongest *stateless*
// policy possible without breaking intended functionality (Carlini et
// al., discussed in the paper's Sections 6.3 and 8): a return in
// function F may target any instruction that follows a call to F.
//
// We model it as an oracle-checked policy (a RetCFI hook computed from
// the image) rather than inlined check code; this is the standard way
// CFI policies are evaluated and it isolates the *precision* question
// the paper cares about: even this policy permits control-flow
// bending between valid return sites of the same function, which the
// stateful PACStack chain does not (see attack.ControlFlowBending).

// returnSites computes, per function, the set of valid return targets:
//   - the instruction after every direct call (BL) to the function;
//   - the instruction after every indirect call (BLR), for every
//     function — the standard over-approximation, since indirect
//     targets are not known statically;
//   - propagated across tail calls: if f ends with a branch to g, g
//     returns on f's behalf, so g inherits f's sites (to fixpoint).
func (img *Image) returnSites() map[string]map[uint64]bool {
	entryName := make(map[uint64]string, len(img.FuncEntries))
	for name, addr := range img.FuncEntries {
		entryName[addr] = name
	}
	funcOf := func(addr uint64) string {
		sym, _ := img.Prog.SymbolFor(addr)
		if i := strings.IndexByte(sym, '$'); i >= 0 {
			sym = sym[:i]
		}
		return sym
	}

	sites := make(map[string]map[uint64]bool)
	add := func(fn string, target uint64) {
		if sites[fn] == nil {
			sites[fn] = make(map[uint64]bool)
		}
		sites[fn][target] = true
	}
	var indirectSites []uint64
	type edge struct{ from, to string }
	var tailEdges []edge

	for i, ins := range img.Prog.Instrs {
		pc := img.Prog.Base + uint64(i)*isa.InstrSize
		switch ins.Op {
		case isa.BL:
			if callee, ok := entryName[ins.Target]; ok {
				add(callee, pc+isa.InstrSize)
			}
		case isa.BLR:
			indirectSites = append(indirectSites, pc+isa.InstrSize)
		case isa.B:
			// A branch to another function's entry is a tail call.
			if callee, ok := entryName[ins.Target]; ok && callee != funcOf(pc) {
				tailEdges = append(tailEdges, edge{from: funcOf(pc), to: callee})
			}
		}
	}
	for name := range img.FuncEntries {
		for _, s := range indirectSites {
			add(name, s)
		}
		// Thread entry points return to the task-exit stub.
		add(name, img.FuncEntries["__task_exit"])
	}
	// Tail-call propagation to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, e := range tailEdges {
			for t := range sites[e.from] {
				if !sites[e.to][t] {
					add(e.to, t)
					changed = true
				}
			}
		}
	}
	return sites
}

// installStaticCFI wires the return policy into a booted process.
func (img *Image) installStaticCFI(setRetCFI func(func(retPC, target uint64) error)) {
	sites := img.returnSites()
	funcOf := func(addr uint64) string {
		sym, _ := img.Prog.SymbolFor(addr)
		if i := strings.IndexByte(sym, '$'); i >= 0 {
			sym = sym[:i]
		}
		return sym
	}
	setRetCFI(func(retPC, target uint64) error {
		fn := funcOf(retPC)
		// The runtime (setjmp/longjmp and friends) performs returns on
		// other functions' behalf; real deployments special-case it.
		if strings.HasPrefix(fn, "__") || fn == "_start" {
			return nil
		}
		if f := img.IR.Function(fn); f != nil && f.Uninstrumented {
			return nil
		}
		if !sites[fn][target] {
			return &cpu.CFIViolation{Edge: "return", PC: retPC, Target: target,
				Detail: fmt.Sprintf("return from %s does not reach a valid return site", fn)}
		}
		return nil
	})
}
