package mesh

import (
	"reflect"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		link LinkConfig
		ok   bool
	}{
		{"zero link", LinkConfig{}, true},
		{"gray", Gray(), true},
		{"drop one", LinkConfig{Drop: 1}, false},
		{"drop negative", LinkConfig{Drop: -0.1}, false},
		{"flap down without period", LinkConfig{FlapDown: 5}, false},
		{"flap down >= period", LinkConfig{FlapPeriod: 10, FlapDown: 10}, false},
		{"flap ok", LinkConfig{FlapPeriod: 10, FlapDown: 3}, true},
		{"zero-length partition", LinkConfig{Partitions: []Window{{At: 5}}}, false},
		{"partition ok", LinkConfig{Partitions: []Window{{At: 5, Dur: 2}}}, true},
	}
	for _, c := range cases {
		err := c.link.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
	bad := Config{Links: map[int]LinkConfig{-1: {}}}
	if err := bad.Validate(); err == nil {
		t.Error("negative backend index validated")
	}
}

func TestOutageIsPureFunctionOfTime(t *testing.T) {
	l := LinkConfig{
		Partitions: []Window{{At: 100, Dur: 50}},
		FlapPeriod: 10,
		FlapDown:   3,
	}
	// Partition wins inside its window; boundaries heal exactly at At+Dur.
	for _, tc := range []struct {
		at   uint64
		want Cause
	}{
		{100, CausePartition},
		{149, CausePartition},
		{150, CauseFlap}, // healed, but 150%10=0 < 3: flap phase
		{155, CauseNone},
		{63, CauseNone},  // 63%10=3, flap over
		{62, CauseFlap},  // 62%10=2 < 3
		{60, CauseFlap},
	} {
		if got := outage(l, tc.at); got != tc.want {
			t.Errorf("outage at %d = %v, want %v", tc.at, got, tc.want)
		}
	}
	l.Down = true
	if got := outage(l, 63); got != CauseDown {
		t.Errorf("operator down not dominant: got %v", got)
	}
}

func TestSampleDeterministicPerSeed(t *testing.T) {
	cfg := Config{Links: map[int]LinkConfig{0: Gray(), 2: {Latency: 10, Jitter: 100}}}
	run := func() []Verdict {
		m, err := New(cfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		var out []Verdict
		for i := 0; i < 200; i++ {
			out = append(out, m.Sample(i%3, uint64(i)*1000))
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
	// A different seed must reshuffle the stochastic draws somewhere.
	m2, _ := New(cfg, 8)
	diff := false
	for i, v := range a {
		if m2.Sample(i%3, uint64(i)*1000) != v {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seed does not address the per-link entropy")
	}
}

func TestSampleStreamsIndependentPerLink(t *testing.T) {
	// Sampling link 0 must not perturb link 2's stream: draws are
	// addressed by link identity, not by global sampling order.
	cfg := Config{Links: map[int]LinkConfig{0: Gray(), 2: {Latency: 10, Jitter: 100}}}
	solo, _ := New(cfg, 7)
	var want []Verdict
	for i := 0; i < 50; i++ {
		want = append(want, solo.Sample(2, uint64(i)))
	}
	mixed, _ := New(cfg, 7)
	var got []Verdict
	for i := 0; i < 50; i++ {
		mixed.Sample(0, uint64(i)) // interleave draws on the other link
		got = append(got, mixed.Sample(2, uint64(i)))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("link 2's stream depends on link 0's sampling order")
	}
}

func TestNilMeshIsPerfect(t *testing.T) {
	var m *Mesh
	if !m.Up(0, 0) {
		t.Error("nil mesh reports a down link")
	}
	if v := m.Sample(3, 99); v.Drop || v.Latency != 0 {
		t.Errorf("nil mesh faulted a message: %+v", v)
	}
	if m.Backends() != nil {
		t.Error("nil mesh lists backends")
	}
	if !reflect.DeepEqual(m.Link(0), LinkConfig{}) {
		t.Error("nil mesh has a non-zero link")
	}
}

func TestBackendsSortedAndUp(t *testing.T) {
	m, err := New(Config{Links: map[int]LinkConfig{
		5: {},
		1: {Down: true},
		3: {Partitions: []Window{{At: 0, Dur: 10}}},
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Backends(); !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Fatalf("Backends() = %v", got)
	}
	if m.Up(1, 0) {
		t.Error("operator-down link reports up")
	}
	if m.Up(3, 5) {
		t.Error("partitioned link reports up")
	}
	if !m.Up(3, 10) {
		t.Error("healed link reports down")
	}
	if !m.Up(5, 0) || !m.Up(42, 0) {
		t.Error("perfect/unconfigured link reports down")
	}
}

func TestCauseStrings(t *testing.T) {
	for c, want := range map[Cause]string{
		CauseNone: "none", CauseDrop: "drop", CausePartition: "partition",
		CauseFlap: "flap", CauseDown: "down",
	} {
		if c.String() != want {
			t.Errorf("Cause(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}
