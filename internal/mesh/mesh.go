// Package mesh is the seeded, clock-free network fault model for the
// cluster tier: per-(router,backend) link state — added latency
// distributions, message-drop probability, partitions with heal
// times, and flapping — that the cluster soak injects into its
// virtual-time replay and the live daemon exposes over /v1/mesh.
//
// The gray failures modeled here are the ones a binary liveness
// signal never sees: a backend that answers, slowly; a link that
// drops one message in ten; a partition that heals before any human
// notices; a flapping link that oscillates faster than a breaker's
// cooldown. The router's breaker treats a backend as up or down —
// the mesh is what forces the resilience layer (hedged requests,
// outlier ejection, priority brownout) to earn its keep in between.
//
// Determinism contract: partition and flap state are pure functions
// of virtual time, and the stochastic draws (drop, jitter) come from
// one seeded per-link stream consumed only from the serial replay —
// same seed, same fault sequence, byte-for-byte, at any worker-pool
// width. Nothing in here reads a wall clock.
package mesh

import (
	"fmt"
	"math/rand"
	"sort"
)

// Window is one scheduled outage: the link is down for [At, At+Dur)
// and heals at At+Dur.
type Window struct {
	At  uint64 `json:"at"`
	Dur uint64 `json:"dur"`
}

// LinkConfig describes one (router,backend) link's fault behavior.
// The zero value is a perfect link.
type LinkConfig struct {
	// Latency is the base added round-trip latency in virtual cycles;
	// Jitter is the bound on an additional seeded uniform draw per
	// message, so observed latency is Latency + U[0, Jitter].
	Latency uint64 `json:"latency,omitempty"`
	Jitter  uint64 `json:"jitter,omitempty"`

	// Drop is the per-message drop probability in [0, 1). A dropped
	// message vanishes: the sender learns nothing until its timeout.
	Drop float64 `json:"drop,omitempty"`

	// Partitions are scheduled outages with heal times. While
	// partitioned, every message is dropped.
	Partitions []Window `json:"partitions,omitempty"`

	// FlapPeriod/FlapDown model a flapping link: within each period of
	// FlapPeriod cycles the link is down for the first FlapDown of
	// them — a deterministic square wave, so flap state is a pure
	// function of time. FlapPeriod 0 disables flapping.
	FlapPeriod uint64 `json:"flap_period,omitempty"`
	FlapDown   uint64 `json:"flap_down,omitempty"`

	// Down forces the link down until cleared — the live /v1/mesh
	// operator switch; the soak expresses outages as Partitions.
	Down bool `json:"down,omitempty"`
}

// Validate checks a link's shape.
func (l *LinkConfig) Validate() error {
	if l.Drop < 0 || l.Drop >= 1 {
		return fmt.Errorf("mesh: drop probability %v outside [0, 1)", l.Drop)
	}
	if l.FlapPeriod > 0 && l.FlapDown >= l.FlapPeriod {
		return fmt.Errorf("mesh: flap down %d must be shorter than the period %d", l.FlapDown, l.FlapPeriod)
	}
	if l.FlapPeriod == 0 && l.FlapDown > 0 {
		return fmt.Errorf("mesh: flap down without a flap period")
	}
	for i, w := range l.Partitions {
		if w.Dur == 0 {
			return fmt.Errorf("mesh: partition %d has zero duration", i)
		}
	}
	return nil
}

// Config is a whole mesh: one link per backend index. Absent indices
// get perfect links.
type Config struct {
	Links map[int]LinkConfig `json:"links"`
}

// Validate checks every link.
func (c *Config) Validate() error {
	for idx, l := range c.Links {
		if idx < 0 {
			return fmt.Errorf("mesh: link for negative backend %d", idx)
		}
		if err := l.Validate(); err != nil {
			return fmt.Errorf("backend %d: %w", idx, err)
		}
	}
	return nil
}

// Cause classifies why the mesh faulted a message.
type Cause int

const (
	CauseNone      Cause = iota
	CauseDrop            // seeded per-message loss
	CausePartition       // scheduled outage window
	CauseFlap            // flap square wave's down phase
	CauseDown            // operator-forced down
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseDrop:
		return "drop"
	case CausePartition:
		return "partition"
	case CauseFlap:
		return "flap"
	case CauseDown:
		return "down"
	default:
		return "none"
	}
}

// Verdict is the mesh's ruling on one message.
type Verdict struct {
	// Drop reports the message was lost; Cause says why.
	Drop  bool
	Cause Cause
	// Latency is the added round-trip latency for a delivered message.
	Latency uint64
}

// Mesh is the instantiated fault model. Up is safe to call anywhere
// (pure function of time); Sample consumes seeded per-link streams
// and must be called from one goroutine in replay order — the serial
// phase of the soak DES, exactly where the other seeded draws live.
type Mesh struct {
	links map[int]LinkConfig
	rngs  map[int]*rand.Rand
	seed  int64
}

// New builds a mesh from a validated config. Per-link streams derive
// from mix(seed, backend), so link identity — never sampling order
// across links — addresses the entropy.
func New(cfg Config, seed int64) (*Mesh, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Mesh{links: make(map[int]LinkConfig, len(cfg.Links)), rngs: make(map[int]*rand.Rand, len(cfg.Links)), seed: seed}
	for idx, l := range cfg.Links {
		m.links[idx] = l
		m.rngs[idx] = rand.New(rand.NewSource(mix(seed, int64(idx)+0x11e5)))
	}
	return m, nil
}

// Link returns backend idx's link config (the zero, perfect link when
// none was configured).
func (m *Mesh) Link(idx int) LinkConfig {
	if m == nil {
		return LinkConfig{}
	}
	return m.links[idx]
}

// Backends lists the configured link indices, sorted.
func (m *Mesh) Backends() []int {
	if m == nil {
		return nil
	}
	out := make([]int, 0, len(m.links))
	for idx := range m.links {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// outage returns the deterministic down-state of the link at now:
// operator switch, partition window, or flap phase.
func outage(l LinkConfig, now uint64) Cause {
	if l.Down {
		return CauseDown
	}
	for _, w := range l.Partitions {
		if now >= w.At && now-w.At < w.Dur {
			return CausePartition
		}
	}
	if l.FlapPeriod > 0 && now%l.FlapPeriod < l.FlapDown {
		return CauseFlap
	}
	return CauseNone
}

// Up reports whether backend idx's link is passing messages at now —
// a pure function of (config, now), safe from any goroutine. A nil
// mesh is all-up.
func (m *Mesh) Up(idx int, now uint64) bool {
	if m == nil {
		return true
	}
	return outage(m.links[idx], now) == CauseNone
}

// Sample rules on one message to backend idx at now. Serial-replay
// only: the drop and jitter draws consume the link's seeded stream.
// A nil mesh delivers everything instantly.
func (m *Mesh) Sample(idx int, now uint64) Verdict {
	if m == nil {
		return Verdict{}
	}
	l, ok := m.links[idx]
	if !ok {
		return Verdict{}
	}
	if c := outage(l, now); c != CauseNone {
		return Verdict{Drop: true, Cause: c}
	}
	rng := m.rngs[idx]
	if l.Drop > 0 && rng.Float64() < l.Drop {
		return Verdict{Drop: true, Cause: CauseDrop}
	}
	v := Verdict{Latency: l.Latency}
	if l.Jitter > 0 {
		v.Latency += uint64(rng.Int63n(int64(l.Jitter) + 1))
	}
	return v
}

// Gray is the canned gray-backend link the check.sh mesh gate runs: a
// backend that still answers — slowly, lossily — without ever looking
// dead to a liveness probe. The base added round trip sits exactly at
// the canned web class's p99 target (262_144 cycles), so every
// interactive request that rides this link without a hedge is a
// structural p99 violation, and the drop rate forces timeouts and
// retries without ever tripping a breaker outright.
func Gray() LinkConfig {
	return LinkConfig{
		Latency: 262_144,
		Jitter:  65_536,
		Drop:    0.08,
	}
}

// mix folds values into one seed (splitmix64 finalizer) — the same
// derivation idiom the serving and cluster layers use.
func mix(a, b int64) int64 {
	z := uint64(a)*0x9e3779b97f4a7c15 + uint64(b)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
