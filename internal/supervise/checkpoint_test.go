package supervise

import (
	"errors"
	"testing"

	"pacstack/internal/cpu"
	"pacstack/internal/ir"
	"pacstack/internal/kernel"
	"pacstack/internal/snap"
)

// chattyProgram runs long enough to cross several checkpoint slices
// and writes continuously, so lost or replayed progress is visible in
// the output.
func chattyProgram() *ir.Program {
	return &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Locals: 1, Body: []ir.Op{
			ir.Write{Byte: '<'},
			ir.Loop{Count: 30, Body: []ir.Op{ir.Call{Target: "work"}}},
			ir.Write{Byte: '>'},
		}},
		{Name: "work", Locals: 1, Body: []ir.Op{
			ir.StoreLocal{Slot: 0, Value: 5},
			ir.Compute{Units: 8},
			ir.LoadLocal{Slot: 0},
			ir.Write{Byte: 'w'},
		}},
	}}
}

// goldenRun measures the victim's uninterrupted output and length.
func goldenRun(t *testing.T) (output string, total uint64) {
	t.Helper()
	p, err := image(t, chattyProgram()).Boot(seededKernel(77))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(1 << 22); err != nil {
		t.Fatal(err)
	}
	for _, tk := range p.Tasks {
		total += tk.M.Instrs
	}
	return string(p.Output), total
}

// TestWarmRestoreResumesFromCheckpoint: attempt 0 dies on the
// watchdog partway through, attempt 1 warm-restores the newest
// snapshot instead of starting over, and the final output matches an
// uninterrupted run exactly — no lost writes, no replayed writes.
func TestWarmRestoreResumesFromCheckpoint(t *testing.T) {
	golden, total := goldenRun(t)

	st := snap.NewStore(snap.NewMemFS())
	sup := New(image(t, chattyProgram()), seededKernel(77), Policy{
		MaxRestarts: 3,
		Budget:      total * 2 / 3,
	})
	sup.Snapshots = st
	sup.CheckpointEvery = total / 5

	p, err := sup.Run(nil)
	if err != nil {
		t.Fatalf("supervised run: %v (attempts %d)", err, len(sup.Attempts))
	}
	if string(p.Output) != golden {
		t.Errorf("output %q, want %q", p.Output, golden)
	}
	if len(sup.Attempts) != 2 {
		t.Fatalf("attempts = %d, want 2", len(sup.Attempts))
	}
	if sup.Attempts[0].Restored || !sup.Attempts[1].Restored {
		t.Errorf("restored flags = %v/%v, want false/true", sup.Attempts[0].Restored, sup.Attempts[1].Restored)
	}
	if sup.Restores != 1 || sup.Commits == 0 {
		t.Errorf("restores=%d commits=%d, want 1 restore and >0 commits", sup.Restores, sup.Commits)
	}
	if !errors.Is(sup.Attempts[0].Err, cpu.ErrStepLimit) || sup.Attempts[0].Kill == nil {
		t.Errorf("attempt 0 = %+v, want watchdog kill", sup.Attempts[0])
	}
}

// TestKillMidCheckpointRecovers crashes the simulated machine in the
// middle of a snapshot commit — storage budget runs dry partway
// through the second commit — and the next attempt must heal the
// disk, classify the torn debris as detected, restore the last good
// snapshot and finish with golden output.
func TestKillMidCheckpointRecovers(t *testing.T) {
	golden, total := goldenRun(t)

	fs := snap.NewMemFS()
	st := snap.NewStore(fs)
	sup := New(image(t, chattyProgram()), seededKernel(77), Policy{
		MaxRestarts: 3,
		Budget:      1 << 22,
	})
	sup.Snapshots = st
	sup.CheckpointEvery = total / 5

	// Let the first commit through whole, then tear the second one a
	// little way in. The first commit's cost is measured on a clone so
	// the test does not hardcode the protocol's op costs.
	probe, err := image(t, chattyProgram()).Boot(seededKernel(77))
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Run(sup.CheckpointEvery); !errors.Is(err, cpu.ErrStepLimit) {
		t.Fatalf("probe: %v", err)
	}
	dry := fs.Clone()
	if _, err := snap.NewStore(dry).CommitProcess(probe); err != nil {
		t.Fatal(err)
	}
	// Arm the crash from the mutate hook: it runs after the attempt's
	// recovery pass (which Heals the disk) and before execution.
	cost := dry.Spent()
	p, err := sup.Run(func(attempt int, proc *kernel.Process) {
		if attempt == 0 {
			fs.Crash(cost + 10)
		}
	})
	if err != nil {
		t.Fatalf("supervised run: %v (attempts %+v)", err, sup.Attempts)
	}
	if string(p.Output) != golden {
		t.Errorf("output %q, want %q", p.Output, golden)
	}
	if sup.CommitErrs == 0 {
		t.Errorf("commit errors = 0, want the torn commit counted")
	}
	if !errors.Is(sup.Attempts[0].Err, snap.ErrCrashed) {
		t.Errorf("attempt 0 err = %v, want ErrCrashed", sup.Attempts[0].Err)
	}
	if sup.Restores == 0 {
		t.Errorf("restores = 0, want a warm restore after the crash")
	}
	if sup.LastRecovery == nil || !sup.LastRecovery.Detected() {
		t.Errorf("last recovery = %+v, want the torn commit detected", sup.LastRecovery)
	}
}

// TestRestoreFailureNoDoubleCharge is the restart-budget regression:
// when every snapshot is damaged (restore finds nothing) or restore
// outright fails (snapshot from a different program), the fallback
// cold boot happens within the same attempt — one entry in the log,
// no backoff charged, and with MaxRestarts 0 the run still succeeds.
func TestRestoreFailureNoDoubleCharge(t *testing.T) {
	t.Run("all snapshots corrupt", func(t *testing.T) {
		fs := snap.NewMemFS()
		// A snapshot-shaped file of garbage plus a journal of garbage:
		// recovery must classify, report, and fall back.
		if err := fs.WriteFile("snap-0000000000000001.pss", []byte("not a snapshot")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Append("journal.psj", []byte("torn journal bytes")); err != nil {
			t.Fatal(err)
		}
		sup := New(image(t, cleanProgram()), seededKernel(5), Policy{MaxRestarts: 0})
		sup.Snapshots = snap.NewStore(fs)
		p, err := sup.Run(nil)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if string(p.Output) != "k" {
			t.Errorf("output %q", p.Output)
		}
		if len(sup.Attempts) != 1 || sup.Downtime != 0 {
			t.Errorf("attempts=%d downtime=%d, want 1/0: fallback must not charge the budget",
				len(sup.Attempts), sup.Downtime)
		}
		if sup.Restores != 0 {
			t.Errorf("restores = %d, want 0", sup.Restores)
		}
		if sup.LastRecovery == nil || !sup.LastRecovery.Detected() {
			t.Errorf("last recovery = %+v, want corruption detected", sup.LastRecovery)
		}
	})

	t.Run("snapshot from different program", func(t *testing.T) {
		// A perfectly valid snapshot — of the wrong program. The text
		// checksum refuses it and the cold boot runs in the same cycle.
		fs := snap.NewMemFS()
		st := snap.NewStore(fs)
		donor, err := image(t, chattyProgram()).Boot(seededKernel(9))
		if err != nil {
			t.Fatal(err)
		}
		if err := donor.Run(50); !errors.Is(err, cpu.ErrStepLimit) {
			t.Fatal(err)
		}
		if _, err := st.CommitProcess(donor); err != nil {
			t.Fatal(err)
		}

		sup := New(image(t, cleanProgram()), seededKernel(5), Policy{MaxRestarts: 0})
		sup.Snapshots = st
		p, err := sup.Run(nil)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if string(p.Output) != "k" {
			t.Errorf("output %q", p.Output)
		}
		if len(sup.Attempts) != 1 || sup.Downtime != 0 {
			t.Errorf("attempts=%d downtime=%d, want 1/0: fallback must not charge the budget",
				len(sup.Attempts), sup.Downtime)
		}
		if sup.RestoreFallbacks != 1 {
			t.Errorf("fallbacks = %d, want 1", sup.RestoreFallbacks)
		}
	})
}
