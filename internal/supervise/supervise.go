// Package supervise is a crash-recovery supervisor over
// kernel.Process: it reboots a victim program after each kill,
// subject to a restart policy, and keeps the structured post-mortems
// of every attempt.
//
// The supervisor exists because the paper's brute-force analysis
// (Section 4.3) is an argument about *restarting* victims: what an
// attacker can learn across crashes depends entirely on how the
// service comes back. An exec-style respawn draws fresh PA keys, so
// every crash resets the guessing game (~2^2b expected guesses); a
// fork-style respawn from a pre-forked template shares the parent's
// keys, so information survives crashes and guessing drops toward
// ~2^b. Both policies are offered here, together with the two things
// any real init system adds: a restart budget with exponential
// backoff (in simulated cycles — downtime the attacker pays for), and
// a per-attempt instruction watchdog that turns hangs into kills.
package supervise

import (
	"context"
	"errors"
	"fmt"

	"pacstack/internal/compile"
	"pacstack/internal/cpu"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
	"pacstack/internal/snap"
	"pacstack/internal/telemetry"
)

// Respawn selects how a killed victim comes back.
type Respawn int

const (
	// RespawnExec boots a fresh image for every attempt: fresh
	// address space, fresh canary, and — decisive for Section 4.3 —
	// fresh PA keys.
	RespawnExec Respawn = iota
	// RespawnFork clones each attempt from a pristine, never-run
	// template process booted once at supervisor creation: cloned
	// memory, but the *same* PA keys across all attempts, the
	// pre-forked worker model of Section 4.3.
	RespawnFork
)

// String names the respawn policy.
func (r Respawn) String() string {
	switch r {
	case RespawnExec:
		return "exec (fresh keys)"
	case RespawnFork:
		return "fork (shared keys)"
	}
	return fmt.Sprintf("Respawn(%d)", int(r))
}

// Policy is the restart policy.
type Policy struct {
	Respawn Respawn
	// MaxRestarts bounds how many times a killed victim is restarted;
	// the supervisor runs at most MaxRestarts+1 attempts.
	MaxRestarts int
	// BackoffBase is the simulated-cycle delay before the first
	// restart; each further restart doubles it, up to BackoffCap.
	// Zero means no backoff.
	BackoffBase uint64
	BackoffCap  uint64
	// Budget is the per-attempt instruction watchdog; a run that
	// exhausts it is killed and counts as a crash. Zero means a
	// default of 1<<20 instructions.
	Budget uint64
}

func (pol Policy) backoff(restart int) uint64 {
	if pol.BackoffBase == 0 {
		return 0
	}
	d := pol.BackoffBase
	for i := 0; i < restart && d < pol.BackoffCap; i++ {
		if d >= 1<<63 {
			// Doubling again would shift the top bit out and wrap the
			// delay back toward zero; saturate at the cap instead. A
			// restart count past 63 must never yield a shorter delay
			// than restart 63 did — the attacker would love free
			// incarnations late in a brute-force campaign.
			d = pol.BackoffCap
			break
		}
		d <<= 1
	}
	if pol.BackoffCap != 0 && d > pol.BackoffCap {
		d = pol.BackoffCap
	}
	return d
}

// Attempt is the record of one victim run.
type Attempt struct {
	N        int    // attempt number, 0-based
	Backoff  uint64 // simulated cycles waited before this attempt
	Err      error  // nil on clean exit
	Kill     *kernel.KillInfo
	ExitCode uint64
	Output   []byte
	// Restored reports that this attempt warm-restored from a
	// checkpoint instead of cold-booting.
	Restored bool
}

// ErrRestartsExhausted reports that the victim kept crashing past the
// policy's restart budget.
var ErrRestartsExhausted = errors.New("supervise: restart budget exhausted")

// Supervisor restarts one victim image under a policy.
type Supervisor struct {
	Img    *compile.Image
	Kernel *kernel.Kernel
	Policy Policy

	// Configure, when non-nil, runs on every freshly created process
	// before anything executes — the place to switch on sigreturn
	// hardening or scheme-specific process state. Under RespawnFork it
	// runs once, on the template, and forked attempts inherit.
	Configure func(p *kernel.Process)

	// Boot, when non-nil, replaces the RespawnExec cold boot: the
	// warm-pool serving layer plugs in a snapshot-fork reset here
	// (restore a pooled machine from the boot image, reseed PA keys,
	// refresh the canary). The hook must return a process that is
	// already configured/hardened — Configure is NOT called on it, the
	// restored checkpoint carries the hardened state. To preserve
	// §4.3 exec-respawn semantics the hook must draw exactly what a
	// cold boot draws from the kernel entropy pool (one key set, one
	// canary word), in that order; the pool's Reset does.
	Boot func() (*kernel.Process, error)

	// Snapshots, when non-nil, enables crash-consistent
	// checkpoint/restore: each attempt first tries to warm-restore the
	// newest valid snapshot and only cold-boots (per the respawn
	// policy) when the store is empty or damaged beyond recovery; a
	// failed restore falls back to a cold boot *within the same
	// attempt*, so recovery trouble never double-charges the restart
	// budget. Note the Section 4.3 consequence: a warm restore resumes
	// the same incarnation — same PA keys — so, unlike RespawnExec, it
	// does not reset an attacker's guessing game. The checkpoint
	// cadence decides that trade.
	Snapshots *snap.Store
	// CheckpointEvery commits a snapshot every so many executed
	// instructions while an attempt runs. Zero disables periodic
	// checkpointing (the store is then only read, never written).
	CheckpointEvery uint64

	// Attempts is the post-mortem log, one entry per run.
	Attempts []Attempt
	// Downtime is the total simulated backoff the restarts cost.
	Downtime uint64

	// Checkpoint/restore counters.
	Restores         int // attempts that warm-restored from a snapshot
	RestoreFallbacks int // restores that failed and fell back to a cold boot
	Commits          int // snapshots durably committed
	CommitErrs       int // commit attempts that failed (torn, IO error)
	// LastRecovery is the report of the most recent recovery pass,
	// successful or not.
	LastRecovery *snap.RecoveryReport

	// Tel, when non-nil, mirrors every counter bump above into shared
	// registry handles. The int fields stay authoritative for callers
	// and tests; the mirror is what /metrics exposes.
	Tel *Telemetry

	template *kernel.Process // pristine never-run boot (RespawnFork)
}

// Telemetry is the supervisor's registry mirror: pre-resolved handles
// incremented alongside the exported int counters. All fields are
// optional and nil-safe.
type Telemetry struct {
	Restarts         *telemetry.Counter // attempts beyond the first
	Restores         *telemetry.Counter // warm restores from a snapshot
	RestoreFallbacks *telemetry.Counter // failed restores that cold-booted
	ColdBoots        *telemetry.Counter // attempts that cold-booted
	Commits          *telemetry.Counter // snapshots durably committed
	CommitErrs       *telemetry.Counter // failed commit attempts
	Downtime         *telemetry.Counter // cumulative backoff cycles
	Events           *telemetry.EventLog
}

// New returns a supervisor for the image under the kernel and policy.
func New(img *compile.Image, k *kernel.Kernel, pol Policy) *Supervisor {
	return &Supervisor{Img: img, Kernel: k, Policy: pol}
}

// next creates the process for one attempt: warm restore from the
// snapshot store when one is configured and holds a valid snapshot,
// otherwise a cold boot per the respawn policy. The restored flag
// reports which path was taken.
func (s *Supervisor) next() (p *kernel.Process, restored bool, err error) {
	if s.Snapshots != nil {
		// The disk outlives the machine: revive crashed simulated
		// storage before reading it, exactly as a reboot would.
		s.Snapshots.Heal()
		rp, rep, rerr := snap.RestoreProcess(s.Snapshots, s.Img, s.Kernel)
		s.LastRecovery = rep
		if rerr == nil {
			s.Restores++
			if s.Tel != nil {
				s.Tel.Restores.Inc()
				s.Tel.Events.Record(telemetry.EvRestore, "warm", "", uint64(s.Restores))
			}
			if s.Configure != nil {
				s.Configure(rp)
			}
			return rp, true, nil
		}
		if !errors.Is(rerr, snap.ErrNoSnapshot) {
			// The store had snapshots but none survived classification
			// (or the image did not match the program). Detected, counted
			// — and the cold boot below happens in this same cycle, so
			// the failure costs no extra restart budget.
			s.RestoreFallbacks++
			if s.Tel != nil {
				s.Tel.RestoreFallbacks.Inc()
			}
		}
	}
	p, err = s.coldBoot()
	if err == nil && s.Tel != nil {
		s.Tel.ColdBoots.Inc()
		s.Tel.Events.Record(telemetry.EvRestore, "cold", "", 0)
	}
	return p, false, err
}

// coldBoot creates a fresh process per the respawn policy.
func (s *Supervisor) coldBoot() (*kernel.Process, error) {
	switch s.Policy.Respawn {
	case RespawnFork:
		if s.template == nil {
			tpl, err := s.Img.Boot(s.Kernel)
			if err != nil {
				return nil, err
			}
			if s.Configure != nil {
				s.Configure(tpl)
			}
			s.template = tpl
		}
		// The template has never executed an instruction; the fork is
		// a byte-identical pristine victim with the template's keys.
		return s.template.Fork(s.template.Tasks[0]), nil
	default:
		if s.Boot != nil {
			return s.Boot()
		}
		p, err := s.Img.Boot(s.Kernel)
		if err != nil {
			return nil, err
		}
		if s.Configure != nil {
			s.Configure(p)
		}
		return p, nil
	}
}

// Run supervises the victim until one attempt exits cleanly or the
// restart budget runs out. Before each attempt executes, mutate (when
// non-nil) may corrupt the pristine process — install step hooks,
// poke memory — modelling the attacker's interference with that
// incarnation. Run returns the final attempt's process; the error is
// nil on clean exit and wraps ErrRestartsExhausted otherwise. Every
// attempt, successful or not, is appended to s.Attempts.
func (s *Supervisor) Run(mutate func(attempt int, p *kernel.Process)) (*kernel.Process, error) {
	return s.RunCtx(context.Background(), mutate)
}

// RunCtx is Run under a context: each attempt executes with
// kernel.Process.RunCtx, and a cancelled context ends the supervision
// loop after the in-flight attempt instead of burning the remaining
// restart budget. The cancelled attempt is still logged to s.Attempts;
// the returned error wraps kernel.ErrCancelled (not
// ErrRestartsExhausted — cancellation is the caller's deadline, not a
// crash verdict).
func (s *Supervisor) RunCtx(ctx context.Context, mutate func(attempt int, p *kernel.Process)) (*kernel.Process, error) {
	budget := s.Policy.Budget
	if budget == 0 {
		budget = 1 << 20
	}
	var p *kernel.Process
	var lastErr error
	for n := 0; n <= s.Policy.MaxRestarts; n++ {
		var backoff uint64
		if n > 0 {
			backoff = s.Policy.backoff(n - 1)
			s.Downtime += backoff
			if s.Tel != nil {
				s.Tel.Restarts.Inc()
				s.Tel.Downtime.Add(backoff)
			}
		}
		var err error
		var restored bool
		p, restored, err = s.next()
		if err != nil {
			return nil, err
		}
		if mutate != nil {
			mutate(n, p)
		}
		runErr := s.runAttempt(ctx, p, budget)
		if runErr != nil && p.Kill == nil && !errors.Is(runErr, kernel.ErrCancelled) {
			// The watchdog (or another budget-style kill) fired without
			// a machine fault; synthesize the post-mortem the kernel
			// would have had no chance to file.
			t := p.Tasks[0]
			sym, _ := p.Prog.SymbolFor(t.M.PC)
			p.Kill = &kernel.KillInfo{TaskID: t.ID, PC: t.M.PC, Symbol: sym, Cause: runErr}
		}
		s.Attempts = append(s.Attempts, Attempt{
			N:        n,
			Backoff:  backoff,
			Err:      runErr,
			Kill:     p.Kill,
			ExitCode: p.ExitCode,
			Output:   append([]byte(nil), p.Output...),
			Restored: restored,
		})
		if runErr == nil {
			return p, nil
		}
		if errors.Is(runErr, kernel.ErrCancelled) {
			return p, runErr
		}
		lastErr = runErr
	}
	return p, fmt.Errorf("%w after %d attempts: %w", ErrRestartsExhausted, len(s.Attempts), lastErr)
}

// runAttempt executes one attempt, committing a snapshot at every
// CheckpointEvery-instruction slice boundary while the process is
// still healthy. Nothing is ever committed after a fault: a killed
// incarnation's state is exactly what an attacker just corrupted, and
// persisting it would launder the corruption through the store.
//
// A commit that dies with the storage (snap.ErrCrashed) ends the
// attempt — the simulated machine crashed mid-checkpoint — and the
// supervision loop's next cycle heals the disk and recovers. Other
// commit errors are counted and the attempt keeps running;
// checkpointing is best-effort, crashing the service over a full disk
// would invert the availability story.
func (s *Supervisor) runAttempt(ctx context.Context, p *kernel.Process, budget uint64) error {
	if s.Snapshots == nil || s.CheckpointEvery == 0 {
		return p.RunCtx(ctx, budget)
	}
	var executed uint64
	for {
		slice := s.CheckpointEvery
		if rem := budget - executed; rem < slice {
			slice = rem
		}
		if slice == 0 {
			return cpu.ErrStepLimit // the watchdog, at slice granularity
		}
		before := instrs(p)
		err := p.RunCtx(ctx, slice)
		executed += instrs(p) - before
		if err == nil {
			return nil
		}
		if !errors.Is(err, cpu.ErrStepLimit) {
			return err
		}
		if executed >= budget {
			return cpu.ErrStepLimit
		}
		if _, cerr := s.Snapshots.CommitProcess(p); cerr != nil {
			s.CommitErrs++
			if s.Tel != nil {
				s.Tel.CommitErrs.Inc()
				s.Tel.Events.Record(telemetry.EvTornCommit, "", cerr.Error(), 0)
			}
			if errors.Is(cerr, snap.ErrCrashed) {
				return fmt.Errorf("machine died mid-checkpoint: %w", cerr)
			}
			continue
		}
		s.Commits++
		if s.Tel != nil {
			s.Tel.Commits.Inc()
			s.Tel.Events.Record(telemetry.EvCommit, "", "", uint64(s.Commits))
		}
	}
}

// instrs sums retired instructions across the process's tasks.
func instrs(p *kernel.Process) uint64 {
	var n uint64
	for _, t := range p.Tasks {
		n += t.M.Instrs
	}
	return n
}

// Crashes counts the attempts that did not exit cleanly.
func (s *Supervisor) Crashes() int {
	n := 0
	for _, a := range s.Attempts {
		if a.Err != nil {
			n++
		}
	}
	return n
}

// WatchdogKills counts attempts the instruction watchdog ended.
func (s *Supervisor) WatchdogKills() int {
	n := 0
	for _, a := range s.Attempts {
		if errors.Is(a.Err, cpu.ErrStepLimit) {
			n++
		}
	}
	return n
}

// SharedKeys reports whether two attempt processes authenticate each
// other's pointers — true under fork respawn, false (with high
// probability) under exec respawn. It probes with an instruction-key
// PAC rather than comparing unexported key material.
func SharedKeys(a, b *kernel.Process) bool {
	const ptr, mod = 0x10040, 0xfeed
	sealed := a.Auth.AddPAC(pa.KeyIA, ptr, mod)
	_, ok := b.Auth.Auth(pa.KeyIA, sealed, mod)
	return ok
}

// StackTop is a convenience for mutate callbacks that need the
// victim's initial SP.
func (s *Supervisor) StackTop() uint64 { return s.Img.Layout.StackTop() }
