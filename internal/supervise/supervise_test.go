package supervise

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"pacstack/internal/compile"
	"pacstack/internal/cpu"
	"pacstack/internal/ir"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
)

func image(t *testing.T, prog *ir.Program) *compile.Image {
	t.Helper()
	img, err := compile.Compile(prog, compile.SchemePACStack, compile.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func cleanProgram() *ir.Program {
	return &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{ir.Write{Byte: 'k'}}},
	}}
}

// spinProgram never exits, so every attempt dies on the watchdog.
func spinProgram() *ir.Program {
	return &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{
			ir.Loop{Count: 1 << 30, Body: []ir.Op{ir.Compute{Units: 1}}},
		}},
	}}
}

func seededKernel(seed int64) *kernel.Kernel {
	k := kernel.New(pa.DefaultConfig())
	k.Seed(seed)
	return k
}

func TestCleanExitFirstAttempt(t *testing.T) {
	sup := New(image(t, cleanProgram()), seededKernel(1), Policy{MaxRestarts: 3})
	p, err := sup.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Output) != "k" {
		t.Errorf("output %q", p.Output)
	}
	if len(sup.Attempts) != 1 || sup.Crashes() != 0 || sup.Downtime != 0 {
		t.Errorf("attempts=%d crashes=%d downtime=%d, want 1/0/0",
			len(sup.Attempts), sup.Crashes(), sup.Downtime)
	}
}

func TestWatchdogExhaustsRestartBudget(t *testing.T) {
	sup := New(image(t, spinProgram()), seededKernel(1), Policy{
		MaxRestarts: 2,
		Budget:      2_000,
	})
	_, err := sup.Run(nil)
	if !errors.Is(err, ErrRestartsExhausted) {
		t.Fatalf("err = %v, want ErrRestartsExhausted", err)
	}
	if got := len(sup.Attempts); got != 3 {
		t.Errorf("attempts = %d, want 3 (initial + 2 restarts)", got)
	}
	if sup.WatchdogKills() != 3 {
		t.Errorf("watchdog kills = %d, want 3", sup.WatchdogKills())
	}
	for _, a := range sup.Attempts {
		// The watchdog fires outside the kernel's kill path; the
		// supervisor must synthesize the post-mortem.
		if a.Kill == nil {
			t.Fatalf("attempt %d has no post-mortem", a.N)
		}
		if !errors.Is(a.Kill.Cause, cpu.ErrStepLimit) {
			t.Errorf("attempt %d cause = %v, want step limit", a.N, a.Kill.Cause)
		}
		if a.Kill.Symbol == "" {
			t.Errorf("attempt %d post-mortem has no symbol", a.N)
		}
	}
}

func TestBackoffAccumulates(t *testing.T) {
	sup := New(image(t, spinProgram()), seededKernel(1), Policy{
		MaxRestarts: 4,
		BackoffBase: 100,
		BackoffCap:  400,
		Budget:      2_000,
	})
	_, err := sup.Run(nil)
	if !errors.Is(err, ErrRestartsExhausted) {
		t.Fatalf("err = %v", err)
	}
	// Restart delays double from base to cap: 100, 200, 400, 400.
	want := []uint64{0, 100, 200, 400, 400}
	var total uint64
	for i, a := range sup.Attempts {
		if a.Backoff != want[i] {
			t.Errorf("attempt %d backoff = %d, want %d", i, a.Backoff, want[i])
		}
		total += a.Backoff
	}
	if sup.Downtime != total {
		t.Errorf("downtime = %d, want %d", sup.Downtime, total)
	}
}

func TestForkRespawnSharesKeys(t *testing.T) {
	var procs []*kernel.Process
	sup := New(image(t, spinProgram()), seededKernel(1), Policy{
		Respawn:     RespawnFork,
		MaxRestarts: 2,
		Budget:      2_000,
	})
	_, err := sup.Run(func(n int, p *kernel.Process) { procs = append(procs, p) })
	if !errors.Is(err, ErrRestartsExhausted) {
		t.Fatalf("err = %v", err)
	}
	if len(procs) != 3 {
		t.Fatalf("saw %d incarnations", len(procs))
	}
	if !SharedKeys(procs[0], procs[1]) || !SharedKeys(procs[1], procs[2]) {
		t.Error("fork respawn drew fresh keys; Section 4.3 needs the shared-key worker model")
	}
}

func TestExecRespawnFreshKeys(t *testing.T) {
	var procs []*kernel.Process
	sup := New(image(t, spinProgram()), seededKernel(1), Policy{
		Respawn:     RespawnExec,
		MaxRestarts: 1,
		Budget:      2_000,
	})
	_, err := sup.Run(func(n int, p *kernel.Process) { procs = append(procs, p) })
	if !errors.Is(err, ErrRestartsExhausted) {
		t.Fatalf("err = %v", err)
	}
	if SharedKeys(procs[0], procs[1]) {
		t.Error("exec respawn reused keys; each incarnation must re-key")
	}
}

func TestConfigureRunsOncePerIncarnationPolicy(t *testing.T) {
	for _, respawn := range []Respawn{RespawnFork, RespawnExec} {
		calls := 0
		sup := New(image(t, spinProgram()), seededKernel(1), Policy{
			Respawn:     respawn,
			MaxRestarts: 2,
			Budget:      2_000,
		})
		sup.Configure = func(p *kernel.Process) {
			calls++
			p.FullFrameSigreturn = true
		}
		var procs []*kernel.Process
		_, _ = sup.Run(func(n int, p *kernel.Process) { procs = append(procs, p) })
		want := 3 // once per exec boot
		if respawn == RespawnFork {
			want = 1 // once on the template; forks inherit
		}
		if calls != want {
			t.Errorf("%v: Configure ran %d times, want %d", respawn, calls, want)
		}
		for i, p := range procs {
			if !p.FullFrameSigreturn {
				t.Errorf("%v: incarnation %d did not inherit configuration", respawn, i)
			}
		}
	}
}

func TestBackoffNoShiftOverflowPastRestart63(t *testing.T) {
	// Regression: with a huge cap, restart counts past 63 used to shift
	// the delay's top bit out of the uint64 and wrap toward zero —
	// handing late brute-force incarnations free restarts.
	pol := Policy{BackoffBase: 1, BackoffCap: math.MaxUint64}
	var prev uint64
	for r := 0; r < 200; r++ {
		d := pol.backoff(r)
		if d < prev {
			t.Fatalf("restart %d: backoff %d < restart %d's %d (overflow wrap)", r, d, r-1, prev)
		}
		prev = d
	}
	if got := pol.backoff(64); got != math.MaxUint64 {
		t.Errorf("restart 64 backoff = %d, want saturation at the cap", got)
	}
	if got := pol.backoff(200); got != math.MaxUint64 {
		t.Errorf("restart 200 backoff = %d, want saturation at the cap", got)
	}
	// Odd bases cross 2^63 mid-doubling; they must saturate, not wrap.
	odd := Policy{BackoffBase: 3, BackoffCap: math.MaxUint64}
	if got := odd.backoff(100); got < 1<<62 {
		t.Errorf("odd-base restart 100 backoff = %d, wrapped", got)
	}
	// The documented cap semantics are unchanged below the overflow
	// region.
	capped := Policy{BackoffBase: 100, BackoffCap: 400}
	for r, want := range []uint64{100, 200, 400, 400} {
		if got := capped.backoff(r); got != want {
			t.Errorf("capped restart %d = %d, want %d", r, got, want)
		}
	}
}

func TestRunCtxStopsRestartingOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sup := New(image(t, spinProgram()), seededKernel(1), Policy{
		MaxRestarts: 50,
		Budget:      2_000,
	})
	attempts := 0
	_, err := sup.RunCtx(ctx, func(n int, _ *kernel.Process) {
		attempts = n + 1
		if n == 2 {
			cancel()
		}
	})
	if !errors.Is(err, kernel.ErrCancelled) {
		t.Fatalf("err = %v, want kernel.ErrCancelled", err)
	}
	if errors.Is(err, ErrRestartsExhausted) {
		t.Error("cancellation misreported as restart exhaustion")
	}
	if attempts != 3 {
		t.Errorf("ran %d attempts after cancel at attempt 2, want 3", attempts)
	}
	// The cancelled attempt is logged but carries no synthesized kill:
	// the process was abandoned, not killed.
	last := sup.Attempts[len(sup.Attempts)-1]
	if last.Kill != nil {
		t.Errorf("cancelled attempt filed a post-mortem: %v", last.Kill)
	}
}

// TestKillInfoConcurrentSupervisedRestarts runs many supervisors over
// the same compiled image at once (the serving layer's worker-pool
// shape) and checks every attempt's post-mortem is complete and
// task-accurate. Under -race this also proves Boot/Run/KillInfo share
// no unsynchronized state across supervisors.
func TestKillInfoConcurrentSupervisedRestarts(t *testing.T) {
	img := image(t, spinProgram())
	const supervisors = 8
	sups := make([]*Supervisor, supervisors)
	var wg sync.WaitGroup
	for i := 0; i < supervisors; i++ {
		sups[i] = New(img, seededKernel(int64(i+1)), Policy{
			Respawn:     RespawnExec,
			MaxRestarts: 3,
			Budget:      2_000,
		})
		wg.Add(1)
		go func(s *Supervisor) {
			defer wg.Done()
			_, _ = s.Run(nil)
		}(sups[i])
	}
	wg.Wait()
	for i, s := range sups {
		if len(s.Attempts) != 4 {
			t.Fatalf("supervisor %d logged %d attempts, want 4", i, len(s.Attempts))
		}
		for _, a := range s.Attempts {
			if a.Kill == nil {
				t.Fatalf("supervisor %d attempt %d: no post-mortem", i, a.N)
			}
			if a.Kill.TaskID != 0 {
				t.Errorf("supervisor %d attempt %d: post-mortem names task %d", i, a.N, a.Kill.TaskID)
			}
			if a.Kill.Symbol == "" {
				t.Errorf("supervisor %d attempt %d: post-mortem has no symbol", i, a.N)
			}
			if !errors.Is(a.Kill.Cause, cpu.ErrStepLimit) {
				t.Errorf("supervisor %d attempt %d: cause %v, want step limit", i, a.N, a.Kill.Cause)
			}
		}
	}
}

func TestMutateCanRepairTheVictim(t *testing.T) {
	// The mutate callback models the attacker, but the supervisor
	// contract is just "runs before the attempt executes": use it to
	// count incarnations and confirm the final process is returned.
	seen := 0
	sup := New(image(t, cleanProgram()), seededKernel(1), Policy{MaxRestarts: 5})
	p, err := sup.Run(func(n int, _ *kernel.Process) { seen = n + 1 })
	if err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Errorf("clean victim ran %d times, want 1", seen)
	}
	if p == nil || p.ExitCode != 0 {
		t.Errorf("final process %+v", p)
	}
}
