package supervise

import (
	"errors"
	"testing"

	"pacstack/internal/compile"
	"pacstack/internal/cpu"
	"pacstack/internal/ir"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
)

func image(t *testing.T, prog *ir.Program) *compile.Image {
	t.Helper()
	img, err := compile.Compile(prog, compile.SchemePACStack, compile.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func cleanProgram() *ir.Program {
	return &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{ir.Write{Byte: 'k'}}},
	}}
}

// spinProgram never exits, so every attempt dies on the watchdog.
func spinProgram() *ir.Program {
	return &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{
			ir.Loop{Count: 1 << 30, Body: []ir.Op{ir.Compute{Units: 1}}},
		}},
	}}
}

func seededKernel(seed int64) *kernel.Kernel {
	k := kernel.New(pa.DefaultConfig())
	k.Seed(seed)
	return k
}

func TestCleanExitFirstAttempt(t *testing.T) {
	sup := New(image(t, cleanProgram()), seededKernel(1), Policy{MaxRestarts: 3})
	p, err := sup.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Output) != "k" {
		t.Errorf("output %q", p.Output)
	}
	if len(sup.Attempts) != 1 || sup.Crashes() != 0 || sup.Downtime != 0 {
		t.Errorf("attempts=%d crashes=%d downtime=%d, want 1/0/0",
			len(sup.Attempts), sup.Crashes(), sup.Downtime)
	}
}

func TestWatchdogExhaustsRestartBudget(t *testing.T) {
	sup := New(image(t, spinProgram()), seededKernel(1), Policy{
		MaxRestarts: 2,
		Budget:      2_000,
	})
	_, err := sup.Run(nil)
	if !errors.Is(err, ErrRestartsExhausted) {
		t.Fatalf("err = %v, want ErrRestartsExhausted", err)
	}
	if got := len(sup.Attempts); got != 3 {
		t.Errorf("attempts = %d, want 3 (initial + 2 restarts)", got)
	}
	if sup.WatchdogKills() != 3 {
		t.Errorf("watchdog kills = %d, want 3", sup.WatchdogKills())
	}
	for _, a := range sup.Attempts {
		// The watchdog fires outside the kernel's kill path; the
		// supervisor must synthesize the post-mortem.
		if a.Kill == nil {
			t.Fatalf("attempt %d has no post-mortem", a.N)
		}
		if !errors.Is(a.Kill.Cause, cpu.ErrStepLimit) {
			t.Errorf("attempt %d cause = %v, want step limit", a.N, a.Kill.Cause)
		}
		if a.Kill.Symbol == "" {
			t.Errorf("attempt %d post-mortem has no symbol", a.N)
		}
	}
}

func TestBackoffAccumulates(t *testing.T) {
	sup := New(image(t, spinProgram()), seededKernel(1), Policy{
		MaxRestarts: 4,
		BackoffBase: 100,
		BackoffCap:  400,
		Budget:      2_000,
	})
	_, err := sup.Run(nil)
	if !errors.Is(err, ErrRestartsExhausted) {
		t.Fatalf("err = %v", err)
	}
	// Restart delays double from base to cap: 100, 200, 400, 400.
	want := []uint64{0, 100, 200, 400, 400}
	var total uint64
	for i, a := range sup.Attempts {
		if a.Backoff != want[i] {
			t.Errorf("attempt %d backoff = %d, want %d", i, a.Backoff, want[i])
		}
		total += a.Backoff
	}
	if sup.Downtime != total {
		t.Errorf("downtime = %d, want %d", sup.Downtime, total)
	}
}

func TestForkRespawnSharesKeys(t *testing.T) {
	var procs []*kernel.Process
	sup := New(image(t, spinProgram()), seededKernel(1), Policy{
		Respawn:     RespawnFork,
		MaxRestarts: 2,
		Budget:      2_000,
	})
	_, err := sup.Run(func(n int, p *kernel.Process) { procs = append(procs, p) })
	if !errors.Is(err, ErrRestartsExhausted) {
		t.Fatalf("err = %v", err)
	}
	if len(procs) != 3 {
		t.Fatalf("saw %d incarnations", len(procs))
	}
	if !SharedKeys(procs[0], procs[1]) || !SharedKeys(procs[1], procs[2]) {
		t.Error("fork respawn drew fresh keys; Section 4.3 needs the shared-key worker model")
	}
}

func TestExecRespawnFreshKeys(t *testing.T) {
	var procs []*kernel.Process
	sup := New(image(t, spinProgram()), seededKernel(1), Policy{
		Respawn:     RespawnExec,
		MaxRestarts: 1,
		Budget:      2_000,
	})
	_, err := sup.Run(func(n int, p *kernel.Process) { procs = append(procs, p) })
	if !errors.Is(err, ErrRestartsExhausted) {
		t.Fatalf("err = %v", err)
	}
	if SharedKeys(procs[0], procs[1]) {
		t.Error("exec respawn reused keys; each incarnation must re-key")
	}
}

func TestConfigureRunsOncePerIncarnationPolicy(t *testing.T) {
	for _, respawn := range []Respawn{RespawnFork, RespawnExec} {
		calls := 0
		sup := New(image(t, spinProgram()), seededKernel(1), Policy{
			Respawn:     respawn,
			MaxRestarts: 2,
			Budget:      2_000,
		})
		sup.Configure = func(p *kernel.Process) {
			calls++
			p.FullFrameSigreturn = true
		}
		var procs []*kernel.Process
		_, _ = sup.Run(func(n int, p *kernel.Process) { procs = append(procs, p) })
		want := 3 // once per exec boot
		if respawn == RespawnFork {
			want = 1 // once on the template; forks inherit
		}
		if calls != want {
			t.Errorf("%v: Configure ran %d times, want %d", respawn, calls, want)
		}
		for i, p := range procs {
			if !p.FullFrameSigreturn {
				t.Errorf("%v: incarnation %d did not inherit configuration", respawn, i)
			}
		}
	}
}

func TestMutateCanRepairTheVictim(t *testing.T) {
	// The mutate callback models the attacker, but the supervisor
	// contract is just "runs before the attempt executes": use it to
	// count incarnations and confirm the final process is returned.
	seen := 0
	sup := New(image(t, cleanProgram()), seededKernel(1), Policy{MaxRestarts: 5})
	p, err := sup.Run(func(n int, _ *kernel.Process) { seen = n + 1 })
	if err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Errorf("clean victim ran %d times, want 1", seen)
	}
	if p == nil || p.ExitCode != 0 {
		t.Errorf("final process %+v", p)
	}
}
