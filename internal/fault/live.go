// Live-traffic injection: the exported surface the serving layer
// (internal/serve) uses to wire fault campaigns into individual
// requests. A campaign (Engine.Run) owns its whole victim lifecycle;
// live traffic inverts that — the server boots and runs the victim,
// and borrows the engine's injector, golden runs and classification
// one request at a time.

package fault

import (
	"fmt"
	"math/rand"

	"pacstack/internal/compile"
	"pacstack/internal/kernel"
)

// Image returns the engine's cached compiled image for the scheme,
// compiling it on first use. Safe for concurrent use.
func (e *Engine) Image(s compile.Scheme) (*compile.Image, error) {
	return e.image(s)
}

// Harden applies the scheme-appropriate Appendix B sigreturn hardening
// to a freshly booted process: the full-frame chain for masked
// PACStack, the PC/CR chain for the unmasked variant, nothing for
// schemes without PA kernel support. The serving layer passes this as
// the supervisor's Configure hook; Engine.boot uses it for campaigns.
func Harden(s compile.Scheme, p *kernel.Process) {
	switch s {
	case compile.SchemePACStack:
		p.FullFrameSigreturn = true
	case compile.SchemePACStackNoMask:
		p.HardenedSigreturn = true
	}
}

// Injection describes one single-shot corruption to arm on a live
// process: the campaign shape and the retired-instruction index at
// which it fires.
type Injection struct {
	Kind Kind
	// At is the retired-instruction index of the initial task at which
	// the corruption lands (between instructions, like a concurrent
	// attacker's write).
	At uint64
	// SmashWords is the overwrite length for KindStackSmash; 0 means 8.
	SmashWords int
}

// Arm installs inj on proc's initial task. proc must have been booted
// from this engine's image for scheme s (the injector needs the layout
// and symbol tables to pick targets). rng supplies the corruption
// draws when the fault fires; a seeded rng makes the injection — and
// therefore the request outcome — deterministic. Safe for concurrent
// use across distinct processes.
func (e *Engine) Arm(proc *kernel.Process, s compile.Scheme, inj Injection, rng *rand.Rand) error {
	img, err := e.image(s)
	if err != nil {
		return err
	}
	if len(proc.Tasks) == 0 {
		return fmt.Errorf("fault: cannot arm injection on a process with no tasks")
	}
	in := &injector{
		engine: e, img: img, proc: proc, task: proc.Tasks[0],
		kind: inj.Kind, at: inj.At, rng: rng,
		smashWords: inj.SmashWords,
	}
	in.arm()
	return nil
}

// ClassifyRun maps one finished live run onto the campaign taxonomy
// against the scheme's cached golden reference: Detected (killed, with
// the typed cause), Benign (identical output and exit code), or Silent
// (diverged without a kill — the outcome the serving layer must never
// see from PACStack under return-address corruption).
func (e *Engine) ClassifyRun(s compile.Scheme, runErr error, proc *kernel.Process) (Outcome, Cause, error) {
	g, err := e.goldenRun(s)
	if err != nil {
		return 0, 0, err
	}
	o, c := classify(runErr, proc, g)
	return o, c, nil
}
