package fault

import (
	"math/rand"
	"testing"

	"pacstack/internal/compile"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
)

// liveRun boots one seeded process, arms one injection the way the
// serving layer does, runs it, and classifies against the golden.
func liveRun(t *testing.T, e *Engine, s compile.Scheme, seed int64, inj Injection) (Outcome, Cause, error) {
	t.Helper()
	img, err := e.Image(s)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(pa.DefaultConfig())
	k.Seed(seed)
	proc, err := img.Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	Harden(s, proc)
	rng := rand.New(rand.NewSource(seed))
	if err := e.Arm(proc, s, inj, rng); err != nil {
		t.Fatal(err)
	}
	_, _, instrs, err := e.Golden(s)
	if err != nil {
		t.Fatal(err)
	}
	runErr := proc.Run(4*instrs + 10_000)
	return mustClassify(t, e, s, runErr, proc), causeOfRun(t, e, s, runErr, proc), runErr
}

func mustClassify(t *testing.T, e *Engine, s compile.Scheme, runErr error, proc *kernel.Process) Outcome {
	t.Helper()
	o, _, err := e.ClassifyRun(s, runErr, proc)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func causeOfRun(t *testing.T, e *Engine, s compile.Scheme, runErr error, proc *kernel.Process) Cause {
	t.Helper()
	_, c, err := e.ClassifyRun(s, runErr, proc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLiveInjectionDeterministic: the exported Arm/ClassifyRun path is
// a pure function of (scheme, seed, injection) — the property the
// serving layer's byte-identical soak reports rest on.
func TestLiveInjectionDeterministic(t *testing.T) {
	e := NewEngine(DefaultProgram())
	inj := Injection{Kind: KindRetAddr, At: 120}
	for seed := int64(1); seed <= 8; seed++ {
		o1, c1, e1 := liveRun(t, e, compile.SchemePACStack, seed, inj)
		o2, c2, e2 := liveRun(t, e, compile.SchemePACStack, seed, inj)
		if o1 != o2 || c1 != c2 || (e1 == nil) != (e2 == nil) {
			t.Fatalf("seed %d: same injection diverged: %v/%v/%v vs %v/%v/%v",
				seed, o1, c1, e1, o2, c2, e2)
		}
	}
}

// TestLiveRetAddrInjectionDetectedByPACStack: live-armed return-
// address overwrites against PACStack are never silent — they either
// miss live state (benign) or die as typed detections, the guarantee
// chaos mode in the serving layer surfaces as 502s.
func TestLiveRetAddrInjectionDetectedByPACStack(t *testing.T) {
	e := NewEngine(DefaultProgram())
	_, _, instrs, err := e.Golden(compile.SchemePACStack)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for seed := int64(1); seed <= 30; seed++ {
		at := uint64(seed*37) % instrs
		o, c, _ := liveRun(t, e, compile.SchemePACStack, seed, Injection{Kind: KindRetAddr, At: at})
		if o == OutcomeSilent {
			t.Fatalf("seed %d at %d: silent corruption under PACStack", seed, at)
		}
		if o == OutcomeDetected {
			detected++
			if c == CauseNone {
				t.Fatalf("seed %d: detected with no cause", seed)
			}
		}
	}
	if detected == 0 {
		t.Fatal("no injection was detected across 30 live runs")
	}
}

func TestArmRejectsTasklessProcess(t *testing.T) {
	e := NewEngine(DefaultProgram())
	err := e.Arm(&kernel.Process{}, compile.SchemePACStack, Injection{Kind: KindBitFlip}, rand.New(rand.NewSource(1)))
	if err == nil {
		t.Fatal("Arm accepted a process with no tasks")
	}
}
