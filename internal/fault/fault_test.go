package fault

import (
	"reflect"
	"testing"

	"pacstack/internal/compile"
)

// TestCampaignDeterministic is the reproducibility contract: two
// fresh engines running the same campaign produce byte-identical
// reports — classification counts, per-cause breakdowns, and the
// sampled post-mortems.
func TestCampaignDeterministic(t *testing.T) {
	schemes := []compile.Scheme{
		compile.SchemeNone, compile.SchemeShadowStack, compile.SchemePACStack,
	}
	for _, kind := range []Kind{KindBitFlip, KindRetAddr, KindSigFrame} {
		c := Campaign{Kind: kind, Trials: 30, Seed: 7}
		run := func() []Report {
			rs, err := NewEngine(DefaultProgram()).RunAll(schemes, c)
			if err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			return rs
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: same seed, different reports:\n  %+v\nvs\n  %+v", kind, a, b)
		}
	}
}

func TestCampaignSeedMatters(t *testing.T) {
	e := NewEngine(DefaultProgram())
	one := []compile.Scheme{compile.SchemeNone}
	a, err := e.RunAll(one, Campaign{Kind: KindBitFlip, Trials: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RunAll(one, Campaign{Kind: KindBitFlip, Trials: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds produced identical campaigns")
	}
}

// TestRetAddrCoverageOrdering is the headline acceptance criterion:
// on the return-address-overwrite campaign, PACStack's silent rate is
// no worse than the shadow stack's and strictly better than the
// unprotected baseline's.
func TestRetAddrCoverageOrdering(t *testing.T) {
	e := NewEngine(DefaultProgram())
	rs, err := e.RunAll([]compile.Scheme{
		compile.SchemeNone, compile.SchemeShadowStack, compile.SchemePACStack,
	}, Campaign{Kind: KindRetAddr, Trials: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	by := map[compile.Scheme]Report{}
	for _, r := range rs {
		by[r.Scheme] = r
	}
	base, shadow, pac := by[compile.SchemeNone], by[compile.SchemeShadowStack], by[compile.SchemePACStack]
	if pac.Silent > shadow.Silent {
		t.Errorf("pacstack silent %d > shadow stack silent %d", pac.Silent, shadow.Silent)
	}
	if pac.Silent >= base.Silent {
		t.Errorf("pacstack silent %d >= baseline silent %d", pac.Silent, base.Silent)
	}
	if pac.Detected == 0 {
		t.Error("pacstack detected no return-address overwrites")
	}
	if n := pac.ByCause[CauseAuth]; n == 0 {
		t.Error("pacstack detections carry no authentication-fault cause")
	}
}

// TestSigFrameCampaignFullFrameChain: under the full-frame Appendix B
// chain, every tampered signal frame dies at sigreturn — nothing is
// silent.
func TestSigFrameCampaignFullFrameChain(t *testing.T) {
	e := NewEngine(DefaultProgram())
	rs, err := e.RunAll([]compile.Scheme{compile.SchemePACStack},
		Campaign{Kind: KindSigFrame, Trials: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rs[0]
	if r.Silent != 0 {
		t.Errorf("full-frame sigreturn chain let %d tampered frames through", r.Silent)
	}
	if r.ByCause[CauseSigreturn] == 0 {
		t.Error("no sigreturn-cause detections recorded")
	}
}

func TestReportAccounting(t *testing.T) {
	e := NewEngine(DefaultProgram())
	rs, err := e.RunAll(compile.Schemes, Campaign{Kind: KindStackSmash, Trials: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if got := r.Detected + r.Benign + r.Silent; got != r.Trials {
			t.Errorf("%v: detected+benign+silent = %d, want %d trials", r.Scheme, got, r.Trials)
		}
		var causes int
		for _, n := range r.ByCause {
			causes += n
		}
		if causes != r.Detected {
			t.Errorf("%v: cause breakdown sums to %d, want detected %d", r.Scheme, causes, r.Detected)
		}
		if r.SilentRate() < 0 || r.SilentRate() > 1 {
			t.Errorf("%v: silent rate %f out of range", r.Scheme, r.SilentRate())
		}
	}
}
