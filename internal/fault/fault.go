// Package fault is a seeded, fully deterministic fault-injection
// engine: it mounts corruption campaigns against compiled programs
// under every protection scheme and classifies what each scheme
// actually catches.
//
// The paper's security argument is a robustness claim — an adversary
// (or a fault) that corrupts a stored return address must not go
// unnoticed: the chain auth_i = H_k(ret_i, aret_{i-1}) is supposed to
// turn corruption into a kill with all but probability ~2^-b. The
// hand-written attacks in internal/attack probe specific strategies;
// this package measures the complementary quantity: over *arbitrary*
// corruption of a chosen shape, what fraction is detected, what
// fraction is harmlessly absorbed, and — the number the paper drives
// toward zero — what fraction silently changes program behaviour.
//
// Every campaign is deterministic: one seed fixes the PA keys, the
// canary, the injection points and the corruption values of every
// trial, so identical (seed, config) runs give byte-identical reports.
// Faults fire through the cpu.Machine PreStep hook at chosen retired-
// instruction indices, between instructions, exactly as a hardware
// fault or a concurrent attacker's write would land.
package fault

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"pacstack/internal/compile"
	"pacstack/internal/cpu"
	"pacstack/internal/ir"
	"pacstack/internal/isa"
	"pacstack/internal/kernel"
	"pacstack/internal/mem"
	"pacstack/internal/pa"
	"pacstack/internal/par"
)

// Kind selects the corruption shape of a campaign.
type Kind int

// The campaign shapes.
const (
	// KindBitFlip flips one random bit of one random word in the
	// writable address space (stack, globals, shadow stack) — the
	// memory-error model. Code pages are exempt: assumption A1 (W⊕X)
	// protects executable memory in the paper's model.
	KindBitFlip Kind = iota
	// KindRetAddr overwrites the live stored return address of the
	// current activation — wherever the scheme keeps it: the frame
	// record for the baseline and canary schemes, the signed frame
	// record under -mbranch-protection, the shadow-stack slot under
	// ShadowCallStack, the spilled aret under PACStack — with the
	// address of some function in the image (the jump-a-fault-buys-
	// you model).
	KindRetAddr
	// KindStackSmash overwrites a run of consecutive words upward
	// from SP with a recognizable pattern — the linear buffer
	// overflow: locals, canary slot, spilled CR and the frame record
	// all in its path.
	KindStackSmash
	// KindRegister flips one bit of one saved register at a context-
	// switch boundary, modelling corruption of the register file
	// while it sits saved in the kernel task struct between quanta.
	KindRegister
	// KindSigFrame delivers a signal at the chosen instant and
	// tampers with the signal frame on the user stack before the
	// handler returns — the sigreturn surface of Section 6.3.2 that
	// Appendix B hardens.
	KindSigFrame

	NumKinds int = iota
)

// String names the campaign kind.
func (k Kind) String() string {
	switch k {
	case KindBitFlip:
		return "memory bit-flip"
	case KindRetAddr:
		return "return-address overwrite"
	case KindStackSmash:
		return "stack-frame smash"
	case KindRegister:
		return "register corruption"
	case KindSigFrame:
		return "signal-frame tamper"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Outcome classifies one fault-injection run.
type Outcome int

// The three classes of the detection-coverage metric.
const (
	// OutcomeDetected: the run was killed — authentication or CFI
	// fault, segfault, canary abort, sigreturn validation, or the
	// instruction-budget watchdog.
	OutcomeDetected Outcome = iota
	// OutcomeBenign: the run terminated with output and exit code
	// identical to the golden run; the corruption hit dead state.
	OutcomeBenign
	// OutcomeSilent: the run terminated without any kill but with
	// diverging output or exit code — undetected corruption, the
	// quantity PACStack claims to drive to ~2^-b.
	OutcomeSilent
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeDetected:
		return "detected"
	case OutcomeBenign:
		return "benign"
	case OutcomeSilent:
		return "silent corruption"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Cause refines OutcomeDetected with what pulled the trigger, read
// from the structured kernel.KillInfo post-mortem rather than error
// strings.
type Cause int

// Detection causes.
const (
	CauseNone      Cause = iota // not detected
	CauseAuth                   // PAC authentication failure (translation fault on a poisoned pointer)
	CauseSegfault               // memory access or fetch fault
	CauseCFI                    // forward- or return-edge CFI hook
	CauseCanary                 // __stack_chk_fail abort (exit 134)
	CauseSigreturn              // kernel sigreturn validation (Appendix B)
	CauseWatchdog               // instruction-budget watchdog expiry
	CauseOther                  // any other kill
	NumCauses      int   = iota
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseAuth:
		return "auth"
	case CauseSegfault:
		return "segfault"
	case CauseCFI:
		return "cfi"
	case CauseCanary:
		return "canary"
	case CauseSigreturn:
		return "sigreturn"
	case CauseWatchdog:
		return "watchdog"
	case CauseOther:
		return "other"
	}
	return fmt.Sprintf("Cause(%d)", int(c))
}

// Campaign configures one corruption campaign.
type Campaign struct {
	Kind   Kind
	Trials int
	// Seed fixes everything random in the campaign: per-trial PA
	// keys and canary, injection indices, corruption values.
	Seed int64
	// Budget is the per-run instruction watchdog; 0 derives it from
	// the golden run (4x its length).
	Budget uint64
	// SmashWords is the overwrite length for KindStackSmash; 0 means 8.
	SmashWords int
}

// Report is the classified result of one (scheme, campaign) pair.
type Report struct {
	Scheme   compile.Scheme
	Kind     Kind
	Trials   int
	Detected int
	Benign   int
	Silent   int
	// ByCause breaks Detected down by trigger, indexed by Cause.
	ByCause [NumCauses]int
	// Posted holds one sample post-mortem per cause, as the
	// supervisor would log it.
	Posted map[Cause]string
}

// SilentRate is the fraction of trials with undetected divergence.
func (r Report) SilentRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Silent) / float64(r.Trials)
}

// DetectedRate is the fraction of trials killed.
func (r Report) DetectedRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Trials)
}

// golden is the reference run of one scheme.
type golden struct {
	output   []byte
	exitCode uint64
	instrs   uint64
}

// Engine runs campaigns for one program. Images and golden runs are
// compiled and measured once per scheme and reused across campaigns.
// The caches are mutex-guarded so campaigns for different schemes can
// run concurrently (RunAll fans them out over the par worker pool).
type Engine struct {
	Prog   *ir.Program
	Layout compile.Layout
	Config pa.Config

	mu      sync.Mutex
	images  map[compile.Scheme]*compile.Image
	goldens map[compile.Scheme]*golden
}

// NewEngine returns an engine for prog under the default layout and
// PA configuration.
func NewEngine(prog *ir.Program) *Engine {
	return &Engine{
		Prog:    prog,
		Layout:  compile.DefaultLayout(),
		Config:  pa.DefaultConfig(),
		images:  make(map[compile.Scheme]*compile.Image),
		goldens: make(map[compile.Scheme]*golden),
	}
}

// DefaultProgram is the standard campaign target: a call tree several
// frames deep with locals (so the stack protector engages), an
// indirect call (so forward-edge CFI engages), loops, and enough
// output that silent divergence is observable.
func DefaultProgram() *ir.Program {
	return &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Locals: 2, Body: []ir.Op{
			ir.Write{Byte: '<'},
			ir.StoreLocal{Slot: 0, Value: 17},
			ir.Loop{Count: 6, Body: []ir.Op{
				ir.Call{Target: "work"},
				ir.CallPtr{Target: "helper"},
			}},
			ir.LoadLocal{Slot: 0},
			ir.Write{Byte: '>'},
		}},
		{Name: "work", Locals: 1, Body: []ir.Op{
			ir.StoreLocal{Slot: 0, Value: 7},
			ir.Compute{Units: 5},
			ir.Call{Target: "inner"},
			ir.LoadLocal{Slot: 0},
			ir.Write{Byte: 'w'},
		}},
		{Name: "inner", Locals: 1, Body: []ir.Op{
			ir.Compute{Units: 3},
			ir.Call{Target: "leaf"},
			ir.Write{Byte: 'i'},
		}},
		{Name: "helper", Body: []ir.Op{
			ir.Compute{Units: 2},
			ir.Call{Target: "leaf"},
			ir.Write{Byte: 'h'},
		}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 2}}},
	}}
}

func (e *Engine) image(s compile.Scheme) (*compile.Image, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if img, ok := e.images[s]; ok {
		return img, nil
	}
	img, err := compile.Compile(e.Prog, s, e.Layout)
	if err != nil {
		return nil, err
	}
	e.images[s] = img
	return img, nil
}

// boot starts one deterministic process for the scheme: the kernel
// entropy (keys, canary) comes from kernelSeed, and the Appendix B
// sigreturn hardening matches the scheme — the full-frame chain for
// masked PACStack, the PC/CR chain for the unmasked variant, nothing
// for schemes without PA kernel support.
func (e *Engine) boot(img *compile.Image, kernelSeed int64) (*kernel.Process, error) {
	k := kernel.New(e.Config)
	k.Seed(kernelSeed)
	proc, err := img.Boot(k)
	if err != nil {
		return nil, err
	}
	Harden(img.Scheme, proc)
	return proc, nil
}

// Golden runs the scheme once without faults and caches the result.
func (e *Engine) Golden(s compile.Scheme) (output []byte, exitCode, instrs uint64, err error) {
	g, err := e.goldenRun(s)
	if err != nil {
		return nil, 0, 0, err
	}
	return g.output, g.exitCode, g.instrs, nil
}

func (e *Engine) goldenRun(s compile.Scheme) (*golden, error) {
	e.mu.Lock()
	g, ok := e.goldens[s]
	e.mu.Unlock()
	if ok {
		return g, nil
	}
	img, err := e.image(s)
	if err != nil {
		return nil, err
	}
	proc, err := e.boot(img, 0)
	if err != nil {
		return nil, err
	}
	if err := proc.Run(50_000_000); err != nil {
		return nil, fmt.Errorf("fault: golden run of %v failed: %w", s, err)
	}
	g = &golden{
		output:   append([]byte(nil), proc.Output...),
		exitCode: proc.ExitCode,
		instrs:   proc.Tasks[0].M.Instrs,
	}
	// A concurrent caller may have raced the computation; both results
	// are identical (the golden run is seeded), so last-store wins.
	e.mu.Lock()
	e.goldens[s] = g
	e.mu.Unlock()
	return g, nil
}

// Run executes one campaign against one scheme.
func (e *Engine) Run(s compile.Scheme, c Campaign) (Report, error) {
	img, err := e.image(s)
	if err != nil {
		return Report{}, err
	}
	g, err := e.goldenRun(s)
	if err != nil {
		return Report{}, err
	}
	budget := c.Budget
	if budget == 0 {
		budget = 4*g.instrs + 10_000
	}
	// One rng drives the whole campaign; every draw below is in a
	// fixed order, so the trial sequence is a pure function of
	// (scheme, campaign).
	rng := rand.New(rand.NewSource(c.Seed ^ int64(s)<<20 ^ int64(c.Kind)<<28))

	rep := Report{Scheme: s, Kind: c.Kind, Trials: c.Trials, Posted: make(map[Cause]string)}
	for t := 0; t < c.Trials; t++ {
		kernelSeed := rng.Int63()
		idx := uint64(rng.Int63n(int64(g.instrs)))
		if c.Kind == KindRegister {
			// Saved-state corruption happens while the registers sit
			// in the kernel task struct: align to a context-switch
			// boundary.
			idx -= idx % kernel.Quantum
			if idx == 0 {
				idx = kernel.Quantum
			}
		}
		proc, err := e.boot(img, kernelSeed)
		if err != nil {
			return rep, err
		}
		inj := &injector{
			engine: e, img: img, proc: proc, task: proc.Tasks[0],
			kind: c.Kind, at: idx, rng: rng,
			smashWords: c.SmashWords,
		}
		inj.arm()
		runErr := proc.Run(budget)
		outcome, cause := classify(runErr, proc, g)
		switch outcome {
		case OutcomeDetected:
			rep.Detected++
			rep.ByCause[cause]++
			if _, ok := rep.Posted[cause]; !ok && proc.Kill != nil {
				rep.Posted[cause] = proc.Kill.String()
			}
		case OutcomeBenign:
			rep.Benign++
		case OutcomeSilent:
			rep.Silent++
		}
	}
	return rep, nil
}

// RunAll executes the campaign against every scheme. Each scheme's
// trial stream is a pure function of (scheme, campaign) — the rng is
// derived from the campaign seed and the scheme — so schemes fan out
// over the par worker pool and reports merge in input order, byte-
// identical to a serial sweep.
func (e *Engine) RunAll(schemes []compile.Scheme, c Campaign) ([]Report, error) {
	out := make([]Report, len(schemes))
	err := par.ForEachErr(len(schemes), func(i int) error {
		r, err := e.Run(schemes[i], c)
		out[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// classify maps one finished run onto the detection taxonomy.
func classify(runErr error, proc *kernel.Process, g *golden) (Outcome, Cause) {
	if runErr != nil {
		if errors.Is(runErr, cpu.ErrStepLimit) {
			return OutcomeDetected, CauseWatchdog
		}
		return OutcomeDetected, causeOf(runErr)
	}
	if proc.ExitCode == 134 && g.exitCode != 134 {
		// __stack_chk_fail aborts via exit(134): a clean exit to the
		// kernel, but a detection all the same.
		return OutcomeDetected, CauseCanary
	}
	if bytes.Equal(proc.Output, g.output) && proc.ExitCode == g.exitCode {
		return OutcomeBenign, CauseNone
	}
	return OutcomeSilent, CauseNone
}

// causeOf reads the error chain the way the supervisor reads a
// KillInfo: typed, no string matching.
func causeOf(err error) Cause {
	var tf *cpu.TranslationFault
	if errors.As(err, &tf) {
		return CauseAuth
	}
	var cf *cpu.CFIViolation
	if errors.As(err, &cf) {
		return CauseCFI
	}
	if errors.Is(err, kernel.ErrProcessKilled) {
		return CauseSigreturn
	}
	var mf *mem.Fault
	if errors.As(err, &mf) {
		return CauseSegfault
	}
	return CauseOther
}

// injector holds one trial's armed corruption.
type injector struct {
	engine     *Engine
	img        *compile.Image
	proc       *kernel.Process
	task       *kernel.Task
	kind       Kind
	at         uint64
	rng        *rand.Rand
	smashWords int

	fired bool
}

// arm installs the PreStep hook on the victim task. Corruption
// parameters are drawn when the fault fires, from the campaign rng —
// the draw order is deterministic because the hook fires exactly once
// at a deterministic instruction index.
func (inj *injector) arm() {
	inj.task.M.PreStep = func(m *cpu.Machine) error {
		if inj.fired || m.Instrs < inj.at {
			return nil
		}
		inj.fired = true
		return inj.inject(m)
	}
}

func (inj *injector) inject(m *cpu.Machine) error {
	adv := mem.NewAdversary(inj.proc.Mem)
	switch inj.kind {
	case KindBitFlip:
		addr := inj.pickDataWord(m)
		v, err := adv.Peek(addr)
		if err != nil {
			return nil // unmapped corner: fault absorbed
		}
		_ = adv.Poke(addr, v^(1<<uint(inj.rng.Intn(64))))

	case KindRetAddr:
		slot, ok := inj.retSlot(m)
		target := inj.plantTarget()
		if ok {
			_ = adv.Poke(slot, target)
		}

	case KindStackSmash:
		n := inj.smashWords
		if n <= 0 {
			n = 8
		}
		top := inj.img.Layout.StackTop()
		sp := m.Reg(isa.SP)
		for i := 0; i < n; i++ {
			addr := sp + uint64(8*i)
			if addr >= top {
				break
			}
			_ = adv.Poke(addr, 0x4141414141414141)
		}

	case KindRegister:
		// Corrupt one register of the saved context — the state that
		// sits in the kernel task struct across the switch: scratch
		// and accumulator registers the compiler uses, the frame and
		// link registers, and the special per-scheme state (CR, SCS).
		// X19/X20 are dead under every scheme and act as controls.
		candidates := []isa.Reg{
			isa.X0, isa.X9, isa.X10, isa.X19, isa.X20,
			isa.CR, isa.SCS, isa.FP, isa.LR, isa.SP,
		}
		r := candidates[inj.rng.Intn(len(candidates))]
		m.SetReg(r, m.Reg(r)^(1<<uint(inj.rng.Intn(64))))

	case KindSigFrame:
		handler := inj.img.FuncEntries["__sig_handler"]
		tramp := inj.img.FuncEntries["__sigreturn"]
		if err := inj.proc.DeliverSignal(inj.task, 7, handler, tramp); err != nil {
			return err // frame did not fit: the kernel killed us
		}
		base := m.Reg(isa.SP) // frame base after delivery
		word := inj.rng.Intn(3 + 32)
		addr := base + uint64(8*word)
		if word == 0 {
			// SROP: redirect the saved PC wholesale.
			_ = adv.Poke(addr, inj.plantTarget())
		} else if v, err := adv.Peek(addr); err == nil {
			_ = adv.Poke(addr, v^(1<<uint(inj.rng.Intn(64))))
		}
	}
	return nil
}

// pickDataWord chooses a word-aligned address among the *live*
// writable words: the in-use stack between SP and the stack top, the
// globals the runtime actually initialises (canary, jmp_bufs), and
// the occupied prefix of the shadow stack. Sampling the whole mapped
// address space would mostly hit dead memory and tell us nothing.
func (inj *injector) pickDataWord(m *cpu.Machine) uint64 {
	l := inj.img.Layout
	sp := m.Reg(isa.SP)
	if sp < l.StackBase || sp >= l.StackTop() {
		sp = l.StackTop() - 8
	}
	regions := [][2]uint64{
		{sp, l.StackTop() - sp},
		{l.GlobalsBase, 0x100},
	}
	if scs := m.Reg(isa.SCS); scs > l.ShadowBase && scs <= l.ShadowBase+l.ShadowSize {
		regions = append(regions, [2]uint64{l.ShadowBase, scs - l.ShadowBase})
	}
	var total uint64
	for _, r := range regions {
		total += r[1]
	}
	off := uint64(inj.rng.Int63n(int64(total))) &^ 7
	for _, r := range regions {
		if off < r[1] {
			return r[0] + off&^7
		}
		off -= r[1]
	}
	return sp
}

// retSlot locates the live stored return address of the current
// activation for the image's scheme. ok is false when no activation
// is live (e.g. the fault landed between frames).
func (inj *injector) retSlot(m *cpu.Machine) (uint64, bool) {
	l := inj.img.Layout
	inStack := func(a uint64) bool {
		return a >= l.StackBase && a+8 <= l.StackTop()
	}
	fp := m.Reg(isa.FP)
	switch inj.img.Scheme {
	case compile.SchemeShadowStack:
		// The live copy is the newest shadow-stack slot.
		scs := m.Reg(isa.SCS)
		if scs > l.ShadowBase && scs <= l.ShadowBase+l.ShadowSize {
			return scs - 8, true
		}
		return 0, false
	case compile.SchemePACStack, compile.SchemePACStackNoMask:
		// The chain register itself is out of reach; the live memory
		// state is the spilled aret_{i-1} below the frame record.
		if inStack(fp - 16) {
			return fp - 16, true
		}
		return 0, false
	default:
		// Baseline, canary, -mbranch-protection, static CFI: the
		// frame record's LR slot.
		if inStack(fp + 8) {
			return fp + 8, true
		}
		return 0, false
	}
}

// plantTarget picks a code address the corrupted return could land
// on. Half the draws are *wrong return sites* — the address after
// some BL in user code, the control-flow-bending target that a
// stateless policy accepts and that therefore runs to completion with
// diverged behaviour unless a stateful scheme objects. The other half
// are user-function entries, occasionally nudged into the body (the
// wild-jump model). Runtime symbols like __stack_chk_fail are
// excluded so a jump into the abort routine is not miscounted as a
// canary detection. All candidate lists are sorted, keeping the draw
// deterministic.
func (inj *injector) plantTarget() uint64 {
	if sites := inj.returnSites(); len(sites) > 0 && inj.rng.Intn(2) == 0 {
		return sites[inj.rng.Intn(len(sites))]
	}
	entries := make([]uint64, 0, len(inj.img.IR.Functions))
	for _, f := range inj.img.IR.Functions {
		entries = append(entries, inj.img.FuncEntries[f.Name])
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
	t := entries[inj.rng.Intn(len(entries))]
	if inj.rng.Intn(4) == 0 {
		t += uint64(inj.rng.Intn(3)) * isa.InstrSize
	}
	return t
}

// returnSites lists every address following a call instruction inside
// user function code, in address order.
func (inj *injector) returnSites() []uint64 {
	userFn := make(map[string]bool, len(inj.img.IR.Functions))
	for _, f := range inj.img.IR.Functions {
		userFn[f.Name] = true
	}
	prog := inj.img.Prog
	var sites []uint64
	for i, ins := range prog.Instrs {
		if ins.Op != isa.BL && ins.Op != isa.BLR {
			continue
		}
		addr := prog.Base + uint64(i)*isa.InstrSize
		sym, _ := prog.SymbolFor(addr)
		if j := strings.IndexByte(sym, '$'); j >= 0 {
			sym = sym[:j]
		}
		if userFn[sym] {
			sites = append(sites, addr+isa.InstrSize)
		}
	}
	return sites
}
