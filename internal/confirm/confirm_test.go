package confirm

import (
	"testing"

	"pacstack/internal/compile"
)

func TestSuiteSize(t *testing.T) {
	// The paper ran 11 applicable tests (Section 7.3).
	if got := len(Tests()); got != 11 {
		t.Errorf("suite has %d tests, want 11", got)
	}
}

func TestAllSchemesPassAllTests(t *testing.T) {
	results, err := RunAll(compile.Schemes)
	if err != nil {
		t.Fatal(err)
	}
	want := len(Tests()) * len(compile.Schemes)
	if len(results) != want {
		t.Fatalf("results = %d, want %d", len(results), want)
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s under %v: %s", r.Test, r.Scheme, r.Detail)
		}
	}
}

func TestPACStackOutcomesMatchBaselineExactly(t *testing.T) {
	for _, tc := range Tests() {
		ref, err := tc.Execute(compile.SchemeNone)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		got, err := tc.Execute(compile.SchemePACStack)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if got != ref {
			t.Errorf("%s: %+v != %+v", tc.Name, got, ref)
		}
		if ref.ExitCode != 0 {
			t.Errorf("%s: baseline exit %d", tc.Name, ref.ExitCode)
		}
	}
}

func TestThreadTestMakesProgressOnBothTasks(t *testing.T) {
	out, err := runThreadTest(compile.SchemePACStack)
	if err != nil {
		t.Fatal(err)
	}
	if out.Output != "M=32 T=4" {
		t.Errorf("thread output %q", out.Output)
	}
}

func TestDeepChainProgramShape(t *testing.T) {
	p := deepChainProgram(10)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// depth functions + main + leaf.
	if len(p.Functions) != 12 {
		t.Errorf("functions = %d", len(p.Functions))
	}
}
