// Package confirm ports the ConFIRM compatibility micro-benchmarks
// (Section 7.3) to the simulator. ConFIRM probes the corner cases
// that break CFI schemes in practice — function pointers, callbacks,
// setjmp/longjmp, tail calls, calling conventions, virtual dispatch,
// dynamic-linking-style indirection, threads and signals. The paper
// ran the 11 tests applicable to Linux/AArch64 and found they pass
// with and without PACStack; this package reproduces that claim: each
// test is compiled under every scheme and must behave identically to
// the uninstrumented baseline.
package confirm

import (
	"fmt"

	"pacstack/internal/compile"
	"pacstack/internal/ir"
	"pacstack/internal/isa"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
	"pacstack/internal/par"
)

// Outcome is the observable behaviour of a test program.
type Outcome struct {
	Output   string
	ExitCode uint64
}

// Test is one compatibility micro-benchmark.
type Test struct {
	Name string
	// Program builds the test body; nil when Run is custom.
	Program *ir.Program
	// Run, when set, replaces the default compile-boot-run driver
	// (used for the thread and signal tests that need kernel help).
	Run func(scheme compile.Scheme) (Outcome, error)
}

// confirmSeed pins the kernel entropy stream for every confirmation
// run. The suite asserts scheme transparency, which must hold under
// any keys; the explicit seed makes a failing run reproducible.
const confirmSeed int64 = 0x5eed

// newKernel returns the suite's deterministically seeded kernel.
func newKernel() *kernel.Kernel {
	k := kernel.New(pa.DefaultConfig())
	k.Seed(confirmSeed)
	return k
}

// runProgram is the default driver.
func runProgram(p *ir.Program, scheme compile.Scheme) (Outcome, error) {
	img, err := compile.Compile(p, scheme, compile.DefaultLayout())
	if err != nil {
		return Outcome{}, err
	}
	proc, err := img.Boot(newKernel())
	if err != nil {
		return Outcome{}, err
	}
	if err := proc.Run(20_000_000); err != nil {
		return Outcome{}, err
	}
	return Outcome{Output: string(proc.Output), ExitCode: proc.ExitCode}, nil
}

// Execute runs the test under one scheme.
func (t Test) Execute(scheme compile.Scheme) (Outcome, error) {
	if t.Run != nil {
		return t.Run(scheme)
	}
	return runProgram(t.Program, scheme)
}

// Result is one (test, scheme) verdict.
type Result struct {
	Test    string
	Scheme  compile.Scheme
	Pass    bool
	Detail  string
	Outcome Outcome
}

// RunAll executes every test under every scheme, comparing each
// outcome to the same test under SchemeNone. Tests fan out over the
// par worker pool — every execution boots its own seeded kernel, so
// tests are independent — and verdicts merge in (test, scheme) order,
// byte-identical to a serial sweep.
func RunAll(schemes []compile.Scheme) ([]Result, error) {
	tests := Tests()
	perTest := make([][]Result, len(tests))
	err := par.ForEachErr(len(tests), func(i int) error {
		t := tests[i]
		ref, err := t.Execute(compile.SchemeNone)
		if err != nil {
			return fmt.Errorf("confirm: %s baseline: %w", t.Name, err)
		}
		rs := make([]Result, 0, len(schemes))
		for _, s := range schemes {
			got, err := t.Execute(s)
			r := Result{Test: t.Name, Scheme: s, Outcome: got}
			switch {
			case err != nil:
				r.Detail = err.Error()
			case got != ref:
				r.Detail = fmt.Sprintf("output %q exit %d, want %q exit %d",
					got.Output, got.ExitCode, ref.Output, ref.ExitCode)
			default:
				r.Pass = true
			}
			rs = append(rs, r)
		}
		perTest[i] = rs
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, rs := range perTest {
		out = append(out, rs...)
	}
	return out, nil
}

// leaf is shared by most test programs.
func leaf() *ir.Function {
	return &ir.Function{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 2}}}
}

// Tests returns the ported suite, mirroring the 11 applicable ConFIRM
// cases.
func Tests() []Test {
	return []Test{
		{Name: "indirect-call", Program: &ir.Program{Entry: "main", Functions: []*ir.Function{
			{Name: "main", Body: []ir.Op{
				ir.CallPtr{Target: "f"},
				ir.CallPtr{Target: "g"},
				ir.Write{Byte: '.'},
			}},
			{Name: "f", Body: []ir.Op{ir.Write{Byte: 'f'}, ir.Call{Target: "leaf"}}},
			{Name: "g", Body: []ir.Op{ir.Write{Byte: 'g'}, ir.Call{Target: "leaf"}}},
			leaf(),
		}}},

		{Name: "callback", Program: &ir.Program{Entry: "main", Functions: []*ir.Function{
			// A registration-style flow: main calls a dispatcher that
			// invokes the callback through a pointer.
			{Name: "main", Body: []ir.Op{ir.Call{Target: "dispatch"}, ir.Write{Byte: 'm'}}},
			{Name: "dispatch", Body: []ir.Op{ir.CallPtr{Target: "onevent"}, ir.Write{Byte: 'd'}}},
			{Name: "onevent", Body: []ir.Op{ir.Write{Byte: 'c'}, ir.Call{Target: "leaf"}}},
			leaf(),
		}}},

		{Name: "virtual-dispatch", Program: &ir.Program{Entry: "main", Functions: []*ir.Function{
			// Two "objects" sharing an interface: method selection via
			// indirect calls to distinct implementations.
			{Name: "main", Body: []ir.Op{
				ir.Call{Target: "usecat"},
				ir.Call{Target: "usedog"},
			}},
			{Name: "usecat", Body: []ir.Op{ir.CallPtr{Target: "catspeak"}}},
			{Name: "usedog", Body: []ir.Op{ir.CallPtr{Target: "dogspeak"}}},
			{Name: "catspeak", Body: []ir.Op{ir.Write{Byte: 'c'}, ir.Call{Target: "leaf"}}},
			{Name: "dogspeak", Body: []ir.Op{ir.Write{Byte: 'd'}, ir.Call{Target: "leaf"}}},
			leaf(),
		}}},

		{Name: "setjmp-longjmp", Program: &ir.Program{Entry: "main", Functions: []*ir.Function{
			{Name: "main", Body: []ir.Op{
				ir.SetJmp{Buf: 0},
				ir.IfNZ{Then: []ir.Op{ir.Write{Byte: 'R'}, ir.Exit{Code: 0}}},
				ir.Write{Byte: 'S'},
				ir.Call{Target: "thrower"},
				ir.Write{Byte: 'X'},
			}},
			{Name: "thrower", Body: []ir.Op{ir.LongJmp{Buf: 0, Value: 1}}},
			leaf(),
		}}},

		{Name: "longjmp-deep-unwind", Program: &ir.Program{Entry: "main", Functions: []*ir.Function{
			// longjmp across five active frames: the unmatched
			// call/return pattern that breaks naive shadow stacks.
			{Name: "main", Body: []ir.Op{
				ir.SetJmp{Buf: 1},
				ir.IfNZ{Then: []ir.Op{ir.Write{Byte: 'R'}, ir.Exit{Code: 0}}},
				ir.Call{Target: "d1"},
				ir.Write{Byte: 'X'},
			}},
			{Name: "d1", Body: []ir.Op{ir.Write{Byte: '1'}, ir.Call{Target: "d2"}}},
			{Name: "d2", Body: []ir.Op{ir.Write{Byte: '2'}, ir.Call{Target: "d3"}}},
			{Name: "d3", Body: []ir.Op{ir.Write{Byte: '3'}, ir.Call{Target: "d4"}}},
			{Name: "d4", Body: []ir.Op{ir.Write{Byte: '4'}, ir.Call{Target: "d5"}}},
			{Name: "d5", Body: []ir.Op{ir.LongJmp{Buf: 1, Value: 7}}},
			leaf(),
		}}},

		{Name: "tail-call", Program: &ir.Program{Entry: "main", Functions: []*ir.Function{
			{Name: "main", Body: []ir.Op{ir.Call{Target: "outer"}, ir.Write{Byte: 'm'}}},
			{Name: "outer", Body: []ir.Op{ir.Write{Byte: 'o'}, ir.TailCall{Target: "inner"}}},
			{Name: "inner", Body: []ir.Op{ir.Write{Byte: 'i'}, ir.Call{Target: "leaf"}}},
			leaf(),
		}}},

		{Name: "calling-convention", Program: &ir.Program{Entry: "main", Functions: []*ir.Function{
			// Frame-resident state must survive nested instrumented
			// calls and loops.
			{Name: "main", Locals: 2, Body: []ir.Op{
				ir.StoreLocal{Slot: 0, Value: 42},
				ir.StoreLocal{Slot: 1, Value: 43},
				ir.Loop{Count: 3, Body: []ir.Op{ir.Call{Target: "clobberer"}}},
				ir.AssertLocal{Slot: 0, Value: 42},
				ir.AssertLocal{Slot: 1, Value: 43},
				ir.Write{Byte: '.'},
			}},
			{Name: "clobberer", Locals: 2, Body: []ir.Op{
				ir.StoreLocal{Slot: 0, Value: 666},
				ir.StoreLocal{Slot: 1, Value: 667},
				ir.Call{Target: "leaf"},
			}},
			leaf(),
		}}},

		{Name: "deep-recursion", Program: deepChainProgram(64)},

		{Name: "plt-indirection", Program: &ir.Program{Entry: "main", Functions: []*ir.Function{
			// Load-time dynamic linking analogue: every "library"
			// call goes through an indirect stub, like a PLT entry.
			{Name: "main", Body: []ir.Op{
				ir.Call{Target: "stub"},
				ir.Call{Target: "stub"},
				ir.Write{Byte: 'm'},
			}},
			{Name: "stub", Body: []ir.Op{ir.CallPtr{Target: "libfn"}}},
			{Name: "libfn", Body: []ir.Op{ir.Write{Byte: 'L'}, ir.Call{Target: "leaf"}}},
			leaf(),
		}}},

		{Name: "mixed-instrumentation", Program: &ir.Program{Entry: "main", Functions: []*ir.Function{
			// Section 9.2 interop: an uninstrumented ("3rd party")
			// function in the middle of an instrumented call chain.
			{Name: "main", Body: []ir.Op{ir.Call{Target: "vendor"}, ir.Write{Byte: 'm'}}},
			{Name: "vendor", Uninstrumented: true, Body: []ir.Op{
				ir.Write{Byte: 'v'},
				ir.Call{Target: "protected"},
			}},
			{Name: "protected", Body: []ir.Op{ir.Write{Byte: 'p'}, ir.Call{Target: "leaf"}}},
			leaf(),
		}}},

		{Name: "multithreading", Run: runThreadTest},
	}
}

// deepChainProgram builds a call chain of the given depth.
func deepChainProgram(depth int) *ir.Program {
	p := &ir.Program{Entry: "main"}
	p.Functions = append(p.Functions, &ir.Function{
		Name: "main",
		Body: []ir.Op{ir.Call{Target: "f0"}, ir.Write{Byte: '!'}},
	})
	for i := 0; i < depth; i++ {
		body := []ir.Op{ir.Call{Target: fmt.Sprintf("f%d", i+1)}}
		if i == depth-1 {
			body = []ir.Op{ir.Write{Byte: 'b'}, ir.Call{Target: "leaf"}}
		}
		p.Functions = append(p.Functions, &ir.Function{Name: fmt.Sprintf("f%d", i), Body: body})
	}
	p.Functions = append(p.Functions, leaf())
	return p
}

// runThreadTest spawns a second task running an instrumented function
// (with the Section 4.3 per-thread re-seeding helper) and checks both
// tasks complete with interleaved output.
func runThreadTest(scheme compile.Scheme) (Outcome, error) {
	prog := &ir.Program{Entry: "main", Functions: []*ir.Function{
		// The main task has several times the thread's work so the
		// thread always drains before main returns and the process
		// exits — the outcome is then schedule-independent.
		{Name: "main", Body: []ir.Op{
			ir.Loop{Count: 32, Body: []ir.Op{ir.Call{Target: "work"}, ir.Write{Byte: 'M'}}},
		}},
		{Name: "thread", Body: []ir.Op{
			ir.Loop{Count: 4, Body: []ir.Op{ir.Call{Target: "work"}, ir.Write{Byte: 'T'}}},
		}},
		{Name: "work", Body: []ir.Op{ir.Compute{Units: 5}, ir.Call{Target: "leaf"}}},
		leaf(),
	}}
	img, err := compile.Compile(prog, scheme, compile.DefaultLayout())
	if err != nil {
		return Outcome{}, err
	}
	proc, err := img.Boot(newKernel())
	if err != nil {
		return Outcome{}, err
	}
	// Spawn the second task directly via the kernel: stack in the
	// lower half of the mapped stack region, thread exit as the
	// initial LR, shadow stack in the upper half of the shadow
	// region, and a re-seeded chain register (Section 4.3).
	l := img.Layout
	t := proc.SpawnTask(img.FuncEntries["thread"], l.StackBase+l.StackSize/2)
	t.M.SetReg(isa.LR, img.FuncEntries["__task_exit"])
	t.M.SetReg(isa.SCS, l.ShadowBase+l.ShadowSize/2)
	t.M.SetReg(isa.CR, uint64(t.ID)) // analogous to __thread_seed
	if err := proc.Run(20_000_000); err != nil {
		return Outcome{}, err
	}
	// Normalize the interleaving: the test asserts both tasks made
	// full progress, not a particular schedule.
	var ms, ts int
	for _, b := range proc.Output {
		switch b {
		case 'M':
			ms++
		case 'T':
			ts++
		}
	}
	return Outcome{Output: fmt.Sprintf("M=%d T=%d", ms, ts), ExitCode: proc.ExitCode}, nil
}
