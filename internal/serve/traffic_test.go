package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"pacstack/internal/par"
	"pacstack/internal/resilience"
	"pacstack/internal/telemetry"
	"pacstack/internal/traffic"
)

// slowStormModel is a pool-sized-to-starve scenario: half the traffic
// holds a worker slot ~200x longer than its compute justifies.
func slowStormModel(seed int64) traffic.Model {
	lenient := traffic.SLO{ShedPermille: -1, ErrorPermille: -1}
	return traffic.Model{
		Horizon: 4_000_000,
		Rate:    0.03,
		Classes: []traffic.Class{
			{Name: "web", Workloads: []string{"chain"}, Weight: 0.5, SLO: lenient},
			{Name: "slow", Workloads: []string{"chain"}, Weight: 0.5, Slow: 200, SLO: lenient},
		},
		Seed: seed,
	}
}

// Slow clients must exhaust the pool into shedding, never into a
// deadlock: every arrival still reaches a terminal state.
func TestTrafficSlowClientsShedNotDeadlock(t *testing.T) {
	m := slowStormModel(9)
	rep, err := Soak(context.Background(), SoakConfig{
		Seed: 9, Traffic: &m, Workers: 2, Queue: 2, Cores: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Graceful() {
		t.Fatalf("slow-client storm lost requests: %+v", rep)
	}
	if rep.Sheds == 0 {
		t.Fatal("a 200x slow class against 2 workers must shed")
	}
	if rep.GaveUp == 0 {
		t.Fatal("retry budgets should exhaust under sustained slot starvation")
	}
	slow := rep.SLO.Class("slow")
	if slow == nil || slow.Arrivals == 0 {
		t.Fatal("slow class missing from the SLO report")
	}
}

// A poison storm (every request guaranteed-hostile) must burn through
// the supervised respawn path without ever exceeding the restart
// budget or producing a silent outcome.
func TestTrafficPoisonStormRestartBudget(t *testing.T) {
	const heal = 2
	m := traffic.Model{
		Horizon: 4_000_000,
		Rate:    0.01,
		Classes: []traffic.Class{
			{Name: "poison", Workloads: []string{"chain"}, Weight: 1, Poison: true,
				SLO: traffic.SLO{ShedPermille: -1, ErrorPermille: 1000}},
		},
		Seed: 13,
	}
	set := telemetry.New(telemetry.Options{EventCap: 64})
	rep, err := Soak(context.Background(), SoakConfig{
		Seed: 13, Traffic: &m, Workers: 4, Heal: heal, Telemetry: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Graceful() {
		t.Fatalf("poison storm lost requests: %+v", rep)
	}
	if rep.Silent != 0 {
		t.Fatalf("poison requests produced %d silent outcomes under pacstack", rep.Silent)
	}
	if rep.Detected == 0 {
		t.Fatal("a guaranteed-kill storm detected nothing")
	}
	// Every arrival executes exactly once in the precompute phase; a
	// detected outcome means the respawn budget was fully spent, so the
	// injection count must carry at least Heal+1 attempts per detection
	// and the supervisor must never restart past Issued*Heal.
	if rep.Injected < rep.Detected*(heal+1) {
		t.Fatalf("injected %d < detected %d x (heal+1)", rep.Injected, rep.Detected)
	}
	var restarts uint64
	for _, f := range set.Registry().Gather().Families {
		if f.Name == "pacstack_supervise_restarts_total" {
			for _, s := range f.Series {
				restarts += s.Value
			}
		}
	}
	if restarts > uint64(rep.Issued*heal) {
		t.Fatalf("restart budget breached: %d restarts > %d issued x %d heal", restarts, rep.Issued, heal)
	}
	if restarts < uint64(rep.Detected*heal) {
		t.Fatalf("detected outcomes must have spent the full budget: %d restarts < %d", restarts, rep.Detected*heal)
	}
}

func burstConfig(seed int64, adaptive bool) SoakConfig {
	m := traffic.BurstScenario(seed)
	cfg := SoakConfig{
		Seed: seed, Traffic: &m, Workers: 4, Cores: 32,
		ChaosRate: 0.02, Heal: 1,
	}
	if adaptive {
		cfg.Adaptive = &resilience.AIMDConfig{Max: 48, Step: 4}
	}
	return cfg
}

// The tentpole claim: under the canned 10x burst the static pool
// blows the web class's budgets while the adaptive controller grows
// into the host's spare cores and holds every SLO.
func TestTrafficAdaptiveHoldsBurstSLOWhereStaticFails(t *testing.T) {
	static, err := Soak(context.Background(), burstConfig(42, false))
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Soak(context.Background(), burstConfig(42, true))
	if err != nil {
		t.Fatal(err)
	}
	if !static.Graceful() || !adaptive.Graceful() {
		t.Fatal("burst runs lost requests")
	}
	if static.SLO.Pass {
		t.Fatal("static admission passed the 10x burst; the scenario is not stressing it")
	}
	web := static.SLO.Class("web")
	if web == nil || len(web.Violations) == 0 {
		t.Fatalf("static web class should violate its SLO: %+v", web)
	}
	if !adaptive.SLO.Pass {
		t.Fatalf("adaptive admission failed the burst: %+v", adaptive.SLO.Classes)
	}
	aweb := adaptive.SLO.Class("web")
	if aweb.P99 > aweb.SLO.P99 {
		t.Fatalf("adaptive web p99 %d above target %d", aweb.P99, aweb.SLO.P99)
	}
	st := adaptive.SLO.Controller
	if st == nil || st.Increases == 0 || st.LimitMax <= 4 {
		t.Fatalf("controller never grew under the burst: %+v", st)
	}
}

// The determinism contract: one seed's SLO report and telemetry dump
// are byte-identical at any worker-pool width.
func TestTrafficReportByteIdentityAcrossWidths(t *testing.T) {
	run := func(width int) ([]byte, []byte) {
		restore := par.SetWorkers(width)
		defer restore()
		cfg := burstConfig(7, true)
		set := telemetry.New(telemetry.Options{EventCap: 512})
		cfg.Telemetry = set
		rep, err := Soak(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		repJSON, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		var dump bytes.Buffer
		if err := set.WriteJSON(&dump); err != nil {
			t.Fatal(err)
		}
		return repJSON, dump.Bytes()
	}
	rep1, dump1 := run(1)
	rep8, dump8 := run(8)
	if !bytes.Equal(rep1, rep8) {
		t.Fatal("SLO report differs between -par 1 and -par 8")
	}
	if !bytes.Equal(dump1, dump8) {
		t.Fatal("telemetry dump differs between -par 1 and -par 8")
	}
}
