// Open-loop soak: the traffic-model variant of the DES in soak.go.
// Instead of closed-loop clients issuing requests back-to-back, a
// seeded traffic.Model generates the full arrival stream upfront —
// diurnal curve, burst overlays, heavy-tail class mixture, slow
// clients and poison requests — and the replay drives it through the
// same virtual-time queue/breaker/backoff machinery, evaluating
// per-class SLOs as it goes.
//
// Two things are new relative to the closed-loop soak:
//
//   - A contention model. Service time is (Overhead + victim cycles)
//     x slow-factor x ceil(busy/Cores): a pool resized beyond the
//     host's cores degrades everyone's latency instead of magically
//     adding capacity. The penalty is fixed at service start (no
//     retroactive stretching), which keeps the DES exact and
//     deterministic.
//
//   - An adaptive admission loop. With SoakConfig.Adaptive set, a
//     clock-free resilience.AIMD controller ticks every Interval
//     virtual cycles and resizes the worker limit (queue follows at
//     2x) from the window's shed/occupancy/dilation signals — growing
//     never cancels anything, shrinking only stops new admissions
//     until completions catch up, exactly the Admission.SetLimit
//     contract the live server exposes.
//
// The controller's congestion signal is the SERVICE duration (with
// the contention penalty), not end-to-end latency: queueing delay is
// the symptom a bigger pool fixes, while service-time dilation is the
// symptom a bigger pool causes. Feeding the controller end-to-end
// latency makes it shrink exactly when it should grow; feeding it
// dilation makes decrease fire only on genuine core oversubscription.
// SLOs are still judged on end-to-end latency (what a client sees).
//
// Everything stays a pure function of (model, seed): outcomes are
// precomputed in parallel from per-arrival seeds, the replay is
// serial, and the SLO report embedded in the SoakReport is
// byte-identical at any -par width.

package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"pacstack/internal/fault"
	"pacstack/internal/par"
	"pacstack/internal/resilience"
	"pacstack/internal/telemetry"
	"pacstack/internal/traffic"
)

// soakTraffic runs the open-loop DES. Callers arrive through Soak,
// which has already applied defaults.
func soakTraffic(ctx context.Context, cfg SoakConfig) (*SoakReport, error) {
	model := cfg.Traffic
	arrivals, err := model.Generate()
	if err != nil {
		return nil, err
	}
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("soak: traffic model generated no arrivals")
	}
	for _, c := range model.Classes {
		name := c.Scheme
		if name == "" {
			name = "pacstack"
		}
		if _, err := ParseScheme(name); err != nil {
			return nil, err
		}
	}
	if err := validBootModel(cfg.BootModel); err != nil {
		return nil, err
	}

	vnow := uint64(0)
	if cfg.Telemetry != nil {
		vclock := func() uint64 { return vnow }
		cfg.Telemetry.Registry().SetClock(vclock)
		cfg.Telemetry.Log().SetClock(vclock)
	}
	reg := cfg.Telemetry.Registry()
	tlog := cfg.Telemetry.Log()

	// Two inner servers share the registry (commuting counters only;
	// no event log — events come solely from the serial replay): the
	// regular one with the configured chaos rate, and the poison one
	// whose every attempt arms an injection, which is what makes
	// poison arrivals guaranteed hostile without touching the seeds of
	// regular traffic.
	inner := Config{
		Workers:          len(arrivals) + 1, // never shed in the precompute phase
		Queue:            len(arrivals),
		Seed:             cfg.Seed,
		Chaos:            cfg.ChaosRate > 0,
		ChaosRate:        cfg.ChaosRate,
		ChaosKinds:       cfg.ChaosKinds,
		Heal:             cfg.Heal,
		CheckpointEvery:  cfg.CheckpointEvery,
		CheckpointCrash:  cfg.CheckpointCrash,
		BreakerThreshold: -1,
		Warm:             cfg.BootModel == "warm",
		Telemetry:        &telemetry.Set{Reg: reg},
	}
	if inner.Warm && reg == nil {
		// The report's pool counters come from the inner servers'
		// registry; give them a private one when the caller brought no
		// telemetry sink.
		reg = telemetry.NewRegistry()
		inner.Telemetry = &telemetry.Set{Reg: reg}
	}
	srv := New(inner)
	poisoned := inner
	poisoned.Chaos = true
	poisoned.ChaosRate = 1
	poisoned.ChaosKinds = []fault.Kind{fault.KindRetAddr, fault.KindStackSmash}
	psrv := New(poisoned)

	// Pre-resolve every workload so an unknown name fails fast and the
	// parallel phase never contends on an engine build.
	for _, a := range arrivals {
		s := srv
		if a.Poison {
			s = psrv
		}
		if _, err := s.engine(a.Workload); err != nil {
			return nil, err
		}
	}

	// Per-(workload, scheme) machine-acquisition charge under the
	// selected boot model; empty under the legacy model.
	bootCost := map[string]uint64{}
	if cfg.BootModel != "" {
		for _, a := range arrivals {
			key := a.Workload + "/" + a.Scheme
			if _, ok := bootCost[key]; ok {
				continue
			}
			s := srv
			if a.Poison {
				s = psrv
			}
			costs, err := bootCosts(s, cfg.BootModel, a.Workload, []string{a.Scheme})
			if err != nil {
				return nil, err
			}
			bootCost[key] = costs[a.Scheme]
		}
	}

	// Phase 1: parallel outcome precompute, seeded by arrival index.
	outcomes := make([]soakOutcome, len(arrivals))
	err = par.ForEachCtx(ctx, len(arrivals), func(id int) error {
		a := arrivals[id]
		s := srv
		if a.Poison {
			s = psrv
		}
		reqSeed := mix(cfg.Seed, int64(id)+0x5f01)
		if reqSeed == 0 {
			reqSeed = 1
		}
		res, err := s.Do(context.Background(), Request{
			Workload: a.Workload,
			Scheme:   a.Scheme,
			Seed:     reqSeed,
		})
		switch {
		case err == nil:
			outcomes[id] = soakOutcome{
				class: classOK, cycles: res.Cycles,
				healed: res.Healed, injected: res.Injected,
				checkpoints: res.Checkpoints, restores: res.Restores, torn: res.TornCommits,
			}
		default:
			var ce *CorruptionError
			var se *SilentCorruptionError
			switch {
			case errors.As(err, &ce):
				outcomes[id] = soakOutcome{
					class: classDetected, cause: ce.Cause,
					cycles: ce.Cycles, injected: ce.Injected,
				}
			case errors.As(err, &se):
				outcomes[id] = soakOutcome{class: classSilent, cycles: se.Cycles}
			default:
				return fmt.Errorf("soak precompute (arrival %d, %s/%s): %w", id, a.Workload, a.Scheme, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: serial virtual-time replay.
	var schemes []string
	seenScheme := map[string]bool{}
	for _, a := range arrivals {
		if !seenScheme[a.Scheme] {
			seenScheme[a.Scheme] = true
			schemes = append(schemes, a.Scheme)
		}
	}
	rep := &SoakReport{
		Seed: cfg.Seed, Workload: "traffic", Schemes: schemes,
		ChaosRate: cfg.ChaosRate, Heal: cfg.Heal, Traffic: true,
	}
	eval := traffic.NewEvaluator(model.Classes, reg)

	soakSheds := reg.Counter("pacstack_soak_sheds_total", "DES arrivals shed (queue full)")
	soakRetries := reg.Counter("pacstack_soak_retries_total", "client retries after a rejection")
	soakDenied := reg.Counter("pacstack_soak_breaker_denied_total", "DES arrivals denied by an open breaker")
	soakGaveUp := reg.Counter("pacstack_soak_gave_up_total", "requests abandoned after the retry budget")
	soakResizes := reg.Counter("pacstack_soak_adaptive_resizes_total", "adaptive worker-limit changes")
	transitionsVec := reg.CounterVec("pacstack_resilience_breaker_transitions_total",
		"circuit-breaker state changes", "scheme", "to")

	var breakers map[string]*resilience.Breaker
	if cfg.BreakerThreshold > 0 {
		breakers = make(map[string]*resilience.Breaker, len(schemes))
		for _, name := range schemes {
			scheme := name
			transitions := transitionsVec.Curry(scheme)
			breakers[name] = resilience.NewBreaker(resilience.BreakerConfig{
				Threshold: cfg.BreakerThreshold,
				Cooldown:  cfg.BreakerCooldown,
				OnTransition: func(at uint64, from, to resilience.BreakerState) {
					transitions.With(to.String()).Inc()
					tlog.Record(telemetry.EvBreaker, scheme, from.String()+"->"+to.String(), at)
				},
			})
		}
	}
	backoffs := map[int]*resilience.Backoff{}
	backoff := func(id int) *resilience.Backoff {
		b, ok := backoffs[id]
		if !ok {
			b = resilience.NewBackoff(cfg.BackoffBase, cfg.BackoffCap, mix(cfg.Seed, int64(id)+0x3003))
			backoffs[id] = b
		}
		return b
	}

	rows := make(map[string]*SoakRow, len(schemes))
	rowOrder := []string{}
	row := func(name string) *SoakRow {
		r, ok := rows[name]
		if !ok {
			r = &SoakRow{Scheme: name}
			rows[name] = r
			rowOrder = append(rowOrder, name)
		}
		return r
	}

	workers := cfg.Workers
	queueCap := cfg.Queue
	cores := cfg.Cores
	if cores <= 0 {
		cores = cfg.Workers
	}
	var ctl *resilience.AIMD
	if cfg.Adaptive != nil {
		ac := *cfg.Adaptive
		if ac.Start == 0 {
			ac.Start = cfg.Workers
		}
		if ac.Interval == 0 {
			ac.Interval = 10_000
		}
		if ac.LatencyTarget == 0 {
			// Above the heaviest intrinsic service cost in the catalog
			// (nginx ≈ 690k cycles), so only contention-dilated service
			// reads as congestion.
			ac.LatencyTarget = 1_048_576
		}
		ctl = resilience.NewAIMD(ac)
		workers = ctl.Limit()
		queueCap = 2 * workers
	}

	h := &eventHeap{}
	seq := 0
	push := func(at uint64, kind, client, attempt int) {
		heap.Push(h, event{at: at, seq: seq, kind: kind, client: client, attempt: attempt})
		seq++
	}
	for i, a := range arrivals {
		push(a.At, evIssue, i, 0)
		eval.Arrival(a.Class)
	}
	if ctl != nil {
		push(ctl.Interval(), evTick, 0, 0)
	}

	busy := 0
	var fifo []int
	now := uint64(0)
	served := make([]uint64, len(arrivals)) // service duration, for the controller

	startService := func(id int) {
		busy++
		if ctl != nil {
			ctl.ObserveBusy(busy)
		}
		a := arrivals[id]
		o := outcomes[id]
		// Slow clients stretch their whole occupancy; the contention
		// penalty is ceil(busy/cores) at start — an over-grown pool
		// slows everything it admits.
		dur := (cfg.Overhead + bootCost[a.Workload+"/"+a.Scheme] + o.cycles) * a.Slow
		dur *= uint64((busy + cores - 1) / cores)
		served[id] = dur
		push(now+dur, evDone, id, 0)
	}
	admit := func() {
		for busy < workers && len(fifo) > 0 {
			id := fifo[0]
			fifo = fifo[1:]
			startService(id)
		}
	}
	retryOrGiveUp := func(id, attempt int) {
		a := arrivals[id]
		if attempt >= cfg.Retries {
			rep.GaveUp++
			soakGaveUp.Inc()
			r := row(a.Scheme)
			r.GaveUp++
			r.Requests++
			eval.Done(a.Class, now-a.At, traffic.OutcomeGaveUp)
			return
		}
		rep.Retries++
		soakRetries.Inc()
		eval.Retry(a.Class)
		tlog.Record(telemetry.EvRetry, a.Scheme, "", uint64(attempt+1))
		push(now+backoff(id).Delay(attempt), evIssue, id, attempt+1)
	}

	for h.Len() > 0 {
		e := heap.Pop(h).(event)
		now = e.at
		vnow = now
		switch e.kind {
		case evIssue:
			a := arrivals[e.client]
			if br := breakers[a.Scheme]; br != nil && !br.Allow(now) {
				rep.BreakerDenied++
				soakDenied.Inc()
				retryOrGiveUp(e.client, e.attempt)
				continue
			}
			switch {
			case busy < workers:
				startService(e.client)
			case len(fifo) < queueCap:
				fifo = append(fifo, e.client)
			default:
				rep.Sheds++
				soakSheds.Inc()
				eval.Shed(a.Class)
				if ctl != nil {
					ctl.ObserveShed()
				}
				tlog.Record(telemetry.EvShed, a.Scheme, "queue full", now)
				retryOrGiveUp(e.client, e.attempt)
			}
		case evDone:
			busy--
			id := e.client
			a := arrivals[id]
			o := outcomes[id]
			r := row(a.Scheme)
			r.Requests++
			rep.Injected += o.injected
			rep.Checkpoints += o.checkpoints
			rep.Restores += o.restores
			rep.TornCommits += o.torn
			lat := now - a.At
			switch o.class {
			case classOK:
				rep.OK++
				r.OK++
				if o.healed {
					rep.Healed++
					r.Healed++
				}
				eval.Done(a.Class, lat, traffic.OutcomeOK)
				tlog.Record(telemetry.EvRequestDone, a.Scheme, "ok", o.cycles)
			case classDetected:
				rep.Detected++
				rep.ByCause[o.cause]++
				r.Detected++
				eval.Done(a.Class, lat, traffic.OutcomeDetected)
				tlog.Record(telemetry.EvRequestDone, a.Scheme, "detected:"+o.cause.String(), o.cycles)
			case classSilent:
				rep.Silent++
				r.Silent++
				eval.Done(a.Class, lat, traffic.OutcomeSilent)
				tlog.Record(telemetry.EvRequestDone, a.Scheme, "silent", o.cycles)
			}
			if ctl != nil {
				ctl.ObserveLatency(served[id])
			}
			if br := breakers[a.Scheme]; br != nil {
				br.Record(now, o.class == classOK)
			}
			admit()
		case evTick:
			if limit := ctl.Tick(); limit != workers {
				soakResizes.Inc()
				tlog.Record(telemetry.EvResize, "", fmt.Sprintf("%d->%d", workers, limit), uint64(limit))
				workers = limit
				queueCap = 2 * limit
				admit()
			}
			if h.Len() > 0 {
				push(now+ctl.Interval(), evTick, 0, 0)
			}
		}
	}

	rep.Issued = len(arrivals)
	rep.VirtualCycles = now
	vnow = now
	rep.InFlightAtEnd = busy + len(fifo)
	for c := 0; c < fault.NumCauses; c++ {
		if rep.ByCause[c] > 0 {
			rep.Causes = append(rep.Causes, SchemeCount{Scheme: fault.Cause(c).String(), Count: uint64(rep.ByCause[c])})
		}
	}
	for _, name := range schemes {
		if br := breakers[name]; br != nil {
			if n := br.Opens(); n > 0 {
				rep.BreakerOpens = append(rep.BreakerOpens, SchemeCount{Scheme: name, Count: n})
			}
		}
	}
	for _, name := range rowOrder {
		rep.PerScheme = append(rep.PerScheme, *rows[name])
	}
	rep.BootModel = cfg.BootModel
	rep.RPVSMilli = rpvsMilli(rep.OK, rep.VirtualCycles)
	if cfg.BootModel == "warm" {
		rep.PoolRestores, rep.PoolColdFallbacks, rep.PoolKeyViolations, _ = srv.PoolStats()
	}
	rep.SLO = eval.Report()
	rep.SLO.RPVSMilli = rep.RPVSMilli
	rep.SLO.Adaptive = ctl != nil
	if ctl != nil {
		st := ctl.Stats()
		rep.SLO.Controller = &st
	}
	return rep, nil
}
