// The server's registry wiring: every counter the old mutex-guarded
// stats block held now lives in a telemetry.Registry, and Stats() is a
// thin read over the same handles /metrics exposes — one source of
// truth, two surfaces. The per-scheme kernel/pa bundles are built here
// too, so chain traffic (pac/aut/mask, memo hits, kills by class)
// lands in the registry labeled by the scheme that produced it.

package serve

import (
	"context"
	"errors"

	"pacstack/internal/compile"
	"pacstack/internal/fault"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
	"pacstack/internal/pool"
	"pacstack/internal/resilience"
	"pacstack/internal/snap"
	"pacstack/internal/supervise"
	"pacstack/internal/telemetry"
)

// Request outcome labels, one per terminal classification in
// metrics.count. The sum over the vec equals pacstack_serve_requests_total.
const (
	outOK            = "ok"
	outDetected      = "detected"
	outSilent        = "silent"
	outPanic         = "panic"
	outBadRequest    = "bad_request"
	outShed          = "shed"
	outDraining      = "rejected_draining"
	outBreakerDenied = "breaker_denied"
	outDeadline      = "deadline"
	outInternal      = "internal"
)

// cycleBuckets are the fixed histogram bounds for per-request victim
// cycles. Fixed at compile time: deterministic exposition needs stable
// bucket layouts, not adaptive ones.
var cycleBuckets = []uint64{1_000, 5_000, 25_000, 100_000, 500_000, 2_500_000}

// metrics is the server's pre-resolved handle block.
type metrics struct {
	requests *telemetry.Counter
	outcomes *telemetry.CounterVec // by outcome label above
	byCause  *telemetry.CounterVec // detections by fault cause
	healed   *telemetry.Counter
	cycles   *telemetry.Histogram // victim cycles per executed request

	breakerTransitions *telemetry.CounterVec // by scheme, to-state

	sup  *supervise.Telemetry
	snap *snap.Telemetry
	pool *pool.Telemetry
}

// newMetrics resolves every serve-layer handle against the registry.
func newMetrics(reg *telemetry.Registry, events *telemetry.EventLog) metrics {
	return metrics{
		requests: reg.Counter("pacstack_serve_requests_total", "requests finished, any outcome"),
		outcomes: reg.CounterVec("pacstack_serve_outcomes_total", "requests by terminal outcome", "outcome"),
		byCause:  reg.CounterVec("pacstack_serve_detected_total", "detected corruptions by kill cause", "cause"),
		healed:   reg.Counter("pacstack_serve_healed_total", "requests that crashed and were transparently re-executed"),
		cycles:   reg.Histogram("pacstack_serve_request_cycles", "victim cycles per executed request", cycleBuckets),
		breakerTransitions: reg.CounterVec("pacstack_resilience_breaker_transitions_total",
			"circuit-breaker state changes", "scheme", "to"),
		sup: &supervise.Telemetry{
			Restarts:         reg.Counter("pacstack_supervise_restarts_total", "victim attempts beyond the first"),
			Restores:         reg.Counter("pacstack_supervise_restores_total", "warm restores from a snapshot"),
			RestoreFallbacks: reg.Counter("pacstack_supervise_restore_fallbacks_total", "failed restores that cold-booted"),
			ColdBoots:        reg.Counter("pacstack_supervise_cold_boots_total", "attempts that cold-booted"),
			Commits:          reg.Counter("pacstack_supervise_commits_total", "snapshots durably committed"),
			CommitErrs:       reg.Counter("pacstack_supervise_commit_errors_total", "commit attempts that failed (torn, IO error)"),
			Downtime:         reg.Counter("pacstack_supervise_downtime_cycles_total", "cumulative restart backoff"),
			Events:           events,
		},
		snap: snap.NewTelemetry(reg),
		pool: pool.NewTelemetry(reg),
	}
}

// count classifies one finished request by its typed error — the same
// switch the old stats block had, now incrementing registry counters.
func (m *metrics) count(err error) {
	m.requests.Inc()
	if err == nil {
		m.outcomes.With(outOK).Inc()
		return
	}
	var ce *CorruptionError
	var se *SilentCorruptionError
	var pe *resilience.PanicError
	var bre *BadRequestError
	switch {
	case errors.As(err, &ce):
		m.outcomes.With(outDetected).Inc()
		m.byCause.With(ce.Cause.String()).Inc()
	case errors.As(err, &se):
		m.outcomes.With(outSilent).Inc()
	case errors.As(err, &pe):
		m.outcomes.With(outPanic).Inc()
	case errors.As(err, &bre):
		m.outcomes.With(outBadRequest).Inc()
	case errors.Is(err, resilience.ErrShed):
		m.outcomes.With(outShed).Inc()
	case errors.Is(err, resilience.ErrDraining):
		m.outcomes.With(outDraining).Inc()
	case errors.Is(err, resilience.ErrBreakerOpen):
		m.outcomes.With(outBreakerDenied).Inc()
	case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		m.outcomes.With(outDeadline).Inc()
	default:
		m.outcomes.With(outInternal).Inc()
	}
}

// kernelTel returns (building on first use) the per-scheme kernel/pa
// instrumentation bundle: every handle carries a scheme label, so the
// exposition can answer "auth failures by scheme" directly.
func (s *Server) kernelTel(sc compile.Scheme) *kernel.Telemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if kt, ok := s.ktels[sc]; ok {
		return kt
	}
	reg := s.tel.Registry()
	events := s.tel.Log()
	name := schemeName(sc)
	kc := func(metric, help string) *telemetry.Counter {
		return reg.CounterVec(metric, help, "scheme").With(name)
	}
	kt := &kernel.Telemetry{
		Quanta: kc("pacstack_kernel_quanta_total", "scheduler quanta dispatched"),
		Instrs: kc("pacstack_kernel_instrs_total", "instructions retired"),
		Cancels: kc("pacstack_kernel_cancels_total",
			"runs ended by an expired context (deadline, shutdown)"),
		Kills: reg.CounterVec("pacstack_kernel_kills_total",
			"process kills by class", "scheme", "class").Curry(name),
		Signals:       kc("pacstack_kernel_signals_total", "signal frames delivered"),
		SigframeBinds: kc("pacstack_kernel_sigframe_binds_total", "Appendix B chain bindings recorded"),
		Spawns:        kc("pacstack_kernel_spawns_total", "tasks spawned (chain re-seeds under ACS)"),
		Chain: &pa.Trace{
			PACIssued: kc("pacstack_pa_pac_issued_total", "pac* seals issued"),
			AuthOK:    kc("pacstack_pa_auth_ok_total", "aut* authentications that passed"),
			AuthFail:  kc("pacstack_pa_auth_fail_total", "aut* authentications rejected"),
			Masks:     kc("pacstack_pa_masks_total", "PAC(0, aret) mask derivations"),
			MemoHit:   kc("pacstack_pa_memo_hits_total", "PAC memo-cache hits"),
			MemoMiss:  kc("pacstack_pa_memo_misses_total", "PAC memo-cache misses"),
			Strips:    kc("pacstack_pa_strips_total", "xpac strips"),
			PACGAs:    kc("pacstack_pa_pacga_total", "pacga generic MACs computed"),
			Events:    events,
		},
		Events: events,
	}
	s.ktels[sc] = kt
	return kt
}

// Telemetry returns the server's telemetry set — the config-supplied
// one, or the private set withDefaults created.
func (s *Server) Telemetry() *telemetry.Set { return s.tel }

// causeNames enumerates the fault-cause label values Snapshot rebuilds
// its map from.
func causeNames() []string {
	names := make([]string, fault.NumCauses)
	for c := 0; c < fault.NumCauses; c++ {
		names[c] = fault.Cause(c).String()
	}
	return names
}
