// Deterministic soak: a discrete-event simulation of concurrent
// clients hammering the serving pipeline in virtual time (simulated
// cycles). The trick that reconciles "concurrent traffic" with
// "byte-identical reports" is a two-phase design:
//
//  1. Outcomes are pure functions of request identity. Each (client,
//     request) pair gets a private seed derived from the soak seed, so
//     its kernel keys, chaos draws and classification do not depend on
//     scheduling. Phase one precomputes them all on a real parallel
//     worker pool (internal/par) — this is where wall-clock concurrency
//     lives.
//  2. The traffic dynamics — queueing, shedding, breaker trips, client
//     retry/backoff — replay serially through an event heap keyed
//     (time, seq), driving the *same* clock-free resilience state
//     machines (resilience.Breaker, resilience.Backoff) the daemon
//     uses, just fed virtual time instead of nanoseconds.
//
// Same seed and knobs in, byte-identical SoakReport out, regardless of
// GOMAXPROCS or machine — which is what lets check.sh diff two runs.

package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/rand"

	"pacstack/internal/fault"
	"pacstack/internal/par"
	"pacstack/internal/pool"
	"pacstack/internal/resilience"
	"pacstack/internal/telemetry"
	"pacstack/internal/traffic"
)

// SoakConfig parameterises a soak run. Time-valued knobs are in
// simulated cycles.
type SoakConfig struct {
	// Clients virtual clients each issue Requests requests
	// back-to-back (with think time), retrying on shed/breaker
	// rejections. Defaults 8 and 25.
	Clients  int
	Requests int

	// Workload and Schemes select what runs; requests round-robin
	// across the schemes per client. Defaults: "chain", ["pacstack"].
	Workload string
	Schemes  []string

	// Seed fixes everything; same seed, same report. Default 1.
	Seed int64

	// Chaos injection knobs, as in Config.
	ChaosRate  float64
	ChaosKinds []fault.Kind
	Heal       int

	// Checkpoint knobs, as in Config: CheckpointEvery switches
	// per-request crash-consistent snapshotting on, CheckpointCrash is
	// the seeded probability of a simulated machine death mid-commit
	// (the kill-a-kernel-mid-checkpoint soak dimension).
	CheckpointEvery uint64
	CheckpointCrash float64

	// Server model: Workers simultaneous executions, Queue waiters,
	// everything beyond shed. Defaults 4 and 8.
	Workers int
	Queue   int

	// Retries is the per-request client retry budget for *rejections*
	// (sheds, breaker denials); execution outcomes are terminal.
	// Default 3. BackoffBase/BackoffCap shape the retry delays
	// (defaults 2_000 / 64_000 cycles).
	Retries     int
	BackoffBase uint64
	BackoffCap  uint64

	// BreakerThreshold/BreakerCooldown configure the per-scheme
	// breaker in virtual time (defaults 8 / 50_000 cycles);
	// Threshold < 0 disables it.
	BreakerThreshold int
	BreakerCooldown  uint64

	// Think is the mean inter-request think time per client; Overhead
	// is fixed per-execution service latency added to the victim's
	// simulated cycles. Defaults 1_000 and 500.
	Think    uint64
	Overhead uint64

	// Telemetry, when non-nil, receives the soak's metrics and events,
	// stamped with virtual time (the Set's clocks are retargeted for
	// the duration of the run). The dump after a seeded soak is
	// byte-identical across runs and worker-pool widths: counters are
	// bumped from the parallel precompute phase (integer adds commute),
	// while every event is recorded from the serial virtual-time
	// replay. The gate's double-run cmp rests on this.
	Telemetry *telemetry.Set

	// Traffic switches the soak into open-loop mode: instead of
	// Clients x Requests closed-loop clients, the model generates the
	// arrival stream (diurnal curve, bursts, heavy-tail class mixture,
	// slow clients, poison requests) and the report gains a per-class
	// SLO evaluation. Clients/Requests/Workload/Schemes/Think are
	// ignored in this mode; everything else applies as usual.
	Traffic *traffic.Model

	// Cores models the host's physical parallelism in traffic mode:
	// service time is stretched by ceil(busy/Cores), so growing the
	// worker pool past Cores trades queueing delay for service-time
	// dilation instead of adding free capacity. Default: Workers.
	Cores int

	// BootModel selects how machine acquisition is charged in virtual
	// time. "" (the default) keeps the legacy model — acquisition is
	// free, so every pre-existing gate calibration is untouched.
	// "cold" charges every execution the modeled full-boot cost
	// (pool.ModelCosts: text encoding plus constructing every page);
	// "warm" serves the precompute phase from warm pools (Config.Warm)
	// and charges the modeled snapshot-restore cost (COW page remap).
	// Outcomes are identical across all three models — the pool's
	// Reset consumes the same entropy stream as a cold boot — so the
	// models differ only in virtual-time cost, which is what makes the
	// warm-vs-cold requests/virtual-second ratio a fair measurement.
	BootModel string

	// Adaptive, when non-nil, replaces the static Workers/Queue limits
	// in traffic mode with an AIMD controller that ticks every
	// Interval virtual cycles and resizes the worker limit (queue
	// follows at 2x the limit). The controller's congestion signal is
	// service-time dilation, not end-to-end latency (see traffic.go).
	// Zero fields default to: Start = Workers, Interval = 10_000,
	// LatencyTarget = 1_048_576.
	Adaptive *resilience.AIMDConfig
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Requests <= 0 {
		c.Requests = 25
	}
	if c.Workload == "" {
		c.Workload = "chain"
	}
	if len(c.Schemes) == 0 {
		c.Schemes = []string{"pacstack"}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.ChaosKinds) == 0 {
		c.ChaosKinds = []fault.Kind{fault.KindRetAddr, fault.KindStackSmash, fault.KindSigFrame}
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Queue == 0 {
		c.Queue = 2 * c.Workers
	}
	if c.Queue < 0 {
		c.Queue = 0
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 2_000
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 64_000
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 50_000
	}
	if c.Think == 0 {
		c.Think = 1_000
	}
	if c.Overhead == 0 {
		c.Overhead = 500
	}
	return c
}

// validBootModel rejects anything but the three cost models.
func validBootModel(model string) error {
	switch model {
	case "", "cold", "warm":
		return nil
	}
	return fmt.Errorf("unknown boot model %q (want \"cold\", \"warm\" or empty)", model)
}

// rpvsMilli converts OK terminals over a virtual-cycle span into
// milli-requests per virtual second at the 1 GHz virtual clock.
func rpvsMilli(ok int, cycles uint64) uint64 {
	if cycles == 0 {
		return 0
	}
	return uint64(ok) * 1_000_000_000_000 / cycles
}

// bootCosts resolves the per-scheme machine-acquisition charge for the
// selected boot model against the workload's compiled image: the full
// image-construction cost for "cold", the snapshot-restore cost for
// "warm". A nil map (the legacy model) charges nothing.
func bootCosts(srv *Server, model, workload string, schemes []string) (map[string]uint64, error) {
	if model == "" {
		return nil, nil
	}
	eng, err := srv.engine(workload)
	if err != nil {
		return nil, err
	}
	costs := make(map[string]uint64, len(schemes))
	for _, name := range schemes {
		if _, ok := costs[name]; ok {
			continue
		}
		sc, err := ParseScheme(name)
		if err != nil {
			return nil, err
		}
		img, err := eng.Image(sc)
		if err != nil {
			return nil, err
		}
		cold, warm := pool.ModelCosts(img)
		if model == "cold" {
			costs[name] = cold
		} else {
			costs[name] = warm
		}
	}
	return costs, nil
}

// SchemeCount pairs a scheme name with a counter, kept as a sorted
// slice (not a map) so the report marshals identically every run.
type SchemeCount struct {
	Scheme string `json:"scheme"`
	Count  uint64 `json:"count"`
}

// SoakRow is the per-scheme outcome breakdown.
type SoakRow struct {
	Scheme   string `json:"scheme"`
	Requests int    `json:"requests"`
	OK       int    `json:"ok"`
	Healed   int    `json:"healed"`
	Detected int    `json:"detected"`
	Silent   int    `json:"silent"`
	GaveUp   int    `json:"gave_up"`
}

// SoakReport is the deterministic end-of-run summary. For one seed and
// knob set it is byte-identical across runs and machines.
type SoakReport struct {
	Seed      int64    `json:"seed"`
	Workload  string   `json:"workload"`
	Schemes   []string `json:"schemes"`
	Clients   int      `json:"clients"`
	PerClient int      `json:"requests_per_client"`
	ChaosRate float64  `json:"chaos_rate"`
	Heal      int      `json:"heal"`

	Issued   int `json:"issued"`
	OK       int `json:"ok"`
	Healed   int `json:"healed"`
	Detected int `json:"detected"`
	Silent   int `json:"silent"`
	GaveUp   int `json:"gave_up"`

	ByCause [fault.NumCauses]int `json:"-"`
	// Causes is ByCause in stable, name-keyed, zero-suppressed form.
	Causes []SchemeCount `json:"detected_by_cause,omitempty"`

	Injected int `json:"injected_faults"`
	// Checkpoint traffic across all executed requests: snapshot
	// commits, warm restores, and commits torn by a simulated
	// mid-checkpoint machine death. The soak gate's invariant: torn
	// commits never produce a silent outcome.
	Checkpoints   int           `json:"checkpoints,omitempty"`
	Restores      int           `json:"restores,omitempty"`
	TornCommits   int           `json:"torn_commits,omitempty"`
	Retries       int           `json:"retries"`
	Sheds         int           `json:"sheds"`
	BreakerDenied int           `json:"breaker_denied"`
	BreakerOpens  []SchemeCount `json:"breaker_opens,omitempty"`

	PerScheme []SoakRow `json:"per_scheme"`

	VirtualCycles uint64 `json:"virtual_cycles"`
	InFlightAtEnd int    `json:"in_flight_at_end"`

	// BootModel records the machine-acquisition cost model ("" legacy,
	// "cold", "warm"); RPVSMilli is the delivered goodput in
	// milli-requests per virtual second: OK terminals over the run's
	// virtual cycles at the 1 GHz virtual clock. The warm-vs-cold gate
	// is a ratio of this number at the same seed.
	BootModel string `json:"boot_model,omitempty"`
	RPVSMilli uint64 `json:"rpvs_milli"`

	// Warm-model pool traffic, read from the pool counters after the
	// precompute phase: restores served, leases refused by a capped
	// pool, and §4.3 image-key probe violations (must be zero).
	PoolRestores      uint64 `json:"pool_restores,omitempty"`
	PoolColdFallbacks uint64 `json:"pool_cold_fallbacks,omitempty"`
	PoolKeyViolations uint64 `json:"pool_key_violations,omitempty"`

	// Traffic marks an open-loop run; SLO is its per-class evaluation
	// (nil for closed-loop runs).
	Traffic bool               `json:"traffic,omitempty"`
	SLO     *traffic.SLOReport `json:"slo,omitempty"`
}

// Graceful reports whether the run ended cleanly: every issued request
// reached a terminal state and nothing was left in flight. The
// accounting identity OK+Detected+Silent+GaveUp == Issued is the "no
// request lost" check.
func (r *SoakReport) Graceful() bool {
	return r.InFlightAtEnd == 0 && r.OK+r.Detected+r.Silent+r.GaveUp == r.Issued
}

// soakOutcome is one precomputed request execution result.
type soakOutcome struct {
	class       int // 0 ok, 1 detected, 2 silent
	cause       fault.Cause
	cycles      uint64
	healed      bool
	injected    int
	checkpoints int
	restores    int
	torn        int
}

const (
	classOK = iota
	classDetected
	classSilent
)

// event kinds for the virtual-time replay.
const (
	evIssue = iota // client (re)submits a request
	evDone         // a worker finishes an execution
	evTick         // the adaptive controller's window boundary (traffic mode)
)

type event struct {
	at      uint64
	seq     int // tiebreak: FIFO among simultaneous events
	kind    int
	client  int
	req     int // request index within the client
	attempt int // submission attempt (evIssue only)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Soak runs the simulation. ctx bounds the (parallel) precompute
// phase; the serial replay is fast and not cancellable.
func Soak(ctx context.Context, cfg SoakConfig) (*SoakReport, error) {
	cfg = cfg.withDefaults()

	if cfg.Traffic != nil {
		return soakTraffic(ctx, cfg)
	}

	for _, name := range cfg.Schemes {
		if _, err := ParseScheme(name); err != nil {
			return nil, err
		}
	}
	if err := validBootModel(cfg.BootModel); err != nil {
		return nil, err
	}

	// Virtual-time telemetry: the Set's clocks read the replay's `now`
	// for the whole run, so every stamp in the dump is simulated
	// cycles. The variable is written only by the serial phase 2;
	// phase 1 records no events and counter values carry no times.
	vnow := uint64(0)
	if cfg.Telemetry != nil {
		vclock := func() uint64 { return vnow }
		cfg.Telemetry.Registry().SetClock(vclock)
		cfg.Telemetry.Log().SetClock(vclock)
	}

	// The executing server: admission is irrelevant here (the DES
	// models queueing itself), so requests go straight to execute via
	// Do-with-wide-limits. Breakers are disabled on this inner server;
	// the DES drives its own virtual-time breaker. It shares the
	// caller's metrics registry but gets NO event log: phase 1 runs
	// requests on a parallel pool, and only commutative counter adds
	// stay deterministic there — events are recorded exclusively from
	// the serial replay below.
	innerReg := cfg.Telemetry.Registry()
	if innerReg == nil && cfg.BootModel == "warm" {
		// The report's pool counters come from the inner server's
		// registry; give it a private one when the caller brought no
		// telemetry sink.
		innerReg = telemetry.NewRegistry()
	}
	srv := New(Config{
		Workers:          cfg.Clients + 1, // never shed in the precompute phase
		Queue:            cfg.Clients * cfg.Requests,
		Seed:             cfg.Seed,
		Chaos:            cfg.ChaosRate > 0,
		ChaosRate:        cfg.ChaosRate,
		ChaosKinds:       cfg.ChaosKinds,
		Heal:             cfg.Heal,
		CheckpointEvery:  cfg.CheckpointEvery,
		CheckpointCrash:  cfg.CheckpointCrash,
		BreakerThreshold: -1,
		Warm:             cfg.BootModel == "warm",
		Telemetry:        &telemetry.Set{Reg: innerReg},
	})
	if _, err := srv.engine(cfg.Workload); err != nil {
		return nil, err
	}
	bootCost, err := bootCosts(srv, cfg.BootModel, cfg.Workload, cfg.Schemes)
	if err != nil {
		return nil, err
	}

	// Phase 1: precompute every request's execution outcome in
	// parallel. Request identity (client, req) fixes the seed, so the
	// pool's scheduling cannot leak into the results.
	total := cfg.Clients * cfg.Requests
	outcomes := make([]soakOutcome, total)
	err = par.ForEachCtx(ctx, total, func(id int) error {
		client, reqIdx := id/cfg.Requests, id%cfg.Requests
		schemeName := cfg.Schemes[reqIdx%len(cfg.Schemes)]
		reqSeed := mix(int64(client)+0x5f, int64(reqIdx)+1)
		if reqSeed == 0 {
			reqSeed = 1 // zero means "server picks"; keep identity-addressed
		}
		req := Request{
			Workload: cfg.Workload,
			Scheme:   schemeName,
			Seed:     reqSeed,
		}
		res, err := srv.Do(context.Background(), req)
		switch {
		case err == nil:
			outcomes[id] = soakOutcome{
				class: classOK, cycles: res.Cycles,
				healed: res.Healed, injected: res.Injected,
				checkpoints: res.Checkpoints, restores: res.Restores, torn: res.TornCommits,
			}
		default:
			var ce *CorruptionError
			var se *SilentCorruptionError
			switch {
			case errors.As(err, &ce):
				outcomes[id] = soakOutcome{
					class: classDetected, cause: ce.Cause,
					cycles: ce.Cycles, injected: ce.Injected,
				}
			case errors.As(err, &se):
				outcomes[id] = soakOutcome{class: classSilent, cycles: se.Cycles}
			default:
				return fmt.Errorf("soak precompute (client %d, request %d): %w", client, reqIdx, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: serial virtual-time replay of the traffic dynamics.
	rep := &SoakReport{
		Seed: cfg.Seed, Workload: cfg.Workload, Schemes: cfg.Schemes,
		Clients: cfg.Clients, PerClient: cfg.Requests,
		ChaosRate: cfg.ChaosRate, Heal: cfg.Heal,
	}

	// Soak-level handles; all nil (and so no-ops) without a Set.
	reg := cfg.Telemetry.Registry()
	tlog := cfg.Telemetry.Log()
	soakSheds := reg.Counter("pacstack_soak_sheds_total", "DES arrivals shed (queue full)")
	soakRetries := reg.Counter("pacstack_soak_retries_total", "client retries after a rejection")
	soakDenied := reg.Counter("pacstack_soak_breaker_denied_total", "DES arrivals denied by an open breaker")
	soakGaveUp := reg.Counter("pacstack_soak_gave_up_total", "requests abandoned after the retry budget")
	transitionsVec := reg.CounterVec("pacstack_resilience_breaker_transitions_total",
		"circuit-breaker state changes", "scheme", "to")

	var breakers map[string]*resilience.Breaker
	if cfg.BreakerThreshold > 0 {
		breakers = make(map[string]*resilience.Breaker, len(cfg.Schemes))
		for _, name := range cfg.Schemes {
			if _, ok := breakers[name]; !ok {
				scheme := name
				transitions := transitionsVec.Curry(scheme)
				breakers[name] = resilience.NewBreaker(resilience.BreakerConfig{
					Threshold: cfg.BreakerThreshold,
					Cooldown:  cfg.BreakerCooldown,
					OnTransition: func(at uint64, from, to resilience.BreakerState) {
						transitions.With(to.String()).Inc()
						tlog.Record(telemetry.EvBreaker, scheme, from.String()+"->"+to.String(), at)
					},
				})
			}
		}
	}
	backoffs := make([]*resilience.Backoff, cfg.Clients)
	thinks := make([]*rand.Rand, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		backoffs[c] = resilience.NewBackoff(cfg.BackoffBase, cfg.BackoffCap, mix(cfg.Seed, int64(c)+0x1001))
		thinks[c] = rand.New(rand.NewSource(mix(cfg.Seed, int64(c)+0x2002)))
	}
	think := func(c int) uint64 {
		// uniform in [Think/2, Think], per-client stream
		half := cfg.Think / 2
		return half + uint64(thinks[c].Int63n(int64(cfg.Think-half+1)))
	}

	rows := make(map[string]*SoakRow, len(cfg.Schemes))
	rowOrder := []string{}
	row := func(name string) *SoakRow {
		r, ok := rows[name]
		if !ok {
			r = &SoakRow{Scheme: name}
			rows[name] = r
			rowOrder = append(rowOrder, name)
		}
		return r
	}
	schemeOf := func(reqIdx int) string { return cfg.Schemes[reqIdx%len(cfg.Schemes)] }

	h := &eventHeap{}
	seq := 0
	push := func(at uint64, kind, client, req, attempt int) {
		heap.Push(h, event{at: at, seq: seq, kind: kind, client: client, req: req, attempt: attempt})
		seq++
	}

	busy := 0
	type queued struct {
		client, req int
	}
	var fifo []queued
	now := uint64(0)

	// start: every client issues its first request after one think.
	for c := 0; c < cfg.Clients; c++ {
		push(think(c), evIssue, c, 0, 0)
	}

	outcomeOf := func(client, req int) soakOutcome { return outcomes[client*cfg.Requests+req] }

	startService := func(client, req int) {
		busy++
		o := outcomeOf(client, req)
		push(now+cfg.Overhead+bootCost[schemeOf(req)]+o.cycles, evDone, client, req, 0)
	}
	nextRequest := func(client, req int) {
		if req+1 < cfg.Requests {
			push(now+think(client), evIssue, client, req+1, 0)
		}
	}
	var terminal func(client, req int)
	retryOrGiveUp := func(client, req, attempt int) {
		if attempt >= cfg.Retries {
			rep.GaveUp++
			soakGaveUp.Inc()
			row(schemeOf(req)).GaveUp++
			row(schemeOf(req)).Requests++
			terminal(client, req)
			return
		}
		rep.Retries++
		soakRetries.Inc()
		tlog.Record(telemetry.EvRetry, schemeOf(req), "", uint64(attempt+1))
		push(now+backoffs[client].Delay(attempt), evIssue, client, req, attempt+1)
	}
	terminal = func(client, req int) { nextRequest(client, req) }

	for h.Len() > 0 {
		e := heap.Pop(h).(event)
		now = e.at
		vnow = now
		switch e.kind {
		case evIssue:
			name := schemeOf(e.req)
			if br := breakers[name]; br != nil && !br.Allow(now) {
				rep.BreakerDenied++
				soakDenied.Inc()
				retryOrGiveUp(e.client, e.req, e.attempt)
				continue
			}
			if busy < cfg.Workers {
				startService(e.client, e.req)
			} else if len(fifo) < cfg.Queue {
				fifo = append(fifo, queued{e.client, e.req})
			} else {
				rep.Sheds++
				soakSheds.Inc()
				tlog.Record(telemetry.EvShed, name, "queue full", now)
				retryOrGiveUp(e.client, e.req, e.attempt)
			}
		case evDone:
			busy--
			o := outcomeOf(e.client, e.req)
			name := schemeOf(e.req)
			r := row(name)
			r.Requests++
			rep.Injected += o.injected
			rep.Checkpoints += o.checkpoints
			rep.Restores += o.restores
			rep.TornCommits += o.torn
			switch o.class {
			case classOK:
				rep.OK++
				r.OK++
				if o.healed {
					rep.Healed++
					r.Healed++
				}
				tlog.Record(telemetry.EvRequestDone, name, "ok", o.cycles)
			case classDetected:
				rep.Detected++
				rep.ByCause[o.cause]++
				r.Detected++
				tlog.Record(telemetry.EvRequestDone, name, "detected:"+o.cause.String(), o.cycles)
			case classSilent:
				rep.Silent++
				r.Silent++
				tlog.Record(telemetry.EvRequestDone, name, "silent", o.cycles)
			}
			if br := breakers[name]; br != nil {
				br.Record(now, o.class == classOK)
			}
			if len(fifo) > 0 {
				q := fifo[0]
				fifo = fifo[1:]
				startService(q.client, q.req)
			}
			terminal(e.client, e.req)
		}
	}

	// Every request reaches exactly one terminal state (done or gave
	// up) before its client moves on, so the issued total is exact.
	rep.Issued = cfg.Clients * cfg.Requests

	rep.VirtualCycles = now
	vnow = now // final stamp for the post-run telemetry dump
	rep.InFlightAtEnd = busy + len(fifo)
	rep.BootModel = cfg.BootModel
	rep.RPVSMilli = rpvsMilli(rep.OK, rep.VirtualCycles)
	if cfg.BootModel == "warm" {
		rep.PoolRestores, rep.PoolColdFallbacks, rep.PoolKeyViolations, _ = srv.PoolStats()
	}
	for c := 0; c < fault.NumCauses; c++ {
		if rep.ByCause[c] > 0 {
			rep.Causes = append(rep.Causes, SchemeCount{Scheme: fault.Cause(c).String(), Count: uint64(rep.ByCause[c])})
		}
	}
	if breakers != nil {
		for _, name := range cfg.Schemes {
			br := breakers[name]
			if br == nil {
				continue
			}
			if n := br.Opens(); n > 0 {
				rep.BreakerOpens = append(rep.BreakerOpens, SchemeCount{Scheme: name, Count: n})
			}
			delete(breakers, name) // cfg.Schemes may repeat a name
		}
	}
	for _, name := range rowOrder {
		rep.PerScheme = append(rep.PerScheme, *rows[name])
	}
	return rep, nil
}
