package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestDoWithCheckpointing: a clean request under checkpointing
// commits snapshots and still returns the golden answer.
func TestDoWithCheckpointing(t *testing.T) {
	srv := New(Config{Workers: 1, Seed: 3, CheckpointEvery: 400})
	res, err := srv.Do(context.Background(), Request{Workload: "chain", Scheme: "pacstack", Seed: 11})
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	if res.Checkpoints == 0 {
		t.Errorf("checkpoints = 0, want periodic commits (instrs %d)", res.Instrs)
	}
	if res.TornCommits != 0 || res.Restores != 0 {
		t.Errorf("clean request saw torn=%d restores=%d", res.TornCommits, res.Restores)
	}
	st := srv.Stats()
	if st.Checkpoints == 0 {
		t.Errorf("stats checkpoints = 0")
	}
}

// TestDoSurvivesMidCheckpointCrash: with the torn-crash probability
// at 1 every request's storage dies partway through a commit; with a
// heal budget the supervisor warm-restores and the answer must still
// be golden, never silent.
func TestDoSurvivesMidCheckpointCrash(t *testing.T) {
	srv := New(Config{
		Workers:         1,
		Seed:            3,
		Heal:            3,
		CheckpointEvery: 300,
		CheckpointCrash: 1.0,
	})
	// A spread of seeds: crash budgets land at different protocol
	// offsets. Every outcome must be a golden answer (possibly healed)
	// — a torn snapshot must never change what the client sees.
	sawTorn, sawRestore := false, false
	for seed := int64(1); seed <= 12; seed++ {
		res, err := srv.Do(context.Background(), Request{Workload: "chain", Scheme: "pacstack", Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.TornCommits > 0 {
			sawTorn = true
		}
		if res.Restores > 0 {
			sawRestore = true
		}
	}
	if !sawTorn || !sawRestore {
		t.Errorf("torn=%v restore=%v: the crash dimension never fired; widen the seed range", sawTorn, sawRestore)
	}
}

// TestSoakKillMidCheckpoint is the tentpole's soak coverage: chaos
// faults AND mid-checkpoint machine deaths under virtual time, with
// the usual gates — graceful accounting, zero silent corruptions —
// plus the new one: torn commits happened and none leaked.
func TestSoakKillMidCheckpoint(t *testing.T) {
	cfg := soakConfigForTest()
	cfg.Heal = 2
	cfg.CheckpointEvery = 300
	cfg.CheckpointCrash = 0.5
	rep, err := Soak(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Graceful() {
		t.Fatalf("soak not graceful: %+v", rep)
	}
	if rep.Silent != 0 {
		t.Errorf("silent corruptions = %d, want 0", rep.Silent)
	}
	if rep.Checkpoints == 0 {
		t.Errorf("no checkpoints committed")
	}
	if rep.TornCommits == 0 {
		t.Errorf("no torn commits at 50%% crash probability")
	}
}

// TestSoakCheckpointDeterministic: the checkpoint/crash dimension
// must not cost the soak its byte-identity.
func TestSoakCheckpointDeterministic(t *testing.T) {
	cfg := soakConfigForTest()
	cfg.Heal = 2
	cfg.CheckpointEvery = 300
	cfg.CheckpointCrash = 0.5
	r1, err := Soak(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Soak(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.MarshalIndent(r1, "", "  ")
	j2, _ := json.MarshalIndent(r2, "", "  ")
	if !bytes.Equal(j1, j2) {
		t.Fatalf("checkpointed soak reports diverged:\n%s\n---\n%s", j1, j2)
	}
}
