// Package serve is the resilient serving layer: a long-running front
// end that executes sandboxed PACStack workloads per request on a pool
// of supervised simulated kernels, and degrades gracefully instead of
// dying — overload is shed (429), unhealthy backends are circuit-
// broken (503), deadlines cancel mid-run (504), panics are isolated
// per request, and shutdown drains in-flight work before exiting.
//
// Its reason to exist is the paper's operational claim: PACStack's
// chain-integrity guarantees are about detection *at runtime, under
// adversarial conditions*. The serving layer puts that to work — chaos
// mode wires the internal/fault injection engine into live traffic at
// a seeded rate, so a corrupted return address inside a request's
// victim process surfaces as a typed 5xx with the kernel's post-mortem
// attached, never as daemon death and (for PACStack) never as a
// silently wrong response. Every request runs in its own simulated
// address space under its own supervisor (internal/supervise), so a
// detected kill costs exactly one request.
//
// The package has three faces: Server.Do (the execution core),
// Server.Handler (the HTTP/JSON surface used by cmd/pacstack-serve),
// and Soak (a deterministic virtual-time load generator used by
// cmd/pacstack-soak and the repository gate).
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pacstack/internal/compile"
	"pacstack/internal/cpu"
	"pacstack/internal/fault"
	"pacstack/internal/ir"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
	"pacstack/internal/par"
	"pacstack/internal/pool"
	"pacstack/internal/resilience"
	"pacstack/internal/snap"
	"pacstack/internal/supervise"
	"pacstack/internal/telemetry"
	"pacstack/internal/workload"
)

// Config parameterises a Server.
type Config struct {
	// Workers is the kernel-pool width: how many requests execute
	// simultaneously. Queue is how many more may wait; beyond that
	// arrivals are shed. Defaults: 4 and 2*Workers.
	Workers int
	Queue   int

	// Seed fixes the server's entropy: per-request kernel seeds and
	// chaos draws derive from it, so a seeded server is replayable.
	// Default 1.
	Seed int64

	// Chaos switches live fault injection on; ChaosRate is the
	// per-attempt injection probability (default 0.1 when Chaos is
	// set); ChaosKinds is the campaign mix (default: return-address
	// overwrite, stack smash, signal-frame tamper — the corruptions
	// the paper's schemes claim to catch; bit flips and register
	// corruption hit non-control data PACStack does not cover).
	Chaos      bool
	ChaosRate  float64
	ChaosKinds []fault.Kind

	// Heal is the supervised respawn budget after a detected kill:
	// 0 (the default) surfaces every detection as a typed error;
	// N > 0 lets the supervisor re-exec the victim (fresh PA keys,
	// Section 4.3) up to N times before giving up.
	Heal int

	// Budget is the per-attempt instruction watchdog; 0 derives it
	// from the scheme's golden run (4x its length).
	Budget uint64

	// CheckpointEvery, when non-zero, gives every request a
	// crash-consistent snapshot store (internal/snap): its victim
	// commits a checkpoint each time that many instructions retire,
	// and supervised respawns warm-restore the newest valid snapshot
	// instead of starting over. The store lives and dies with the
	// request, so requests stay independent and replayable.
	CheckpointEvery uint64
	// CheckpointCrash is the per-request probability (checkpointing
	// only) of the chaos dimension torn writes add: the simulated
	// machine dies partway through a snapshot commit, at a
	// seeded byte offset of the storage protocol. The supervisor must
	// heal the disk, classify the debris and warm-restore — with
	// Heal > 0 the request still succeeds.
	CheckpointCrash float64

	// Timeout is the per-request wall-clock deadline applied by the
	// HTTP layer; 0 means none.
	Timeout time.Duration

	// Warm switches on warm-pool serving (internal/pool): per
	// (workload, scheme) the server checkpoints one hardened, booted
	// machine image at first use and serves each request by restoring
	// a pooled machine from it — fresh PA keys and canary per restore
	// (PACStack §4.3) — instead of cold-booting a kernel per request.
	// Outcomes are bit-identical to cold serving (the pool's Reset
	// consumes the same entropy stream as a cold boot); only the
	// machine-acquisition cost changes. The daemon defaults warm with
	// a -cold escape hatch; the virtual-time soak selects it through
	// SoakConfig.BootModel.
	Warm bool
	// PoolMachines caps each warm pool's machine count; 0 grows pools
	// on demand (a lease never fails). When a capped pool is
	// exhausted, the request cold-boots and
	// pacstack_pool_cold_fallback_total counts it.
	PoolMachines int

	// Telemetry receives the server's metrics and security events. Nil
	// gets a private always-on Set, so Stats() works regardless; pass a
	// shared Set to expose the same registry on /metrics or to merge
	// several components into one exposition.
	Telemetry *telemetry.Set

	// BreakerThreshold consecutive backend failures open a scheme's
	// circuit breaker for BreakerCooldown (wall-clock nanoseconds).
	// Threshold < 0 disables breakers; 0 means the default 8.
	BreakerThreshold int
	BreakerCooldown  uint64

	// Programs adds extra named workloads beyond the built-in catalog
	// (the fault-campaign chain program and the SPEC-shaped suite).
	Programs map[string]*ir.Program
}

// withDefaults fills the zero values in.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Queue == 0 {
		c.Queue = 2 * c.Workers
	}
	if c.Queue < 0 {
		c.Queue = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Chaos && c.ChaosRate == 0 {
		c.ChaosRate = 0.1
	}
	if len(c.ChaosKinds) == 0 {
		c.ChaosKinds = []fault.Kind{fault.KindRetAddr, fault.KindStackSmash, fault.KindSigFrame}
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = uint64(100 * time.Millisecond)
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.New(telemetry.Options{})
	}
	return c
}

// Request is one unit of work: run the named workload under the named
// scheme. Seed, when non-zero, makes the request fully deterministic
// (kernel keys, canary, chaos draws); zero lets the server assign one
// from its own stream.
type Request struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Seed     int64  `json:"seed,omitempty"`
}

// Result is a successful execution.
type Result struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Output   string `json:"output"`
	ExitCode uint64 `json:"exit_code"`
	Instrs   uint64 `json:"instrs"`
	Cycles   uint64 `json:"cycles"`
	// Attempts is how many victim incarnations ran; Healed marks a
	// request that crashed and was transparently re-executed on a
	// fresh-keyed kernel (Heal > 0).
	Attempts int  `json:"attempts"`
	Healed   bool `json:"healed,omitempty"`
	// Injected counts chaos faults armed across the attempts.
	Injected int `json:"injected_faults,omitempty"`
	// Checkpoints / Restores / TornCommits are the request's
	// snapshot-store traffic: commits that landed, respawns that
	// warm-restored, and commits a simulated storage crash tore.
	Checkpoints int `json:"checkpoints,omitempty"`
	Restores    int `json:"restores,omitempty"`
	TornCommits int `json:"torn_commits,omitempty"`
}

// BadRequestError reports an unparseable request (unknown workload or
// scheme); the HTTP layer maps it to 400.
type BadRequestError struct{ Reason string }

func (e *BadRequestError) Error() string { return "serve: bad request: " + e.Reason }

// CorruptionError reports a *detected* corruption: the victim was
// killed with a typed cause and the supervisor's restart budget (if
// any) ran out. This is the scheme working as designed — the HTTP
// layer maps it to 502 with the kernel post-mortem attached.
type CorruptionError struct {
	Cause    fault.Cause
	Kill     *kernel.KillInfo
	Attempts int
	Injected int
	Cycles   uint64
}

func (e *CorruptionError) Error() string {
	if e.Kill != nil {
		return fmt.Sprintf("serve: detected corruption (%s) after %d attempt(s): %s", e.Cause, e.Attempts, e.Kill)
	}
	return fmt.Sprintf("serve: detected corruption (%s) after %d attempt(s)", e.Cause, e.Attempts)
}

// SilentCorruptionError reports the outcome the paper drives toward
// zero: the victim terminated without any kill but produced output
// diverging from the golden run. The server refuses to return the
// wrong answer (500), and the soak gate fails the build if a PACStack
// backend ever produces one under chaos.
type SilentCorruptionError struct {
	Output   string
	Want     string
	ExitCode uint64
	WantExit uint64
	Cycles   uint64
}

func (e *SilentCorruptionError) Error() string {
	return fmt.Sprintf("serve: silent corruption: output %q (exit %d), golden %q (exit %d)",
		e.Output, e.ExitCode, e.Want, e.WantExit)
}

// ErrDeadline reports that the request's deadline expired mid-run; the
// victim was abandoned, not killed. Mapped to 504.
var ErrDeadline = errors.New("serve: request deadline exceeded")

// Server is the serving core. All methods are safe for concurrent use.
type Server struct {
	cfg Config
	now func() uint64 // wall clock in ns; replaceable for tests

	adm *resilience.Admission

	mu       sync.Mutex
	engines  map[string]*fault.Engine
	breakers map[compile.Scheme]*resilience.Breaker
	ktels    map[compile.Scheme]*kernel.Telemetry
	pools    map[string]*pool.Pool // warm pools by workload+"/"+scheme

	seq atomic.Int64
	tel *telemetry.Set
	m   metrics
}

// New returns a server for the configuration (zero values filled with
// defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		now:      func() uint64 { return uint64(time.Now().UnixNano()) },
		adm:      resilience.NewAdmission(cfg.Workers, cfg.Queue),
		engines:  make(map[string]*fault.Engine),
		breakers: make(map[compile.Scheme]*resilience.Breaker),
		ktels:    make(map[compile.Scheme]*kernel.Telemetry),
		pools:    make(map[string]*pool.Pool),
		tel:      cfg.Telemetry,
		m:        newMetrics(cfg.Telemetry.Registry(), cfg.Telemetry.Log()),
	}
}

// Config returns the server's effective (default-filled) config.
func (s *Server) Config() Config { return s.cfg }

// schemeNames maps request spellings to schemes, the same names
// cmd/pacstack-fault uses.
var schemeNames = map[string]compile.Scheme{
	"baseline":        compile.SchemeNone,
	"canary":          compile.SchemeCanary,
	"branchprot":      compile.SchemeBranchProtection,
	"shadowstack":     compile.SchemeShadowStack,
	"pacstack-nomask": compile.SchemePACStackNoMask,
	"pacstack":        compile.SchemePACStack,
	"staticcfi":       compile.SchemeStaticCFI,
}

// schemeName is the wire spelling of a scheme — the inverse of
// ParseScheme, used in results and stats keys so clients see the same
// names they send.
func schemeName(s compile.Scheme) string {
	for name, sc := range schemeNames {
		if sc == s {
			return name
		}
	}
	return s.String()
}

// ParseScheme resolves a request scheme name ("" means pacstack).
func ParseScheme(name string) (compile.Scheme, error) {
	if name == "" {
		return compile.SchemePACStack, nil
	}
	s, ok := schemeNames[name]
	if !ok {
		return 0, &BadRequestError{Reason: fmt.Sprintf("unknown scheme %q", name)}
	}
	return s, nil
}

// kindNames maps flag spellings to chaos campaign kinds, matching
// cmd/pacstack-fault's -kind flag.
var kindNames = map[string]fault.Kind{
	"bitflip":  fault.KindBitFlip,
	"retaddr":  fault.KindRetAddr,
	"smash":    fault.KindStackSmash,
	"register": fault.KindRegister,
	"sigframe": fault.KindSigFrame,
}

// ParseKinds resolves a comma-separated chaos-kind list ("" means the
// default mix).
func ParseKinds(list string) ([]fault.Kind, error) {
	if list == "" {
		return nil, nil
	}
	var kinds []fault.Kind
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		k, ok := kindNames[name]
		if !ok {
			return nil, &BadRequestError{Reason: fmt.Sprintf("unknown chaos kind %q", name)}
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// engine returns (building on first use) the fault engine for the
// named workload. The engine caches compiled images and golden runs
// per scheme, so steady-state requests only boot and run.
func (s *Server) engine(name string) (*fault.Engine, error) {
	if name == "" {
		name = "chain"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.engines[name]; ok {
		return e, nil
	}
	prog, err := s.program(name)
	if err != nil {
		return nil, err
	}
	e := fault.NewEngine(prog)
	s.engines[name] = e
	return e, nil
}

// program resolves a workload name: config-supplied programs first,
// then the built-in catalog ("chain" plus the SPEC-shaped suite).
func (s *Server) program(name string) (*ir.Program, error) {
	return ResolveProgram(name, s.cfg.Programs)
}

// ResolveProgram resolves a workload name against extra named programs
// (checked first; may be nil) and then the built-in catalog — "" or
// "chain" is the fault-campaign chain program, "nginx" the simulated
// per-connection TLS handshake, the rest is the SPEC-shaped suite.
// The cluster layer resolves through here so every tier accepts
// exactly the same workload names.
func ResolveProgram(name string, extra map[string]*ir.Program) (*ir.Program, error) {
	if p, ok := extra[name]; ok {
		return p, nil
	}
	if name == "" || name == "chain" {
		return fault.DefaultProgram(), nil
	}
	if name == "nginx" {
		return workload.NginxProgram(), nil
	}
	cm := cpu.DefaultCostModel()
	for _, b := range workload.SPEC {
		if b.Name == name {
			return b.Program(cm), nil
		}
	}
	return nil, &BadRequestError{Reason: fmt.Sprintf("unknown workload %q", name)}
}

// Workloads lists the names the server accepts, sorted.
func (s *Server) Workloads() []string {
	names := []string{"chain", "nginx"}
	for _, b := range workload.SPEC {
		names = append(names, b.Name)
	}
	for n := range s.cfg.Programs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// breaker returns the scheme's circuit breaker, or nil when disabled.
func (s *Server) breaker(sc compile.Scheme) *resilience.Breaker {
	if s.cfg.BreakerThreshold < 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.breakers[sc]
	if !ok {
		name := schemeName(sc)
		transitions := s.m.breakerTransitions.Curry(name)
		events := s.tel.Log()
		b = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: s.cfg.BreakerThreshold,
			Cooldown:  s.cfg.BreakerCooldown,
			OnTransition: func(now uint64, from, to resilience.BreakerState) {
				transitions.With(to.String()).Inc()
				events.Record(telemetry.EvBreaker, name, from.String()+"->"+to.String(), now)
			},
		})
		s.breakers[sc] = b
	}
	return b
}

// mix folds two seeds into one rng seed (splitmix64 finalizer).
func mix(a, b int64) int64 {
	z := uint64(a)*0x9e3779b97f4a7c15 + uint64(b)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// requestRNG derives the request's private rng. Explicit request
// seeds make outcomes identity-addressed (the soak depends on this);
// seedless requests draw from the server sequence.
func (s *Server) requestRNG(req Request) *rand.Rand {
	seed := req.Seed
	if seed == 0 {
		seed = s.seq.Add(1)
	}
	return rand.New(rand.NewSource(mix(s.cfg.Seed, seed)))
}

// Do executes one request through the full resilience pipeline:
// circuit breaker, bounded admission, panic isolation, supervised
// execution with optional chaos injection, classification against the
// golden run. The error is one of the typed errors of this package or
// of internal/resilience.
func (s *Server) Do(ctx context.Context, req Request) (*Result, error) {
	eng, err := s.engine(req.Workload)
	if err != nil {
		s.m.count(err)
		return nil, err
	}
	scheme, err := ParseScheme(req.Scheme)
	if err != nil {
		s.m.count(err)
		return nil, err
	}

	br := s.breaker(scheme)
	if br != nil && !br.Allow(s.now()) {
		err := fmt.Errorf("%w (backend %s)", resilience.ErrBreakerOpen, schemeName(scheme))
		s.m.count(err)
		s.tel.Log().Record(telemetry.EvShed, schemeName(scheme), "breaker open", s.now())
		return nil, err
	}
	if err := s.adm.Acquire(ctx); err != nil {
		s.m.count(err)
		if errors.Is(err, resilience.ErrShed) {
			s.tel.Log().Record(telemetry.EvShed, schemeName(scheme), "queue full", s.now())
		}
		return nil, err
	}
	defer s.adm.Release()

	var res *Result
	rng := s.requestRNG(req)
	runErr := resilience.Protect(func() error {
		var err error
		res, err = s.execute(ctx, eng, scheme, req.Workload, rng)
		return err
	})
	if br != nil {
		br.Record(s.now(), BackendHealthy(runErr))
	}
	s.m.count(runErr)
	if runErr == nil && res != nil && res.Healed {
		s.m.healed.Inc()
	}
	return res, runErr
}

// BackendHealthy reports whether the outcome should count as backend
// health for the circuit breaker: detections, silent divergence,
// panics and deadline blowouts are backend failures; admission-level
// rejections are routing verdicts, not backend health. Exported so the
// cluster router can feed its per-backend breakers the same health
// definition the per-scheme breakers use.
func BackendHealthy(err error) bool {
	if err == nil {
		return true
	}
	var ce *CorruptionError
	var se *SilentCorruptionError
	var pe *resilience.PanicError
	return !(errors.As(err, &ce) || errors.As(err, &se) || errors.As(err, &pe) ||
		errors.Is(err, ErrDeadline))
}

// execute runs the victim under a supervisor, arming chaos faults per
// attempt, and classifies the outcome.
func (s *Server) execute(ctx context.Context, eng *fault.Engine, scheme compile.Scheme, workloadName string, rng *rand.Rand) (*Result, error) {
	img, err := eng.Image(scheme)
	if err != nil {
		return nil, err
	}
	goldenOut, goldenExit, goldenInstrs, err := eng.Golden(scheme)
	if err != nil {
		return nil, err
	}
	budget := s.cfg.Budget
	if budget == 0 {
		budget = 4*goldenInstrs + 10_000
	}

	// Warm path: lease a pooled machine and boot every attempt by
	// snapshot restore (fresh keys + canary per Reset, §4.3). The
	// pool's Reset consumes the identical entropy stream as a cold
	// boot, so the request outcome is the same either way — a capped
	// pool falling back to a cold boot below can only change cost,
	// never results.
	var k *kernel.Kernel
	var bootHook func() (*kernel.Process, error)
	if s.cfg.Warm {
		pl, perr := s.pool(workloadName, scheme)
		if perr != nil {
			return nil, perr
		}
		if m := pl.Get(); m != nil {
			defer pl.Put(m)
			k = m.K
			machine := m
			bootHook = func() (*kernel.Process, error) { return pl.Reset(machine) }
		}
	}
	if k == nil {
		k = kernel.New(pa.DefaultConfig())
	}
	k.Seed(rng.Int63())
	k.SetTelemetry(s.kernelTel(scheme))
	sup := supervise.New(img, k, supervise.Policy{
		Respawn:     supervise.RespawnExec, // fresh PA keys per incarnation (Section 4.3)
		MaxRestarts: s.cfg.Heal,
		Budget:      budget,
	})
	sup.Tel = s.m.sup
	sup.Boot = bootHook
	sup.Configure = func(p *kernel.Process) { fault.Harden(scheme, p) }

	// Per-request snapshot store. The torn-crash decision and its byte
	// budget are drawn here, before any attempt runs, so the request
	// outcome is a pure function of its seed regardless of attempt
	// count — the soak's determinism depends on that.
	var storeFS *snap.MemFS
	crashFrac := -1.0
	if s.cfg.CheckpointEvery > 0 {
		storeFS = snap.NewMemFS()
		sup.Snapshots = snap.NewStore(storeFS)
		sup.Snapshots.Tel = s.m.snap
		sup.CheckpointEvery = s.cfg.CheckpointEvery
		if s.cfg.CheckpointCrash > 0 && rng.Float64() < s.cfg.CheckpointCrash {
			crashFrac = rng.Float64()
		}
	}

	injected := 0
	proc, runErr := sup.RunCtx(ctx, func(n int, p *kernel.Process) {
		if n == 0 && crashFrac >= 0 {
			// Armed after the attempt's recovery pass (which heals the
			// disk) so the crash actually lands mid-commit. The byte
			// budget is the drawn fraction of the request's estimated
			// snapshot traffic (commit count times the boot-state image
			// size), so crashes spread across the whole commit sequence
			// instead of clustering in the first one; a draw past the
			// actual traffic simply never fires — a benign draw.
			if est, err := snap.Encode(p.Checkpoint(), img.Prog); err == nil {
				commits := int64(goldenInstrs/s.cfg.CheckpointEvery) + 1
				traffic := commits * int64(len(est)+64)
				storeFS.Crash(int64(crashFrac * float64(traffic)))
			}
		}
		if !s.cfg.Chaos || rng.Float64() >= s.cfg.ChaosRate {
			return
		}
		inj := fault.Injection{
			Kind: s.cfg.ChaosKinds[rng.Intn(len(s.cfg.ChaosKinds))],
			At:   uint64(rng.Int63n(int64(goldenInstrs))),
		}
		if eng.Arm(p, scheme, inj, rng) == nil {
			injected++
		}
	})
	if runErr != nil && errors.Is(runErr, kernel.ErrCancelled) {
		return nil, fmt.Errorf("%w: %w", ErrDeadline, runErr)
	}

	outcome, cause, err := eng.ClassifyRun(scheme, runErr, proc)
	if err != nil {
		return nil, err
	}
	s.m.cycles.Observe(proc.Cycles())
	attempts := len(sup.Attempts)
	switch outcome {
	case fault.OutcomeDetected:
		return nil, &CorruptionError{
			Cause: cause, Kill: proc.Kill, Attempts: attempts,
			Injected: injected, Cycles: proc.Cycles(),
		}
	case fault.OutcomeSilent:
		return nil, &SilentCorruptionError{
			Output: string(proc.Output), Want: string(goldenOut),
			ExitCode: proc.ExitCode, WantExit: goldenExit,
			Cycles: proc.Cycles(),
		}
	}
	var instrs uint64
	for _, t := range proc.Tasks {
		instrs += t.M.Instrs
	}
	res := &Result{
		Workload:    workloadName,
		Scheme:      schemeName(scheme),
		Output:      string(proc.Output),
		ExitCode:    proc.ExitCode,
		Instrs:      instrs,
		Cycles:      proc.Cycles(),
		Attempts:    attempts,
		Healed:      attempts > 1,
		Injected:    injected,
		Checkpoints: sup.Commits,
		Restores:    sup.Restores,
		TornCommits: sup.CommitErrs,
	}
	return res, nil
}

// pool returns (building on first use) the warm pool for the
// (workload, scheme) pair. Concurrent first-use builds race benignly:
// the loser's template is discarded.
func (s *Server) pool(workloadName string, sc compile.Scheme) (*pool.Pool, error) {
	if workloadName == "" {
		workloadName = "chain"
	}
	key := workloadName + "/" + schemeName(sc)
	s.mu.Lock()
	pl, ok := s.pools[key]
	s.mu.Unlock()
	if ok {
		return pl, nil
	}
	eng, err := s.engine(workloadName)
	if err != nil {
		return nil, err
	}
	img, err := eng.Image(sc)
	if err != nil {
		return nil, err
	}
	seed := s.cfg.Seed
	for _, c := range key {
		seed = mix(seed, int64(c)+0x9001)
	}
	scheme := sc
	built, err := pool.New(pool.Config{
		Img:         img,
		PA:          pa.DefaultConfig(),
		Seed:        seed,
		Configure:   func(p *kernel.Process) { fault.Harden(scheme, p) },
		Shards:      par.Workers(),
		MaxMachines: s.cfg.PoolMachines,
		Tel:         s.m.pool,
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if pl, ok := s.pools[key]; ok {
		return pl, nil
	}
	s.pools[key] = built
	return built, nil
}

// BootImage returns the warm pool's encoded boot image for the
// (workload, scheme) pair — what cluster migration ships so the
// survivor can re-pool it. Only meaningful on a warm server.
func (s *Server) BootImage(workloadName, schemeStr string) ([]byte, error) {
	sc, err := ParseScheme(schemeStr)
	if err != nil {
		return nil, err
	}
	pl, err := s.pool(workloadName, sc)
	if err != nil {
		return nil, err
	}
	return pl.Image().Bytes(), nil
}

// AdoptBootImage re-pools a shipped encoded boot image (the cluster
// migration path): the (workload, scheme) pool verifies the image
// against its program and serves later restores from it. A no-op on a
// cold server.
func (s *Server) AdoptBootImage(workloadName, schemeStr string, raw []byte) error {
	if !s.cfg.Warm {
		return nil
	}
	sc, err := ParseScheme(schemeStr)
	if err != nil {
		return err
	}
	bi, err := snap.NewBootImage(raw)
	if err != nil {
		return err
	}
	pl, err := s.pool(workloadName, sc)
	if err != nil {
		return err
	}
	return pl.Adopt(bi)
}

// PoolStats reads the warm-pool counters from the registry: restores
// served, cold fallbacks, key violations, and current occupancy.
func (s *Server) PoolStats() (restores, coldFallbacks, keyViolations uint64, occupancy int64) {
	return s.m.pool.Restores.Value(), s.m.pool.ColdFallback.Value(),
		s.m.pool.KeyViolations.Value(), s.m.pool.Occupancy.Value()
}

// DoBatch executes a batch of requests across the internal/par worker
// pool and returns per-request results and errors (indexed like reqs).
// This is the batched execution path the warm pool is shaped for: each
// worker leases a machine from its own shard, restores it, and runs
// the victim in StepN quanta, so the trace-compiled engine's dispatch
// and the pool's lease cost amortize across the queued batch instead
// of being paid per call.
func (s *Server) DoBatch(ctx context.Context, reqs []Request) ([]*Result, []error) {
	results := make([]*Result, len(reqs))
	errs := make([]error, len(reqs))
	if err := par.ForEachCtx(ctx, len(reqs), func(i int) error {
		results[i], errs[i] = s.Do(ctx, reqs[i])
		return nil
	}); err != nil {
		for i := range errs {
			if errs[i] == nil && results[i] == nil {
				errs[i] = err
			}
		}
	}
	return results, errs
}

// BeginDrain stops admitting new requests (the SIGTERM path's first
// half); in-flight and queued work keeps running.
func (s *Server) BeginDrain() { s.adm.Close() }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.adm.Closing() }

// Drain stops admission and blocks until every in-flight request has
// finished (or ctx expires) — the "no request lost" half of graceful
// shutdown.
func (s *Server) Drain(ctx context.Context) error { return s.adm.Drain(ctx) }

// InFlight returns the number of admitted, unfinished requests.
func (s *Server) InFlight() int { return s.adm.InFlight() }

// Snapshot is a point-in-time copy of the server counters, shaped for
// the /v1/stats JSON surface and the shutdown report. Since the
// registry migration it is a thin read over the same telemetry handles
// /metrics exposes; the shape (and the tests that rely on it) is
// unchanged.
type Snapshot struct {
	Requests         uint64            `json:"requests"`
	OK               uint64            `json:"ok"`
	Healed           uint64            `json:"healed"`
	Detected         uint64            `json:"detected"`
	DetectedByCause  map[string]uint64 `json:"detected_by_cause,omitempty"`
	Silent           uint64            `json:"silent"`
	Shed             uint64            `json:"shed"`
	RejectedDraining uint64            `json:"rejected_draining"`
	BreakerDenied    uint64            `json:"breaker_denied"`
	BreakerOpens     map[string]uint64 `json:"breaker_opens,omitempty"`
	DeadlineExceeded uint64            `json:"deadline_exceeded"`
	Panics           uint64            `json:"panics"`
	BadRequests      uint64            `json:"bad_requests"`
	Internal         uint64            `json:"internal_errors"`
	Checkpoints      uint64            `json:"checkpoints,omitempty"`
	Restores         uint64            `json:"restores,omitempty"`
	TornCommits      uint64            `json:"torn_commits,omitempty"`
	InFlight         int               `json:"in_flight"`
	Queued           int               `json:"queued"`
	Draining         bool              `json:"draining"`
}

// Stats returns a snapshot of the server counters, read from the
// telemetry registry.
func (s *Server) Stats() Snapshot {
	snap := Snapshot{
		Requests:         s.m.requests.Value(),
		OK:               s.m.outcomes.With(outOK).Value(),
		Healed:           s.m.healed.Value(),
		Detected:         s.m.outcomes.With(outDetected).Value(),
		Silent:           s.m.outcomes.With(outSilent).Value(),
		Shed:             s.m.outcomes.With(outShed).Value(),
		RejectedDraining: s.m.outcomes.With(outDraining).Value(),
		BreakerDenied:    s.m.outcomes.With(outBreakerDenied).Value(),
		DeadlineExceeded: s.m.outcomes.With(outDeadline).Value(),
		Panics:           s.m.outcomes.With(outPanic).Value(),
		BadRequests:      s.m.outcomes.With(outBadRequest).Value(),
		Internal:         s.m.outcomes.With(outInternal).Value(),
		Checkpoints:      s.m.sup.Commits.Value(),
		Restores:         s.m.sup.Restores.Value(),
		TornCommits:      s.m.sup.CommitErrs.Value(),
	}
	if snap.Detected > 0 {
		snap.DetectedByCause = make(map[string]uint64)
		for _, name := range causeNames() {
			if n := s.m.byCause.With(name).Value(); n > 0 {
				snap.DetectedByCause[name] = n
			}
		}
	}

	s.mu.Lock()
	for sc, br := range s.breakers {
		if n := br.Opens(); n > 0 {
			if snap.BreakerOpens == nil {
				snap.BreakerOpens = make(map[string]uint64)
			}
			snap.BreakerOpens[schemeName(sc)] = n
		}
	}
	s.mu.Unlock()

	snap.InFlight = s.adm.InFlight()
	snap.Queued = s.adm.Queued()
	snap.Draining = s.adm.Closing()
	return snap
}
