// HTTP/JSON surface: POST /v1/run executes one workload, GET /v1/stats
// exposes the counter snapshot, GET /metrics is the Prometheus-text
// exposition of the telemetry registry, GET /events is the security
// event ring as JSON, GET /v1/telemetry is the combined dump
// (cmd/pacstack-metrics consumes it), and GET /healthz flips to 503
// once draining so load balancers stop routing here during shutdown.
// Every typed failure of the pipeline maps to a distinct status code —
// the point is that a client can tell "your request found a corrupted
// victim" (502) from "we are overloaded, back off" (429) from "we are
// going away" (503) without parsing prose.

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"pacstack/internal/resilience"
	"pacstack/internal/telemetry"
)

// maxBodyBytes bounds the request body; run requests are tiny.
const maxBodyBytes = 1 << 16

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	// Kind is the machine-readable failure class: shed, draining,
	// breaker_open, deadline, detected_corruption, silent_corruption,
	// panic, bad_request, internal.
	Kind string `json:"kind"`
	// Cause carries the kernel's detection cause on 502s (auth,
	// segfault, cfi, canary, sigreturn, watchdog, other).
	Cause    string `json:"cause,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Kill     string `json:"kill,omitempty"`
}

// statusOf maps a pipeline error to its HTTP status and error body.
func statusOf(err error) (int, errorBody) {
	var ce *CorruptionError
	var se *SilentCorruptionError
	var pe *resilience.PanicError
	var bre *BadRequestError
	switch {
	case errors.As(err, &bre):
		return http.StatusBadRequest, errorBody{Error: err.Error(), Kind: "bad_request"}
	case errors.Is(err, resilience.ErrShed):
		return http.StatusTooManyRequests, errorBody{Error: err.Error(), Kind: "shed"}
	case errors.Is(err, resilience.ErrDraining):
		return http.StatusServiceUnavailable, errorBody{Error: err.Error(), Kind: "draining"}
	case errors.Is(err, resilience.ErrBreakerOpen):
		return http.StatusServiceUnavailable, errorBody{Error: err.Error(), Kind: "breaker_open"}
	case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, errorBody{Error: err.Error(), Kind: "deadline"}
	case errors.As(err, &ce):
		body := errorBody{Error: err.Error(), Kind: "detected_corruption", Cause: ce.Cause.String(), Attempts: ce.Attempts}
		if ce.Kill != nil {
			body.Kill = ce.Kill.String()
		}
		return http.StatusBadGateway, body
	case errors.As(err, &se):
		return http.StatusInternalServerError, errorBody{Error: err.Error(), Kind: "silent_corruption"}
	case errors.As(err, &pe):
		return http.StatusInternalServerError, errorBody{Error: err.Error(), Kind: "panic"}
	default:
		return http.StatusInternalServerError, errorBody{Error: err.Error(), Kind: "internal"}
	}
}

// HTTPStatus maps a pipeline error to its HTTP status and JSON error
// body — the exported face of statusOf, for tiers that stack on top of
// the serving pipeline (the cluster router reuses the mapping so both
// tiers speak the same error vocabulary).
func HTTPStatus(err error) (int, any) {
	status, body := statusOf(err)
	return status, body
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /v1/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(telemetry.Prometheus(s.tel.Registry().Gather())))
}

func (s *Server) handleEvents(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.tel.Log().Snapshot())
}

func (s *Server) handleTelemetry(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.tel.Dump())
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed request: " + err.Error(), Kind: "bad_request"})
		return
	}

	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}

	res, err := s.Do(ctx, req)
	if err != nil {
		status, body := statusOf(err)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, body)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
