package serve

import (
	"sort"

	"pacstack/internal/compile"
	"pacstack/internal/fault"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
	"pacstack/internal/snap"
)

// FinalCheckpoint commits one boot-state snapshot per scheme the
// server has executed (sorted; pacstack when the server never ran
// anything) into st, and returns how many landed. It is the last act
// of a graceful shutdown: per-request snapshot stores die with their
// requests, so the durable record a drained daemon leaves behind is a
// set of chain-neutral images the next incarnation — or a migration
// target — can restore and re-seed safely (kernel.Process.ReseedKeys).
// The commits run on fresh kernels seeded from the server seed; they
// do not touch serving state and are safe after Drain.
func (s *Server) FinalCheckpoint(st *snap.Store) (int, error) {
	s.mu.Lock()
	schemes := make([]compile.Scheme, 0, len(s.ktels))
	for sc := range s.ktels {
		schemes = append(schemes, sc)
	}
	s.mu.Unlock()
	if len(schemes) == 0 {
		schemes = []compile.Scheme{compile.SchemePACStack}
	}
	sort.Slice(schemes, func(i, j int) bool { return schemes[i] < schemes[j] })

	eng, err := s.engine("chain")
	if err != nil {
		return 0, err
	}
	n := 0
	for _, sc := range schemes {
		img, err := eng.Image(sc)
		if err != nil {
			return n, err
		}
		k := kernel.New(pa.DefaultConfig())
		k.Seed(mix(s.cfg.Seed, 0xf1a1+int64(sc)))
		p, err := img.Boot(k)
		if err != nil {
			return n, err
		}
		fault.Harden(sc, p)
		if _, err := st.CommitProcess(p); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
