package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pacstack/internal/par"
	"pacstack/internal/telemetry"
)

// soakDump runs one seeded soak into a fresh Set and returns the
// marshalled telemetry dump.
func soakDump(t *testing.T, workers int) []byte {
	t.Helper()
	restore := par.SetWorkers(workers)
	defer restore()
	set := telemetry.New(telemetry.Options{EventCap: 1024})
	cfg := SoakConfig{
		Clients: 4, Requests: 6,
		Schemes:   []string{"pacstack", "baseline"},
		Seed:      7,
		ChaosRate: 0.4,
		Heal:      1,
		Workers:   2, Queue: 1, // small server: force sheds and retries
		Telemetry: set,
	}
	if _, err := Soak(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSoakTelemetryDeterministic is the acceptance property the
// check.sh gate enforces with cmp: for one seed, the telemetry dump is
// byte-identical across runs AND across worker-pool widths. Counters
// bumped from the parallel phase must commute; events must only come
// from the serial replay.
func TestSoakTelemetryDeterministic(t *testing.T) {
	one := soakDump(t, 1)
	again := soakDump(t, 1)
	if !bytes.Equal(one, again) {
		t.Fatal("same seed, same workers: dumps differ")
	}
	eight := soakDump(t, 8)
	if !bytes.Equal(one, eight) {
		t.Fatal("same seed, SetWorkers(1) vs SetWorkers(8): dumps differ")
	}
	// The dump must actually contain traffic, or the equality above is
	// vacuous.
	for _, frag := range []string{
		`"pacstack_serve_requests_total"`,
		`"pacstack_pa_auth_fail_total"`,
		`"pacstack_kernel_kills_total"`,
		`"request_done"`,
	} {
		if !bytes.Contains(one, []byte(frag)) {
			t.Errorf("dump missing %s", frag)
		}
	}
}

// TestStatsMatchesRegistry: the migrated Stats() accessor and the raw
// registry must agree — one source of truth, two surfaces.
func TestStatsMatchesRegistry(t *testing.T) {
	set := telemetry.New(telemetry.Options{})
	s := New(Config{Workers: 2, Chaos: true, ChaosRate: 1, Seed: 3, Telemetry: set})
	for i := 0; i < 8; i++ {
		_, _ = s.Do(context.Background(), Request{Workload: "chain", Scheme: "pacstack", Seed: int64(i + 1)})
	}
	st := s.Stats()
	if st.Requests != 8 {
		t.Fatalf("requests = %d, want 8", st.Requests)
	}
	if st.OK+st.Detected+st.Silent+st.Internal+st.Panics != st.Requests {
		t.Errorf("outcomes don't sum to requests: %+v", st)
	}
	var regRequests uint64
	for _, f := range set.Registry().Gather().Families {
		if f.Name == "pacstack_serve_requests_total" {
			regRequests = f.Series[0].Value
		}
	}
	if regRequests != st.Requests {
		t.Errorf("registry says %d requests, Stats says %d", regRequests, st.Requests)
	}
}

// TestTelemetryEndpoints drives /metrics, /events and /v1/telemetry
// over real HTTP.
func TestTelemetryEndpoints(t *testing.T) {
	s := New(Config{Workers: 2, Seed: 5})
	if _, err := s.Do(context.Background(), Request{Workload: "chain", Scheme: "pacstack", Seed: 11}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	for _, frag := range []string{
		"# TYPE pacstack_serve_requests_total counter",
		`pacstack_serve_outcomes_total{outcome="ok"} 1`,
		`pacstack_pa_pac_issued_total{scheme="pacstack"}`,
	} {
		if !strings.Contains(body, frag) {
			t.Errorf("/metrics missing %q in:\n%s", frag, body)
		}
	}

	body, ct = get("/events")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/events content-type = %q", ct)
	}
	if !strings.Contains(body, `"next_seq"`) {
		t.Errorf("/events missing ring bookkeeping:\n%s", body)
	}

	body, _ = get("/v1/telemetry")
	if !strings.Contains(body, `"metrics"`) || !strings.Contains(body, `"events"`) {
		t.Errorf("/v1/telemetry missing sections:\n%s", body)
	}
}
