package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"pacstack/internal/fault"
	"pacstack/internal/ir"
	"pacstack/internal/resilience"
)

// slowProgram exits cleanly after ~2M loop iterations — long enough
// that a request is reliably still in flight while a test pokes at the
// server from outside.
func slowProgram() *ir.Program {
	return &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{
			ir.Loop{Count: 2_000_000, Body: []ir.Op{ir.Compute{Units: 1}}},
		}},
	}}
}

func TestDoCleanRequest(t *testing.T) {
	s := New(Config{Seed: 7})
	res, err := s.Do(context.Background(), Request{Workload: "chain", Scheme: "pacstack", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 || res.Healed || res.Injected != 0 {
		t.Errorf("clean request: attempts=%d healed=%v injected=%d", res.Attempts, res.Healed, res.Injected)
	}
	if res.Scheme != "pacstack" {
		t.Errorf("scheme = %q", res.Scheme)
	}
	st := s.Stats()
	if st.Requests != 1 || st.OK != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDoDeterministicForSeededRequest(t *testing.T) {
	mk := func() (*Result, error) {
		s := New(Config{Seed: 11, Chaos: true, ChaosRate: 1})
		return s.Do(context.Background(), Request{Scheme: "pacstack", Seed: 41})
	}
	r1, e1 := mk()
	r2, e2 := mk()
	if (e1 == nil) != (e2 == nil) {
		t.Fatalf("errors diverged: %v vs %v", e1, e2)
	}
	if e1 != nil {
		if e1.Error() != e2.Error() {
			t.Fatalf("error text diverged:\n%v\n%v", e1, e2)
		}
		return
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("results diverged:\n%+v\n%+v", r1, r2)
	}
}

func TestBadRequestTyped(t *testing.T) {
	s := New(Config{})
	_, err := s.Do(context.Background(), Request{Workload: "no-such-workload"})
	var bre *BadRequestError
	if !errors.As(err, &bre) {
		t.Fatalf("err = %v, want BadRequestError", err)
	}
	_, err = s.Do(context.Background(), Request{Scheme: "no-such-scheme"})
	if !errors.As(err, &bre) {
		t.Fatalf("err = %v, want BadRequestError", err)
	}
	if st := s.Stats(); st.BadRequests != 2 {
		t.Errorf("bad requests = %d, want 2", st.BadRequests)
	}
}

// TestChaosDetectionsAreTypedNeverSilent: under full-rate chaos with
// the paper's corruption kinds, a PACStack backend must produce only
// clean results and typed CorruptionErrors — no silent divergence.
func TestChaosDetectionsAreTypedNeverSilent(t *testing.T) {
	s := New(Config{
		Seed:             5,
		Chaos:            true,
		ChaosRate:        1,
		ChaosKinds:       []fault.Kind{fault.KindRetAddr},
		BreakerThreshold: -1, // full-rate chaos would trip any breaker
	})
	detected := 0
	for seed := int64(1); seed <= 30; seed++ {
		_, err := s.Do(context.Background(), Request{Scheme: "pacstack", Seed: seed})
		var se *SilentCorruptionError
		if errors.As(err, &se) {
			t.Fatalf("seed %d: silent corruption from PACStack: %v", seed, err)
		}
		var ce *CorruptionError
		if errors.As(err, &ce) {
			detected++
			if ce.Cause == fault.CauseNone {
				t.Errorf("seed %d: detection with no cause", seed)
			}
		} else if err != nil {
			t.Fatalf("seed %d: unexpected error class: %v", seed, err)
		}
	}
	if detected == 0 {
		t.Fatal("30 full-rate chaos requests produced no detection")
	}
	st := s.Stats()
	if st.Silent != 0 {
		t.Errorf("silent = %d, want 0", st.Silent)
	}
	if st.Detected != uint64(detected) {
		t.Errorf("stats detected = %d, loop saw %d", st.Detected, detected)
	}
}

// TestHealRetriesDetectedKills: with a respawn budget, some requests
// that crash on the first attempt come back healed on a fresh-keyed
// incarnation instead of surfacing an error.
func TestHealRetriesDetectedKills(t *testing.T) {
	s := New(Config{
		Seed:             9,
		Chaos:            true,
		ChaosRate:        0.5,
		ChaosKinds:       []fault.Kind{fault.KindRetAddr},
		Heal:             2,
		BreakerThreshold: -1,
	})
	healed := 0
	for seed := int64(1); seed <= 40; seed++ {
		res, err := s.Do(context.Background(), Request{Scheme: "pacstack", Seed: seed})
		if err == nil && res.Healed {
			healed++
			if res.Attempts < 2 {
				t.Errorf("seed %d: healed with %d attempts", seed, res.Attempts)
			}
		}
	}
	if healed == 0 {
		t.Fatal("no request healed across 40 half-rate chaos requests with Heal=2")
	}
	if st := s.Stats(); st.Healed != uint64(healed) {
		t.Errorf("stats healed = %d, loop saw %d", st.Healed, healed)
	}
}

func TestDeadlineSurfacesAsTypedError(t *testing.T) {
	s := New(Config{Seed: 1, Programs: map[string]*ir.Program{"slow": slowProgram()}})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := s.Do(ctx, Request{Workload: "slow", Seed: 2})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if st := s.Stats(); st.DeadlineExceeded != 1 {
		t.Errorf("deadline counter = %d, want 1", st.DeadlineExceeded)
	}
	if got := s.InFlight(); got != 0 {
		t.Errorf("in flight after deadline = %d, want 0", got)
	}
}

// waitInFlight polls until the server has n admitted requests.
func waitInFlight(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() != n {
		if time.Now().After(deadline) {
			t.Fatalf("in flight never reached %d (now %d)", n, s.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOverloadShedsAndDrainLosesNothing(t *testing.T) {
	s := New(Config{
		Workers: 1, Queue: -1, Seed: 1,
		Programs: map[string]*ir.Program{"slow": slowProgram()},
	})

	done := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), Request{Workload: "slow", Seed: 2})
		done <- err
	}()
	waitInFlight(t, s, 1)

	// Single worker busy, zero queue: the next request is shed, not
	// queued and not allowed to block.
	_, err := s.Do(context.Background(), Request{Workload: "slow", Seed: 3})
	if !errors.Is(err, resilience.ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}

	// Begin drain: new work is rejected with the draining error...
	s.BeginDrain()
	_, err = s.Do(context.Background(), Request{Workload: "slow", Seed: 4})
	if !errors.Is(err, resilience.ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}

	// ...but the in-flight request finishes and Drain waits for it.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("in-flight request lost to drain: %v", err)
		}
	default:
		t.Fatal("drain returned before the in-flight request finished")
	}
	st := s.Stats()
	if st.Shed != 1 || st.RejectedDraining != 1 || st.OK != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	s := New(Config{
		Seed:             3,
		Chaos:            true,
		ChaosRate:        1,
		ChaosKinds:       []fault.Kind{fault.KindRetAddr},
		BreakerThreshold: 3,
		BreakerCooldown:  uint64(time.Hour), // never half-opens during the test
	})
	sawDenied := false
	for seed := int64(1); seed <= 60 && !sawDenied; seed++ {
		_, err := s.Do(context.Background(), Request{Scheme: "pacstack", Seed: seed})
		if errors.Is(err, resilience.ErrBreakerOpen) {
			sawDenied = true
		}
	}
	if !sawDenied {
		t.Fatal("breaker never opened under full-rate chaos with threshold 3")
	}
	st := s.Stats()
	if st.BreakerDenied == 0 || st.BreakerOpens["pacstack"] == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	s := New(Config{Seed: 5, Chaos: true, ChaosRate: 1, ChaosKinds: []fault.Kind{fault.KindRetAddr}, BreakerThreshold: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}

	if code, m := post(`{"scheme":"bogus"}`); code != http.StatusBadRequest || m["kind"] != "bad_request" {
		t.Errorf("bad scheme: %d %v", code, m)
	}
	if code, m := post(`{"unknown_field":1}`); code != http.StatusBadRequest || m["kind"] != "bad_request" {
		t.Errorf("unknown field: %d %v", code, m)
	}

	saw502 := false
	for seed := 1; seed <= 30 && !saw502; seed++ {
		body, _ := json.Marshal(Request{Scheme: "pacstack", Seed: int64(seed)})
		code, m := post(string(body))
		switch code {
		case http.StatusOK:
		case http.StatusBadGateway:
			saw502 = true
			if m["kind"] != "detected_corruption" || m["cause"] == "" {
				t.Errorf("502 body: %v", m)
			}
		default:
			t.Fatalf("unexpected status %d: %v", code, m)
		}
	}
	if !saw502 {
		t.Error("no 502 across 30 full-rate chaos requests")
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Requests == 0 || !snap.Draining {
		t.Errorf("stats snapshot = %+v", snap)
	}
}

func soakConfigForTest() SoakConfig {
	return SoakConfig{
		Clients:   4,
		Requests:  8,
		Schemes:   []string{"pacstack"},
		Seed:      17,
		ChaosRate: 0.3,
		Workers:   2,
		Queue:     2,
	}
}

// TestSoakByteIdenticalAcrossRuns is the reproducibility acceptance
// criterion: same seed and knobs, byte-identical report.
func TestSoakByteIdenticalAcrossRuns(t *testing.T) {
	r1, err := Soak(context.Background(), soakConfigForTest())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Soak(context.Background(), soakConfigForTest())
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.MarshalIndent(r1, "", "  ")
	j2, _ := json.MarshalIndent(r2, "", "  ")
	if !bytes.Equal(j1, j2) {
		t.Fatalf("soak reports diverged:\n%s\n---\n%s", j1, j2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("soak reports structurally diverged")
	}
}

// TestSoakGracefulAndNeverSilent: under ~30% injected faults every
// request reaches a terminal state, detections are typed, and PACStack
// records zero silent corruptions.
func TestSoakGracefulAndNeverSilent(t *testing.T) {
	rep, err := Soak(context.Background(), soakConfigForTest())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Graceful() {
		t.Fatalf("soak not graceful: %+v", rep)
	}
	if rep.Silent != 0 {
		t.Errorf("silent corruptions = %d, want 0", rep.Silent)
	}
	if rep.Detected == 0 {
		t.Error("no detections under 30% chaos")
	}
	if rep.Issued != 32 {
		t.Errorf("issued = %d, want 32", rep.Issued)
	}
	sum := rep.OK + rep.Detected + rep.Silent + rep.GaveUp
	if sum != rep.Issued {
		t.Errorf("accounting: ok+detected+silent+gaveup = %d, issued = %d", sum, rep.Issued)
	}
}

// TestSoakShedsUnderPressure: a tight server model with zero queue and
// no think time forces contention the report must account for.
func TestSoakShedsUnderPressure(t *testing.T) {
	cfg := SoakConfig{
		Clients:  8,
		Requests: 6,
		Seed:     23,
		Workers:  1,
		Queue:    -1,
		Think:    1, // clients hammer essentially back-to-back
		Retries:  2,
	}
	rep, err := Soak(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sheds == 0 {
		t.Error("no sheds with 8 clients on 1 worker and no queue")
	}
	if rep.Retries == 0 {
		t.Error("no retries recorded")
	}
	if !rep.Graceful() {
		t.Fatalf("not graceful: %+v", rep)
	}
}

func TestSoakRejectsUnknownScheme(t *testing.T) {
	_, err := Soak(context.Background(), SoakConfig{Schemes: []string{"bogus"}})
	var bre *BadRequestError
	if !errors.As(err, &bre) {
		t.Fatalf("err = %v, want BadRequestError", err)
	}
}
