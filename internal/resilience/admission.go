package resilience

import (
	"context"
	"sync"
	"sync/atomic"
)

// Admission is the bounded front door of a worker pool: at most
// `workers` requests execute at once, at most `queue` more wait, and
// everything beyond that is shed immediately (ErrShed — the HTTP layer
// turns it into a 429). Close flips the door shut for graceful drain:
// new arrivals get ErrDraining, waiters are rejected, and Drain blocks
// until every admitted request has released its slot — the "no
// in-flight request lost" half of a clean shutdown.
type Admission struct {
	workers int
	queue   int64

	slots   chan struct{} // counting semaphore: send = acquire
	waiting atomic.Int64
	sheds   atomic.Uint64
	active  atomic.Int64

	closeOnce sync.Once
	closed    chan struct{}
}

// NewAdmission returns an admission gate for a pool of the given
// width and waiting-queue depth (both clamped to >= their minimum:
// one worker, zero queue slots).
func NewAdmission(workers, queue int) *Admission {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Admission{
		workers: workers,
		queue:   int64(queue),
		slots:   make(chan struct{}, workers),
		closed:  make(chan struct{}),
	}
}

// Acquire admits one request: immediately when a worker slot is free,
// after queueing when the pool is busy but the queue has room. It
// returns ErrShed when the queue is full, ErrDraining once Close has
// been called, and ctx.Err() if the caller's deadline expires while
// queued. A nil return must be paired with exactly one Release.
func (a *Admission) Acquire(ctx context.Context) error {
	select {
	case <-a.closed:
		return ErrDraining
	default:
	}
	// Fast path: free worker slot.
	select {
	case a.slots <- struct{}{}:
		a.active.Add(1)
		return nil
	default:
	}
	// Queue, bounded: the number of goroutines blocked below is the
	// queue occupancy.
	if a.waiting.Add(1) > a.queue {
		a.waiting.Add(-1)
		a.sheds.Add(1)
		return ErrShed
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.active.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-a.closed:
		return ErrDraining
	}
}

// Release frees the slot of one admitted request.
func (a *Admission) Release() {
	a.active.Add(-1)
	<-a.slots
}

// InFlight returns how many admitted requests have not yet released.
func (a *Admission) InFlight() int { return int(a.active.Load()) }

// Queued returns the current queue occupancy.
func (a *Admission) Queued() int { return int(a.waiting.Load()) }

// Sheds returns how many requests have been load-shed.
func (a *Admission) Sheds() uint64 { return a.sheds.Load() }

// Close stops admitting: subsequent Acquires (and queued waiters)
// fail with ErrDraining. Admitted requests are unaffected.
func (a *Admission) Close() {
	a.closeOnce.Do(func() { close(a.closed) })
}

// Closing reports whether Close has been called.
func (a *Admission) Closing() bool {
	select {
	case <-a.closed:
		return true
	default:
		return false
	}
}

// Drain closes admission and blocks until every in-flight request has
// released (or ctx expires). It is idempotent and safe to call from
// the shutdown path while handlers are still running.
func (a *Admission) Drain(ctx context.Context) error {
	a.Close()
	for i := 0; i < a.workers; i++ {
		select {
		case a.slots <- struct{}{}:
		case <-ctx.Done():
			// Give back what we took so a later Drain can retry.
			for ; i > 0; i-- {
				<-a.slots
			}
			return ctx.Err()
		}
	}
	for i := 0; i < a.workers; i++ {
		<-a.slots
	}
	return nil
}
