package resilience

import (
	"context"
	"sync"
	"sync/atomic"
)

// Admission is the bounded front door of a worker pool: at most
// Limit() requests execute at once, at most `queue` more wait, and
// everything beyond that is shed immediately (ErrShed — the HTTP layer
// turns it into a 429). Close flips the door shut for graceful drain:
// new arrivals get ErrDraining, waiters are rejected, and Drain blocks
// until every admitted request has released its slot — the "no
// in-flight request lost" half of a clean shutdown.
//
// The limit is dynamic: SetLimit resizes the pool mid-flight, which is
// the hook an adaptive overload controller (see AIMD) needs. Growing
// the limit wakes queued waiters immediately; shrinking it never
// cancels already-admitted work — the pool just stops admitting until
// enough releases bring it under the new limit.
type Admission struct {
	mu      sync.Mutex
	limit   int       // worker slots (dynamic)
	queue   int       // max queued waiters (static)
	active  int       // admitted, not yet released
	waiters []*waiter // FIFO; grant order is arrival order

	closed    bool
	sheds     atomic.Uint64
	drainOnce sync.Once
	drained   chan struct{} // closed when closed && active == 0
}

// waiter is one goroutine blocked in Acquire. Exactly one of the
// outcomes is published under the mutex before done is closed:
// granted (err == nil) or rejected (err != nil).
type waiter struct {
	done    chan struct{}
	granted bool
	err     error
}

// NewAdmission returns an admission gate for a pool of the given
// width and waiting-queue depth (both clamped to >= their minimum:
// one worker, zero queue slots).
func NewAdmission(workers, queue int) *Admission {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Admission{
		limit:   workers,
		queue:   queue,
		drained: make(chan struct{}),
	}
}

// Acquire admits one request: immediately when a worker slot is free,
// after queueing when the pool is busy but the queue has room. It
// returns ErrShed when the queue is full, ErrDraining once Close has
// been called, and ctx.Err() if the caller's deadline expires while
// queued. A nil return must be paired with exactly one Release.
//
// The uncontended path (free slot) takes one mutex and allocates
// nothing; only a request that actually queues pays for a waiter.
func (a *Admission) Acquire(ctx context.Context) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrDraining
	}
	if a.active < a.limit {
		a.active++
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.queue {
		a.mu.Unlock()
		a.sheds.Add(1)
		return ErrShed
	}
	w := &waiter{done: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	select {
	case <-w.done:
		return w.err
	case <-ctx.Done():
		a.mu.Lock()
		switch {
		case w.granted:
			// Lost the race: the grant landed just as the deadline
			// fired. The slot is ours, so hand it straight on.
			a.releaseLocked()
		case w.err == nil:
			// Still queued: withdraw.
			for i, q := range a.waiters {
				if q == w {
					a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
					break
				}
			}
		}
		a.mu.Unlock()
		return ctx.Err()
	}
}

// Release frees the slot of one admitted request.
func (a *Admission) Release() {
	a.mu.Lock()
	a.releaseLocked()
	a.mu.Unlock()
}

func (a *Admission) releaseLocked() {
	a.active--
	if a.closed {
		if a.active == 0 {
			a.drainOnce.Do(func() { close(a.drained) })
		}
		return
	}
	a.grantLocked()
}

// grantLocked hands free slots to queued waiters in FIFO order.
func (a *Admission) grantLocked() {
	for a.active < a.limit && len(a.waiters) > 0 {
		w := a.waiters[0]
		a.waiters = a.waiters[1:]
		w.granted = true
		a.active++
		close(w.done)
	}
}

// SetLimit resizes the worker pool mid-flight (clamped to >= 1).
// Growing wakes queued waiters at once; shrinking never cancels
// admitted work — active stays above the new limit until enough
// Releases catch up, and no new admissions happen meanwhile.
func (a *Admission) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	a.mu.Lock()
	a.limit = n
	if !a.closed {
		a.grantLocked()
	}
	a.mu.Unlock()
}

// Limit returns the current worker limit.
func (a *Admission) Limit() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit
}

// InFlight returns how many admitted requests have not yet released.
func (a *Admission) InFlight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active
}

// Queued returns the current queue occupancy.
func (a *Admission) Queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiters)
}

// Sheds returns how many requests have been load-shed.
func (a *Admission) Sheds() uint64 { return a.sheds.Load() }

// Close stops admitting: subsequent Acquires (and queued waiters)
// fail with ErrDraining. Admitted requests are unaffected.
func (a *Admission) Close() {
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		for _, w := range a.waiters {
			w.err = ErrDraining
			close(w.done)
		}
		a.waiters = nil
		if a.active == 0 {
			a.drainOnce.Do(func() { close(a.drained) })
		}
	}
	a.mu.Unlock()
}

// Closing reports whether Close has been called.
func (a *Admission) Closing() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closed
}

// Drain closes admission and blocks until every in-flight request has
// released (or ctx expires). It is idempotent and safe to call from
// the shutdown path while handlers are still running.
func (a *Admission) Drain(ctx context.Context) error {
	a.Close()
	select {
	case <-a.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
