package resilience

import (
	"reflect"
	"testing"
)

// newHalfOpenBreaker trips a breaker and moves its cooldown past `at`,
// so the next admission decision happens in the half-open state.
func newHalfOpenBreaker(t *testing.T, probes int, seed int64, onProbe func(now uint64, order []uint64, granted int)) *Breaker {
	t.Helper()
	b := NewBreaker(BreakerConfig{
		Threshold: 1, Cooldown: 10, HalfOpenProbes: probes,
		Seed: seed, OnProbe: onProbe,
	})
	b.Record(0, false)
	if got := b.State(0); got != BreakerOpen {
		t.Fatalf("state after trip = %v, want open", got)
	}
	return b
}

// TestGrantProbesDeterministicOrder: the same candidate set presented
// in any order yields the same seeded grant order, and exactly
// HalfOpenProbes candidates win.
func TestGrantProbesDeterministicOrder(t *testing.T) {
	ids := []uint64{7, 3, 11, 5, 2}
	perms := [][]uint64{
		{7, 3, 11, 5, 2},
		{2, 5, 11, 3, 7},
		{11, 2, 7, 3, 5},
	}
	var want []uint64
	var wantOrder []uint64
	for i, perm := range perms {
		var order []uint64
		var grantedN int
		b := newHalfOpenBreaker(t, 2, 42, func(_ uint64, o []uint64, g int) {
			order = append([]uint64(nil), o...)
			grantedN = g
		})
		granted := b.GrantProbes(100, perm)
		if len(granted) != 2 {
			t.Fatalf("perm %d: granted %d probes, want 2", i, len(granted))
		}
		if grantedN != 2 {
			t.Fatalf("perm %d: OnProbe reported %d grants, want 2", i, grantedN)
		}
		if len(order) != len(ids) {
			t.Fatalf("perm %d: exported order has %d ids, want %d", i, len(order), len(ids))
		}
		if i == 0 {
			want = granted
			wantOrder = order
			continue
		}
		if !reflect.DeepEqual(granted, want) {
			t.Fatalf("perm %d: granted %v, want %v (order must not depend on presentation)", i, granted, want)
		}
		if !reflect.DeepEqual(order, wantOrder) {
			t.Fatalf("perm %d: exported order %v, want %v", i, order, wantOrder)
		}
	}

	// A different seed must be allowed to choose a different winner set
	// ordering for the same candidates (not asserted to differ — just
	// exercised to be deterministic per seed).
	b1 := newHalfOpenBreaker(t, 2, 1, nil)
	b2 := newHalfOpenBreaker(t, 1, 1, nil)
	g1 := b1.GrantProbes(100, ids)
	g2 := b2.GrantProbes(100, ids)
	if len(g1) != 2 || len(g2) != 1 {
		t.Fatalf("grants = %d, %d; want 2, 1", len(g1), len(g2))
	}
	if g1[0] != g2[0] {
		t.Fatalf("same seed, same episode: first grant %d vs %d, want identical", g1[0], g2[0])
	}
}

// TestGrantProbesStates: a closed breaker grants the whole batch, an
// open one (cooldown running) grants none, and losers of a half-open
// race are refused without leaking probe slots.
func TestGrantProbesStates(t *testing.T) {
	closed := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 10})
	if got := closed.GrantProbes(5, []uint64{1, 2, 3}); len(got) != 3 {
		t.Fatalf("closed breaker granted %d of 3", len(got))
	}

	open := newHalfOpenBreaker(t, 1, 9, nil)
	if got := open.GrantProbes(5, []uint64{1, 2, 3}); len(got) != 0 {
		t.Fatalf("open breaker mid-cooldown granted %d probes", len(got))
	}

	fired := 0
	half := newHalfOpenBreaker(t, 1, 9, func(_ uint64, _ []uint64, _ int) { fired++ })
	granted := half.GrantProbes(100, []uint64{10, 20, 30})
	if len(granted) != 1 {
		t.Fatalf("half-open granted %d probes, want 1", len(granted))
	}
	if fired != 1 {
		t.Fatalf("OnProbe fired %d times, want 1", fired)
	}
	// The probe slot is spent: a straggler a tick later is refused.
	if half.Allow(101) {
		t.Fatalf("probe slot leaked: Allow admitted a second probe")
	}
	// The probe reporting back closes the breaker; new batches flow.
	half.Record(101, true)
	if got := half.GrantProbes(102, []uint64{40, 41}); len(got) != 2 {
		t.Fatalf("closed-after-probe granted %d of 2", len(got))
	}
}

// TestGrantProbesEpochReshuffle: each open episode reshuffles the
// seeded order, so a repeatedly-tripping backend does not pin the same
// winner forever; within one episode the order is stable.
func TestGrantProbesEpochReshuffle(t *testing.T) {
	ids := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	var orders [][]uint64
	for episode := 0; episode < 8; episode++ {
		b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 10, Seed: 77})
		for trip := 0; trip <= episode; trip++ {
			b.Record(uint64(trip)*100, false) // each failure while half-open/closed re-opens
			b.Allow(uint64(trip)*100 + 50)    // walk into half-open for the next trip
		}
		var order []uint64
		b.cfg.OnProbe = func(_ uint64, o []uint64, _ int) { order = append([]uint64(nil), o...) }
		b.GrantProbes(uint64(episode)*100+60, ids)
		orders = append(orders, order)
	}
	varied := false
	for i := 1; i < len(orders); i++ {
		if !reflect.DeepEqual(orders[i], orders[0]) {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatalf("8 distinct open episodes produced identical probe orders %v — episode is not feeding the tie-break", orders[0])
	}
}
