// Package resilience is the graceful-degradation toolkit of the
// serving layer (internal/serve, cmd/pacstack-serve): the pieces a
// long-running daemon needs so that overload, partial failure and
// injected faults degrade service instead of killing it.
//
// The components are deliberately small, explicit state machines:
//
//   - Backoff: seeded exponential backoff with jitter. Deterministic —
//     one seed fixes the whole delay sequence — so retry schedules can
//     be replayed exactly in the soak simulator.
//   - Breaker: a per-backend circuit breaker (closed → open →
//     half-open). It takes the current time as an argument instead of
//     reading a clock, so the same breaker runs under wall-clock time
//     in the daemon and under virtual time in the deterministic soak.
//   - Admission: a bounded admission queue with load shedding and
//     graceful drain — the front door of the worker pool.
//   - Protect: per-request panic isolation, converting a panicking
//     handler into a typed error instead of process death.
//   - Retry: context-aware retry driving a Backoff.
//
// Nothing here knows about PACStack; the package is plain Go so the
// state machines are reusable and independently testable.
package resilience

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// Typed admission-control errors. The HTTP layer maps these onto
// status codes (429 for sheds, 503 for drain and open breakers).
var (
	// ErrShed reports that the admission queue was full: the request
	// was load-shed without being started.
	ErrShed = errors.New("resilience: overloaded, request shed")
	// ErrDraining reports that the server is shutting down and admits
	// no new work.
	ErrDraining = errors.New("resilience: draining, not admitting new work")
	// ErrBreakerOpen reports that the backend's circuit breaker is
	// open and the request was failed fast.
	ErrBreakerOpen = errors.New("resilience: circuit breaker open")
)

// PanicError wraps a recovered panic value as an error, preserving the
// goroutine stack at the point of the panic.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("resilience: recovered panic: %v", e.Value)
}

// Protect runs fn with panic isolation: a panic inside fn is recovered
// and returned as a *PanicError instead of unwinding into the caller.
// The serving layer wraps every request handler in Protect so one bad
// request cannot take the daemon down.
func Protect(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}
