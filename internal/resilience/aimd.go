package resilience

import "sync"

// AIMD is a clock-free additive-increase / multiplicative-decrease
// controller for a concurrency limit — the classic TCP congestion
// shape applied to an admission gate. The caller owns the clock: it
// feeds the controller per-request signals (completion latency,
// sheds, pool occupancy) and closes a control window by calling Tick,
// typically every Interval units of whatever time it runs under —
// virtual cycles in the soak DES, wall time in a live daemon. Nothing
// in here reads a clock, so the same controller state machine runs
// bit-identically in both worlds.
//
// Decision rule per window, evaluated at Tick:
//
//   - congested — more than BadNum/BadDen of the window's completions
//     exceeded LatencyTarget: multiplicative decrease
//     (limit = limit*DecreaseNum/DecreaseDen, clamped to Min).
//   - else saturated — the pool hit the limit or shed at least once:
//     additive increase (limit += Step, clamped to Max). Saturation
//     gates the probe so an idle pool does not drift to Max.
//   - else: hold.
//
// The fraction-based congestion signal is deliberate: heavy-tailed
// traffic (slow clients, poison requests) produces individual
// latencies orders of magnitude over any sane target, and a single
// outlier must not halve the pool. Monotonicity invariant: within one
// window the limit moves only in the direction of the observed
// signal, so a sustained one-sided signal yields a monotone limit
// trajectory (tested in resilience_test.go).
type AIMD struct {
	cfg AIMDConfig

	mu      sync.Mutex
	limit   int
	samples int // completions observed this window
	over    int // ... of which exceeded LatencyTarget
	sheds   int // sheds observed this window
	busyMax int // max pool occupancy observed this window

	stats AIMDStats
}

// AIMDConfig parameterizes the controller. Zero values get sane
// defaults from NewAIMD; Interval is advisory — the controller never
// reads it, it is the cadence the owning loop should call Tick at.
type AIMDConfig struct {
	Start int // initial limit (default Min)
	Min   int // floor (default 1)
	Max   int // ceiling (default 64)

	Step        int // additive increase per saturated healthy window (default 1)
	DecreaseNum int // multiplicative decrease numerator (default 1)
	DecreaseDen int // multiplicative decrease denominator (default 2)

	LatencyTarget uint64 // a completion above this is "over" (required for decreases)
	BadNum        int    // window is congested when over/samples > BadNum/BadDen
	BadDen        int    // (default 1/10)

	Interval uint64 // advisory tick cadence for the owning loop
}

// AIMDStats summarizes a controller's trajectory for reports.
type AIMDStats struct {
	Increases int `json:"increases"`
	Decreases int `json:"decreases"`
	LimitMin  int `json:"limit_min"` // lowest limit ever held
	LimitMax  int `json:"limit_max"` // highest limit ever held
	Limit     int `json:"limit"`     // final limit
}

// NewAIMD returns a controller starting at cfg.Start.
func NewAIMD(cfg AIMDConfig) *AIMD {
	if cfg.Min < 1 {
		cfg.Min = 1
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min + 63
	}
	if cfg.Start < cfg.Min {
		cfg.Start = cfg.Min
	}
	if cfg.Start > cfg.Max {
		cfg.Start = cfg.Max
	}
	if cfg.Step < 1 {
		cfg.Step = 1
	}
	if cfg.DecreaseNum < 1 {
		cfg.DecreaseNum = 1
	}
	if cfg.DecreaseDen <= cfg.DecreaseNum {
		cfg.DecreaseNum, cfg.DecreaseDen = 1, 2
	}
	if cfg.BadDen < 1 {
		cfg.BadNum, cfg.BadDen = 1, 10
	}
	c := &AIMD{cfg: cfg, limit: cfg.Start}
	c.stats.LimitMin = cfg.Start
	c.stats.LimitMax = cfg.Start
	c.stats.Limit = cfg.Start
	return c
}

// ObserveLatency records one completed request's latency into the
// current window.
func (c *AIMD) ObserveLatency(lat uint64) {
	c.mu.Lock()
	c.samples++
	if lat > c.cfg.LatencyTarget {
		c.over++
	}
	c.mu.Unlock()
}

// ObserveShed records one shed (queue-full rejection) into the
// current window.
func (c *AIMD) ObserveShed() {
	c.mu.Lock()
	c.sheds++
	c.mu.Unlock()
}

// ObserveBusy records a pool-occupancy sample; the window keeps the
// maximum, which is the saturation signal gating additive increases.
func (c *AIMD) ObserveBusy(busy int) {
	c.mu.Lock()
	if busy > c.busyMax {
		c.busyMax = busy
	}
	c.mu.Unlock()
}

// Tick closes the current control window, applies the AIMD decision,
// resets the window counters, and returns the (possibly resized)
// limit.
func (c *AIMD) Tick() int {
	c.mu.Lock()
	defer c.mu.Unlock()

	congested := c.samples > 0 && c.over*c.cfg.BadDen > c.samples*c.cfg.BadNum
	saturated := c.sheds > 0 || c.busyMax >= c.limit

	switch {
	case congested:
		next := c.limit * c.cfg.DecreaseNum / c.cfg.DecreaseDen
		if next >= c.limit { // degenerate ratio must still back off
			next = c.limit - 1
		}
		if next < c.cfg.Min {
			next = c.cfg.Min
		}
		if next != c.limit {
			c.limit = next
			c.stats.Decreases++
		}
	case saturated:
		next := c.limit + c.cfg.Step
		if next > c.cfg.Max {
			next = c.cfg.Max
		}
		if next != c.limit {
			c.limit = next
			c.stats.Increases++
		}
	}
	if c.limit < c.stats.LimitMin {
		c.stats.LimitMin = c.limit
	}
	if c.limit > c.stats.LimitMax {
		c.stats.LimitMax = c.limit
	}
	c.stats.Limit = c.limit
	c.samples, c.over, c.sheds, c.busyMax = 0, 0, 0, 0
	return c.limit
}

// Limit returns the current limit without closing the window.
func (c *AIMD) Limit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limit
}

// Interval returns the advisory tick cadence from the config.
func (c *AIMD) Interval() uint64 { return c.cfg.Interval }

// LatencyTarget returns the congestion threshold from the config.
func (c *AIMD) LatencyTarget() uint64 { return c.cfg.LatencyTarget }

// Stats returns the controller's trajectory so far.
func (c *AIMD) Stats() AIMDStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
