package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBackoffDeterministicAndClamped(t *testing.T) {
	a := NewBackoff(100, 10_000, 42)
	b := NewBackoff(100, 10_000, 42)
	for n := 0; n < 200; n++ {
		da, db := a.Delay(n), b.Delay(n)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %d vs %d", n, da, db)
		}
		if da < 50 || da > 10_000 {
			t.Fatalf("attempt %d: delay %d outside [base/2, cap]", n, da)
		}
	}
	// Attempt numbers far past 63 must not shift-overflow back to tiny
	// delays — with no cap the delay saturates instead of wrapping.
	uncapped := NewBackoff(3, 0, 1)
	if d := uncapped.Delay(200); d < 1<<62 {
		t.Fatalf("attempt 200 uncapped delay %d collapsed (shift overflow)", d)
	}
}

func TestBackoffZeroBase(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	for n := 0; n < 5; n++ {
		if d := b.Delay(n); d != 0 {
			t.Fatalf("zero-base delay = %d, want 0", d)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	br := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 100})
	now := uint64(1000)
	for i := 0; i < 3; i++ {
		if !br.Allow(now) {
			t.Fatalf("closed breaker denied request %d", i)
		}
		br.Record(now, false)
	}
	if br.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", br.Opens())
	}
	if br.Allow(now + 50) {
		t.Fatal("open breaker admitted during cooldown")
	}
	// Cooldown expiry: exactly one probe goes through half-open.
	if !br.Allow(now + 100) {
		t.Fatal("half-open breaker denied the probe")
	}
	if br.Allow(now + 100) {
		t.Fatal("half-open breaker admitted a second probe")
	}
	// Probe failure re-opens; probe success closes.
	br.Record(now+100, false)
	if br.Opens() != 2 || br.Allow(now+150) {
		t.Fatalf("failed probe did not re-open (opens=%d)", br.Opens())
	}
	if !br.Allow(now + 300) {
		t.Fatal("second half-open probe denied")
	}
	br.Record(now+300, true)
	if st := br.State(now + 300); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	for i := 0; i < 10; i++ {
		if !br.Allow(now + 301) {
			t.Fatal("closed breaker denied after recovery")
		}
		br.Record(now+301, true)
	}
}

func TestAdmissionShedsBeyondQueue(t *testing.T) {
	a := NewAdmission(1, 1)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Pool busy: one waiter fits the queue, the next is shed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan error, 1)
	go func() { queued <- a.Acquire(ctx) }()
	for a.Queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	if err := a.Acquire(ctx); !errors.Is(err, ErrShed) {
		t.Fatalf("overflow Acquire = %v, want ErrShed", err)
	}
	if a.Sheds() != 1 {
		t.Fatalf("sheds = %d, want 1", a.Sheds())
	}
	// Releasing hands the slot to the waiter.
	a.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued Acquire = %v, want nil", err)
	}
	a.Release()
	if a.InFlight() != 0 {
		t.Fatalf("inflight = %d, want 0", a.InFlight())
	}
}

func TestAdmissionDrain(t *testing.T) {
	a := NewAdmission(2, 4)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	drained := make(chan error, 1)
	go func() {
		defer wg.Done()
		drained <- a.Drain(context.Background())
	}()
	for !a.Closing() {
		time.Sleep(time.Millisecond)
	}
	// Draining: new arrivals are refused, not shed.
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("Acquire while draining = %v, want ErrDraining", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a request in flight", err)
	case <-time.After(10 * time.Millisecond):
	}
	a.Release()
	wg.Wait()
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v", err)
	}
	if a.InFlight() != 0 {
		t.Fatalf("inflight after drain = %d", a.InFlight())
	}
}

func TestAdmissionQueuedWaiterRespectsDeadline(t *testing.T) {
	a := NewAdmission(1, 2)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := a.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Acquire = %v, want deadline exceeded", err)
	}
}

func TestProtectIsolatesPanics(t *testing.T) {
	err := Protect(func() error { panic("request handler exploded") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatalf("clean fn returned %v", err)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	permanent := errors.New("bad request")
	calls := 0
	attempts, err := RetryPolicy{
		Max:       5,
		Retryable: func(err error) bool { return !errors.Is(err, permanent) },
		Sleep:     func(context.Context, uint64) error { return nil },
	}.Do(context.Background(), func(int) error { calls++; return permanent })
	if !errors.Is(err, permanent) || attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d err=%v, want 1/1/permanent", attempts, calls, err)
	}
}

func TestRetryEventuallySucceeds(t *testing.T) {
	failures := 3
	attempts, err := RetryPolicy{
		Max:     5,
		Backoff: NewBackoff(1, 4, 7),
		Sleep:   func(context.Context, uint64) error { return nil },
	}.Do(context.Background(), func(n int) error {
		if n < failures {
			return ErrShed
		}
		return nil
	})
	if err != nil || attempts != failures+1 {
		t.Fatalf("attempts=%d err=%v, want %d/nil", attempts, err, failures+1)
	}
}

func TestRetryHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	attempts, err := RetryPolicy{Max: 5, Sleep: wallSleep}.Do(ctx, func(int) error { return ErrShed })
	if !errors.Is(err, context.Canceled) || attempts != 1 {
		t.Fatalf("attempts=%d err=%v, want 1/context.Canceled", attempts, err)
	}
}

func TestAdmissionSetLimitGrowWakesWaiters(t *testing.T) {
	a := NewAdmission(1, 4)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	granted := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { granted <- a.Acquire(context.Background()) }()
	}
	for a.Queued() != 2 {
		time.Sleep(time.Millisecond)
	}
	// Growing the limit must admit both waiters without any Release.
	a.SetLimit(3)
	for i := 0; i < 2; i++ {
		select {
		case err := <-granted:
			if err != nil {
				t.Fatalf("waiter after SetLimit: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("waiter not woken by SetLimit grow")
		}
	}
	if got := a.InFlight(); got != 3 {
		t.Fatalf("inflight = %d, want 3", got)
	}
	if got := a.Limit(); got != 3 {
		t.Fatalf("limit = %d, want 3", got)
	}
}

func TestAdmissionSetLimitShrinkNeverCancels(t *testing.T) {
	a := NewAdmission(3, 2)
	for i := 0; i < 3; i++ {
		if err := a.Acquire(context.Background()); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	// Shrinking below the admitted count cancels nothing.
	a.SetLimit(1)
	if got := a.InFlight(); got != 3 {
		t.Fatalf("inflight after shrink = %d, want 3 (shrink cancelled work)", got)
	}
	// A new arrival queues (pool over limit) rather than being admitted.
	queued := make(chan error, 1)
	go func() { queued <- a.Acquire(context.Background()) }()
	for a.Queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	// One release still leaves active (2) above the limit (1): no grant.
	a.Release()
	time.Sleep(5 * time.Millisecond)
	if a.Queued() != 1 {
		t.Fatal("waiter admitted while pool still over the shrunk limit")
	}
	a.Release()
	a.Release() // active 0 < limit 1: waiter admitted
	select {
	case err := <-queued:
		if err != nil {
			t.Fatalf("waiter after releases: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never admitted after pool drained under the limit")
	}
	a.Release()
}

func TestAdmissionAcquireIsFIFO(t *testing.T) {
	a := NewAdmission(1, 8)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	const n = 4
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		for a.Queued() != i { // enqueue one at a time to pin arrival order
			time.Sleep(time.Millisecond)
		}
		go func() {
			if err := a.Acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			order <- i
			a.Release()
		}()
	}
	for a.Queued() != n {
		time.Sleep(time.Millisecond)
	}
	a.Release()
	for want := 0; want < n; want++ {
		if got := <-order; got != want {
			t.Fatalf("grant order: got waiter %d, want %d", got, want)
		}
	}
}

func TestAIMDMonotoneUnderStepLoad(t *testing.T) {
	// Step up: a saturated pool with healthy latency must probe upward
	// monotonically until it hits Max.
	c := NewAIMD(AIMDConfig{Start: 4, Min: 2, Max: 16, LatencyTarget: 1000})
	prev := c.Limit()
	for i := 0; i < 40; i++ {
		c.ObserveBusy(prev)   // pool at the limit
		c.ObserveLatency(500) // under target
		got := c.Tick()
		if got < prev {
			t.Fatalf("tick %d: limit decreased %d -> %d under healthy saturated load", i, prev, got)
		}
		prev = got
	}
	if prev != 16 {
		t.Fatalf("limit after sustained saturation = %d, want Max 16", prev)
	}

	// Step down: sustained congestion must back off monotonically to Min.
	for i := 0; i < 40; i++ {
		for j := 0; j < 10; j++ {
			c.ObserveLatency(5000) // every sample over target
		}
		got := c.Tick()
		if got > prev {
			t.Fatalf("tick %d: limit increased %d -> %d under congestion", i, prev, got)
		}
		prev = got
	}
	if prev != 2 {
		t.Fatalf("limit after sustained congestion = %d, want Min 2", prev)
	}
	st := c.Stats()
	if st.Increases == 0 || st.Decreases == 0 || st.LimitMax != 16 || st.LimitMin != 2 || st.Limit != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAIMDIdleHoldsAndOutliersTolerated(t *testing.T) {
	c := NewAIMD(AIMDConfig{Start: 8, Min: 1, Max: 32, LatencyTarget: 1000})
	// Idle window: no samples, no saturation — hold, don't probe to Max.
	if got := c.Tick(); got != 8 {
		t.Fatalf("idle tick moved limit to %d", got)
	}
	// One heavy-tail outlier among many healthy samples must not halve
	// the pool (congestion is fraction-based, default >10%).
	c.ObserveBusy(8)
	c.ObserveLatency(1 << 40)
	for i := 0; i < 20; i++ {
		c.ObserveLatency(100)
	}
	if got := c.Tick(); got < 8 {
		t.Fatalf("single outlier shrank limit to %d", got)
	}
}
