package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBackoffDeterministicAndClamped(t *testing.T) {
	a := NewBackoff(100, 10_000, 42)
	b := NewBackoff(100, 10_000, 42)
	for n := 0; n < 200; n++ {
		da, db := a.Delay(n), b.Delay(n)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %d vs %d", n, da, db)
		}
		if da < 50 || da > 10_000 {
			t.Fatalf("attempt %d: delay %d outside [base/2, cap]", n, da)
		}
	}
	// Attempt numbers far past 63 must not shift-overflow back to tiny
	// delays — with no cap the delay saturates instead of wrapping.
	uncapped := NewBackoff(3, 0, 1)
	if d := uncapped.Delay(200); d < 1<<62 {
		t.Fatalf("attempt 200 uncapped delay %d collapsed (shift overflow)", d)
	}
}

func TestBackoffZeroBase(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	for n := 0; n < 5; n++ {
		if d := b.Delay(n); d != 0 {
			t.Fatalf("zero-base delay = %d, want 0", d)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	br := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 100})
	now := uint64(1000)
	for i := 0; i < 3; i++ {
		if !br.Allow(now) {
			t.Fatalf("closed breaker denied request %d", i)
		}
		br.Record(now, false)
	}
	if br.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", br.Opens())
	}
	if br.Allow(now + 50) {
		t.Fatal("open breaker admitted during cooldown")
	}
	// Cooldown expiry: exactly one probe goes through half-open.
	if !br.Allow(now + 100) {
		t.Fatal("half-open breaker denied the probe")
	}
	if br.Allow(now + 100) {
		t.Fatal("half-open breaker admitted a second probe")
	}
	// Probe failure re-opens; probe success closes.
	br.Record(now+100, false)
	if br.Opens() != 2 || br.Allow(now+150) {
		t.Fatalf("failed probe did not re-open (opens=%d)", br.Opens())
	}
	if !br.Allow(now + 300) {
		t.Fatal("second half-open probe denied")
	}
	br.Record(now+300, true)
	if st := br.State(now + 300); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	for i := 0; i < 10; i++ {
		if !br.Allow(now + 301) {
			t.Fatal("closed breaker denied after recovery")
		}
		br.Record(now+301, true)
	}
}

func TestAdmissionShedsBeyondQueue(t *testing.T) {
	a := NewAdmission(1, 1)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Pool busy: one waiter fits the queue, the next is shed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan error, 1)
	go func() { queued <- a.Acquire(ctx) }()
	for a.Queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	if err := a.Acquire(ctx); !errors.Is(err, ErrShed) {
		t.Fatalf("overflow Acquire = %v, want ErrShed", err)
	}
	if a.Sheds() != 1 {
		t.Fatalf("sheds = %d, want 1", a.Sheds())
	}
	// Releasing hands the slot to the waiter.
	a.Release()
	if err := <-queued; err != nil {
		t.Fatalf("queued Acquire = %v, want nil", err)
	}
	a.Release()
	if a.InFlight() != 0 {
		t.Fatalf("inflight = %d, want 0", a.InFlight())
	}
}

func TestAdmissionDrain(t *testing.T) {
	a := NewAdmission(2, 4)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	drained := make(chan error, 1)
	go func() {
		defer wg.Done()
		drained <- a.Drain(context.Background())
	}()
	for !a.Closing() {
		time.Sleep(time.Millisecond)
	}
	// Draining: new arrivals are refused, not shed.
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("Acquire while draining = %v, want ErrDraining", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a request in flight", err)
	case <-time.After(10 * time.Millisecond):
	}
	a.Release()
	wg.Wait()
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v", err)
	}
	if a.InFlight() != 0 {
		t.Fatalf("inflight after drain = %d", a.InFlight())
	}
}

func TestAdmissionQueuedWaiterRespectsDeadline(t *testing.T) {
	a := NewAdmission(1, 2)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := a.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Acquire = %v, want deadline exceeded", err)
	}
}

func TestProtectIsolatesPanics(t *testing.T) {
	err := Protect(func() error { panic("request handler exploded") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatalf("clean fn returned %v", err)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	permanent := errors.New("bad request")
	calls := 0
	attempts, err := RetryPolicy{
		Max:       5,
		Retryable: func(err error) bool { return !errors.Is(err, permanent) },
		Sleep:     func(context.Context, uint64) error { return nil },
	}.Do(context.Background(), func(int) error { calls++; return permanent })
	if !errors.Is(err, permanent) || attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d err=%v, want 1/1/permanent", attempts, calls, err)
	}
}

func TestRetryEventuallySucceeds(t *testing.T) {
	failures := 3
	attempts, err := RetryPolicy{
		Max:     5,
		Backoff: NewBackoff(1, 4, 7),
		Sleep:   func(context.Context, uint64) error { return nil },
	}.Do(context.Background(), func(n int) error {
		if n < failures {
			return ErrShed
		}
		return nil
	})
	if err != nil || attempts != failures+1 {
		t.Fatalf("attempts=%d err=%v, want %d/nil", attempts, err, failures+1)
	}
}

func TestRetryHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	attempts, err := RetryPolicy{Max: 5, Sleep: wallSleep}.Do(ctx, func(int) error { return ErrShed })
	if !errors.Is(err, context.Canceled) || attempts != 1 {
		t.Fatalf("attempts=%d err=%v, want 1/context.Canceled", attempts, err)
	}
}
