package resilience

import (
	"context"
	"errors"
	"time"
)

// RetryPolicy drives a retry loop around a fallible operation.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt; the
	// operation runs at most Max+1 times.
	Max int
	// Backoff supplies the delay before each retry; nil means no delay.
	Backoff *Backoff
	// Retryable reports whether an error is worth retrying; nil means
	// every error is. Permanent errors (bad request, detected
	// corruption) should return false so the loop fails fast.
	Retryable func(error) bool
	// Sleep waits for d units before the next attempt; nil means a
	// wall-clock sleep interpreting d as nanoseconds. The soak's
	// virtual-time harness substitutes its own.
	Sleep func(ctx context.Context, d uint64) error
}

// Do runs fn until it succeeds, exhausts the retry budget, hits a
// non-retryable error, or the context is cancelled. It returns the
// number of attempts made and the final error (nil on success).
func (p RetryPolicy) Do(ctx context.Context, fn func(attempt int) error) (attempts int, err error) {
	sleep := p.Sleep
	if sleep == nil {
		sleep = wallSleep
	}
	for n := 0; ; n++ {
		attempts = n + 1
		err = fn(n)
		if err == nil || n >= p.Max {
			return attempts, err
		}
		if p.Retryable != nil && !p.Retryable(err) {
			return attempts, err
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return attempts, err
		}
		var d uint64
		if p.Backoff != nil {
			d = p.Backoff.Delay(n)
		}
		if serr := sleep(ctx, d); serr != nil {
			return attempts, serr
		}
	}
}

// wallSleep waits d nanoseconds or until ctx is done.
func wallSleep(ctx context.Context, d uint64) error {
	if d == 0 {
		return ctx.Err()
	}
	t := time.NewTimer(time.Duration(d))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
