package resilience

import "math/rand"

// Backoff produces an exponential backoff schedule with equal jitter:
// the delay before retry attempt n (0-based) is drawn uniformly from
// [d/2, d] where d = min(Base<<n, Cap). The doubling is clamped so
// arbitrarily large attempt counts cannot shift-overflow (the same
// hazard supervise.Policy clamps for restart counts past 63).
//
// A Backoff is seeded and deterministic: one seed fixes the entire
// jitter stream, in draw order. It is not safe for concurrent use —
// give each client/goroutine its own (the soak simulator keys one per
// virtual client, which is what makes retry schedules replayable).
type Backoff struct {
	// Base is the nominal delay before the first retry; Cap bounds the
	// doubled delays. Units are the caller's (nanoseconds under wall
	// clock, simulated cycles in the soak). Base == 0 disables delays.
	Base, Cap uint64

	rng *rand.Rand
}

// NewBackoff returns a seeded backoff schedule. cap == 0 means
// "no cap" (clamped only against overflow).
func NewBackoff(base, cap uint64, seed int64) *Backoff {
	return &Backoff{Base: base, Cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the jittered delay before retry attempt n (0-based).
// It always consumes exactly one rng draw, so the stream stays aligned
// across calls regardless of clamping.
func (b *Backoff) Delay(attempt int) uint64 {
	jitter := b.rng.Int63()
	if b.Base == 0 {
		return 0
	}
	d := b.Base
	for i := 0; i < attempt; i++ {
		if d >= 1<<63 || (b.Cap != 0 && d >= b.Cap) {
			break // doubling further would overflow or exceed the cap
		}
		d <<= 1
	}
	if b.Cap != 0 && d > b.Cap {
		d = b.Cap
	}
	// Equal jitter: half fixed, half uniform — retries spread out but
	// never collapse below d/2.
	half := d / 2
	if half == 0 {
		return d
	}
	return half + uint64(jitter)%(d-half+1)
}
