package resilience

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestBreakerHalfOpenSingleProbe hammers a half-open breaker with
// concurrent Allow calls (run under -race): exactly one caller must be
// admitted as the probe, everyone else must be shed, and both exit
// edges from half-open — probe succeeds → closed, probe fails →
// re-open — must fire exactly once no matter how the goroutines
// interleave.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	const goroutines = 64

	run := func(t *testing.T, probeOK bool) {
		b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 100})
		b.Record(0, false) // threshold 1: one failure opens it
		if got := b.State(0); got != BreakerOpen {
			t.Fatalf("after failure: state = %v, want open", got)
		}
		if b.Allow(50) {
			t.Fatalf("breaker admitted traffic mid-cooldown")
		}

		// Cooldown expired: every goroutine races to be the probe.
		var admitted atomic.Int64
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for i := 0; i < goroutines; i++ {
			go func() {
				defer done.Done()
				start.Wait()
				if b.Allow(100) {
					admitted.Add(1)
				}
			}()
		}
		start.Done()
		done.Wait()
		if n := admitted.Load(); n != 1 {
			t.Fatalf("half-open admitted %d probes concurrently, want exactly 1", n)
		}
		if got := b.State(100); got != BreakerHalfOpen {
			t.Fatalf("probe outstanding: state = %v, want half-open", got)
		}
		// The shed callers never call Record; only the winner reports.
		b.Record(100, probeOK)

		if probeOK {
			if got := b.State(100); got != BreakerClosed {
				t.Fatalf("probe succeeded: state = %v, want closed", got)
			}
			if !b.Allow(101) {
				t.Fatalf("closed breaker refused traffic")
			}
			if got := b.Opens(); got != 1 {
				t.Fatalf("opens = %d, want 1 (the original trip)", got)
			}
		} else {
			if got := b.State(100); got != BreakerOpen {
				t.Fatalf("probe failed: state = %v, want re-opened", got)
			}
			if b.Allow(150) {
				t.Fatalf("re-opened breaker admitted traffic mid-cooldown")
			}
			if got := b.Opens(); got != 2 {
				t.Fatalf("opens = %d, want 2 (trip + failed probe)", got)
			}
			// The second cooldown runs from the failed probe: a fresh
			// probe slot must exist at 100+Cooldown, again exactly one.
			if !b.Allow(200) {
				t.Fatalf("no probe admitted after the second cooldown")
			}
			if b.Allow(200) {
				t.Fatalf("second concurrent probe admitted after re-open")
			}
		}
	}

	t.Run("probe succeeds closes", func(t *testing.T) { run(t, true) })
	t.Run("probe fails reopens", func(t *testing.T) { run(t, false) })
}
