package resilience

import (
	"fmt"
	"sync"
)

// BreakerState is the circuit-breaker state machine position.
type BreakerState int

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is failed fast until the cooldown expires.
	BreakerOpen
	// BreakerHalfOpen: a limited number of probe requests are let
	// through; one success closes the breaker, one failure re-opens it.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// BreakerConfig parameterises a Breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker. Values < 1 are treated as 1.
	Threshold int
	// Cooldown is how long the breaker stays open before letting
	// probes through, in the caller's time units (nanoseconds under
	// wall clock, simulated cycles in the soak).
	Cooldown uint64
	// HalfOpenProbes is how many concurrent probes half-open admits;
	// 0 means 1.
	HalfOpenProbes int
	// OnTransition, when non-nil, is called on every state change with
	// the driving timestamp and the states either side. It runs with
	// the breaker's lock held: it must be fast and must not call back
	// into the breaker. The telemetry layer hangs its gauge updates and
	// event records here.
	OnTransition func(now uint64, from, to BreakerState)
}

// Breaker is a per-backend circuit breaker. It holds no clock: every
// transition is driven by the `now` argument of Allow and Record, so
// the identical state machine serves wall-clock traffic in the daemon
// and virtual-time traffic in the deterministic soak simulator.
// All methods are safe for concurrent use.
type Breaker struct {
	mu     sync.Mutex
	cfg    BreakerConfig
	state  BreakerState
	fails  int    // consecutive failures while closed
	until  uint64 // when the open cooldown expires
	probes int    // probes granted since entering half-open
	opens  uint64 // cumulative closed/half-open -> open transitions
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold < 1 {
		cfg.Threshold = 1
	}
	if cfg.HalfOpenProbes < 1 {
		cfg.HalfOpenProbes = 1
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a request may proceed at time now. In the
// open state it transitions to half-open once the cooldown has
// expired; in half-open it grants up to HalfOpenProbes probes.
func (b *Breaker) Allow(now uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now < b.until {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes = 0
		if b.cfg.OnTransition != nil {
			b.cfg.OnTransition(now, BreakerOpen, BreakerHalfOpen)
		}
		fallthrough
	default: // half-open
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
}

// Record reports the outcome of a request that Allow admitted. A
// failure while closed counts toward Threshold; any failure while
// half-open re-opens immediately. A success closes a half-open breaker
// and resets the failure run.
func (b *Breaker) Record(now uint64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		if from := b.state; from != BreakerClosed {
			b.state = BreakerClosed
			if b.cfg.OnTransition != nil {
				b.cfg.OnTransition(now, from, BreakerClosed)
			}
		}
		b.fails = 0
		return
	}
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.open(now)
		}
	case BreakerHalfOpen:
		b.open(now)
	case BreakerOpen:
		// A straggler from before the breaker opened; nothing to do.
	}
}

// open transitions to the open state. Callers hold b.mu.
func (b *Breaker) open(now uint64) {
	from := b.state
	b.state = BreakerOpen
	b.until = now + b.cfg.Cooldown
	b.fails = 0
	b.opens++
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(now, from, BreakerOpen)
	}
}

// State returns the current state as of time now (an open breaker
// whose cooldown has expired reads as half-open).
func (b *Breaker) State(now uint64) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && now >= b.until {
		return BreakerHalfOpen
	}
	return b.state
}

// Opens returns how many times the breaker has opened.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
