package resilience

import (
	"fmt"
	"sort"
	"sync"
)

// BreakerState is the circuit-breaker state machine position.
type BreakerState int

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is failed fast until the cooldown expires.
	BreakerOpen
	// BreakerHalfOpen: a limited number of probe requests are let
	// through; one success closes the breaker, one failure re-opens it.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// BreakerConfig parameterises a Breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker. Values < 1 are treated as 1.
	Threshold int
	// Cooldown is how long the breaker stays open before letting
	// probes through, in the caller's time units (nanoseconds under
	// wall clock, simulated cycles in the soak).
	Cooldown uint64
	// HalfOpenProbes is how many concurrent probes half-open admits;
	// 0 means 1.
	HalfOpenProbes int
	// OnTransition, when non-nil, is called on every state change with
	// the driving timestamp and the states either side. It runs with
	// the breaker's lock held: it must be fast and must not call back
	// into the breaker. The telemetry layer hangs its gauge updates and
	// event records here.
	OnTransition func(now uint64, from, to BreakerState)
	// Seed fixes the probe-grant tie-break used by GrantProbes when
	// several candidates race for a half-open breaker at the same
	// instant. Zero is a valid seed (the ordering is still
	// deterministic, just the zero-seeded one).
	Seed int64
	// OnProbe, when non-nil, is called whenever GrantProbes resolves a
	// batch against a half-open breaker, with the candidate ids in the
	// chosen (seeded) grant order — granted ids first, refused ids
	// after, so the exported order is the full contention verdict. Like
	// OnTransition it runs under the breaker's lock.
	OnProbe func(now uint64, order []uint64, granted int)
}

// Breaker is a per-backend circuit breaker. It holds no clock: every
// transition is driven by the `now` argument of Allow and Record, so
// the identical state machine serves wall-clock traffic in the daemon
// and virtual-time traffic in the deterministic soak simulator.
// All methods are safe for concurrent use.
type Breaker struct {
	mu     sync.Mutex
	cfg    BreakerConfig
	state  BreakerState
	fails  int    // consecutive failures while closed
	until  uint64 // when the open cooldown expires
	probes int    // probes granted since entering half-open
	opens  uint64 // cumulative closed/half-open -> open transitions
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold < 1 {
		cfg.Threshold = 1
	}
	if cfg.HalfOpenProbes < 1 {
		cfg.HalfOpenProbes = 1
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a request may proceed at time now. In the
// open state it transitions to half-open once the cooldown has
// expired; in half-open it grants up to HalfOpenProbes probes.
func (b *Breaker) Allow(now uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.allowLocked(now)
}

// allowLocked is Allow's state machine. Callers hold b.mu.
func (b *Breaker) allowLocked(now uint64) bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now < b.until {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes = 0
		if b.cfg.OnTransition != nil {
			b.cfg.OnTransition(now, BreakerOpen, BreakerHalfOpen)
		}
		fallthrough
	default: // half-open
		if b.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		b.probes++
		return true
	}
}

// probeRank is the seeded tie-break priority of one candidate id for
// one open episode (splitmix64 finalizer over seed, episode, id).
// Distinct episodes reshuffle the order; one episode's order is fixed.
func (b *Breaker) probeRank(id uint64) uint64 {
	z := uint64(b.cfg.Seed)*0x9e3779b97f4a7c15 + b.opens*0xbf58476d1ce4e5b9 + id
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// GrantProbes resolves a batch of candidates that race for the breaker
// at the same instant — the situation Allow cannot arbitrate fairly,
// because first-come-first-served among simultaneous callers is
// scheduling noise. The candidates are ordered deterministically by a
// seeded tie-break (Seed, open episode, id; equal hashes fall back to
// the smaller id) and then admitted in that order through the same
// state machine Allow runs: a closed breaker grants all of them, an
// open one none, a half-open one the first HalfOpenProbes of the
// chosen order. It returns the granted ids, in grant order; when the
// batch met a half-open breaker, OnProbe exports the full chosen order
// and the grant count — the deterministic record of who won the race.
//
// A nil or empty batch returns nil. The deterministic soak feeds every
// same-virtual-instant arrival batch through here, which is what makes
// probe outcomes independent of event-heap insertion order.
func (b *Breaker) GrantProbes(now uint64, ids []uint64) []uint64 {
	if len(ids) == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	order := append([]uint64(nil), ids...)
	sort.SliceStable(order, func(i, j int) bool {
		ri, rj := b.probeRank(order[i]), b.probeRank(order[j])
		if ri != rj {
			return ri < rj
		}
		return order[i] < order[j]
	})
	granted := make([]uint64, 0, len(order))
	contended := false
	for _, id := range order {
		wasHalfOpen := b.state == BreakerHalfOpen ||
			(b.state == BreakerOpen && now >= b.until)
		if b.allowLocked(now) {
			granted = append(granted, id)
		}
		contended = contended || wasHalfOpen
	}
	if contended && b.cfg.OnProbe != nil {
		b.cfg.OnProbe(now, order, len(granted))
	}
	return granted
}

// Record reports the outcome of a request that Allow admitted. A
// failure while closed counts toward Threshold; any failure while
// half-open re-opens immediately. A success closes a half-open breaker
// and resets the failure run.
func (b *Breaker) Record(now uint64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		if from := b.state; from != BreakerClosed {
			b.state = BreakerClosed
			if b.cfg.OnTransition != nil {
				b.cfg.OnTransition(now, from, BreakerClosed)
			}
		}
		b.fails = 0
		return
	}
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.open(now)
		}
	case BreakerHalfOpen:
		b.open(now)
	case BreakerOpen:
		// A straggler from before the breaker opened; nothing to do.
	}
}

// open transitions to the open state. Callers hold b.mu.
func (b *Breaker) open(now uint64) {
	from := b.state
	b.state = BreakerOpen
	b.until = now + b.cfg.Cooldown
	b.fails = 0
	b.opens++
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(now, from, BreakerOpen)
	}
}

// State returns the current state as of time now (an open breaker
// whose cooldown has expired reads as half-open).
func (b *Breaker) State(now uint64) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && now >= b.until {
		return BreakerHalfOpen
	}
	return b.state
}

// Opens returns how many times the breaker has opened.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
