package resilience

import "sync"

// RetryBudget is a token-bucket cap on retry (and hedge) traffic as a
// fraction of primary traffic — the mechanism that keeps a retry storm
// from amplifying an overload into a bigger overload. Every primary
// request earns Num/Den of a token; every secondary attempt (a client
// retry after a rejection, or a hedged duplicate) spends one whole
// token. The bucket starts with Burst tokens and never holds more, so
// a quiet period cannot bank unlimited retry credit.
//
// The arithmetic is integer-exact: the bucket stores micro-tokens in
// units of 1/Den, so earn (+Num) and spend (-Den) never round and the
// same request sequence yields the same grant sequence on every
// machine — the determinism the soak's byte-identity gates rest on.
// Like the rest of the package it is clock-free: time never enters the
// refill, only primary traffic does, which is exactly the "retries as
// a fraction of primaries" contract.
//
// The budget is deliberately a single cluster-global instance rather
// than per backend: a hedge that fails over from backend A to backend
// B is load on the *cluster*, and per-backend buckets would let a
// request storm rotate through the fleet spending a fresh budget at
// each stop.
type RetryBudget struct {
	cfg RetryBudgetConfig

	mu     sync.Mutex
	micro  int // bucket level in 1/Den tokens
	stats  RetryBudgetStats
}

// RetryBudgetConfig parameterises a RetryBudget. The zero value of a
// field gets a sane default from NewRetryBudget.
type RetryBudgetConfig struct {
	// Num/Den is the earned fraction: each primary earns Num/Den of a
	// token. Defaults 1/10 (retries+hedges capped at 10% of primaries).
	Num int `json:"num"`
	Den int `json:"den"`
	// Burst is the bucket capacity in whole tokens, and the initial
	// level — the slack that lets the first few secondaries through
	// before any primary has earned credit. Default 10.
	Burst int `json:"burst"`
}

// RetryBudgetStats is the budget's accounting for reports.
type RetryBudgetStats struct {
	Primaries int `json:"primaries"` // earn events
	Granted   int `json:"granted"`   // secondaries allowed
	Denied    int `json:"denied"`    // secondaries refused
}

// NewRetryBudget returns a budget holding Burst tokens.
func NewRetryBudget(cfg RetryBudgetConfig) *RetryBudget {
	if cfg.Den <= 0 {
		cfg.Num, cfg.Den = 1, 10
	}
	if cfg.Num < 0 {
		cfg.Num = 0
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 10
	}
	return &RetryBudget{cfg: cfg, micro: cfg.Burst * cfg.Den}
}

// Earn credits one primary request's fraction of a token, clamped to
// the burst capacity.
func (b *RetryBudget) Earn() {
	b.mu.Lock()
	b.stats.Primaries++
	b.micro += b.cfg.Num
	if max := b.cfg.Burst * b.cfg.Den; b.micro > max {
		b.micro = max
	}
	b.mu.Unlock()
}

// Spend tries to charge one whole token for a secondary attempt
// (retry or hedge). It reports whether the attempt may proceed.
func (b *RetryBudget) Spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.micro < b.cfg.Den {
		b.stats.Denied++
		return false
	}
	b.micro -= b.cfg.Den
	b.stats.Granted++
	return true
}

// Stats returns the budget's accounting so far.
func (b *RetryBudget) Stats() RetryBudgetStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Bound is the hard ceiling on secondaries the budget can ever have
// granted after p primaries: p*Num/Den earned plus the initial burst.
// Reports use it to prove amplification stayed within the configured
// budget.
func (b *RetryBudget) Bound(primaries int) int {
	return primaries*b.cfg.Num/b.cfg.Den + b.cfg.Burst
}

// Config returns the (defaulted) configuration.
func (b *RetryBudget) Config() RetryBudgetConfig { return b.cfg }
