// Package cpu executes programs for the simulated AArch64-flavoured
// machine defined in internal/isa.
//
// The machine models exactly what the PACStack security argument
// needs from hardware:
//
//   - a register file the adversary cannot touch (registers are Go
//     struct fields, reachable only through the CPU API, never through
//     the mem.Adversary window);
//   - pointer-authentication instructions whose keys live outside the
//     machine (in the pa.Authenticator installed by the kernel) and
//     are unreadable at EL0 — there is no instruction that returns key
//     material;
//   - translation faults: branching to or executing from a
//     non-canonical or unmapped address stops the program, which is
//     how failed PAC authentications terminate a run;
//   - a deterministic cycle cost model used by the performance
//     experiments.
package cpu

import (
	"errors"
	"fmt"

	"pacstack/internal/isa"
	"pacstack/internal/mem"
	"pacstack/internal/pa"
)

// Fault is an execution fault: a memory violation, a translation
// fault on a corrupt pointer, or an undefined operation.
type Fault struct {
	PC     uint64
	Symbol string // nearest symbol, when known
	Err    error
}

func (f *Fault) Error() string {
	if f.Symbol != "" {
		return fmt.Sprintf("cpu: fault at %#x (%s): %v", f.PC, f.Symbol, f.Err)
	}
	return fmt.Sprintf("cpu: fault at %#x: %v", f.PC, f.Err)
}

// Unwrap exposes the underlying cause (e.g. *mem.Fault).
func (f *Fault) Unwrap() error { return f.Err }

// TranslationFault is raised when a branch targets a non-canonical
// pointer. This is how failed PAC authentications surface: aut* never
// traps, it poisons the pointer, and the poisoned value faults here on
// its first use as a branch target.
type TranslationFault struct {
	Target uint64
}

func (f *TranslationFault) Error() string {
	return fmt.Sprintf("translation fault: non-canonical branch target %#x", f.Target)
}

// CFIViolation is returned by the CallCFI / RetCFI hooks when a branch
// breaks the installed control-flow policy. Edge is "call" for the
// forward-edge (assumption A2) check and "return" for the static-CFI
// comparator.
type CFIViolation struct {
	Edge   string
	PC     uint64 // the branching instruction (0 when unknown)
	Target uint64
	Detail string
}

func (v *CFIViolation) Error() string {
	return fmt.Sprintf("cfi: %s-edge violation: branch to %#x: %s", v.Edge, v.Target, v.Detail)
}

// ErrStepLimit is returned by Run when the step budget is exhausted
// before the program halts.
var ErrStepLimit = errors.New("cpu: step limit exceeded")

// SyscallHandler services SVC instructions; the kernel installs one.
// Returning an error faults the machine.
type SyscallHandler func(m *Machine, imm int64) error

// Machine is one simulated hardware thread.
type Machine struct {
	regs [isa.NumRegs]uint64
	PC   uint64

	// Condition flags (NZCV).
	N, Z, C, V bool

	Mem  *mem.Memory
	Prog *isa.Program
	Auth *pa.Authenticator
	Cost CostModel

	// Cycles and Instrs accumulate the cost-model time and the
	// retired instruction count.
	Cycles uint64
	Instrs uint64

	Halted   bool
	ExitCode uint64

	Syscall SyscallHandler

	// CallCFI, when non-nil, validates indirect call targets (BLR)
	// before the branch is taken. It models the coarse-grained
	// forward-edge CFI of assumption A2: indirect calls may only
	// target function entry points.
	CallCFI func(target uint64) error

	// RetCFI, when non-nil, validates RET targets — the hook behind
	// the stateless fully-precise static CFI comparator (Carlini et
	// al., discussed in the paper's Sections 6.3 and 8). It receives
	// the address of the returning instruction and the target.
	RetCFI func(retPC, target uint64) error

	// Trace, when non-nil, observes every retired instruction.
	Trace func(pc uint64, ins isa.Instr)

	// PreStep, when non-nil, runs at the start of every Step, before
	// the instruction at PC is fetched, with the machine in a
	// consistent between-instructions state. It may mutate registers
	// and memory — this is the hook the fault-injection engine
	// (internal/fault) fires corruptions through, keyed on Instrs. A
	// returned error faults the machine.
	PreStep func(m *Machine) error

	// Fast-path caches. All are derived state, revalidated against
	// their sources on every Step, so the exported Prog / Cost fields
	// (and the memory map) may still be swapped or mutated between
	// steps without the caches going stale:
	//
	//   - the decode cache turns straight-line fetch into one bounds
	//     compare plus a slice index instead of Prog.At's
	//     bounds/alignment/divide path;
	//   - the fetch cache holds the contiguous executable window
	//     containing the last fetch and the mem generation it was
	//     valid at, so CheckFetch's page walk only happens after a
	//     Map/Protect or an out-of-window branch;
	//   - the cost cache flattens the CostModel switch into a per-op
	//     array lookup.
	progCached *isa.Program // source of the decode cache
	progBase   uint64
	progSize   uint64
	progInstrs []isa.Instr

	fetchGen    uint64 // mem.Gen() the window was computed at
	fetchLo     uint64
	fetchHi     uint64
	fetchValid  bool
	costSrc     CostModel // source of the cost table
	costTab     [isa.NumOps]uint32
	costTabInit bool

	// Trace-compilation state (block.go): compiled superblocks indexed
	// by program slot, per-entry heat counters gating compilation, the
	// program the arrays were sized for, and the resume point parked by
	// a mid-block budget stop. All derived state: revalidated against
	// Prog / Auth / Cost / mem generation at every dispatch.
	blocks    []*block
	heat      []uint8
	blockProg *isa.Program
	resumeB   *block
	resumeIdx int
}

// cacheProg (re)derives the decode cache from m.Prog.
func (m *Machine) cacheProg() {
	m.progCached = m.Prog
	if m.Prog == nil {
		m.progBase, m.progSize, m.progInstrs = 0, 0, nil
		return
	}
	m.progBase = m.Prog.Base
	m.progSize = m.Prog.Size()
	m.progInstrs = m.Prog.Instrs
}

// cacheCost (re)derives the flat cost table from m.Cost.
func (m *Machine) cacheCost() {
	m.costSrc = m.Cost
	for op := 0; op < isa.NumOps; op++ {
		m.costTab[op] = uint32(m.Cost.Cost(isa.Op(op)))
	}
	m.costTabInit = true
}

// checkFetch validates that addr is executable, through the cached
// executable window when possible. It returns exactly the error
// mem.CheckFetch would.
func (m *Machine) checkFetch(addr uint64) error {
	if g := m.Mem.Gen(); m.fetchValid && g == m.fetchGen && addr >= m.fetchLo && addr < m.fetchHi {
		return nil
	}
	lo, hi, err := m.Mem.ExecRegion(addr)
	if err != nil {
		return err
	}
	m.fetchLo, m.fetchHi, m.fetchGen, m.fetchValid = lo, hi, m.Mem.Gen(), true
	return nil
}

// New returns a machine executing prog against memory m with PA
// authenticator auth (which may be nil if the program uses no PA
// instructions).
func New(prog *isa.Program, m *mem.Memory, auth *pa.Authenticator) *Machine {
	return &Machine{
		Mem:  m,
		Prog: prog,
		Auth: auth,
		Cost: DefaultCostModel(),
	}
}

// Reg reads a register; XZR reads as zero.
func (m *Machine) Reg(r isa.Reg) uint64 {
	if r == isa.XZR {
		return 0
	}
	return m.regs[r]
}

// SetReg writes a register; writes to XZR are discarded.
func (m *Machine) SetReg(r isa.Reg, v uint64) {
	if r == isa.XZR {
		return
	}
	m.regs[r] = v
}

// Regs returns a copy of the register file, for context switching.
func (m *Machine) Regs() [isa.NumRegs]uint64 { return m.regs }

// SetRegs replaces the register file, for context switching. The XZR
// slot is forced to zero: SetReg discards XZR writes, so the slot is
// zero on every machine and the block executor (block.go) relies on
// reading it directly.
func (m *Machine) SetRegs(r [isa.NumRegs]uint64) {
	r[isa.XZR] = 0
	m.regs = r
}

func (m *Machine) fault(err error) error {
	sym, _ := m.Prog.SymbolFor(m.PC)
	return &Fault{PC: m.PC, Symbol: sym, Err: err}
}

// checkTarget validates a branch target before the PC is moved:
// non-canonical pointers (e.g. a failed aut result) raise the
// translation fault the architecture would.
func (m *Machine) checkTarget(t uint64) error {
	if m.Auth != nil && !m.Auth.IsCanonical(t) {
		return &TranslationFault{Target: t}
	}
	return m.checkFetch(t)
}

// Step retires one instruction.
func (m *Machine) Step() error {
	if m.Halted {
		return m.fault(errors.New("machine is halted"))
	}
	if m.PreStep != nil {
		if err := m.PreStep(m); err != nil {
			return m.fault(err)
		}
	}
	if err := m.checkFetch(m.PC); err != nil {
		return m.fault(err)
	}
	if m.Prog != m.progCached {
		m.cacheProg()
	}
	var ins isa.Instr
	if off := m.PC - m.progBase; off < m.progSize && off%isa.InstrSize == 0 {
		ins = m.progInstrs[off/isa.InstrSize]
	} else {
		var err error
		ins, err = m.Prog.At(m.PC)
		if err != nil {
			return m.fault(err)
		}
	}
	if m.Trace != nil {
		m.Trace(m.PC, ins)
	}
	if !m.costTabInit || !m.Cost.equal(m.costSrc) {
		m.cacheCost()
	}
	if uint(ins.Op) < uint(isa.NumOps) {
		m.Cycles += uint64(m.costTab[ins.Op])
	} else {
		// Out-of-range op: charge the default cost (as CostModel.Cost
		// would) and let the dispatch switch raise the undefined fault.
		m.Cycles += uint64(m.costSrc.Default)
	}
	m.Instrs++

	next := m.PC + isa.InstrSize
	switch ins.Op {
	case isa.NOP:
	case isa.HLT:
		m.Halted = true
	case isa.MOVZ:
		m.SetReg(ins.Rd, uint64(ins.Imm))
	case isa.MOV:
		m.SetReg(ins.Rd, m.Reg(ins.Rn))
	case isa.ADD:
		m.SetReg(ins.Rd, m.Reg(ins.Rn)+m.Reg(ins.Rm))
	case isa.ADDI:
		m.SetReg(ins.Rd, m.Reg(ins.Rn)+uint64(ins.Imm))
	case isa.SUB:
		m.SetReg(ins.Rd, m.Reg(ins.Rn)-m.Reg(ins.Rm))
	case isa.SUBI:
		m.SetReg(ins.Rd, m.Reg(ins.Rn)-uint64(ins.Imm))
	case isa.EOR:
		m.SetReg(ins.Rd, m.Reg(ins.Rn)^m.Reg(ins.Rm))
	case isa.AND:
		m.SetReg(ins.Rd, m.Reg(ins.Rn)&m.Reg(ins.Rm))
	case isa.ORR:
		m.SetReg(ins.Rd, m.Reg(ins.Rn)|m.Reg(ins.Rm))
	case isa.LSLI:
		m.SetReg(ins.Rd, m.Reg(ins.Rn)<<uint(ins.Imm&63))
	case isa.LSRI:
		m.SetReg(ins.Rd, m.Reg(ins.Rn)>>uint(ins.Imm&63))
	case isa.MUL:
		m.SetReg(ins.Rd, m.Reg(ins.Rn)*m.Reg(ins.Rm))

	case isa.LDR:
		v, err := m.Mem.Read64(m.Reg(ins.Rn) + uint64(ins.Imm))
		if err != nil {
			return m.fault(err)
		}
		m.SetReg(ins.Rd, v)
	case isa.LDRPOST:
		addr := m.Reg(ins.Rn)
		v, err := m.Mem.Read64(addr)
		if err != nil {
			return m.fault(err)
		}
		m.SetReg(ins.Rd, v)
		m.SetReg(ins.Rn, addr+uint64(ins.Imm))
	case isa.STR:
		if err := m.Mem.Write64(m.Reg(ins.Rn)+uint64(ins.Imm), m.Reg(ins.Rd)); err != nil {
			return m.fault(err)
		}
	case isa.STRPRE:
		addr := m.Reg(ins.Rn) + uint64(ins.Imm)
		if err := m.Mem.Write64(addr, m.Reg(ins.Rd)); err != nil {
			return m.fault(err)
		}
		m.SetReg(ins.Rn, addr)
	case isa.LDP:
		base := m.Reg(ins.Rn) + uint64(ins.Imm)
		v1, err := m.Mem.Read64(base)
		if err != nil {
			return m.fault(err)
		}
		v2, err := m.Mem.Read64(base + 8)
		if err != nil {
			return m.fault(err)
		}
		m.SetReg(ins.Rd, v1)
		m.SetReg(ins.Rm, v2)
	case isa.LDPPOST:
		base := m.Reg(ins.Rn)
		v1, err := m.Mem.Read64(base)
		if err != nil {
			return m.fault(err)
		}
		v2, err := m.Mem.Read64(base + 8)
		if err != nil {
			return m.fault(err)
		}
		m.SetReg(ins.Rd, v1)
		m.SetReg(ins.Rm, v2)
		m.SetReg(ins.Rn, base+uint64(ins.Imm))
	case isa.STP:
		base := m.Reg(ins.Rn) + uint64(ins.Imm)
		if err := m.Mem.Write64(base, m.Reg(ins.Rd)); err != nil {
			return m.fault(err)
		}
		if err := m.Mem.Write64(base+8, m.Reg(ins.Rm)); err != nil {
			return m.fault(err)
		}
	case isa.STPPRE:
		base := m.Reg(ins.Rn) + uint64(ins.Imm)
		if err := m.Mem.Write64(base, m.Reg(ins.Rd)); err != nil {
			return m.fault(err)
		}
		if err := m.Mem.Write64(base+8, m.Reg(ins.Rm)); err != nil {
			return m.fault(err)
		}
		m.SetReg(ins.Rn, base)

	case isa.B:
		if err := m.checkTarget(ins.Target); err != nil {
			return m.fault(err)
		}
		next = ins.Target
	case isa.BL:
		if err := m.checkTarget(ins.Target); err != nil {
			return m.fault(err)
		}
		m.SetReg(isa.LR, next)
		next = ins.Target
	case isa.BR:
		t := m.Reg(ins.Rn)
		if err := m.checkTarget(t); err != nil {
			return m.fault(err)
		}
		next = t
	case isa.BLR:
		t := m.Reg(ins.Rn)
		if m.CallCFI != nil {
			if err := m.CallCFI(t); err != nil {
				return m.fault(err)
			}
		}
		if err := m.checkTarget(t); err != nil {
			return m.fault(err)
		}
		m.SetReg(isa.LR, next)
		next = t
	case isa.RET:
		t := m.Reg(ins.Rn)
		if m.RetCFI != nil {
			if err := m.RetCFI(m.PC, t); err != nil {
				return m.fault(err)
			}
		}
		if err := m.checkTarget(t); err != nil {
			return m.fault(err)
		}
		next = t
	case isa.RETAA:
		if m.Auth == nil {
			return m.fault(errors.New("PA instruction without authenticator"))
		}
		t, _ := m.Auth.Auth(pa.KeyIA, m.Reg(isa.LR), m.Reg(isa.SP))
		if err := m.checkTarget(t); err != nil {
			return m.fault(err)
		}
		next = t

	case isa.BCND:
		if m.condHolds(ins.Cond) {
			if err := m.checkTarget(ins.Target); err != nil {
				return m.fault(err)
			}
			next = ins.Target
		}
	case isa.CBZ:
		if m.Reg(ins.Rn) == 0 {
			if err := m.checkTarget(ins.Target); err != nil {
				return m.fault(err)
			}
			next = ins.Target
		}
	case isa.CBNZ:
		if m.Reg(ins.Rn) != 0 {
			if err := m.checkTarget(ins.Target); err != nil {
				return m.fault(err)
			}
			next = ins.Target
		}

	case isa.CMP:
		m.setFlagsSub(m.Reg(ins.Rn), m.Reg(ins.Rm))
	case isa.CMPI:
		m.setFlagsSub(m.Reg(ins.Rn), uint64(ins.Imm))

	case isa.PACIA, isa.PACIB, isa.AUTIA, isa.AUTIB, isa.PACIASP, isa.AUTIASP, isa.PACGA, isa.XPACI:
		if m.Auth == nil {
			return m.fault(errors.New("PA instruction without authenticator"))
		}
		switch ins.Op {
		case isa.PACIA:
			m.SetReg(ins.Rd, m.Auth.AddPAC(pa.KeyIA, m.Reg(ins.Rd), m.Reg(ins.Rn)))
		case isa.PACIB:
			m.SetReg(ins.Rd, m.Auth.AddPAC(pa.KeyIB, m.Reg(ins.Rd), m.Reg(ins.Rn)))
		case isa.AUTIA:
			v, _ := m.Auth.Auth(pa.KeyIA, m.Reg(ins.Rd), m.Reg(ins.Rn))
			m.SetReg(ins.Rd, v)
		case isa.AUTIB:
			v, _ := m.Auth.Auth(pa.KeyIB, m.Reg(ins.Rd), m.Reg(ins.Rn))
			m.SetReg(ins.Rd, v)
		case isa.PACIASP:
			m.SetReg(isa.LR, m.Auth.AddPAC(pa.KeyIA, m.Reg(isa.LR), m.Reg(isa.SP)))
		case isa.AUTIASP:
			v, _ := m.Auth.Auth(pa.KeyIA, m.Reg(isa.LR), m.Reg(isa.SP))
			m.SetReg(isa.LR, v)
		case isa.PACGA:
			m.SetReg(ins.Rd, m.Auth.PACGA(m.Reg(ins.Rn), m.Reg(ins.Rm)))
		case isa.XPACI:
			m.SetReg(ins.Rd, m.Auth.StripPAC(m.Reg(ins.Rd)))
		}

	case isa.SVC:
		if m.Syscall == nil {
			return m.fault(fmt.Errorf("svc #%d with no kernel", ins.Imm))
		}
		// PC advances past the SVC before the handler runs, so a
		// handler-initiated context switch resumes correctly.
		m.PC = next
		if err := m.Syscall(m, ins.Imm); err != nil {
			return m.fault(err)
		}
		return nil

	default:
		return m.fault(fmt.Errorf("undefined instruction %v", ins))
	}

	m.PC = next
	return nil
}

func (m *Machine) setFlagsSub(a, b uint64) {
	r := a - b
	m.N = int64(r) < 0
	m.Z = r == 0
	m.C = a >= b
	m.V = (int64(a) < 0) != (int64(b) < 0) && (int64(r) < 0) != (int64(a) < 0)
}

func (m *Machine) condHolds(c isa.Cond) bool {
	switch c {
	case isa.EQ:
		return m.Z
	case isa.NE:
		return !m.Z
	case isa.LT:
		return m.N != m.V
	case isa.GE:
		return m.N == m.V
	case isa.GT:
		return !m.Z && m.N == m.V
	case isa.LE:
		return m.Z || m.N != m.V
	}
	return false
}

// Run steps until the machine halts, faults, or exceeds maxSteps. Hot
// code dispatches through compiled superblocks (StepN); the result is
// observably identical to a Step loop.
func (m *Machine) Run(maxSteps uint64) error {
	for done := uint64(0); done < maxSteps; {
		if m.Halted {
			return nil
		}
		n, err := m.StepN(maxSteps - done)
		if err != nil {
			return err
		}
		done += n
		if n == 0 && !m.Halted {
			// A faulting step retires on the machine but reports zero
			// progress; without an error that cannot happen unless the
			// machine halted — guard against livelock regardless.
			done++
		}
	}
	if m.Halted {
		return nil
	}
	return ErrStepLimit
}
