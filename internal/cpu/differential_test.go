package cpu

import (
	"math/rand"
	"testing"

	"pacstack/internal/isa"
	"pacstack/internal/mem"
)

// Differential check of the data-processing semantics: random
// straight-line arithmetic programs are executed on the machine and
// interpreted directly in Go; the final register files must agree.

// randArith builds a random straight-line arithmetic program over
// X0..X7 and the Go-side interpretation of it.
func randArith(rng *rand.Rand, n int) ([]isa.Instr, func(regs *[8]uint64)) {
	var ins []isa.Instr
	var steps []func(r *[8]uint64)
	reg := func() isa.Reg { return isa.Reg(rng.Intn(8)) }
	for k := 0; k < n; k++ {
		d, a, b := reg(), reg(), reg()
		imm := int64(rng.Intn(1 << 20))
		sh := int64(rng.Intn(64))
		switch rng.Intn(10) {
		case 0:
			ins = append(ins, isa.Instr{Op: isa.MOVZ, Rd: d, Imm: imm})
			steps = append(steps, func(r *[8]uint64) { r[d] = uint64(imm) })
		case 1:
			ins = append(ins, isa.Instr{Op: isa.MOV, Rd: d, Rn: a})
			steps = append(steps, func(r *[8]uint64) { r[d] = r[a] })
		case 2:
			ins = append(ins, isa.Instr{Op: isa.ADD, Rd: d, Rn: a, Rm: b})
			steps = append(steps, func(r *[8]uint64) { r[d] = r[a] + r[b] })
		case 3:
			ins = append(ins, isa.Instr{Op: isa.ADDI, Rd: d, Rn: a, Imm: imm})
			steps = append(steps, func(r *[8]uint64) { r[d] = r[a] + uint64(imm) })
		case 4:
			ins = append(ins, isa.Instr{Op: isa.SUB, Rd: d, Rn: a, Rm: b})
			steps = append(steps, func(r *[8]uint64) { r[d] = r[a] - r[b] })
		case 5:
			ins = append(ins, isa.Instr{Op: isa.EOR, Rd: d, Rn: a, Rm: b})
			steps = append(steps, func(r *[8]uint64) { r[d] = r[a] ^ r[b] })
		case 6:
			ins = append(ins, isa.Instr{Op: isa.AND, Rd: d, Rn: a, Rm: b})
			steps = append(steps, func(r *[8]uint64) { r[d] = r[a] & r[b] })
		case 7:
			ins = append(ins, isa.Instr{Op: isa.ORR, Rd: d, Rn: a, Rm: b})
			steps = append(steps, func(r *[8]uint64) { r[d] = r[a] | r[b] })
		case 8:
			ins = append(ins, isa.Instr{Op: isa.MUL, Rd: d, Rn: a, Rm: b})
			steps = append(steps, func(r *[8]uint64) { r[d] = r[a] * r[b] })
		case 9:
			if rng.Intn(2) == 0 {
				ins = append(ins, isa.Instr{Op: isa.LSLI, Rd: d, Rn: a, Imm: sh})
				steps = append(steps, func(r *[8]uint64) { r[d] = r[a] << uint(sh&63) })
			} else {
				ins = append(ins, isa.Instr{Op: isa.LSRI, Rd: d, Rn: a, Imm: sh})
				steps = append(steps, func(r *[8]uint64) { r[d] = r[a] >> uint(sh&63) })
			}
		}
	}
	interp := func(r *[8]uint64) {
		for _, s := range steps {
			s(r)
		}
	}
	return ins, interp
}

func TestArithmeticMatchesGoSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		ins, interp := randArith(rng, 40)
		b := isa.NewBuilder(0x10000)
		b.Emit(ins...)
		b.Emit(isa.Instr{Op: isa.HLT})
		prog := b.MustLink()

		mm := mem.New()
		if err := mm.Map(0x10000, 2*mem.PageSize, mem.PermRX); err != nil {
			t.Fatal(err)
		}
		m := New(prog, mm, nil)
		m.PC = 0x10000

		var want [8]uint64
		for i := range want {
			want[i] = rng.Uint64()
			m.SetReg(isa.Reg(i), want[i])
		}
		interp(&want)
		if err := m.Run(1000); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if got := m.Reg(isa.Reg(i)); got != want[i] {
				t.Fatalf("trial %d: X%d = %#x, want %#x", trial, i, got, want[i])
			}
		}
	}
}

func TestFlagsMatchGoComparisons(t *testing.T) {
	// CMP + every condition, against Go's comparison operators on
	// signed values.
	rng := rand.New(rand.NewSource(3))
	conds := []struct {
		c   isa.Cond
		go_ func(a, b int64) bool
	}{
		{isa.EQ, func(a, b int64) bool { return a == b }},
		{isa.NE, func(a, b int64) bool { return a != b }},
		{isa.LT, func(a, b int64) bool { return a < b }},
		{isa.LE, func(a, b int64) bool { return a <= b }},
		{isa.GT, func(a, b int64) bool { return a > b }},
		{isa.GE, func(a, b int64) bool { return a >= b }},
	}
	for trial := 0; trial < 500; trial++ {
		a := int64(rng.Uint64())
		bv := int64(rng.Uint64())
		if trial%5 == 0 {
			bv = a // exercise equality
		}
		for _, c := range conds {
			b := isa.NewBuilder(0x10000)
			b.Emit(
				isa.Instr{Op: isa.CMP, Rn: isa.X0, Rm: isa.X1},
				isa.Instr{Op: isa.BCND, Cond: c.c, Label: "taken"},
				isa.Instr{Op: isa.MOVZ, Rd: isa.X2, Imm: 0},
				isa.Instr{Op: isa.HLT},
			)
			b.Label("taken")
			b.Emit(isa.Instr{Op: isa.MOVZ, Rd: isa.X2, Imm: 1}, isa.Instr{Op: isa.HLT})
			prog := b.MustLink()
			mm := mem.New()
			if err := mm.Map(0x10000, mem.PageSize, mem.PermRX); err != nil {
				t.Fatal(err)
			}
			m := New(prog, mm, nil)
			m.PC = 0x10000
			m.SetReg(isa.X0, uint64(a))
			m.SetReg(isa.X1, uint64(bv))
			if err := m.Run(10); err != nil {
				t.Fatal(err)
			}
			want := uint64(0)
			if c.go_(a, bv) {
				want = 1
			}
			if got := m.Reg(isa.X2); got != want {
				t.Fatalf("a=%d b=%d cond=%v: taken=%d, want %d", a, bv, c.c, got, want)
			}
		}
	}
}
