package cpu

import (
	"errors"
	"strings"
	"testing"

	"pacstack/internal/isa"
	"pacstack/internal/mem"
	"pacstack/internal/pa"
)

const (
	codeBase  = 0x10000
	stackBase = 0x7F000
	stackSize = 0x1000
)

// build assembles src, maps code and a stack, and returns a ready
// machine with SP at the top of the stack.
func build(t *testing.T, src string) *Machine {
	t.Helper()
	prog, err := isa.Assemble(codeBase, src)
	if err != nil {
		t.Fatal(err)
	}
	mm := mem.New()
	codeLen := (prog.Size()/mem.PageSize + 1) * mem.PageSize
	if err := mm.Map(codeBase, codeLen, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := mm.Map(stackBase, stackSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	m := New(prog, mm, pa.New(pa.GenerateKeys(), pa.DefaultConfig()))
	m.PC = codeBase
	m.SetReg(isa.SP, stackBase+stackSize)
	return m
}

func mustRun(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..10 into X1.
	m := build(t, `
    movz X0, #10
    movz X1, #0
loop:
    add X1, X1, X0
    sub X0, X0, #1
    cbnz X0, loop
    hlt
`)
	mustRun(t, m)
	if got := m.Reg(isa.X1); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestCallReturn(t *testing.T) {
	m := build(t, `
main:
    movz X0, #5
    bl double
    bl double
    hlt
double:
    add X0, X0, X0
    ret
`)
	mustRun(t, m)
	if got := m.Reg(isa.X0); got != 20 {
		t.Errorf("X0 = %d, want 20", got)
	}
}

func TestIndirectCall(t *testing.T) {
	m := build(t, `
main:
    movz X0, #3
    movz X9, =triple
    blr X9
    hlt
triple:
    movz X10, #3
    mul X0, X0, X10
    ret
`)
	mustRun(t, m)
	if got := m.Reg(isa.X0); got != 9 {
		t.Errorf("X0 = %d, want 9", got)
	}
}

func TestStackPushPop(t *testing.T) {
	m := build(t, `
    movz X0, #111
    movz X1, #222
    stp X0, X1, [SP, #-16]!
    movz X0, #0
    movz X1, #0
    ldp X2, X3, [SP], #16
    hlt
`)
	sp0 := m.Reg(isa.SP)
	mustRun(t, m)
	if m.Reg(isa.X2) != 111 || m.Reg(isa.X3) != 222 {
		t.Errorf("popped %d, %d", m.Reg(isa.X2), m.Reg(isa.X3))
	}
	if m.Reg(isa.SP) != sp0 {
		t.Errorf("SP not balanced: %#x vs %#x", m.Reg(isa.SP), sp0)
	}
}

func TestConditionalBranches(t *testing.T) {
	// max(7, 12) via compare-and-branch.
	m := build(t, `
    movz X0, #7
    movz X1, #12
    cmp X0, X1
    b.ge keep
    mov X0, X1
keep:
    hlt
`)
	mustRun(t, m)
	if m.Reg(isa.X0) != 12 {
		t.Errorf("max = %d", m.Reg(isa.X0))
	}
}

func TestSignedComparisons(t *testing.T) {
	// -1 < 1 requires the N/V flag logic to be right.
	m := build(t, `
    movz X0, #0
    sub X0, X0, #1
    movz X1, #1
    cmp X0, X1
    b.lt less
    movz X2, #0
    hlt
less:
    movz X2, #1
    hlt
`)
	mustRun(t, m)
	if m.Reg(isa.X2) != 1 {
		t.Error("-1 < 1 not taken")
	}
}

func TestXZRSemantics(t *testing.T) {
	m := build(t, `
    movz X0, #5
    mov X1, XZR
    add X2, X0, XZR
    hlt
`)
	mustRun(t, m)
	if m.Reg(isa.X1) != 0 || m.Reg(isa.X2) != 5 {
		t.Errorf("XZR reads: X1=%d X2=%d", m.Reg(isa.X1), m.Reg(isa.X2))
	}
	m.SetReg(isa.XZR, 99)
	if m.Reg(isa.XZR) != 0 {
		t.Error("write to XZR stuck")
	}
}

func TestPaciaspRetaaRoundTrip(t *testing.T) {
	// Listing 1: sign LR, spill, reload, verified return.
	m := build(t, `
main:
    bl protected
    hlt
protected:
    paciasp
    str LR, [SP, #-16]!
    movz X0, #77
    ldr LR, [SP], #16
    retaa
`)
	mustRun(t, m)
	if m.Reg(isa.X0) != 77 {
		t.Errorf("X0 = %d", m.Reg(isa.X0))
	}
}

func TestRetaaDetectsCorruptedReturnAddress(t *testing.T) {
	// The adversary overwrites the spilled, signed LR with a raw
	// address; retaa must send the program into a translation fault.
	m := build(t, `
main:
    bl protected
    hlt
victim:
    hlt
protected:
    paciasp
    str LR, [SP, #-16]!
    svc #100
    ldr LR, [SP], #16
    retaa
`)
	adv := mem.NewAdversary(m.Mem)
	m.Syscall = func(mc *Machine, imm int64) error {
		// At the SVC the signed LR sits at [SP]; replace it with the
		// attacker's target.
		if err := adv.Poke(mc.Reg(isa.SP), mc.Prog.MustLookup("victim")); err != nil {
			t.Fatal(err)
		}
		return nil
	}
	err := m.Run(1000)
	if err == nil {
		t.Fatal("corrupted return address did not fault")
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("unexpected error type: %v", err)
	}
	if !strings.Contains(f.Err.Error(), "non-canonical") && !strings.Contains(f.Err.Error(), "fetch") {
		t.Errorf("unexpected fault cause: %v", f.Err)
	}
}

func TestPaciaAutiaRegisterForms(t *testing.T) {
	m := build(t, `
    movz X0, #0x41000
    movz X1, #1234
    mov X2, X0
    pacia X2, X1
    autia X2, X1
    hlt
`)
	mustRun(t, m)
	if m.Reg(isa.X2) != m.Reg(isa.X0) {
		t.Errorf("pacia/autia did not round-trip: %#x vs %#x", m.Reg(isa.X2), m.Reg(isa.X0))
	}
}

func TestAutiaWrongModifierPoisonsPointer(t *testing.T) {
	m := build(t, `
    movz X0, #0x41000
    pacia X0, X1      ; modifier X1 = 0
    movz X1, #7
    autia X0, X1      ; wrong modifier
    hlt
`)
	mustRun(t, m)
	if m.Auth.IsCanonical(m.Reg(isa.X0)) {
		t.Error("failed autia left a canonical pointer")
	}
	if m.Auth.StripPAC(m.Reg(isa.X0)) != 0x41000 {
		t.Error("failed autia corrupted address bits")
	}
}

func TestXpaciStrips(t *testing.T) {
	m := build(t, `
    movz X0, #0x41000
    movz X1, #99
    pacia X0, X1
    xpaci X0
    hlt
`)
	mustRun(t, m)
	if m.Reg(isa.X0) != 0x41000 {
		t.Errorf("xpaci: %#x", m.Reg(isa.X0))
	}
}

func TestPacgaTopHalf(t *testing.T) {
	m := build(t, `
    movz X1, #5
    movz X2, #6
    pacga X0, X1, X2
    hlt
`)
	mustRun(t, m)
	if m.Reg(isa.X0)&0xFFFFFFFF != 0 {
		t.Errorf("pacga low half nonzero: %#x", m.Reg(isa.X0))
	}
}

func TestWriteToCodeFaults(t *testing.T) {
	m := build(t, `
    movz X0, =main
main:
    str X1, [X0, #0]
    hlt
`)
	if err := m.Run(100); err == nil {
		t.Error("store to executable page succeeded")
	}
}

func TestBranchToDataFaults(t *testing.T) {
	m := build(t, `
    movz X0, #0x7F000
    br X0
    hlt
`)
	if err := m.Run(100); err == nil {
		t.Error("branch into data page succeeded")
	}
}

func TestStepLimit(t *testing.T) {
	m := build(t, `
spin:
    b spin
`)
	if err := m.Run(100); !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestHaltedMachineRefusesSteps(t *testing.T) {
	m := build(t, `hlt`)
	mustRun(t, m)
	if err := m.Step(); err == nil {
		t.Error("step after halt succeeded")
	}
}

func TestSyscallWithoutKernelFaults(t *testing.T) {
	m := build(t, `svc #0`)
	if err := m.Run(10); err == nil {
		t.Error("svc with no handler succeeded")
	}
}

func TestSyscallHandlerRuns(t *testing.T) {
	m := build(t, `
    movz X0, #41
    svc #7
    hlt
`)
	var gotImm int64
	m.Syscall = func(mc *Machine, imm int64) error {
		gotImm = imm
		mc.SetReg(isa.X0, mc.Reg(isa.X0)+1)
		return nil
	}
	mustRun(t, m)
	if gotImm != 7 || m.Reg(isa.X0) != 42 {
		t.Errorf("imm=%d X0=%d", gotImm, m.Reg(isa.X0))
	}
}

func TestCycleAccountingPAC(t *testing.T) {
	m := build(t, `
    pacia X0, X1
    hlt
`)
	mustRun(t, m)
	want := uint64(DefaultCostModel().PAC + DefaultCostModel().Default)
	if m.Cycles != want {
		t.Errorf("cycles = %d, want %d", m.Cycles, want)
	}
	if m.Instrs != 2 {
		t.Errorf("instrs = %d, want 2", m.Instrs)
	}
}

func TestCostModelClasses(t *testing.T) {
	cm := DefaultCostModel()
	if cm.Cost(isa.LDP) != 2*cm.Load {
		t.Error("LDP should cost two loads")
	}
	if cm.Cost(isa.RETAA) != cm.PAC+cm.Branch {
		t.Error("RETAA should cost PAC + branch")
	}
	if cm.Cost(isa.NOP) != cm.Default {
		t.Error("NOP should cost default")
	}
	if cm.Cost(isa.SVC) != cm.Syscall {
		t.Error("SVC should cost a syscall")
	}
}

func TestTraceObservesInstructions(t *testing.T) {
	m := build(t, `
    movz X0, #1
    hlt
`)
	var ops []isa.Op
	m.Trace = func(pc uint64, ins isa.Instr) { ops = append(ops, ins.Op) }
	mustRun(t, m)
	if len(ops) != 2 || ops[0] != isa.MOVZ || ops[1] != isa.HLT {
		t.Errorf("trace = %v", ops)
	}
}

func TestFaultIncludesSymbol(t *testing.T) {
	m := build(t, `
main:
    movz X0, #0
    ldr X1, [X0, #0]
    hlt
`)
	err := m.Run(10)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v", err)
	}
	if f.Symbol != "main" {
		t.Errorf("fault symbol = %q", f.Symbol)
	}
	var mf *mem.Fault
	if !errors.As(err, &mf) {
		t.Error("fault does not unwrap to the memory fault")
	}
}

func TestRegisterFileContextSwitch(t *testing.T) {
	m := build(t, `hlt`)
	m.SetReg(isa.X5, 1234)
	saved := m.Regs()
	m.SetReg(isa.X5, 0)
	m.SetRegs(saved)
	if m.Reg(isa.X5) != 1234 {
		t.Error("register file round-trip failed")
	}
}

func TestBRIndirectJump(t *testing.T) {
	m := build(t, `
    movz X0, =there
    br X0
    hlt
there:
    movz X1, #5
    hlt
`)
	mustRun(t, m)
	if m.Reg(isa.X1) != 5 {
		t.Errorf("X1 = %d; br did not land", m.Reg(isa.X1))
	}
}

func TestPacibAutibRoundTrip(t *testing.T) {
	m := build(t, `
    movz X0, #0x41000
    movz X1, #77
    mov X2, X0
    pacib X2, X1
    autib X2, X1
    hlt
`)
	mustRun(t, m)
	if m.Reg(isa.X2) != m.Reg(isa.X0) {
		t.Errorf("pacib/autib: %#x vs %#x", m.Reg(isa.X2), m.Reg(isa.X0))
	}
}

func TestCrossKeyAuthFails(t *testing.T) {
	m := build(t, `
    movz X0, #0x41000
    movz X1, #77
    pacia X0, X1
    autib X0, X1
    hlt
`)
	mustRun(t, m)
	if m.Auth.IsCanonical(m.Reg(isa.X0)) {
		t.Error("IB authenticated an IA signature")
	}
}

func TestAutiaspWrongSPPoisons(t *testing.T) {
	m := build(t, `
    paciasp
    sub SP, SP, #16
    autiasp
    hlt
`)
	mustRun(t, m)
	if m.Auth.IsCanonical(m.Reg(isa.LR)) && m.Reg(isa.LR) != 0 {
		t.Error("autiasp with a different SP accepted the signature")
	}
}

func TestFetchCacheInvalidatedByProtect(t *testing.T) {
	// The executable-window cache must be revalidated after a Protect:
	// revoking X on the code pages mid-run has to fault the very next
	// fetch, exactly as an uncached CheckFetch would.
	m := build(t, `
    movz X0, #1
    movz X1, #2
    movz X2, #3
    hlt
`)
	if err := m.Step(); err != nil { // warms the fetch cache
		t.Fatal(err)
	}
	codeLen := (m.Prog.Size()/mem.PageSize + 1) * mem.PageSize
	if err := m.Mem.Protect(codeBase, codeLen, mem.PermR); err != nil {
		t.Fatal(err)
	}
	err := m.Step()
	var mf *mem.Fault
	if !errors.As(err, &mf) || mf.Kind != mem.AccessFetch {
		t.Fatalf("step after revoking X: got %v, want fetch fault", err)
	}
}

func TestFetchCacheTracksRemappedWindow(t *testing.T) {
	// Restoring X after a revocation must also take effect on the next
	// step (the generation bump goes both ways).
	m := build(t, `
    movz X0, #1
    movz X1, #2
    hlt
`)
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	codeLen := (m.Prog.Size()/mem.PageSize + 1) * mem.PageSize
	if err := m.Mem.Protect(codeBase, codeLen, mem.PermR); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); err == nil {
		t.Fatal("step with X revoked succeeded")
	}
	if err := m.Mem.Protect(codeBase, codeLen, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	m.Halted = false
	mustRun(t, m)
	if got := m.Reg(isa.X1); got != 2 {
		t.Fatalf("X1 = %d after re-protect, want 2", got)
	}
}

func TestDecodeCacheFollowsProgSwap(t *testing.T) {
	// The decode cache keys on the Prog pointer: swapping the program
	// between steps (as kernel exec does for fresh tasks) must decode
	// from the new image.
	m := build(t, `
    movz X0, #1
    hlt
`)
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	prog2, err := isa.Assemble(codeBase, `
    movz X0, #42
    movz X0, #43
    hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	m.Prog = prog2
	m.PC = codeBase + isa.InstrSize
	mustRun(t, m)
	if got := m.Reg(isa.X0); got != 43 {
		t.Fatalf("X0 = %d after prog swap, want 43", got)
	}
}

func TestCostTableFollowsCostModelSwap(t *testing.T) {
	// The flat cost table must rebuild when the Cost field changes
	// between steps, as the ablation drivers do.
	src := `
    movz X0, #1
    movz X1, #2
    hlt
`
	m := build(t, src)
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	first := m.Cycles
	cm := DefaultCostModel()
	cm.Default = 100
	m.Cost = cm
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if got := m.Cycles - first; got != 100 {
		t.Fatalf("second step cost %d cycles, want 100 after model swap", got)
	}
}
