package cpu

import "pacstack/internal/isa"

// CostModel assigns a cycle cost to each instruction class. The
// defaults follow the estimates used in the paper's evaluation
// (Section 7): general instructions retire in one cycle, loads pay a
// small cache-hit latency, and each PAC computation costs four cycles
// — the QARMA latency estimate by Liljestrand et al. that the paper's
// PA-analogue is calibrated to.
type CostModel struct {
	Default int // simple ALU / move operations
	Load    int // LDR and one half of LDP
	Store   int // STR and one half of STP
	Branch  int // taken or not; includes calls and returns
	Mul     int // integer multiply
	PAC     int // each pac*/aut* computation
	Syscall int // EL0 -> EL1 -> EL0 round trip
}

// DefaultCostModel returns the calibration used for all performance
// experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		Default: 1,
		Load:    4,
		Store:   1,
		Branch:  1,
		Mul:     3,
		PAC:     4,
		Syscall: 150,
	}
}

// equal reports whether two cost models match, field by field. The
// engine compares models on every dispatch to revalidate the flat
// cost table; the naive struct compare compiles to a runtime memequal
// call that profiles at double-digit percent of engine time.
func (c CostModel) equal(o CostModel) bool {
	return c.Default == o.Default && c.Load == o.Load && c.Store == o.Store &&
		c.Branch == o.Branch && c.Mul == o.Mul && c.PAC == o.PAC && c.Syscall == o.Syscall
}

// Cost returns the cycle cost of one instruction.
func (c CostModel) Cost(op isa.Op) int {
	switch op {
	case isa.LDR, isa.LDRPOST:
		return c.Load
	case isa.LDP, isa.LDPPOST:
		return 2 * c.Load
	case isa.STR, isa.STRPRE:
		return c.Store
	case isa.STP, isa.STPPRE:
		return 2 * c.Store
	case isa.B, isa.BL, isa.BR, isa.BLR, isa.RET, isa.BCND, isa.CBZ, isa.CBNZ:
		return c.Branch
	case isa.MUL:
		return c.Mul
	case isa.PACIA, isa.PACIB, isa.AUTIA, isa.AUTIB, isa.PACIASP, isa.AUTIASP, isa.PACGA:
		return c.PAC
	case isa.RETAA:
		// Fused authenticate + return.
		return c.PAC + c.Branch
	case isa.SVC:
		return c.Syscall
	default:
		return c.Default
	}
}
