// Machine state capture and restore, the CPU-side half of the
// checkpoint/restore subsystem (internal/snap). A State is exactly
// the architectural state a context switch preserves — the register
// file, PC, flags, and the retirement counters the cost model and
// watchdog read — and deliberately nothing else: the decode/fetch/
// cost caches are derived state revalidated on every Step, and the
// Syscall/CFI/Trace/PreStep hooks are ownership of whoever boots the
// machine (the kernel re-installs them on restore).
package cpu

import "pacstack/internal/isa"

// State is the serializable architectural state of one Machine.
type State struct {
	Regs       [isa.NumRegs]uint64
	PC         uint64
	N, Z, C, V bool
	Cycles     uint64
	Instrs     uint64
	Halted     bool
	ExitCode   uint64
}

// CaptureState copies the machine's architectural state out.
func (m *Machine) CaptureState() State {
	return State{
		Regs:     m.regs,
		PC:       m.PC,
		N:        m.N,
		Z:        m.Z,
		C:        m.C,
		V:        m.V,
		Cycles:   m.Cycles,
		Instrs:   m.Instrs,
		Halted:   m.Halted,
		ExitCode: m.ExitCode,
	}
}

// RestoreState overwrites the machine's architectural state. The
// fast-path caches need no invalidation: they are keyed on the Prog /
// Cost / memory-generation sources and revalidate on the next Step.
func (m *Machine) RestoreState(s State) {
	m.regs = s.Regs
	m.PC = s.PC
	m.N, m.Z, m.C, m.V = s.N, s.Z, s.C, s.V
	m.Cycles = s.Cycles
	m.Instrs = s.Instrs
	m.Halted = s.Halted
	m.ExitCode = s.ExitCode
}
