// Trace-compiled execution: runtime-discovered superblocks.
//
// The single-step interpreter (Step) pays per-instruction costs that
// are invariant over straight-line code: the fetch-permission check,
// the decode-cache and cost-table revalidations, and the hook nil
// checks. This file amortizes all of them over basic-block-shaped
// units discovered at run time:
//
//   - a *block* is a run of pre-decoded micro-ops starting at a hot
//     entry PC, extended across unconditional direct branches and
//     direct calls (superblock formation: B is followed, BL inlines
//     the link-register write and continues at the callee), ending at
//     the first indirect branch, return, SVC, HLT, or undefined
//     instruction. Conditional branches stay inside the block as side
//     exits, and a side exit that targets the block's own entry loops
//     back in-block, so tight loops pay no dispatch per iteration.
//   - fetch/permission checks are hoisted to block entry: the builder
//     proves every instruction byte and every static branch target of
//     the block executable under the memory generation (mem.Gen) it
//     was built at, so dispatch revalidates one counter instead of
//     page-walking per instruction. Map/Protect bump the generation
//     and force a rebuild, which makes remapped or shrunk executable
//     regions invalidate exactly as the slow path would fault.
//   - per-block cycle and instruction totals are precomputed from the
//     flat cost table as running sums per micro-op, so any exit —
//     fall-through, side exit, fault, loop-back, or budget stop —
//     charges exactly what Step-by-Step execution would have.
//   - adjacent pac* instructions sharing a key and modifier are fused
//     into one batched pa.AddPACPair call (the masked-prologue shape),
//     observably identical to the two separate calls.
//
// The single-step interpreter remains the semantic oracle. Execution
// falls back to it, instruction by instruction, whenever observability
// demands: an armed PreStep hook (the fault-injection engine), an
// attached Trace hook, or SetBlockCompile(false). Block-compiled and
// single-step execution are observably identical — registers, flags,
// memory, PC, Cycles, Instrs, fault identity and PA trace/telemetry
// counters — which the differential tests in block_test.go and the
// root determinism suite enforce.
package cpu

import (
	"sync/atomic"

	"pacstack/internal/isa"
	"pacstack/internal/pa"
)

// blockCompileOff disables the block engine when set; the zero value
// (enabled) is the default. Stored inverted so the package needs no
// init function.
var blockCompileOff atomic.Bool

// SetBlockCompile toggles the trace-compiled engine globally and
// returns a func restoring the previous setting. The differential
// tests use it to run identical workloads block-compiled and purely
// single-stepped; production code never calls it.
func SetBlockCompile(on bool) (restore func()) {
	prev := !blockCompileOff.Load()
	blockCompileOff.Store(!on)
	return func() { blockCompileOff.Store(!prev) }
}

// BlockCompileEnabled reports whether the block engine is active.
func BlockCompileEnabled() bool { return !blockCompileOff.Load() }

// maxBlockUops caps superblock length: long enough to amortize
// dispatch over whole scheduler quanta, short enough to bound the
// rebuild cost after an invalidation.
const maxBlockUops = 128

// Pseudo-ops used only inside blocks. They live above isa.NumOps so
// they can never collide with a real opcode.
const (
	// uopGoto is an executed unconditional direct branch whose target
	// is the next micro-op of the same block (superblock formation
	// across B): it retires and is charged like B, but transfers
	// control implicitly.
	uopGoto = isa.Op(isa.NumOps) + iota
	// uopCall is a followed direct call (BL): it writes LR = pc+8 and
	// control continues at the next micro-op, which is the callee's
	// first instruction. Direct calls take no CFI hook (only BLR
	// does), so inlining them is invisible.
	uopCall
	// uopPACPair fuses two adjacent pac* instructions sharing a key
	// and modifier register — the PACStack masked-prologue shape —
	// into one batched pa.AddPACPair call. aux holds the key, Rd and
	// Rm the two destinations (each also its own input), Rn the
	// modifier.
	uopPACPair
)

// uop is one pre-decoded micro-op. Operands are flattened out of
// isa.Instr so the dispatch loop never touches the decode path; cum
// and icnt carry the running cycle and retired-instruction totals
// (inclusive of this op) so every exit charges the cost model in one
// addition. A fused pair counts as two instructions, like the oracle.
type uop struct {
	op         isa.Op
	rd, rn, rm uint8
	aux        uint8    // uopPACPair: the pa.KeyID
	cond       isa.Cond // BCND side exits
	imm        uint64   // immediate as the executor consumes it
	target     uint64   // static branch target (pre-validated)
	pc         uint64   // address of the source instruction
	cum        uint64   // cycles of uops[0..this], from the cost table
	icnt       uint16   // instructions retired by uops[0..this]
}

// block is one compiled superblock. prog, auth and gen identify the
// sources the block was derived from; a mismatch at dispatch forces a
// rebuild, which is how self-modifying mappings, program swaps and
// authenticator swaps invalidate exactly like the slow path.
type block struct {
	entry uint64
	next  uint64 // continuation PC when the block falls through
	gen   uint64 // mem.Gen() all fetch/target proofs were made at
	prog  *isa.Program
	auth  *pa.Authenticator
	uops  []uop // nil: unbuildable at this entry under this gen
}

// flushBlocks drops every compiled block (cost-model change, program
// swap). The arrays are lazily reallocated at the next dispatch.
func (m *Machine) flushBlocks() {
	m.blocks = nil
	m.heat = nil
	m.blockProg = nil
	m.resumeB = nil
}

// costCurrent reports whether the flat cost table still matches the
// exported Cost field (field-wise: the struct compare Step used to do
// per instruction is a runtime memequal call, which profiling showed
// at 14% of engine time).
func (m *Machine) costCurrent() bool { return m.costTabInit && m.Cost.equal(m.costSrc) }

// staticTargetOK proves a build-time branch target safe to take
// without a per-execution check: canonical (checkTarget's translation
// rule) and executable under the build generation.
func (m *Machine) staticTargetOK(t uint64) bool {
	if m.Auth != nil && !m.Auth.IsCanonical(t) {
		return false
	}
	_, _, err := m.Mem.ExecRegion(t)
	return err == nil
}

// buildBlock compiles the superblock entered at entry under the given
// memory generation. It stops — leaving the rest to the interpreter —
// at anything whose slow-path semantics it cannot reproduce
// bit-for-bit: SVC (the handler may remap memory), undefined opcodes
// (exact fault text), PA instructions without an authenticator, and
// branches whose static targets cannot be proven at build time. A
// block with no compilable head instruction is returned with nil uops
// and cached as unbuildable for this generation.
func (m *Machine) buildBlock(entry, gen uint64) *block {
	b := &block{entry: entry, gen: gen, prog: m.progCached, auth: m.Auth}
	var lo, hi uint64 // validated executable window
	haveWin := false
	pc := entry
	var cum uint64
	var icnt uint16
	inBlock := func(t uint64) bool {
		for i := range b.uops {
			if b.uops[i].pc == t {
				return true
			}
		}
		return false
	}

build:
	for len(b.uops) < maxBlockUops {
		if !haveWin || pc < lo || pc >= hi {
			l, h, err := m.Mem.ExecRegion(pc)
			if err != nil {
				break // next fetch would fault: interpreter raises it
			}
			lo, hi, haveWin = l, h, true
		}
		off := pc - m.progBase
		if off >= m.progSize || off%isa.InstrSize != 0 {
			break // decode fault: interpreter raises it
		}
		ins := m.progInstrs[off/isa.InstrSize]
		if uint(ins.Op) >= uint(isa.NumOps) {
			break // undefined opcode: interpreter raises the exact fault
		}
		cum += uint64(m.costTab[ins.Op])
		icnt++
		u := uop{
			op: ins.Op, rd: uint8(ins.Rd), rn: uint8(ins.Rn), rm: uint8(ins.Rm),
			cond: ins.Cond, imm: uint64(ins.Imm), target: ins.Target, pc: pc,
			cum: cum, icnt: icnt,
		}
		switch ins.Op {
		case isa.SVC:
			break build // handler may remap or halt: interpreter only

		case isa.LSLI, isa.LSRI:
			u.imm = uint64(ins.Imm) & 63

		case isa.PACIA, isa.PACIB, isa.AUTIA, isa.AUTIB,
			isa.PACIASP, isa.AUTIASP, isa.PACGA, isa.XPACI, isa.RETAA:
			if m.Auth == nil {
				break build // exact "PA without authenticator" fault
			}
			if ins.Op == isa.RETAA {
				b.uops = append(b.uops, u)
				return b
			}
			// Fuse "pac* Xa, Xm ; pac* Xb, Xm" (same key, same live
			// modifier, distinct destinations) into one batched
			// AddPACPair call — the PACStack masked-prologue shape.
			if ins.Op == isa.PACIA || ins.Op == isa.PACIB {
				if nb, ok := m.peekInstr(pc + isa.InstrSize); ok && nb.Op == ins.Op &&
					nb.Rn == ins.Rn && nb.Rd != ins.Rd && ins.Rd != ins.Rn &&
					len(b.uops) < maxBlockUops-1 {
					u.op = uopPACPair
					u.rm = uint8(nb.Rd)
					if ins.Op == isa.PACIB {
						u.aux = uint8(pa.KeyIB)
					} else {
						u.aux = uint8(pa.KeyIA)
					}
					cum += uint64(m.costTab[nb.Op])
					icnt++
					u.cum, u.icnt = cum, icnt
					b.uops = append(b.uops, u)
					pc += 2 * isa.InstrSize
					continue
				}
			}

		case isa.B:
			if !m.staticTargetOK(ins.Target) {
				break build
			}
			if len(b.uops) < maxBlockUops-1 && !inBlock(ins.Target) && ins.Target != pc {
				// Superblock formation: follow the jump in-block.
				u.op = uopGoto
				b.uops = append(b.uops, u)
				pc = ins.Target
				continue
			}
			b.uops = append(b.uops, u)
			return b

		case isa.BL:
			if !m.staticTargetOK(ins.Target) {
				break build
			}
			if len(b.uops) < maxBlockUops-1 && ins.Target != pc {
				// Follow the direct call: inline the LR write and keep
				// compiling at the callee. The callee's dynamic return
				// (RET/RETAA) terminates the block.
				u.op = uopCall
				b.uops = append(b.uops, u)
				pc = ins.Target
				continue
			}
			b.uops = append(b.uops, u)
			return b

		case isa.BCND, isa.CBZ, isa.CBNZ:
			if !m.staticTargetOK(ins.Target) {
				break build // taken path may fault: interpreter decides
			}

		case isa.BR, isa.BLR, isa.RET, isa.HLT:
			b.uops = append(b.uops, u)
			return b
		}
		b.uops = append(b.uops, u)
		pc += isa.InstrSize
	}
	b.next = pc
	if len(b.uops) == 0 {
		b.uops = nil // cached as unbuildable for this generation
	}
	return b
}

// peekInstr decodes the instruction at pc from the cached program
// window, for the builder's fusion lookahead.
func (m *Machine) peekInstr(pc uint64) (isa.Instr, bool) {
	off := pc - m.progBase
	if off >= m.progSize || off%isa.InstrSize != 0 {
		return isa.Instr{}, false
	}
	return m.progInstrs[off/isa.InstrSize], true
}

// stepInto is StepN's per-instruction fallback: one oracle step.
func (m *Machine) stepInto(executed *uint64) error {
	if err := m.Step(); err != nil {
		return err
	}
	*executed++
	return nil
}

// StepN retires up to budget instructions and returns how many
// actually retired before the machine halted, the budget ran out, or
// a fault occurred. It is observably identical to calling Step in a
// loop — the kernel's scheduler quantum is exactly such a loop — but
// dispatches hot straight-line code through compiled superblocks. A
// faulting instruction is excluded from the returned count (matching
// the scheduler's accounting) while still charged to Cycles and
// Instrs (matching Step's).
//
// Fallback invariants: an armed PreStep hook (fault injection), an
// attached Trace hook, or SetBlockCompile(false) forces per-
// instruction interpretation, so corruption indexes, trace streams
// and detection classification are bit-for-bit those of the oracle.
func (m *Machine) StepN(budget uint64) (uint64, error) {
	executed := uint64(0)
	// Dispatch environment — decode cache, cost table, block arrays,
	// memory generation — is validated once and re-validated only
	// after an interpreter step, which is the only place inside StepN
	// that can run foreign code (an SVC handler).
	envOK := false
	var gen uint64
	for executed < budget {
		if m.Halted {
			return executed, nil
		}
		if m.PreStep != nil || m.Trace != nil || blockCompileOff.Load() {
			m.resumeB = nil
			if err := m.stepInto(&executed); err != nil {
				return executed, err
			}
			envOK = false
			continue
		}
		if !envOK {
			if m.Prog != m.progCached {
				m.cacheProg()
			}
			if !m.costCurrent() {
				m.cacheCost()
				m.flushBlocks()
			}
			if m.blockProg != m.progCached {
				n := int(m.progSize / isa.InstrSize)
				m.blocks = make([]*block, n)
				m.heat = make([]uint8, n)
				m.blockProg = m.progCached
			}
			gen = m.Mem.Gen()
			envOK = true
		}

		var n uint64
		var err error
		ran := false
		// A budget stop mid-block leaves a resume point; re-entering at
		// the same PC under the same sources continues inside the block
		// without a dispatch lookup. The PC compare makes any external
		// control transfer (signal delivery, state restore) miss.
		if rb := m.resumeB; rb != nil {
			i := m.resumeIdx
			m.resumeB = nil
			if rb.prog == m.progCached && rb.auth == m.Auth && rb.gen == gen &&
				i < len(rb.uops) && rb.uops[i].pc == m.PC {
				n, err = m.runBlock(rb, i, budget-executed)
				ran = true
			}
		}
		if !ran {
			off := m.PC - m.progBase
			if off >= m.progSize || off%isa.InstrSize != 0 {
				// Off-image PC: the interpreter raises the exact fault.
				if err := m.stepInto(&executed); err != nil {
					return executed, err
				}
				envOK = false
				continue
			}
			slot := off / isa.InstrSize
			b := m.blocks[slot]
			if b == nil || b.gen != gen || b.auth != m.Auth || b.prog != m.progCached {
				if b == nil && m.heat[slot] == 0 {
					// Cold entry: interpret once before spending a build,
					// so code executed a single time is never compiled.
					m.heat[slot] = 1
					if err := m.stepInto(&executed); err != nil {
						return executed, err
					}
					envOK = false
					continue
				}
				b = m.buildBlock(m.PC, gen)
				m.blocks[slot] = b
			}
			if b.uops == nil {
				if err := m.stepInto(&executed); err != nil {
					return executed, err
				}
				envOK = false
				continue
			}
			n, err = m.runBlock(b, 0, budget-executed)
		}
		executed += n
		if err != nil {
			return executed, err
		}
		if n == 0 {
			// The budget boundary fell inside a fused pair: the oracle
			// would retire its first instruction — single-step it.
			if err := m.stepInto(&executed); err != nil {
				return executed, err
			}
			envOK = false
		}
	}
	return executed, nil
}

// runBlock executes b.uops[start:] under the instruction budget,
// charging Cycles/Instrs exactly as the interpreter would at every
// exit shape: side exit, fall-through, fault, loop-back, budget stop.
// Budget must be >= 1. A return of (0, nil) means the first micro-op
// is a fused pair the budget cannot cover whole — the caller single-
// steps its first half instead, matching the oracle's stop point.
func (m *Machine) runBlock(b *block, start int, budget uint64) (uint64, error) {
	uops := b.uops
	auth := b.auth
	var base, baseI, done uint64

	// commit finalizes an exit after executing uops[..i]: charge the
	// prefix deltas, retire the instructions, move PC.
	commit := func(i int, nextPC uint64) uint64 {
		delta := uint64(uops[i].icnt) - baseI
		m.Cycles += uops[i].cum - base
		m.Instrs += delta
		m.PC = nextPC
		return done + delta
	}
	// fail reproduces Step's fault accounting: the faulting
	// instruction is charged and retired on the machine, PC stays at
	// it, but it is excluded from the scheduler-visible count. (A
	// fused pair cannot fault, so the exclusion is always exactly 1.)
	fail := func(i int, err error) (uint64, error) {
		delta := uint64(uops[i].icnt) - baseI
		m.Cycles += uops[i].cum - base
		m.Instrs += delta
		m.PC = uops[i].pc
		return done + delta - 1, m.fault(err)
	}
	// loopback accounts a taken branch back to the block entry and
	// reports whether the budget allows another in-block iteration.
	loopback := func(i int) bool {
		delta := uint64(uops[i].icnt) - baseI
		m.Cycles += uops[i].cum - base
		m.Instrs += delta
		done += delta
		if done < budget {
			return true
		}
		m.PC = b.entry
		return false
	}

outer:
	for {
		base, baseI = 0, 0
		if start > 0 {
			base = uops[start-1].cum
			baseI = uint64(uops[start-1].icnt)
		}
		end := len(uops)
		limited := false
		if rem := budget - done; uint64(uops[end-1].icnt)-baseI > rem {
			// Each uop retires at least one instruction, so at most rem
			// uops fit; walk back over a fused pair straddling the limit.
			if e := start + int(rem); e < end {
				end = e
			}
			for end > start && uint64(uops[end-1].icnt)-baseI > rem {
				end--
			}
			if end == start {
				if done > 0 {
					m.PC = uops[start].pc
				}
				return done, nil
			}
			limited = true
		}

		for i := start; i < end; i++ {
			u := &uops[i]
			switch u.op {
			case isa.NOP, uopGoto:
			case uopCall:
				m.regs[isa.LR] = u.pc + isa.InstrSize
			case isa.MOVZ:
				m.setr(u.rd, u.imm)
			case isa.MOV:
				m.setr(u.rd, m.regs[u.rn])
			case isa.ADD:
				m.setr(u.rd, m.regs[u.rn]+m.regs[u.rm])
			case isa.ADDI:
				m.setr(u.rd, m.regs[u.rn]+u.imm)
			case isa.SUB:
				m.setr(u.rd, m.regs[u.rn]-m.regs[u.rm])
			case isa.SUBI:
				m.setr(u.rd, m.regs[u.rn]-u.imm)
			case isa.EOR:
				m.setr(u.rd, m.regs[u.rn]^m.regs[u.rm])
			case isa.AND:
				m.setr(u.rd, m.regs[u.rn]&m.regs[u.rm])
			case isa.ORR:
				m.setr(u.rd, m.regs[u.rn]|m.regs[u.rm])
			case isa.LSLI:
				m.setr(u.rd, m.regs[u.rn]<<u.imm)
			case isa.LSRI:
				m.setr(u.rd, m.regs[u.rn]>>u.imm)
			case isa.MUL:
				m.setr(u.rd, m.regs[u.rn]*m.regs[u.rm])

			case isa.LDR:
				v, err := m.Mem.Read64(m.regs[u.rn] + u.imm)
				if err != nil {
					return fail(i, err)
				}
				m.setr(u.rd, v)
			case isa.LDRPOST:
				addr := m.regs[u.rn]
				v, err := m.Mem.Read64(addr)
				if err != nil {
					return fail(i, err)
				}
				m.setr(u.rd, v)
				m.setr(u.rn, addr+u.imm)
			case isa.STR:
				if err := m.Mem.Write64(m.regs[u.rn]+u.imm, m.regs[u.rd]); err != nil {
					return fail(i, err)
				}
			case isa.STRPRE:
				addr := m.regs[u.rn] + u.imm
				if err := m.Mem.Write64(addr, m.regs[u.rd]); err != nil {
					return fail(i, err)
				}
				m.setr(u.rn, addr)
			case isa.LDP:
				bse := m.regs[u.rn] + u.imm
				v1, err := m.Mem.Read64(bse)
				if err != nil {
					return fail(i, err)
				}
				v2, err := m.Mem.Read64(bse + 8)
				if err != nil {
					return fail(i, err)
				}
				m.setr(u.rd, v1)
				m.setr(u.rm, v2)
			case isa.LDPPOST:
				bse := m.regs[u.rn]
				v1, err := m.Mem.Read64(bse)
				if err != nil {
					return fail(i, err)
				}
				v2, err := m.Mem.Read64(bse + 8)
				if err != nil {
					return fail(i, err)
				}
				m.setr(u.rd, v1)
				m.setr(u.rm, v2)
				m.setr(u.rn, bse+u.imm)
			case isa.STP:
				bse := m.regs[u.rn] + u.imm
				if err := m.Mem.Write64(bse, m.regs[u.rd]); err != nil {
					return fail(i, err)
				}
				if err := m.Mem.Write64(bse+8, m.regs[u.rm]); err != nil {
					return fail(i, err)
				}
			case isa.STPPRE:
				bse := m.regs[u.rn] + u.imm
				if err := m.Mem.Write64(bse, m.regs[u.rd]); err != nil {
					return fail(i, err)
				}
				if err := m.Mem.Write64(bse+8, m.regs[u.rm]); err != nil {
					return fail(i, err)
				}
				m.setr(u.rn, bse)

			case isa.B:
				if u.target == b.entry {
					if loopback(i) {
						start = 0
						continue outer
					}
					return done, nil
				}
				return commit(i, u.target), nil
			case isa.BL:
				m.regs[isa.LR] = u.pc + isa.InstrSize
				return commit(i, u.target), nil
			case isa.BR:
				t := m.regs[u.rn]
				if err := m.checkTarget(t); err != nil {
					return fail(i, err)
				}
				return commit(i, t), nil
			case isa.BLR:
				t := m.regs[u.rn]
				if m.CallCFI != nil {
					if err := m.CallCFI(t); err != nil {
						return fail(i, err)
					}
				}
				if err := m.checkTarget(t); err != nil {
					return fail(i, err)
				}
				m.regs[isa.LR] = u.pc + isa.InstrSize
				return commit(i, t), nil
			case isa.RET:
				t := m.regs[u.rn]
				if m.RetCFI != nil {
					if err := m.RetCFI(u.pc, t); err != nil {
						return fail(i, err)
					}
				}
				if err := m.checkTarget(t); err != nil {
					return fail(i, err)
				}
				return commit(i, t), nil
			case isa.RETAA:
				t, _ := auth.Auth(pa.KeyIA, m.regs[isa.LR], m.regs[isa.SP])
				if err := m.checkTarget(t); err != nil {
					return fail(i, err)
				}
				return commit(i, t), nil

			case isa.BCND:
				if m.condHolds(u.cond) {
					if u.target == b.entry {
						if loopback(i) {
							start = 0
							continue outer
						}
						return done, nil
					}
					return commit(i, u.target), nil
				}
			case isa.CBZ:
				if m.regs[u.rn] == 0 {
					if u.target == b.entry {
						if loopback(i) {
							start = 0
							continue outer
						}
						return done, nil
					}
					return commit(i, u.target), nil
				}
			case isa.CBNZ:
				if m.regs[u.rn] != 0 {
					if u.target == b.entry {
						if loopback(i) {
							start = 0
							continue outer
						}
						return done, nil
					}
					return commit(i, u.target), nil
				}

			case isa.CMP:
				m.setFlagsSub(m.regs[u.rn], m.regs[u.rm])
			case isa.CMPI:
				m.setFlagsSub(m.regs[u.rn], u.imm)

			case isa.PACIA:
				m.setr(u.rd, auth.AddPAC(pa.KeyIA, m.regs[u.rd], m.regs[u.rn]))
			case isa.PACIB:
				m.setr(u.rd, auth.AddPAC(pa.KeyIB, m.regs[u.rd], m.regs[u.rn]))
			case isa.AUTIA:
				v, _ := auth.Auth(pa.KeyIA, m.regs[u.rd], m.regs[u.rn])
				m.setr(u.rd, v)
			case isa.AUTIB:
				v, _ := auth.Auth(pa.KeyIB, m.regs[u.rd], m.regs[u.rn])
				m.setr(u.rd, v)
			case isa.PACIASP:
				m.regs[isa.LR] = auth.AddPAC(pa.KeyIA, m.regs[isa.LR], m.regs[isa.SP])
			case isa.AUTIASP:
				v, _ := auth.Auth(pa.KeyIA, m.regs[isa.LR], m.regs[isa.SP])
				m.regs[isa.LR] = v
			case isa.PACGA:
				m.setr(u.rd, auth.PACGA(m.regs[u.rn], m.regs[u.rm]))
			case isa.XPACI:
				m.setr(u.rd, auth.StripPAC(m.regs[u.rd]))
			case uopPACPair:
				v1, v2 := auth.AddPACPair(pa.KeyID(u.aux), m.regs[u.rd], m.regs[u.rm], m.regs[u.rn])
				m.setr(u.rd, v1)
				m.setr(u.rm, v2)

			case isa.HLT:
				m.Halted = true
				return commit(i, u.pc+isa.InstrSize), nil
			}
		}

		if limited {
			// Budget stop at a micro-op boundary: park a resume point so
			// the next quantum re-enters the block without a dispatch.
			delta := uint64(uops[end-1].icnt) - baseI
			m.Cycles += uops[end-1].cum - base
			m.Instrs += delta
			m.PC = uops[end].pc
			m.resumeB, m.resumeIdx = b, end
			return done + delta, nil
		}
		return commit(end-1, b.next), nil
	}
}

// setr writes a register, discarding XZR writes like SetReg. The XZR
// slot of m.regs is kept zero (SetRegs forces it), so reads go
// straight to the array.
func (m *Machine) setr(r uint8, v uint64) {
	if r != uint8(isa.XZR) {
		m.regs[r] = v
	}
}
