package cpu

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"pacstack/internal/isa"
	"pacstack/internal/mem"
	"pacstack/internal/pa"
)

// Differential tests for the trace-compiled engine: every observable
// — registers, flags, PC, Cycles, Instrs, memory, fault identity —
// must be bit-for-bit identical between block-compiled execution and
// the single-step oracle, for every exit shape a block has: side
// exits, fall-throughs, in-block loop-backs, followed calls, fused
// PAC pairs, budget stops mid-block, faults, and invalidation by
// Map/Protect.

const (
	btCode  = uint64(0x10000)
	btData  = uint64(0x200000)
	btStack = uint64(0x300000)
)

func btAuth(seed int64) *pa.Authenticator {
	return pa.New(pa.GenerateKeysFrom(rand.New(rand.NewSource(seed))), pa.DefaultConfig())
}

// btBoot assembles src at btCode and returns a machine with an RX code
// mapping, an RW data page at btData, and an RW stack page below
// btStack (SP preset to btStack).
func btBoot(t *testing.T, src string, auth *pa.Authenticator) *Machine {
	t.Helper()
	prog, err := isa.Assemble(btCode, src)
	if err != nil {
		t.Fatal(err)
	}
	return btBootProg(t, prog, auth)
}

func btBootProg(t *testing.T, prog *isa.Program, auth *pa.Authenticator) *Machine {
	t.Helper()
	mm := mem.New()
	codeLen := (prog.Size()/mem.PageSize + 1) * mem.PageSize
	if err := mm.Map(btCode, codeLen, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := mm.Map(btData, mem.PageSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := mm.Map(btStack-mem.PageSize, mem.PageSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	m := New(prog, mm, auth)
	m.PC = btCode
	m.SetReg(isa.SP, btStack)
	return m
}

// btSnapshot captures everything observable about a machine: the
// architectural state plus the whole data page.
type btSnapshot struct {
	State State
	Data  [mem.PageSize / 8]uint64
	Err   string
}

func btSnap(t *testing.T, m *Machine, err error) btSnapshot {
	t.Helper()
	s := btSnapshot{State: m.CaptureState()}
	if err != nil {
		s.Err = err.Error()
	}
	adv := mem.NewAdversary(m.Mem)
	for i := range s.Data {
		v, perr := adv.Peek(btData + uint64(8*i))
		if perr != nil {
			t.Fatal(perr)
		}
		s.Data[i] = v
	}
	return s
}

// btDiff runs the same scenario with the block engine on and off and
// fails the test if any observable differs. The scenario builds its
// own machine (fresh memory, same keys) and returns the run error.
func btDiff(t *testing.T, name string, scenario func(t *testing.T) (*Machine, error)) {
	t.Helper()
	restore := SetBlockCompile(true)
	m1, err1 := scenario(t)
	blocked := btSnap(t, m1, err1)
	SetBlockCompile(false)
	m2, err2 := scenario(t)
	oracle := btSnap(t, m2, err2)
	restore()
	if !reflect.DeepEqual(blocked, oracle) {
		t.Errorf("%s: block-compiled run diverged from single-step:\nblock:  %+v\noracle: %+v",
			name, blocked.State, oracle.State)
		if blocked.Err != oracle.Err {
			t.Errorf("%s: errors differ: block=%q oracle=%q", name, blocked.Err, oracle.Err)
		}
	}
}

// A workload touching every block shape: a counted outer loop (in-
// block loop-back), a callee reached through a followed BL that signs
// and authenticates with PACIASP/RETAA, a fused PACIA pair, loads and
// stores, and conditional side exits.
const btProgram = `
main:
    movz X28, #4919
    movz X10, #2097152      ; btData
    movz X9, #25            ; outer iterations
outer:
    add  X0, X0, X9
    bl   fn
    str  X0, [X10, #0]
    ldr  X1, [X10, #0]
    cmp  X1, #40
    b.lt skip
    eor  X2, X2, X1
skip:
    sub  X9, X9, #1
    cbnz X9, outer
    movz X3, #7
    hlt
fn:
    paciasp
    pacia X4, X28           ; fused pair head
    pacia X5, X28           ; fused pair tail
    autia X4, X28
    autia X5, X28
    add  X0, X0, X1
    retaa
`

func TestBlockDifferentialLoopsCallsPAC(t *testing.T) {
	btDiff(t, "loops-calls-pac", func(t *testing.T) (*Machine, error) {
		m := btBoot(t, btProgram, btAuth(7))
		return m, m.Run(100_000)
	})
}

// TestBlockDifferentialRandomPrograms sweeps seeded random structured
// programs — arithmetic bodies, forward skips, stores/loads, calls
// with PAC prologues, a counted loop — through both engines.
func TestBlockDifferentialRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := randBlockyProgram(rng)
		btDiff(t, "random", func(t *testing.T) (*Machine, error) {
			m := btBootProg(t, prog, btAuth(seed))
			m.SetReg(isa.X28, 0x1337)
			return m, m.Run(500_000)
		})
	}
}

// randBlockyProgram builds a random program with the control-flow
// shapes the block engine compiles: straight-line arithmetic, forward
// conditional skips, memory traffic, direct calls (PACIASP/RETAA and
// plain RET callees), and a counted outer loop.
func randBlockyProgram(rng *rand.Rand) *isa.Program {
	b := isa.NewBuilder(btCode)
	iters := int64(2 + rng.Intn(6))
	b.Emit(
		isa.Instr{Op: isa.MOVZ, Rd: isa.X10, Imm: int64(btData)},
		isa.Instr{Op: isa.MOVZ, Rd: isa.X9, Imm: iters},
	)
	b.Label("outer")
	segs := 2 + rng.Intn(4)
	for s := 0; s < segs; s++ {
		ins, _ := randArith(rng, 3+rng.Intn(6))
		b.Emit(ins...)
		switch rng.Intn(4) {
		case 0: // forward conditional skip
			skip := "skip" + string(rune('a'+s))
			b.Emit(
				isa.Instr{Op: isa.CMPI, Rn: isa.Reg(rng.Intn(8)), Imm: int64(rng.Intn(100))},
				isa.Instr{Op: isa.BCND, Cond: isa.Cond([]isa.Cond{isa.EQ, isa.NE, isa.LT, isa.GE}[rng.Intn(4)]), Label: skip},
			)
			more, _ := randArith(rng, 1+rng.Intn(3))
			b.Emit(more...)
			b.Label(skip)
		case 1: // memory round-trip
			off := int64(8 * rng.Intn(32))
			r := isa.Reg(rng.Intn(8))
			b.Emit(
				isa.Instr{Op: isa.STR, Rd: r, Rn: isa.X10, Imm: off},
				isa.Instr{Op: isa.LDR, Rd: isa.Reg(rng.Intn(8)), Rn: isa.X10, Imm: off},
			)
		case 2: // call a PAC-framed callee
			b.Emit(isa.Instr{Op: isa.BL, Label: "fnpac"})
		case 3: // call a plain callee
			b.Emit(isa.Instr{Op: isa.BL, Label: "fnplain"})
		}
	}
	b.Emit(
		isa.Instr{Op: isa.SUBI, Rd: isa.X9, Rn: isa.X9, Imm: 1},
		isa.Instr{Op: isa.CBNZ, Rn: isa.X9, Label: "outer"},
		isa.Instr{Op: isa.HLT},
	)
	b.Label("fnpac")
	b.Emit(isa.Instr{Op: isa.PACIASP})
	ins, _ := randArith(rng, 1+rng.Intn(4))
	b.Emit(ins...)
	b.Emit(
		isa.Instr{Op: isa.PACIA, Rd: isa.X4, Rn: isa.X28},
		isa.Instr{Op: isa.PACIA, Rd: isa.X5, Rn: isa.X28},
		isa.Instr{Op: isa.AUTIA, Rd: isa.X4, Rn: isa.X28},
		isa.Instr{Op: isa.AUTIA, Rd: isa.X5, Rn: isa.X28},
		isa.Instr{Op: isa.RETAA},
	)
	b.Label("fnplain")
	more, _ := randArith(rng, 1+rng.Intn(4))
	b.Emit(more...)
	b.Emit(isa.Instr{Op: isa.RET, Rn: isa.LR})
	return b.MustLink()
}

// TestBlockStepNSlicedBudgets drives the block engine through StepN
// with adversarial budget slicings — including budgets that stop
// mid-block and straddle the fused pair — and checks the machine
// against an oracle advanced by exactly the same instruction counts.
func TestBlockStepNSlicedBudgets(t *testing.T) {
	for _, budgets := range [][]uint64{{1}, {2}, {3}, {7}, {64}, {1, 5, 2, 64, 3}} {
		auth := btAuth(3)
		restore := SetBlockCompile(true)
		m := btBoot(t, btProgram, auth)
		SetBlockCompile(false)
		o := btBoot(t, btProgram, auth)
		restore()

		bi := 0
		for !m.Halted {
			restore := SetBlockCompile(true)
			n, err := m.StepN(budgets[bi%len(budgets)])
			restore()
			bi++
			if err != nil {
				t.Fatalf("budgets %v: block run faulted: %v", budgets, err)
			}
			// Advance the oracle by the instructions StepN says retired.
			for k := uint64(0); k < n; k++ {
				if err := o.Step(); err != nil {
					t.Fatalf("budgets %v: oracle faulted: %v", budgets, err)
				}
			}
			if m.CaptureState() != o.CaptureState() {
				t.Fatalf("budgets %v: state diverged after %d instrs:\nblock:  %+v\noracle: %+v",
					budgets, o.Instrs, m.CaptureState(), o.CaptureState())
			}
		}
		if !o.Halted {
			t.Fatalf("budgets %v: oracle did not halt with the block engine", budgets)
		}
	}
}

// TestBlockInvalidationProtectMidRun revokes execute permission on the
// code page while a compiled block (and a parked resume point) covers
// it: the generation bump must invalidate the block and the next fetch
// must fault exactly like the oracle's.
func TestBlockInvalidationProtectMidRun(t *testing.T) {
	btDiff(t, "protect-mid-run", func(t *testing.T) (*Machine, error) {
		m := btBoot(t, btProgram, btAuth(9))
		// Run far enough that the loop body is compiled hot, stopping
		// mid-quantum so a resume point can be parked inside a block.
		if _, err := m.StepN(75); err != nil {
			return m, err
		}
		if err := m.Mem.Protect(btCode, mem.PageSize, mem.PermR); err != nil {
			t.Fatal(err)
		}
		_, err := m.StepN(100_000)
		if err == nil {
			t.Fatal("expected a fetch fault after exec permission was revoked")
		}
		return m, err
	})
}

// TestBlockInvalidationMapMidRun maps an additional executable region
// mid-run — the generation bump must rebuild blocks, and execution
// that branches into the new region must behave identically.
func TestBlockInvalidationMapMidRun(t *testing.T) {
	// The program spins until X11 is nonzero, then branches through X12
	// into a second code region that halts.
	src := `
main:
    movz X9, #60
spin:
    add  X0, X0, #1
    sub  X9, X9, #1
    cbnz X9, spin
    br   X12
`
	second := `
land:
    movz X3, #77
    hlt
`
	btDiff(t, "map-mid-run", func(t *testing.T) (*Machine, error) {
		prog1, err := isa.Assemble(btCode, src)
		if err != nil {
			t.Fatal(err)
		}
		prog2, err := isa.Assemble(btCode+2*mem.PageSize, second)
		if err != nil {
			t.Fatal(err)
		}
		merged := isa.MergePrograms(prog1, prog2)
		mm := mem.New()
		if err := mm.Map(btCode, mem.PageSize, mem.PermRX); err != nil {
			t.Fatal(err)
		}
		if err := mm.Map(btData, mem.PageSize, mem.PermRW); err != nil {
			t.Fatal(err)
		}
		m := New(merged, mm, btAuth(11))
		m.PC = btCode
		m.SetReg(isa.SP, btStack)
		m.SetReg(isa.X12, btCode+2*mem.PageSize)
		// Let the spin loop get hot and compiled...
		if _, err := m.StepN(40); err != nil {
			return m, err
		}
		// ...then map the landing region executable mid-run.
		if err := m.Mem.Map(btCode+2*mem.PageSize, mem.PageSize, mem.PermRX); err != nil {
			t.Fatal(err)
		}
		return m, m.Run(100_000)
	})
}

// TestBlockExecRegionShrinkFaultsIdentically shrinks the executable
// image mid-run so a superblock that followed a static branch across
// pages must stop compiling at the dead boundary and the branch must
// fault in the interpreter, bit-for-bit like the oracle.
func TestBlockExecRegionShrinkFaultsIdentically(t *testing.T) {
	helper := `
helper:
    add  X0, X0, #3
    ret  LR
`
	btDiff(t, "exec-shrink", func(t *testing.T) (*Machine, error) {
		helperBase := btCode + mem.PageSize
		bld := isa.NewBuilder(btCode)
		bld.Emit(isa.Instr{Op: isa.MOVZ, Rd: isa.X9, Imm: 50})
		bld.Label("loop")
		bld.Emit(
			isa.Instr{Op: isa.BL, Target: helperBase}, // cross-page direct call
			isa.Instr{Op: isa.SUBI, Rd: isa.X9, Rn: isa.X9, Imm: 1},
			isa.Instr{Op: isa.CBNZ, Rn: isa.X9, Label: "loop"},
			isa.Instr{Op: isa.HLT},
		)
		prog1 := bld.MustLink()
		prog2, err := isa.Assemble(helperBase, helper)
		if err != nil {
			t.Fatal(err)
		}
		merged := isa.MergePrograms(prog1, prog2)
		mm := mem.New()
		if err := mm.Map(btCode, 2*mem.PageSize, mem.PermRX); err != nil {
			t.Fatal(err)
		}
		if err := mm.Map(btData, mem.PageSize, mem.PermRW); err != nil {
			t.Fatal(err)
		}
		if err := mm.Map(btStack-mem.PageSize, mem.PageSize, mem.PermRW); err != nil {
			t.Fatal(err)
		}
		m := New(merged, mm, btAuth(13))
		m.PC = btCode
		m.SetReg(isa.SP, btStack)
		// Hot: the loop superblock follows the BL into the helper page.
		if _, err := m.StepN(30); err != nil {
			return m, err
		}
		// Shrink: the helper page loses execute. The next call must
		// fault at the BL exactly as the interpreter would.
		if err := mm.Protect(helperBase, mem.PageSize, mem.PermR); err != nil {
			t.Fatal(err)
		}
		_, err = m.StepN(100_000)
		if err == nil {
			t.Fatal("expected a fault after the helper page lost execute permission")
		}
		return m, err
	})
}

// TestBlockArmedHookFallsBackMidBlock arms a PreStep hook — the fault
// engine's injection point — while a resume point is parked inside a
// compiled block, right before the batched PAC pair. The armed hook
// must force per-instruction fallback: it observes every subsequent
// instruction boundary at exactly the oracle's (Instrs, PC) points,
// and the corruption lands identically.
func TestBlockArmedHookFallsBackMidBlock(t *testing.T) {
	type obs struct {
		Instrs uint64
		PC     uint64
	}
	var blockedLog, oracleLog []obs
	run := func(t *testing.T, log *[]obs) (*Machine, error) {
		m := btBoot(t, btProgram, btAuth(17))
		// Stop with a resume point parked mid-block: the btProgram
		// main loop plus callee is longer than this odd budget.
		if _, err := m.StepN(41); err != nil {
			return m, err
		}
		// Fire inside the callee after its PAC ops, where LR holds the
		// sealed return address and RETAA is the next consumer: with a
		// flipped address bit the authentication fails and poisons the
		// target. The PC trigger lands between the compiled block's
		// entry and its batched PAC pair having executed — the armed
		// hook must have forced all of it back to single-step.
		fireAt := m.Prog.MustLookup("fn") + 5*isa.InstrSize // the add before retaa
		fired := false
		m.PreStep = func(m *Machine) error {
			*log = append(*log, obs{m.Instrs, m.PC})
			if !fired && m.PC == fireAt {
				fired = true
				m.SetReg(isa.LR, m.Reg(isa.LR)^(1<<30))
			}
			return nil
		}
		_, err := m.StepN(10_000)
		return m, err
	}
	restore := SetBlockCompile(true)
	m1, err1 := run(t, &blockedLog)
	blocked := btSnap(t, m1, err1)
	SetBlockCompile(false)
	m2, err2 := run(t, &oracleLog)
	oracle := btSnap(t, m2, err2)
	restore()
	if err1 == nil || err2 == nil {
		t.Fatalf("corrupted LR must fault: block=%v oracle=%v", err1, err2)
	}
	var tf *TranslationFault
	if !errors.As(err1, &tf) {
		t.Errorf("expected a translation fault from the poisoned return, got %v", err1)
	}
	if !reflect.DeepEqual(blocked, oracle) {
		t.Errorf("armed-hook run diverged:\nblock:  %+v\noracle: %+v", blocked.State, oracle.State)
	}
	if !reflect.DeepEqual(blockedLog, oracleLog) {
		t.Errorf("hook observation streams differ: block saw %d points, oracle %d",
			len(blockedLog), len(oracleLog))
	}
}

// TestBlockTraceHookStreamsIdentical attaches a Trace hook mid-run:
// tracing forces per-instruction fallback, and the traced tail plus
// final state must match the oracle's exactly.
func TestBlockTraceHookStreamsIdentical(t *testing.T) {
	type ev struct {
		PC uint64
		Op isa.Op
	}
	run := func(t *testing.T, log *[]ev) (*Machine, error) {
		m := btBoot(t, btProgram, btAuth(23))
		if _, err := m.StepN(50); err != nil { // blocks hot, resume parked
			return m, err
		}
		m.Trace = func(pc uint64, ins isa.Instr) { *log = append(*log, ev{pc, ins.Op}) }
		return m, m.Run(100_000)
	}
	var blockedLog, oracleLog []ev
	restore := SetBlockCompile(true)
	m1, err1 := run(t, &blockedLog)
	blocked := btSnap(t, m1, err1)
	SetBlockCompile(false)
	m2, err2 := run(t, &oracleLog)
	oracle := btSnap(t, m2, err2)
	restore()
	if !reflect.DeepEqual(blocked, oracle) {
		t.Errorf("traced run diverged:\nblock:  %+v\noracle: %+v", blocked.State, oracle.State)
	}
	if !reflect.DeepEqual(blockedLog, oracleLog) {
		t.Fatalf("trace streams differ: block %d events, oracle %d events", len(blockedLog), len(oracleLog))
	}
	if len(blockedLog) == 0 {
		t.Fatal("trace hook observed nothing")
	}
}

// TestSetRegsForcesXZRSlot: the block executor reads the register
// array directly, which is only sound if the XZR slot is pinned to
// zero across SetRegs (context switches restore full register files).
func TestSetRegsForcesXZRSlot(t *testing.T) {
	m := btBoot(t, "movz X0, #1\nhlt", btAuth(1))
	var r [isa.NumRegs]uint64
	for i := range r {
		r[i] = 0xDEAD
	}
	m.SetRegs(r)
	if got := m.Reg(isa.XZR); got != 0 {
		t.Fatalf("XZR reads %#x after SetRegs, want 0", got)
	}
	if m.Regs()[isa.XZR] != 0 {
		t.Fatalf("XZR slot = %#x after SetRegs, want 0", m.Regs()[isa.XZR])
	}
}

// TestBlockCostModelSwapMidRun changes the cost model between quanta:
// the flat table and all per-block cycle prefixes must be rebuilt, so
// cycle accounting matches an oracle running under the same swap.
func TestBlockCostModelSwapMidRun(t *testing.T) {
	btDiff(t, "cost-swap", func(t *testing.T) (*Machine, error) {
		m := btBoot(t, btProgram, btAuth(29))
		if _, err := m.StepN(70); err != nil {
			return m, err
		}
		m.Cost.PAC = 9
		m.Cost.Load = 11
		return m, m.Run(100_000)
	})
}

// TestBlockEngineToggleRoundTrip flips the engine off and on mid-run;
// every segment must continue exactly where the previous one stopped.
func TestBlockEngineToggleRoundTrip(t *testing.T) {
	auth := btAuth(31)
	restore := SetBlockCompile(false)
	oracle := btBoot(t, btProgram, auth)
	errO := oracle.Run(100_000)
	restore()

	m := btBoot(t, btProgram, auth)
	var errB error
	on := true
	for !m.Halted && errB == nil {
		r := SetBlockCompile(on)
		_, errB = m.StepN(37)
		r()
		on = !on
	}
	if (errB == nil) != (errO == nil) {
		t.Fatalf("toggled run error %v, oracle %v", errB, errO)
	}
	if m.CaptureState() != oracle.CaptureState() {
		t.Fatalf("toggled run diverged:\ntoggled: %+v\noracle:  %+v", m.CaptureState(), oracle.CaptureState())
	}
}
