package isa

import (
	"strings"
	"testing"
)

// Fuzz targets: the assembler and decoder sit on untrusted input
// boundaries (user .s files, code bytes from memory) and must reject
// garbage with errors, never panic. `go test` runs the seed corpus;
// `go test -fuzz=FuzzAssemble ./internal/isa` explores further.

func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"nop",
		"main:\n  movz X0, #42\n  ret",
		"paciasp\nstr LR, [SP, #-16]!\nldr LR, [SP], #16\nretaa",
		"b.ne loop\nloop: nop",
		"ldp FP, LR, [SP], #16",
		"stp X19, X20, [SP, #-32]!",
		"movz X1, =label\nlabel: svc #93",
		"x: b x",
		"cmp X0, #-1",
		"ldr X0, [X1, #0x7fffffff]",
		"add X0, X1, X2 ; trailing comment",
		"label-with-dash: nop",
		"ret X17",
		"b.zz nowhere",
		"pacga X0, X1, X2",
		":",
		"a: a: nop",
		"ldr X0, [SP], #8!",
		"svc",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(0x1000, src)
		if err != nil {
			return
		}
		// Accepted programs must disassemble and re-encode cleanly
		// (modulo immediates outside the 32-bit encoding, which
		// EncodeProgram rejects with an error, not a panic).
		_ = p.Disassemble()
		if img, err := EncodeProgram(p); err == nil {
			back, err := DecodeProgram(p.Base, img)
			if err != nil {
				t.Fatalf("encoded program failed to decode: %v", err)
			}
			if !SameCode(p, back) {
				t.Fatalf("image roundtrip changed the program:\n%s", p.Disassemble())
			}
		} else if !strings.Contains(err.Error(), "encoding") && !strings.Contains(err.Error(), "range") {
			t.Fatalf("unexpected encode error class: %v", err)
		}
	})
}

func FuzzDecode(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{byte(MOVZ), 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{byte(RETAA), 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < InstrSize {
			return
		}
		var w [InstrSize]byte
		copy(w[:], raw)
		ins, err := Decode(w)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to the same bytes' semantic
		// content.
		w2, err := Encode(ins)
		if err != nil {
			t.Fatalf("decoded instruction %v failed to re-encode: %v", ins, err)
		}
		back, err := Decode(w2)
		if err != nil || stripped(back) != stripped(ins) {
			t.Fatalf("re-encode changed %v -> %v (%v)", ins, back, err)
		}
		_ = ins.String()
	})
}
