package isa

import (
	"math"
	"math/rand"
	"testing"
)

// randInstr draws a random valid instruction for roundtrip testing.
func randInstr(rng *rand.Rand) Instr {
	ins := Instr{
		Op: Op(rng.Intn(int(numOps))),
		Rd: Reg(rng.Intn(int(NumRegs))),
		Rn: Reg(rng.Intn(int(NumRegs))),
		Rm: Reg(rng.Intn(int(NumRegs))),
	}
	if usesTarget(ins.Op) {
		ins.Target = uint64(rng.Uint32())
	} else {
		ins.Imm = int64(int32(rng.Uint32()))
	}
	if ins.Op == BCND {
		ins.Cond = Cond(rng.Intn(6))
		ins.Rd = 0
	}
	return ins
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		ins := randInstr(rng)
		w, err := Encode(ins)
		if err != nil {
			t.Fatalf("encode %v: %v", ins, err)
		}
		back, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %v: %v", ins, err)
		}
		if stripped(back) != stripped(ins) {
			t.Fatalf("roundtrip changed %+v -> %+v", ins, back)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	cases := []Instr{
		{Op: numOps},
		{Op: MOVZ, Rd: NumRegs},
		{Op: MOVZ, Rd: X0, Imm: math.MaxInt32 + 1},
		{Op: MOVZ, Rd: X0, Imm: math.MinInt32 - 1},
		{Op: B, Target: math.MaxUint32 + 1},
	}
	for _, ins := range cases {
		if _, err := Encode(ins); err == nil {
			t.Errorf("encoded invalid %+v", ins)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := [][InstrSize]byte{
		{0xFF, 0, 0, 0, 0, 0, 0, 0},                // undefined opcode
		{byte(MOVZ), 0xEE, 0, 0, 0, 0, 0, 0},       // register out of range
		{byte(BCND), 0x77, 0, 0, 0, 0, 0, 0},       // undefined condition
		{byte(MOVZ), 0, byte(NumRegs), 0, 0, 0, 0}, // Rn out of range
	}
	for _, w := range bad {
		if _, err := Decode(w); err == nil {
			t.Errorf("decoded garbage %v", w)
		}
	}
}

func TestProgramImageRoundTrip(t *testing.T) {
	src := `
main:
    movz X0, #5
    movz X9, =helper
    blr X9
loop:
    sub X0, X0, #1
    cmp X0, #0
    b.ne loop
    cbz X0, out
out:
    svc #0
helper:
    pacia X1, X28
    autia X1, X28
    retaa
`
	p := MustAssemble(0x40000, src)
	img, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != len(p.Instrs)*InstrSize {
		t.Fatalf("image size %d", len(img))
	}
	back, err := DecodeProgram(0x40000, img)
	if err != nil {
		t.Fatal(err)
	}
	if !SameCode(p, back) {
		t.Fatalf("decoded image differs:\n%s\nvs\n%s", p.Disassemble(), back.Disassemble())
	}
	// Branch targets survive as absolute addresses.
	for i, ins := range back.Instrs {
		if usesTarget(ins.Op) && ins.Target != p.Instrs[i].Target {
			t.Errorf("instr %d target %#x != %#x", i, ins.Target, p.Instrs[i].Target)
		}
	}
}

func TestDecodeProgramRejectsBadLength(t *testing.T) {
	if _, err := DecodeProgram(0, make([]byte, InstrSize+1)); err == nil {
		t.Error("odd-length image decoded")
	}
}

func TestSameCodeDetectsDifferences(t *testing.T) {
	a := MustAssemble(0, "movz X0, #1\nret")
	b := MustAssemble(0, "movz X0, #2\nret")
	c := MustAssemble(8, "movz X0, #1\nret")
	if SameCode(a, b) {
		t.Error("different immediates compared equal")
	}
	if SameCode(a, c) {
		t.Error("different bases compared equal")
	}
	if !SameCode(a, MustAssemble(0, "movz X0, #1\nret")) {
		t.Error("identical programs compared unequal")
	}
}
