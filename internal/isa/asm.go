package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses assembler text into a linked Program based at base.
//
// The accepted syntax is the one produced by Program.Disassemble plus
// the usual conveniences: `;` and `//` comments, blank lines, labels
// on their own line or preceding an instruction, decimal or 0x
// immediates, and `MOVZ Xd, =label` for taking a code address.
func Assemble(base uint64, src string) (*Program, error) {
	b := NewBuilder(base)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if label == "" || strings.ContainsAny(label, " \t,[]#") {
				return nil, fmt.Errorf("isa: line %d: bad label %q", lineNo+1, label)
			}
			if _, dup := b.labels[label]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", lineNo+1, label)
			}
			b.Label(label)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		ins, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %v", lineNo+1, err)
		}
		b.Emit(ins)
	}
	return b.Link()
}

// MustAssemble is Assemble that panics on error, for static test
// fixtures.
func MustAssemble(base uint64, src string) *Program {
	p, err := Assemble(base, src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseInstr(line string) (Instr, error) {
	mn := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mn, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	mn = strings.ToUpper(mn)

	// B.cond
	if strings.HasPrefix(mn, "B.") {
		cond, err := parseCond(mn[2:])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: BCND, Cond: cond, Label: rest}, nil
	}

	ops := splitOperands(rest)
	switch mn {
	case "NOP":
		return Instr{Op: NOP}, nil
	case "HLT":
		return Instr{Op: HLT}, nil
	case "PACIASP":
		return Instr{Op: PACIASP}, nil
	case "AUTIASP":
		return Instr{Op: AUTIASP}, nil
	case "RETAA":
		return Instr{Op: RETAA}, nil
	case "RET":
		if len(ops) == 1 {
			r, err := parseReg(ops[0])
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: RET, Rn: r}, nil
		}
		return Instr{Op: RET, Rn: LR}, nil
	case "SVC":
		imm, err := parseImm(ops, 0)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: SVC, Imm: imm}, nil
	case "MOVZ", "MOV":
		if len(ops) != 2 {
			return Instr{}, fmt.Errorf("%s needs 2 operands", mn)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return Instr{}, err
		}
		if strings.HasPrefix(ops[1], "#") {
			imm, err := parseImm(ops, 1)
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: MOVZ, Rd: rd, Imm: imm}, nil
		}
		if strings.HasPrefix(ops[1], "=") {
			return Instr{Op: MOVZ, Rd: rd, Label: ops[1][1:]}, nil
		}
		rn, err := parseReg(ops[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: MOV, Rd: rd, Rn: rn}, nil
	case "ADD", "SUB":
		return parseArith3(mn, ops)
	case "EOR", "AND", "ORR", "MUL":
		if len(ops) != 3 {
			return Instr{}, fmt.Errorf("%s needs 3 operands", mn)
		}
		rd, e1 := parseReg(ops[0])
		rn, e2 := parseReg(ops[1])
		rm, e3 := parseReg(ops[2])
		if err := firstErr(e1, e2, e3); err != nil {
			return Instr{}, err
		}
		op := map[string]Op{"EOR": EOR, "AND": AND, "ORR": ORR, "MUL": MUL}[mn]
		return Instr{Op: op, Rd: rd, Rn: rn, Rm: rm}, nil
	case "LSL", "LSR":
		if len(ops) != 3 {
			return Instr{}, fmt.Errorf("%s needs 3 operands", mn)
		}
		rd, e1 := parseReg(ops[0])
		rn, e2 := parseReg(ops[1])
		imm, e3 := parseImm(ops, 2)
		if err := firstErr(e1, e2, e3); err != nil {
			return Instr{}, err
		}
		op := LSLI
		if mn == "LSR" {
			op = LSRI
		}
		return Instr{Op: op, Rd: rd, Rn: rn, Imm: imm}, nil
	case "LDR", "STR":
		return parseLoadStore(mn, rest)
	case "LDP", "STP":
		return parseLoadStorePair(mn, rest)
	case "B":
		return Instr{Op: B, Label: rest}, nil
	case "BL":
		return Instr{Op: BL, Label: rest}, nil
	case "BR", "BLR":
		r, err := parseReg(rest)
		if err != nil {
			return Instr{}, err
		}
		op := BR
		if mn == "BLR" {
			op = BLR
		}
		return Instr{Op: op, Rn: r}, nil
	case "CBZ", "CBNZ":
		if len(ops) != 2 {
			return Instr{}, fmt.Errorf("%s needs 2 operands", mn)
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return Instr{}, err
		}
		op := CBZ
		if mn == "CBNZ" {
			op = CBNZ
		}
		return Instr{Op: op, Rn: r, Label: ops[1]}, nil
	case "CMP":
		if len(ops) != 2 {
			return Instr{}, fmt.Errorf("CMP needs 2 operands")
		}
		rn, err := parseReg(ops[0])
		if err != nil {
			return Instr{}, err
		}
		if strings.HasPrefix(ops[1], "#") {
			imm, err := parseImm(ops, 1)
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: CMPI, Rn: rn, Imm: imm}, nil
		}
		rm, err := parseReg(ops[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: CMP, Rn: rn, Rm: rm}, nil
	case "PACIA", "PACIB", "AUTIA", "AUTIB":
		if len(ops) != 2 {
			return Instr{}, fmt.Errorf("%s needs 2 operands", mn)
		}
		rd, e1 := parseReg(ops[0])
		rn, e2 := parseReg(ops[1])
		if err := firstErr(e1, e2); err != nil {
			return Instr{}, err
		}
		op := map[string]Op{"PACIA": PACIA, "PACIB": PACIB, "AUTIA": AUTIA, "AUTIB": AUTIB}[mn]
		return Instr{Op: op, Rd: rd, Rn: rn}, nil
	case "PACGA":
		if len(ops) != 3 {
			return Instr{}, fmt.Errorf("PACGA needs 3 operands")
		}
		rd, e1 := parseReg(ops[0])
		rn, e2 := parseReg(ops[1])
		rm, e3 := parseReg(ops[2])
		if err := firstErr(e1, e2, e3); err != nil {
			return Instr{}, err
		}
		return Instr{Op: PACGA, Rd: rd, Rn: rn, Rm: rm}, nil
	case "XPACI":
		r, err := parseReg(rest)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: XPACI, Rd: r}, nil
	}
	return Instr{}, fmt.Errorf("unknown mnemonic %q", mn)
}

func parseArith3(mn string, ops []string) (Instr, error) {
	if len(ops) != 3 {
		return Instr{}, fmt.Errorf("%s needs 3 operands", mn)
	}
	rd, e1 := parseReg(ops[0])
	rn, e2 := parseReg(ops[1])
	if err := firstErr(e1, e2); err != nil {
		return Instr{}, err
	}
	if strings.HasPrefix(ops[2], "#") {
		imm, err := parseImm(ops, 2)
		if err != nil {
			return Instr{}, err
		}
		op := ADDI
		if mn == "SUB" {
			op = SUBI
		}
		return Instr{Op: op, Rd: rd, Rn: rn, Imm: imm}, nil
	}
	rm, err := parseReg(ops[2])
	if err != nil {
		return Instr{}, err
	}
	op := ADD
	if mn == "SUB" {
		op = SUB
	}
	return Instr{Op: op, Rd: rd, Rn: rn, Rm: rm}, nil
}

// parseLoadStore handles LDR/STR with [Xn, #imm], [Xn], #imm (post)
// and [Xn, #imm]! (pre) addressing.
func parseLoadStore(mn, rest string) (Instr, error) {
	rt, addr, err := splitTransfer(rest)
	if err != nil {
		return Instr{}, err
	}
	rd, err := parseReg(rt)
	if err != nil {
		return Instr{}, err
	}
	base, imm, mode, err := parseAddr(addr)
	if err != nil {
		return Instr{}, err
	}
	var op Op
	switch {
	case mn == "LDR" && mode == addrPost:
		op = LDRPOST
	case mn == "LDR":
		if mode == addrPre {
			return Instr{}, fmt.Errorf("LDR pre-index not supported")
		}
		op = LDR
	case mn == "STR" && mode == addrPre:
		op = STRPRE
	case mn == "STR":
		if mode == addrPost {
			return Instr{}, fmt.Errorf("STR post-index not supported")
		}
		op = STR
	}
	return Instr{Op: op, Rd: rd, Rn: base, Imm: imm}, nil
}

func parseLoadStorePair(mn, rest string) (Instr, error) {
	comma := strings.Index(rest, ",")
	if comma < 0 {
		return Instr{}, fmt.Errorf("%s needs a register pair", mn)
	}
	r1s := strings.TrimSpace(rest[:comma])
	rt, addr, err := splitTransfer(strings.TrimSpace(rest[comma+1:]))
	if err != nil {
		return Instr{}, err
	}
	r1, e1 := parseReg(r1s)
	r2, e2 := parseReg(rt)
	if err := firstErr(e1, e2); err != nil {
		return Instr{}, err
	}
	base, imm, mode, err := parseAddr(addr)
	if err != nil {
		return Instr{}, err
	}
	var op Op
	switch {
	case mn == "LDP" && mode == addrPost:
		op = LDPPOST
	case mn == "LDP" && mode == addrOffset:
		op = LDP
	case mn == "STP" && mode == addrPre:
		op = STPPRE
	case mn == "STP" && mode == addrOffset:
		op = STP
	default:
		return Instr{}, fmt.Errorf("%s addressing mode not supported", mn)
	}
	return Instr{Op: op, Rd: r1, Rm: r2, Rn: base, Imm: imm}, nil
}

// splitTransfer splits "Xd, [ ... ]" into the register and address
// parts.
func splitTransfer(rest string) (reg, addr string, err error) {
	i := strings.Index(rest, ",")
	if i < 0 {
		return "", "", fmt.Errorf("missing address operand in %q", rest)
	}
	return strings.TrimSpace(rest[:i]), strings.TrimSpace(rest[i+1:]), nil
}

type addrMode int

const (
	addrOffset addrMode = iota
	addrPre
	addrPost
)

func parseAddr(s string) (base Reg, imm int64, mode addrMode, err error) {
	if !strings.HasPrefix(s, "[") {
		return 0, 0, 0, fmt.Errorf("bad address %q", s)
	}
	close := strings.Index(s, "]")
	if close < 0 {
		return 0, 0, 0, fmt.Errorf("unterminated address %q", s)
	}
	inner := s[1:close]
	tail := strings.TrimSpace(s[close+1:])
	parts := splitOperands(inner)
	if len(parts) == 0 {
		return 0, 0, 0, fmt.Errorf("empty address %q", s)
	}
	base, err = parseReg(parts[0])
	if err != nil {
		return 0, 0, 0, err
	}
	if len(parts) == 2 {
		imm, err = parseImm(parts, 1)
		if err != nil {
			return 0, 0, 0, err
		}
	} else if len(parts) > 2 {
		return 0, 0, 0, fmt.Errorf("bad address %q", s)
	}
	switch {
	case tail == "!":
		return base, imm, addrPre, nil
	case strings.HasPrefix(tail, ","):
		if len(parts) != 1 {
			return 0, 0, 0, fmt.Errorf("bad post-index address %q", s)
		}
		imm, err = parseImm([]string{strings.TrimSpace(tail[1:])}, 0)
		if err != nil {
			return 0, 0, 0, err
		}
		return base, imm, addrPost, nil
	case tail == "":
		return base, imm, addrOffset, nil
	}
	return 0, 0, 0, fmt.Errorf("bad address suffix %q", tail)
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (Reg, error) {
	switch strings.ToUpper(s) {
	case "SP":
		return SP, nil
	case "XZR":
		return XZR, nil
	case "FP":
		return FP, nil
	case "LR":
		return LR, nil
	}
	u := strings.ToUpper(s)
	if strings.HasPrefix(u, "X") {
		n, err := strconv.Atoi(u[1:])
		if err == nil && n >= 0 && n <= 30 {
			return Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(ops []string, i int) (int64, error) {
	if i >= len(ops) {
		return 0, fmt.Errorf("missing immediate")
	}
	s := strings.TrimPrefix(ops[i], "#")
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full-range unsigned hex immediates.
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad immediate %q", ops[i])
		}
		return int64(u), nil
	}
	return v, nil
}

func parseCond(s string) (Cond, error) {
	switch strings.ToUpper(s) {
	case "EQ":
		return EQ, nil
	case "NE":
		return NE, nil
	case "LT":
		return LT, nil
	case "LE":
		return LE, nil
	case "GT":
		return GT, nil
	case "GE":
		return GE, nil
	}
	return 0, fmt.Errorf("bad condition %q", s)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
