// Package isa defines the instruction set of the simulated AArch64-
// flavoured machine used throughout this reproduction: the registers,
// opcodes and instruction representation, a program builder with label
// resolution, a text assembler, and a disassembler.
//
// The subset covers everything the PACStack instrumentation sequences
// (paper Listings 1–8) and the synthetic workloads need: data
// processing, loads/stores with pre/post indexing and pairs, direct
// and indirect branches, conditional branches, the ARMv8.3-A pointer
// authentication instructions, and supervisor calls.
//
// Instructions occupy eight address units and have a binary encoding
// (encode.go): the loader writes the encoded image into execute-only
// pages, so code bytes are real data in simulated memory, while the
// CPU executes from the symbolic Program image for speed. Both views
// are kept consistent (see the encoding tests).
package isa

import "fmt"

// Reg names a general purpose register, SP or XZR.
type Reg uint8

// General purpose registers. X29 is the frame pointer, X30 the link
// register. PACStack reserves X28 as the chain register (CR) and
// ShadowCallStack reserves X18, mirroring the AArch64 conventions.
const (
	X0 Reg = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29
	X30
	SP
	XZR
	NumRegs = XZR + 1
)

// Register aliases used by the ABI and the protection schemes.
const (
	FP  = X29 // frame pointer
	LR  = X30 // link register
	CR  = X28 // PACStack chain register
	SCS = X18 // ShadowCallStack base register
)

// String returns the assembler name of the register.
func (r Reg) String() string {
	switch r {
	case SP:
		return "SP"
	case XZR:
		return "XZR"
	case FP:
		return "FP"
	case LR:
		return "LR"
	}
	return fmt.Sprintf("X%d", int(r))
}

// Op is an opcode.
type Op int

// The instruction set.
const (
	NOP Op = iota

	// Data processing.
	MOVZ // MOVZ Xd, #imm          Rd = Imm (full 64-bit immediate in this model)
	MOV  // MOV Xd, Xn             Rd = Rn (also to/from SP)
	ADD  // ADD Xd, Xn, Xm
	ADDI // ADD Xd, Xn, #imm
	SUB  // SUB Xd, Xn, Xm
	SUBI // SUB Xd, Xn, #imm
	EOR  // EOR Xd, Xn, Xm
	AND  // AND Xd, Xn, Xm
	ORR  // ORR Xd, Xn, Xm
	LSLI // LSL Xd, Xn, #imm
	LSRI // LSR Xd, Xn, #imm
	MUL  // MUL Xd, Xn, Xm

	// Loads and stores (64-bit).
	LDR     // LDR Xd, [Xn, #imm]
	STR     // STR Xd, [Xn, #imm]
	LDRPOST // LDR Xd, [Xn], #imm          post-indexed
	STRPRE  // STR Xd, [Xn, #imm]!         pre-indexed
	LDP     // LDP Xd, Xe, [Xn, #imm]
	STP     // STP Xd, Xe, [Xn, #imm]
	LDPPOST // LDP Xd, Xe, [Xn], #imm
	STPPRE  // STP Xd, Xe, [Xn, #imm]!

	// Branches.
	B    // B label
	BL   // BL label                Rd(LR) = return address
	BR   // BR Xn
	BLR  // BLR Xn
	RET  // RET / RET Xn            branch to Rn (default LR)
	BCND // B.cond label
	CBZ  // CBZ Xn, label
	CBNZ // CBNZ Xn, label

	// Comparison.
	CMP  // CMP Xn, Xm
	CMPI // CMP Xn, #imm

	// Pointer authentication (ARMv8.3-A).
	PACIA   // PACIA Xd, Xn            sign Rd with IA key, modifier Rn
	PACIB   // PACIB Xd, Xn
	AUTIA   // AUTIA Xd, Xn            authenticate Rd with IA key, modifier Rn
	AUTIB   // AUTIB Xd, Xn
	PACIASP // PACIASP                 sign LR with IA key, modifier SP
	AUTIASP // AUTIASP                 authenticate LR with IA key, modifier SP
	RETAA   // RETAA                   AUTIASP + RET fused
	PACGA   // PACGA Xd, Xn, Xm        generic 32-bit MAC
	XPACI   // XPACI Xd                strip PAC

	// System.
	SVC // SVC #imm                supervisor call
	HLT // HLT                     stop the machine (test harness only)

	numOps
)

// NumOps is the number of defined opcodes; flat per-op tables (e.g.
// the CPU's cycle-cost table) are sized by it.
const NumOps = int(numOps)

// Cond is a branch condition for BCND.
type Cond int

// Branch conditions (signed comparisons).
const (
	EQ Cond = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the assembler suffix of the condition.
func (c Cond) String() string {
	switch c {
	case EQ:
		return "EQ"
	case NE:
		return "NE"
	case LT:
		return "LT"
	case LE:
		return "LE"
	case GT:
		return "GT"
	case GE:
		return "GE"
	}
	return fmt.Sprintf("Cond(%d)", int(c))
}

// InstrSize is the size of one instruction in address units. The
// simulator encoding (see encode.go) packs each instruction into
// eight bytes: one word of operation/operand fields and one word of
// immediate.
const InstrSize = 8

// Instr is one symbolic instruction.
type Instr struct {
	Op   Op
	Rd   Reg   // destination (first operand register)
	Rn   Reg   // first source / base register
	Rm   Reg   // second source / pair register
	Imm  int64 // immediate / offset
	Cond Cond  // for BCND

	// Label is the symbolic branch target; Link resolves it into
	// Target (an absolute address).
	Label  string
	Target uint64
}

// String disassembles the instruction.
func (i Instr) String() string {
	lbl := func() string {
		if i.Label != "" {
			return i.Label
		}
		return fmt.Sprintf("%#x", i.Target)
	}
	switch i.Op {
	case NOP:
		return "NOP"
	case MOVZ:
		return fmt.Sprintf("MOVZ %s, #%d", i.Rd, i.Imm)
	case MOV:
		return fmt.Sprintf("MOV %s, %s", i.Rd, i.Rn)
	case ADD:
		return fmt.Sprintf("ADD %s, %s, %s", i.Rd, i.Rn, i.Rm)
	case ADDI:
		return fmt.Sprintf("ADD %s, %s, #%d", i.Rd, i.Rn, i.Imm)
	case SUB:
		return fmt.Sprintf("SUB %s, %s, %s", i.Rd, i.Rn, i.Rm)
	case SUBI:
		return fmt.Sprintf("SUB %s, %s, #%d", i.Rd, i.Rn, i.Imm)
	case EOR:
		return fmt.Sprintf("EOR %s, %s, %s", i.Rd, i.Rn, i.Rm)
	case AND:
		return fmt.Sprintf("AND %s, %s, %s", i.Rd, i.Rn, i.Rm)
	case ORR:
		return fmt.Sprintf("ORR %s, %s, %s", i.Rd, i.Rn, i.Rm)
	case LSLI:
		return fmt.Sprintf("LSL %s, %s, #%d", i.Rd, i.Rn, i.Imm)
	case LSRI:
		return fmt.Sprintf("LSR %s, %s, #%d", i.Rd, i.Rn, i.Imm)
	case MUL:
		return fmt.Sprintf("MUL %s, %s, %s", i.Rd, i.Rn, i.Rm)
	case LDR:
		return fmt.Sprintf("LDR %s, [%s, #%d]", i.Rd, i.Rn, i.Imm)
	case STR:
		return fmt.Sprintf("STR %s, [%s, #%d]", i.Rd, i.Rn, i.Imm)
	case LDRPOST:
		return fmt.Sprintf("LDR %s, [%s], #%d", i.Rd, i.Rn, i.Imm)
	case STRPRE:
		return fmt.Sprintf("STR %s, [%s, #%d]!", i.Rd, i.Rn, i.Imm)
	case LDP:
		return fmt.Sprintf("LDP %s, %s, [%s, #%d]", i.Rd, i.Rm, i.Rn, i.Imm)
	case STP:
		return fmt.Sprintf("STP %s, %s, [%s, #%d]", i.Rd, i.Rm, i.Rn, i.Imm)
	case LDPPOST:
		return fmt.Sprintf("LDP %s, %s, [%s], #%d", i.Rd, i.Rm, i.Rn, i.Imm)
	case STPPRE:
		return fmt.Sprintf("STP %s, %s, [%s, #%d]!", i.Rd, i.Rm, i.Rn, i.Imm)
	case B:
		return fmt.Sprintf("B %s", lbl())
	case BL:
		return fmt.Sprintf("BL %s", lbl())
	case BR:
		return fmt.Sprintf("BR %s", i.Rn)
	case BLR:
		return fmt.Sprintf("BLR %s", i.Rn)
	case RET:
		if i.Rn != LR {
			return fmt.Sprintf("RET %s", i.Rn)
		}
		return "RET"
	case BCND:
		return fmt.Sprintf("B.%s %s", i.Cond, lbl())
	case CBZ:
		return fmt.Sprintf("CBZ %s, %s", i.Rn, lbl())
	case CBNZ:
		return fmt.Sprintf("CBNZ %s, %s", i.Rn, lbl())
	case CMP:
		return fmt.Sprintf("CMP %s, %s", i.Rn, i.Rm)
	case CMPI:
		return fmt.Sprintf("CMP %s, #%d", i.Rn, i.Imm)
	case PACIA:
		return fmt.Sprintf("PACIA %s, %s", i.Rd, i.Rn)
	case PACIB:
		return fmt.Sprintf("PACIB %s, %s", i.Rd, i.Rn)
	case AUTIA:
		return fmt.Sprintf("AUTIA %s, %s", i.Rd, i.Rn)
	case AUTIB:
		return fmt.Sprintf("AUTIB %s, %s", i.Rd, i.Rn)
	case PACIASP:
		return "PACIASP"
	case AUTIASP:
		return "AUTIASP"
	case RETAA:
		return "RETAA"
	case PACGA:
		return fmt.Sprintf("PACGA %s, %s, %s", i.Rd, i.Rn, i.Rm)
	case XPACI:
		return fmt.Sprintf("XPACI %s", i.Rd)
	case SVC:
		return fmt.Sprintf("SVC #%d", i.Imm)
	case HLT:
		return "HLT"
	}
	return fmt.Sprintf("Op(%d)", int(i.Op))
}
