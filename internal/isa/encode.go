package isa

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding: each instruction packs into InstrSize (8) bytes,
// little-endian —
//
//	byte 0      opcode
//	byte 1      Rd (or the condition for BCND, whose Rd is unused)
//	byte 2      Rn
//	byte 3      Rm
//	bytes 4..7  immediate (int32) or branch target (uint32)
//
// Labels are link-time artifacts and are not part of the encoding; a
// decoded program therefore carries resolved targets only, like a
// stripped binary.

// ErrImmRange reports an immediate that does not fit the 32-bit
// encoding field.
var ErrImmRange = fmt.Errorf("isa: immediate out of the 32-bit encoding range")

// usesTarget reports whether the op's immediate field carries a
// resolved branch target rather than a data immediate.
func usesTarget(op Op) bool {
	switch op {
	case B, BL, BCND, CBZ, CBNZ:
		return true
	}
	return false
}

// Encode packs one instruction.
func Encode(ins Instr) ([InstrSize]byte, error) {
	var out [InstrSize]byte
	if ins.Op < 0 || ins.Op >= numOps {
		return out, fmt.Errorf("isa: cannot encode unknown op %d", int(ins.Op))
	}
	if ins.Rd >= NumRegs || ins.Rn >= NumRegs || ins.Rm >= NumRegs {
		return out, fmt.Errorf("isa: cannot encode register out of range in %s", ins)
	}
	out[0] = byte(ins.Op)
	if ins.Op == BCND {
		out[1] = byte(ins.Cond)
	} else {
		out[1] = byte(ins.Rd)
	}
	out[2] = byte(ins.Rn)
	out[3] = byte(ins.Rm)

	if usesTarget(ins.Op) {
		if ins.Target > math.MaxUint32 {
			return out, fmt.Errorf("isa: branch target %#x exceeds the encoding: %w", ins.Target, ErrImmRange)
		}
		binary.LittleEndian.PutUint32(out[4:], uint32(ins.Target))
	} else {
		if ins.Imm < math.MinInt32 || ins.Imm > math.MaxInt32 {
			return out, fmt.Errorf("isa: immediate %d in %s: %w", ins.Imm, ins, ErrImmRange)
		}
		binary.LittleEndian.PutUint32(out[4:], uint32(int32(ins.Imm)))
	}
	return out, nil
}

// Decode unpacks one instruction. Labels are not recovered.
func Decode(b [InstrSize]byte) (Instr, error) {
	op := Op(b[0])
	if op < 0 || op >= numOps {
		return Instr{}, fmt.Errorf("isa: undefined opcode byte %#x", b[0])
	}
	ins := Instr{Op: op, Rn: Reg(b[2]), Rm: Reg(b[3])}
	if op == BCND {
		ins.Cond = Cond(b[1])
		if ins.Cond < EQ || ins.Cond > GE {
			return Instr{}, fmt.Errorf("isa: undefined condition byte %#x", b[1])
		}
	} else {
		ins.Rd = Reg(b[1])
	}
	if ins.Rd >= NumRegs || ins.Rn >= NumRegs || ins.Rm >= NumRegs {
		return Instr{}, fmt.Errorf("isa: register byte out of range in encoded %v", b)
	}
	raw := binary.LittleEndian.Uint32(b[4:])
	if usesTarget(op) {
		ins.Target = uint64(raw)
	} else {
		ins.Imm = int64(int32(raw))
	}
	return ins, nil
}

// EncodeProgram serializes the whole instruction image (symbols are
// not part of it).
func EncodeProgram(p *Program) ([]byte, error) {
	out := make([]byte, 0, len(p.Instrs)*InstrSize)
	for i, ins := range p.Instrs {
		w, err := Encode(ins)
		if err != nil {
			return nil, fmt.Errorf("isa: at %#x: %w", p.Base+uint64(i)*InstrSize, err)
		}
		out = append(out, w[:]...)
	}
	return out, nil
}

// DecodeProgram rebuilds a Program (without symbols) from an encoded
// image based at base.
func DecodeProgram(base uint64, image []byte) (*Program, error) {
	if len(image)%InstrSize != 0 {
		return nil, fmt.Errorf("isa: image length %d is not a multiple of %d", len(image), InstrSize)
	}
	p := &Program{Base: base, Symbols: map[string]uint64{}}
	for off := 0; off < len(image); off += InstrSize {
		var w [InstrSize]byte
		copy(w[:], image[off:])
		ins, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("isa: at %#x: %w", base+uint64(off), err)
		}
		p.Instrs = append(p.Instrs, ins)
	}
	return p, nil
}

// stripped returns ins without link-time-only fields, for comparing a
// linked program against its decoded image.
func stripped(ins Instr) Instr {
	ins.Label = ""
	if ins.Op == BCND {
		ins.Rd = 0
	}
	return ins
}

// SameCode reports whether two programs encode identical instruction
// streams (ignoring labels and symbols).
func SameCode(a, b *Program) bool {
	if a.Base != b.Base || len(a.Instrs) != len(b.Instrs) {
		return false
	}
	for i := range a.Instrs {
		if stripped(a.Instrs[i]) != stripped(b.Instrs[i]) {
			return false
		}
	}
	return true
}
