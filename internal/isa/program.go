package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Program is a linked instruction image: a contiguous sequence of
// instructions based at Base, with a symbol table mapping labels to
// addresses.
type Program struct {
	Base    uint64
	Instrs  []Instr
	Symbols map[string]uint64
}

// Size returns the program footprint in address units.
func (p *Program) Size() uint64 {
	return uint64(len(p.Instrs)) * InstrSize
}

// At returns the instruction at address addr, or an error if addr is
// outside the image or misaligned.
func (p *Program) At(addr uint64) (Instr, error) {
	if addr < p.Base || addr >= p.Base+p.Size() {
		return Instr{}, fmt.Errorf("isa: address %#x outside program [%#x, %#x)", addr, p.Base, p.Base+p.Size())
	}
	if (addr-p.Base)%InstrSize != 0 {
		return Instr{}, fmt.Errorf("isa: misaligned instruction address %#x", addr)
	}
	return p.Instrs[(addr-p.Base)/InstrSize], nil
}

// Lookup returns the address of a label.
func (p *Program) Lookup(label string) (uint64, bool) {
	a, ok := p.Symbols[label]
	return a, ok
}

// MustLookup is Lookup that panics on unknown labels; intended for
// test and harness setup code where a missing symbol is a programming
// error.
func (p *Program) MustLookup(label string) uint64 {
	a, ok := p.Symbols[label]
	if !ok {
		panic("isa: unknown label " + label)
	}
	return a
}

// SymbolFor returns the label whose code region contains addr,
// together with the offset into it. Used by tracing and fault
// reporting.
func (p *Program) SymbolFor(addr uint64) (string, uint64) {
	best := ""
	var bestAddr uint64
	for name, a := range p.Symbols {
		if a <= addr && (best == "" || a > bestAddr) {
			best, bestAddr = name, a
		}
	}
	if best == "" {
		return "", 0
	}
	return best, addr - bestAddr
}

// Disassemble renders the whole program with addresses and labels.
func (p *Program) Disassemble() string {
	type sym struct {
		name string
		addr uint64
	}
	syms := make([]sym, 0, len(p.Symbols))
	for n, a := range p.Symbols {
		syms = append(syms, sym{n, a})
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].addr < syms[j].addr })

	var b strings.Builder
	si := 0
	for i, ins := range p.Instrs {
		addr := p.Base + uint64(i)*InstrSize
		for si < len(syms) && syms[si].addr == addr {
			fmt.Fprintf(&b, "%s:\n", syms[si].name)
			si++
		}
		fmt.Fprintf(&b, "  %#08x  %s\n", addr, ins)
	}
	return b.String()
}

// MergePrograms links several programs into one image spanning all of
// them: based at the lowest Base, with the address gaps between inputs
// filled by undefined instructions, so fetching from a gap faults like
// fetching any other undefined opcode. Symbol tables are merged.
// Overlapping images or duplicate symbols panic: the inputs come from
// assemblers and generators, so either is a programming error.
func MergePrograms(progs ...*Program) *Program {
	if len(progs) == 0 {
		panic("isa: MergePrograms with no inputs")
	}
	sorted := make([]*Program, len(progs))
	copy(sorted, progs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	out := &Program{Base: sorted[0].Base, Symbols: make(map[string]uint64)}
	filler := Instr{Op: numOps} // undefined: faults if ever fetched
	for _, p := range sorted {
		end := out.Base + out.Size()
		if p.Base < end {
			panic(fmt.Sprintf("isa: MergePrograms overlap at %#x", p.Base))
		}
		if gap := p.Base - end; gap%InstrSize != 0 {
			panic(fmt.Sprintf("isa: MergePrograms misaligned base %#x", p.Base))
		} else {
			for i := uint64(0); i < gap/InstrSize; i++ {
				out.Instrs = append(out.Instrs, filler)
			}
		}
		out.Instrs = append(out.Instrs, p.Instrs...)
		for name, addr := range p.Symbols {
			if _, dup := out.Symbols[name]; dup {
				panic("isa: MergePrograms duplicate symbol " + name)
			}
			out.Symbols[name] = addr
		}
	}
	return out
}

// Builder accumulates instructions and labels and links them into a
// Program.
type Builder struct {
	base   uint64
	instrs []Instr
	labels map[string]int // label -> instruction index
}

// NewBuilder returns a Builder for a program based at base.
func NewBuilder(base uint64) *Builder {
	return &Builder{base: base, labels: make(map[string]int)}
}

// Label defines a label at the current position. Defining the same
// label twice panics: duplicate symbols are always a bug in the
// generator.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic("isa: duplicate label " + name)
	}
	b.labels[name] = len(b.instrs)
}

// Emit appends instructions.
func (b *Builder) Emit(ins ...Instr) {
	b.instrs = append(b.instrs, ins...)
}

// Here returns the address the next emitted instruction will have.
func (b *Builder) Here() uint64 {
	return b.base + uint64(len(b.instrs))*InstrSize
}

// Link resolves all labels and returns the Program.
func (b *Builder) Link() (*Program, error) {
	p := &Program{
		Base:    b.base,
		Instrs:  make([]Instr, len(b.instrs)),
		Symbols: make(map[string]uint64, len(b.labels)),
	}
	copy(p.Instrs, b.instrs)
	for name, idx := range b.labels {
		p.Symbols[name] = b.base + uint64(idx)*InstrSize
	}
	for i := range p.Instrs {
		ins := &p.Instrs[i]
		if ins.Label == "" {
			continue
		}
		switch ins.Op {
		case B, BL, BCND, CBZ, CBNZ:
			addr, ok := p.Symbols[ins.Label]
			if !ok {
				return nil, fmt.Errorf("isa: undefined label %q at %#x", ins.Label, p.Base+uint64(i)*InstrSize)
			}
			ins.Target = addr
		case MOVZ:
			// MOVZ Xd, =label loads a code address (function pointer).
			addr, ok := p.Symbols[ins.Label]
			if !ok {
				return nil, fmt.Errorf("isa: undefined label %q at %#x", ins.Label, p.Base+uint64(i)*InstrSize)
			}
			ins.Imm = int64(addr)
		default:
			return nil, fmt.Errorf("isa: label on non-branch instruction %s", ins)
		}
	}
	return p, nil
}

// MustLink is Link that panics on error, for generators whose label
// sets are static.
func (b *Builder) MustLink() *Program {
	p, err := b.Link()
	if err != nil {
		panic(err)
	}
	return p
}
