package isa

import (
	"strings"
	"testing"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		X0: "X0", X17: "X17", X28: "X28", FP: "FP", LR: "LR", SP: "SP", XZR: "XZR",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestAliases(t *testing.T) {
	if FP != X29 || LR != X30 || CR != X28 || SCS != X18 {
		t.Error("register aliases do not match the AArch64 / PACStack conventions")
	}
}

func TestBuilderLink(t *testing.T) {
	b := NewBuilder(0x10000)
	b.Label("main")
	b.Emit(Instr{Op: BL, Label: "f"})
	b.Emit(Instr{Op: HLT})
	b.Label("f")
	b.Emit(Instr{Op: RET, Rn: LR})
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if p.MustLookup("f") != 0x10010 {
		t.Errorf("f at %#x", p.MustLookup("f"))
	}
	if p.Instrs[0].Target != 0x10010 {
		t.Errorf("BL target = %#x", p.Instrs[0].Target)
	}
	if p.Size() != 3*InstrSize {
		t.Errorf("Size = %d", p.Size())
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder(0)
	b.Emit(Instr{Op: B, Label: "nowhere"})
	if _, err := b.Link(); err == nil {
		t.Error("undefined label linked without error")
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate label")
		}
	}()
	b := NewBuilder(0)
	b.Label("x")
	b.Label("x")
}

func TestMovzLabelTakesAddress(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Emit(Instr{Op: MOVZ, Rd: X0, Label: "target"})
	b.Emit(Instr{Op: HLT})
	b.Label("target")
	b.Emit(Instr{Op: RET})
	p := b.MustLink()
	if p.Instrs[0].Imm != 0x1010 {
		t.Errorf("MOVZ =target Imm = %#x, want 0x1010", p.Instrs[0].Imm)
	}
}

func TestProgramAt(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Emit(Instr{Op: NOP}, Instr{Op: HLT})
	p := b.MustLink()
	ins, err := p.At(0x1008)
	if err != nil || ins.Op != HLT {
		t.Errorf("At(0x1008) = %v, %v", ins, err)
	}
	if _, err := p.At(0x1010); err == nil {
		t.Error("At past end succeeded")
	}
	if _, err := p.At(0x1004); err == nil {
		t.Error("misaligned At succeeded")
	}
	if _, err := p.At(0xFF8); err == nil {
		t.Error("At before base succeeded")
	}
}

func TestSymbolFor(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Label("a")
	b.Emit(Instr{Op: NOP}, Instr{Op: NOP})
	b.Label("b")
	b.Emit(Instr{Op: NOP})
	p := b.MustLink()
	if sym, off := p.SymbolFor(0x1008); sym != "a" || off != 8 {
		t.Errorf("SymbolFor(0x1008) = %s+%d", sym, off)
	}
	if sym, off := p.SymbolFor(0x1010); sym != "b" || off != 0 {
		t.Errorf("SymbolFor(0x1010) = %s+%d", sym, off)
	}
}

func TestAssembleListing1(t *testing.T) {
	// The -mbranch-protection prologue/epilogue of Listing 1.
	src := `
prologue:
    paciasp            ; sign LR using SP
    str LR, [SP, #-16]! ; push LR onto stack
epilogue:
    ldr LR, [SP], #16  ; pop stack onto LR
    retaa              ; verify LR and return
`
	p, err := Assemble(0x10000, src)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []Op{PACIASP, STRPRE, LDRPOST, RETAA}
	if len(p.Instrs) != len(wantOps) {
		t.Fatalf("got %d instructions", len(p.Instrs))
	}
	for i, op := range wantOps {
		if p.Instrs[i].Op != op {
			t.Errorf("instr %d = %v", i, p.Instrs[i])
		}
	}
	if p.Instrs[1].Imm != -16 {
		t.Errorf("pre-index imm = %d", p.Instrs[1].Imm)
	}
}

func TestAssembleListing3Fragment(t *testing.T) {
	// The PACStack masked prologue of Listing 3.
	src := `
prologue:
    str X28, [SP, #-32]!
    stp FP, LR, [SP, #16]
    mov X15, XZR
    pacia LR, X28
    pacia X15, X28
    eor LR, LR, X15
    mov X15, XZR
    mov X28, LR
`
	p, err := Assemble(0, src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[1].Op != STP || p.Instrs[1].Rd != FP || p.Instrs[1].Rm != LR {
		t.Errorf("stp parsed as %v", p.Instrs[1])
	}
	if p.Instrs[3].Op != PACIA || p.Instrs[3].Rd != LR || p.Instrs[3].Rn != CR {
		t.Errorf("pacia parsed as %v", p.Instrs[3])
	}
}

func TestAssembleBranchesAndConds(t *testing.T) {
	src := `
start:
    movz X0, #10
loop:
    sub X0, X0, #1
    cmp X0, #0
    b.ne loop
    cbz X0, done
    b loop
done:
    hlt
`
	p, err := Assemble(0x4000, src)
	if err != nil {
		t.Fatal(err)
	}
	bne := p.Instrs[3]
	if bne.Op != BCND || bne.Cond != NE || bne.Target != p.MustLookup("loop") {
		t.Errorf("b.ne = %+v", bne)
	}
	cbz := p.Instrs[4]
	if cbz.Op != CBZ || cbz.Target != p.MustLookup("done") {
		t.Errorf("cbz = %+v", cbz)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frob X0, X1",                    // unknown mnemonic
		"mov X0",                         // missing operand
		"ldr X0, [X99, #0]",              // bad register
		"b.xx somewhere\nsomewhere: nop", // bad condition
		"ldr X0, [SP, #0]!",              // LDR pre-index unsupported
		"str X0, [SP], #16",              // STR post-index unsupported
		"add X0, X1",                     // too few operands
		"x: nop\nx: nop",                 // duplicate label
		"bad label: nop",                 // label with space
		"cmp X0, #zz",                    // bad immediate
		"b nowhere",                      // undefined label
		"ldr X0,[]",                      // empty address (fuzzer regression)
		"ldr X0, [SP",                    // unterminated address
	}
	for _, src := range bad {
		if _, err := Assemble(0, src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestDisassembleAssembleRoundTrip(t *testing.T) {
	src := `
main:
    movz X0, #42
    movz X1, =helper
    blr X1
    mov X2, X0
    add X2, X2, #8
    sub X3, X2, X0
    eor X4, X2, X3
    and X5, X4, X2
    orr X6, X5, X4
    mul X7, X6, X2
    lsl X8, X7, #3
    lsr X9, X8, #2
    ldr X10, [SP, #0]
    str X10, [SP, #8]
    ldp FP, LR, [SP, #16]
    stp FP, LR, [SP, #16]
    ldp X19, X20, [SP], #32
    stp X19, X20, [SP, #-32]!
    cmp X0, X1
    b.le main
    pacga X11, X0, X1
    xpaci X11
    pacia X12, X28
    autia X12, X28
    pacib X13, X28
    autib X13, X28
    svc #93
    ret
helper:
    ret X17
`
	p1, err := Assemble(0x8000, src)
	if err != nil {
		t.Fatal(err)
	}
	dis := p1.Disassemble()
	// Strip addresses back off and re-assemble.
	var clean []string
	for _, line := range strings.Split(dis, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			clean = append(clean, line)
			continue
		}
		fields := strings.SplitN(line, "  ", 2)
		if len(fields) == 2 {
			clean = append(clean, fields[1])
		}
	}
	p2, err := Assemble(0x8000, strings.Join(clean, "\n"))
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, dis)
	}
	if len(p1.Instrs) != len(p2.Instrs) {
		t.Fatalf("instruction count changed: %d -> %d", len(p1.Instrs), len(p2.Instrs))
	}
	for i := range p1.Instrs {
		a, b := p1.Instrs[i], p2.Instrs[i]
		a.Label, b.Label = "", "" // labels may become raw addresses
		if a != b {
			t.Errorf("instr %d: %+v != %+v", i, a, b)
		}
	}
}

func TestCondString(t *testing.T) {
	for c, want := range map[Cond]string{EQ: "EQ", NE: "NE", LT: "LT", LE: "LE", GT: "GT", GE: "GE"} {
		if c.String() != want {
			t.Errorf("Cond %d = %q", c, c.String())
		}
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: NOP}, "NOP"},
		{Instr{Op: RET, Rn: LR}, "RET"},
		{Instr{Op: RET, Rn: X17}, "RET X17"},
		{Instr{Op: MOVZ, Rd: X3, Imm: 7}, "MOVZ X3, #7"},
		{Instr{Op: STRPRE, Rd: LR, Rn: SP, Imm: -16}, "STR LR, [SP, #-16]!"},
		{Instr{Op: LDRPOST, Rd: LR, Rn: SP, Imm: 16}, "LDR LR, [SP], #16"},
		{Instr{Op: BCND, Cond: NE, Label: "x"}, "B.NE x"},
		{Instr{Op: SVC, Imm: 93}, "SVC #93"},
		{Instr{Op: PACIA, Rd: LR, Rn: CR}, "PACIA LR, X28"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}
