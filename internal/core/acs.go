package core

import (
	"errors"
	"fmt"
)

// retBits is the width of the return-address field inside an aret;
// the tag occupies the bits above it, mirroring how PA packs a PAC
// into the unused high bits of a pointer.
const retBits = 48

// retMask extracts the return address from an aret.
const retMask = 1<<retBits - 1

// ErrAuthFailure is returned when unwinding meets a corrupted link —
// the event that crashes a PACStack process.
var ErrAuthFailure = errors.New("core: authentication failure (call stack integrity violated)")

// ErrEmpty is returned when popping an empty stack.
var ErrEmpty = errors.New("core: pop of empty call stack")

// Config selects the ACS variant.
type Config struct {
	// Mask enables PAC masking (Section 4.2). PACStack-nomask is
	// Mask: false.
	Mask bool
	// Seed is the initial modifier for auth_0. Re-seeding per thread
	// or after fork (Section 4.3) means choosing distinct seeds.
	Seed uint64
}

// Stack is one authenticated call stack.
//
// The zero-accessible surface mirrors the hardware split: CR (the
// chain register) is reachable only through the Stack API, while the
// spilled aret values are deliberately exposed — including for writing
// — through Spilled/SetSpilled, which is the attacker's window in the
// attack experiments.
type Stack struct {
	mac MAC
	cfg Config

	cr      uint64   // aret_n: the chain register
	spilled []uint64 // aret_0 .. aret_{n-1}: attacker-accessible memory
}

// New returns an empty authenticated call stack.
func New(mac MAC, cfg Config) *Stack {
	return &Stack{mac: mac, cfg: cfg, cr: cfg.Seed}
}

// Bits returns the token width b.
func (s *Stack) Bits() int { return s.mac.Bits() }

// Depth returns the number of active frames.
func (s *Stack) Depth() int { return len(s.spilled) }

// CR returns the current chain register value aret_n. The register
// itself is adversary-inaccessible; exposing it read-only here models
// that its *value* is not secret (it is spilled to the next frame on
// the next call anyway).
func (s *Stack) CR() uint64 { return s.cr }

// Spilled returns the aret stored in frame i (0 = oldest), i.e. the
// attacker-readable stack contents.
func (s *Stack) Spilled(i int) uint64 { return s.spilled[i] }

// SetSpilled overwrites frame i — the attacker's write primitive.
func (s *Stack) SetSpilled(i int, v uint64) { s.spilled[i] = v }

// computeAret builds aret = auth || ret for a return address under
// the given modifier (the previous aret), applying masking when
// configured. This is Equation (2) of Section 4 plus the Section 4.2
// mask.
func (s *Stack) computeAret(ret, prev uint64) uint64 {
	auth := s.mac.Tag(ret&retMask, prev)
	if s.cfg.Mask {
		auth ^= s.mac.Tag(0, prev)
	}
	return auth<<retBits | ret&retMask
}

// Aret computes the authenticated return address for an arbitrary
// (ret, prev) pair under this stack's key and masking configuration.
// This is the pacia computation the instrumented program performs; it
// is exposed for instrumentation-level components (setjmp binding,
// unwinders) and for attack harnesses that model what the *machine*
// — never the adversary — computes.
func (s *Stack) Aret(ret, prev uint64) uint64 {
	return s.computeAret(ret&retMask, prev)
}

// Ret extracts the return-address field of an aret.
func Ret(aret uint64) uint64 { return aret & retMask }

// Auth extracts the token field of an aret.
func Auth(aret uint64) uint64 { return aret >> retBits }

// Push records a call with return address ret: the current chain
// register is spilled to (attacker-writable) memory and CR becomes
// aret_{n+1}.
func (s *Stack) Push(ret uint64) {
	if ret&^uint64(retMask) != 0 {
		panic(fmt.Sprintf("core: return address %#x exceeds %d bits", ret, retBits))
	}
	next := s.computeAret(ret, s.cr)
	s.spilled = append(s.spilled, s.cr)
	s.cr = next
}

// Pop processes a return: the spilled aret_{i-1} is loaded from
// memory (where the attacker may have replaced it) and the chain is
// verified — H_k(ret_i, loaded) must reproduce CR's token. On success
// CR becomes the loaded value and the verified return address is
// returned. On failure ErrAuthFailure is returned and the stack is
// left unusable, modelling the process crash.
func (s *Stack) Pop() (uint64, error) {
	if len(s.spilled) == 0 {
		return 0, ErrEmpty
	}
	loaded := s.spilled[len(s.spilled)-1]
	s.spilled = s.spilled[:len(s.spilled)-1]

	ret := Ret(s.cr)
	if s.computeAret(ret, loaded) != s.cr {
		return 0, ErrAuthFailure
	}
	s.cr = loaded
	return ret, nil
}

// State is a snapshot of the ACS position, as captured by the
// setjmp binding (Section 4.4): the aret value and depth at the time
// of the snapshot.
type State struct {
	Aret  uint64
	Depth int
}

// Snapshot captures the current position for later unwinding.
func (s *Stack) Snapshot() State {
	return State{Aret: s.cr, Depth: len(s.spilled)}
}

// Unwind performs validated frame-by-frame unwinding to a previously
// captured state, the Section 9.1 design for longjmp and C++
// exceptions: each intermediate link is verified exactly as a normal
// return would, so a forged or stale target state cannot be reached
// without breaking the chain.
func (s *Stack) Unwind(to State) error {
	if to.Depth > len(s.spilled) {
		return fmt.Errorf("core: unwind target depth %d above current depth %d", to.Depth, len(s.spilled))
	}
	for len(s.spilled) > to.Depth {
		if _, err := s.Pop(); err != nil {
			return err
		}
	}
	if s.cr != to.Aret {
		return ErrAuthFailure
	}
	return nil
}
