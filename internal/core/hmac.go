package core

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
)

// HMACMAC implements MAC with HMAC-SHA-256 — the kind of software MAC
// that Cryptographic CFI (CCFI, discussed in Section 8) computes with
// AES-NI on x86. It exists for comparison: the ACS construction is
// MAC-agnostic, and benchmarking this implementation against QarmaMAC
// quantifies why a hardware tweakable MAC (PA) is what makes
// per-call-site authentication affordable.
type HMACMAC struct {
	key  []byte
	bits int
	mask uint64
}

// NewHMACMAC builds a software MAC with the given key and tag width
// 1..32.
func NewHMACMAC(key []byte, bits int) *HMACMAC {
	if bits < 1 || bits > 32 {
		panic("core: tag width out of range")
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &HMACMAC{key: k, bits: bits, mask: 1<<uint(bits) - 1}
}

// NewRandomHMACMAC draws a fresh 32-byte key.
func NewRandomHMACMAC(bits int) *HMACMAC {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		panic("core: entropy source failed: " + err.Error())
	}
	return NewHMACMAC(key, bits)
}

// Tag implements MAC.
func (m *HMACMAC) Tag(pointer, modifier uint64) uint64 {
	h := hmac.New(sha256.New, m.key)
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], pointer)
	binary.LittleEndian.PutUint64(buf[8:], modifier)
	h.Write(buf[:])
	sum := h.Sum(nil)
	return binary.LittleEndian.Uint64(sum[:8]) & m.mask
}

// Bits implements MAC.
func (m *HMACMAC) Bits() int { return m.bits }
