// Package core implements the authenticated call stack (ACS), the
// paper's primary contribution, as an architecture-independent
// library.
//
// ACS binds the whole return-address chain into a sequence of b-bit
// authentication tokens (paper Section 4, Figures 2 and 3):
//
//	auth_i = H_k(ret_i, aret_{i-1})            (i > 0)
//	auth_0 = H_k(ret_0, seed)
//	aret_i = auth_i || ret_i
//
// Only aret_n — the most recent link — must be kept out of the
// attacker's reach (the chain register); every earlier aret_i lives in
// attacker-writable memory, and any modification of one is detected
// when the chain unwinds through it.
//
// With masking (Section 4.2) the stored token is blinded by a
// pseudo-random value derived from the previous link:
//
//	auth_i = H_k(ret_i, aret_{i-1}) XOR H_k(0, aret_{i-1})
//
// which prevents the attacker from recognising token collisions among
// harvested aret values.
//
// The PACStack realization of this design (ARM PA instructions emitted
// by internal/compile) and this library share their security
// arguments; the attack experiments of Section 6 run against this
// package where cycle-accuracy is not needed.
package core

import (
	"crypto/rand"
	"encoding/binary"

	"pacstack/internal/qarma"
)

// MAC is the tweakable MAC H_k: a keyed function of a pointer and a
// 64-bit modifier producing a b-bit tag.
type MAC interface {
	// Tag returns H_k(pointer, modifier) in the low Bits() bits.
	Tag(pointer, modifier uint64) uint64
	// Bits is the tag width b.
	Bits() int
}

// QarmaMAC implements MAC with QARMA-64, the same primitive that
// backs ARM pointer authentication, truncated by folding to b bits.
type QarmaMAC struct {
	c    *qarma.Cipher
	bits int
	mask uint64
}

// NewQarmaMAC builds a MAC with the given 128-bit key (w0, k0) and
// tag width 1..32.
func NewQarmaMAC(w0, k0 uint64, bits int) *QarmaMAC {
	if bits < 1 || bits > 32 {
		panic("core: tag width out of range")
	}
	return &QarmaMAC{
		c:    qarma.New(w0, k0, qarma.Config{}),
		bits: bits,
		mask: 1<<uint(bits) - 1,
	}
}

// NewRandomQarmaMAC draws a fresh random key, as the kernel does on
// exec.
func NewRandomQarmaMAC(bits int) *QarmaMAC {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic("core: entropy source failed: " + err.Error())
	}
	return NewQarmaMAC(
		binary.LittleEndian.Uint64(buf[:8]),
		binary.LittleEndian.Uint64(buf[8:]),
		bits,
	)
}

// Tag implements MAC by folding the 64-bit QARMA output down to b
// bits so the whole ciphertext contributes.
func (m *QarmaMAC) Tag(pointer, modifier uint64) uint64 {
	ct := m.c.Encrypt(pointer, modifier)
	t := ct
	for sh := 32; sh >= m.bits; sh >>= 1 {
		t = (t >> uint(sh)) ^ (t & (1<<uint(sh) - 1))
	}
	return t & m.mask
}

// Bits implements MAC.
func (m *QarmaMAC) Bits() int { return m.bits }
