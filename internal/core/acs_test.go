package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newStack(t *testing.T, bits int, mask bool) *Stack {
	t.Helper()
	return New(NewRandomQarmaMAC(bits), Config{Mask: mask})
}

func TestPushPopRoundTrip(t *testing.T) {
	for _, mask := range []bool{false, true} {
		s := newStack(t, 16, mask)
		rets := []uint64{0x1000, 0x2004, 0x3008, 0x400c, 0x5010}
		for _, r := range rets {
			s.Push(r)
		}
		if s.Depth() != len(rets) {
			t.Fatalf("depth = %d", s.Depth())
		}
		for i := len(rets) - 1; i >= 0; i-- {
			got, err := s.Pop()
			if err != nil {
				t.Fatalf("mask=%v: pop %d: %v", mask, i, err)
			}
			if got != rets[i] {
				t.Errorf("mask=%v: pop %d = %#x, want %#x", mask, i, got, rets[i])
			}
		}
		if _, err := s.Pop(); !errors.Is(err, ErrEmpty) {
			t.Errorf("pop of empty = %v", err)
		}
	}
}

func TestPushPopProperty(t *testing.T) {
	mac := NewRandomQarmaMAC(16)
	f := func(raw []uint64) bool {
		s := New(mac, Config{Mask: true})
		rets := make([]uint64, len(raw))
		for i, r := range raw {
			rets[i] = r & retMask
			s.Push(rets[i])
		}
		for i := len(rets) - 1; i >= 0; i-- {
			got, err := s.Pop()
			if err != nil || got != rets[i] {
				return false
			}
		}
		return s.Depth() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorruptedSpillDetected(t *testing.T) {
	for _, mask := range []bool{false, true} {
		s := newStack(t, 16, mask)
		s.Push(0x1000)
		s.Push(0x2000)
		s.Push(0x3000)
		// The attacker flips a bit in the middle spilled link.
		s.SetSpilled(1, s.Spilled(1)^1)
		if _, err := s.Pop(); err != nil { // top frame is intact
			t.Fatalf("mask=%v: top pop failed: %v", mask, err)
		}
		if _, err := s.Pop(); !errors.Is(err, ErrAuthFailure) {
			t.Errorf("mask=%v: corrupted link popped: %v", mask, err)
		}
	}
}

func TestReplacedReturnAddressDetected(t *testing.T) {
	// Replacing a spilled aret with a validly-signed aret for a
	// *different* position still breaks the chain: the token in CR
	// binds the specific previous link.
	s := newStack(t, 16, true)
	s.Push(0x1000)
	other := s.CR()
	s.Push(0x2000)
	s.Push(0x3000)
	s.SetSpilled(2, other) // splice in an old link
	if _, err := s.Pop(); !errors.Is(err, ErrAuthFailure) {
		t.Errorf("spliced chain accepted: %v", err)
	}
}

func TestMaskingHidesCollisions(t *testing.T) {
	// Without masking, two aret values whose tokens collide are
	// visible as equal token fields. With masking they are blinded.
	// We construct many single-push stacks over the same MAC and
	// compare observed token-field collisions between masked and
	// unmasked variants for identical (ret, prev) inputs.
	mac := NewRandomQarmaMAC(8) // 8-bit tokens collide quickly
	const n = 2048
	rawTokens := make(map[uint64][]uint64)
	maskTokens := make(map[uint64][]uint64)
	for i := 0; i < n; i++ {
		prev := uint64(i) * 0x9E3779B97F4A7C15
		raw := New(mac, Config{Mask: false, Seed: prev})
		msk := New(mac, Config{Mask: true, Seed: prev})
		raw.Push(0x1234)
		msk.Push(0x1234)
		rawTokens[Auth(raw.CR())] = append(rawTokens[Auth(raw.CR())], prev)
		maskTokens[Auth(msk.CR())] = append(maskTokens[Auth(msk.CR())], prev)
	}
	// In the unmasked case equal token fields imply real collisions
	// that the adversary can exploit with certainty. Verify that the
	// masked construction still produces valid chains (functional
	// check; the indistinguishability argument is exercised in
	// internal/oracle).
	if len(rawTokens) == n {
		t.Error("8-bit tokens produced no collisions across 2048 samples; MAC is suspicious")
	}
	for tok, prevs := range rawTokens {
		for _, prev := range prevs {
			if mac.Tag(0x1234, prev)&0xFF != tok {
				t.Fatal("unmasked token does not match direct MAC evaluation")
			}
		}
	}
}

func TestMaskedAndUnmaskedDiffer(t *testing.T) {
	mac := NewRandomQarmaMAC(16)
	raw := New(mac, Config{Mask: false})
	msk := New(mac, Config{Mask: true})
	differ := false
	for r := uint64(0x1000); r < 0x1000+64*4; r += 4 {
		raw.Push(r)
		msk.Push(r)
		if raw.CR() != msk.CR() {
			differ = true
		}
	}
	if !differ {
		t.Error("masking never changed a token across 64 pushes")
	}
}

func TestSeedSeparatesChains(t *testing.T) {
	// Section 4.3: re-seeded chains are disjoint — the same call
	// sequence yields different aret values under different seeds.
	mac := NewRandomQarmaMAC(16)
	a := New(mac, Config{Mask: true, Seed: 1})
	b := New(mac, Config{Mask: true, Seed: 2})
	a.Push(0x1000)
	b.Push(0x1000)
	if a.CR() == b.CR() {
		t.Error("different seeds produced identical chains")
	}
}

func TestSnapshotUnwind(t *testing.T) {
	s := newStack(t, 16, true)
	s.Push(0x1000)
	s.Push(0x2000)
	mark := s.Snapshot() // setjmp here
	s.Push(0x3000)
	s.Push(0x4000)
	s.Push(0x5000)
	if err := s.Unwind(mark); err != nil { // longjmp back
		t.Fatalf("unwind: %v", err)
	}
	if s.Depth() != 2 || s.CR() != mark.Aret {
		t.Errorf("depth=%d cr=%#x", s.Depth(), s.CR())
	}
	// Execution continues normally afterwards.
	got, err := s.Pop()
	if err != nil || got != 0x2000 {
		t.Errorf("post-unwind pop = %#x, %v", got, err)
	}
}

func TestUnwindDetectsCorruption(t *testing.T) {
	s := newStack(t, 16, true)
	s.Push(0x1000)
	mark := s.Snapshot()
	s.Push(0x2000)
	s.Push(0x3000)
	s.SetSpilled(1, s.Spilled(1)^0xF0)
	if err := s.Unwind(mark); !errors.Is(err, ErrAuthFailure) {
		t.Errorf("unwind over corrupt frame: %v", err)
	}
}

func TestUnwindRejectsForgedState(t *testing.T) {
	s := newStack(t, 16, true)
	s.Push(0x1000)
	s.Push(0x2000)
	forged := State{Aret: 0xDEAD_0000_1000, Depth: 1}
	if err := s.Unwind(forged); err == nil {
		t.Error("forged unwind state accepted")
	}
	// Target depth above current depth is rejected outright.
	deep := State{Aret: s.CR(), Depth: 99}
	if err := s.Unwind(deep); err == nil {
		t.Error("unwind to deeper state accepted")
	}
}

func TestPushRejectsOversizedReturnAddress(t *testing.T) {
	s := newStack(t, 16, false)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 64-bit return address")
		}
	}()
	s.Push(1 << 63)
}

func TestRetAuthAccessors(t *testing.T) {
	s := newStack(t, 16, false)
	s.Push(0xABCD)
	if Ret(s.CR()) != 0xABCD {
		t.Errorf("Ret = %#x", Ret(s.CR()))
	}
	if Auth(s.CR()) > 0xFFFF {
		t.Errorf("Auth exceeds 16 bits: %#x", Auth(s.CR()))
	}
}

func TestDeepChain(t *testing.T) {
	// A deep, randomly shaped call stack unwinds cleanly — the chain
	// is position-dependent all the way down.
	s := newStack(t, 16, true)
	rng := rand.New(rand.NewSource(1))
	var rets []uint64
	for i := 0; i < 10_000; i++ {
		r := rng.Uint64() & retMask
		rets = append(rets, r)
		s.Push(r)
	}
	for i := len(rets) - 1; i >= 0; i-- {
		got, err := s.Pop()
		if err != nil || got != rets[i] {
			t.Fatalf("pop %d = %#x, %v", i, got, err)
		}
	}
}

func TestTagWidths(t *testing.T) {
	for _, b := range []int{1, 4, 8, 12, 16, 24, 32} {
		mac := NewRandomQarmaMAC(b)
		if mac.Bits() != b {
			t.Errorf("Bits() = %d", mac.Bits())
		}
		if tag := mac.Tag(0x1234, 0x5678); tag >= 1<<uint(b) {
			t.Errorf("b=%d: tag %#x out of range", b, tag)
		}
		s := New(mac, Config{Mask: true})
		s.Push(0x4242)
		if got, err := s.Pop(); err != nil || got != 0x4242 {
			t.Errorf("b=%d: round trip failed: %#x, %v", b, got, err)
		}
	}
}

func TestNewQarmaMACPanicsOnBadWidth(t *testing.T) {
	for _, b := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d accepted", b)
				}
			}()
			NewQarmaMAC(1, 2, b)
		}()
	}
}

func BenchmarkPushPop(b *testing.B) {
	s := New(NewRandomQarmaMAC(16), Config{Mask: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Push(0x1000)
		if _, err := s.Pop(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHMACMACBehavesLikeAMAC(t *testing.T) {
	mac := NewRandomHMACMAC(16)
	if mac.Bits() != 16 {
		t.Errorf("Bits = %d", mac.Bits())
	}
	if mac.Tag(1, 2) != mac.Tag(1, 2) {
		t.Error("not a function")
	}
	if mac.Tag(1, 2) == mac.Tag(1, 3) && mac.Tag(2, 2) == mac.Tag(1, 2) {
		t.Error("tag ignores inputs")
	}
	if mac.Tag(1, 2) > 0xFFFF {
		t.Error("tag exceeds width")
	}
	// Distinct keys disagree.
	other := NewRandomHMACMAC(16)
	same := 0
	for i := uint64(0); i < 64; i++ {
		if mac.Tag(0x1000, i) == other.Tag(0x1000, i) {
			same++
		}
	}
	if same > 3 {
		t.Errorf("two keys agreed on %d/64 tags", same)
	}
}

func TestStackWorksWithHMACMAC(t *testing.T) {
	// The ACS construction is MAC-agnostic: the full push/pop/corrupt
	// cycle must behave identically on the software MAC.
	s := New(NewRandomHMACMAC(16), Config{Mask: true})
	s.Push(0x1000)
	s.Push(0x2000)
	s.SetSpilled(1, s.Spilled(1)^1)
	if _, err := s.Pop(); !errors.Is(err, ErrAuthFailure) {
		t.Errorf("corruption undetected under HMAC MAC: %v", err)
	}
}

func TestNewHMACMACPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHMACMAC([]byte{1}, 0)
}

// BenchmarkMACBackends compares the MAC backends the ACS construction
// can run on. Caveat for reading the numbers: this measures *our Go
// implementations* — an unoptimized reference QARMA against a stdlib
// SHA-256 that may use hardware instructions — not the silicon the
// paper compares, where the PA unit computes QARMA in ~4 cycles while
// a software MAC costs tens of cycles per call. The in-system cost
// comparison lives in the cycle model (cpu.CostModel.PAC and the
// `pacstack-bench -exp paccost` ablation).
func BenchmarkMACBackends(b *testing.B) {
	backends := map[string]MAC{
		"qarma64":     NewRandomQarmaMAC(16),
		"hmac-sha256": NewRandomHMACMAC(16),
	}
	for name, mac := range backends {
		b.Run(name, func(b *testing.B) {
			s := New(mac, Config{Mask: true})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Push(0x1000)
				if _, err := s.Pop(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
