// Package par is the experiment harness's bounded worker pool.
//
// Every experiment driver in this reproduction (workload suites,
// attack tables, fault campaigns, the ConFIRM matrix) is a loop over
// independent, individually seeded runs: each run builds its own
// kernel, address space and authenticator from an explicit seed, so
// runs share no mutable state and their results are pure functions of
// their index. ForEach exploits exactly that shape — it fans the
// indices out over GOMAXPROCS-bounded workers while callers write
// results into index-addressed slots, so the merged output is
// byte-identical to a serial loop regardless of scheduling.
package par

import (
	"context"
	"runtime"
	"sync"
)

var (
	mu      sync.Mutex
	workers = runtime.GOMAXPROCS(0)
)

// Workers returns the current pool width.
func Workers() int {
	mu.Lock()
	defer mu.Unlock()
	return workers
}

// SetWorkers overrides the pool width (n < 1 means 1) and returns a
// function restoring the previous value. The determinism tests pin
// the pool to one worker to compare serial and parallel output.
func SetWorkers(n int) (restore func()) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	prev := workers
	workers = n
	return func() {
		mu.Lock()
		defer mu.Unlock()
		workers = prev
	}
}

// ForEach runs fn(i) for every i in [0, n) over the worker pool and
// blocks until all calls return. fn must be safe to call concurrently
// for distinct indices; callers keep results deterministic by writing
// only to the i-th slot of a pre-sized slice.
func ForEach(n int, fn func(i int)) {
	_ = ForEachErr(n, func(i int) error {
		fn(i)
		return nil
	})
}

// ForEachErr is ForEach for body functions that can fail. All indices
// run to completion; the returned error is the lowest-index failure,
// which is the same error a serial loop that stops at the first
// failure would report (runs are independent, so a run's error does
// not depend on whether earlier runs executed).
func ForEachErr(n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, fn)
}

// ForEachCtx is ForEachErr with cooperative cancellation: once ctx is
// done no further indices are dispatched, so a fan-out aborts promptly
// on deadline or shutdown instead of grinding through the remaining
// work. Indices already in flight run to completion (bodies that want
// mid-run cancellation watch ctx themselves). The returned error is
// the lowest-index body failure; if the fan-out was cut short and no
// body failed, it is ctx.Err().
func ForEachCtx(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	done := ctx.Done()
	dispatched := n
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			dispatched = i
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if dispatched < n {
		return ctx.Err()
	}
	return nil
}
