package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		restore := SetWorkers(w)
		const n = 100
		var hits [n]atomic.Int64
		ForEach(n, func(i int) { hits[i].Add(1) })
		restore()
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, got)
			}
		}
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, w := range []int{1, 4} {
		restore := SetWorkers(w)
		err := ForEachErr(10, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		restore()
		if err != errA {
			t.Fatalf("workers=%d: got %v, want lowest-index error %v", w, err, errA)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(0, func(int) { t.Fatal("fn called for n=0") })
	if err := ForEachErr(0, func(int) error { return errors.New("x") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachCtxStopsDispatchOnCancel(t *testing.T) {
	for _, w := range []int{1, 4} {
		restore := SetWorkers(w)
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n = 10_000
		err := ForEachCtx(ctx, n, func(i int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		restore()
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		// In-flight bodies complete but dispatch stops: far fewer than n
		// indices run (at most the 5 triggering calls plus one per worker).
		if got := ran.Load(); got >= n {
			t.Fatalf("workers=%d: %d indices ran after cancellation", w, got)
		}
	}
}

func TestForEachCtxBodyErrorBeatsCancellation(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	restore := SetWorkers(4)
	defer restore()
	err := ForEachCtx(ctx, 100, func(i int) error {
		if i == 2 {
			cancel()
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want the body error %v", err, boom)
	}
}

func TestForEachCtxCompletedRunMatchesForEachErr(t *testing.T) {
	var hits [50]atomic.Int64
	if err := ForEachCtx(context.Background(), 50, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestSetWorkersRestores(t *testing.T) {
	before := Workers()
	restore := SetWorkers(before + 3)
	if Workers() != before+3 {
		t.Fatalf("override not applied")
	}
	restore()
	if Workers() != before {
		t.Fatalf("restore did not reset workers")
	}
}
