package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		restore := SetWorkers(w)
		const n = 100
		var hits [n]atomic.Int64
		ForEach(n, func(i int) { hits[i].Add(1) })
		restore()
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, got)
			}
		}
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, w := range []int{1, 4} {
		restore := SetWorkers(w)
		err := ForEachErr(10, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		restore()
		if err != errA {
			t.Fatalf("workers=%d: got %v, want lowest-index error %v", w, err, errA)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(0, func(int) { t.Fatal("fn called for n=0") })
	if err := ForEachErr(0, func(int) error { return errors.New("x") }); err != nil {
		t.Fatal(err)
	}
}

func TestSetWorkersRestores(t *testing.T) {
	before := Workers()
	restore := SetWorkers(before + 3)
	if Workers() != before+3 {
		t.Fatalf("override not applied")
	}
	restore()
	if Workers() != before {
		t.Fatalf("restore did not reset workers")
	}
}
