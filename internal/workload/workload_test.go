package workload

import (
	"math"
	"testing"

	"pacstack/internal/compile"
	"pacstack/internal/cpu"
)

func cm() cpu.CostModel { return cpu.DefaultCostModel() }

func findBench(t *testing.T, name string) Benchmark {
	t.Helper()
	for _, b := range SPEC {
		if b.Name == name {
			return b
		}
	}
	t.Fatalf("benchmark %q not defined", name)
	return Benchmark{}
}

func TestBenchmarkProgramsValidate(t *testing.T) {
	for _, b := range SPEC {
		if err := b.Program(cm()).Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestGrainInverselyTracksOverhead(t *testing.T) {
	perl := findBench(t, "500.perlbench_r")
	lbm := findBench(t, "519.lbm_r")
	if perl.Grain(cm()) >= lbm.Grain(cm()) {
		t.Error("call-dense perlbench should have a smaller grain than lbm")
	}
}

func TestCalibrationReproducesPaperPACStackOverhead(t *testing.T) {
	// The calibration loop must close: a benchmark generated from a
	// paper overhead, measured on the simulator, should land near
	// that overhead.
	for _, name := range []string{"500.perlbench_r", "505.mcf_r", "557.xz_r"} {
		b := findBench(t, name)
		rs, err := RunBenchmark(b, []compile.Scheme{compile.SchemePACStack}, cm(), 1)
		if err != nil {
			t.Fatal(err)
		}
		got := rs[0].Overhead
		if math.Abs(got-b.PaperPACStack) > 0.5*b.PaperPACStack {
			t.Errorf("%s: measured %.4f, calibrated for %.4f", name, got, b.PaperPACStack)
		}
	}
}

func TestSchemeOrderingOnCallDenseBenchmark(t *testing.T) {
	b := findBench(t, "600.perlbench_s")
	rs, err := RunBenchmark(b, compile.Schemes, cm(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ov := map[compile.Scheme]float64{}
	for _, r := range rs {
		ov[r.Scheme] = r.Overhead
	}
	// The Table 2 ordering: baseline = 0 <= cheap schemes <= nomask
	// <= PACStack.
	if ov[compile.SchemeNone] != 0 {
		t.Errorf("baseline overhead %.4f", ov[compile.SchemeNone])
	}
	if !(ov[compile.SchemePACStack] > ov[compile.SchemePACStackNoMask]) {
		t.Errorf("mask (%.4f) should exceed nomask (%.4f)",
			ov[compile.SchemePACStack], ov[compile.SchemePACStackNoMask])
	}
	if !(ov[compile.SchemePACStackNoMask] > ov[compile.SchemeBranchProtection]) {
		t.Errorf("nomask (%.4f) should exceed -mbranch-protection (%.4f)",
			ov[compile.SchemePACStackNoMask], ov[compile.SchemeBranchProtection])
	}
	for s, o := range ov {
		if o < 0 {
			t.Errorf("%v: negative overhead %.4f", s, o)
		}
	}
}

func TestTable2Aggregation(t *testing.T) {
	// Use a subset for speed; the full grid runs in the benchmark
	// harness.
	subset := []Benchmark{
		findBench(t, "500.perlbench_r"),
		findBench(t, "502.gcc_r"),
		findBench(t, "505.mcf_r"),
		findBench(t, "519.lbm_r"),
		findBench(t, "602.gcc_s"),
		findBench(t, "619.lbm_s"),
	}
	rs, err := RunSuite(subset, []compile.Scheme{
		compile.SchemeNone, compile.SchemePACStack, compile.SchemePACStackNoMask,
	}, cm(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t2 := Table2(rs)
	// perlbench must be excluded (ShadowCallStack incompatibility).
	rate := t2[compile.SchemePACStack][SPECrate]
	if rate <= 0 || rate > 0.10 {
		t.Errorf("PACStack SPECrate geomean %.4f out of plausible range", rate)
	}
	// Mask > nomask at the aggregate level too.
	if t2[compile.SchemePACStack][SPECrate] <= t2[compile.SchemePACStackNoMask][SPECrate] {
		t.Error("aggregate masked overhead should exceed unmasked")
	}
	// Aggregation excluded perlbench: recompute including it and
	// check the geomean moved.
	var withPerl []Result
	for _, r := range rs {
		r.Benchmark.ShadowIncompatible = false
		withPerl = append(withPerl, r)
	}
	if Table2(withPerl)[compile.SchemePACStack][SPECrate] <= rate {
		t.Error("including call-dense perlbench should raise the geomean")
	}
}

func TestCPPMean(t *testing.T) {
	cpp := []Benchmark{
		findBench(t, "520.omnetpp_r"),
		findBench(t, "541.leela_r"),
	}
	rs, err := RunSuite(cpp, []compile.Scheme{compile.SchemePACStack}, cm(), 1)
	if err != nil {
		t.Fatal(err)
	}
	m := CPPMean(rs, compile.SchemePACStack)
	if m <= 0 || m > 0.06 {
		t.Errorf("C++ mean overhead %.4f", m)
	}
	// C benchmarks must not leak into the C++ mean.
	if CPPMean(rs, compile.SchemeNone) != 0 {
		t.Error("no results for SchemeNone, mean should be 0")
	}
}

func TestNginxTable3Shape(t *testing.T) {
	rows, err := Table3(cm(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[[2]int]NginxResult{}
	for _, r := range rows {
		byKey[[2]int{r.Workers, int(r.Scheme)}] = r
	}
	for _, w := range []int{4, 8} {
		base := byKey[[2]int{w, int(compile.SchemeNone)}]
		nomask := byKey[[2]int{w, int(compile.SchemePACStackNoMask)}]
		mask := byKey[[2]int{w, int(compile.SchemePACStack)}]
		if !(base.RequestsPerSec > nomask.RequestsPerSec && nomask.RequestsPerSec > mask.RequestsPerSec) {
			t.Errorf("w=%d: TPS ordering broken: %.0f, %.0f, %.0f",
				w, base.RequestsPerSec, nomask.RequestsPerSec, mask.RequestsPerSec)
		}
		// The paper's band: nomask 4-7%, PACStack 6-13%. Allow the
		// simulator a wider but still meaningful corridor.
		if nomask.OverheadVsBase < 0.02 || nomask.OverheadVsBase > 0.10 {
			t.Errorf("w=%d: nomask overhead %.3f outside [0.02, 0.10]", w, nomask.OverheadVsBase)
		}
		if mask.OverheadVsBase < 0.04 || mask.OverheadVsBase > 0.16 {
			t.Errorf("w=%d: PACStack overhead %.3f outside [0.04, 0.16]", w, mask.OverheadVsBase)
		}
	}
	// 8 workers must deliver the paper's scaling over 4.
	r4 := byKey[[2]int{4, int(compile.SchemeNone)}].RequestsPerSec
	r8 := byKey[[2]int{8, int(compile.SchemeNone)}].RequestsPerSec
	if math.Abs(r8/r4-eightWorkerScaling) > 1e-9 {
		t.Errorf("scaling %f", r8/r4)
	}
}

func TestNginxBaselineCalibration(t *testing.T) {
	r, err := RunNginx(compile.SchemeNone, DefaultNginxConfig(), cm(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// The clock calibration should put the 4-worker baseline within a
	// factor of 2 of the paper's 14.2k req/s.
	if r.RequestsPerSec < 7_000 || r.RequestsPerSec > 30_000 {
		t.Errorf("baseline TPS %.0f, want ~14.2k", r.RequestsPerSec)
	}
}

func TestPACStackExtraCyclesPositive(t *testing.T) {
	if pacstackExtraCycles(cm()) <= 0 {
		t.Error("PACStack must cost more than the baseline frame")
	}
	// With free PAC instructions the extra cost shrinks.
	free := cm()
	free.PAC = 0
	if pacstackExtraCycles(free) >= pacstackExtraCycles(cm()) {
		t.Error("cheaper PAC did not reduce the extra cycles")
	}
}
