package workload

import (
	"fmt"

	"pacstack/internal/compile"
	"pacstack/internal/cpu"
	"pacstack/internal/ir"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
	"pacstack/internal/par"
)

// The NGINX SSL-TPS experiment (Section 7.2, Table 3). The paper
// measures new-TLS-connections-per-second against an NGINX server
// whose binary and libraries (OpenSSL, pcre, zlib) are instrumented;
// the test is designed to be CPU-bound, so throughput is inversely
// proportional to the cycles a worker spends per connection.
//
// We reproduce it by simulating the per-connection work: a TLS
// handshake is a deep, call-dense code path (BN/EC math in OpenSSL
// with small leaf-heavy helpers), followed by lighter parsing and
// response work. Workers are independent processes on separate cores
// (as in NGINX), so fleet throughput is workers x per-worker rate,
// with an empirical scaling factor for the 8-worker configuration
// taken from the baseline row of Table 3.

// NginxConfig parameterizes the simulation.
type NginxConfig struct {
	Workers  int
	Requests int // simulated connections to measure over
	// ClockHz converts simulated cycles to wall time; calibrated so
	// the 4-worker baseline lands near the paper's 14.2k req/s.
	ClockHz float64
}

// DefaultNginxConfig mirrors the paper's 4-worker setup. A 2.3 GHz
// clock with the ~640k-cycle simulated handshake puts the 4-worker
// baseline at ~14k req/s, Table 3's starting point; an
// ECDHE-RSA-2048 handshake indeed costs roughly this many cycles on
// the a1.metal cores.
func DefaultNginxConfig() NginxConfig {
	return NginxConfig{Workers: 4, Requests: 5, ClockHz: 2.3e9}
}

// NginxResult is one Table 3 row entry.
type NginxResult struct {
	Scheme         compile.Scheme
	Workers        int
	CyclesPerReq   float64
	RequestsPerSec float64
	OverheadVsBase float64
}

// handshakeProgram models the per-connection code path: a handshake
// of callDepth nested call-dense functions (each doing modest compute
// and several leaf calls — the shape of bignum arithmetic), then
// request parsing and a zero-byte response, matching the SSL TPS test
// where the handshake dominates.
func handshakeProgram(requests int) *ir.Program {
	const callDepth = 11
	prog := &ir.Program{Entry: "main"}
	prog.Functions = append(prog.Functions, &ir.Function{
		Name: "main",
		Body: []ir.Op{ir.Loop{Count: requests, Body: []ir.Op{
			ir.Call{Target: "handshake0"},
			ir.Call{Target: "parse"},
			ir.Call{Target: "respond"},
		}}},
	})
	for d := 0; d < callDepth; d++ {
		ops := []ir.Op{
			ir.Compute{Units: 68},
			ir.Call{Target: "bnleaf"},
			ir.Call{Target: "bnleaf"},
			ir.Call{Target: "bnleaf"},
		}
		if d < callDepth-1 {
			// Two recursive-ish calls per level keep the handshake
			// call-dense, like EC point operations.
			ops = append(ops,
				ir.Call{Target: fmt.Sprintf("handshake%d", d+1)},
				ir.Call{Target: fmt.Sprintf("handshake%d", d+1)},
			)
		}
		prog.Functions = append(prog.Functions, &ir.Function{
			Name:   fmt.Sprintf("handshake%d", d),
			Locals: 2,
			Body:   ops,
		})
	}
	prog.Functions = append(prog.Functions,
		&ir.Function{Name: "parse", Locals: 4, Body: []ir.Op{
			ir.Compute{Units: 300},
			ir.Call{Target: "bnleaf"},
		}},
		&ir.Function{Name: "respond", Body: []ir.Op{
			ir.Compute{Units: 100},
			ir.Call{Target: "bnleaf"},
		}},
		&ir.Function{Name: "bnleaf", Body: []ir.Op{ir.Compute{Units: 25}}},
	)
	return prog
}

// NginxProgram returns the simulated per-connection TLS code path
// (one handshake + parse + respond) as a servable workload. At ~640k
// cycles per connection it is the heaviest request class in the
// serving catalog — the far tail of the traffic model's cost mixture,
// next to "chain" (tens of thousands) and the SPEC profiles (~400k).
func NginxProgram() *ir.Program { return handshakeProgram(1) }

// eightWorkerScaling is the throughput ratio TPS(8w)/TPS(4w) observed
// in the paper's baseline row (30.7k / 14.2k); it captures how the
// a1.metal host scaled, including whatever superlinearity the 4-worker
// configuration left on the table.
const eightWorkerScaling = 30.7 / 14.2

// measureCyclesPerRequest runs the connection workload once under a
// scheme; the result is deterministic, so worker configurations can
// share it.
func measureCyclesPerRequest(scheme compile.Scheme, cfg NginxConfig, cm cpu.CostModel, seed int64) (float64, error) {
	prog := handshakeProgram(cfg.Requests)
	img, err := compile.Compile(prog, scheme, compile.DefaultLayout())
	if err != nil {
		return 0, err
	}
	k := kernel.New(pa.DefaultConfig())
	k.Seed(seed)
	proc, err := img.Boot(k)
	if err != nil {
		return 0, err
	}
	for _, t := range proc.Tasks {
		t.M.Cost = cm
	}
	if err := proc.Run(500_000_000); err != nil {
		return 0, fmt.Errorf("workload: nginx/%v: %w", scheme, err)
	}
	return float64(proc.Tasks[0].M.Cycles) / float64(cfg.Requests), nil
}

// RunNginx measures SSL TPS for one scheme and worker count. seed
// fixes the kernel entropy stream so the measurement reproduces.
func RunNginx(scheme compile.Scheme, cfg NginxConfig, cm cpu.CostModel, seed int64) (NginxResult, error) {
	cpr, err := measureCyclesPerRequest(scheme, cfg, cm, seed)
	if err != nil {
		return NginxResult{}, err
	}
	return resultFor(scheme, cfg, cpr), nil
}

func resultFor(scheme compile.Scheme, cfg NginxConfig, cpr float64) NginxResult {
	perWorker := cfg.ClockHz / cpr
	tps := float64(cfg.Workers) * perWorker
	if cfg.Workers == 8 {
		tps = 4 * perWorker * eightWorkerScaling
	}
	return NginxResult{
		Scheme:         scheme,
		Workers:        cfg.Workers,
		CyclesPerReq:   cpr,
		RequestsPerSec: tps,
	}
}

// Table3 runs the full Table 3 grid: baseline, PACStack-nomask and
// PACStack at 4 and 8 workers, with overheads relative to baseline.
func Table3(cm cpu.CostModel, seed int64) ([]NginxResult, error) {
	schemes := []compile.Scheme{
		compile.SchemeNone,
		compile.SchemePACStackNoMask,
		compile.SchemePACStack,
	}
	cfg := DefaultNginxConfig()
	// One independent seeded measurement per scheme, fanned out over
	// the worker pool and merged in scheme order.
	measured := make([]float64, len(schemes))
	err := par.ForEachErr(len(schemes), func(i int) error {
		cpr, err := measureCyclesPerRequest(schemes[i], cfg, cm, seed)
		measured[i] = cpr
		return err
	})
	if err != nil {
		return nil, err
	}
	cprs := map[compile.Scheme]float64{}
	for i, s := range schemes {
		cprs[s] = measured[i]
	}
	var out []NginxResult
	for _, workers := range []int{4, 8} {
		cfg.Workers = workers
		base := resultFor(compile.SchemeNone, cfg, cprs[compile.SchemeNone])
		for _, s := range schemes {
			r := resultFor(s, cfg, cprs[s])
			r.OverheadVsBase = base.RequestsPerSec/r.RequestsPerSec - 1
			out = append(out, r)
		}
	}
	return out, nil
}
