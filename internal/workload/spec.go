// Package workload builds the synthetic programs behind the paper's
// performance evaluation: SPEC-CPU-2017-shaped benchmarks for
// Figure 5 and Table 2, and the NGINX SSL-TPS worker simulation for
// Table 3.
//
// Calibration methodology. The paper observes (Section 7.1) that
// PACStack overhead is proportional to function-call frequency, i.e.
// to how few cycles a benchmark spends between function activations.
// Each synthetic benchmark is therefore defined by its *call grain* —
// baseline cycles per instrumented activation — which we derive from
// the PACStack overhead the paper reports for that benchmark on
// EC2 a1.metal. The PACStack column of Figure 5 is thus calibration,
// not a result; everything else — the overheads of the other five
// schemes, their ordering, and the Table 2 geometric means — emerges
// from the emitted instruction sequences and the cycle model, and
// constitutes the reproduced result.
package workload

import (
	"fmt"

	"pacstack/internal/cpu"
	"pacstack/internal/ir"
)

// Suite tags a benchmark with its SPEC suite.
type Suite int

// SPEC CPU 2017 suites used in the paper.
const (
	SPECrate Suite = iota
	SPECspeed
)

// String names the suite.
func (s Suite) String() string {
	if s == SPECspeed {
		return "SPECspeed"
	}
	return "SPECrate"
}

// Benchmark describes one synthetic SPEC-shaped workload.
type Benchmark struct {
	Name  string
	Suite Suite
	// Lang is "C" or "C++"; the paper's Table 2 comparison covers the
	// C benchmarks only.
	Lang string
	// PaperPACStack is the approximate PACStack overhead fraction the
	// paper reports for this benchmark (Figure 5); it determines the
	// benchmark's call grain.
	PaperPACStack float64
	// ShadowIncompatible marks perlbench, which the paper could not
	// run under ShadowCallStack (Section 7.1) and excluded from the
	// Table 2 aggregation.
	ShadowIncompatible bool
}

// SPEC lists the benchmarks of Figure 5: the C SPECrate and SPECspeed
// benchmarks plus the C++ ones the paper reports separately. The
// PaperPACStack values are readings of the Figure 5 bars, adjusted so
// that the ex-perlbench geometric means match the precise Table 2
// figures (2.75% SPECrate, 3.28% SPECspeed) the paper publishes.
var SPEC = []Benchmark{
	{Name: "500.perlbench_r", Suite: SPECrate, Lang: "C", PaperPACStack: 0.080, ShadowIncompatible: true},
	{Name: "502.gcc_r", Suite: SPECrate, Lang: "C", PaperPACStack: 0.067},
	{Name: "505.mcf_r", Suite: SPECrate, Lang: "C", PaperPACStack: 0.033},
	{Name: "519.lbm_r", Suite: SPECrate, Lang: "C", PaperPACStack: 0.004},
	{Name: "525.x264_r", Suite: SPECrate, Lang: "C", PaperPACStack: 0.047},
	{Name: "538.imagick_r", Suite: SPECrate, Lang: "C", PaperPACStack: 0.016},
	{Name: "544.nab_r", Suite: SPECrate, Lang: "C", PaperPACStack: 0.011},
	{Name: "557.xz_r", Suite: SPECrate, Lang: "C", PaperPACStack: 0.020},

	{Name: "600.perlbench_s", Suite: SPECspeed, Lang: "C", PaperPACStack: 0.100, ShadowIncompatible: true},
	{Name: "602.gcc_s", Suite: SPECspeed, Lang: "C", PaperPACStack: 0.075},
	{Name: "605.mcf_s", Suite: SPECspeed, Lang: "C", PaperPACStack: 0.041},
	{Name: "619.lbm_s", Suite: SPECspeed, Lang: "C", PaperPACStack: 0.0055},
	{Name: "625.x264_s", Suite: SPECspeed, Lang: "C", PaperPACStack: 0.054},
	{Name: "638.imagick_s", Suite: SPECspeed, Lang: "C", PaperPACStack: 0.020},
	{Name: "644.nab_s", Suite: SPECspeed, Lang: "C", PaperPACStack: 0.014},
	{Name: "657.xz_s", Suite: SPECspeed, Lang: "C", PaperPACStack: 0.027},

	// The C++ benchmarks (Section 7.1 reports 2.0% masked / 0.9%
	// unmasked on average).
	{Name: "520.omnetpp_r", Suite: SPECrate, Lang: "C++", PaperPACStack: 0.030},
	{Name: "523.xalancbmk_r", Suite: SPECrate, Lang: "C++", PaperPACStack: 0.025},
	{Name: "531.deepsjeng_r", Suite: SPECrate, Lang: "C++", PaperPACStack: 0.012},
	{Name: "541.leela_r", Suite: SPECrate, Lang: "C++", PaperPACStack: 0.010},
}

// Program shape constants: a three-tier call tree whose non-leaf
// activation count dominates, with one uninstrumented leaf call per
// non-leaf function.
const (
	mids       = 4
	chainDepth = 3
	leafWork   = 5
	// targetCycles keeps every benchmark run around the same
	// simulated length regardless of grain.
	targetCycles = 400_000
)

// activationsPerIter is the number of instrumented (non-leaf)
// activations per top-level iteration: top + mids + mids*chainDepth.
const activationsPerIter = 1 + mids + mids*chainDepth

// pacstackExtraCycles computes, from the cost model, the per-
// activation cycle cost PACStack adds over the baseline frame
// (Listing 3 prologue+epilogue vs. stp/ldp).
func pacstackExtraCycles(cm cpu.CostModel) int {
	base := cm.Store*2 + cm.Default + // stp FP, LR + mov FP
		2*cm.Load + cm.Branch // ldp + ret
	pac := cm.Store + 2*cm.Store + cm.Default + // str X28 + stp + FP setup
		3*cm.Default + 2*cm.PAC + cm.Default + cm.Default + // masking sequence
		cm.Default + cm.Load + cm.Load + // mov LR, ldr FP, ldr X28
		2*cm.Default + cm.PAC + cm.Default + // unmask
		cm.PAC + cm.Branch // autia + ret
	return pac - base
}

// Grain returns the benchmark's baseline cycles per instrumented
// activation, derived from the paper's PACStack overhead.
func (b Benchmark) Grain(cm cpu.CostModel) int {
	return int(float64(pacstackExtraCycles(cm)) / b.PaperPACStack)
}

// Program generates the benchmark's IR. Non-leaf work is sized so
// that one activation costs roughly Grain() baseline cycles.
func (b Benchmark) Program(cm cpu.CostModel) *ir.Program {
	grain := b.Grain(cm)
	// Per-activation baseline cycles besides the compute body:
	// frame (~12), call branch, the leaf call (bl + body + ret).
	leafCost := cm.Branch + 2*leafWork + cm.Default + cm.Branch
	fixed := 12 + cm.Branch + leafCost
	work := (grain - fixed) / 2 // compute loop is ~2 cycles per unit
	if work < 1 {
		work = 1
	}
	cyclesPerIter := activationsPerIter * grain
	iters := targetCycles / cyclesPerIter
	if iters < 2 {
		iters = 2
	}

	body := func(callee string) []ir.Op {
		return []ir.Op{
			ir.Compute{Units: work},
			ir.Call{Target: "leaf"},
			ir.Call{Target: callee},
		}
	}
	prog := &ir.Program{Entry: "main"}
	prog.Functions = append(prog.Functions, &ir.Function{
		Name: "main",
		Body: []ir.Op{ir.Loop{Count: iters, Body: []ir.Op{ir.Call{Target: "top"}}}},
	})
	var topOps []ir.Op
	topOps = append(topOps, ir.Compute{Units: work}, ir.Call{Target: "leaf"})
	for m := 0; m < mids; m++ {
		topOps = append(topOps, ir.Call{Target: fmt.Sprintf("mid%d", m)})
	}
	prog.Functions = append(prog.Functions, &ir.Function{Name: "top", Body: topOps})
	for m := 0; m < mids; m++ {
		prog.Functions = append(prog.Functions, &ir.Function{
			Name:   fmt.Sprintf("mid%d", m),
			Locals: 1, // a local buffer: stack-protector-strong applies
			Body:   body(fmt.Sprintf("chain%d_0", m)),
		})
		for d := 0; d < chainDepth; d++ {
			callee := fmt.Sprintf("chain%d_%d", m, d+1)
			ops := body(callee)
			if d == chainDepth-1 {
				ops = []ir.Op{
					ir.Compute{Units: work},
					ir.Call{Target: "leaf"},
				}
			}
			prog.Functions = append(prog.Functions, &ir.Function{
				Name: fmt.Sprintf("chain%d_%d", m, d),
				Body: ops,
			})
		}
	}
	prog.Functions = append(prog.Functions, &ir.Function{
		Name: "leaf",
		Body: []ir.Op{ir.Compute{Units: leafWork}},
	})
	return prog
}
