package workload

import (
	"testing"

	"pacstack/internal/compile"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
	"pacstack/internal/trace"
)

// Integration of the profiler with the synthetic workloads: the
// generated programs must actually have the call structure their
// calibration assumes.

func profiledRun(t *testing.T, b Benchmark, s compile.Scheme) *trace.Profiler {
	t.Helper()
	img, err := compile.Compile(b.Program(cm()), s, compile.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	proc, err := img.Boot(kernel.New(pa.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	p := trace.AttachProfiler(proc.Tasks[0].M)
	if err := proc.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWorkloadCallStructureMatchesDesign(t *testing.T) {
	b := findBench(t, "505.mcf_r")
	p := profiledRun(t, b, compile.SchemeNone)

	// Every non-leaf activation performs exactly one leaf call, so
	// leaf activations == sum of non-leaf activations.
	var nonLeaf, leaf uint64
	for name, fs := range p.ByFunc {
		switch name {
		case "leaf":
			leaf = fs.Calls
		case "_start", "?", "__task_exit":
		default:
			nonLeaf += fs.Calls
		}
	}
	// main is called once by _start and performs no leaf call.
	mainCalls := p.ByFunc["main"].Calls
	if leaf != nonLeaf-mainCalls {
		t.Errorf("leaf calls %d != non-leaf activations %d - main %d", leaf, nonLeaf, mainCalls)
	}
	// The call tree: each top activation drives mids and chains.
	top := p.ByFunc["top"].Calls
	if top == 0 {
		t.Fatal("top never ran")
	}
	for m := 0; m < mids; m++ {
		name := "mid0"
		if fs := p.ByFunc[name]; fs == nil || fs.Calls != top {
			t.Errorf("%s calls = %+v, want %d", name, fs, top)
		}
	}
	if fs := p.ByFunc["chain0_0"]; fs == nil || fs.Calls != top {
		t.Errorf("chain0_0 = %+v, want %d", fs, top)
	}
}

func TestProfileAttributesPACStackOverheadToNonLeaves(t *testing.T) {
	b := findBench(t, "502.gcc_r")
	base := profiledRun(t, b, compile.SchemeNone)
	pac := profiledRun(t, b, compile.SchemePACStack)

	// The leaf function is uninstrumented: its attributed cycles must
	// be identical under both schemes, while every non-leaf function
	// gets strictly more expensive.
	if base.ByFunc["leaf"].Cycles != pac.ByFunc["leaf"].Cycles {
		t.Errorf("leaf cycles changed: %d -> %d",
			base.ByFunc["leaf"].Cycles, pac.ByFunc["leaf"].Cycles)
	}
	for _, name := range []string{"top", "mid0", "chain0_0"} {
		if pac.ByFunc[name].Cycles <= base.ByFunc[name].Cycles {
			t.Errorf("%s: PACStack cycles %d not above baseline %d",
				name, pac.ByFunc[name].Cycles, base.ByFunc[name].Cycles)
		}
	}
}

func TestNginxHandshakeDominatesProfile(t *testing.T) {
	img, err := compile.Compile(handshakeProgram(2), compile.SchemePACStack, compile.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	proc, err := img.Boot(kernel.New(pa.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	p := trace.AttachProfiler(proc.Tasks[0].M)
	if err := proc.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	var handshake, total uint64
	for name, fs := range p.ByFunc {
		total += fs.Cycles
		if len(name) > 9 && name[:9] == "handshake" {
			handshake += fs.Cycles
		}
		if name == "bnleaf" {
			handshake += fs.Cycles // leaf crypto helpers belong to the handshake
		}
	}
	if float64(handshake)/float64(total) < 0.9 {
		t.Errorf("handshake fraction %.2f; the SSL TPS test must be handshake-bound",
			float64(handshake)/float64(total))
	}
}
