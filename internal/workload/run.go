package workload

import (
	"fmt"

	"pacstack/internal/compile"
	"pacstack/internal/cpu"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
	"pacstack/internal/par"
	"pacstack/internal/stats"
)

// Result is one (benchmark, scheme) measurement.
type Result struct {
	Benchmark Benchmark
	Scheme    compile.Scheme
	Cycles    uint64
	Instrs    uint64
	// Overhead is relative to the same benchmark under SchemeNone.
	Overhead float64
}

// RunBenchmark measures one benchmark under all the given schemes and
// fills in overheads relative to the baseline (which is always run).
// seed fixes the kernel entropy stream (PA keys, canaries), so the
// same invocation is reproducible cycle for cycle.
func RunBenchmark(b Benchmark, schemes []compile.Scheme, cm cpu.CostModel, seed int64) ([]Result, error) {
	return RunBenchmarkCosts(b, schemes, cm, cm, seed)
}

// RunBenchmarkCosts separates the cost model the workload is
// *generated* against (its call grain calibration) from the one it is
// *executed* under. Ablations that vary instruction latencies must
// hold the program fixed — generate with the default model — or the
// calibration silently compensates for the change.
func RunBenchmarkCosts(b Benchmark, schemes []compile.Scheme, genCM, cm cpu.CostModel, seed int64) ([]Result, error) {
	prog := b.Program(genCM)

	run := func(s compile.Scheme) (uint64, uint64, error) {
		img, err := compile.Compile(prog, s, compile.DefaultLayout())
		if err != nil {
			return 0, 0, fmt.Errorf("workload: %s/%v: %w", b.Name, s, err)
		}
		k := kernel.New(pa.DefaultConfig())
		k.Seed(seed)
		proc, err := img.Boot(k)
		if err != nil {
			return 0, 0, err
		}
		for _, t := range proc.Tasks {
			t.M.Cost = cm
		}
		if err := proc.Run(50_000_000); err != nil {
			return 0, 0, fmt.Errorf("workload: %s/%v: %w", b.Name, s, err)
		}
		p := proc.Tasks[0].M
		return p.Cycles, p.Instrs, nil
	}

	baseCycles, _, err := run(compile.SchemeNone)
	if err != nil {
		return nil, err
	}

	var out []Result
	for _, s := range schemes {
		cycles, instrs := baseCycles, uint64(0)
		if s != compile.SchemeNone {
			cycles, instrs, err = run(s)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, Result{
			Benchmark: b,
			Scheme:    s,
			Cycles:    cycles,
			Instrs:    instrs,
			Overhead:  float64(cycles)/float64(baseCycles) - 1,
		})
	}
	return out, nil
}

// RunSuite measures every benchmark under every scheme — the full
// Figure 5 grid. Benchmarks fan out over the par worker pool: each
// measurement boots its own seeded kernel, so runs are independent,
// and results are merged in benchmark order, byte-identical to a
// serial loop.
func RunSuite(benchmarks []Benchmark, schemes []compile.Scheme, cm cpu.CostModel, seed int64) ([]Result, error) {
	perBench := make([][]Result, len(benchmarks))
	err := par.ForEachErr(len(benchmarks), func(i int) error {
		rs, err := RunBenchmark(benchmarks[i], schemes, cm, seed)
		perBench[i] = rs
		return err
	})
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, rs := range perBench {
		out = append(out, rs...)
	}
	return out, nil
}

// Table2 aggregates results into the paper's Table 2: the geometric
// mean overhead per scheme and suite over the C benchmarks, excluding
// perlbench (which the paper excluded as ShadowCallStack-incompatible).
func Table2(results []Result) map[compile.Scheme]map[Suite]float64 {
	acc := map[compile.Scheme]map[Suite][]float64{}
	for _, r := range results {
		if r.Benchmark.Lang != "C" || r.Benchmark.ShadowIncompatible {
			continue
		}
		if acc[r.Scheme] == nil {
			acc[r.Scheme] = map[Suite][]float64{}
		}
		acc[r.Scheme][r.Benchmark.Suite] = append(acc[r.Scheme][r.Benchmark.Suite], r.Overhead)
	}
	out := map[compile.Scheme]map[Suite]float64{}
	for s, bySuite := range acc {
		out[s] = map[Suite]float64{}
		for suite, ovs := range bySuite {
			out[s][suite] = stats.GeoMeanOverhead(ovs)
		}
	}
	return out
}

// CPPMean returns the mean overhead of the C++ benchmarks for a
// scheme (the paper quotes 2.0% PACStack / 0.9% nomask).
func CPPMean(results []Result, scheme compile.Scheme) float64 {
	var ovs []float64
	for _, r := range results {
		if r.Benchmark.Lang == "C++" && r.Scheme == scheme {
			ovs = append(ovs, r.Overhead)
		}
	}
	return stats.Mean(ovs)
}
