// Package pa models the ARMv8.3-A pointer authentication (PA)
// extension on top of the QARMA-64 tweakable block cipher.
//
// A pointer authentication code (PAC) is a keyed, tweakable MAC over a
// pointer's address, truncated into the architecturally unused
// high-order bits of the pointer (Figure 1 of the PACStack paper). The
// PAC width b therefore depends on the configured virtual address size
// and on whether top-byte address tagging is enabled: with the Linux
// default VA_SIZE = 39 and tagging enabled, b = 16.
//
// The package reproduces the behaviours the PACStack security analysis
// relies on:
//
//   - pac* instructions insert a PAC; if the input pointer's extension
//     bits are already corrupt, the PAC for the canonical address is
//     computed and then one well-known PAC bit is flipped (the
//     "re-signing gadget" behaviour of Section 6.3.1).
//   - aut* instructions verify a PAC; on success the canonical pointer
//     is restored, on failure the PAC is stripped and a well-known
//     high-order error bit is flipped so that any dereference or
//     instruction fetch raises a translation fault.
//   - xpac strips a PAC unconditionally.
//   - pacga computes a 32-bit generic MAC in the top half of the
//     result.
package pa

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	mrand "math/rand"
	"sync/atomic"

	"pacstack/internal/qarma"
	"pacstack/internal/telemetry"
)

// KeyID names one of the five PA keys of ARMv8.3-A.
type KeyID int

// The five architectural PA keys: two for instruction pointers, two
// for data pointers, and one generic key.
const (
	KeyIA KeyID = iota
	KeyIB
	KeyDA
	KeyDB
	KeyGA
	numKeys
)

// String returns the architectural name of the key.
func (k KeyID) String() string {
	switch k {
	case KeyIA:
		return "IA"
	case KeyIB:
		return "IB"
	case KeyDA:
		return "DA"
	case KeyDB:
		return "DB"
	case KeyGA:
		return "GA"
	}
	return fmt.Sprintf("KeyID(%d)", int(k))
}

// Key is one 128-bit PA key, split into the QARMA whitening and core
// halves.
type Key struct {
	W0, K0 uint64
}

// Keys is a full register file of PA keys, as managed by the kernel
// for one process (APIAKey_EL1 and friends).
type Keys [numKeys]Key

// GenerateKeys draws a fresh, uniformly random key set, as the Linux
// kernel does for a process on exec.
func GenerateKeys() Keys {
	var ks Keys
	var buf [16]byte
	for i := range ks {
		if _, err := rand.Read(buf[:]); err != nil {
			panic("pa: entropy source failed: " + err.Error())
		}
		ks[i] = Key{
			W0: binary.LittleEndian.Uint64(buf[:8]),
			K0: binary.LittleEndian.Uint64(buf[8:]),
		}
	}
	return ks
}

// GenerateKeysFrom draws a key set from a deterministic source.
// Reproducible experiments (fault campaigns, seeded kernels) use this
// so that identical seeds yield identical processes; production-shaped
// paths keep GenerateKeys.
func GenerateKeysFrom(rng *mrand.Rand) Keys {
	var ks Keys
	for i := range ks {
		ks[i] = Key{W0: rng.Uint64(), K0: rng.Uint64()}
	}
	return ks
}

// Fingerprint returns a non-secret 64-bit digest of the key set
// (FNV-1a over the key words). The checkpoint codec (internal/snap)
// stores it next to the serialized key material so a restore can
// verify the keys survived storage intact before any pointer is
// re-authenticated under them; it is a checksum, not a MAC, and
// reveals nothing useful about the keys themselves beyond equality.
func (ks Keys) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	for _, k := range ks {
		mix(k.W0)
		mix(k.K0)
	}
	return h
}

// Config fixes the pointer layout and cipher parameters.
type Config struct {
	// VASize is the number of virtual address bits. The 64-bit ARM
	// Linux default is 39.
	VASize int
	// Tagging enables top-byte-ignore address tags, which removes
	// bits 63:56 from the PAC field.
	Tagging bool
	// Rounds selects the QARMA-64 round count (0 = qarma.DefaultRounds).
	Rounds int
	// Sbox selects the QARMA S-box variant.
	Sbox qarma.Sigma
}

// DefaultConfig matches the platform evaluated in the paper: Linux
// with VA_SIZE = 39 and address tagging enabled, giving a 16-bit PAC.
func DefaultConfig() Config {
	return Config{VASize: 39, Tagging: true}
}

// signBit is the bit that selects the translation table (kernel vs
// user addresses) and defines the canonical value of all extension
// bits. It is never part of the PAC.
const signBit = 55

// On authentication failure the architecture writes an error code
// into the top bits of the PAC field: a pointer with one of them
// flipped is non-canonical and faults on translation. A-keys flip the
// topmost PAC bit, B-keys the one below it, so the faulting key class
// is visible in the corrupt pointer.

// poisonBit is the PAC bit (counted from the low end of the PAC
// field) flipped by a pac* instruction whose input pointer had corrupt
// extension bits (Section 6.3.1, Listing 7).
const poisonBit = 0

// Trace is the chain-level telemetry hook: counters over the PA
// operations that make up the paper's authenticated chain, plus an
// optional event log for per-operation security events. All fields
// are optional (nil handles record nothing), and a nil *Trace on the
// Authenticator costs exactly one predictable branch per operation —
// the telemetry.Nop contract.
//
// Masks counts PAC derivations over the zero pointer: under full ACS
// (Listing 3) the mask applied to and stripped from aret is
// PAC(0, aret_{i-1}), so every mask/unmask side evaluates exactly
// this shape. Apply and strip derive the same value (XOR is an
// involution), so one counter covers both.
type Trace struct {
	PACIssued *telemetry.Counter // pac* seals
	AuthOK    *telemetry.Counter // aut* verifications that passed
	AuthFail  *telemetry.Counter // aut* rejections — the core signal
	Masks     *telemetry.Counter // PAC(0, ·) mask derivations
	MemoHit   *telemetry.Counter // computePAC served from the memo cache
	MemoMiss  *telemetry.Counter // computePAC evaluated the full cipher
	Strips    *telemetry.Counter // xpac strips
	PACGAs    *telemetry.Counter // generic MACs (sigframe chain, jmp_buf)

	// Events, when non-nil, receives per-operation chain events
	// (pac_issued, auth_ok, auth_fail, mask). At serving rates this
	// floods a bounded ring quickly — that is what the ring's drop
	// accounting is for — so serving-path wirings usually leave it
	// nil and keep only the counters.
	Events *telemetry.EventLog
}

// Authenticator implements the PA instructions for one process' key
// set under a fixed configuration. It is safe for concurrent use.
type Authenticator struct {
	cfg     Config
	ciphers [numKeys]*qarma.Cipher
	pacMask uint64 // bits that hold the PAC
	extMask uint64 // all non-address bits above VASize (incl. sign bit)
	tagMask uint64 // top-byte tag bits when tagging is enabled
	cache   []pacEntry
	tr      *Trace
}

// SetTrace wires chain-level telemetry in (nil detaches it). Call it
// before the process runs: the field is read without synchronisation
// on the hot path, so flipping it mid-execution is a race.
func (a *Authenticator) SetTrace(t *Trace) { a.tr = t }

// pacCacheSize is the number of direct-mapped memo entries per
// Authenticator (power of two). Sized so the working set of a deep
// call chain — one live (ptr, modifier) pair per activation — fits.
const pacCacheSize = 1024

// pacEntry memoizes one computePAC evaluation. Every call/return pair
// evaluates the same QARMA block twice (pac* on call, aut* on
// return), and loops re-sign identical (pointer, modifier) pairs each
// iteration, so a hit skips the full cipher.
//
// The cipher is a pure function of (key, pointer, modifier) and keys
// are fixed for the Authenticator's lifetime, so memoization cannot
// change results — a hit is only taken when the full tuple matches
// exactly; index collisions merely miss. Entries are published under
// a seqlock (seq odd while a writer owns the entry, fields re-read
// consistent only if seq is even and unchanged) with every field
// atomic, which keeps the Authenticator safe for concurrent use —
// including under the race detector — without a lock on the hit path.
type pacEntry struct {
	seq atomic.Uint64 // even: stable; odd: write in progress
	key atomic.Uint64
	ptr atomic.Uint64
	mod atomic.Uint64
	val atomic.Uint64
}

// pacIndex mixes the lookup tuple into a cache slot.
func pacIndex(key KeyID, p, modifier uint64) uint64 {
	h := p*0x9E3779B97F4A7C15 ^ modifier*0xBF58476D1CE4E5B9 ^ uint64(key)*0x94D049BB133111EB
	h ^= h >> 32
	return h & (pacCacheSize - 1)
}

// New builds an Authenticator for the given keys and configuration.
func New(keys Keys, cfg Config) *Authenticator {
	if cfg.VASize < 32 || cfg.VASize > 52 {
		panic(fmt.Sprintf("pa: unsupported VA size %d", cfg.VASize))
	}
	a := &Authenticator{cfg: cfg, cache: make([]pacEntry, pacCacheSize)}
	for i, k := range keys {
		a.ciphers[i] = qarma.New(k.W0, k.K0, qarma.Config{Rounds: cfg.Rounds, Sbox: cfg.Sbox})
	}
	// PAC occupies bits 54 .. VASize, plus 63:56 without tagging.
	for b := cfg.VASize; b < signBit; b++ {
		a.pacMask |= 1 << uint(b)
	}
	if !cfg.Tagging {
		a.pacMask |= 0xFF00000000000000
	} else {
		a.tagMask = 0xFF00000000000000
	}
	// Extension bits are everything above the address bits except the
	// tag byte (which translation ignores when tagging is on).
	for b := cfg.VASize; b < 64; b++ {
		a.extMask |= 1 << uint(b)
	}
	a.extMask &^= a.tagMask
	return a
}

// Config returns the configuration the Authenticator was built with.
func (a *Authenticator) Config() Config { return a.cfg }

// PACBits returns the PAC width b in bits.
func (a *Authenticator) PACBits() int {
	n := 0
	for m := a.pacMask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// PACMask returns the bit mask of pointer bits that carry the PAC.
func (a *Authenticator) PACMask() uint64 { return a.pacMask }

// Canonical returns p with all extension bits (everything above the
// address bits, except tag bits when tagging is enabled) set to the
// sign-extension of bit 55. Tag bits are preserved.
func (a *Authenticator) Canonical(p uint64) uint64 {
	if p&(1<<signBit) != 0 {
		return p | a.extMask
	}
	return p &^ a.extMask
}

// IsCanonical reports whether p's extension bits carry no PAC and no
// corruption, i.e. whether p can be translated without a fault.
func (a *Authenticator) IsCanonical(p uint64) bool {
	return p == a.Canonical(p)
}

// computePAC evaluates the MAC through the memo cache: QARMA-64 over
// the canonical pointer with the modifier as the tweak, then spread
// into the PAC field.
func (a *Authenticator) computePAC(key KeyID, p, modifier uint64) uint64 {
	return a.computePACCanonical(key, a.Canonical(p), modifier)
}

// computePACCanonical is computePAC for a pointer the caller has
// already canonicalized — the single-canonicalization entry every
// sealing/authentication path funnels through, so each PA operation
// canonicalizes its pointer exactly once.
func (a *Authenticator) computePACCanonical(key KeyID, cp, modifier uint64) uint64 {
	e := &a.cache[pacIndex(key, cp, modifier)]
	// seq 0 marks a never-written entry (so the zero tuple cannot
	// false-hit an empty slot); odd marks a write in progress.
	if s := e.seq.Load(); s != 0 && s&1 == 0 &&
		e.key.Load() == uint64(key) && e.ptr.Load() == cp && e.mod.Load() == modifier {
		v := e.val.Load()
		if e.seq.Load() == s {
			if a.tr != nil {
				a.tr.MemoHit.Inc()
			}
			return v
		}
	}
	if a.tr != nil {
		a.tr.MemoMiss.Inc()
	}
	v := a.pacFor(key, cp, modifier)
	if s := e.seq.Load(); s&1 == 0 && e.seq.CompareAndSwap(s, s+1) {
		e.key.Store(uint64(key))
		e.ptr.Store(cp)
		e.mod.Store(modifier)
		e.val.Store(v)
		e.seq.Store(s + 2)
	}
	return v
}

// pacFor is the uncached MAC evaluation; p must already be canonical.
// The full cipher output is folded so every PAC width uses all 64
// output bits.
func (a *Authenticator) pacFor(key KeyID, p, modifier uint64) uint64 {
	ct := a.ciphers[key].Encrypt(p, modifier)
	// Fold the 64-bit ciphertext down to the PAC width, then deposit
	// the bits into the (possibly split) PAC field.
	b := a.PACBits()
	folded := ct
	for sh := 64 - b; sh > 0; sh -= b {
		step := b
		if sh < b {
			step = sh
		}
		folded = (folded >> uint(step)) ^ (folded & (1<<uint(step) - 1))
	}
	return a.depositPAC(folded)
}

// depositPAC scatters the low PACBits() bits of v into the PAC field.
func (a *Authenticator) depositPAC(v uint64) uint64 {
	var out uint64
	bit := uint64(1)
	for m := a.pacMask; m != 0; m &= m - 1 {
		low := m & -m
		if v&bit != 0 {
			out |= low
		}
		bit <<= 1
	}
	return out
}

// AddPAC implements the pac* instructions: it returns p with the PAC
// for (p, modifier) under the chosen key embedded in its extension
// bits.
//
// If p's extension bits are corrupt (non-canonical), the PAC is
// computed for the canonical address and then the well-known poison
// bit of the PAC is flipped, exactly as the architecture specifies.
// This behaviour is what enables — and lets us reproduce — the
// aut/pac re-signing gadget of Section 6.3.1.
func (a *Authenticator) AddPAC(key KeyID, p, modifier uint64) uint64 {
	cp := a.Canonical(p)
	pac := a.computePACCanonical(key, cp, modifier)
	if p != cp {
		pac ^= a.nthPACBit(poisonBit)
	}
	if tr := a.tr; tr != nil {
		tr.PACIssued.Inc()
		if cp == 0 {
			// PAC over the zero pointer: the Listing 3 mask shape.
			tr.Masks.Inc()
			tr.Events.Record(telemetry.EvMask, key.String(), "", modifier)
		} else {
			tr.Events.Record(telemetry.EvPACIssued, key.String(), "", p)
		}
	}
	return cp&^a.pacMask | pac
}

// AddPACPair seals two pointers under the same key and modifier in one
// call: the batched entry point the block-compiled execution engine
// (internal/cpu) uses when a superblock contains adjacent pac*
// instructions sharing a modifier — the PACStack masked prologue's
// "sign LR, then derive the PAC(0, ·) mask" pair (Listing 3). Both
// seals flow through the same memo path and emit the same trace
// updates, in the same order, as two AddPAC calls would; only the call
// overhead is batched, so block-compiled and single-step execution
// stay observably identical.
func (a *Authenticator) AddPACPair(key KeyID, p1, p2, modifier uint64) (uint64, uint64) {
	return a.AddPAC(key, p1, modifier), a.AddPAC(key, p2, modifier)
}

// nthPACBit returns the mask of the n-th lowest bit of the PAC field.
func (a *Authenticator) nthPACBit(n int) uint64 {
	m := a.pacMask
	for ; n > 0; n-- {
		m &= m - 1
	}
	return m & -m
}

// Auth implements the aut* instructions. On success it returns the
// canonical pointer and ok = true. On failure it returns the pointer
// with the PAC stripped and an error-code bit flipped — a
// non-canonical value that faults when translated — and ok = false.
//
// Matching the architecture (and current PA behaviour in Linux 5.0),
// Auth itself never traps; the fault happens at use.
func (a *Authenticator) Auth(key KeyID, p, modifier uint64) (res uint64, ok bool) {
	cp := a.Canonical(p)
	want := a.computePACCanonical(key, cp, modifier)
	if p&a.pacMask == want {
		if tr := a.tr; tr != nil {
			tr.AuthOK.Inc()
			tr.Events.Record(telemetry.EvAuthOK, key.String(), "", p)
		}
		return cp, true
	}
	if tr := a.tr; tr != nil {
		// A broken auth_i = H_k(ret_i, aret_{i-1}) link — the event
		// the whole scheme exists to raise.
		tr.AuthFail.Inc()
		tr.Events.Record(telemetry.EvAuthFail, key.String(), "", p)
	}
	bad := cp
	switch key {
	case KeyIB, KeyDB:
		bad ^= a.nthPACBit(a.PACBits() - 2)
	default:
		bad ^= a.nthPACBit(a.PACBits() - 1)
	}
	return bad, false
}

// StripPAC implements xpac: it removes the PAC, restoring the
// canonical pointer without any check.
func (a *Authenticator) StripPAC(p uint64) uint64 {
	if a.tr != nil {
		a.tr.Strips.Inc()
	}
	return a.Canonical(p)
}

// PACGA computes the generic authentication code: a 32-bit MAC over
// (value, modifier) under the GA key, placed in the top half of the
// result with the bottom half zero.
func (a *Authenticator) PACGA(value, modifier uint64) uint64 {
	if a.tr != nil {
		a.tr.PACGAs.Inc()
	}
	ct := a.ciphers[KeyGA].Encrypt(value, modifier)
	return (ct ^ ct<<32) & 0xFFFFFFFF00000000
}
