package pa

import (
	"fmt"
	mrand "math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"pacstack/internal/qarma"
	"pacstack/internal/telemetry"
)

// testKeys draws a fixed deterministic key set for cache tests that
// compare two Authenticators built over the same keys.
func testKeys() Keys {
	return GenerateKeysFrom(mrand.New(mrand.NewSource(0xACC)))
}

func testAuth(t *testing.T, cfg Config) *Authenticator {
	t.Helper()
	keys := GenerateKeys()
	return New(keys, cfg)
}

func TestPACWidthFigure1(t *testing.T) {
	// Figure 1 / Section 2.2: VA_SIZE = 39 leaves 16 PAC bits when
	// the tag byte is reserved, 24 otherwise.
	cases := []struct {
		cfg  Config
		bits int
	}{
		{Config{VASize: 39, Tagging: true}, 16},
		{Config{VASize: 39, Tagging: false}, 24},
		{Config{VASize: 48, Tagging: true}, 7},
		{Config{VASize: 48, Tagging: false}, 15},
	}
	for _, c := range cases {
		a := testAuth(t, c.cfg)
		if got := a.PACBits(); got != c.bits {
			t.Errorf("VASize=%d tagging=%v: PACBits = %d, want %d",
				c.cfg.VASize, c.cfg.Tagging, got, c.bits)
		}
	}
}

func TestAddAuthRoundTrip(t *testing.T) {
	a := testAuth(t, DefaultConfig())
	f := func(raw uint64, mod uint64) bool {
		p := a.Canonical(raw &^ (1 << 55)) // a user-space pointer
		signed := a.AddPAC(KeyIA, p, mod)
		got, ok := a.Auth(KeyIA, signed, mod)
		return ok && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAuthRejectsWrongModifier(t *testing.T) {
	a := testAuth(t, DefaultConfig())
	p := a.Canonical(0x40_1234)
	signed := a.AddPAC(KeyIA, p, 1)
	got, ok := a.Auth(KeyIA, signed, 2)
	if ok {
		// A 2^-16 collision is possible but vanishingly unlikely for
		// a single fixed input; treat it as failure.
		t.Fatal("auth succeeded with wrong modifier")
	}
	if a.IsCanonical(got) {
		t.Error("failed auth returned a canonical (usable) pointer")
	}
	if a.StripPAC(got) != p {
		t.Error("failed auth corrupted the address bits, not just the extension")
	}
}

func TestAuthRejectsWrongKey(t *testing.T) {
	a := testAuth(t, DefaultConfig())
	p := a.Canonical(0x40_1234)
	signed := a.AddPAC(KeyIA, p, 7)
	if _, ok := a.Auth(KeyIB, signed, 7); ok {
		t.Error("auth succeeded under the wrong key")
	}
}

func TestAuthFailureErrorBitsDistinguishKeys(t *testing.T) {
	a := testAuth(t, DefaultConfig())
	p := a.Canonical(0x40_1234)
	badA, _ := a.Auth(KeyIA, p^a.nthPACBit(3), 0)
	badB, _ := a.Auth(KeyIB, p^a.nthPACBit(3), 0)
	if badA == badB {
		t.Error("A- and B-key failures produced identical error encodings")
	}
	if a.IsCanonical(badA) || a.IsCanonical(badB) {
		t.Error("failure encoding is canonical; it must fault on use")
	}
}

func TestCanonicalSignExtension(t *testing.T) {
	a := testAuth(t, DefaultConfig())
	user := uint64(0x40_0000)
	if got := a.Canonical(user); got != user {
		t.Errorf("user pointer not fixed by Canonical: %#x", got)
	}
	kern := uint64(1)<<55 | 0x40_0000
	got := a.Canonical(kern)
	// Bits 54..39 must sign-extend; the tag byte (63:56) is not part
	// of the extension under TBI.
	if got&(1<<54) == 0 || got&(1<<39) == 0 {
		t.Errorf("kernel pointer extension bits not set: %#x", got)
	}
	if got&(1<<60) != 0 {
		t.Errorf("tag byte modified by Canonical: %#x", got)
	}
}

func TestCanonicalPreservesTags(t *testing.T) {
	a := testAuth(t, Config{VASize: 39, Tagging: true})
	tagged := uint64(0xAB)<<56 | 0x40_0000
	if got := a.Canonical(tagged); got != tagged {
		t.Errorf("tag byte not preserved: %#x", got)
	}
	if !a.IsCanonical(tagged) {
		t.Error("tagged pointer should be canonical under TBI")
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), {VASize: 39}, {VASize: 48, Tagging: true}} {
		a := testAuth(t, cfg)
		f := func(p uint64) bool {
			c := a.Canonical(p)
			return a.Canonical(c) == c && a.IsCanonical(c)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("cfg %+v: %v", cfg, err)
		}
	}
}

func TestStripPAC(t *testing.T) {
	a := testAuth(t, DefaultConfig())
	p := a.Canonical(0x7F_DEAD_BEE8)
	signed := a.AddPAC(KeyDA, p, 42)
	if signed == p {
		t.Skip("PAC happened to be zero for this input")
	}
	if got := a.StripPAC(signed); got != p {
		t.Errorf("StripPAC = %#x, want %#x", got, p)
	}
}

func TestPACDeterministic(t *testing.T) {
	keys := GenerateKeys()
	a1 := New(keys, DefaultConfig())
	a2 := New(keys, DefaultConfig())
	f := func(p, m uint64) bool {
		return a1.AddPAC(KeyIA, p, m) == a2.AddPAC(KeyIA, p, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPACDependsOnKey(t *testing.T) {
	a := New(GenerateKeys(), DefaultConfig())
	b := New(GenerateKeys(), DefaultConfig())
	p := a.Canonical(0x40_1000)
	same := 0
	const trials = 64
	for m := uint64(0); m < trials; m++ {
		if a.AddPAC(KeyIA, p, m) == b.AddPAC(KeyIA, p, m) {
			same++
		}
	}
	// With b = 16, two keys agreeing on more than a few of 64 random
	// PACs is astronomically unlikely.
	if same > 3 {
		t.Errorf("different keys agreed on %d/%d PACs", same, trials)
	}
}

func TestResignPoisonBit(t *testing.T) {
	// Section 6.3.1: pac on a pointer with corrupt extension bits must
	// not produce the valid PAC, but one differing in exactly the
	// well-known poison bit.
	a := testAuth(t, DefaultConfig())
	p := a.Canonical(0x40_2000)
	valid := a.AddPAC(KeyIA, p, 99)

	corrupt, ok := a.Auth(KeyIA, p^a.nthPACBit(5), 99) // guaranteed bad PAC
	if ok {
		t.Fatal("corrupt PAC authenticated")
	}
	resigned := a.AddPAC(KeyIA, corrupt, 99)
	if resigned == valid {
		t.Fatal("re-signing a corrupt pointer yielded a valid PAC directly")
	}
	if resigned^valid != a.nthPACBit(0) {
		t.Errorf("poison delta = %#x, want single bit %#x", resigned^valid, a.nthPACBit(0))
	}
	// The attacker's final step: flip the poison bit back.
	if fixed := resigned ^ a.nthPACBit(0); fixed != valid {
		t.Error("flipping the poison bit back did not recover the valid PAC")
	}
}

func TestPACGA(t *testing.T) {
	a := testAuth(t, DefaultConfig())
	g := a.PACGA(0x1234, 0x5678)
	if g&0x00000000FFFFFFFF != 0 {
		t.Errorf("PACGA low half must be zero: %#x", g)
	}
	if g == 0 {
		t.Skip("32-bit MAC happened to be zero")
	}
	if a.PACGA(0x1234, 0x5679) == g && a.PACGA(0x1235, 0x5678) == g {
		t.Error("PACGA ignores its inputs")
	}
}

func TestGenerateKeysDistinct(t *testing.T) {
	ks := GenerateKeys()
	for i := 0; i < int(numKeys); i++ {
		for j := i + 1; j < int(numKeys); j++ {
			if ks[i] == ks[j] {
				t.Errorf("keys %v and %v identical", KeyID(i), KeyID(j))
			}
		}
	}
	if GenerateKeys() == ks {
		t.Error("two GenerateKeys calls returned the same key set")
	}
}

func TestKeyIDString(t *testing.T) {
	want := map[KeyID]string{KeyIA: "IA", KeyIB: "IB", KeyDA: "DA", KeyDB: "DB", KeyGA: "GA"}
	for id, s := range want {
		if id.String() != s {
			t.Errorf("KeyID(%d).String() = %q, want %q", id, id.String(), s)
		}
	}
}

func TestNewPanicsOnBadVASize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for VASize 10")
		}
	}()
	New(GenerateKeys(), Config{VASize: 10})
}

func TestPACDistributionRoughlyUniform(t *testing.T) {
	// Sanity-check that the PAC behaves like a 16-bit random function:
	// over 4096 modifiers the observed collision count should be near
	// the birthday expectation, not degenerate.
	a := testAuth(t, DefaultConfig())
	p := a.Canonical(0x40_3000)
	seen := make(map[uint64]int)
	const n = 4096
	for m := uint64(0); m < n; m++ {
		seen[a.AddPAC(KeyIA, p, m)&a.PACMask()]++
	}
	if len(seen) < n*9/10 {
		t.Errorf("only %d distinct PACs over %d modifiers; distribution is degenerate", len(seen), n)
	}
}

func BenchmarkAddPAC(b *testing.B) {
	a := New(GenerateKeys(), DefaultConfig())
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= a.AddPAC(KeyIA, 0x40_0000, uint64(i))
	}
	_ = sink
}

func BenchmarkAuth(b *testing.B) {
	a := New(GenerateKeys(), DefaultConfig())
	signed := a.AddPAC(KeyIA, 0x40_0000, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Auth(KeyIA, signed, 7)
	}
}

func TestAllKeysRoundTripProperty(t *testing.T) {
	a := testAuth(t, DefaultConfig())
	keys := []KeyID{KeyIA, KeyIB, KeyDA, KeyDB}
	f := func(raw, mod uint64, pick uint8) bool {
		k := keys[int(pick)%len(keys)]
		p := a.Canonical(raw &^ (1 << 55))
		got, ok := a.Auth(k, a.AddPAC(k, p, mod), mod)
		return ok && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeysProduceIndependentPACs(t *testing.T) {
	a := testAuth(t, DefaultConfig())
	p := a.Canonical(0x40_5000)
	keys := []KeyID{KeyIA, KeyIB, KeyDA, KeyDB}
	agree := 0
	const trials = 64
	for m := uint64(0); m < trials; m++ {
		pacs := map[uint64]bool{}
		for _, k := range keys {
			pacs[a.AddPAC(k, p, m)] = true
		}
		if len(pacs) < len(keys) {
			agree++
		}
	}
	if agree > 3 {
		t.Errorf("different keys agreed on the same PAC in %d/%d trials", agree, trials)
	}
}

func TestConfigVariantsRoundTrip(t *testing.T) {
	// The authenticator works across cipher parameterizations: round
	// counts and S-box variants only change the PAC values, never the
	// sign/verify contract.
	cfgs := []Config{
		{VASize: 39, Tagging: true, Rounds: 5, Sbox: qarma.Sigma1},
		{VASize: 39, Tagging: false, Rounds: 7, Sbox: qarma.Sigma2},
		{VASize: 48, Tagging: false},
	}
	for _, cfg := range cfgs {
		a := testAuth(t, cfg)
		p := a.Canonical(0x40_6000)
		signed := a.AddPAC(KeyIA, p, 9)
		if got, ok := a.Auth(KeyIA, signed, 9); !ok || got != p {
			t.Errorf("cfg %+v: round trip failed", cfg)
		}
	}
	// Different parameterizations of the same keys disagree on PACs.
	keys := GenerateKeys()
	a5 := New(keys, Config{VASize: 39, Tagging: true, Rounds: 5})
	a7 := New(keys, Config{VASize: 39, Tagging: true, Rounds: 7})
	same := 0
	for m := uint64(0); m < 64; m++ {
		if a5.AddPAC(KeyIA, 0x40_6000, m) == a7.AddPAC(KeyIA, 0x40_6000, m) {
			same++
		}
	}
	if same > 3 {
		t.Errorf("r=5 and r=7 agree on %d/64 PACs", same)
	}
}

func TestPACCacheTransparent(t *testing.T) {
	// The memo cache must be semantically invisible: a long, repeated
	// call pattern against one Authenticator (cache hits) must produce
	// exactly the values a fresh Authenticator (all misses) computes.
	keys := testKeys()
	hot := New(keys, DefaultConfig())
	rng := mrand.New(mrand.NewSource(11))
	type q struct {
		key    KeyID
		p, mod uint64
	}
	queries := make([]q, 512)
	for i := range queries {
		// Canonical pointers: AddPAC poisons non-canonical inputs, and
		// this test wants the round trip to authenticate.
		queries[i] = q{KeyID(rng.Intn(int(numKeys))), hot.Canonical(rng.Uint64() & 0x7FFF_FFFF_FFFF), rng.Uint64()}
	}
	// Two passes over the same queries: the second pass is all hits.
	for pass := 0; pass < 2; pass++ {
		for i, qu := range queries {
			fresh := New(keys, DefaultConfig())
			want := fresh.AddPAC(qu.key, qu.p, qu.mod)
			if got := hot.AddPAC(qu.key, qu.p, qu.mod); got != want {
				t.Fatalf("pass %d query %d: cached AddPAC %#x, fresh %#x", pass, i, got, want)
			}
			if res, ok := hot.Auth(qu.key, want, qu.mod); !ok || res != fresh.Canonical(qu.p) {
				t.Fatalf("pass %d query %d: cached Auth diverged (ok=%v res=%#x)", pass, i, ok, res)
			}
		}
	}
}

func TestPACCacheConcurrentUse(t *testing.T) {
	// The Authenticator documents safety for concurrent use; hammer
	// one instance from several goroutines over a colliding working
	// set and check every result against an uncached reference. Run
	// under -race via check.sh, this also proves the seqlock publishes
	// entries safely.
	keys := testKeys()
	shared := New(keys, DefaultConfig())
	ref := New(keys, DefaultConfig())
	want := make([]uint64, 256)
	for i := range want {
		want[i] = ref.pacFor(KeyIA, ref.Canonical(uint64(i)*0x1001), uint64(i%7))
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := mrand.New(mrand.NewSource(int64(g)))
			for n := 0; n < 20_000; n++ {
				i := rng.Intn(len(want))
				got := shared.computePAC(KeyIA, uint64(i)*0x1001, uint64(i%7))
				if got != want[i] {
					errs[g] = fmt.Errorf("goroutine %d: computePAC(%d) = %#x, want %#x", g, i, got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAddPACPairMatchesTwoSeals(t *testing.T) {
	// AddPACPair is the block engine's batched entry point for the
	// fused masked-prologue shape: it must be observably identical to
	// two AddPAC calls — same sealed values AND the same trace
	// counters and event stream, in the same order.
	keys := testKeys()
	mkTraced := func() (*Authenticator, *Trace) {
		a := New(keys, DefaultConfig())
		reg := telemetry.NewRegistry()
		tr := &Trace{
			PACIssued: reg.Counter("pac_issued", ""),
			Masks:     reg.Counter("masks", ""),
			MemoHit:   reg.Counter("memo_hit", ""),
			MemoMiss:  reg.Counter("memo_miss", ""),
			Events:    telemetry.NewEventLog(64),
		}
		a.SetTrace(tr)
		return a, tr
	}
	paired, ptr := mkTraced()
	serial, str := mkTraced()
	rng := mrand.New(mrand.NewSource(42))
	for i := 0; i < 200; i++ {
		p1 := rng.Uint64() & 0x7FFF_FFFF_FFFF
		p2 := rng.Uint64() & 0x7FFF_FFFF_FFFF
		if i%5 == 0 {
			p1 = 0 // the Listing 3 mask shape must count as a mask
		}
		if i%7 == 0 {
			p1 |= 1 << 62 // non-canonical: the poison bit must carry
		}
		mod := rng.Uint64()
		key := KeyID(rng.Intn(int(numKeys)))
		g1, g2 := paired.AddPACPair(key, p1, p2, mod)
		w1 := serial.AddPAC(key, p1, mod)
		w2 := serial.AddPAC(key, p2, mod)
		if g1 != w1 || g2 != w2 {
			t.Fatalf("query %d: AddPACPair = (%#x, %#x), two AddPACs = (%#x, %#x)", i, g1, g2, w1, w2)
		}
	}
	if a, b := ptr.PACIssued.Value(), str.PACIssued.Value(); a != b {
		t.Errorf("PACIssued diverged: pair %d, serial %d", a, b)
	}
	if a, b := ptr.Masks.Value(), str.Masks.Value(); a != b {
		t.Errorf("Masks diverged: pair %d, serial %d", a, b)
	}
	if a, b := ptr.MemoHit.Value(), str.MemoHit.Value(); a != b {
		t.Errorf("MemoHit diverged: pair %d, serial %d", a, b)
	}
	if a, b := ptr.MemoMiss.Value(), str.MemoMiss.Value(); a != b {
		t.Errorf("MemoMiss diverged: pair %d, serial %d", a, b)
	}
	pe, se := ptr.Events.Snapshot(), str.Events.Snapshot()
	if !reflect.DeepEqual(pe, se) {
		t.Errorf("event streams diverged: pair %d events, serial %d events", len(pe.Events), len(se.Events))
	}
}
