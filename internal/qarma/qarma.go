// Package qarma implements the QARMA-64 tweakable block cipher
// (R. Avanzi, "The QARMA Block Cipher Family", IACR ToSC 2017(1)).
//
// QARMA is the reference primitive behind the ARMv8.3-A pointer
// authentication (PA) extension: a PAC is a truncation of
// QARMA-64(key, pointer, modifier). This package provides the full
// cipher — encryption and decryption, all three S-box variants, and a
// configurable number of rounds — so that the PA model built on top of
// it reproduces the exact collision and truncation behaviour the
// PACStack security analysis depends on.
//
// The state is 64 bits viewed as sixteen 4-bit cells arranged in a 4x4
// matrix; cell 0 is the most significant nibble. The key is 128 bits,
// split into a whitening key w0 and a core key k0.
package qarma

// Sigma selects one of the three involutory-or-almost S-boxes defined
// for the QARMA family. The ARMv8.3-A reference implementation uses
// σ1; σ0 is the cheapest and σ2 the one with the best cryptographic
// properties.
type Sigma int

// S-box variants from the QARMA specification.
const (
	Sigma0 Sigma = iota
	Sigma1
	Sigma2
)

// DefaultRounds is the number of forward (and backward) rounds r used
// when no explicit round count is requested. r=7 is the value
// recommended for QARMA-64 in the specification; the published
// known-answer vectors use r=5.
const DefaultRounds = 7

// BlockSize is the cipher block size in bytes.
const BlockSize = 8

// KeySize is the cipher key size in bytes (w0 || k0).
const KeySize = 16

// Cipher is a QARMA-64 instance with a fixed key, S-box and round
// count. It is immutable after creation and safe for concurrent use.
type Cipher struct {
	w0, w1 uint64 // whitening keys
	k0, k1 uint64 // core keys (k1 = k0; kept separate to mirror the spec)
	rounds int
	sbox   *sboxPair
}

// Config carries the cipher parameters that are not part of the key.
type Config struct {
	// Rounds is the number of forward rounds r. Zero selects
	// DefaultRounds.
	Rounds int
	// Sbox selects the S-box variant. The zero value is Sigma0.
	Sbox Sigma
}

// New returns a QARMA-64 cipher for the 128-bit key (w0, k0).
func New(w0, k0 uint64, cfg Config) *Cipher {
	r := cfg.Rounds
	if r == 0 {
		r = DefaultRounds
	}
	if r < 1 || r > len(roundConstants) {
		panic("qarma: round count out of range")
	}
	return &Cipher{
		w0:     w0,
		w1:     omega(w0),
		k0:     k0,
		k1:     k0,
		rounds: r,
		sbox:   sboxes[cfg.Sbox],
	}
}

// NewFromBytes builds a cipher from a 16-byte key laid out big-endian
// as w0 || k0.
func NewFromBytes(key []byte, cfg Config) *Cipher {
	if len(key) != KeySize {
		panic("qarma: key must be 16 bytes")
	}
	w0 := be64(key[:8])
	k0 := be64(key[8:])
	return New(w0, k0, cfg)
}

func be64(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

// omega derives the secondary whitening key w1 from w0:
// w1 = (w0 >>> 1) XOR (w0 >> 63), i.e. a rotation with the wrapped bit
// also folded into the least significant position.
func omega(w0 uint64) uint64 {
	return (w0>>1 | w0<<63) ^ (w0 >> 63)
}

// Encrypt computes the QARMA-64 encryption of the plaintext block p
// under tweak t.
func (c *Cipher) Encrypt(p, t uint64) uint64 {
	is := p ^ c.w0
	tweak := t

	// Forward rounds. Round 0 is "short": no shuffle or MixColumns.
	for i := 0; i < c.rounds; i++ {
		is = c.forward(is, c.k0^tweak^roundConstants[i], i != 0)
		tweak = tweakForward(tweak)
	}

	// Central construction: one full forward round keyed with
	// w1 ^ tweak, the pseudo-reflector keyed with k1, then one full
	// backward round keyed with w0 ^ tweak.
	is = c.forward(is, c.w1^tweak, true)
	is = c.reflect(is, c.k1)
	is = c.backward(is, c.w0^tweak, true)

	// Backward rounds, mirroring the forward ones.
	for i := c.rounds - 1; i >= 0; i-- {
		tweak = tweakBackward(tweak)
		is = c.backward(is, c.k0^tweak^roundConstants[i]^alpha, i != 0)
	}

	return is ^ c.w1
}

// Decrypt inverts Encrypt: Decrypt(Encrypt(p, t), t) == p.
//
// Decryption of QARMA is encryption with the derived key set
// (w0', k0') = (w1, k0^alpha) and the reflector key replaced by
// o(k1) folded in; the spec expresses this as running the circuit
// backwards, which is what we do here for clarity.
func (c *Cipher) Decrypt(ct, t uint64) uint64 {
	is := ct ^ c.w1

	// Recompute the tweak sequence so we can walk it in reverse.
	tweaks := make([]uint64, c.rounds+1)
	tw := t
	for i := 0; i < c.rounds; i++ {
		tweaks[i] = tw
		tw = tweakForward(tw)
	}
	tweaks[c.rounds] = tw // tweak used for the central rounds

	// Undo backward rounds (they become forward rounds in reverse).
	for i := 0; i < c.rounds; i++ {
		is = c.forward(is, c.k0^tweaks[i]^roundConstants[i]^alpha, i != 0)
	}

	// Undo the central construction.
	is = c.forward(is, c.w0^tweaks[c.rounds], true)
	is = c.reflectInv(is, c.k1)
	is = c.backward(is, c.w1^tweaks[c.rounds], true)

	// Undo forward rounds.
	for i := c.rounds - 1; i >= 0; i-- {
		is = c.backward(is, c.k0^tweaks[i]^roundConstants[i], i != 0)
	}

	return is ^ c.w0
}

// forward applies one forward round: add round tweakey, then (unless
// the round is short) ShuffleCells and MixColumns, then the S layer.
func (c *Cipher) forward(is, tk uint64, full bool) uint64 {
	is ^= tk
	if full {
		is = shuffle(is, cellPerm[:])
		is = mixColumns(is)
	}
	return substitute(is, &c.sbox.fwd)
}

// backward applies one inverse round: inverse S layer, then (unless
// short) inverse MixColumns and inverse ShuffleCells, then add the
// round tweakey.
func (c *Cipher) backward(is, tk uint64, full bool) uint64 {
	is = substitute(is, &c.sbox.inv)
	if full {
		is = mixColumns(is) // M is involutory
		is = shuffle(is, cellPermInv[:])
	}
	return is ^ tk
}

// reflect is the pseudo-reflector: ShuffleCells, multiply by the
// involutory matrix Q (= M), add the core key, inverse ShuffleCells.
func (c *Cipher) reflect(is, k uint64) uint64 {
	is = shuffle(is, cellPerm[:])
	is = mixColumns(is)
	is ^= k
	return shuffle(is, cellPermInv[:])
}

// reflectInv inverts reflect. The key addition sits between Q and
// τ⁻¹, so the reflector is not an involution even though Q is.
func (c *Cipher) reflectInv(is, k uint64) uint64 {
	is = shuffle(is, cellPerm[:])
	is ^= k
	is = mixColumns(is)
	return shuffle(is, cellPermInv[:])
}

// cell extracts 4-bit cell i (cell 0 = most significant nibble).
func cell(v uint64, i int) uint64 {
	return (v >> uint(60-4*i)) & 0xF
}

// withCell returns v with cell i replaced.
func withCell(v uint64, i int, x uint64) uint64 {
	sh := uint(60 - 4*i)
	return (v &^ (0xF << sh)) | (x&0xF)<<sh
}

// shuffle permutes cells: output cell i takes input cell perm[i].
func shuffle(v uint64, perm []int) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		out = withCell(out, i, cell(v, perm[i]))
	}
	return out
}

// rotCell rotates a 4-bit cell left by n.
func rotCell(x uint64, n int) uint64 {
	if n == 0 {
		return x & 0xF
	}
	return ((x << uint(n)) | (x >> uint(4-n))) & 0xF
}

// mixColumns multiplies the state, viewed as a 4x4 cell matrix in
// row-major order, by M = M4,2 = circ(0, ρ¹, ρ², ρ¹). The matrix is
// involutory, so it serves as its own inverse and as the reflector
// matrix Q.
func mixColumns(v uint64) uint64 {
	var out uint64
	for col := 0; col < 4; col++ {
		var in [4]uint64
		for row := 0; row < 4; row++ {
			in[row] = cell(v, 4*row+col)
		}
		for row := 0; row < 4; row++ {
			var acc uint64
			for j := 0; j < 4; j++ {
				e := mixExp[(j-row+4)%4]
				if e < 0 {
					continue
				}
				acc ^= rotCell(in[j], e)
			}
			out = withCell(out, 4*row+col, acc)
		}
	}
	return out
}

// substitute applies the S-box to every cell.
func substitute(v uint64, sb *[16]uint64) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		out = withCell(out, i, sb[cell(v, i)])
	}
	return out
}

// tweakForward advances the tweak by one round: permute the cells with
// h, then clock the LFSR ω on cells {0, 1, 3, 4, 8, 11, 13}.
func tweakForward(t uint64) uint64 {
	t = shuffle(t, tweakPerm[:])
	for _, i := range lfsrCells {
		t = withCell(t, i, lfsr(cell(t, i)))
	}
	return t
}

// tweakBackward inverts tweakForward.
func tweakBackward(t uint64) uint64 {
	for _, i := range lfsrCells {
		t = withCell(t, i, lfsrInv(cell(t, i)))
	}
	return shuffle(t, tweakPermInv[:])
}

// lfsr is the 4-bit maximal-period LFSR ω used in the tweak schedule:
// (b3, b2, b1, b0) -> (b0 XOR b1, b3, b2, b1).
func lfsr(x uint64) uint64 {
	b0 := x & 1
	b1 := (x >> 1) & 1
	return ((b0^b1)<<3 | x>>1) & 0xF
}

// lfsrInv inverts lfsr: (y3, y2, y1, y0) -> (y2, y1, y0, y3 XOR y0).
func lfsrInv(x uint64) uint64 {
	y0 := x & 1
	y3 := (x >> 3) & 1
	return ((x << 1) | (y3 ^ y0)) & 0xF
}
