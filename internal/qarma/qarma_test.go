package qarma

import (
	"testing"
	"testing/quick"
)

// Known-answer inputs from the QARMA specification (Avanzi, ToSC
// 2017(1)).
const (
	kaW0 uint64 = 0x84be85ce9804e94b
	kaK0 uint64 = 0xec2802d4e0a488e9
	kaP  uint64 = 0xfb623599da6e8127
	kaT  uint64 = 0x477d469dec0b8762
)

// The published QARMA-64 σ0 test vectors at r = 5, 6 and 7 — this
// implementation reproduces all three.
var publishedSigma0 = []struct {
	rounds int
	ct     uint64
}{
	{5, 0x3ee99a6c82af0c38},
	{6, 0x9f5c41ec525603c9},
	{7, 0xbcaf6c89de930765},
}

// Frozen regression values for the σ1/σ2 variants at r = 5, generated
// by this implementation; they pin the S-box wiring against change.
var frozenVariants = []struct {
	sbox Sigma
	ct   uint64
}{
	{Sigma1, 0x544b0ab95bda7c3a},
	{Sigma2, 0xc003b93999b33765},
}

func TestKnownAnswerVectors(t *testing.T) {
	for _, ka := range publishedSigma0 {
		c := New(kaW0, kaK0, Config{Rounds: ka.rounds, Sbox: Sigma0})
		got := c.Encrypt(kaP, kaT)
		if got != ka.ct {
			t.Errorf("sigma0 r=%d: Encrypt = %#016x, want %#016x", ka.rounds, got, ka.ct)
		}
		if back := c.Decrypt(ka.ct, kaT); back != kaP {
			t.Errorf("sigma0 r=%d: Decrypt = %#016x, want %#016x", ka.rounds, back, kaP)
		}
	}
	for _, ka := range frozenVariants {
		c := New(kaW0, kaK0, Config{Rounds: 5, Sbox: ka.sbox})
		if got := c.Encrypt(kaP, kaT); got != ka.ct {
			t.Errorf("sigma%d: Encrypt = %#016x, want %#016x", ka.sbox, got, ka.ct)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	for _, sb := range []Sigma{Sigma0, Sigma1, Sigma2} {
		for _, r := range []int{1, 3, 5, 7} {
			c := New(0x0123456789abcdef, 0xfedcba9876543210, Config{Rounds: r, Sbox: sb})
			f := func(p, tw uint64) bool {
				return c.Decrypt(c.Encrypt(p, tw), tw) == p
			}
			if err := quick.Check(f, nil); err != nil {
				t.Errorf("sigma%d r=%d: %v", sb, r, err)
			}
		}
	}
}

func TestTweakScheduleInverts(t *testing.T) {
	f := func(tw uint64) bool {
		return tweakBackward(tweakForward(tw)) == tw && tweakForward(tweakBackward(tw)) == tw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLFSRInverts(t *testing.T) {
	for x := uint64(0); x < 16; x++ {
		if lfsrInv(lfsr(x)) != x {
			t.Errorf("lfsrInv(lfsr(%d)) = %d", x, lfsrInv(lfsr(x)))
		}
	}
	// ω must have maximal period 15 on the nonzero cells.
	seen := map[uint64]bool{}
	x := uint64(1)
	for i := 0; i < 15; i++ {
		if seen[x] {
			t.Fatalf("lfsr cycle shorter than 15 (repeat at step %d)", i)
		}
		seen[x] = true
		x = lfsr(x)
	}
	if x != 1 {
		t.Errorf("lfsr period is not 15: returned to %d", x)
	}
}

func TestMixColumnsInvolutory(t *testing.T) {
	f := func(v uint64) bool { return mixColumns(mixColumns(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleInverts(t *testing.T) {
	f := func(v uint64) bool {
		return shuffle(shuffle(v, cellPerm[:]), cellPermInv[:]) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSboxesAreBijective(t *testing.T) {
	for name, p := range sboxes {
		var seen [16]bool
		for _, v := range p.fwd {
			if seen[v] {
				t.Errorf("sigma%d: duplicate output %d", name, v)
			}
			seen[v] = true
		}
		for x := uint64(0); x < 16; x++ {
			if p.inv[p.fwd[x]] != x {
				t.Errorf("sigma%d: inverse mismatch at %d", name, x)
			}
		}
	}
}

func TestCellAccessors(t *testing.T) {
	v := uint64(0x0123456789abcdef)
	for i := 0; i < 16; i++ {
		if got := cell(v, i); got != uint64(i) {
			t.Errorf("cell(%d) = %d, want %d", i, got, i)
		}
	}
	if got := withCell(0, 0, 0xF); got != 0xF000000000000000 {
		t.Errorf("withCell(0,0,0xF) = %#x", got)
	}
	if got := withCell(0, 15, 0xF); got != 0xF {
		t.Errorf("withCell(0,15,0xF) = %#x", got)
	}
}

func TestTweakChangesCiphertext(t *testing.T) {
	c := New(kaW0, kaK0, Config{Rounds: 5})
	if c.Encrypt(kaP, kaT) == c.Encrypt(kaP, kaT+1) {
		t.Error("different tweaks produced identical ciphertexts")
	}
}

func TestKeyChangesCiphertext(t *testing.T) {
	a := New(kaW0, kaK0, Config{Rounds: 5})
	b := New(kaW0, kaK0^1, Config{Rounds: 5})
	if a.Encrypt(kaP, kaT) == b.Encrypt(kaP, kaT) {
		t.Error("different keys produced identical ciphertexts")
	}
}

func TestNewFromBytes(t *testing.T) {
	key := []byte{
		0x84, 0xbe, 0x85, 0xce, 0x98, 0x04, 0xe9, 0x4b,
		0xec, 0x28, 0x02, 0xd4, 0xe0, 0xa4, 0x88, 0xe9,
	}
	c := NewFromBytes(key, Config{Rounds: 5})
	if got := c.Encrypt(kaP, kaT); got != publishedSigma0[0].ct {
		t.Errorf("NewFromBytes cipher mismatch: %#016x", got)
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	mustPanic(t, func() { New(0, 0, Config{Rounds: 100}) })
	mustPanic(t, func() { NewFromBytes(make([]byte, 3), Config{}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func BenchmarkEncrypt(b *testing.B) {
	c := New(kaW0, kaK0, Config{Rounds: 7})
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= c.Encrypt(kaP+uint64(i), kaT)
	}
	_ = sink
}

func TestDefaultRoundsMatchPublishedVector(t *testing.T) {
	// The default configuration (r = 7, σ0) — what the PA model runs
	// on — must hit the published r=7 vector exactly.
	c := New(kaW0, kaK0, Config{})
	got := c.Encrypt(kaP, kaT)
	if got != publishedSigma0[2].ct {
		t.Errorf("default config: %#016x, want the published r=7 vector %#016x",
			got, publishedSigma0[2].ct)
	}
	if c.Decrypt(got, kaT) != kaP {
		t.Error("r=7 decrypt failed")
	}
}
