package qarma

// Constants and tables from the QARMA specification (Avanzi, ToSC
// 2017(1), Section 2). All values are spelled exactly as published.

// roundConstants are the per-round constants c_i, derived from the
// expansion of π. c_0 = 0 so that the first (short) round adds only
// the key and tweak.
var roundConstants = [8]uint64{
	0x0000000000000000,
	0x13198A2E03707344,
	0xA4093822299F31D0,
	0x082EFA98EC4E6C89,
	0x452821E638D01377,
	0xBE5466CF34E90C6C,
	0x3F84D5B5B5470917,
	0x9216D5D98979FB1B,
}

// alpha is the constant XORed into the backward round tweakeys to
// break the symmetry between the forward and backward halves.
const alpha = 0xC0AC29B7C97C50DD

// cellPerm is the state cell shuffle τ: output cell i takes input
// cell cellPerm[i].
var cellPerm = [16]int{0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2}

// cellPermInv is τ⁻¹.
var cellPermInv = invertPerm(cellPerm)

// tweakPerm is the tweak cell permutation h.
var tweakPerm = [16]int{6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11}

// tweakPermInv is h⁻¹.
var tweakPermInv = invertPerm(tweakPerm)

// lfsrCells are the tweak cells clocked by ω each round.
var lfsrCells = [7]int{0, 1, 3, 4, 8, 11, 13}

// mixExp gives the rotation exponents of the circulant MixColumns
// matrix M4,2 = circ(0, ρ¹, ρ², ρ¹); -1 marks the zero entry.
var mixExp = [4]int{-1, 1, 2, 1}

// sboxPair bundles an S-box with its inverse.
type sboxPair struct {
	fwd [16]uint64
	inv [16]uint64
}

// The three QARMA S-boxes.
var sboxes = map[Sigma]*sboxPair{
	Sigma0: newSboxPair([16]uint64{0, 14, 2, 10, 9, 15, 8, 11, 6, 4, 3, 7, 13, 12, 1, 5}),
	Sigma1: newSboxPair([16]uint64{10, 13, 14, 6, 15, 7, 3, 5, 9, 8, 0, 12, 11, 1, 2, 4}),
	Sigma2: newSboxPair([16]uint64{11, 6, 8, 15, 12, 0, 9, 14, 3, 7, 4, 5, 13, 2, 1, 10}),
}

func newSboxPair(fwd [16]uint64) *sboxPair {
	p := &sboxPair{fwd: fwd}
	for i, v := range fwd {
		p.inv[v] = uint64(i)
	}
	return p
}

func invertPerm(p [16]int) [16]int {
	var inv [16]int
	for i, v := range p {
		inv[v] = i
	}
	return inv
}
