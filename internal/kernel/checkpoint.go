package kernel

import (
	"errors"
	"fmt"

	"pacstack/internal/cpu"
	"pacstack/internal/isa"
	"pacstack/internal/mem"
	"pacstack/internal/pa"
)

// Checkpoint is the full machine state of one process in exportable
// form: every mapped page with its protections, every task's register
// file (including the reserved PACStack chain register CR — it is just
// X28 in the register array), the kernel-held PA key material, the
// kernel-side process metadata, and the pending post-mortem. It is
// what the snapshot codec (internal/snap) serializes.
//
// Checkpointing is a kernel (EL1) operation: the keys cross the
// user/kernel boundary here exactly as they would in a hibernation
// image, which is why snapshot storage integrity is itself part of
// the trusted computing base — a torn or tampered image must never
// restore silently (internal/snap's whole reason to exist).
//
// Deliberately not captured: forked children (each process checkpoints
// independently), and the CFI / syscall / fault-injection hooks, which
// are re-installed by booting the restoring process from its image.
type Checkpoint struct {
	PID     int
	NextPID int
	NextTID int

	Keys   pa.Keys
	Config pa.Config

	Output   []byte
	Exited   bool
	ExitCode uint64

	HardenedSigreturn  bool
	FullFrameSigreturn bool

	Kill *KillCheckpoint

	Tasks []TaskCheckpoint
	Pages []mem.PageState
}

// TaskCheckpoint is one task's saved state: the machine's
// architectural state plus the kernel task-struct fields (scheduler
// Done bit, the Appendix B sigreturn reference chain).
type TaskCheckpoint struct {
	ID      int
	M       cpu.State
	Done    bool
	SigRefs []uint64
}

// KillCheckpoint is a serializable post-mortem. The cause error chain
// cannot cross a serialization boundary, so only its rendering
// survives; a restored Kill therefore supports String() and display
// but not errors.As on the original typed cause.
type KillCheckpoint struct {
	TaskID int
	PC     uint64
	Symbol string
	Cause  string
}

// Checkpoint captures the process's full machine state. The process
// must be between instructions (not inside Step), which every caller
// — supervisors between run slices, the crash-matrix harness — is.
func (p *Process) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		PID:                p.PID,
		NextPID:            *p.nextPID,
		NextTID:            p.nextTID,
		Keys:               p.keys,
		Config:             p.k.cfg,
		Output:             append([]byte(nil), p.Output...),
		Exited:             p.Exited,
		ExitCode:           p.ExitCode,
		HardenedSigreturn:  p.HardenedSigreturn,
		FullFrameSigreturn: p.FullFrameSigreturn,
		Pages:              p.Mem.Pages(),
	}
	if p.Kill != nil {
		cp.Kill = &KillCheckpoint{
			TaskID: p.Kill.TaskID,
			PC:     p.Kill.PC,
			Symbol: p.Kill.Symbol,
			Cause:  fmt.Sprint(p.Kill.Cause),
		}
	}
	for _, t := range p.Tasks {
		cp.Tasks = append(cp.Tasks, TaskCheckpoint{
			ID:      t.ID,
			M:       t.M.CaptureState(),
			Done:    t.Done,
			SigRefs: append([]uint64(nil), t.sigRefs...),
		})
	}
	return cp
}

// ReseedKeys draws fresh PA keys for the process in place, without
// touching its address space, tasks or program — the migration-time
// analogue of the exec respawn's key refresh (Section 4.3). Every PAC
// sealed under the old keys is worthless afterwards, so callers must
// only reseed chain-neutral state: a process that has never executed
// (a boot-state snapshot) or one quiesced with an empty auth chain.
// The cluster migration protocol depends on exactly this — a machine
// restored on a new backend must not share keys with its dead
// incarnation, or a snapshot theft would carry the old backend's
// guessing-game progress across the failover.
func (p *Process) ReseedKeys() {
	p.keys = p.k.genKeys()
	p.Auth = pa.New(p.keys, p.k.cfg)
	if p.k.tel != nil {
		p.Auth.SetTrace(p.k.tel.Chain)
	}
	for _, t := range p.Tasks {
		t.M.Auth = p.Auth
	}
}

// Restore overwrites the process's state with the checkpoint. The
// receiver must be a freshly booted process from the same program
// image: Restore replaces the address space, key material and task
// set wholesale, but keeps the program, the syscall binding and the
// CFI hooks the boot installed (they are image-derived, not state).
//
// The restored process resumes mid-run: its tasks continue from their
// saved PCs with their saved chain registers, and every authenticated
// pointer in the restored memory verifies again because the keys came
// back with it — the property the warm-restore respawn path depends
// on.
func (p *Process) Restore(cp *Checkpoint) error {
	if len(cp.Tasks) == 0 {
		return errors.New("kernel: checkpoint has no tasks")
	}
	if cp.Config != p.k.cfg {
		return fmt.Errorf("kernel: checkpoint PA config %+v does not match kernel %+v", cp.Config, p.k.cfg)
	}
	m, err := mem.FromPages(cp.Pages)
	if err != nil {
		return fmt.Errorf("kernel: restoring address space: %w", err)
	}
	p.PID = cp.PID
	*p.nextPID = cp.NextPID
	p.Mem = m
	p.keys = cp.Keys
	p.Auth = pa.New(cp.Keys, p.k.cfg)
	p.Output = append([]byte(nil), cp.Output...)
	p.Exited = cp.Exited
	p.ExitCode = cp.ExitCode
	p.HardenedSigreturn = cp.HardenedSigreturn
	p.FullFrameSigreturn = cp.FullFrameSigreturn
	p.Kill = nil
	if cp.Kill != nil {
		p.Kill = &KillInfo{
			TaskID: cp.Kill.TaskID,
			PC:     cp.Kill.PC,
			Symbol: cp.Kill.Symbol,
			Cause:  errors.New(cp.Kill.Cause),
		}
	}
	p.Tasks = nil
	p.nextTID = 0
	for _, tc := range cp.Tasks {
		t := p.spawn(tc.M.PC, tc.M.Regs[isa.SP]) // spawn installs the syscall/CFI closures
		t.ID = tc.ID
		t.M.RestoreState(tc.M)
		t.Done = tc.Done
		t.sigRefs = append([]uint64(nil), tc.SigRefs...)
	}
	p.nextTID = cp.NextTID
	return nil
}
