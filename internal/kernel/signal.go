package kernel

import (
	"fmt"

	"pacstack/internal/isa"
	"pacstack/internal/telemetry"
)

// Signal frame layout, in 64-bit words from the frame base (which is
// the task's SP while the handler runs):
//
//	[0]              saved PC (sigret)
//	[1]              saved NZCV flags
//	[2]              previous asigret reference (Appendix B chain)
//	[3 .. 3+32)      X0..X30, SP
//
// The frame lives on the user stack — deliberately: this is the
// attack surface of sigreturn-oriented programming (Section 6.3.2).
const (
	frameWords = 3 + 32
	// FrameSize is the stack space a signal frame occupies, kept
	// 16-byte aligned like the AArch64 ABI requires.
	FrameSize = (frameWords*8 + 15) &^ 15
)

func packFlags(n, z, c, v bool) uint64 {
	var f uint64
	if n {
		f |= 8
	}
	if z {
		f |= 4
	}
	if c {
		f |= 2
	}
	if v {
		f |= 1
	}
	return f
}

// chainRef computes the Appendix B reference value: a generic-key MAC
// binding the frame's PC and CR to the previous reference, so that
// neither can be forged nor an old frame replayed.
func (p *Process) chainRef(pc, cr, prev uint64) uint64 {
	inner := p.Auth.PACGA(cr, prev)
	return p.Auth.PACGA(pc, inner)
}

// fullFrameRef extends chainRef over every saved register, the
// Appendix B closing suggestion: "for general protection against
// sigreturn attacks corrupting any register stored in the signal
// frame, all register values could be included in the asigret
// calculation using the pacga instruction". The registers are folded
// pairwise through PACGA so each value position-dependently affects
// the final reference.
func (p *Process) fullFrameRef(pc uint64, regs [isa.NumRegs]uint64, flags, prev uint64) uint64 {
	acc := p.Auth.PACGA(flags, prev)
	for i := 0; i < 32; i++ {
		acc = p.Auth.PACGA(regs[i], acc|uint64(i))
	}
	return p.Auth.PACGA(pc, acc)
}

// DeliverSignal suspends task t and enters handler, exactly as the
// kernel would: the task's full register state is written to a signal
// frame on the user stack, SP is moved below the frame, and LR is
// pointed at the sigreturn trampoline so that returning from the
// handler issues the sigreturn system call.
//
// If the frame does not fit on the user stack — SP too close to the
// bottom of the mapped region, or pointing somewhere unwritable — the
// kernel cannot set up the handler and kills the process, the way
// Linux forces SIGSEGV when the signal-frame write faults. The
// returned error carries ErrProcessKilled plus the underlying
// mem.Fault, and the post-mortem lands in p.Kill.
//
// With HardenedSigreturn the kernel additionally records the chained
// reference asigret_n in kernel space (Appendix B).
func (p *Process) DeliverSignal(t *Task, signo uint64, handler, trampoline uint64) error {
	m := t.M
	base := m.Reg(isa.SP) - FrameSize

	frameKill := func(err error) error {
		kill := fmt.Errorf("%w: writing signal frame: %w", ErrProcessKilled, err)
		p.Exited = true
		p.recordKill(t, kill)
		return kill
	}
	regs := m.Regs()
	if err := p.Mem.Write64(base, m.PC); err != nil {
		return frameKill(err)
	}
	if err := p.Mem.Write64(base+8, packFlags(m.N, m.Z, m.C, m.V)); err != nil {
		return frameKill(err)
	}
	var prev uint64
	if n := len(t.sigRefs); n > 0 {
		prev = t.sigRefs[n-1]
	}
	if err := p.Mem.Write64(base+16, prev); err != nil {
		return frameKill(err)
	}
	for i := 0; i < 32; i++ {
		if err := p.Mem.Write64(base+24+uint64(8*i), regs[i]); err != nil {
			return frameKill(err)
		}
	}

	switch {
	case p.FullFrameSigreturn:
		t.sigRefs = append(t.sigRefs, p.fullFrameRef(m.PC, regs, packFlags(m.N, m.Z, m.C, m.V), prev))
	case p.HardenedSigreturn:
		t.sigRefs = append(t.sigRefs, p.chainRef(m.PC, m.Reg(isa.CR), prev))
	}

	if tel := p.k.tel; tel != nil {
		tel.Signals.Inc()
		if p.HardenedSigreturn || p.FullFrameSigreturn {
			tel.SigframeBinds.Inc()
			tel.Events.Record(telemetry.EvSigframeBind, "", "", m.PC)
		}
	}

	m.PC = handler
	m.SetReg(isa.SP, base)
	m.SetReg(isa.LR, trampoline)
	m.SetReg(isa.X0, signo)
	return nil
}

// sigreturn restores the context from the signal frame at the task's
// current SP. Without hardening the restore is blind — the classic
// SROP condition. With hardening the kernel validates the frame's PC
// and CR against the kernel-held chained reference and kills the
// process on mismatch.
func (p *Process) sigreturn(t *Task) error {
	m := t.M
	base := m.Reg(isa.SP)

	pc, err := p.Mem.Read64(base)
	if err != nil {
		return fmt.Errorf("kernel: reading signal frame: %w", err)
	}
	flags, err := p.Mem.Read64(base + 8)
	if err != nil {
		return err
	}
	prev, err := p.Mem.Read64(base + 16)
	if err != nil {
		return err
	}
	var regs [isa.NumRegs]uint64
	for i := 0; i < 32; i++ {
		v, err := p.Mem.Read64(base + 24 + uint64(8*i))
		if err != nil {
			return err
		}
		regs[i] = v
	}

	if p.HardenedSigreturn || p.FullFrameSigreturn {
		n := len(t.sigRefs)
		if n == 0 {
			err := fmt.Errorf("%w: sigreturn with no signal in flight", ErrProcessKilled)
			p.Exited = true
			p.recordKill(t, err)
			return err
		}
		want := t.sigRefs[n-1]
		var got uint64
		if p.FullFrameSigreturn {
			got = p.fullFrameRef(pc, regs, flags, prev)
		} else {
			got = p.chainRef(pc, regs[isa.CR], prev)
		}
		if got != want {
			err := fmt.Errorf("%w: forged signal frame (PC %#x)", ErrProcessKilled, pc)
			p.Exited = true
			p.recordKill(t, err)
			return err
		}
		t.sigRefs = t.sigRefs[:n-1]
	}

	m.SetRegs(regs)
	m.N, m.Z, m.C, m.V = flags&8 != 0, flags&4 != 0, flags&2 != 0, flags&1 != 0
	m.PC = pc
	return nil
}
