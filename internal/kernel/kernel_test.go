package kernel

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"pacstack/internal/cpu"
	"pacstack/internal/isa"
	"pacstack/internal/mem"
	"pacstack/internal/pa"
)

const (
	codeBase  = 0x10000
	stackBase = 0x100000
	stackSize = 0x4000
)

func boot(t *testing.T, src string) *Process {
	t.Helper()
	prog, err := isa.Assemble(codeBase, src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	codeLen := (prog.Size()/mem.PageSize + 1) * mem.PageSize
	if err := m.Map(codeBase, codeLen, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(stackBase, stackSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	k := New(pa.DefaultConfig())
	return k.NewProcess(prog, m, codeBase, stackBase+stackSize)
}

func TestExitSyscall(t *testing.T) {
	p := boot(t, `
    movz X0, #42
    svc #0
`)
	if err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !p.Exited || p.ExitCode != 42 {
		t.Errorf("exited=%v code=%d", p.Exited, p.ExitCode)
	}
	if p.Alive() {
		t.Error("exited process reports alive")
	}
}

func TestWriteOutput(t *testing.T) {
	p := boot(t, `
    movz X0, #72
    svc #1
    movz X0, #105
    svc #1
    movz X0, #0
    svc #0
`)
	if err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	if string(p.Output) != "Hi" {
		t.Errorf("output = %q", p.Output)
	}
}

func TestGetPIDAndTID(t *testing.T) {
	p := boot(t, `
    svc #2
    mov X19, X0
    svc #8
    mov X20, X0
    movz X0, #0
    svc #0
`)
	if err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	m := p.Tasks[0].M
	if m.Reg(isa.X19) != 1 || m.Reg(isa.X20) != 0 {
		t.Errorf("pid=%d tid=%d", m.Reg(isa.X19), m.Reg(isa.X20))
	}
}

func TestSpawnSchedulesBothTasks(t *testing.T) {
	// The main task spawns a second task; each writes a distinct
	// byte repeatedly. Both must make progress.
	p := boot(t, `
main:
    movz X0, =thread
    movz X1, #0x102000
    svc #5
    movz X21, #100
mainloop:
    movz X0, #77      ; 'M'
    svc #1
    sub X21, X21, #1
    cbnz X21, mainloop
    svc #6
thread:
    movz X22, #100
tloop:
    movz X0, #84      ; 'T'
    svc #1
    sub X22, X22, #1
    cbnz X22, tloop
    svc #6
`)
	if err := p.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	ms := bytes.Count(p.Output, []byte{'M'})
	ts := bytes.Count(p.Output, []byte{'T'})
	if ms != 100 || ts != 100 {
		t.Fatalf("M=%d T=%d", ms, ts)
	}
	// Interleaving: the scheduler must not run one task to completion
	// before the other starts.
	firstT := bytes.IndexByte(p.Output, 'T')
	lastM := bytes.LastIndexByte(p.Output, 'M')
	if firstT < 0 || firstT > lastM {
		t.Error("tasks did not interleave")
	}
}

func TestContextSwitchPreservesRegisters(t *testing.T) {
	// Two tasks each build a register-resident value over many
	// quanta; preemption must never leak one task's registers into
	// the other. X28 (CR) is used deliberately.
	p := boot(t, `
main:
    movz X0, =thread
    movz X1, #0x102000
    svc #5
    movz X28, #1
    movz X21, #200
mloop:
    add X28, X28, #2
    sub X21, X21, #1
    cbnz X21, mloop
    mov X19, X28
    svc #6
thread:
    movz X28, #1000
    movz X22, #200
tloop:
    add X28, X28, #3
    sub X22, X22, #1
    cbnz X22, tloop
    svc #6
`)
	if err := p.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := p.Tasks[0].M.Reg(isa.X19); got != 1+2*200 {
		t.Errorf("main CR = %d, want %d", got, 1+2*200)
	}
	if got := p.Tasks[1].M.Reg(isa.X28); got != 1000+3*200 {
		t.Errorf("thread CR = %d, want %d", got, 1000+3*200)
	}
}

func TestForkSharesPAKeys(t *testing.T) {
	p := boot(t, `
    movz X0, #0
    svc #0
`)
	child := p.Fork(p.Tasks[0])
	// A pointer signed in the parent must authenticate in the child:
	// fork does not change PA keys (Section 4.3).
	signed := p.Auth.AddPAC(pa.KeyIA, 0x41000, 7)
	if got, ok := child.Auth.Auth(pa.KeyIA, signed, 7); !ok || got != 0x41000 {
		t.Error("child could not authenticate parent-signed pointer")
	}
	if child.PID == p.PID {
		t.Error("child has parent PID")
	}
}

func TestForkCopiesMemory(t *testing.T) {
	p := boot(t, `
    movz X0, #0
    svc #0
`)
	if err := p.Mem.Write64(stackBase, 111); err != nil {
		t.Fatal(err)
	}
	child := p.Fork(p.Tasks[0])
	if err := child.Mem.Write64(stackBase, 222); err != nil {
		t.Fatal(err)
	}
	pv, _ := p.Mem.Read64(stackBase)
	cv, _ := child.Mem.Read64(stackBase)
	if pv != 111 || cv != 222 {
		t.Errorf("parent=%d child=%d; address spaces not independent", pv, cv)
	}
}

func TestForkSyscallReturnValues(t *testing.T) {
	p := boot(t, `
    svc #7
    mov X19, X0
    movz X0, #0
    svc #0
`)
	if err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := p.Tasks[0].M.Reg(isa.X19); got != 2 {
		t.Errorf("parent fork() = %d, want child PID 2", got)
	}
	kids := p.Children()
	if len(kids) != 1 {
		t.Fatalf("children = %d", len(kids))
	}
	child := kids[0]
	if err := child.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := child.Tasks[0].M.Reg(isa.X19); got != 0 {
		t.Errorf("child fork() = %d, want 0", got)
	}
}

const signalProgram = `
main:
    movz X9, #1
loop:
    cbnz X9, loop
    movz X0, #0
    svc #0
handler:
    movz X0, #65      ; 'A'
    svc #1
    ret               ; to the trampoline
tramp:
    svc #4            ; sigreturn
victim:
    movz X0, #66      ; 'B'
    svc #1
    movz X0, #99
    svc #0
`

func deliverAfter(t *testing.T, p *Process, steps uint64) {
	t.Helper()
	if err := p.Run(steps); !errors.Is(err, cpu.ErrStepLimit) {
		t.Fatalf("expected spin, got %v", err)
	}
	h := p.Prog.MustLookup("handler")
	tr := p.Prog.MustLookup("tramp")
	if err := p.DeliverSignal(p.Tasks[0], 11, h, tr); err != nil {
		t.Fatal(err)
	}
}

func TestSignalDeliveryAndReturn(t *testing.T) {
	for _, hardened := range []bool{false, true} {
		p := boot(t, signalProgram)
		p.HardenedSigreturn = hardened
		task := p.Tasks[0]
		spBefore := task.M.Regs()[isa.SP]
		deliverAfter(t, p, 100)

		// Let the handler run and sigreturn.
		if err := p.Run(100); !errors.Is(err, cpu.ErrStepLimit) {
			t.Fatalf("hardened=%v: %v", hardened, err)
		}
		if string(p.Output) != "A" {
			t.Errorf("hardened=%v: output %q", hardened, p.Output)
		}
		// Back in the spin loop with the original SP.
		if got := task.M.Reg(isa.SP); got != spBefore {
			t.Errorf("hardened=%v: SP = %#x, want %#x", hardened, got, spBefore)
		}
		sym, _ := p.Prog.SymbolFor(task.M.PC)
		if sym != "loop" && sym != "main" {
			t.Errorf("hardened=%v: resumed at %q", hardened, sym)
		}
	}
}

// forgeSavedPC corrupts the saved PC in the live signal frame, then
// lets the handler return through sigreturn.
func forgeSavedPC(t *testing.T, p *Process) error {
	t.Helper()
	adv := mem.NewAdversary(p.Mem)
	frame := p.Tasks[0].M.Reg(isa.SP) // SP == frame base inside handler
	if err := adv.Poke(frame, p.Prog.MustLookup("victim")); err != nil {
		t.Fatal(err)
	}
	return p.Run(10_000)
}

func TestSigreturnAttackSucceedsWithoutHardening(t *testing.T) {
	p := boot(t, signalProgram)
	deliverAfter(t, p, 100)
	if err := forgeSavedPC(t, p); err != nil {
		t.Fatalf("attack run: %v", err)
	}
	// Control flow was redirected to victim: 'B' written, exit 99.
	if string(p.Output) != "AB" || p.ExitCode != 99 {
		t.Errorf("output=%q exit=%d; SROP should succeed on the unhardened kernel",
			p.Output, p.ExitCode)
	}
}

func TestSigreturnAttackBlockedByHardening(t *testing.T) {
	p := boot(t, signalProgram)
	p.HardenedSigreturn = true
	deliverAfter(t, p, 100)
	err := forgeSavedPC(t, p)
	if !errors.Is(err, ErrProcessKilled) {
		t.Fatalf("err = %v, want ErrProcessKilled", err)
	}
	if bytes.Contains(p.Output, []byte{'B'}) {
		t.Error("victim code ran despite hardening")
	}
}

func TestSigreturnCRForgeryBlocked(t *testing.T) {
	p := boot(t, signalProgram)
	p.HardenedSigreturn = true
	deliverAfter(t, p, 100)
	adv := mem.NewAdversary(p.Mem)
	frame := p.Tasks[0].M.Reg(isa.SP)
	// Overwrite the saved CR (X28) in the frame.
	if err := adv.Poke(frame+24+8*uint64(isa.CR), 0xDEAD); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(10_000); !errors.Is(err, ErrProcessKilled) {
		t.Fatalf("err = %v, want ErrProcessKilled", err)
	}
}

func TestSigreturnWithoutSignalKilled(t *testing.T) {
	p := boot(t, `
    sub SP, SP, #512
    svc #4
    movz X0, #0
    svc #0
`)
	p.HardenedSigreturn = true
	if err := p.Run(1000); !errors.Is(err, ErrProcessKilled) {
		t.Fatalf("err = %v, want ErrProcessKilled", err)
	}
}

func TestNestedSignals(t *testing.T) {
	p := boot(t, signalProgram)
	p.HardenedSigreturn = true
	deliverAfter(t, p, 100)
	// Deliver a second signal while the first handler is running.
	h := p.Prog.MustLookup("handler")
	tr := p.Prog.MustLookup("tramp")
	if err := p.DeliverSignal(p.Tasks[0], 12, h, tr); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(200); !errors.Is(err, cpu.ErrStepLimit) {
		t.Fatalf("nested return failed: %v", err)
	}
	if string(p.Output) != "AA" {
		t.Errorf("output = %q, want AA", p.Output)
	}
	sym, _ := p.Prog.SymbolFor(p.Tasks[0].M.PC)
	if sym != "loop" && sym != "main" {
		t.Errorf("resumed at %q", sym)
	}
	if len(p.Tasks[0].sigRefs) != 0 {
		t.Errorf("sigRefs not drained: %d", len(p.Tasks[0].sigRefs))
	}
}

func TestUnknownSyscall(t *testing.T) {
	p := boot(t, `svc #999`)
	if err := p.Run(10); err == nil {
		t.Error("unknown syscall succeeded")
	}
}

func TestRunStepBudget(t *testing.T) {
	p := boot(t, `
spin:
    b spin
`)
	if err := p.Run(500); !errors.Is(err, cpu.ErrStepLimit) {
		t.Errorf("err = %v", err)
	}
}

func TestRunCtxCancellation(t *testing.T) {
	p := boot(t, `
spin:
    b spin
`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.RunCtx(ctx, 1<<30)
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
	// Cancellation is the caller's deadline, not a machine fault: the
	// process is abandoned alive, with no post-mortem filed.
	if !p.Alive() {
		t.Error("cancelled process marked dead")
	}
	if p.Kill != nil {
		t.Errorf("cancellation filed a post-mortem: %v", p.Kill)
	}
	// A background context changes nothing: the budget still rules.
	if err := p.RunCtx(context.Background(), 500); !errors.Is(err, cpu.ErrStepLimit) {
		t.Errorf("err = %v, want step limit", err)
	}
}

func TestFaultKillsProcess(t *testing.T) {
	p := boot(t, `
    movz X0, #0
    ldr X1, [X0, #0]
`)
	if err := p.Run(100); err == nil {
		t.Error("faulting process ran to completion")
	}
	if p.Alive() {
		t.Error("faulted process still alive")
	}
}

func TestExecRegeneratesKeys(t *testing.T) {
	p := boot(t, `
    movz X0, #0
    svc #0
`)
	signed := p.Auth.AddPAC(pa.KeyIA, 0x41000, 7)
	if _, ok := p.Auth.Auth(pa.KeyIA, signed, 7); !ok {
		t.Fatal("pre-exec auth failed")
	}

	prog2, err := isa.Assemble(codeBase, "movz X0, #9\nsvc #0")
	if err != nil {
		t.Fatal(err)
	}
	m2 := mem.New()
	if err := m2.Map(codeBase, mem.PageSize, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := m2.Map(stackBase, stackSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	p.Exec(prog2, m2, codeBase, stackBase+stackSize)

	// Pointers signed before the exec are dead (Section 4.3: keys are
	// per exec).
	if _, ok := p.Auth.Auth(pa.KeyIA, signed, 7); ok {
		t.Error("pre-exec signature survived exec")
	}
	if err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	if p.ExitCode != 9 {
		t.Errorf("exit = %d, want 9 from the new image", p.ExitCode)
	}
}

func TestExecResetsTasksAndOutput(t *testing.T) {
	p := boot(t, `
    movz X0, #65
    svc #1
    movz X0, #0
    svc #0
`)
	if err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	if string(p.Output) != "A" {
		t.Fatalf("output %q", p.Output)
	}
	prog2, err := isa.Assemble(codeBase, "movz X0, #66\nsvc #1\nmovz X0, #0\nsvc #0")
	if err != nil {
		t.Fatal(err)
	}
	m2 := mem.New()
	if err := m2.Map(codeBase, mem.PageSize, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if err := m2.Map(stackBase, stackSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	p.Exec(prog2, m2, codeBase, stackBase+stackSize)
	if len(p.Tasks) != 1 || p.Exited {
		t.Fatal("exec did not reset task state")
	}
	if err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	if string(p.Output) != "B" {
		t.Errorf("post-exec output %q", p.Output)
	}
}

func TestSignalToSecondTask(t *testing.T) {
	// Deliver a signal to a spawned task while the main task runs;
	// only the target task's control flow detours.
	p := boot(t, `
main:
    movz X0, =thread
    movz X1, #0x102000
    svc #5
    movz X21, #50
mloop:
    sub X21, X21, #1
    cbnz X21, mloop
    svc #6
thread:
    movz X9, #1
tspin:
    cbnz X9, tspin
    svc #6
handler:
    movz X0, #83      ; 'S'
    svc #1
    ret
tramp:
    svc #4
`)
	p.HardenedSigreturn = true
	if err := p.Run(400); !errors.Is(err, cpu.ErrStepLimit) {
		t.Fatalf("warmup: %v", err)
	}
	target := p.Task(1)
	if target == nil {
		t.Fatal("spawned task missing")
	}
	if err := p.DeliverSignal(target, 10, p.Prog.MustLookup("handler"), p.Prog.MustLookup("tramp")); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(5000); !errors.Is(err, cpu.ErrStepLimit) && err != nil {
		t.Fatal(err)
	}
	if string(p.Output) != "S" {
		t.Errorf("output %q", p.Output)
	}
	// The main task was not diverted: it keeps counting down in its
	// own loop.
	sym, _ := p.Prog.SymbolFor(p.Tasks[0].M.PC)
	if sym == "handler" || sym == "tramp" {
		t.Errorf("main task diverted to %q", sym)
	}
}

func TestForkChain(t *testing.T) {
	// fork of a fork: keys stay shared down the whole chain, PIDs
	// stay unique, memories stay independent.
	p := boot(t, `
    movz X0, #0
    svc #0
`)
	child := p.Fork(p.Tasks[0])
	grand := child.Fork(child.Tasks[0])
	signed := p.Auth.AddPAC(pa.KeyIB, 0x42000, 3)
	if _, ok := grand.Auth.Auth(pa.KeyIB, signed, 3); !ok {
		t.Error("grandchild lost the key lineage")
	}
	pids := map[int]bool{p.PID: true, child.PID: true, grand.PID: true}
	if len(pids) != 3 {
		t.Errorf("duplicate PIDs: %d %d %d", p.PID, child.PID, grand.PID)
	}
	if err := grand.Mem.Write64(stackBase, 7); err != nil {
		t.Fatal(err)
	}
	v, _ := child.Mem.Read64(stackBase)
	if v == 7 {
		t.Error("grandchild write visible in child")
	}
}

func TestRunBudgetSharedAcrossTasks(t *testing.T) {
	p := boot(t, `
main:
    movz X0, =spin
    movz X1, #0x102000
    svc #5
loop:
    b loop
spin:
    b spin
`)
	if err := p.Run(1000); !errors.Is(err, cpu.ErrStepLimit) {
		t.Fatalf("err = %v", err)
	}
	total := p.Tasks[0].M.Instrs + p.Tasks[1].M.Instrs
	if total < 1000 || total > 1000+2*Quantum {
		t.Errorf("executed %d instructions against a budget of 1000", total)
	}
	// Both tasks made progress.
	if p.Tasks[1].M.Instrs == 0 {
		t.Error("second task starved")
	}
}

func TestFullFrameSigreturnDetectsAnyRegisterForgery(t *testing.T) {
	// Appendix B's closing suggestion: fold every saved register into
	// the asigret chain. Forging an arbitrary register — not just PC
	// or CR — must kill the process.
	for _, reg := range []isa.Reg{isa.X0, isa.X5, isa.X19, isa.SP} {
		p := boot(t, signalProgram)
		p.FullFrameSigreturn = true
		deliverAfter(t, p, 100)
		adv := mem.NewAdversary(p.Mem)
		frame := p.Tasks[0].M.Reg(isa.SP)
		if err := adv.Poke(frame+24+8*uint64(reg), 0xFEED); err != nil {
			t.Fatal(err)
		}
		if err := p.Run(10_000); !errors.Is(err, ErrProcessKilled) {
			t.Errorf("forged %v: err = %v, want ErrProcessKilled", reg, err)
		}
	}
	// And forging the saved flags word is detected too.
	p := boot(t, signalProgram)
	p.FullFrameSigreturn = true
	deliverAfter(t, p, 100)
	adv := mem.NewAdversary(p.Mem)
	frame := p.Tasks[0].M.Reg(isa.SP)
	if err := adv.Poke(frame+8, 0xF); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(10_000); !errors.Is(err, ErrProcessKilled) {
		t.Errorf("forged flags: err = %v", err)
	}
}

func TestFullFrameSigreturnAcceptsHonestFrames(t *testing.T) {
	p := boot(t, signalProgram)
	p.FullFrameSigreturn = true
	deliverAfter(t, p, 100)
	if err := p.Run(200); !errors.Is(err, cpu.ErrStepLimit) {
		t.Fatalf("honest signal round trip failed: %v", err)
	}
	if string(p.Output) != "A" {
		t.Errorf("output %q", p.Output)
	}
}

func TestBaseHardeningMissesNonCRRegisterForgery(t *testing.T) {
	// The contrast that motivates the full-frame mode: the PC+CR
	// chain alone does not cover, say, X5.
	p := boot(t, signalProgram)
	p.HardenedSigreturn = true
	deliverAfter(t, p, 100)
	adv := mem.NewAdversary(p.Mem)
	frame := p.Tasks[0].M.Reg(isa.SP)
	if err := adv.Poke(frame+24+8*uint64(isa.X5), 0xFEED); err != nil {
		t.Fatal(err)
	}
	err := p.Run(10_000)
	if errors.Is(err, ErrProcessKilled) {
		t.Error("PC+CR hardening unexpectedly caught an X5 forgery")
	}
}

func TestKillInfoRecordsFaultPostMortem(t *testing.T) {
	p := boot(t, `
main:
    movz X0, #0
    ldr X1, [X0, #0]
`)
	err := p.Run(100)
	if err == nil {
		t.Fatal("faulting process ran to completion")
	}
	ki := p.Kill
	if ki == nil {
		t.Fatal("no post-mortem recorded")
	}
	if ki.TaskID != p.Tasks[0].ID {
		t.Errorf("TaskID = %d, want %d", ki.TaskID, p.Tasks[0].ID)
	}
	if ki.PC != p.Tasks[0].M.PC {
		t.Errorf("PC = %#x, want %#x", ki.PC, p.Tasks[0].M.PC)
	}
	if ki.Symbol != "main" {
		t.Errorf("Symbol = %q, want main", ki.Symbol)
	}
	var f *mem.Fault
	if !errors.As(ki.Cause, &f) {
		t.Errorf("Cause %v does not chain to *mem.Fault", ki.Cause)
	}
	if s := ki.String(); s == "" {
		t.Error("empty post-mortem string")
	}
}

func TestKillInfoNilOnCleanExit(t *testing.T) {
	p := boot(t, `
    movz X0, #0
    svc #0
`)
	if err := p.Run(100); err != nil {
		t.Fatal(err)
	}
	if p.Kill != nil {
		t.Errorf("clean exit filed a post-mortem: %v", p.Kill)
	}
}

// TestDeliverSignalNearStackBottom pins the kernel's behaviour when
// the signal frame barely fits — or doesn't — at the bottom of the
// mapped stack.
func TestDeliverSignalNearStackBottom(t *testing.T) {
	// Exactly fits: the frame ends flush with the bottom of the stack.
	p := boot(t, signalProgram)
	task := p.Tasks[0]
	task.M.SetReg(isa.SP, stackBase+FrameSize)
	h, tr := p.Prog.MustLookup("handler"), p.Prog.MustLookup("tramp")
	if err := p.DeliverSignal(task, 11, h, tr); err != nil {
		t.Fatalf("frame that exactly fits was rejected: %v", err)
	}
	if got := task.M.Reg(isa.SP); got != stackBase {
		t.Errorf("handler SP = %#x, want stack bottom %#x", got, stackBase)
	}

	// One word short: the frame write faults, and the kernel kills the
	// process the way Linux forces SIGSEGV.
	p = boot(t, signalProgram)
	task = p.Tasks[0]
	task.M.SetReg(isa.SP, stackBase+FrameSize-8)
	err := p.DeliverSignal(task, 11, h, tr)
	if !errors.Is(err, ErrProcessKilled) {
		t.Fatalf("err = %v, want ErrProcessKilled", err)
	}
	var f *mem.Fault
	if !errors.As(err, &f) {
		t.Errorf("err %v does not chain to *mem.Fault", err)
	}
	if p.Alive() {
		t.Error("killed process reports alive")
	}
	if p.Kill == nil {
		t.Fatal("no post-mortem for the failed frame write")
	}
	if p.Kill.TaskID != task.ID {
		t.Errorf("post-mortem TaskID = %d, want %d", p.Kill.TaskID, task.ID)
	}
}

func TestSeedMakesKernelDeterministic(t *testing.T) {
	mk := func(seed int64) *Process {
		prog, err := isa.Assemble(codeBase, "main:\n    movz X0, #0\n    svc #0\n")
		if err != nil {
			t.Fatal(err)
		}
		m := mem.New()
		if err := m.Map(codeBase, mem.PageSize, mem.PermRX); err != nil {
			t.Fatal(err)
		}
		if err := m.Map(stackBase, stackSize, mem.PermRW); err != nil {
			t.Fatal(err)
		}
		k := New(pa.DefaultConfig())
		k.Seed(seed)
		if !k.Seeded() {
			t.Fatal("Seed did not mark the kernel seeded")
		}
		return k.NewProcess(prog, m, codeBase, stackBase+stackSize)
	}
	a, b := mk(42), mk(42)
	const ptr, mod = 0x10040, 0xfeed
	if sealed := a.Auth.AddPAC(pa.KeyIA, ptr, mod); sealed != b.Auth.AddPAC(pa.KeyIA, ptr, mod) {
		t.Error("same seed produced different PA keys")
	}
	c := mk(43)
	sealed := a.Auth.AddPAC(pa.KeyIA, ptr, mod)
	if _, ok := c.Auth.Auth(pa.KeyIA, sealed, mod); ok {
		t.Error("different seeds produced colliding PA keys")
	}
}
