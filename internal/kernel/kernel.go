// Package kernel is the Linux-v5.0 analogue of this reproduction: it
// owns the pointer-authentication keys, schedules tasks, services
// system calls, delivers signals, and implements fork with the key-
// sharing semantics the paper's brute-force analysis (Section 4.3)
// depends on.
//
// Security-relevant modelling choices, each mirroring the paper:
//
//   - PA keys are generated per exec (NewProcess) and are fields of
//     kernel-side Go structs: user code has no instruction that reads
//     them and the adversary window (mem.Adversary) cannot reach them.
//   - Forked children share the parent's keys; only a new exec draws
//     fresh ones.
//   - On a context switch the register file — including the PACStack
//     chain register CR and LR — is saved in the kernel task struct
//     (struct cpu_context in Linux), not in user-visible memory
//     (Section 5.4).
//   - Signal delivery writes the signal frame onto the *user* stack,
//     which is exactly the sigreturn attack surface of Section 6.3.2;
//     the Appendix B hardening (a kernel-held chained MAC over the
//     frame's PC and CR) can be switched on per process.
package kernel

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"

	"pacstack/internal/cpu"
	"pacstack/internal/isa"
	"pacstack/internal/mem"
	"pacstack/internal/pa"
	"pacstack/internal/telemetry"
)

// System call numbers (SVC immediates).
const (
	SysExit      = 0 // X0: exit code; terminates the whole process
	SysWrite     = 1 // X0: byte appended to the process output
	SysGetPID    = 2 // returns PID in X0
	SysYield     = 3 // voluntary context switch
	SysSigReturn = 4 // return from a signal handler (frame at SP)
	SysSpawn     = 5 // X0: entry address, X1: new stack top; returns TID
	SysExitTask  = 6 // terminates the calling task only
	SysFork      = 7 // returns child PID in parent, 0 in child
	SysGetTID    = 8 // returns TID in X0
)

// Quantum is the number of instructions a task runs before the
// scheduler preempts it.
const Quantum = 64

// ErrProcessKilled reports a security-relevant kill (failed sigreturn
// validation).
var ErrProcessKilled = errors.New("kernel: process killed")

// ErrCancelled reports that RunCtx stopped because the caller's
// context expired — a deadline or shutdown, not a machine fault. The
// process is left alive and unkilled; no post-mortem is filed.
var ErrCancelled = errors.New("kernel: run cancelled")

// Kernel holds global configuration shared by all processes.
type Kernel struct {
	cfg pa.Config
	rng *mrand.Rand // nil: cryptographic entropy
	tel *Telemetry  // nil: telemetry disabled
}

// New returns a kernel configured with the given PA parameters.
func New(cfg pa.Config) *Kernel { return &Kernel{cfg: cfg} }

// Config returns the kernel's PA configuration.
func (k *Kernel) Config() pa.Config { return k.cfg }

// Seed switches the kernel's entropy pool — PA key generation on
// exec, the stack-protector canary — to a deterministic stream, so
// that identical seeds produce byte-identical processes. Experiments
// that must replay exactly (fault campaigns, the reproducibility
// audit) seed their kernels; everything else keeps cryptographic
// entropy.
func (k *Kernel) Seed(seed int64) { k.rng = mrand.New(mrand.NewSource(seed)) }

// Seeded reports whether the kernel draws deterministic entropy.
func (k *Kernel) Seeded() bool { return k.rng != nil }

// Entropy64 returns one word from the kernel entropy pool:
// deterministic after Seed, cryptographic otherwise.
func (k *Kernel) Entropy64() uint64 {
	if k.rng != nil {
		return k.rng.Uint64()
	}
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic("kernel: entropy source failed: " + err.Error())
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// genKeys draws a PA key set from the kernel entropy pool.
func (k *Kernel) genKeys() pa.Keys {
	if k.rng != nil {
		return pa.GenerateKeysFrom(k.rng)
	}
	return pa.GenerateKeys()
}

// Task is one schedulable thread. Its register file lives inside the
// embedded machine — kernel memory, from the adversary's viewpoint.
type Task struct {
	ID   int
	M    *cpu.Machine
	Done bool

	// sigRefs is the kernel-held reference chain for hardened
	// sigreturn (Appendix B): sigRefs[len-1] is asigret_n.
	sigRefs []uint64
}

// KillInfo is the structured post-mortem the kernel records when it
// kills a process: which task died, at which PC, and why. Supervisors
// (internal/supervise) and the fault classifier (internal/fault) read
// it instead of string-matching errors; Cause retains the full error
// chain, so errors.As still reaches *cpu.Fault, *mem.Fault,
// *cpu.TranslationFault and *cpu.CFIViolation.
type KillInfo struct {
	TaskID int
	PC     uint64
	Symbol string // nearest symbol at PC, when known
	Cause  error
}

func (ki *KillInfo) String() string {
	where := fmt.Sprintf("%#x", ki.PC)
	if ki.Symbol != "" {
		where = fmt.Sprintf("%#x (%s)", ki.PC, ki.Symbol)
	}
	return fmt.Sprintf("task %d killed at %s: %v", ki.TaskID, where, ki.Cause)
}

// Process is one address space plus its tasks and kernel-side state.
type Process struct {
	k    *Kernel
	PID  int
	Mem  *mem.Memory
	Prog *isa.Program
	Auth *pa.Authenticator

	keys pa.Keys // kernel-held; intentionally unexported

	Tasks  []*Task
	Output []byte

	Exited   bool
	ExitCode uint64

	// Kill is the post-mortem of the fault that killed the process,
	// nil after a clean exit (or while still running). Exec clears it.
	Kill *KillInfo

	// HardenedSigreturn enables the Appendix B signal-frame chain
	// binding the saved PC and CR.
	HardenedSigreturn bool

	// FullFrameSigreturn extends the Appendix B chain over every
	// saved register and the flags, so that forging *any* part of the
	// signal frame is detected. Implies HardenedSigreturn semantics.
	FullFrameSigreturn bool

	// CallCFI is propagated to every task machine; it implements the
	// assumption-A2 forward-edge check (see cpu.Machine.CallCFI).
	CallCFI func(target uint64) error

	// RetCFI is propagated likewise; the static-CFI comparator scheme
	// installs it (see cpu.Machine.RetCFI).
	RetCFI func(retPC, target uint64) error

	nextTID  int
	children []*Process
	nextPID  *int // shared PID counter rooted at the initial process
}

// NewProcess "execs" prog: fresh PA keys, the given address space,
// and one initial task starting at entry with the stack top at sp.
func (k *Kernel) NewProcess(prog *isa.Program, m *mem.Memory, entry, sp uint64) *Process {
	keys := k.genKeys()
	pidCounter := 1
	p := &Process{
		k:       k,
		PID:     1,
		Mem:     m,
		Prog:    prog,
		Auth:    pa.New(keys, k.cfg),
		keys:    keys,
		nextPID: &pidCounter,
	}
	if k.tel != nil {
		p.Auth.SetTrace(k.tel.Chain)
	}
	p.spawn(entry, sp)
	return p
}

// spawn creates a task; the caller provides entry PC and stack top.
func (p *Process) spawn(entry, sp uint64) *Task {
	t := &Task{ID: p.nextTID}
	p.nextTID++
	t.M = cpu.New(p.Prog, p.Mem, p.Auth)
	t.M.PC = entry
	t.M.SetReg(isa.SP, sp)
	t.M.Syscall = func(m *cpu.Machine, imm int64) error {
		return p.syscall(t, imm)
	}
	t.M.CallCFI = func(target uint64) error {
		if p.CallCFI == nil {
			return nil
		}
		return p.CallCFI(target)
	}
	t.M.RetCFI = func(retPC, target uint64) error {
		if p.RetCFI == nil {
			return nil
		}
		return p.RetCFI(retPC, target)
	}
	p.Tasks = append(p.Tasks, t)
	return t
}

// SpawnTask creates an additional task (thread) at the given entry
// point and stack top — the kernel-side half of pthread_create. The
// caller is responsible for seeding any scheme-specific registers
// (chain register, shadow-stack base) before running.
func (p *Process) SpawnTask(entry, sp uint64) *Task {
	return p.spawn(entry, sp)
}

// Fork clones the process: copied address space and registers, the
// same PA keys (Section 4.3: keys are per exec, so pre-forked workers
// share them). Only the calling task survives into the child,
// matching POSIX fork semantics.
func (p *Process) Fork(caller *Task) *Process {
	*p.nextPID++
	child := &Process{
		k:                  p.k,
		PID:                *p.nextPID,
		Mem:                p.Mem.Clone(),
		Prog:               p.Prog,
		Auth:               p.Auth, // same keys, same authenticator
		keys:               p.keys,
		HardenedSigreturn:  p.HardenedSigreturn,
		FullFrameSigreturn: p.FullFrameSigreturn,
		CallCFI:            p.CallCFI,
		RetCFI:             p.RetCFI,
		nextPID:            p.nextPID,
	}
	t := child.spawn(caller.M.PC, caller.M.Reg(isa.SP))
	t.M.SetRegs(caller.M.Regs())
	t.M.N, t.M.Z, t.M.C, t.M.V = caller.M.N, caller.M.Z, caller.M.C, caller.M.V
	t.sigRefs = append([]uint64(nil), caller.sigRefs...)
	p.children = append(p.children, child)
	return child
}

// Children returns processes forked from this one, in creation order.
func (p *Process) Children() []*Process { return p.children }

// Exec replaces the process image: a fresh address space and program,
// one task at the given entry, and — the security-relevant part —
// freshly generated PA keys. Every authenticated pointer produced
// before the exec is worthless afterwards, which is the property the
// paper's crash-and-restart guessing analysis (Section 4.3) rests on.
func (p *Process) Exec(prog *isa.Program, m *mem.Memory, entry, sp uint64) {
	p.keys = p.k.genKeys()
	p.Auth = pa.New(p.keys, p.k.cfg)
	if p.k.tel != nil {
		p.Auth.SetTrace(p.k.tel.Chain)
	}
	p.Mem = m
	p.Prog = prog
	p.Tasks = nil
	p.Output = nil
	p.Exited = false
	p.ExitCode = 0
	p.Kill = nil
	p.spawn(entry, sp)
}

// Task returns the task with the given ID, or nil.
func (p *Process) Task(id int) *Task {
	for _, t := range p.Tasks {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Alive reports whether any task can still run.
func (p *Process) Alive() bool {
	if p.Exited {
		return false
	}
	for _, t := range p.Tasks {
		if !t.Done {
			return true
		}
	}
	return false
}

// Run schedules tasks round-robin until the process exits, a task
// faults (which kills the whole process, per the paper's crash-on-
// failure assumption), or the instruction budget is exhausted.
func (p *Process) Run(maxInstrs uint64) error {
	return p.RunCtx(context.Background(), maxInstrs)
}

// RunCtx is Run with cooperative cancellation: between scheduler
// quanta it checks the context and returns an error wrapping
// ErrCancelled (and ctx.Err()) once the context is done. The serving
// layer uses this for per-request wall-clock deadlines; the check
// costs one non-blocking select per Quantum instructions, so
// background-context callers pay nothing measurable.
func (p *Process) RunCtx(ctx context.Context, maxInstrs uint64) error {
	done := ctx.Done()
	executed := uint64(0)
	tel := p.k.tel
	if tel != nil {
		defer func() { tel.Instrs.Add(executed) }()
	}
	cur := 0
	for p.Alive() {
		select {
		case <-done:
			if tel != nil {
				tel.Cancels.Inc()
			}
			return fmt.Errorf("%w: %w", ErrCancelled, ctx.Err())
		default:
		}
		if executed >= maxInstrs {
			return cpu.ErrStepLimit
		}
		t := p.Tasks[cur%len(p.Tasks)]
		cur++
		if t.Done {
			continue
		}
		if tel != nil {
			tel.Quanta.Inc()
		}
		// Context switch in: the task's registers were sitting in the
		// kernel task struct the whole time. The quantum is retired
		// through StepN so hot code runs block-compiled; the count it
		// returns excludes a faulting instruction, exactly like the old
		// per-Step loop.
		for q := uint64(0); q < Quantum && !t.Done && !p.Exited; {
			n, err := t.M.StepN(Quantum - q)
			executed += n
			q += n
			if err != nil {
				p.Exited = true
				if p.Kill == nil { // sigreturn may have filed a more precise report
					p.recordKill(t, err)
				}
				return err
			}
			if t.M.Halted {
				t.Done = true
			}
			if n == 0 {
				break
			}
		}
	}
	return nil
}

// recordKill files the post-mortem for the fault that killed the
// process.
func (p *Process) recordKill(t *Task, cause error) {
	sym, _ := p.Prog.SymbolFor(t.M.PC)
	p.Kill = &KillInfo{TaskID: t.ID, PC: t.M.PC, Symbol: sym, Cause: cause}
	p.k.tel.killRecorded(p.Kill)
}

// Cycles returns the total cycle count across all tasks.
func (p *Process) Cycles() uint64 {
	var c uint64
	for _, t := range p.Tasks {
		c += t.M.Cycles
	}
	return c
}

// syscall services one SVC from task t.
func (p *Process) syscall(t *Task, imm int64) error {
	m := t.M
	switch imm {
	case SysExit:
		p.Exited = true
		p.ExitCode = m.Reg(isa.X0)
		m.Halted = true
		t.Done = true
	case SysWrite:
		p.Output = append(p.Output, byte(m.Reg(isa.X0)))
	case SysGetPID:
		m.SetReg(isa.X0, uint64(p.PID))
	case SysGetTID:
		m.SetReg(isa.X0, uint64(t.ID))
	case SysYield:
		// Scheduling is cooperative at quantum granularity; yield is
		// accounted for by the syscall cost.
	case SysSpawn:
		nt := p.spawn(m.Reg(isa.X0), m.Reg(isa.X1))
		if tel := p.k.tel; tel != nil {
			tel.Spawns.Inc()
			tel.Events.Record(telemetry.EvReseed, "spawn", "", uint64(nt.ID))
		}
		// The child inherits the caller's callee-saved registers so
		// PACStack's CR re-seeding (Section 4.3) is observable.
		regs := m.Regs()
		nt.M.SetRegs(regs)
		nt.M.PC = m.Reg(isa.X0)
		nt.M.SetReg(isa.SP, m.Reg(isa.X1))
		m.SetReg(isa.X0, uint64(nt.ID))
	case SysExitTask:
		m.Halted = true
		t.Done = true
	case SysFork:
		child := p.Fork(t)
		child.Tasks[0].M.SetReg(isa.X0, 0)
		m.SetReg(isa.X0, uint64(child.PID))
	case SysSigReturn:
		return p.sigreturn(t)
	default:
		return fmt.Errorf("kernel: unknown syscall %d", imm)
	}
	return nil
}
