package kernel

import (
	"errors"

	"pacstack/internal/cpu"
	"pacstack/internal/mem"
	"pacstack/internal/pa"
	"pacstack/internal/telemetry"
)

// Telemetry is the kernel's instrumentation bundle: pre-resolved
// registry handles shared by every process the kernel boots. All
// fields are optional; a nil *Telemetry on the kernel (the default)
// costs one predictable branch per hook site. Wire it once at setup
// with Kernel.SetTelemetry — the serving layer attaches one bundle
// per scheme so kill classes and chain events carry a scheme label.
type Telemetry struct {
	// Quanta counts scheduler quanta dispatched; Instrs counts
	// instructions retired across all Run/RunCtx calls.
	Quanta *telemetry.Counter
	Instrs *telemetry.Counter
	// Cancels counts RunCtx returns forced by an expired context —
	// deadlines and shutdowns, not faults.
	Cancels *telemetry.Counter
	// Kills is labeled by kill class: auth, cfi, sigreturn, segfault,
	// watchdog, other — mirroring the fault-classifier taxonomy
	// without importing it (internal/fault imports this package).
	Kills *telemetry.CounterVec
	// Signals counts frames delivered; SigframeBinds counts Appendix B
	// chain bindings recorded for them.
	Signals       *telemetry.Counter
	SigframeBinds *telemetry.Counter
	// Spawns counts task creations via SysSpawn — under ACS schemes
	// each one re-seeds the chain register (Section 4.3).
	Spawns *telemetry.Counter
	// Chain, when non-nil, is attached to every new process'
	// Authenticator (NewProcess and Exec), so pac/aut/mask traffic
	// lands in the registry.
	Chain *pa.Trace
	// Events receives kill / sigframe-bind / reseed events.
	Events *telemetry.EventLog
}

// SetTelemetry wires the kernel's instrumentation bundle (nil
// detaches it). Call before booting processes; processes created
// earlier keep whatever trace they were born with.
func (k *Kernel) SetTelemetry(t *Telemetry) { k.tel = t }

// Telemetry returns the wired bundle, nil when disabled.
func (k *Kernel) Telemetry() *Telemetry { return k.tel }

// KillClass maps a kill cause onto the telemetry label taxonomy. It
// mirrors internal/fault's causeOf — kept in sync by a test there —
// because fault imports kernel and the arrow cannot point back.
func KillClass(err error) string {
	var tf *cpu.TranslationFault
	if errors.As(err, &tf) {
		return "auth"
	}
	var cf *cpu.CFIViolation
	if errors.As(err, &cf) {
		return "cfi"
	}
	if errors.Is(err, ErrProcessKilled) {
		return "sigreturn"
	}
	var mf *mem.Fault
	if errors.As(err, &mf) {
		return "segfault"
	}
	if errors.Is(err, cpu.ErrStepLimit) {
		return "watchdog"
	}
	return "other"
}

// killRecorded files the kill into the telemetry bundle; the
// post-mortem itself is already on the process.
func (t *Telemetry) killRecorded(ki *KillInfo) {
	if t == nil {
		return
	}
	class := KillClass(ki.Cause)
	t.Kills.With(class).Inc()
	t.Events.Record(telemetry.EvKill, class, ki.Symbol, ki.PC)
}
