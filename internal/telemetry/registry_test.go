package telemetry

import (
	"sync"
	"testing"
)

// TestCounterConcurrentHammer drives one shared counter, one labeled
// vec, one gauge and one histogram from many goroutines under the
// race detector: the registry's promise is exact totals regardless of
// interleaving.
func TestCounterConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "shared counter")
	vec := r.CounterVec("hammer_labeled_total", "labeled", "worker")
	g := r.Gauge("hammer_gauge", "adjusted")
	h := r.Histogram("hammer_hist", "observed", []uint64{10, 100, 1000})

	const (
		goroutines = 16
		perG       = 10_000
	)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mine := vec.With([]string{"even", "odd"}[id%2])
			for j := 0; j < perG; j++ {
				c.Inc()
				mine.Add(2)
				g.Add(1)
				h.Observe(uint64(j % 2000))
				if j%1000 == 0 {
					// Concurrent Gather must not disturb totals.
					_ = r.Gather()
				}
			}
		}(i)
	}
	wg.Wait()

	if got, want := c.Value(), uint64(goroutines*perG); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	sum := vec.With("even").Value() + vec.With("odd").Value()
	if want := uint64(2 * goroutines * perG); sum != want {
		t.Errorf("vec total = %d, want %d", sum, want)
	}
	if got, want := g.Value(), int64(goroutines*perG); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	snap := r.Gather()
	for _, f := range snap.Families {
		if f.Name != "hammer_hist" {
			continue
		}
		s := f.Series[0]
		if want := uint64(goroutines * perG); s.Count != want {
			t.Errorf("hist count = %d, want %d", s.Count, want)
		}
		inf := s.Buckets[len(s.Buckets)-1]
		if !inf.UpperInf || inf.Count != s.Count {
			t.Errorf("+Inf bucket = %+v, want cumulative count %d", inf, s.Count)
		}
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation
// equal to a bound lands in that bound's bucket (cumulative-le, as
// Prometheus defines it), one past it lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_hist", "", []uint64{0, 10, 100})
	for _, v := range []uint64{0, 1, 10, 11, 100, 101, ^uint64(0)} {
		h.Observe(v)
	}
	snap := r.Gather()
	var s Series
	for _, f := range snap.Families {
		if f.Name == "b_hist" {
			s = f.Series[0]
		}
	}
	// Cumulative counts: le=0 ← {0}; le=10 ← {0,1,10}; le=100 ←
	// {0,1,10,11,100}; +Inf ← everything.
	wantCum := []uint64{1, 3, 5, 7}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	want := uint64(0 + 1 + 10 + 11 + 100 + 101)
	want += ^uint64(0) // wraps; exact modular sum is part of the contract
	if s.Sum != want {
		t.Errorf("sum = %d, want %d", s.Sum, want)
	}
}

// TestNilHandles exercises the Nop contract: nil registry, vec,
// counter, gauge, histogram, event log and set all absorb calls.
func TestNilHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter read non-zero")
	}
	r.CounterVec("y_total", "", "l").With("v").Inc()
	r.Gauge("g", "").Set(3)
	r.Histogram("h", "", []uint64{1}).Observe(9)
	r.HistogramVec("hv", "", []uint64{1}, "l").With("v").Observe(9)
	r.GaugeFunc("gf", "", func() int64 { return 1 })
	r.SetClock(func() uint64 { return 1 })
	if r.Now() != 0 {
		t.Error("nil registry clock read non-zero")
	}
	if g := r.Gather(); len(g.Families) != 0 {
		t.Error("nil registry gathered families")
	}

	var l *EventLog
	l.Record(EvAuthFail, "s", "", 0)
	if l.Snapshot().NextSeq != 0 || l.Dropped() != 0 || l.Len() != 0 {
		t.Error("nil event log not empty")
	}

	if d := Nop.Dump(); len(d.Metrics.Families) != 0 || d.Events.Capacity != 0 {
		t.Error("Nop dump not empty")
	}
	Nop.Log().Record(EvShed, "", "", 0)
	Nop.Registry().Counter("z_total", "").Inc()
}

// TestRedefinitionPanics: redefining a metric with a different shape
// must fail loudly at wiring time.
func TestRedefinitionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	for _, fn := range []func(){
		func() { r.Gauge("dup_total", "") },
		func() { r.CounterVec("dup_total", "", "l") },
		func() { r.Counter("9bad", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	// Same shape twice is idempotent, not a panic, and returns the
	// same underlying series.
	a, b := r.Counter("dup_total", ""), r.Counter("dup_total", "")
	a.Inc()
	if b.Value() != 1 {
		t.Error("re-registration returned a distinct counter")
	}
}

// TestGatherDeterminism: registration and label-creation order must
// not leak into the snapshot.
func TestGatherDeterminism(t *testing.T) {
	build := func(order []string) MetricsSnapshot {
		r := NewRegistry()
		r.SetClock(func() uint64 { return 42 })
		vec := r.CounterVec("det_total", "", "k")
		for _, v := range order {
			vec.With(v).Inc()
		}
		r.Counter("aaa_total", "").Add(7)
		return r.Gather()
	}
	a := Prometheus(build([]string{"z", "m", "a"}))
	b := Prometheus(build([]string{"a", "z", "m"}))
	if a != b {
		t.Errorf("snapshot depends on creation order:\n%s\nvs\n%s", a, b)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pacstack_test_quantile", "", []uint64{10, 100, 1000})
	if got := h.Quantile(99, 100); got != 0 {
		t.Fatalf("empty histogram p99 = %d, want 0", got)
	}
	// 90 observations <= 10, 9 in (10,100], 1 in (100,1000].
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50)
	}
	h.Observe(500)
	if got := h.Quantile(50, 100); got != 10 {
		t.Fatalf("p50 = %d, want 10", got)
	}
	if got := h.Quantile(99, 100); got != 100 {
		t.Fatalf("p99 = %d, want 100", got)
	}
	if got := h.Quantile(100, 100); got != 1000 {
		t.Fatalf("p100 = %d, want 1000", got)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	// Observations past the last bound saturate to 2*last.
	h2 := r.Histogram("pacstack_test_quantile_inf", "", []uint64{10})
	h2.Observe(99999)
	if got := h2.Quantile(99, 100); got != 20 {
		t.Fatalf("+Inf p99 = %d, want saturated 20", got)
	}
	var nilH *Histogram
	if nilH.Quantile(99, 100) != 0 || nilH.Count() != 0 {
		t.Fatal("nil histogram reads must be zero")
	}
}

func TestGaugeFuncWithLabels(t *testing.T) {
	r := NewRegistry()
	vals := []int64{3, 7}
	for i := range vals {
		i := i
		r.GaugeFuncWith("pacstack_test_inflight", "per-backend in-flight",
			[]string{"backend"}, []string{string(rune('0' + i))},
			func() int64 { return vals[i] })
	}
	snap := r.Gather()
	var fam *Family
	for i := range snap.Families {
		if snap.Families[i].Name == "pacstack_test_inflight" {
			fam = &snap.Families[i]
		}
	}
	if fam == nil || len(fam.Series) != 2 {
		t.Fatalf("family missing or wrong arity: %+v", fam)
	}
	for i, s := range fam.Series {
		if len(s.Labels) != 1 || s.Labels[0].Name != "backend" {
			t.Fatalf("series %d labels = %+v", i, s.Labels)
		}
		if s.GaugeValue != vals[i] {
			t.Fatalf("series %d value = %d, want %d", i, s.GaugeValue, vals[i])
		}
	}
}
