package telemetry

import (
	"encoding/json"
	"io"
)

// Set bundles one registry with one event log under a shared clock —
// the unit a process (daemon, soak, crash matrix) wires through its
// components. A nil *Set is the canonical no-op sink: every component
// accessor below returns nil handles, and nil handles record nothing.
type Set struct {
	Reg    *Registry
	Events *EventLog
}

// Nop is the disabled sink. Components wired to it pay one nil check
// per record; BenchmarkEngine must stay within noise of BENCH_1 under
// it.
var Nop *Set

// Options parameterises New.
type Options struct {
	// EventCap bounds the ring buffer (default 4096).
	EventCap int
	// Clock is the injected time source; nil keeps wall-clock
	// nanoseconds. Deterministic runs must inject their virtual clock
	// so dumps are byte-identical for one seed.
	Clock func() uint64
}

// New returns a live Set.
func New(o Options) *Set {
	if o.EventCap == 0 {
		o.EventCap = 4096
	}
	s := &Set{Reg: NewRegistry(), Events: NewEventLog(o.EventCap)}
	if o.Clock != nil {
		s.Reg.SetClock(o.Clock)
	}
	s.Events.SetClock(s.Reg.Now)
	return s
}

// Registry returns the metrics registry (nil on the Nop set).
func (s *Set) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.Reg
}

// Log returns the event log (nil on the Nop set).
func (s *Set) Log() *EventLog {
	if s == nil {
		return nil
	}
	return s.Events
}

// Dump is the full, deterministic telemetry export: one metrics
// snapshot plus the event window. For a seeded run under an injected
// clock, MarshalJSON of a Dump is byte-identical across runs and
// worker-pool widths.
type Dump struct {
	Metrics MetricsSnapshot `json:"metrics"`
	Events  EventsSnapshot  `json:"events"`
}

// Dump snapshots the set. A nil set dumps the zero value.
func (s *Set) Dump() Dump {
	if s == nil {
		return Dump{}
	}
	return Dump{Metrics: s.Reg.Gather(), Events: s.Events.Snapshot()}
}

// WriteJSON writes the dump as indented JSON followed by a newline.
func (s *Set) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Dump())
}
