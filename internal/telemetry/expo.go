// Exposition: the Prometheus text format for /metrics and plain JSON
// for /events and dump files. Both render from the sorted snapshot
// types, so output is deterministic whenever the underlying run is.

package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// labelString renders {a="x",b="y"}; extra appends one more pair
// (used for histogram le) and may be empty.
func labelString(labels []Label, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4). Values are exact integers; no
// timestamps are attached to samples (scrapers stamp on ingest), so
// the text of a deterministic snapshot is itself deterministic.
func WritePrometheus(w io.Writer, snap MetricsSnapshot) error {
	for _, f := range snap.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Series {
			switch f.Type {
			case "counter":
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.Name, labelString(s.Labels, "", ""), s.Value); err != nil {
					return err
				}
			case "gauge":
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.Name, labelString(s.Labels, "", ""), s.GaugeValue); err != nil {
					return err
				}
			case "histogram":
				for _, b := range s.Buckets {
					le := fmt.Sprintf("%d", b.UpperBound)
					if b.UpperInf {
						le = "+Inf"
					}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelString(s.Labels, "le", le), b.Count); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", f.Name, labelString(s.Labels, "", ""), s.Sum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, labelString(s.Labels, "", ""), s.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Prometheus renders the snapshot to a string.
func Prometheus(snap MetricsSnapshot) string {
	var b strings.Builder
	_ = WritePrometheus(&b, snap)
	return b.String()
}
