package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// goldenSet builds a small, fully deterministic telemetry set.
func goldenSet() *Set {
	tick := uint64(99)
	s := New(Options{EventCap: 8, Clock: func() uint64 { return tick }})
	r := s.Reg
	r.Counter("pacstack_pa_auth_fail_total", "aut* rejections").Add(3)
	v := r.CounterVec("pacstack_serve_requests_total", "requests by outcome", "outcome")
	v.With("ok").Add(10)
	v.With("detected").Add(2)
	r.Gauge("pacstack_serve_inflight", "admitted, unfinished requests").Set(-1)
	h := r.Histogram("pacstack_serve_request_cycles", "victim cycles per request", []uint64{1000, 10000})
	h.Observe(500)
	h.Observe(10000)
	h.Observe(20000)
	s.Events.Record(EvAuthFail, "pacstack", `q"uote`+"\n", 7)
	return s
}

// TestPrometheusGolden pins the exact text exposition, including
// sorting, histogram le rendering and label escaping.
func TestPrometheusGolden(t *testing.T) {
	got := Prometheus(goldenSet().Reg.Gather())
	want := strings.Join([]string{
		`# HELP pacstack_pa_auth_fail_total aut* rejections`,
		`# TYPE pacstack_pa_auth_fail_total counter`,
		`pacstack_pa_auth_fail_total 3`,
		`# HELP pacstack_serve_inflight admitted, unfinished requests`,
		`# TYPE pacstack_serve_inflight gauge`,
		`pacstack_serve_inflight -1`,
		`# HELP pacstack_serve_request_cycles victim cycles per request`,
		`# TYPE pacstack_serve_request_cycles histogram`,
		`pacstack_serve_request_cycles_bucket{le="1000"} 1`,
		`pacstack_serve_request_cycles_bucket{le="10000"} 2`,
		`pacstack_serve_request_cycles_bucket{le="+Inf"} 3`,
		`pacstack_serve_request_cycles_sum 30500`,
		`pacstack_serve_request_cycles_count 3`,
		`# HELP pacstack_serve_requests_total requests by outcome`,
		`# TYPE pacstack_serve_requests_total counter`,
		`pacstack_serve_requests_total{outcome="detected"} 2`,
		`pacstack_serve_requests_total{outcome="ok"} 10`,
		``,
	}, "\n")
	if got != want {
		t.Errorf("prometheus exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestDumpJSONGolden pins the JSON dump shape: injected-clock
// timestamps, named event kinds, sorted families.
func TestDumpJSONGolden(t *testing.T) {
	d := goldenSet().Dump()
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	for _, frag := range []string{
		`"time":99`,
		`"kind":"auth_fail"`,
		`"subject":"pacstack"`,
		`"next_seq":1`,
		`"capacity":8`,
		`"name":"pacstack_pa_auth_fail_total"`,
		`"le_inf":true`,
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("dump JSON missing %s in:\n%s", frag, got)
		}
	}
	// Identical builds marshal byte-identically — the property the
	// check.sh double-run gate rests on.
	b2, _ := json.Marshal(goldenSet().Dump())
	if string(b2) != got {
		t.Error("two identical sets marshalled differently")
	}
}

// TestPrometheusLabelEscaping: quotes, backslashes and newlines in
// label values must be escaped, not break the line format.
func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "", "v").With("a\"b\\c\nd").Inc()
	got := Prometheus(r.Gather())
	if !strings.Contains(got, `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", got)
	}
}
