// Package telemetry is the stdlib-only observability subsystem of the
// reproduction: a sharded, allocation-free metrics registry (counters,
// gauges, fixed-bucket histograms, all with optional label sets), a
// bounded ring-buffer security event log with sequence numbers and
// drop accounting, and Prometheus-text / JSON exposition.
//
// Two properties drive the design:
//
//  1. Hot-path cost. Instrument handles (*Counter, *Gauge, *Histogram)
//     are resolved once at wiring time; recording is one atomic add on
//     a sharded cell — no map lookups, no allocation, no interface
//     dispatch. Every handle method tolerates a nil receiver, so a
//     component wired to telemetry.Nop pays exactly one predictable
//     branch per record. BenchmarkEngine with Nop must stay within
//     noise of the uninstrumented engine; BenchmarkEngineTelemetry
//     tracks the enabled cost.
//
//  2. Determinism. Every metric value is an integer, counter adds
//     commute, and Gather sorts families by name and series by label
//     values — so a snapshot of a seeded run is byte-identical
//     regardless of goroutine interleaving or worker-pool width. All
//     timestamps come from an injected clock (virtual cycles in the
//     soak and crash matrix, wall nanoseconds in the daemon), so the
//     repository gate can `cmp` two telemetry dumps of the same seed.
//
// Naming scheme: pacstack_<component>_<noun>[_<unit>]_total for
// counters, pacstack_<component>_<noun> for gauges and histograms.
// Components: pa, kernel, supervise, snap, serve, soak.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// numShards is the counter shard fan-out. Eight cache-line-padded
// cells are plenty at serving concurrency (4-16 workers); the sum on
// read walks all of them.
const numShards = 8

// cell is one padded counter shard; the padding keeps two shards from
// sharing a cache line and turning independent Incs into ping-pong.
type cell struct {
	n atomic.Uint64
	_ [56]byte
}

// shardIndex picks a shard from the address of a stack variable:
// goroutine stacks are disjoint, so concurrent writers spread across
// cells without any runtime hook or thread-local storage. The value
// read is never converted back to a pointer.
func shardIndex() int {
	var probe byte
	return int((uintptr(unsafe.Pointer(&probe)) >> 10) % numShards)
}

// Counter is a monotonically increasing uint64, sharded across padded
// cells. The zero value is unusable; obtain counters from a Registry.
// All methods are safe for concurrent use and for a nil receiver.
type Counter struct {
	shards [numShards]cell
}

// Add increments the counter by n. A nil receiver is a no-op.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].n.Add(n)
}

// Inc increments the counter by one. A nil receiver is a no-op.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. A nil receiver reads zero.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var v uint64
	for i := range c.shards {
		v += c.shards[i].n.Load()
	}
	return v
}

// Gauge is a settable int64. All methods are nil-receiver-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. A nil receiver is a no-op.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. A nil receiver is a no-op.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge. A nil receiver reads zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over uint64 observations.
// Buckets are cumulative-le at exposition time but stored per-bucket;
// the implicit +Inf bucket catches everything above the last bound.
// Sum and count are exact integers, so histograms stay deterministic.
type Histogram struct {
	bounds []uint64 // ascending upper bounds, exclusive of +Inf
	counts []Counter
	sum    Counter
	count  Counter
}

// Observe records one value. A nil receiver is a no-op.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// First bucket whose bound >= v; linear scan — bucket lists are
	// short (≤ ~16) and branch-predictable, cheaper than sort.Search.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Inc()
	h.sum.Add(v)
	h.count.Inc()
}

// Count returns how many values the histogram has observed. A nil
// receiver reads zero.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Value()
}

// Quantile estimates the q = num/den quantile (e.g. 99, 100 for p99)
// as the upper bound of the bucket holding the ceil(q*count)-th
// observation — the standard fixed-bucket upper-bound estimate, exact
// integer arithmetic so the result is deterministic. Observations that
// landed in the implicit +Inf bucket saturate to twice the last
// finite bound; callers comparing against SLO targets must size their
// bucket layout so targets sit below the last bound. Returns 0 on an
// empty histogram or nil receiver.
func (h *Histogram) Quantile(num, den uint64) uint64 {
	if h == nil || den == 0 {
		return 0
	}
	total := h.count.Value()
	if total == 0 {
		return 0
	}
	rank := (total*num + den - 1) / den
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Value()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return 2 * h.bounds[len(h.bounds)-1]
		}
	}
	return 2 * h.bounds[len(h.bounds)-1]
}

// instrumentKind tags what a family holds.
type instrumentKind int

const (
	kindCounter instrumentKind = iota
	kindGauge
	kindHistogram
	kindGaugeFunc
)

func (k instrumentKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instrument inside a family.
type series struct {
	labels []string // values, parallel to family.labelNames
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() int64
}

// family is all series sharing one metric name.
type family struct {
	name       string
	help       string
	kind       instrumentKind
	labelNames []string
	bounds     []uint64 // histograms only

	mu     sync.Mutex
	series map[string]*series
}

// Registry holds instrument families. All methods are safe for
// concurrent use; every lookup method tolerates a nil receiver (and
// then returns a nil handle), which is what makes telemetry.Nop free.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	clock atomic.Pointer[func() uint64]
}

// NewRegistry returns an empty registry reading the wall clock (Unix
// nanoseconds). Deterministic runs replace the clock with SetClock.
func NewRegistry() *Registry {
	r := &Registry{fams: make(map[string]*family)}
	wall := func() uint64 { return uint64(time.Now().UnixNano()) }
	r.clock.Store(&wall)
	return r
}

// SetClock injects the time source used to stamp snapshots (and, via
// Set, events). The soak and crash matrix inject virtual time here so
// telemetry dumps are byte-identical for one seed.
func (r *Registry) SetClock(now func() uint64) {
	if r == nil || now == nil {
		return
	}
	r.clock.Store(&now)
}

// Now reads the registry clock. Nil receivers read zero so that
// components wired to Nop can still stamp ad-hoc values.
func (r *Registry) Now() uint64 {
	if r == nil {
		return 0
	}
	return (*r.clock.Load())()
}

// validName enforces the Prometheus name charset so exposition never
// emits an unparseable line.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup finds or creates the family, panicking on a redefinition
// with a different shape — that is always a wiring bug, and failing
// loudly at startup beats silently splitting a metric in two.
func (r *Registry) lookup(name, help string, kind instrumentKind, labelNames []string, bounds []uint64) *family {
	if !validName(name) {
		panic("telemetry: invalid metric name " + name)
	}
	for _, l := range labelNames {
		if !validName(l) {
			panic("telemetry: invalid label name " + l + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labelNames) != len(labelNames) {
			panic("telemetry: metric " + name + " redefined with a different shape")
		}
		for i := range labelNames {
			if f.labelNames[i] != labelNames[i] {
				panic("telemetry: metric " + name + " redefined with different labels")
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...),
		bounds:     append([]uint64(nil), bounds...),
		series:     make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

// seriesKey joins label values; 0x1f cannot appear in validated label
// values (see escapeLabel — raw control bytes are escaped on output,
// but keys must be collision-free on input, so the separator is a
// byte no Go string literal in this repo uses).
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

// with finds or creates the series for the label values.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %s wants %d label value(s), got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labels: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.ctr = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = &Histogram{
			bounds: f.bounds,
			counts: make([]Counter, len(f.bounds)+1),
		}
	}
	f.series[key] = s
	return s
}

// Counter returns the unlabeled counter with the given name,
// registering it on first use. Nil registries return nil handles.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, nil).with(nil).ctr
}

// CounterVec declares a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, kindCounter, labelNames, nil)}
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, nil).with(nil).gauge
}

// GaugeFunc registers a gauge whose value is read at Gather time —
// for externally owned values like queue depths. fn must be safe for
// concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, kindGaugeFunc, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.series[""] = &series{fn: fn}
}

// GaugeFuncWith registers a labeled gather-time gauge — one series of
// a labeled family whose value is read from fn at every Gather. Used
// for externally owned per-instance values (e.g. per-backend in-flight
// counts in the cluster router). fn must be safe for concurrent use;
// re-registering the same label set replaces the previous fn.
func (r *Registry) GaugeFuncWith(name, help string, labelNames, labelValues []string, fn func() int64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, kindGaugeFunc, labelNames, nil)
	if len(labelValues) != len(labelNames) {
		panic(fmt.Sprintf("telemetry: metric %s wants %d label value(s), got %d",
			name, len(labelNames), len(labelValues)))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.series[seriesKey(labelValues)] = &series{
		labels: append([]string(nil), labelValues...),
		fn:     fn,
	}
}

// Histogram returns the unlabeled histogram with the given ascending
// bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	checkBounds(name, bounds)
	return r.lookup(name, help, kindHistogram, nil, bounds).with(nil).hist
}

// HistogramVec declares a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []uint64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	checkBounds(name, bounds)
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, labelNames, bounds)}
}

func checkBounds(name string, bounds []uint64) {
	if len(bounds) == 0 {
		panic("telemetry: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram " + name + " bounds must be strictly ascending")
		}
	}
}

// CounterVec hands out per-label-set counters. Resolve handles once
// at wiring time; With does a map lookup under a mutex.
type CounterVec struct {
	f   *family
	pre []string // label values fixed by Curry, prepended in With
}

// With returns the counter for the label values (nil on a nil vec).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(v.pre) > 0 {
		values = append(append(make([]string, 0, len(v.pre)+len(values)), v.pre...), values...)
	}
	return v.f.with(values).ctr
}

// Curry returns a view of the vec with the leading label values fixed —
// how a component that only knows its own label dimension (say, kill
// class) records into a family keyed by more (scheme, class). Nil vecs
// curry to nil.
func (v *CounterVec) Curry(values ...string) *CounterVec {
	if v == nil {
		return nil
	}
	return &CounterVec{f: v.f, pre: append(append([]string(nil), v.pre...), values...)}
}

// HistogramVec hands out per-label-set histograms.
type HistogramVec struct{ f *family }

// With returns the histogram for the label values (nil on a nil vec).
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.with(values).hist
}

// Label is one name=value pair in a snapshot.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// BucketCount is one histogram bucket in a snapshot: the cumulative
// count of observations ≤ UpperBound (UpperInf marks +Inf).
type BucketCount struct {
	UpperBound uint64 `json:"le"`
	UpperInf   bool   `json:"le_inf,omitempty"`
	Count      uint64 `json:"count"`
}

// Series is one instrument's point-in-time value.
type Series struct {
	Labels []Label `json:"labels,omitempty"`
	// Value carries counters (uint64) and gauges (int64, stored
	// two's-complement in a uint64 for counters' sake — GaugeValue
	// is the signed view).
	Value      uint64        `json:"value,omitempty"`
	GaugeValue int64         `json:"gauge_value,omitempty"`
	Buckets    []BucketCount `json:"buckets,omitempty"`
	Sum        uint64        `json:"sum,omitempty"`
	Count      uint64        `json:"count,omitempty"`
}

// Family is all series of one metric, sorted by label values.
type Family struct {
	Name   string   `json:"name"`
	Help   string   `json:"help,omitempty"`
	Type   string   `json:"type"`
	Series []Series `json:"series"`
}

// MetricsSnapshot is the full registry state at one instant.
type MetricsSnapshot struct {
	Time     uint64   `json:"time"`
	Families []Family `json:"families"`
}

// Gather snapshots every family, sorted by name and label values so
// the result is deterministic for deterministic inputs. A nil
// registry gathers an empty snapshot.
func (r *Registry) Gather() MetricsSnapshot {
	if r == nil {
		return MetricsSnapshot{}
	}
	snap := MetricsSnapshot{Time: r.Now()}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		out := Family{Name: f.name, Help: f.help, Type: f.kind.String()}
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			var labels []Label
			for i, n := range f.labelNames {
				labels = append(labels, Label{Name: n, Value: s.labels[i]})
			}
			se := Series{Labels: labels}
			switch f.kind {
			case kindCounter:
				se.Value = s.ctr.Value()
			case kindGauge:
				se.GaugeValue = s.gauge.Value()
			case kindGaugeFunc:
				se.GaugeValue = s.fn()
			case kindHistogram:
				var cum uint64
				for i := range s.hist.counts {
					cum += s.hist.counts[i].Value()
					bc := BucketCount{Count: cum}
					if i < len(f.bounds) {
						bc.UpperBound = f.bounds[i]
					} else {
						bc.UpperInf = true
					}
					se.Buckets = append(se.Buckets, bc)
				}
				se.Sum = s.hist.sum.Value()
				se.Count = s.hist.count.Value()
			}
			out.Series = append(out.Series, se)
		}
		f.mu.Unlock()
		snap.Families = append(snap.Families, out)
	}
	return snap
}
