package telemetry

import (
	"encoding/json"
	"fmt"
	"sync"
)

// EventKind is the security-event taxonomy: the typed chain events the
// paper's operators would watch. The enum is append-only — exposition
// and dump diffs key on the string names below.
type EventKind uint8

// The event taxonomy. Chain-level kinds (issued/auth/mask) fire per
// PA operation and are only recorded when a component is explicitly
// wired for chain tracing — at serving rates they would swamp the
// ring, which is precisely what the drop accounting is for.
const (
	// EvPACIssued: a pac* instruction sealed a pointer (pacia/pacib).
	EvPACIssued EventKind = iota
	// EvAuthOK: an aut* instruction verified a chain link.
	EvAuthOK
	// EvAuthFail: an aut* instruction rejected its input — a broken
	// auth_i = H_k(ret_i, aret_{i-1}) link, the paper's core signal.
	EvAuthFail
	// EvMask: a PAC-mask derivation (PAC over the zero pointer,
	// Listing 3). Masking and unmasking derive the same value — XOR is
	// an involution — so one kind covers both sides.
	EvMask
	// EvUnmask is reserved for call sites that can tell the strip-side
	// derivation apart from the apply side (the __acs_validate walk).
	EvUnmask
	// EvReseed: a thread spawn re-seeded the chain register
	// (Section 4.3).
	EvReseed
	// EvSigframeBind: the kernel bound a signal frame into the
	// Appendix B sigreturn chain.
	EvSigframeBind
	// EvKill: the kernel killed a process; Subject is the kill class.
	EvKill
	// EvCommit / EvRestore: a checkpoint durably committed / a
	// supervisor warm-restored one.
	EvCommit
	EvRestore
	// EvTornCommit: a snapshot commit died with the storage.
	EvTornCommit
	// EvBreaker: a circuit breaker changed state; Subject is the
	// backend, Detail the "from->to" transition.
	EvBreaker
	// EvShed / EvRetry: admission shed a request / a client retried
	// after a rejection.
	EvShed
	EvRetry
	// EvRequestDone: a request reached a terminal outcome; Subject is
	// the scheme, Detail the outcome class.
	EvRequestDone
	// EvProbe: a half-open breaker resolved a batch of racing probe
	// candidates; Subject is the backend, Detail the seeded grant order.
	EvProbe
	// EvMigrate: a checkpointed machine was shipped from a dead backend
	// and restored (with re-seeded keys) on a survivor; Subject is the
	// scheme, Detail "from->to", Value the shipped image bytes.
	EvMigrate
	// EvFailover: a backend died and the cluster absorbed the failure
	// (budget charged, machines migrated, in-flight work replayed);
	// Subject is the killed backend, Detail the survivor.
	EvFailover
	// EvResize: the adaptive admission controller resized the worker
	// limit; Detail is the "old->new" transition, Value the new limit.
	EvResize
	// EvHedge: a hedged attempt launched on the next-ranked backend
	// after the per-class hedge delay; Subject is the class, Detail
	// "primary->hedge" backend indices, Value the request id.
	EvHedge
	// EvEject: outlier detection ejected a gray backend from the
	// routing rotation (distinct from its breaker state); Subject is
	// the backend, Detail the triggering signal, Value the cooldown.
	EvEject
	// EvBrownout: the priority brownout controller changed its shedding
	// level; Detail is the "old->new" transition, Value the new level.
	EvBrownout
	// EvLinkDrop: the network fault mesh dropped a message on a
	// (router,backend) link; Subject is the backend, Detail the cause
	// (drop, partition, flap), Value the request id.
	EvLinkDrop
	// EvMeshSet: the operator replaced the live fleet's mesh link
	// state over /v1/mesh; Detail summarises the new config.
	EvMeshSet
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	EvPACIssued:    "pac_issued",
	EvAuthOK:       "auth_ok",
	EvAuthFail:     "auth_fail",
	EvMask:         "mask",
	EvUnmask:       "unmask",
	EvReseed:       "reseed",
	EvSigframeBind: "sigframe_bind",
	EvKill:         "kill",
	EvCommit:       "checkpoint_commit",
	EvRestore:      "checkpoint_restore",
	EvTornCommit:   "torn_commit",
	EvBreaker:      "breaker",
	EvShed:         "shed",
	EvRetry:        "retry",
	EvRequestDone:  "request_done",
	EvProbe:        "breaker_probe",
	EvMigrate:      "migrate",
	EvFailover:     "failover",
	EvResize:       "resize",
	EvHedge:        "hedge",
	EvEject:        "outlier_eject",
	EvBrownout:     "brownout",
	EvLinkDrop:     "link_drop",
	EvMeshSet:      "mesh_set",
}

// String names the kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// MarshalJSON emits the kind as its name, so dumps read and diff by
// taxonomy name rather than enum position.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses a kind by name, so dump files round-trip
// (cmd/pacstack-metrics re-reads what WriteJSON wrote).
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range eventKindNames {
		if n == name {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown event kind %q", name)
}

// Event is one recorded security event. Seq is assigned at record
// time and never reused; Time comes from the log's clock.
type Event struct {
	Seq     uint64    `json:"seq"`
	Time    uint64    `json:"time"`
	Kind    EventKind `json:"kind"`
	Subject string    `json:"subject,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	Value   uint64    `json:"value,omitempty"`
}

// EventLog is a bounded ring buffer of events. When full, recording
// evicts the oldest entry and counts the drop — the log never blocks
// and never grows. All methods are safe for concurrent use and for a
// nil receiver (then they are no-ops / read empty).
type EventLog struct {
	mu      sync.Mutex
	buf     []Event
	start   int    // index of the oldest live entry
	n       int    // live entries
	next    uint64 // next sequence number
	dropped uint64 // entries evicted to make room
	clock   func() uint64
}

// NewEventLog returns a ring holding up to capacity events; capacity
// < 1 is clamped to 1. The clock defaults to zero timestamps until
// SetClock is called (a Set wires its registry clock in).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// SetClock injects the event timestamp source.
func (l *EventLog) SetClock(now func() uint64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.clock = now
	l.mu.Unlock()
}

// Record appends one event, evicting the oldest when full. A nil
// receiver is a no-op, so unwired components can call unconditionally.
func (l *EventLog) Record(kind EventKind, subject, detail string, value uint64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	var t uint64
	if l.clock != nil {
		t = l.clock()
	}
	e := Event{Seq: l.next, Time: t, Kind: kind, Subject: subject, Detail: detail, Value: value}
	l.next++
	if l.n == len(l.buf) {
		l.buf[l.start] = e
		l.start = (l.start + 1) % len(l.buf)
		l.dropped++
	} else {
		l.buf[(l.start+l.n)%len(l.buf)] = e
		l.n++
	}
	l.mu.Unlock()
}

// EventsSnapshot is the exportable state of the log: the retained
// window in record order plus the drop accounting. FirstSeq is the
// sequence number of the oldest retained event (equal to Dropped,
// since sequence numbers start at zero and evictions are FIFO).
type EventsSnapshot struct {
	Capacity int     `json:"capacity"`
	NextSeq  uint64  `json:"next_seq"`
	Dropped  uint64  `json:"dropped"`
	FirstSeq uint64  `json:"first_seq"`
	Events   []Event `json:"events"`
}

// Snapshot copies the retained events. A nil receiver reads empty.
func (l *EventLog) Snapshot() EventsSnapshot {
	if l == nil {
		return EventsSnapshot{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := EventsSnapshot{
		Capacity: len(l.buf),
		NextSeq:  l.next,
		Dropped:  l.dropped,
		FirstSeq: l.dropped,
		Events:   make([]Event, 0, l.n),
	}
	for i := 0; i < l.n; i++ {
		s.Events = append(s.Events, l.buf[(l.start+i)%len(l.buf)])
	}
	return s
}

// Dropped reads the eviction count. A nil receiver reads zero.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Len reads the number of retained events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
