package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestEventLogWraparound fills a small ring past capacity and checks
// the exact drop count, the retained window, and the seq/drop
// bookkeeping identity FirstSeq == Dropped.
func TestEventLogWraparound(t *testing.T) {
	const capacity, total = 4, 11
	l := NewEventLog(capacity)
	tick := uint64(0)
	l.SetClock(func() uint64 { tick++; return tick })
	for i := 0; i < total; i++ {
		l.Record(EvAuthFail, "pacstack", "", uint64(i))
	}
	s := l.Snapshot()
	if s.Capacity != capacity {
		t.Errorf("capacity = %d, want %d", s.Capacity, capacity)
	}
	if want := uint64(total - capacity); s.Dropped != want {
		t.Errorf("dropped = %d, want exactly %d", s.Dropped, want)
	}
	if s.FirstSeq != s.Dropped {
		t.Errorf("first_seq = %d, want %d (== dropped)", s.FirstSeq, s.Dropped)
	}
	if s.NextSeq != total {
		t.Errorf("next_seq = %d, want %d", s.NextSeq, total)
	}
	if len(s.Events) != capacity {
		t.Fatalf("retained %d events, want %d", len(s.Events), capacity)
	}
	for i, e := range s.Events {
		wantSeq := uint64(total - capacity + i)
		if e.Seq != wantSeq || e.Value != wantSeq {
			t.Errorf("event %d: seq=%d value=%d, want %d", i, e.Seq, e.Value, wantSeq)
		}
		if e.Time != wantSeq+1 { // clock ticked once per record
			t.Errorf("event %d: time=%d, want %d", i, e.Time, wantSeq+1)
		}
	}
}

// TestEventLogExactlyFull: filling to capacity without overflow drops
// nothing.
func TestEventLogExactlyFull(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 3; i++ {
		l.Record(EvCommit, "", "", 0)
	}
	s := l.Snapshot()
	if s.Dropped != 0 || len(s.Events) != 3 || s.FirstSeq != 0 {
		t.Errorf("full-but-not-over ring: dropped=%d n=%d first=%d", s.Dropped, len(s.Events), s.FirstSeq)
	}
}

// TestEventLogConcurrent hammers Record under -race; the invariant is
// retained + dropped == recorded.
func TestEventLogConcurrent(t *testing.T) {
	const goroutines, perG, capacity = 8, 2_000, 64
	l := NewEventLog(capacity)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				l.Record(EvShed, "s", "", uint64(j))
			}
		}()
	}
	wg.Wait()
	s := l.Snapshot()
	if got := uint64(len(s.Events)) + s.Dropped; got != goroutines*perG {
		t.Errorf("retained+dropped = %d, want %d", got, goroutines*perG)
	}
	if s.NextSeq != goroutines*perG {
		t.Errorf("next_seq = %d, want %d", s.NextSeq, goroutines*perG)
	}
	seen := make(map[uint64]bool)
	for _, e := range s.Events {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// TestEventKindJSON: kinds marshal by taxonomy name.
func TestEventKindJSON(t *testing.T) {
	b, err := json.Marshal(Event{Seq: 1, Kind: EvAuthFail, Subject: "pacstack"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"kind":"auth_fail"`) {
		t.Errorf("marshal = %s, want kind auth_fail", b)
	}
	for k := EventKind(0); k < numEventKinds; k++ {
		if strings.HasPrefix(k.String(), "EventKind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}
