package traffic

import (
	"fmt"

	"pacstack/internal/resilience"
	"pacstack/internal/telemetry"
)

// SLO is one class's service-level objective, all in virtual cycles
// and integer permille so evaluation is exact.
//
// Latency targets (P50, P99): 0 means unconstrained. Rate budgets
// (ShedPermille, ErrorPermille): negative means unconstrained, 0 is a
// hard "none allowed".
type SLO struct {
	P50 uint64 `json:"p50_cycles,omitempty"` // virtual-latency target, first issue -> terminal
	P99 uint64 `json:"p99_cycles,omitempty"`

	// ShedPermille bounds shed events (queue-full rejections, counted
	// per event — retried sheds count each time) per arrival.
	ShedPermille int `json:"shed_permille"`

	// ErrorPermille is the error budget: terminal failures (detected +
	// silent + gave-up) per arrival.
	ErrorPermille int `json:"error_permille"`
}

// Outcome is a request's terminal classification from the traffic
// model's point of view.
type Outcome int

const (
	OutcomeOK Outcome = iota
	OutcomeDetected
	OutcomeSilent
	OutcomeGaveUp
)

// LatencyBounds is the fixed geometric bucket layout (2^11 .. 2^28
// cycles, doubling) for per-class latency histograms. It must cover
// every sane SLO target: quantiles of observations beyond the last
// bound saturate (telemetry.Histogram.Quantile).
var LatencyBounds = func() []uint64 {
	var b []uint64
	for v := uint64(1) << 11; v <= 1<<28; v <<= 1 {
		b = append(b, v)
	}
	return b
}()

// Evaluator accumulates per-class traffic telemetry during the serial
// DES replay and renders it into an SLOReport. Latency quantiles come
// from telemetry histograms (per-class series of
// pacstack_traffic_latency_cycles in the run's registry), so the SLO
// report and the telemetry dump can never disagree; the flat counters
// are mirrored into plain ints for cheap report assembly.
type Evaluator struct {
	classes []Class
	lat     []*telemetry.Histogram

	arrivals, ok, detected, silent, gaveup, sheds, retries, browned []int
}

// NewEvaluator wires per-class instruments into reg (a private
// registry when reg is nil, so evaluation always works).
func NewEvaluator(classes []Class, reg *telemetry.Registry) *Evaluator {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	n := len(classes)
	e := &Evaluator{
		classes:  classes,
		lat:      make([]*telemetry.Histogram, n),
		arrivals: make([]int, n), ok: make([]int, n),
		detected: make([]int, n), silent: make([]int, n),
		gaveup: make([]int, n), sheds: make([]int, n), retries: make([]int, n),
		browned: make([]int, n),
	}
	latVec := reg.HistogramVec("pacstack_traffic_latency_cycles",
		"virtual latency (first issue to terminal state) by class", LatencyBounds, "class")
	for i, c := range classes {
		e.lat[i] = latVec.With(c.Name)
	}
	return e
}

// Arrival records one generated request of the class.
func (e *Evaluator) Arrival(class int) { e.arrivals[class]++ }

// Shed records one queue-full rejection.
func (e *Evaluator) Shed(class int) { e.sheds[class]++ }

// Retry records one client retry.
func (e *Evaluator) Retry(class int) { e.retries[class]++ }

// Brownout records one arrival shed at admission by the priority
// brownout controller. Browned-out arrivals are a *declared* overload
// response — traffic the operator chose to refuse so higher-priority
// classes keep their objectives — so SLO evaluation reports them per
// class but excludes them from the shed/error denominators and the
// latency distribution: an SLO speaks for the traffic a class was
// actually offered service on, and counting deliberate refusals as
// violations would make brownout self-defeating. Brownout is the
// terminal record here (no Done follows); the owning soak report
// still counts the request gave-up, keeping its conservation
// identity intact.
func (e *Evaluator) Brownout(class int) { e.browned[class]++ }

// Done records a terminal state and its virtual latency (first issue
// to terminal, retries and backoff included).
func (e *Evaluator) Done(class int, latency uint64, o Outcome) {
	e.lat[class].Observe(latency)
	switch o {
	case OutcomeOK:
		e.ok[class]++
	case OutcomeDetected:
		e.detected[class]++
	case OutcomeSilent:
		e.silent[class]++
	case OutcomeGaveUp:
		e.gaveup[class]++
	}
}

// ClassReport is one class's evaluated SLO row.
type ClassReport struct {
	Class    string `json:"class"`
	Arrivals int    `json:"arrivals"`
	OK       int    `json:"ok"`
	Detected int    `json:"detected"`
	Silent   int    `json:"silent"`
	GaveUp   int    `json:"gave_up"`
	Sheds    int    `json:"sheds"`
	Retries  int    `json:"retries"`

	// BrownedOut arrivals were refused at admission by the priority
	// brownout controller; they are reported but SLO-exempt (see
	// Evaluator.Brownout).
	BrownedOut int `json:"browned_out,omitempty"`

	P50 uint64 `json:"p50_cycles"`
	P99 uint64 `json:"p99_cycles"`

	ShedPermille  int `json:"shed_permille"`
	ErrorPermille int `json:"error_permille"`

	SLO        SLO      `json:"slo"`
	Violations []string `json:"violations,omitempty"`
	Pass       bool     `json:"pass"`
}

// SLOReport is the deterministic per-class SLO evaluation: a pure
// function of the evaluator's integer state, byte-identical for one
// seed at any worker-pool width.
type SLOReport struct {
	Classes []ClassReport `json:"classes"`
	Pass    bool          `json:"pass"`

	// RPVSMilli is the run's delivered goodput in milli-requests per
	// virtual second (OK terminals over virtual cycles at the 1 GHz
	// virtual clock), copied from the enclosing soak report so the SLO
	// block is self-contained. The warm-pool gate compares this number
	// across boot models at the same seed.
	RPVSMilli uint64 `json:"rpvs_milli"`

	// Adaptive/Controller describe the admission policy the run used:
	// static (Adaptive false, Controller nil) or the AIMD trajectory.
	Adaptive   bool                  `json:"adaptive"`
	Controller *resilience.AIMDStats `json:"controller,omitempty"`
}

func permille(n, d int) int {
	if d == 0 {
		return 0
	}
	return n * 1000 / d
}

// Report evaluates every class against its SLO.
func (e *Evaluator) Report() *SLOReport {
	rep := &SLOReport{Pass: true}
	for i, c := range e.classes {
		cr := ClassReport{
			Class:    c.Name,
			Arrivals: e.arrivals[i],
			OK:       e.ok[i], Detected: e.detected[i],
			Silent: e.silent[i], GaveUp: e.gaveup[i],
			Sheds: e.sheds[i], Retries: e.retries[i],
			BrownedOut: e.browned[i],
			P50:        e.lat[i].Quantile(50, 100),
			P99:        e.lat[i].Quantile(99, 100),
			SLO:        c.SLO,
		}
		// Browned-out arrivals leave both the numerators and the
		// denominator: the SLO judges the traffic the class was
		// actually offered service on.
		offered := cr.Arrivals - cr.BrownedOut
		cr.ShedPermille = permille(cr.Sheds, offered)
		cr.ErrorPermille = permille(cr.Detected+cr.Silent+cr.GaveUp, offered)
		if offered > 0 {
			if c.SLO.P50 > 0 && cr.P50 > c.SLO.P50 {
				cr.Violations = append(cr.Violations, fmt.Sprintf("p50 %d > %d", cr.P50, c.SLO.P50))
			}
			if c.SLO.P99 > 0 && cr.P99 > c.SLO.P99 {
				cr.Violations = append(cr.Violations, fmt.Sprintf("p99 %d > %d", cr.P99, c.SLO.P99))
			}
			if c.SLO.ShedPermille >= 0 && cr.ShedPermille > c.SLO.ShedPermille {
				cr.Violations = append(cr.Violations, fmt.Sprintf("shed %d‰ > %d‰", cr.ShedPermille, c.SLO.ShedPermille))
			}
			if c.SLO.ErrorPermille >= 0 && cr.ErrorPermille > c.SLO.ErrorPermille {
				cr.Violations = append(cr.Violations, fmt.Sprintf("errors %d‰ > %d‰", cr.ErrorPermille, c.SLO.ErrorPermille))
			}
		}
		cr.Pass = len(cr.Violations) == 0
		if !cr.Pass {
			rep.Pass = false
		}
		rep.Classes = append(rep.Classes, cr)
	}
	return rep
}

// Class returns the report row for the named class, or nil.
func (r *SLOReport) Class(name string) *ClassReport {
	for i := range r.Classes {
		if r.Classes[i].Class == name {
			return &r.Classes[i]
		}
	}
	return nil
}
