package traffic

import "pacstack/internal/workload"

// Canned scenarios. The numbers are calibrated against the serving
// catalog's measured per-request costs (chain ≈ 4.2k simulated
// cycles, SPEC profiles ≈ 400k, nginx ≈ 690k): with the default
// mixture the mean request costs ≈ 70k cycles, so a 4-worker pool
// saturates near 0.057 arrivals per kcycle — the default base rate of
// 0.02 runs the pool at ~35% utilization and a 10x burst pushes
// offered load to ~3.5x capacity, which is exactly the regime where a
// static admission policy collapses and an adaptive one (on a host
// with spare cores) must not.

// specNames returns the SPEC-calibrated profile names for a suite
// filter ("" = all).
func specNames(suite workload.Suite, all bool) []string {
	var names []string
	for _, b := range workload.SPEC {
		if all || b.Suite == suite {
			names = append(names, b.Name)
		}
	}
	return names
}

// DefaultClasses is the baseline heavy-tail mixture: interactive
// chain traffic dominating by count, the SPEC-calibrated profiles and
// the NGINX TLS handshake tree supplying the Pareto-ish cost tail.
// Brownout priorities mirror what an operator would declare: the
// interactive web tier is protected longest (priority 0), api and tls
// shed after batch, and the hostile overlays go first.
func DefaultClasses() []Class {
	return []Class{
		{Name: "web", Workloads: []string{"chain"}, Weight: 0.85, Priority: 0,
			SLO: SLO{P50: 16_384, P99: 262_144, ShedPermille: 50, ErrorPermille: 250}},
		{Name: "api", Workloads: specNames(workload.SPECrate, false), Weight: 0.10, Priority: 1,
			SLO: SLO{P99: 2_097_152, ShedPermille: 100, ErrorPermille: 250}},
		{Name: "batch", Workloads: specNames(workload.SPECspeed, false), Weight: 0.03, Priority: 2,
			SLO: SLO{P99: 4_194_304, ShedPermille: 200, ErrorPermille: 300}},
		{Name: "tls", Workloads: []string{"nginx"}, Weight: 0.02, Priority: 1,
			SLO: SLO{P99: 4_194_304, ShedPermille: 150, ErrorPermille: 250}},
	}
}

// HostileClasses are the adversarial overlays: slow clients that hold
// a worker slot ~40x longer than their compute justifies, and poison
// requests whose every attempt kills its victim (exercising the
// supervised respawn path and its restart budget under load). Their
// SLOs reflect their nature — poison requests are all errors by
// design, so their error budget is the full 1000‰ and their shed
// budget unconstrained (shed events count per retry attempt, so a
// permille against arrivals can legitimately exceed 1000).
func HostileClasses() []Class {
	return []Class{
		{Name: "slow", Workloads: []string{"chain"}, Weight: 0.012, Slow: 40, Priority: 3,
			SLO: SLO{P99: 16_777_216, ShedPermille: 500, ErrorPermille: 400}},
		{Name: "poison", Workloads: []string{"chain"}, Weight: 0.012, Poison: true, Priority: 3,
			SLO: SLO{ShedPermille: -1, ErrorPermille: 1000}},
	}
}

// Default returns the baseline diurnal heavy-tail model with no burst
// and no hostile classes.
func Default(seed int64) Model {
	return Model{
		Horizon: 10_000_000,
		Rate:    0.02,
		Diurnal: 0.3,
		Period:  5_000_000,
		Classes: DefaultClasses(),
		Seed:    seed,
	}
}

// ForkServerScenario is the boot-dominated regime the warm-pool gate
// measures: pure interactive chain traffic (≈4.2k intrinsic cycles per
// request) offered far above the cold-boot service capacity. With
// machine acquisition charged per request, throughput here is decided
// almost entirely by how machines are produced — full image
// construction versus snapshot-fork restore — which is exactly the
// population a fork-server exists to serve. The heavy-tail mixture
// (BurstScenario) is deliberately NOT used: SPEC and nginx requests
// bury acquisition cost under intrinsic compute, capping the
// measurable warm/cold ratio at a few x no matter how fast restores
// are. No SLO constraints: the gate grades goodput ratios, not
// objectives.
func ForkServerScenario(seed int64) Model {
	return Model{
		Horizon: 4_000_000,
		Rate:    0.7,
		Diurnal: 0.2,
		Period:  2_000_000,
		Classes: []Class{
			{Name: "interactive", Workloads: []string{"chain"}, Weight: 1,
				SLO: SLO{ShedPermille: -1, ErrorPermille: -1}},
		},
		Seed: seed,
	}
}

// BurstScenario is the canned 10x-burst scenario the check.sh gate
// and the adaptive-vs-static tests run: the default diurnal mixture
// plus the hostile classes, with a 10x Poisson burst overlay holding
// for a million cycles mid-horizon.
func BurstScenario(seed int64) Model {
	m := Default(seed)
	m.Classes = append(m.Classes, HostileClasses()...)
	m.Bursts = []Burst{{At: 4_000_000, Dur: 1_000_000, Factor: 10}}
	return m
}
