// Package traffic is the seeded workload model for the soak DES: a
// deterministic generator of production-shaped request streams —
// diurnal load curves, Poisson burst overlays, and a heavy-tailed
// per-request cost mixture spanning the "chain" micro-workload (~4k
// simulated cycles), the SPEC-calibrated profiles (~400k) and the
// NGINX TLS handshake tree (~690k) in one stream — plus the hostile
// classes a uniform soak never exercises: slow clients that hold a
// worker slot while trickling virtual time, and poison requests that
// are guaranteed to kill their victim and exercise the fault/respawn
// path.
//
// Everything is a pure function of (Model, Seed): arrivals come from
// one seeded nonhomogeneous-Poisson thinning pass, so the same model
// yields the same stream byte-for-byte on any machine and at any
// worker-pool width. The diurnal curve is a triangle wave rather than
// a sine on purpose — it needs no math.Sin, whose implementation is
// architecture-dependent assembly on some ports, and bit-stable
// arrivals are what the check.sh cmp gates rest on.
//
// The package also owns SLO evaluation (slo.go): per-class latency
// histograms recorded into the shared telemetry registry, quantiles
// and shed/error budgets checked against per-class targets, and a
// deterministic SLOReport the serve/cluster soaks embed in their
// reports.
package traffic

import (
	"fmt"
	"math/rand"
)

// Burst is one rate-multiplier overlay: while now is in [At, At+Dur)
// the instantaneous arrival rate is multiplied by Factor. Overlapping
// bursts compound.
type Burst struct {
	At     uint64  `json:"at"`
	Dur    uint64  `json:"dur"`
	Factor float64 `json:"factor"`
}

// Class is one request class in the mixture.
type Class struct {
	Name string `json:"name"`

	// Workloads is the set of workload names this class draws from,
	// uniformly per arrival (seeded). All names must resolve in the
	// serving catalog (serve.ResolveProgram).
	Workloads []string `json:"workloads"`

	// Scheme is the hardening scheme requests of this class run under
	// (default "pacstack").
	Scheme string `json:"scheme,omitempty"`

	// Weight is the class's relative share of the mixture (any
	// positive scale; weights are normalized).
	Weight float64 `json:"weight"`

	// Priority orders classes for brownout shedding: 0 is the most
	// important tier, higher numbers shed first. Classes sharing a
	// priority shed together.
	Priority int `json:"priority,omitempty"`

	// Slow multiplies the class's service time: a slow client holds
	// its worker slot Slow times longer while trickling virtual time.
	// 0 and 1 both mean "normal".
	Slow uint64 `json:"slow_factor,omitempty"`

	// Poison marks guaranteed-kill requests: the soak executes them
	// with chaos probability 1, so every attempt dies and the
	// supervised respawn path (restart budget included) is exercised
	// under load.
	Poison bool `json:"poison,omitempty"`

	// SLO is the class's service-level objective.
	SLO SLO `json:"slo"`
}

// Model is a complete traffic description. Generate turns it into an
// arrival stream.
type Model struct {
	// Horizon bounds arrival times to [0, Horizon) virtual cycles.
	Horizon uint64 `json:"horizon"`

	// Rate is the base arrival rate in arrivals per 1000 virtual
	// cycles, before the diurnal curve and burst overlays scale it.
	Rate float64 `json:"rate_per_kcycle"`

	// Diurnal is the triangle-wave amplitude in [0, 1): the
	// instantaneous rate swings between Rate*(1-Diurnal) and
	// Rate*(1+Diurnal) over each Period.
	Diurnal float64 `json:"diurnal,omitempty"`
	Period  uint64  `json:"period,omitempty"`

	Bursts  []Burst `json:"bursts,omitempty"`
	Classes []Class `json:"classes"`

	// Seed fixes the generator; same model+seed, same stream.
	Seed int64 `json:"seed"`
}

// Arrival is one generated request.
type Arrival struct {
	At       uint64 // virtual cycle
	Class    int    // index into Model.Classes
	Workload string
	Scheme   string
	Slow     uint64 // resolved service-time multiplier, >= 1
	Poison   bool
}

// Validate checks the model's shape.
func (m *Model) Validate() error {
	if m.Horizon == 0 {
		return fmt.Errorf("traffic: horizon must be positive")
	}
	if m.Rate <= 0 {
		return fmt.Errorf("traffic: rate must be positive")
	}
	if m.Diurnal < 0 || m.Diurnal >= 1 {
		return fmt.Errorf("traffic: diurnal amplitude %v outside [0, 1)", m.Diurnal)
	}
	if m.Diurnal > 0 && m.Period == 0 {
		return fmt.Errorf("traffic: diurnal amplitude without a period")
	}
	if len(m.Classes) == 0 {
		return fmt.Errorf("traffic: at least one class required")
	}
	seen := map[string]bool{}
	for i, c := range m.Classes {
		if c.Name == "" {
			return fmt.Errorf("traffic: class %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("traffic: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		if len(c.Workloads) == 0 {
			return fmt.Errorf("traffic: class %q has no workloads", c.Name)
		}
		if c.Weight <= 0 {
			return fmt.Errorf("traffic: class %q weight must be positive", c.Name)
		}
	}
	for i, b := range m.Bursts {
		if b.Factor <= 0 || b.Dur == 0 {
			return fmt.Errorf("traffic: burst %d needs positive factor and duration", i)
		}
	}
	return nil
}

// tri is a [-1, 1] triangle wave over one period, starting at 0 and
// rising (peak at period/4, trough at 3*period/4) — the deterministic
// stand-in for a sine.
func tri(phase, period uint64) float64 {
	q := float64(phase) / float64(period)
	switch {
	case q < 0.25:
		return 4 * q
	case q < 0.75:
		return 2 - 4*q
	default:
		return 4*q - 4
	}
}

// factorAt returns the combined diurnal x burst rate multiplier at t.
func (m *Model) factorAt(t uint64) float64 {
	f := 1.0
	if m.Diurnal > 0 && m.Period > 0 {
		f += m.Diurnal * tri(t%m.Period, m.Period)
	}
	for _, b := range m.Bursts {
		if t >= b.At && t-b.At < b.Dur {
			f *= b.Factor
		}
	}
	return f
}

// RateAt returns the instantaneous arrival rate (per cycle) at t.
func (m *Model) RateAt(t uint64) float64 {
	return m.Rate / 1000 * m.factorAt(t)
}

// Generate produces the arrival stream by thinning a homogeneous
// Poisson process at the model's peak rate: candidate arrivals are
// drawn at rateMax and kept with probability rate(t)/rateMax — the
// standard exact simulation of a nonhomogeneous Poisson process, one
// rng, fully order-deterministic. Arrivals come back sorted by time.
func (m *Model) Generate() ([]Arrival, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	maxF := 1 + m.Diurnal
	for _, b := range m.Bursts {
		if b.Factor > 1 {
			maxF *= b.Factor // over-provisioning rateMax keeps thinning exact for overlaps
		}
	}
	rateMax := m.Rate / 1000 * maxF

	var cum []float64
	var totalW float64
	for _, c := range m.Classes {
		totalW += c.Weight
		cum = append(cum, totalW)
	}

	rng := rand.New(rand.NewSource(m.Seed))
	var out []Arrival
	t := 0.0
	for {
		t += rng.ExpFloat64() / rateMax
		if t >= float64(m.Horizon) {
			break
		}
		at := uint64(t)
		if rng.Float64()*rateMax > m.RateAt(at) {
			continue // thinned away
		}
		draw := rng.Float64() * totalW
		ci := 0
		for ci < len(cum)-1 && draw >= cum[ci] {
			ci++
		}
		c := &m.Classes[ci]
		slow := c.Slow
		if slow < 1 {
			slow = 1
		}
		scheme := c.Scheme
		if scheme == "" {
			scheme = "pacstack"
		}
		out = append(out, Arrival{
			At:       at,
			Class:    ci,
			Workload: c.Workloads[rng.Intn(len(c.Workloads))],
			Scheme:   scheme,
			Slow:     slow,
			Poison:   c.Poison,
		})
	}
	return out, nil
}
