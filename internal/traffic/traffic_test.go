package traffic

import (
	"reflect"
	"testing"

	"pacstack/internal/telemetry"
)

func TestGenerateDeterministic(t *testing.T) {
	m := BurstScenario(7)
	a, err := m.Generate()
	if err != nil {
		t.Fatal(err)
	}
	m2 := BurstScenario(7)
	b, err := m2.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same model+seed produced different arrival streams")
	}
	if len(a) == 0 {
		t.Fatal("no arrivals generated")
	}
	m8 := BurstScenario(8)
	other, err := m8.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGenerateSortedAndBounded(t *testing.T) {
	m := BurstScenario(3)
	arr, err := m.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i, a := range arr {
		if a.At < prev {
			t.Fatalf("arrival %d out of order: %d after %d", i, a.At, prev)
		}
		prev = a.At
		if a.At >= m.Horizon {
			t.Fatalf("arrival %d at %d beyond horizon %d", i, a.At, m.Horizon)
		}
		if a.Class < 0 || a.Class >= len(m.Classes) {
			t.Fatalf("arrival %d class %d out of range", i, a.Class)
		}
		if a.Slow < 1 {
			t.Fatalf("arrival %d slow factor %d < 1", i, a.Slow)
		}
		if a.Workload == "" || a.Scheme == "" {
			t.Fatalf("arrival %d missing workload/scheme: %+v", i, a)
		}
	}
}

func TestBurstRaisesDensity(t *testing.T) {
	m := BurstScenario(5)
	arr, err := m.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b := m.Bursts[0]
	inBurst, window := 0, 0
	// Compare the burst window's density against an equally sized
	// quiet window well before it.
	for _, a := range arr {
		if a.At >= b.At && a.At < b.At+b.Dur {
			inBurst++
		}
		if a.At >= 1_000_000 && a.At < 1_000_000+b.Dur {
			window++
		}
	}
	if inBurst < 4*window {
		t.Fatalf("burst density %d not clearly above quiet density %d", inBurst, window)
	}
}

func TestMixtureHitsEveryClass(t *testing.T) {
	m := BurstScenario(11)
	arr, err := m.Generate()
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(m.Classes))
	for _, a := range arr {
		counts[a.Class]++
	}
	for i, c := range m.Classes {
		if counts[i] == 0 {
			t.Fatalf("class %q never drawn in %d arrivals", c.Name, len(arr))
		}
	}
	// web must dominate by count; the tail classes must stay the tail.
	web := counts[0]
	for i := 1; i < len(counts); i++ {
		if counts[i] >= web {
			t.Fatalf("class %q (%d) outweighs web (%d)", m.Classes[i].Name, counts[i], web)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Model{
		{},
		{Horizon: 1000},
		{Horizon: 1000, Rate: 1},
		{Horizon: 1000, Rate: 1, Diurnal: 0.5, Classes: DefaultClasses()},
		{Horizon: 1000, Rate: 1, Classes: []Class{{Name: "x"}}},
		{Horizon: 1000, Rate: 1, Classes: []Class{{Name: "x", Workloads: []string{"chain"}}}},
		{Horizon: 1000, Rate: 1, Classes: []Class{
			{Name: "x", Workloads: []string{"chain"}, Weight: 1},
			{Name: "x", Workloads: []string{"chain"}, Weight: 1},
		}},
		{Horizon: 1000, Rate: 1, Classes: DefaultClasses(), Bursts: []Burst{{Factor: 2}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("model %d validated but should not have", i)
		}
	}
	good := BurstScenario(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("canned scenario invalid: %v", err)
	}
}

func TestEvaluatorReport(t *testing.T) {
	classes := []Class{
		{Name: "a", Workloads: []string{"chain"}, Weight: 1,
			SLO: SLO{P50: 1 << 12, P99: 1 << 14, ShedPermille: 100, ErrorPermille: 100}},
		{Name: "b", Workloads: []string{"chain"}, Weight: 1,
			SLO: SLO{P99: 1 << 12, ShedPermille: 0, ErrorPermille: 0}},
	}
	reg := telemetry.NewRegistry()
	e := NewEvaluator(classes, reg)
	// Class a: healthy — latencies under both targets, no sheds.
	for i := 0; i < 99; i++ {
		e.Arrival(0)
		e.Done(0, 3000, OutcomeOK)
	}
	e.Arrival(0)
	e.Done(0, 12_000, OutcomeOK) // the p100 outlier, within P99 slack
	// Class b: one shed, one error, latency over target.
	for i := 0; i < 10; i++ {
		e.Arrival(1)
		e.Done(1, 50_000, OutcomeOK)
	}
	e.Arrival(1)
	e.Shed(1)
	e.Retry(1)
	e.Done(1, 100_000, OutcomeGaveUp)

	rep := e.Report()
	a, b := rep.Class("a"), rep.Class("b")
	if a == nil || b == nil {
		t.Fatal("missing class rows")
	}
	if !a.Pass || len(a.Violations) != 0 {
		t.Fatalf("class a should pass: %+v", a)
	}
	if a.P50 != 1<<12 {
		t.Fatalf("class a p50 = %d, want %d", a.P50, 1<<12)
	}
	if b.Pass || len(b.Violations) != 3 {
		t.Fatalf("class b should fail p99+shed+errors: %+v", b.Violations)
	}
	if rep.Pass {
		t.Fatal("report passed with a failing class")
	}
	// Quantiles must come from the registry's histogram series: the
	// telemetry dump and SLO report share the same source of truth.
	snap := reg.Gather()
	found := false
	for _, f := range snap.Families {
		if f.Name == "pacstack_traffic_latency_cycles" {
			found = len(f.Series) == 2
		}
	}
	if !found {
		t.Fatal("latency histogram family missing from the registry")
	}
}
