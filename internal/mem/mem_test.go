package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustMap(t *testing.T, m *Memory, addr, size uint64, perm Perm) {
	t.Helper()
	if err := m.Map(addr, size, perm); err != nil {
		t.Fatalf("Map(%#x, %d, %s): %v", addr, size, perm, err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermRW)
	f := func(off uint16, v uint64) bool {
		addr := 0x1000 + uint64(off)%(PageSize-8)
		if err := m.Write64(addr, v); err != nil {
			return false
		}
		got, err := m.Read64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermRW)
	if err := m.Write64(0x1000, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	b, err := m.Read8(0x1000)
	if err != nil || b != 0x08 {
		t.Errorf("byte 0 = %#x, err %v; want 0x08", b, err)
	}
	b, _ = m.Read8(0x1007)
	if b != 0x01 {
		t.Errorf("byte 7 = %#x, want 0x01", b)
	}
}

func TestUnmappedFaults(t *testing.T) {
	m := New()
	if _, err := m.Read64(0x1000); err == nil {
		t.Error("read of unmapped memory did not fault")
	}
	var f *Fault
	_, err := m.Read64(0x1000)
	if !errors.As(err, &f) {
		t.Fatalf("error is not a *Fault: %v", err)
	}
	if f.Kind != AccessRead || f.Addr != 0x1000 {
		t.Errorf("fault = %+v", f)
	}
}

func TestPermissionEnforcement(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermR)   // read-only
	mustMap(t, m, 0x10000, PageSize, PermRX) // code
	mustMap(t, m, 0x20000, PageSize, PermRW) // data

	if err := m.Write64(0x1000, 1); err == nil {
		t.Error("write to read-only page succeeded")
	}
	if err := m.CheckFetch(0x1000); err == nil {
		t.Error("fetch from non-executable page succeeded")
	}
	if err := m.CheckFetch(0x10000); err != nil {
		t.Errorf("fetch from code page faulted: %v", err)
	}
	if err := m.Write64(0x10000, 1); err == nil {
		t.Error("write to code page succeeded (W⊕X broken)")
	}
	if err := m.CheckFetch(0x20000); err == nil {
		t.Error("fetch from data page succeeded (W⊕X broken)")
	}
}

func TestWXMappingRejected(t *testing.T) {
	m := New()
	if err := m.Map(0x1000, PageSize, PermR|PermW|PermX); err == nil {
		t.Error("W+X mapping accepted")
	}
	mustMap(t, m, 0x1000, PageSize, PermRW)
	if err := m.Protect(0x1000, PageSize, PermW|PermX); err == nil {
		t.Error("W+X protect accepted")
	}
}

func TestOverlappingMapRejected(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, 2*PageSize, PermRW)
	if err := m.Map(0x1800, PageSize, PermR); err == nil {
		t.Error("overlapping map accepted")
	}
	if err := m.Map(0x1000, 0, PermR); err == nil {
		t.Error("zero-size map accepted")
	}
}

func TestProtectChangesPerms(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermRW)
	if err := m.Write64(0x1000, 42); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(0x1000, PageSize, PermR); err != nil {
		t.Fatal(err)
	}
	if err := m.Write64(0x1000, 43); err == nil {
		t.Error("write after downgrade to read-only succeeded")
	}
	v, err := m.Read64(0x1000)
	if err != nil || v != 42 {
		t.Errorf("data lost across Protect: %d, %v", v, err)
	}
	if err := m.Protect(0x5000, PageSize, PermR); err == nil {
		t.Error("protect of unmapped page succeeded")
	}
}

func TestPageStraddleRejected(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, 2*PageSize, PermRW)
	if _, err := m.Read64(0x1000 + PageSize - 4); err == nil {
		t.Error("straddling word read succeeded")
	}
	// Byte-wise access across the boundary is fine.
	if err := m.WriteBytes(0x1000+PageSize-4, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Errorf("byte-wise straddle failed: %v", err)
	}
	got, err := m.ReadBytes(0x1000+PageSize-4, 8)
	if err != nil || got[7] != 8 {
		t.Errorf("ReadBytes = %v, %v", got, err)
	}
}

func TestPermString(t *testing.T) {
	if s := PermRW.String(); s != "rw-" {
		t.Errorf("PermRW = %q", s)
	}
	if s := PermRX.String(); s != "r-x" {
		t.Errorf("PermRX = %q", s)
	}
	if s := Perm(0).String(); s != "---" {
		t.Errorf("Perm(0) = %q", s)
	}
}

func TestAdversaryPeekIgnoresPerms(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, Perm(0)) // no access at all
	adv := NewAdversary(m)
	if _, err := adv.Peek(0x1000); err != nil {
		t.Errorf("adversary could not read a no-access page: %v", err)
	}
	if _, err := adv.Peek(0x9000); err == nil {
		t.Error("adversary read unmapped memory")
	}
}

func TestAdversaryPokeRespectsWX(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermR) // read-only data
	mustMap(t, m, 0x2000, PageSize, PermRX)
	adv := NewAdversary(m)
	if err := adv.Poke(0x1000, 0xdead); err != nil {
		t.Errorf("adversary blocked from read-only data page: %v", err)
	}
	v, _ := m.Read64(0x1000)
	if v != 0xdead {
		t.Errorf("poke did not land: %#x", v)
	}
	if err := adv.Poke(0x2000, 0xdead); err == nil {
		t.Error("adversary modified executable memory")
	}
}

func TestAdversaryScan(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermRW)
	for i := uint64(0); i < 4; i++ {
		if err := m.Write64(0x1000+8*i, 100+i); err != nil {
			t.Fatal(err)
		}
	}
	got, err := NewAdversary(m).Scan(0x1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint64(100+i) {
			t.Errorf("scan[%d] = %d", i, v)
		}
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Addr: 0x42, Kind: AccessFetch, Reason: "unmapped"}
	want := "mem: fetch fault at 0x42: unmapped"
	if f.Error() != want {
		t.Errorf("Error() = %q, want %q", f.Error(), want)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermRW)
	mustMap(t, m, 0x3000, PageSize, PermRX)
	if err := m.Write64(0x1000, 42); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	// Same contents and permissions...
	if v, _ := c.Read64(0x1000); v != 42 {
		t.Errorf("clone lost data: %d", v)
	}
	if c.Perm(0x3000) != PermRX {
		t.Errorf("clone lost permissions: %v", c.Perm(0x3000))
	}
	// ...but writes diverge both ways.
	if err := c.Write64(0x1000, 43); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read64(0x1000); v != 42 {
		t.Error("clone write leaked into the original")
	}
	if err := m.Write64(0x1008, 99); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Read64(0x1008); v == 99 {
		t.Error("original write leaked into the clone")
	}
	// New mappings do not propagate either.
	mustMap(t, c, 0x5000, PageSize, PermRW)
	if m.Mapped(0x5000) {
		t.Error("clone mapping appeared in the original")
	}
}

func TestReadWriteBytesAcrossPages(t *testing.T) {
	// The page-at-a-time copy paths must behave exactly like the old
	// byte-wise walk across page boundaries.
	m := New()
	if err := m.Map(0x1000, 4*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 2*PageSize+100)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	start := uint64(0x1000 + PageSize - 50) // straddles two boundaries
	if err := m.WriteBytes(start, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBytes(start, uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: got %#x, want %#x", i, got[i], data[i])
		}
	}
	// Spot-check against the single-byte path.
	b, err := m.Read8(start + uint64(PageSize))
	if err != nil {
		t.Fatal(err)
	}
	if b != data[PageSize] {
		t.Fatalf("Read8 disagrees with ReadBytes: %#x vs %#x", b, data[PageSize])
	}
}

func TestWriteBytesPartialOnFault(t *testing.T) {
	// A fault mid-copy happens at a page boundary; everything before
	// the faulting page must have been written (byte-wise semantics).
	m := New()
	if err := m.Map(0x1000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 100)
	for i := range data {
		data[i] = 0xAB
	}
	start := uint64(0x1000 + PageSize - 40)
	err := m.WriteBytes(start, data)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != AccessWrite {
		t.Fatalf("got %v, want write fault at the unmapped page", err)
	}
	for i := 0; i < 40; i++ {
		b, err := m.Read8(start + uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if b != 0xAB {
			t.Fatalf("byte %d not written before the fault", i)
		}
	}
}

func TestReadBytesFaultsOnUnmappedTail(t *testing.T) {
	m := New()
	if err := m.Map(0x1000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadBytes(0x1000+PageSize-8, 16); err == nil {
		t.Fatal("read into unmapped page succeeded")
	}
}

func TestExecRegion(t *testing.T) {
	m := New()
	if err := m.Map(0x10000, 3*PageSize, PermRX); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(0x10000+3*PageSize, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	lo, hi, err := m.ExecRegion(0x10000 + PageSize + 12)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0x10000 || hi != 0x10000+3*PageSize {
		t.Fatalf("ExecRegion = [%#x, %#x), want [%#x, %#x)", lo, hi, 0x10000, 0x10000+3*PageSize)
	}
	// Non-executable and unmapped addresses return the CheckFetch error.
	if _, _, err := m.ExecRegion(0x10000 + 3*PageSize); err == nil {
		t.Fatal("ExecRegion on an RW page succeeded")
	}
	if _, _, err := m.ExecRegion(0x90000); err == nil {
		t.Fatal("ExecRegion on an unmapped page succeeded")
	}
}

func TestGenBumpsOnMapAndProtect(t *testing.T) {
	m := New()
	g0 := m.Gen()
	if err := m.Map(0x1000, PageSize, PermRX); err != nil {
		t.Fatal(err)
	}
	g1 := m.Gen()
	if g1 == g0 {
		t.Fatal("Map did not bump the generation")
	}
	if err := m.Protect(0x1000, PageSize, PermR); err != nil {
		t.Fatal(err)
	}
	if m.Gen() == g1 {
		t.Fatal("Protect did not bump the generation")
	}
}

// The data lookaside (the last read-permitted and write-permitted
// page) must be semantically invisible: these tests drive each edge
// where a stale entry could change behaviour.

func TestTLBProtectRevokesCachedPage(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermRW)
	// Prime both lookaside entries with full-permission accesses.
	if err := m.Write64(0x1000, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read64(0x1000); err != nil {
		t.Fatal(err)
	}
	// Downgrade to read-only: the cached write entry must not let a
	// write through.
	if err := m.Protect(0x1000, PageSize, PermR); err != nil {
		t.Fatal(err)
	}
	if err := m.Write64(0x1000, 8); err == nil {
		t.Error("Write64 through a stale lookaside entry succeeded after Protect")
	}
	if err := m.Write8(0x1000, 8); err == nil {
		t.Error("Write8 through a stale lookaside entry succeeded after Protect")
	}
	if v, err := m.Read64(0x1000); err != nil || v != 7 {
		t.Errorf("read-only page unreadable after Protect: %d, %v", v, err)
	}
	// Downgrade to write-only: the cached read entry must miss too.
	if err := m.Protect(0x1000, PageSize, PermW); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read64(0x1000); err == nil {
		t.Error("Read64 through a stale lookaside entry succeeded after Protect")
	}
	if _, err := m.Read8(0x1000); err == nil {
		t.Error("Read8 through a stale lookaside entry succeeded after Protect")
	}
}

func TestTLBStraddleStillFaultsExactly(t *testing.T) {
	// A primed lookaside entry covers the page, but a word straddling
	// its end must still take the slow path and fault identically.
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermRW)
	if err := m.Write64(0x1000, 1); err != nil { // prime
		t.Fatal(err)
	}
	edge := uint64(0x1000) + PageSize - 4
	var f *Fault
	if err := m.Write64(edge, 2); err == nil {
		t.Error("straddling Write64 succeeded via the lookaside")
	} else if !errors.As(err, &f) {
		t.Errorf("straddling Write64 error is not a *Fault: %v", err)
	}
	if _, err := m.Read64(edge); err == nil {
		t.Error("straddling Read64 succeeded via the lookaside")
	}
}

func TestTLBCloneStartsCold(t *testing.T) {
	// Clone builds fresh page objects; a lookaside primed on the
	// source must not alias them — writes through it stay in the
	// source, and the clone diverges permissions independently.
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermRW)
	if err := m.Write64(0x1000, 1); err != nil { // prime source TLB
		t.Fatal(err)
	}
	c := m.Clone()
	if err := m.Write64(0x1000, 2); err != nil { // lookaside-hit path
		t.Fatal(err)
	}
	if v, _ := c.Read64(0x1000); v != 1 {
		t.Errorf("source lookaside write leaked into clone: %d", v)
	}
	if err := c.Protect(0x1000, PageSize, PermR); err != nil {
		t.Fatal(err)
	}
	if err := m.Write64(0x1000, 3); err != nil {
		t.Errorf("clone Protect affected source writes: %v", err)
	}
}

func TestTLBSeesInPlaceMutation(t *testing.T) {
	// The lookaside caches the page object, not its bytes: an
	// adversary Poke mutating the page in place must be visible to a
	// lookaside-hit read immediately.
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermRW)
	if err := m.Write64(0x1000, 0xAAAA); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read64(0x1000); err != nil { // prime read entry
		t.Fatal(err)
	}
	adv := NewAdversary(m)
	if err := adv.Poke(0x1000, 0xBBBB); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read64(0x1000); v != 0xBBBB {
		t.Errorf("lookaside read returned stale data %#x after Poke", v)
	}
}
