package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustMap(t *testing.T, m *Memory, addr, size uint64, perm Perm) {
	t.Helper()
	if err := m.Map(addr, size, perm); err != nil {
		t.Fatalf("Map(%#x, %d, %s): %v", addr, size, perm, err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermRW)
	f := func(off uint16, v uint64) bool {
		addr := 0x1000 + uint64(off)%(PageSize-8)
		if err := m.Write64(addr, v); err != nil {
			return false
		}
		got, err := m.Read64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermRW)
	if err := m.Write64(0x1000, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	b, err := m.Read8(0x1000)
	if err != nil || b != 0x08 {
		t.Errorf("byte 0 = %#x, err %v; want 0x08", b, err)
	}
	b, _ = m.Read8(0x1007)
	if b != 0x01 {
		t.Errorf("byte 7 = %#x, want 0x01", b)
	}
}

func TestUnmappedFaults(t *testing.T) {
	m := New()
	if _, err := m.Read64(0x1000); err == nil {
		t.Error("read of unmapped memory did not fault")
	}
	var f *Fault
	_, err := m.Read64(0x1000)
	if !errors.As(err, &f) {
		t.Fatalf("error is not a *Fault: %v", err)
	}
	if f.Kind != AccessRead || f.Addr != 0x1000 {
		t.Errorf("fault = %+v", f)
	}
}

func TestPermissionEnforcement(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermR)   // read-only
	mustMap(t, m, 0x10000, PageSize, PermRX) // code
	mustMap(t, m, 0x20000, PageSize, PermRW) // data

	if err := m.Write64(0x1000, 1); err == nil {
		t.Error("write to read-only page succeeded")
	}
	if err := m.CheckFetch(0x1000); err == nil {
		t.Error("fetch from non-executable page succeeded")
	}
	if err := m.CheckFetch(0x10000); err != nil {
		t.Errorf("fetch from code page faulted: %v", err)
	}
	if err := m.Write64(0x10000, 1); err == nil {
		t.Error("write to code page succeeded (W⊕X broken)")
	}
	if err := m.CheckFetch(0x20000); err == nil {
		t.Error("fetch from data page succeeded (W⊕X broken)")
	}
}

func TestWXMappingRejected(t *testing.T) {
	m := New()
	if err := m.Map(0x1000, PageSize, PermR|PermW|PermX); err == nil {
		t.Error("W+X mapping accepted")
	}
	mustMap(t, m, 0x1000, PageSize, PermRW)
	if err := m.Protect(0x1000, PageSize, PermW|PermX); err == nil {
		t.Error("W+X protect accepted")
	}
}

func TestOverlappingMapRejected(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, 2*PageSize, PermRW)
	if err := m.Map(0x1800, PageSize, PermR); err == nil {
		t.Error("overlapping map accepted")
	}
	if err := m.Map(0x1000, 0, PermR); err == nil {
		t.Error("zero-size map accepted")
	}
}

func TestProtectChangesPerms(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermRW)
	if err := m.Write64(0x1000, 42); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(0x1000, PageSize, PermR); err != nil {
		t.Fatal(err)
	}
	if err := m.Write64(0x1000, 43); err == nil {
		t.Error("write after downgrade to read-only succeeded")
	}
	v, err := m.Read64(0x1000)
	if err != nil || v != 42 {
		t.Errorf("data lost across Protect: %d, %v", v, err)
	}
	if err := m.Protect(0x5000, PageSize, PermR); err == nil {
		t.Error("protect of unmapped page succeeded")
	}
}

func TestPageStraddleRejected(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, 2*PageSize, PermRW)
	if _, err := m.Read64(0x1000 + PageSize - 4); err == nil {
		t.Error("straddling word read succeeded")
	}
	// Byte-wise access across the boundary is fine.
	if err := m.WriteBytes(0x1000+PageSize-4, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Errorf("byte-wise straddle failed: %v", err)
	}
	got, err := m.ReadBytes(0x1000+PageSize-4, 8)
	if err != nil || got[7] != 8 {
		t.Errorf("ReadBytes = %v, %v", got, err)
	}
}

func TestPermString(t *testing.T) {
	if s := PermRW.String(); s != "rw-" {
		t.Errorf("PermRW = %q", s)
	}
	if s := PermRX.String(); s != "r-x" {
		t.Errorf("PermRX = %q", s)
	}
	if s := Perm(0).String(); s != "---" {
		t.Errorf("Perm(0) = %q", s)
	}
}

func TestAdversaryPeekIgnoresPerms(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, Perm(0)) // no access at all
	adv := NewAdversary(m)
	if _, err := adv.Peek(0x1000); err != nil {
		t.Errorf("adversary could not read a no-access page: %v", err)
	}
	if _, err := adv.Peek(0x9000); err == nil {
		t.Error("adversary read unmapped memory")
	}
}

func TestAdversaryPokeRespectsWX(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermR) // read-only data
	mustMap(t, m, 0x2000, PageSize, PermRX)
	adv := NewAdversary(m)
	if err := adv.Poke(0x1000, 0xdead); err != nil {
		t.Errorf("adversary blocked from read-only data page: %v", err)
	}
	v, _ := m.Read64(0x1000)
	if v != 0xdead {
		t.Errorf("poke did not land: %#x", v)
	}
	if err := adv.Poke(0x2000, 0xdead); err == nil {
		t.Error("adversary modified executable memory")
	}
}

func TestAdversaryScan(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermRW)
	for i := uint64(0); i < 4; i++ {
		if err := m.Write64(0x1000+8*i, 100+i); err != nil {
			t.Fatal(err)
		}
	}
	got, err := NewAdversary(m).Scan(0x1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint64(100+i) {
			t.Errorf("scan[%d] = %d", i, v)
		}
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Addr: 0x42, Kind: AccessFetch, Reason: "unmapped"}
	want := "mem: fetch fault at 0x42: unmapped"
	if f.Error() != want {
		t.Errorf("Error() = %q, want %q", f.Error(), want)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New()
	mustMap(t, m, 0x1000, PageSize, PermRW)
	mustMap(t, m, 0x3000, PageSize, PermRX)
	if err := m.Write64(0x1000, 42); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	// Same contents and permissions...
	if v, _ := c.Read64(0x1000); v != 42 {
		t.Errorf("clone lost data: %d", v)
	}
	if c.Perm(0x3000) != PermRX {
		t.Errorf("clone lost permissions: %v", c.Perm(0x3000))
	}
	// ...but writes diverge both ways.
	if err := c.Write64(0x1000, 43); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read64(0x1000); v != 42 {
		t.Error("clone write leaked into the original")
	}
	if err := m.Write64(0x1008, 99); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Read64(0x1008); v == 99 {
		t.Error("original write leaked into the clone")
	}
	// New mappings do not propagate either.
	mustMap(t, c, 0x5000, PageSize, PermRW)
	if m.Mapped(0x5000) {
		t.Error("clone mapping appeared in the original")
	}
}
