package mem

import "fmt"

// Adversary is the attacker's window onto a process address space,
// implementing the adversary model of Section 3: arbitrary read of the
// whole address space and arbitrary write to data pages, but no
// modification of executable memory (W⊕X, assumption A1) and no access
// to registers or kernel state.
//
// All attack code in internal/attack goes through this type, so the
// power granted to the attacker is auditable in one place.
type Adversary struct {
	m *Memory
}

// NewAdversary returns an attacker view of m.
func NewAdversary(m *Memory) *Adversary { return &Adversary{m: m} }

// Peek reads a 64-bit word from anywhere in mapped memory, ignoring
// page permissions — the adversary model grants full disclosure (R2
// is about tolerating exactly this).
func (a *Adversary) Peek(addr uint64) (uint64, error) {
	pg, ok := a.m.pages[addr/PageSize]
	if !ok {
		return 0, &Fault{Addr: addr, Kind: AccessRead, Reason: "unmapped"}
	}
	off := int(addr % PageSize)
	if off+8 > PageSize {
		return 0, &Fault{Addr: addr, Kind: AccessRead, Reason: "access straddles page boundary"}
	}
	return le64(pg.data[off:]), nil
}

// Poke writes a 64-bit word to any mapped non-executable page. Writes
// to executable pages are refused: code is protected by W⊕X.
func (a *Adversary) Poke(addr, v uint64) error {
	pg, ok := a.m.pages[addr/PageSize]
	if !ok {
		return &Fault{Addr: addr, Kind: AccessWrite, Reason: "unmapped"}
	}
	if pg.perm&PermX != 0 {
		return fmt.Errorf("mem: adversary write to executable page %#x blocked by W⊕X", addr)
	}
	off := int(addr % PageSize)
	if off+8 > PageSize {
		return &Fault{Addr: addr, Kind: AccessWrite, Reason: "access straddles page boundary"}
	}
	putLE64(pg.data[off:], v)
	return nil
}

// Scan reads n consecutive 64-bit words starting at addr.
func (a *Adversary) Scan(addr uint64, n int) ([]uint64, error) {
	out := make([]uint64, n)
	for i := range out {
		v, err := a.Peek(addr + uint64(8*i))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
