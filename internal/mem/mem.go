// Package mem provides the simulated process address space: sparse,
// paged, little-endian memory with per-page permissions.
//
// The W⊕X policy of the PACStack adversary model (assumption A1) is
// enforced structurally: a page can never be mapped or re-protected
// as both writable and executable, and the adversary's raw-access
// window (Adversary) can corrupt any readable data but can never
// touch executable pages.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Perm is a page permission bit set.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
)

// Common permission combinations.
const (
	PermRW = PermR | PermW
	PermRX = PermR | PermX
)

// String renders the permissions in ls -l style, e.g. "rw-".
func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// AccessKind distinguishes the operation that faulted.
type AccessKind int

// Kinds of memory access.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessFetch
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessFetch:
		return "fetch"
	}
	return "access"
}

// Fault is a memory access violation: unmapped address or permission
// mismatch. It corresponds to the MMU translation/permission faults
// that terminate a process under the paper's "failed guess crashes the
// program" assumption.
type Fault struct {
	Addr   uint64
	Kind   AccessKind
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mem: %s fault at %#x: %s", f.Kind, f.Addr, f.Reason)
}

// PageSize is the simulated page granularity.
const PageSize = 4096

type page struct {
	perm Perm
	data [PageSize]byte
}

// Memory is one simulated address space. It is not safe for
// concurrent mutation; the kernel serializes access, matching a
// single-core interleaving model.
type Memory struct {
	pages map[uint64]*page
	// gen counts mapping/permission changes. Fetch-permission caches
	// (cpu.Machine's executable-window cache) key on it so they only
	// re-walk pages after a Map or Protect.
	gen uint64

	// Data lookaside: the last page served for a read and for a write,
	// with the permission check already passed. A nil page marks the
	// entry invalid; Map, Protect and FromPages invalidate both (any
	// mapping or permission change might revoke what the entry
	// proved), so the fast path needs no generation compare. Clone
	// copies neither entry — the clone's pages are fresh objects.
	lrNum uint64 // page number of lrPg
	lrPg  *page  // last read-permitted page, or nil
	lwNum uint64
	lwPg  *page // last write-permitted page, or nil
}

// dropTLB invalidates the data lookaside entries.
func (m *Memory) dropTLB() {
	m.lrPg = nil
	m.lwPg = nil
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// Gen returns the mapping generation: it changes whenever a Map or
// Protect could have altered which addresses are executable, so any
// cached fetch-permission decision taken at an older generation must
// be revalidated.
func (m *Memory) Gen() uint64 { return m.gen }

// Clone returns a deep copy of the address space: the copy-on-write
// effect of fork, fully materialized. Used by the kernel's fork and
// by attack harnesses that replay a process from a snapshot.
func (m *Memory) Clone() *Memory {
	c := &Memory{pages: make(map[uint64]*page, len(m.pages)), gen: m.gen}
	for k, pg := range m.pages {
		cp := *pg
		c.pages[k] = &cp
	}
	return c
}

// Map creates pages covering [addr, addr+size) with the given
// permissions. Mapping W+X is rejected (W⊕X), as is overlapping an
// existing mapping.
func (m *Memory) Map(addr, size uint64, perm Perm) error {
	if perm&PermW != 0 && perm&PermX != 0 {
		return fmt.Errorf("mem: W+X mapping at %#x violates W⊕X", addr)
	}
	if size == 0 {
		return fmt.Errorf("mem: zero-size mapping at %#x", addr)
	}
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for p := first; p <= last; p++ {
		if _, ok := m.pages[p]; ok {
			return fmt.Errorf("mem: mapping at %#x overlaps existing page %#x", addr, p*PageSize)
		}
	}
	for p := first; p <= last; p++ {
		m.pages[p] = &page{perm: perm}
	}
	m.gen++
	m.dropTLB()
	return nil
}

// Protect changes the permissions of already-mapped pages. W+X is
// rejected.
func (m *Memory) Protect(addr, size uint64, perm Perm) error {
	if perm&PermW != 0 && perm&PermX != 0 {
		return fmt.Errorf("mem: W+X protection at %#x violates W⊕X", addr)
	}
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for p := first; p <= last; p++ {
		if _, ok := m.pages[p]; !ok {
			return &Fault{Addr: p * PageSize, Kind: AccessWrite, Reason: "protect of unmapped page"}
		}
	}
	for p := first; p <= last; p++ {
		m.pages[p].perm = perm
	}
	m.gen++
	m.dropTLB()
	return nil
}

// Perm returns the permissions of the page containing addr, or 0 if
// unmapped.
func (m *Memory) Perm(addr uint64) Perm {
	pg, ok := m.pages[addr/PageSize]
	if !ok {
		return 0
	}
	return pg.perm
}

// Mapped reports whether addr lies in a mapped page.
func (m *Memory) Mapped(addr uint64) bool {
	_, ok := m.pages[addr/PageSize]
	return ok
}

func (m *Memory) access(addr uint64, n int, kind AccessKind, need Perm) (*page, int, error) {
	pg, ok := m.pages[addr/PageSize]
	if !ok {
		return nil, 0, &Fault{Addr: addr, Kind: kind, Reason: "unmapped"}
	}
	off := int(addr % PageSize)
	if off+n > PageSize {
		// Multi-page accesses are handled byte-wise by callers; the
		// word accessors reject page-straddling for simplicity.
		return nil, 0, &Fault{Addr: addr, Kind: kind, Reason: "access straddles page boundary"}
	}
	if pg.perm&need != need {
		return nil, 0, &Fault{Addr: addr, Kind: kind,
			Reason: fmt.Sprintf("permission %s lacks %s", pg.perm, need)}
	}
	return pg, off, nil
}

// Read64 loads a little-endian 64-bit word.
func (m *Memory) Read64(addr uint64) (uint64, error) {
	if pg := m.lrPg; pg != nil && addr/PageSize == m.lrNum {
		if off := addr % PageSize; off <= PageSize-8 {
			return le64(pg.data[off:]), nil
		}
		// Page-straddling word: fall through for the exact fault.
	}
	pg, off, err := m.access(addr, 8, AccessRead, PermR)
	if err != nil {
		return 0, err
	}
	m.lrNum, m.lrPg = addr/PageSize, pg
	return le64(pg.data[off:]), nil
}

// Write64 stores a little-endian 64-bit word.
func (m *Memory) Write64(addr, v uint64) error {
	if pg := m.lwPg; pg != nil && addr/PageSize == m.lwNum {
		if off := addr % PageSize; off <= PageSize-8 {
			putLE64(pg.data[off:], v)
			return nil
		}
	}
	pg, off, err := m.access(addr, 8, AccessWrite, PermW)
	if err != nil {
		return err
	}
	m.lwNum, m.lwPg = addr/PageSize, pg
	putLE64(pg.data[off:], v)
	return nil
}

// Read8 loads one byte.
func (m *Memory) Read8(addr uint64) (byte, error) {
	if pg := m.lrPg; pg != nil && addr/PageSize == m.lrNum {
		return pg.data[addr%PageSize], nil
	}
	pg, off, err := m.access(addr, 1, AccessRead, PermR)
	if err != nil {
		return 0, err
	}
	m.lrNum, m.lrPg = addr/PageSize, pg
	return pg.data[off], nil
}

// Write8 stores one byte.
func (m *Memory) Write8(addr uint64, v byte) error {
	if pg := m.lwPg; pg != nil && addr/PageSize == m.lwNum {
		pg.data[addr%PageSize] = v
		return nil
	}
	pg, off, err := m.access(addr, 1, AccessWrite, PermW)
	if err != nil {
		return err
	}
	m.lwNum, m.lwPg = addr/PageSize, pg
	pg.data[off] = v
	return nil
}

// CheckFetch verifies that addr may be executed from.
func (m *Memory) CheckFetch(addr uint64) error {
	_, _, err := m.access(addr, 1, AccessFetch, PermX)
	return err
}

// ExecRegion returns the maximal contiguous executable window
// [lo, hi) containing addr, or the fetch fault for addr when its page
// is not executable. Together with Gen it backs the CPU's fetch fast
// path: a fetch inside a previously returned window at an unchanged
// generation needs no page walk at all.
func (m *Memory) ExecRegion(addr uint64) (lo, hi uint64, err error) {
	if _, _, err := m.access(addr, 1, AccessFetch, PermX); err != nil {
		return 0, 0, err
	}
	first := addr / PageSize
	last := first
	for first > 0 {
		pg, ok := m.pages[first-1]
		if !ok || pg.perm&PermX == 0 {
			break
		}
		first--
	}
	for {
		pg, ok := m.pages[last+1]
		if !ok || pg.perm&PermX == 0 {
			break
		}
		last++
	}
	return first * PageSize, (last + 1) * PageSize, nil
}

// ReadBytes copies size bytes starting at addr, page at a time.
func (m *Memory) ReadBytes(addr, size uint64) ([]byte, error) {
	out := make([]byte, size)
	for done := uint64(0); done < size; {
		a := addr + done
		n := PageSize - int(a%PageSize)
		if rem := size - done; rem < uint64(n) {
			n = int(rem)
		}
		pg, off, err := m.access(a, n, AccessRead, PermR)
		if err != nil {
			return nil, err
		}
		copy(out[done:], pg.data[off:off+n])
		done += uint64(n)
	}
	return out, nil
}

// WriteBytes stores b starting at addr, page at a time. On a fault
// mid-copy, every byte before the faulting page has been written,
// matching the byte-wise semantics (permissions are per page, so a
// fault can only occur at a page boundary).
func (m *Memory) WriteBytes(addr uint64, b []byte) error {
	for done := 0; done < len(b); {
		a := addr + uint64(done)
		n := PageSize - int(a%PageSize)
		if rem := len(b) - done; rem < n {
			n = rem
		}
		pg, off, err := m.access(a, n, AccessWrite, PermW)
		if err != nil {
			return err
		}
		copy(pg.data[off:off+n], b[done:done+n])
		done += n
	}
	return nil
}

// PageState is one mapped page in exportable form, used by the
// checkpoint/restore subsystem (internal/snap) to serialize an
// address space.
type PageState struct {
	Addr uint64 // page-aligned base address
	Perm Perm
	Data []byte // exactly PageSize bytes
}

// Pages returns every mapped page sorted by address, with the data
// deep-copied: a point-in-time snapshot of the whole address space.
func (m *Memory) Pages() []PageState {
	out := make([]PageState, 0, len(m.pages))
	for num, pg := range m.pages {
		data := make([]byte, PageSize)
		copy(data, pg.data[:])
		out = append(out, PageState{Addr: num * PageSize, Perm: pg.perm, Data: data})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// FromPages reconstructs an address space from a page snapshot. The
// same structural invariants as Map apply: page-aligned addresses, no
// duplicates, no W+X permissions; data must be exactly PageSize bytes
// (shorter slices are accepted and zero-extended, the codec trims
// trailing zeros).
func FromPages(pages []PageState) (*Memory, error) {
	m := New()
	for _, ps := range pages {
		if ps.Addr%PageSize != 0 {
			return nil, fmt.Errorf("mem: page address %#x not page-aligned", ps.Addr)
		}
		if ps.Perm&PermW != 0 && ps.Perm&PermX != 0 {
			return nil, fmt.Errorf("mem: W+X page at %#x violates W⊕X", ps.Addr)
		}
		if len(ps.Data) > PageSize {
			return nil, fmt.Errorf("mem: page at %#x has %d bytes of data", ps.Addr, len(ps.Data))
		}
		num := ps.Addr / PageSize
		if _, ok := m.pages[num]; ok {
			return nil, fmt.Errorf("mem: duplicate page at %#x", ps.Addr)
		}
		pg := &page{perm: ps.Perm}
		copy(pg.data[:], ps.Data)
		m.pages[num] = pg
	}
	m.gen++
	return m, nil
}

func le64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

func putLE64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
