package pool_test

import (
	"fmt"
	"sync"
	"testing"

	"pacstack/internal/compile"
	"pacstack/internal/fault"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
	"pacstack/internal/pool"
	"pacstack/internal/supervise"
	"pacstack/internal/telemetry"
)

func newChainPool(t *testing.T, cfg pool.Config) (*pool.Pool, *compile.Image) {
	t.Helper()
	eng := fault.NewEngine(fault.DefaultProgram())
	img, err := eng.Image(compile.SchemePACStack)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Img = img
	cfg.PA = pa.DefaultConfig()
	if cfg.Configure == nil {
		cfg.Configure = func(p *kernel.Process) { fault.Harden(compile.SchemePACStack, p) }
	}
	pl, err := pool.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pl, img
}

// TestKeyFreshness is the §4.3 property test: N warm restores from the
// same boot image must yield machines that (a) pairwise fail
// supervise.SharedKeys, (b) produce pairwise-distinct chain seals for
// the same (pointer, modifier), and (c) reject seals minted under the
// image keys. The restores run concurrently so the race detector
// sweeps the pool's lease/reset paths too.
func TestKeyFreshness(t *testing.T) {
	reg := telemetry.NewRegistry()
	pl, _ := newChainPool(t, pool.Config{Seed: 3, Tel: pool.NewTelemetry(reg)})

	const n = 8
	machines := make([]*pool.Machine, n)
	procs := make([]*kernel.Process, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := pl.Get()
			if m == nil {
				errs[i] = fmt.Errorf("uncapped pool refused a lease")
				return
			}
			m.K.Seed(int64(100 + i))
			p, err := pl.Reset(m)
			if err != nil {
				errs[i] = err
				return
			}
			machines[i], procs[i] = m, p
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("restore %d: %v", i, err)
		}
	}

	const ptr, mod = 0x20080, 0xbeef
	seals := make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if supervise.SharedKeys(procs[i], procs[j]) {
				t.Fatalf("machines %d and %d share PA keys after warm restore", i, j)
			}
		}
		seal := procs[i].Auth.AddPAC(pa.KeyIA, ptr, mod)
		if prev, dup := seals[seal]; dup {
			t.Fatalf("machines %d and %d produced the same chain seal %016x", prev, i, seal)
		}
		seals[seal] = i
	}

	if v := pl.Tel().KeyViolations.Value(); v != 0 {
		t.Fatalf("key violations counted on fresh restores: %d", v)
	}
	if r := pl.Tel().Restores.Value(); r != n {
		t.Fatalf("restores counter %d, want %d", r, n)
	}
	if occ := pl.Tel().Occupancy.Value(); occ != n {
		t.Fatalf("occupancy %d with %d leased", occ, n)
	}
	for _, m := range machines {
		pl.Put(m)
	}
	if occ := pl.Tel().Occupancy.Value(); occ != 0 {
		t.Fatalf("occupancy %d after returning every lease", occ)
	}
}

// TestDrawParity pins the property the warm-vs-cold gate rests on: a
// warm Reset seeded with S consumes the identical kernel entropy
// stream as a cold boot seeded with S — same keys (SharedKeys true
// across the pair!), and an identical golden replay.
func TestDrawParity(t *testing.T) {
	pl, img := newChainPool(t, pool.Config{Seed: 3})
	const seed = 4242

	ck := kernel.New(pa.DefaultConfig())
	ck.Seed(seed)
	cold, err := img.Boot(ck)
	if err != nil {
		t.Fatal(err)
	}
	fault.Harden(compile.SchemePACStack, cold)

	m := pl.Get()
	m.K.Seed(seed)
	warm, err := pl.Reset(m)
	if err != nil {
		t.Fatal(err)
	}

	if !supervise.SharedKeys(cold, warm) {
		t.Fatal("same seed produced different keys warm vs cold — entropy draw order diverged")
	}
	if err := cold.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if err := warm.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if string(cold.Output) != string(warm.Output) || cold.ExitCode != warm.ExitCode ||
		cold.Cycles() != warm.Cycles() {
		t.Fatalf("warm run diverged from cold: output %q/%q exit %d/%d cycles %d/%d",
			warm.Output, cold.Output, warm.ExitCode, cold.ExitCode, warm.Cycles(), cold.Cycles())
	}
}

// TestColdFallback: a capped pool with every machine leased refuses
// the next lease and counts it — the serving layer's signal to cold
// boot.
func TestColdFallback(t *testing.T) {
	reg := telemetry.NewRegistry()
	pl, _ := newChainPool(t, pool.Config{Seed: 3, MaxMachines: 2, Tel: pool.NewTelemetry(reg)})
	a, b := pl.Get(), pl.Get()
	if a == nil || b == nil {
		t.Fatal("capped pool refused leases under its cap")
	}
	if m := pl.Get(); m != nil {
		t.Fatal("capped pool grew past MaxMachines")
	}
	if v := pl.Tel().ColdFallback.Value(); v != 1 {
		t.Fatalf("cold fallbacks %d, want 1", v)
	}
	pl.Put(a)
	if m := pl.Get(); m == nil {
		t.Fatal("returned machine not leasable")
	}
}

// TestReuseStaysGolden: a machine that already executed a request
// replays golden after the next Reset — the restore really does wipe
// the previous incarnation.
func TestReuseStaysGolden(t *testing.T) {
	pl, _ := newChainPool(t, pool.Config{Seed: 3})
	eng := fault.NewEngine(fault.DefaultProgram())
	goldenOut, goldenExit, _, err := eng.Golden(compile.SchemePACStack)
	if err != nil {
		t.Fatal(err)
	}
	m := pl.Get()
	for i := 0; i < 3; i++ {
		m.K.Seed(int64(7 + i))
		p, err := pl.Reset(m)
		if err != nil {
			t.Fatalf("reset %d: %v", i, err)
		}
		if err := p.Run(1 << 20); err != nil {
			t.Fatalf("run %d: %v (kill=%v)", i, err, p.Kill)
		}
		if string(p.Output) != string(goldenOut) || p.ExitCode != goldenExit {
			t.Fatalf("run %d diverged: output %q exit %d", i, p.Output, p.ExitCode)
		}
	}
}

// TestAdopt: re-pooling a shipped boot image (the migration path)
// swaps the probe keys too — resets against the adopted image stay
// fresh and golden.
func TestAdopt(t *testing.T) {
	pl, img := newChainPool(t, pool.Config{Seed: 3})
	donor, _ := newChainPool(t, pool.Config{Seed: 99})
	if err := pl.Adopt(donor.Image()); err != nil {
		t.Fatal(err)
	}
	m := pl.Get()
	m.K.Seed(55)
	p, err := pl.Reset(m)
	if err != nil {
		t.Fatal(err)
	}
	imgAuth := pa.New(donor.Image().Keys(), kernel.New(pa.DefaultConfig()).Config())
	sealed := imgAuth.AddPAC(pa.KeyIA, 0x10040, 0xfeed)
	if _, ok := p.Auth.Auth(pa.KeyIA, sealed, 0xfeed); ok {
		t.Fatal("reset against adopted image still authenticates its image keys")
	}
	if err := p.Run(1 << 20); err != nil {
		t.Fatalf("adopted-image replay killed: %v", err)
	}
	_ = img
}
