// Package pool is the warm-pool fork-server: a per-(program, scheme)
// pool of pre-booted simulated machines served by snapshot restore
// instead of per-request cold boot.
//
// A production fork-server checkpoints one initialized parent and
// fork()s a child per request. This pool does the same with the
// repository's own machinery: at construction it boots one hardened
// machine, checkpoints it through the internal/snap wire codec into a
// shared in-memory snap.BootImage, and then serves every request by
// restoring a pooled machine from that image — page copies instead of
// text encoding, mapping and hardening from scratch.
//
// The security obligation is PACStack §4.3: security across
// exec-style respawn hinges on fresh PA keys per incarnation, so a
// warm restore must never serve under keys any other live machine (or
// the boot image itself) holds. Reset therefore re-seeds the PA keys
// and the stack canary on every restore, in exactly the entropy-draw
// order a cold boot uses (one key set, then one canary word) — which
// is also what makes a warm request's outcome bit-identical to the
// cold boot it replaces — and then probes the fresh incarnation
// against the image keys, refusing to serve on a match.
//
// Machines are kept on per-worker shards (one free list per
// internal/par worker, default) with a global overflow list, so the
// parallel precompute phase of the soak leases mostly contention-free.
// An uncapped pool grows on demand and never fails a lease; a capped
// pool reports exhaustion and the serving layer falls back to a cold
// boot, counted in pacstack_pool_cold_fallback_total.
package pool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pacstack/internal/compile"
	"pacstack/internal/kernel"
	"pacstack/internal/mem"
	"pacstack/internal/pa"
	"pacstack/internal/par"
	"pacstack/internal/snap"
	"pacstack/internal/telemetry"
)

// Config parameterises a Pool.
type Config struct {
	// Img is the compiled program image machines boot from.
	Img *compile.Image
	// Configure runs on every machine after boot and after every
	// restore — the scheme hardening hook (fault.Harden). It must be
	// idempotent and must not draw kernel entropy.
	Configure func(p *kernel.Process)
	// PA is the kernel PA configuration (pa.DefaultConfig in serving).
	PA pa.Config
	// Seed, when non-zero, seeds the template kernel so the boot image
	// is reproducible. The template's keys never serve traffic either
	// way: every Reset reseeds.
	Seed int64
	// Shards is the free-list shard count; default par.Workers().
	ShardCap int // free machines kept per shard before overflow; default 4
	Shards   int
	// MaxMachines caps the pool's total machine count; 0 means grow on
	// demand without bound (Get never fails). When the cap is hit and
	// every machine is leased, Get returns nil and the caller cold-boots.
	MaxMachines int
	// Tel receives the pool's counters; nil handles are no-ops.
	Tel *Telemetry
}

// Telemetry is the pool's registry handle block. All fields are
// nil-safe.
type Telemetry struct {
	Occupancy     *telemetry.Gauge   // machines currently leased
	Restores      *telemetry.Counter // warm restores served
	ColdFallback  *telemetry.Counter // leases refused (capped pool exhausted)
	KeyViolations *telemetry.Counter // resets that still held image keys
}

// NewTelemetry resolves the pool handle block against reg.
func NewTelemetry(reg *telemetry.Registry) *Telemetry {
	return &Telemetry{
		Occupancy:     reg.Gauge("pacstack_pool_occupancy", "warm-pool machines currently leased to requests"),
		Restores:      reg.Counter("pacstack_pool_restores_total", "warm restores served from the boot image"),
		ColdFallback:  reg.Counter("pacstack_pool_cold_fallback_total", "leases refused by an exhausted capped pool (request cold-booted)"),
		KeyViolations: reg.Counter("pacstack_pool_key_violations_total", "warm restores that still authenticated image-key seals (§4.3 violation)"),
	}
}

// Machine is one pooled simulated machine: a kernel (re-seeded per
// request) and its booted process (overwritten from the boot image per
// request).
type Machine struct {
	K     *kernel.Kernel
	Proc  *kernel.Process
	shard int
}

type shard struct {
	mu   sync.Mutex
	free []*Machine
}

// Pool is a warm pool for one (program image, scheme) pair. All
// methods are safe for concurrent use.
type Pool struct {
	cfg Config
	tel *Telemetry

	mu      sync.RWMutex // guards boot / imgAuth (swapped by Adopt)
	boot    *snap.BootImage
	imgAuth *pa.Authenticator // probe authenticator under the image keys

	shards   []shard
	overflow shard

	created atomic.Int64
	hint    atomic.Uint64
}

// New builds the pool: boot one template machine, harden it, and
// checkpoint it through the snap codec into the shared boot image.
// Machines themselves are created lazily by Get.
func New(cfg Config) (*Pool, error) {
	if cfg.Img == nil {
		return nil, fmt.Errorf("pool: nil image")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = par.Workers()
	}
	if cfg.ShardCap <= 0 {
		cfg.ShardCap = 4
	}
	if cfg.Tel == nil {
		cfg.Tel = &Telemetry{}
	}
	k := kernel.New(cfg.PA)
	if cfg.Seed != 0 {
		k.Seed(cfg.Seed)
	}
	tpl, err := cfg.Img.Boot(k)
	if err != nil {
		return nil, fmt.Errorf("pool: booting template: %w", err)
	}
	if cfg.Configure != nil {
		cfg.Configure(tpl)
	}
	bi, err := snap.EncodeBootImage(tpl, cfg.Img.Prog)
	if err != nil {
		return nil, fmt.Errorf("pool: checkpointing template: %w", err)
	}
	return &Pool{
		cfg:     cfg,
		tel:     cfg.Tel,
		boot:    bi,
		imgAuth: pa.New(bi.Keys(), cfg.PA),
		shards:  make([]shard, cfg.Shards),
	}, nil
}

// Image returns the pool's current boot image.
func (p *Pool) Image() *snap.BootImage {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.boot
}

// Adopt replaces the pool's boot image — the migration path: a
// survivor backend re-pools the boot image shipped from a dead
// backend. The image must be taken from the pool's program; pooled
// machines pick the new image up on their next Reset.
func (p *Pool) Adopt(bi *snap.BootImage) error {
	if err := bi.VerifyProgram(p.cfg.Img.Prog); err != nil {
		return fmt.Errorf("pool: adopting foreign image: %w", err)
	}
	p.mu.Lock()
	p.boot = bi
	p.imgAuth = pa.New(bi.Keys(), p.cfg.PA)
	p.mu.Unlock()
	return nil
}

// Tel returns the pool's telemetry handle block.
func (p *Pool) Tel() *Telemetry { return p.tel }

// Size reports how many machines the pool has ever created.
func (p *Pool) Size() int { return int(p.created.Load()) }

// Get leases a machine: own shard first, then the overflow list, then
// work stealing across the other shards, then growth (uncapped pools
// only). A capped, exhausted pool returns nil — the cold-fallback
// signal, counted in pacstack_pool_cold_fallback_total.
func (p *Pool) Get() *Machine {
	h := int(p.hint.Add(1)-1) % len(p.shards)
	if m := p.shards[h].pop(); m != nil {
		p.tel.Occupancy.Add(1)
		return m
	}
	if m := p.overflow.pop(); m != nil {
		p.tel.Occupancy.Add(1)
		return m
	}
	for i := 1; i < len(p.shards); i++ {
		if m := p.shards[(h+i)%len(p.shards)].pop(); m != nil {
			p.tel.Occupancy.Add(1)
			return m
		}
	}
	if p.cfg.MaxMachines > 0 && int(p.created.Add(1)) > p.cfg.MaxMachines {
		p.created.Add(-1)
		p.tel.ColdFallback.Inc()
		return nil
	}
	if p.cfg.MaxMachines == 0 {
		p.created.Add(1)
	}
	m, err := p.grow(h)
	if err != nil {
		// A boot that fails here would fail the cold path identically;
		// report exhaustion and let the caller surface the boot error.
		p.created.Add(-1)
		p.tel.ColdFallback.Inc()
		return nil
	}
	p.tel.Occupancy.Add(1)
	return m
}

// grow creates one machine: a fresh kernel (unseeded — its entropy
// state is irrelevant, Reset re-seeds before anything observable
// draws) and a process booted from the image so every later Reset is
// a pure restore. The boot's own draws happen before the kernel is
// ever seeded, so machine creation order cannot perturb request
// outcomes or deterministic counters.
func (p *Pool) grow(shardIdx int) (*Machine, error) {
	k := kernel.New(p.cfg.PA)
	proc, err := p.cfg.Img.Boot(k)
	if err != nil {
		return nil, err
	}
	if p.cfg.Configure != nil {
		p.cfg.Configure(proc)
	}
	return &Machine{K: k, Proc: proc, shard: shardIdx}, nil
}

// Put returns a leased machine: home shard up to ShardCap, overflow
// beyond.
func (p *Pool) Put(m *Machine) {
	if m == nil {
		return
	}
	p.tel.Occupancy.Add(-1)
	sh := &p.shards[m.shard]
	sh.mu.Lock()
	if len(sh.free) < p.cfg.ShardCap {
		sh.free = append(sh.free, m)
		sh.mu.Unlock()
		return
	}
	sh.mu.Unlock()
	p.overflow.mu.Lock()
	p.overflow.free = append(p.overflow.free, m)
	p.overflow.mu.Unlock()
}

func (s *shard) pop() *Machine {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.free)
	if n == 0 {
		return nil
	}
	m := s.free[n-1]
	s.free = s.free[:n-1]
	return m
}

// Probe constants — same shape as supervise.SharedKeys, sealing under
// the image keys and authenticating with the fresh incarnation.
const (
	probePtr = 0x10040
	probeMod = 0xfeed
)

// Reset turns a leased machine into a pristine fresh incarnation: the
// address space and task state come back from the shared boot image
// (deep-copied — see snap.BootImage), the PA keys are re-seeded and
// the stack-protector canary re-drawn from the machine's kernel.
//
// The kernel must have been seeded by the caller (the serving layer
// seeds it from the request rng, exactly where the cold path seeds its
// fresh kernel). Reset then draws one key set and one canary word, in
// that order — the same draws, in the same order, as Image.Boot — so a
// warm request consumes the identical entropy stream as its cold-boot
// counterpart and produces the identical outcome.
//
// Before returning, Reset probes the incarnation against the boot
// image's keys (§4.3): a restore that still authenticates image-key
// seals is refused and counted in pacstack_pool_key_violations_total.
func (p *Pool) Reset(m *Machine) (*kernel.Process, error) {
	p.mu.RLock()
	bi, imgAuth := p.boot, p.imgAuth
	p.mu.RUnlock()

	if err := bi.Restore(m.Proc); err != nil {
		return nil, fmt.Errorf("pool: warm restore: %w", err)
	}
	m.Proc.ReseedKeys()
	if err := m.Proc.Mem.Write64(p.cfg.Img.Layout.CanaryAddr(), m.K.Entropy64()); err != nil {
		return nil, fmt.Errorf("pool: refreshing canary: %w", err)
	}
	if p.cfg.Configure != nil {
		p.cfg.Configure(m.Proc)
	}
	p.tel.Restores.Inc()

	sealed := imgAuth.AddPAC(pa.KeyIA, probePtr, probeMod)
	if _, ok := m.Proc.Auth.Auth(pa.KeyIA, sealed, probeMod); ok {
		p.tel.KeyViolations.Inc()
		return nil, fmt.Errorf("pool: warm restore shares keys with the boot image (§4.3 violation)")
	}
	return m.Proc, nil
}

// Virtual-time boot-cost model (1 GHz virtual clock). A cold boot
// constructs the whole address space — text encoding and verification
// per byte, then mapping, zeroing and copying every page; a warm
// restore is the fork-server trick, copy-on-write remapping of the
// checkpointed pages at a small per-page constant. The constants are
// what the soak's -boot-model mode charges per request, making the
// warm-vs-cold throughput claim a measurable requests/virtual-second
// ratio instead of an assertion.
const (
	ColdPerPageCycles     = 4096 // allocate + zero + copy one 4 KiB page
	ColdPerTextByteCycles = 16   // encode + W^X-seal the text segment
	WarmPerPageCycles     = 64   // COW remap one checkpointed page
	WarmFixedCycles       = 256  // restore bookkeeping + key/canary reseed
)

// ModelCosts returns the modeled cold-boot and warm-restore costs for
// the image, derived from its mapped page count and text size — a
// pure function of the compiled image, identical at any parallelism.
func ModelCosts(img *compile.Image) (cold, warm uint64) {
	l := img.Layout
	textLen := uint64(img.Prog.Size())
	codePages := textLen/mem.PageSize + 1
	pages := codePages + 1 + l.ShadowSize/mem.PageSize + l.StackSize/mem.PageSize
	cold = pages*ColdPerPageCycles + textLen*ColdPerTextByteCycles
	warm = pages*WarmPerPageCycles + WarmFixedCycles
	return cold, warm
}
