// Package gadget statically scans compiled images for return-oriented
// programming gadgets, quantifying the Section 9.2 observation that
// PACStack-protected code "effectively removes a potentially large set
// of reusable gadgets from the adversary's disposal".
//
// A gadget is an instruction suffix ending in a return. It is *usable*
// for ROP chaining when the return target is loaded from memory the
// adversary can write (the stack, or the known-location shadow stack)
// and reaches the return without authentication. Returns that
// authenticate the loaded value (autia/retaa) are *guarded*: chaining
// through them requires forging a PAC. Returns whose LR was never
// redefined in the suffix merely *inherit* the live link register,
// which the adversary cannot write directly.
package gadget

import (
	"fmt"
	"sort"
	"strings"

	"pacstack/internal/isa"
)

// Kind classifies a gadget.
type Kind int

// Gadget classes.
const (
	// Usable: return target loaded from attacker-writable memory and
	// not authenticated — a chainable ROP gadget.
	Usable Kind = iota
	// Guarded: the loaded return target is authenticated before use;
	// chaining requires defeating the MAC.
	Guarded
	// Inherited: the suffix never redefines LR; the return consumes a
	// live register value.
	Inherited
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Usable:
		return "usable"
	case Guarded:
		return "guarded"
	case Inherited:
		return "inherited"
	}
	return "unknown"
}

// Gadget is one discovered instruction suffix ending in a return.
type Gadget struct {
	Entry  uint64 // address of the first instruction of the suffix
	Ret    uint64 // address of the terminating return
	Len    int    // instructions including the return
	Kind   Kind
	Symbol string // enclosing symbol of the return
}

// MaxLen is the default maximum gadget length scanned, matching the
// short sequences ROP compilers look for.
const MaxLen = 8

// Scan enumerates all gadgets of length up to maxLen (0 = MaxLen) in
// the program.
func Scan(prog *isa.Program, maxLen int) []Gadget {
	if maxLen <= 0 {
		maxLen = MaxLen
	}
	var out []Gadget
	for idx, ins := range prog.Instrs {
		if ins.Op != isa.RET && ins.Op != isa.RETAA {
			continue
		}
		retAddr := prog.Base + uint64(idx)*isa.InstrSize
		sym, _ := prog.SymbolFor(retAddr)
		if i := strings.IndexByte(sym, '$'); i >= 0 {
			sym = sym[:i]
		}
		for l := 1; l <= maxLen && idx-l+1 >= 0; l++ {
			start := idx - l + 1
			// A gadget must execute as a straight line: stop extending
			// once the walk hits another control transfer.
			if l > 1 && isControlTransfer(prog.Instrs[start].Op) {
				break
			}
			g := Gadget{
				Entry:  prog.Base + uint64(start)*isa.InstrSize,
				Ret:    retAddr,
				Len:    l,
				Kind:   classify(prog.Instrs[start : idx+1]),
				Symbol: sym,
			}
			out = append(out, g)
		}
	}
	return out
}

// isControlTransfer reports whether op unconditionally redirects or
// ends execution. Conditional branches fall through, so a straight-
// line gadget may contain them.
func isControlTransfer(op isa.Op) bool {
	switch op {
	case isa.B, isa.BL, isa.BR, isa.BLR, isa.RET, isa.RETAA, isa.HLT:
		return true
	}
	return false
}

// classify walks a suffix tracking how the return target is produced.
// Authentication takes precedence: a return whose LR passed through an
// aut instruction after its last definition requires a valid PAC no
// matter where the value came from.
func classify(seq []isa.Instr) Kind {
	lrLoaded := false // LR set from attacker-writable memory
	lrAuthed := false // an aut instruction covers the current LR value
	for _, ins := range seq[:len(seq)-1] {
		switch ins.Op {
		case isa.LDR, isa.LDRPOST:
			if ins.Rd == isa.LR {
				lrLoaded, lrAuthed = true, false
			}
		case isa.LDP, isa.LDPPOST:
			if ins.Rd == isa.LR || ins.Rm == isa.LR {
				lrLoaded, lrAuthed = true, false
			}
		case isa.MOV, isa.MOVZ:
			if ins.Rd == isa.LR {
				// Register-to-register or immediate: not directly
				// attacker-writable; clears any earlier load and any
				// earlier authentication.
				lrLoaded, lrAuthed = false, false
			}
		case isa.AUTIA, isa.AUTIB:
			if ins.Rd == isa.LR {
				lrAuthed = true
			}
		case isa.AUTIASP:
			lrAuthed = true
		case isa.EOR:
			// Mask removal keeps the loaded/authed state as is.
		}
	}
	ret := seq[len(seq)-1]
	if ret.Op == isa.RETAA {
		return Guarded
	}
	// RET via a register other than LR consumes a live register.
	if ret.Rn != isa.LR {
		return Inherited
	}
	switch {
	case lrAuthed:
		return Guarded
	case lrLoaded:
		return Usable
	default:
		return Inherited
	}
}

// Filter returns the gadgets satisfying keep.
func Filter(gs []Gadget, keep func(Gadget) bool) []Gadget {
	var out []Gadget
	for _, g := range gs {
		if keep(g) {
			out = append(out, g)
		}
	}
	return out
}

// UserCode filters out the compiler runtime (symbols prefixed "__"):
// the plain libc-analogue setjmp/longjmp in the runtime is an
// unauthenticated gadget by construction, a property of the C library
// rather than of the protection scheme under study.
func UserCode(gs []Gadget) []Gadget {
	return Filter(gs, func(g Gadget) bool {
		return !strings.HasPrefix(g.Symbol, "__") && g.Symbol != "_start"
	})
}

// Summary counts gadgets by kind.
func Summary(gs []Gadget) map[Kind]int {
	out := make(map[Kind]int)
	for _, g := range gs {
		out[g.Kind]++
	}
	return out
}

// UsableReturns counts the distinct return sites (not suffixes) that
// are reachable as usable gadgets — the attacker's working set.
func UsableReturns(gs []Gadget) int {
	seen := make(map[uint64]bool)
	for _, g := range gs {
		if g.Kind == Usable {
			seen[g.Ret] = true
		}
	}
	return len(seen)
}

// Report renders a per-kind summary plus the usable return sites
// grouped by symbol.
func Report(gs []Gadget) string {
	var b strings.Builder
	sum := Summary(gs)
	fmt.Fprintf(&b, "gadget suffixes: %d usable, %d guarded, %d inherited\n",
		sum[Usable], sum[Guarded], sum[Inherited])
	fmt.Fprintf(&b, "usable return sites: %d\n", UsableReturns(gs))

	bySym := map[string]int{}
	seen := map[uint64]bool{}
	for _, g := range gs {
		if g.Kind == Usable && !seen[g.Ret] {
			seen[g.Ret] = true
			bySym[g.Symbol]++
		}
	}
	syms := make([]string, 0, len(bySym))
	for s := range bySym {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	for _, s := range syms {
		fmt.Fprintf(&b, "  %-24s %d\n", s, bySym[s])
	}
	return b.String()
}
