package gadget

import (
	"strings"
	"testing"

	"pacstack/internal/compile"
	"pacstack/internal/ir"
	"pacstack/internal/isa"
)

func libProgram() *ir.Program {
	// A library-shaped program: several non-leaf functions whose
	// epilogues are the gadget population.
	fns := []*ir.Function{
		{Name: "main", Body: []ir.Op{ir.Call{Target: "a"}}},
		{Name: "a", Locals: 2, Body: []ir.Op{ir.StoreLocal{Slot: 0, Value: 1}, ir.Call{Target: "b"}}},
		{Name: "b", Locals: 1, Body: []ir.Op{ir.Call{Target: "c"}}},
		{Name: "c", Body: []ir.Op{ir.Call{Target: "leaf"}}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 2}}},
	}
	return &ir.Program{Entry: "main", Functions: fns}
}

func scanScheme(t *testing.T, s compile.Scheme) []Gadget {
	t.Helper()
	img, err := compile.Compile(libProgram(), s, compile.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	return UserCode(Scan(img.Prog, 0))
}

func TestRuntimeLongjmpIsAKnownGadget(t *testing.T) {
	// The plain libc-analogue longjmp loads LR from the jmp_buf and
	// returns unauthenticated — a usable gadget the scanner must not
	// paper over. (PACStack builds call the authenticated wrapper
	// instead; hardening the C library itself is the Section 9.2
	// deployment discussion.)
	img, err := compile.Compile(libProgram(), compile.SchemePACStack, compile.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	all := Scan(img.Prog, 0)
	found := false
	for _, g := range all {
		if g.Symbol == "__longjmp" && g.Kind == Usable {
			found = true
		}
	}
	if !found {
		t.Error("scanner missed the unauthenticated runtime longjmp")
	}
}

func TestBaselineEpiloguesAreUsable(t *testing.T) {
	gs := scanScheme(t, compile.SchemeNone)
	if UsableReturns(gs) < 3 {
		t.Errorf("baseline usable returns = %d, want >= 3 (a, b, c epilogues)", UsableReturns(gs))
	}
}

func TestPACStackRemovesUsableGadgets(t *testing.T) {
	// The Section 9.2 claim: protected functions validate their
	// return addresses, removing their epilogues from the gadget set.
	for _, s := range []compile.Scheme{compile.SchemePACStack, compile.SchemePACStackNoMask} {
		gs := scanScheme(t, s)
		if n := UsableReturns(gs); n != 0 {
			t.Errorf("%v: %d usable return sites, want 0", s, n)
			for _, g := range gs {
				if g.Kind == Usable {
					t.Logf("usable: %s ret@%#x len %d", g.Symbol, g.Ret, g.Len)
				}
			}
		}
		sum := Summary(gs)
		if sum[Guarded] == 0 {
			t.Errorf("%v: no guarded gadgets found; scanner is blind", s)
		}
	}
}

func TestBranchProtectionGuardsEpilogues(t *testing.T) {
	gs := scanScheme(t, compile.SchemeBranchProtection)
	if n := UsableReturns(gs); n != 0 {
		t.Errorf("retaa epilogues counted usable: %d", n)
	}
}

func TestShadowStackStillUsable(t *testing.T) {
	// The shadow stack reload is a plain memory load from a known,
	// writable region — its epilogues remain usable gadgets under the
	// full-disclosure adversary, consistent with the dynamic reuse
	// attack result.
	gs := scanScheme(t, compile.SchemeShadowStack)
	if n := UsableReturns(gs); n < 3 {
		t.Errorf("shadow-stack usable returns = %d, want >= 3", n)
	}
}

func TestCanaryDoesNotGuardReturns(t *testing.T) {
	gs := scanScheme(t, compile.SchemeCanary)
	if n := UsableReturns(gs); n < 3 {
		t.Errorf("canary usable returns = %d; canaries must not count as guards", n)
	}
}

func TestOrderingAcrossSchemes(t *testing.T) {
	usable := map[compile.Scheme]int{}
	for _, s := range compile.Schemes {
		usable[s] = UsableReturns(scanScheme(t, s))
	}
	if !(usable[compile.SchemePACStack] < usable[compile.SchemeNone]) {
		t.Errorf("PACStack (%d) did not reduce the baseline gadget set (%d)",
			usable[compile.SchemePACStack], usable[compile.SchemeNone])
	}
	if usable[compile.SchemeCanary] != usable[compile.SchemeNone] {
		t.Errorf("canary changed the usable set: %d vs %d",
			usable[compile.SchemeCanary], usable[compile.SchemeNone])
	}
}

func TestClassifyDirectSequences(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want Kind
	}{
		{"classic pop-ret", "ldp FP, LR, [SP], #16\nret", Usable},
		{"ldr-ret", "ldr LR, [SP], #16\nret", Usable},
		{"authenticated", "ldr LR, [SP], #16\nautia LR, X28\nret", Guarded},
		{"retaa", "ldr LR, [SP], #16\nretaa", Guarded},
		{"bare ret", "add X0, X0, #1\nret", Inherited},
		{"ret via register", "ret X17", Inherited},
		{"mov clears load", "ldr LR, [SP], #16\nmov LR, X28\nret", Inherited},
		{"autiasp", "ldr LR, [SP], #16\nautiasp\nret", Guarded},
		{"reload after auth", "ldr LR, [SP], #16\nautia LR, X28\nldr LR, [SP, #8]\nret", Usable},
	}
	for _, c := range cases {
		prog := isa.MustAssemble(0x1000, c.src)
		gs := Scan(prog, 16)
		// The longest suffix covers the whole sequence.
		var full Gadget
		for _, g := range gs {
			if g.Entry == 0x1000 {
				full = g
			}
		}
		if full.Kind != c.want {
			t.Errorf("%s: classified %v, want %v", c.name, full.Kind, c.want)
		}
	}
}

func TestScanLengthBound(t *testing.T) {
	prog := isa.MustAssemble(0x1000, `
    add X0, X0, #1
    add X0, X0, #1
    add X0, X0, #1
    ret
`)
	gs := Scan(prog, 2)
	for _, g := range gs {
		if g.Len > 2 {
			t.Errorf("gadget of length %d with bound 2", g.Len)
		}
	}
	if len(gs) != 2 {
		t.Errorf("got %d gadgets, want 2", len(gs))
	}
}

func TestReportRendering(t *testing.T) {
	gs := scanScheme(t, compile.SchemeNone)
	rep := Report(gs)
	for _, want := range []string{"usable", "guarded", "return sites"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if (Kind(99)).String() != "unknown" {
		t.Error("unknown kind string")
	}
}
