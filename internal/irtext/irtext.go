// Package irtext is the textual surface syntax for the internal/ir
// programs — the "source language" of this reproduction's toolchain.
// It lets test fixtures, examples and the pacstack-cc driver express
// programs as files instead of Go struct literals:
//
//	# a comment
//	entry main
//
//	func main locals 2 {
//	    store 0, 7          # local[0] = 7
//	    call work
//	    loop 3 {
//	        call work
//	        write '.'
//	    }
//	    callptr helper
//	    load 0
//	    write '!'
//	}
//
//	uninstrumented func vendor {
//	    write 'v'
//	    call helper
//	}
//
//	func work locals 1 {
//	    compute 10
//	    tailcall helper
//	}
//
//	func helper {
//	    compute 3
//	}
//
// Statements map one-to-one onto ir.Op: store/load/compute/call/
// callptr/tailcall/loop/write/setjmp/longjmp/ifnz/exit/assert/
// validate. Parse and Format round-trip.
package irtext

import (
	"fmt"
	"strconv"
	"strings"

	"pacstack/internal/ir"
)

// Parse builds a validated ir.Program from source text.
func Parse(src string) (*ir.Program, error) {
	p := &parser{lines: splitLines(src)}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse that panics on error, for static fixtures.
func MustParse(src string) *ir.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type line struct {
	no   int
	text string
}

func splitLines(src string) []line {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		text := raw
		if j := strings.IndexByte(text, '#'); j >= 0 {
			text = text[:j]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		out = append(out, line{no: i + 1, text: text})
	}
	return out
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) eof() bool { return p.pos >= len(p.lines) }

func (p *parser) peek() line { return p.lines[p.pos] }

func (p *parser) next() line {
	l := p.lines[p.pos]
	p.pos++
	return l
}

func (p *parser) errf(l line, format string, args ...any) error {
	return fmt.Errorf("irtext: line %d: %s", l.no, fmt.Sprintf(format, args...))
}

func (p *parser) program() (*ir.Program, error) {
	prog := &ir.Program{Entry: "main"}
	for !p.eof() {
		l := p.next()
		fields := strings.Fields(l.text)
		switch fields[0] {
		case "entry":
			if len(fields) != 2 {
				return nil, p.errf(l, "entry needs a function name")
			}
			prog.Entry = fields[1]
		case "func", "uninstrumented":
			fn, err := p.function(l)
			if err != nil {
				return nil, err
			}
			prog.Functions = append(prog.Functions, fn)
		default:
			return nil, p.errf(l, "expected 'func', 'uninstrumented func' or 'entry', got %q", fields[0])
		}
	}
	return prog, nil
}

// function parses a header line (already consumed) plus the brace-
// delimited body.
func (p *parser) function(header line) (*ir.Function, error) {
	fields := strings.Fields(strings.TrimSuffix(header.text, "{"))
	fn := &ir.Function{}
	i := 0
	if fields[i] == "uninstrumented" {
		fn.Uninstrumented = true
		i++
	}
	if i >= len(fields) || fields[i] != "func" {
		return nil, p.errf(header, "expected 'func'")
	}
	i++
	if i >= len(fields) {
		return nil, p.errf(header, "func needs a name")
	}
	fn.Name = fields[i]
	i++
	if i < len(fields) {
		if fields[i] != "locals" || i+1 >= len(fields) {
			return nil, p.errf(header, "expected 'locals N' after the function name")
		}
		n, err := strconv.Atoi(fields[i+1])
		if err != nil || n < 0 {
			return nil, p.errf(header, "bad locals count %q", fields[i+1])
		}
		fn.Locals = n
		i += 2
	}
	if i != len(fields) {
		return nil, p.errf(header, "unexpected tokens after the function header")
	}
	if !strings.HasSuffix(header.text, "{") {
		return nil, p.errf(header, "function header must end with '{'")
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// block parses statements until the closing brace.
func (p *parser) block() ([]ir.Op, error) {
	var ops []ir.Op
	for {
		if p.eof() {
			return nil, fmt.Errorf("irtext: unexpected end of input inside a block")
		}
		l := p.next()
		if l.text == "}" {
			return ops, nil
		}
		op, err := p.statement(l)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
}

func (p *parser) statement(l line) (ir.Op, error) {
	fields := strings.Fields(l.text)
	args := strings.TrimSpace(strings.TrimPrefix(l.text, fields[0]))
	switch fields[0] {
	case "compute":
		n, err := p.intArg(l, args)
		if err != nil {
			return nil, err
		}
		return ir.Compute{Units: n}, nil
	case "store":
		a, b, err := p.twoIntArgs(l, args)
		if err != nil {
			return nil, err
		}
		return ir.StoreLocal{Slot: a, Value: int64(b)}, nil
	case "load":
		n, err := p.intArg(l, args)
		if err != nil {
			return nil, err
		}
		return ir.LoadLocal{Slot: n}, nil
	case "call":
		return ir.Call{Target: args}, p.nameArg(l, args)
	case "callptr":
		return ir.CallPtr{Target: args}, p.nameArg(l, args)
	case "tailcall":
		return ir.TailCall{Target: args}, p.nameArg(l, args)
	case "write":
		b, err := p.charArg(l, args)
		if err != nil {
			return nil, err
		}
		return ir.Write{Byte: b}, nil
	case "setjmp":
		n, err := p.intArg(l, args)
		if err != nil {
			return nil, err
		}
		return ir.SetJmp{Buf: n}, nil
	case "longjmp":
		a, b, err := p.twoIntArgs(l, args)
		if err != nil {
			return nil, err
		}
		return ir.LongJmp{Buf: a, Value: int64(b)}, nil
	case "exit":
		n, err := p.intArg(l, args)
		if err != nil {
			return nil, err
		}
		return ir.Exit{Code: int64(n)}, nil
	case "assert":
		a, b, err := p.twoIntArgs(l, args)
		if err != nil {
			return nil, err
		}
		return ir.AssertLocal{Slot: a, Value: int64(b)}, nil
	case "validate":
		n, err := p.intArg(l, args)
		if err != nil {
			return nil, err
		}
		return ir.ValidateFrames{Max: n}, nil
	case "loop":
		count, err := p.intArg(l, strings.TrimSuffix(args, "{"))
		if err != nil {
			return nil, err
		}
		if !strings.HasSuffix(l.text, "{") {
			return nil, p.errf(l, "loop header must end with '{'")
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return ir.Loop{Count: count, Body: body}, nil
	case "ifnz":
		if l.text != "ifnz {" {
			return nil, p.errf(l, "expected 'ifnz {'")
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return ir.IfNZ{Then: body}, nil
	}
	return nil, p.errf(l, "unknown statement %q", fields[0])
}

func (p *parser) intArg(l line, s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, p.errf(l, "expected an integer, got %q", s)
	}
	return n, nil
}

func (p *parser) twoIntArgs(l line, s string) (int, int, error) {
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		return 0, 0, p.errf(l, "expected two comma-separated integers, got %q", s)
	}
	a, err := p.intArg(l, parts[0])
	if err != nil {
		return 0, 0, err
	}
	b, err := p.intArg(l, parts[1])
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func (p *parser) nameArg(l line, s string) error {
	if s == "" || len(strings.Fields(s)) != 1 {
		return p.errf(l, "expected a function name, got %q", s)
	}
	return nil
}

// charArg accepts 'x' (quoted byte), an escape like '\n', or a
// decimal byte value.
func (p *parser) charArg(l line, s string) (byte, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		inner := s[1 : len(s)-1]
		switch inner {
		case "\\n":
			return '\n', nil
		case "\\t":
			return '\t', nil
		case "\\'":
			return '\'', nil
		case "\\\\":
			return '\\', nil
		}
		if len(inner) == 1 {
			return inner[0], nil
		}
		return 0, p.errf(l, "bad character literal %q", s)
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > 255 {
		return 0, p.errf(l, "expected a character literal or byte value, got %q", s)
	}
	return byte(n), nil
}
