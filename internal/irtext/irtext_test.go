package irtext

import (
	"reflect"
	"strings"
	"testing"

	"pacstack/internal/compile"
	"pacstack/internal/ir"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
)

const demoSrc = `
# demo program
entry main

func main locals 2 {
    store 0, 7
    call work
    loop 3 {
        call work
        write '.'
    }
    callptr helper
    load 0
    write '!'
}

uninstrumented func vendor {
    write 'v'
    call helper
}

func work locals 1 {
    store 0, 1
    compute 10
    call helper
    write 'w'
}

func helper {
    compute 3
}
`

func TestParseDemo(t *testing.T) {
	p, err := Parse(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != "main" || len(p.Functions) != 4 {
		t.Fatalf("entry %q, %d functions", p.Entry, len(p.Functions))
	}
	if !p.Function("vendor").Uninstrumented {
		t.Error("uninstrumented attribute lost")
	}
	if p.Function("main").Locals != 2 {
		t.Error("locals lost")
	}
	if len(p.Function("main").Body) != 6 {
		t.Errorf("main has %d ops", len(p.Function("main").Body))
	}
}

func TestParsedProgramRuns(t *testing.T) {
	p := MustParse(demoSrc)
	img, err := compile.Compile(p, compile.SchemePACStack, compile.DefaultLayout())
	if err != nil {
		t.Fatal(err)
	}
	proc, err := img.Boot(kernel.New(pa.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := string(proc.Output); got != "ww.w.w.!" {
		t.Errorf("output %q", got)
	}
}

func TestFormatParseRoundTripDemo(t *testing.T) {
	p1 := MustParse(demoSrc)
	text := Format(p1)
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("round trip changed the program:\n%s", text)
	}
}

func TestFormatParseRoundTripGenerated(t *testing.T) {
	// Round-trip every construct via the random program generator.
	for seed := int64(0); seed < 40; seed++ {
		p1 := ir.Generate(ir.DefaultGenConfig(), seed)
		text := Format(p1)
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, text)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("seed %d: round trip changed the program", seed)
		}
	}
}

func TestAllStatementsParse(t *testing.T) {
	src := `
entry top
func top locals 3 {
    compute 5
    store 1, -9
    load 2
    call bottom
    write 65
    write '\n'
    write '\t'
    write '\''
    write '\\'
    setjmp 1
    ifnz {
        exit 3
    }
    longjmp 1, 2
    assert 0, 0
    validate 4
    loop 0 {
        compute 1
    }
    tailcall bottom
}
func bottom {
    compute 1
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// The formatter must render every construct back.
	text := Format(p)
	if _, err := Parse(text); err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad top-level":     "banana main",
		"missing brace":     "func f\ncompute 1\n}",
		"unterminated":      "func f {\ncompute 1",
		"bad statement":     "func f {\nfrobnicate 3\n}",
		"bad int":           "func f {\ncompute x\n}",
		"bad pair":          "func f {\nstore 1\n}",
		"bad char":          "func f {\nwrite 'xy'\n}",
		"bad byte":          "func f {\nwrite 999\n}",
		"bad locals":        "func f locals q {\n}",
		"bad header suffix": "func f locals 1 extra {\n}",
		"entry arity":       "entry",
		"undefined call":    "func main {\ncall ghost\n}",
		"bad loop header":   "func main {\nloop 3\ncompute 1\n}\n}",
		"bad ifnz":          "func main {\nifnz 3 {\n}\n}",
		"call arity":        "func main {\ncall a b\n}",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
# leading comment

entry main
func main {     # trailing comment on header
    compute 1   # trailing comment
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Function("main").Body) != 1 {
		t.Error("comment handling broke the body")
	}
}

func FuzzParse(f *testing.F) {
	f.Add(demoSrc)
	f.Add("func main {\n}")
	f.Add("entry x\nfunc x {\nloop 2 {\nifnz {\nwrite 'a'\n}\n}\n}")
	f.Add("uninstrumented func main locals 9 {\nvalidate 9\n}")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		// Anything accepted must format and reparse identically.
		text := Format(p)
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse failed: %v\n%s", err, text)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip changed program:\n%s", text)
		}
	})
}

func TestFormatStable(t *testing.T) {
	p := MustParse(demoSrc)
	if Format(p) != Format(p) {
		t.Error("Format is not deterministic")
	}
	if !strings.Contains(Format(p), "uninstrumented func vendor") {
		t.Error("attribute not rendered")
	}
}
