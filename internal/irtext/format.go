package irtext

import (
	"fmt"
	"strings"

	"pacstack/internal/ir"
)

// Format renders a program back into the surface syntax; Parse(Format(p))
// reproduces p, which the round-trip tests rely on.
func Format(p *ir.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "entry %s\n", p.Entry)
	for _, f := range p.Functions {
		b.WriteString("\n")
		if f.Uninstrumented {
			b.WriteString("uninstrumented ")
		}
		fmt.Fprintf(&b, "func %s", f.Name)
		if f.Locals > 0 {
			fmt.Fprintf(&b, " locals %d", f.Locals)
		}
		b.WriteString(" {\n")
		formatOps(&b, f.Body, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

func formatOps(b *strings.Builder, ops []ir.Op, depth int) {
	indent := strings.Repeat("    ", depth)
	for _, op := range ops {
		switch o := op.(type) {
		case ir.Compute:
			fmt.Fprintf(b, "%scompute %d\n", indent, o.Units)
		case ir.StoreLocal:
			fmt.Fprintf(b, "%sstore %d, %d\n", indent, o.Slot, o.Value)
		case ir.LoadLocal:
			fmt.Fprintf(b, "%sload %d\n", indent, o.Slot)
		case ir.Call:
			fmt.Fprintf(b, "%scall %s\n", indent, o.Target)
		case ir.CallPtr:
			fmt.Fprintf(b, "%scallptr %s\n", indent, o.Target)
		case ir.TailCall:
			fmt.Fprintf(b, "%stailcall %s\n", indent, o.Target)
		case ir.Write:
			fmt.Fprintf(b, "%swrite %s\n", indent, formatChar(o.Byte))
		case ir.SetJmp:
			fmt.Fprintf(b, "%ssetjmp %d\n", indent, o.Buf)
		case ir.LongJmp:
			fmt.Fprintf(b, "%slongjmp %d, %d\n", indent, o.Buf, o.Value)
		case ir.Exit:
			fmt.Fprintf(b, "%sexit %d\n", indent, o.Code)
		case ir.AssertLocal:
			fmt.Fprintf(b, "%sassert %d, %d\n", indent, o.Slot, o.Value)
		case ir.ValidateFrames:
			fmt.Fprintf(b, "%svalidate %d\n", indent, o.Max)
		case ir.Loop:
			fmt.Fprintf(b, "%sloop %d {\n", indent, o.Count)
			formatOps(b, o.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", indent)
		case ir.IfNZ:
			fmt.Fprintf(b, "%sifnz {\n", indent)
			formatOps(b, o.Then, depth+1)
			fmt.Fprintf(b, "%s}\n", indent)
		default:
			panic(fmt.Sprintf("irtext: no syntax for %T", op))
		}
	}
}

func formatChar(c byte) string {
	switch c {
	case '\n':
		return `'\n'`
	case '\t':
		return `'\t'`
	case '\'':
		return `'\''`
	case '\\':
		return `'\\'`
	}
	if c >= 0x20 && c < 0x7F {
		return fmt.Sprintf("'%c'", c)
	}
	return fmt.Sprintf("%d", c)
}
