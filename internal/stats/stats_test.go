package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %g", m)
	}
	if sd := StdDev(xs); !almost(sd, 2.138, 1e-3) {
		t.Errorf("StdDev = %g", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty-input conventions broken")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); !almost(g, 2, 1e-12) {
		t.Errorf("GeoMean = %g", g)
	}
	if g := GeoMean([]float64{2, 8, 4}); !almost(g, 4, 1e-12) {
		t.Errorf("GeoMean = %g", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean accepted non-positive input")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanOverhead(t *testing.T) {
	// Identical overheads aggregate to themselves.
	if g := GeoMeanOverhead([]float64{0.03, 0.03}); !almost(g, 0.03, 1e-12) {
		t.Errorf("GeoMeanOverhead = %g", g)
	}
	// Mixed overheads land between min and max.
	g := GeoMeanOverhead([]float64{0.01, 0.10})
	if g <= 0.01 || g >= 0.10 {
		t.Errorf("GeoMeanOverhead = %g out of range", g)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("Median odd = %g", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("Median even = %g", m)
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
}

func TestBinomialWilson(t *testing.T) {
	b := Binomial{Successes: 50, Trials: 100}
	lo, hi := b.Wilson(1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("interval [%g, %g] excludes the point estimate", lo, hi)
	}
	if !almost(b.Rate(), 0.5, 1e-12) {
		t.Errorf("Rate = %g", b.Rate())
	}
	// Degenerate cases stay in [0, 1].
	for _, bb := range []Binomial{{0, 100}, {100, 100}, {0, 0}} {
		lo, hi := bb.Wilson(1.96)
		if lo < 0 || hi > 1 || lo > hi {
			t.Errorf("%+v: interval [%g, %g]", bb, lo, hi)
		}
	}
	if s := (Binomial{1, 10}).String(); s == "" {
		t.Error("empty String")
	}
}

func TestWilsonCoversTruthProperty(t *testing.T) {
	f := func(succ uint8, extra uint8) bool {
		n := int(succ) + int(extra) + 1
		b := Binomial{Successes: int(succ), Trials: n}
		lo, hi := b.Wilson(1.96)
		p := b.Rate()
		return lo <= p && p <= hi && lo >= 0 && hi <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBirthdayNumbersFromPaper(t *testing.T) {
	// Section 4.2 / 6.2.1: with b = 16 a collision is expected after
	// about 321 tokens (1.2533 * 2^8).
	if e := BirthdayExpectedDraws(16); !almost(e, 320.87, 0.5) {
		t.Errorf("expected draws for b=16: %g, paper says ~321", e)
	}
	// p_collision at the expected draw count is near 1 - e^(-pi/4) ~ 0.54.
	p := BirthdayCollisionProb(16, 321)
	if p < 0.5 || p > 0.6 {
		t.Errorf("p_collision(321) = %g", p)
	}
	// Monotone in q; saturates at 1.
	if BirthdayCollisionProb(16, 10) >= BirthdayCollisionProb(16, 1000) {
		t.Error("collision probability not monotone")
	}
	if BirthdayCollisionProb(4, 100) != 1 {
		t.Error("over-full birthday table should be certain")
	}
}

func TestGuessesForSuccessProb(t *testing.T) {
	// With b=16, a 50% success chance needs about 2^16 * ln 2 ~ 45426
	// guesses.
	g := GuessesForSuccessProb(16, 0.5)
	if !almost(g, 65536*math.Ln2, 10) {
		t.Errorf("guesses = %g", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("accepted p out of range")
		}
	}()
	GuessesForSuccessProb(16, 1.5)
}
