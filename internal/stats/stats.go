// Package stats provides the small statistical toolkit the
// experiments need: summary statistics, geometric means for the
// Table 2 overhead aggregation, binomial confidence intervals for the
// Monte-Carlo attack estimates, and the closed-form birthday-paradox
// quantities of Section 6.2.1.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// GeoMean returns the geometric mean of xs. All inputs must be
// positive; the paper aggregates 1+overhead ratios this way for
// Table 2.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logs float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		logs += math.Log(x)
	}
	return math.Exp(logs / float64(len(xs)))
}

// GeoMeanOverhead aggregates per-benchmark overhead fractions (e.g.
// 0.03 for 3%) as the geometric mean of the slowdown ratios, the
// aggregation used for Table 2.
func GeoMeanOverhead(overheads []float64) float64 {
	ratios := make([]float64, len(overheads))
	for i, o := range overheads {
		ratios[i] = 1 + o
	}
	return GeoMean(ratios) - 1
}

// Median returns the median of xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Binomial is an observed success count out of N trials.
type Binomial struct {
	Successes int
	Trials    int
}

// Rate returns the observed success probability.
func (b Binomial) Rate() float64 {
	if b.Trials == 0 {
		return 0
	}
	return float64(b.Successes) / float64(b.Trials)
}

// Wilson returns the Wilson score interval at the given z (1.96 for
// 95%). Robust near 0 and 1, where the attack probabilities live.
func (b Binomial) Wilson(z float64) (lo, hi float64) {
	if b.Trials == 0 {
		return 0, 1
	}
	n := float64(b.Trials)
	p := b.Rate()
	z2 := z * z
	den := 1 + z2/n
	center := (p + z2/(2*n)) / den
	half := z / den * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	return math.Max(0, center-half), math.Min(1, center+half)
}

// String renders the estimate with its 95% interval.
func (b Binomial) String() string {
	lo, hi := b.Wilson(1.96)
	return fmt.Sprintf("%d/%d = %.3g [%.3g, %.3g]", b.Successes, b.Trials, b.Rate(), lo, hi)
}

// BirthdayCollisionProb returns the probability that at least two of
// q uniformly random b-bit tokens collide — Section 6.2.1:
//
//	p_collision(q) = 1 - 2^b! / ((2^b - q)! * 2^(bq))
//
// computed in log space to stay stable for large q.
func BirthdayCollisionProb(b, q int) float64 {
	n := math.Exp2(float64(b))
	if float64(q) >= n {
		return 1
	}
	var logNoCollision float64
	for i := 0; i < q; i++ {
		logNoCollision += math.Log1p(-float64(i) / n)
	}
	return -math.Expm1(logNoCollision)
}

// BirthdayExpectedDraws returns the expected number of tokens drawn
// before some pair collides: sqrt(pi * 2^b / 2), i.e. ~321 for b=16
// (Section 6.2.1) and ~1.2533 * 2^(b/2) in the Section 4.2 form.
func BirthdayExpectedDraws(b int) float64 {
	return math.Sqrt(math.Pi * math.Exp2(float64(b)) / 2)
}

// GuessesForSuccessProb returns the number of independent guesses,
// each succeeding with probability 2^-b, needed to reach overall
// success probability p (Section 4.3):
//
//	log(1-p) / log(1 - 2^-b)
func GuessesForSuccessProb(b int, p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: p must be in (0, 1)")
	}
	return math.Log1p(-p) / math.Log1p(-math.Exp2(-float64(b)))
}
