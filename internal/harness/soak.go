package harness

import (
	"fmt"
	"strings"

	"pacstack/internal/serve"
)

// Soak renders a chaos-soak report (internal/serve.Soak) as the
// deterministic end-of-run summary cmd/pacstack-soak prints. The text
// is a pure function of the report, so byte-identical reports render
// byte-identically — check.sh diffs two runs of this output.
func Soak(r *serve.SoakReport) string {
	var b strings.Builder
	if r.Traffic {
		b.WriteString("Traffic soak: seeded open-loop heavy-tail replay against the serving layer (internal/serve + internal/traffic)\n")
		fmt.Fprintf(&b, "seed %d | schemes %s | %d arrivals | chaos %.1f%% | heal %d\n",
			r.Seed, strings.Join(r.Schemes, ","), r.Issued, 100*r.ChaosRate, r.Heal)
	} else {
		b.WriteString("Chaos soak: seeded virtual-time traffic against the serving layer (internal/serve)\n")
		fmt.Fprintf(&b, "seed %d | workload %s | schemes %s | %d clients x %d requests | chaos %.1f%% | heal %d\n",
			r.Seed, r.Workload, strings.Join(r.Schemes, ","), r.Clients, r.PerClient, 100*r.ChaosRate, r.Heal)
	}

	fmt.Fprintf(&b, "\n%-26s %9s %8s %8s %8s %8s %8s\n",
		"scheme", "requests", "ok", "healed", "detected", "silent", "gave-up")
	for _, row := range r.PerScheme {
		fmt.Fprintf(&b, "%-26s %9d %8d %8d %8d %8d %8d\n",
			row.Scheme, row.Requests, row.OK, row.Healed, row.Detected, row.Silent, row.GaveUp)
	}
	fmt.Fprintf(&b, "%-26s %9d %8d %8d %8d %8d %8d\n",
		"total", r.Issued, r.OK, r.Healed, r.Detected, r.Silent, r.GaveUp)

	fmt.Fprintf(&b, "\ninjected faults %d | retries %d | sheds %d | breaker denied %d\n",
		r.Injected, r.Retries, r.Sheds, r.BreakerDenied)
	if r.Checkpoints > 0 || r.TornCommits > 0 || r.Restores > 0 {
		fmt.Fprintf(&b, "checkpoints %d | warm restores %d | torn commits %d\n",
			r.Checkpoints, r.Restores, r.TornCommits)
	}
	if len(r.Causes) > 0 {
		parts := make([]string, 0, len(r.Causes))
		for _, c := range r.Causes {
			parts = append(parts, fmt.Sprintf("%s:%d", c.Scheme, c.Count))
		}
		fmt.Fprintf(&b, "detections by cause: %s\n", strings.Join(parts, " "))
	}
	if len(r.BreakerOpens) > 0 {
		parts := make([]string, 0, len(r.BreakerOpens))
		for _, c := range r.BreakerOpens {
			parts = append(parts, fmt.Sprintf("%s:%d", c.Scheme, c.Count))
		}
		fmt.Fprintf(&b, "breaker opens: %s\n", strings.Join(parts, " "))
	}

	fmt.Fprintf(&b, "virtual cycles %d | in flight at end %d\n", r.VirtualCycles, r.InFlightAtEnd)
	if r.BootModel != "" {
		fmt.Fprintf(&b, "boot model %s | %d.%03d requests/virtual-second\n",
			r.BootModel, r.RPVSMilli/1000, r.RPVSMilli%1000)
		if r.BootModel == "warm" {
			fmt.Fprintf(&b, "pool restores %d | cold fallbacks %d | key violations %d\n",
				r.PoolRestores, r.PoolColdFallbacks, r.PoolKeyViolations)
		}
	}
	if r.Graceful() {
		fmt.Fprintf(&b, "graceful: every request reached a terminal state (%d+%d+%d+%d = %d issued)\n",
			r.OK, r.Detected, r.Silent, r.GaveUp, r.Issued)
	} else {
		fmt.Fprintf(&b, "NOT GRACEFUL: ok+detected+silent+gave-up = %d of %d issued, %d in flight\n",
			r.OK+r.Detected+r.Silent+r.GaveUp, r.Issued, r.InFlightAtEnd)
	}
	b.WriteString(SLO(r.SLO))
	return b.String()
}
