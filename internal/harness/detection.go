package harness

import (
	"fmt"
	"strings"

	"pacstack/internal/attack"
	"pacstack/internal/fault"
)

// DetectionCoverage renders fault-injection campaign reports as a
// table: one block per corruption kind, one row per scheme, with the
// detected / benign / silent split and the per-cause breakdown of the
// detections. Silent corruption — terminated, no kill, diverged
// behaviour — is the column PACStack is supposed to drive to ~2^-b.
func DetectionCoverage(reports []fault.Report) string {
	var b strings.Builder
	b.WriteString("Detection coverage: seeded fault-injection campaigns (internal/fault)\n")
	var kind fault.Kind = -1
	for _, r := range reports {
		if r.Kind != kind {
			kind = r.Kind
			fmt.Fprintf(&b, "\n%s (%d trials per scheme)\n", kind, r.Trials)
			fmt.Fprintf(&b, "%-26s %9s %8s %8s %8s  %s\n",
				"scheme", "detected", "benign", "silent", "silent%", "detections by cause")
		}
		fmt.Fprintf(&b, "%-26s %9d %8d %8d %7.1f%%  %s\n",
			r.Scheme, r.Detected, r.Benign, r.Silent, 100*r.SilentRate(), causeSummary(r))
	}
	return b.String()
}

func causeSummary(r fault.Report) string {
	var parts []string
	for c := 0; c < fault.NumCauses; c++ {
		if n := r.ByCause[c]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", fault.Cause(c), n))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// Supervision renders the supervised brute-force comparison: the
// Section 4.3 restart-policy asymmetry measured against a live
// restarting victim.
func Supervision(results []attack.SupervisedResult) string {
	var b strings.Builder
	b.WriteString("Section 4.3: brute-force guessing against a supervised victim (b-bit PAC)\n")
	fmt.Fprintf(&b, "%-22s %3s %9s %8s %8s %7s %7s %11s %10s\n",
		"respawn policy", "b", "attempts", "crashes", "authkill", "stage1", "hijack", "enumerated", "downtime")
	for _, r := range results {
		fmt.Fprintf(&b, "%-22s %3d %9d %8d %8d %7d %7v %11v %10d\n",
			r.Respawn, r.PACBits, r.Attempts, r.Crashes, r.AuthKills,
			r.Stage1Passes, r.Hijacked, r.Enumerated, r.Downtime)
	}
	b.WriteString("  fork respawn: shared keys make every guess reproducible; 2^b incarnations\n")
	b.WriteString("  exhaust the corruption site (the post-mortem log localises which auth died).\n")
	b.WriteString("  exec respawn: fresh keys per restart; each guess is an independent 2^-2b shot.\n")
	return b.String()
}
