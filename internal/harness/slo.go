package harness

import (
	"fmt"
	"strings"

	"pacstack/internal/traffic"
)

// SLO renders a per-class SLO evaluation (internal/traffic.SLOReport)
// as the deterministic table pacstack-soak appends in traffic mode.
// Like the other renderers it is a pure function of the report, so
// byte-identical reports render byte-identically.
func SLO(r *traffic.SLOReport) string {
	if r == nil {
		return ""
	}
	mode := "static"
	if r.Adaptive {
		mode = "adaptive"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\nSLO evaluation (%s admission)\n", mode)
	fmt.Fprintf(&b, "%-8s %8s %6s %6s %6s %6s %6s %6s %9s %9s %6s %6s  %s\n",
		"class", "arrivals", "ok", "err", "shed", "brown", "retry", "silent", "p50", "p99", "shed%.", "err%.", "status")
	for _, c := range r.Classes {
		status := "pass"
		if !c.Pass {
			status = "FAIL: " + strings.Join(c.Violations, ", ")
		}
		fmt.Fprintf(&b, "%-8s %8d %6d %6d %6d %6d %6d %6d %9d %9d %6d %6d  %s\n",
			c.Class, c.Arrivals, c.OK, c.Detected+c.Silent+c.GaveUp, c.Sheds, c.BrownedOut, c.Retries, c.Silent,
			c.P50, c.P99, c.ShedPermille, c.ErrorPermille, status)
	}
	if st := r.Controller; st != nil {
		fmt.Fprintf(&b, "controller: limit %d (window %d..%d) | %d increase(s), %d decrease(s)\n",
			st.Limit, st.LimitMin, st.LimitMax, st.Increases, st.Decreases)
	}
	if r.Pass {
		b.WriteString("SLO: PASS — every class within its objectives\n")
	} else {
		var failed []string
		for _, c := range r.Classes {
			if !c.Pass {
				failed = append(failed, c.Class)
			}
		}
		fmt.Fprintf(&b, "SLO: FAIL — %s out of budget\n", strings.Join(failed, ", "))
	}
	return b.String()
}
