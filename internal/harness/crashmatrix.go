package harness

import (
	"fmt"
	"strings"

	"pacstack/internal/snap"
)

// CrashMatrix renders a crash-matrix campaign (internal/snap.RunMatrix)
// as the deterministic end-of-run summary cmd/pacstack-snap prints.
// Pure function of the report: byte-identical reports render
// byte-identically, so check.sh can diff two runs.
func CrashMatrix(r *snap.MatrixReport) string {
	var b strings.Builder
	b.WriteString("Crash matrix: torn commits at every protocol offset + seeded post-hoc storage faults (internal/snap)\n")
	fmt.Fprintf(&b, "scheme %s | %d seeds from %d\n", r.Scheme, r.Seeds, r.BaseSeed)

	fmt.Fprintf(&b, "\n%-6s %8s %8s %8s %12s %10s %8s %8s\n",
		"seed", "instrs", "image", "cost", "crash-points", "detected", "benign", "silent")
	for _, row := range r.Rows {
		d := row.Torn.Detected + row.BitRot.Detected + row.Truncate.Detected + row.DupRename.Detected
		bn := row.Torn.Benign + row.BitRot.Benign + row.Truncate.Benign + row.DupRename.Benign
		s := row.Torn.Silent + row.BitRot.Silent + row.Truncate.Silent + row.DupRename.Silent
		fmt.Fprintf(&b, "%-6d %8d %8d %8d %12d %10d %8d %8d\n",
			row.Seed, row.TotalInstrs, row.ImageBytes, row.CommitCost, row.CrashPoints, d, bn, s)
	}

	t := r.Totals
	fmt.Fprintf(&b, "\nper kind (runs/detected/benign/silent):\n")
	var torn, rot, trunc, dup snap.FaultTally
	for _, row := range r.Rows {
		acc := func(dst *snap.FaultTally, src snap.FaultTally) {
			dst.Runs += src.Runs
			dst.Detected += src.Detected
			dst.Benign += src.Benign
			dst.Silent += src.Silent
		}
		acc(&torn, row.Torn)
		acc(&rot, row.BitRot)
		acc(&trunc, row.Truncate)
		acc(&dup, row.DupRename)
	}
	for _, k := range []struct {
		name string
		t    snap.FaultTally
	}{{"torn-write", torn}, {"bit-rot", rot}, {"truncation", trunc}, {"dup-rename", dup}} {
		fmt.Fprintf(&b, "  %-12s %5d / %5d / %5d / %5d\n",
			k.name, k.t.Runs, k.t.Detected, k.t.Benign, k.t.Silent)
	}

	fmt.Fprintf(&b, "\ntotals: %d trials | %d detected | %d benign | %d silent\n",
		t.Runs, t.Detected, t.Benign, t.Silent)
	fmt.Fprintf(&b, "restores: %d to previous snapshot, %d to newest | replay mismatches %d | panics %d\n",
		t.RestoredPrev, t.RestoredNew, t.ReplayMismatches, t.Panics)
	if r.Clean() {
		fmt.Fprintf(&b, "clean: every injected fault was detected or provably benign; every restore replayed byte-identically\n")
	} else {
		fmt.Fprintf(&b, "NOT CLEAN: silent=%d replay-mismatches=%d panics=%d\n",
			t.Silent, t.ReplayMismatches, t.Panics)
	}
	return b.String()
}
