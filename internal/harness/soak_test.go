package harness

import (
	"context"
	"strings"
	"testing"

	"pacstack/internal/serve"
)

func TestSoakRenderDeterministic(t *testing.T) {
	cfg := serve.SoakConfig{Clients: 2, Requests: 4, Seed: 31, ChaosRate: 0.3}
	r1, err := serve.Soak(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := serve.Soak(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := Soak(r1), Soak(r2)
	if s1 != s2 {
		t.Fatalf("renders diverged:\n%s\n---\n%s", s1, s2)
	}
	if !strings.Contains(s1, "graceful: every request reached a terminal state") {
		t.Errorf("soak not graceful:\n%s", s1)
	}
	if !strings.Contains(s1, "pacstack") {
		t.Errorf("missing scheme row:\n%s", s1)
	}
}
