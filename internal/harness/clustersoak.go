package harness

import (
	"fmt"
	"strings"

	"pacstack/internal/cluster"
)

// ClusterSoak renders a cluster-soak report (internal/cluster.Soak) as
// the deterministic end-of-run summary cmd/pacstack-cluster prints.
// Like Soak, the text is a pure function of the report — check.sh
// diffs two runs of this output at different worker widths.
func ClusterSoak(r *cluster.ClusterReport) string {
	var b strings.Builder
	b.WriteString("Cluster soak: seeded virtual-time traffic against a multi-backend fleet (internal/cluster)\n")
	if r.Traffic {
		fmt.Fprintf(&b, "seed %d | workload %s | schemes %s | %d backends | traffic model (%d arrivals) | chaos %.1f%% | heal %d\n",
			r.Seed, r.Workload, strings.Join(r.Schemes, ","), r.Backends, r.Issued, 100*r.ChaosRate, r.Heal)
	} else {
		fmt.Fprintf(&b, "seed %d | workload %s | schemes %s | %d backends | %d clients x %d requests | chaos %.1f%% | heal %d\n",
			r.Seed, r.Workload, strings.Join(r.Schemes, ","), r.Backends, r.Clients, r.PerClient, 100*r.ChaosRate, r.Heal)
	}
	switch {
	case len(r.Kills) > 0:
		for _, k := range r.Kills {
			absorbed := "absorbed"
			if !k.Absorbed {
				absorbed = "NOT absorbed (budget exhausted)"
			}
			fmt.Fprintf(&b, "kill: backend %d at virtual cycle %d — %s | survivor %d | orphans %d | replayed %d | abandoned %d\n",
				k.Backend, k.At, absorbed, k.Survivor, k.Orphans, k.Replayed, k.Abandoned)
		}
	case r.KillAt > 0:
		fmt.Fprintf(&b, "kill: scheduled at virtual cycle %d (never fired)\n", r.KillAt)
	}

	fmt.Fprintf(&b, "\n%-10s %8s %8s %8s %8s %8s %8s %8s %8s %7s %7s %6s\n",
		"backend", "routed", "ok", "healed", "detected", "silent", "sheds", "denied", "replayed", "mig-in", "mig-out", "alive")
	for _, row := range r.PerBackend {
		alive := "yes"
		if !row.Alive {
			alive = "DEAD"
		}
		fmt.Fprintf(&b, "%-10d %8d %8d %8d %8d %8d %8d %8d %8d %7d %7d %6s\n",
			row.Backend, row.Routed, row.OK, row.Healed, row.Detected, row.Silent,
			row.Sheds, row.BreakerDenied, row.Replayed, row.MigratedIn, row.MigratedOut, alive)
	}

	fmt.Fprintf(&b, "\n%-26s %9s %8s %8s %8s %8s %8s\n",
		"scheme", "requests", "ok", "healed", "detected", "silent", "gave-up")
	for _, row := range r.PerScheme {
		fmt.Fprintf(&b, "%-26s %9d %8d %8d %8d %8d %8d\n",
			row.Scheme, row.Requests, row.OK, row.Healed, row.Detected, row.Silent, row.GaveUp)
	}
	fmt.Fprintf(&b, "%-26s %9d %8d %8d %8d %8d %8d\n",
		"total", r.Issued, r.OK, r.Healed, r.Detected, r.Silent, r.GaveUp)

	if r.Traffic {
		// The chaos-mesh resilience table: per-backend health as the
		// ejector saw it, plus the fleet-wide defense counters.
		fmt.Fprintf(&b, "\n%-10s %8s %9s %10s %12s %12s\n",
			"backend", "timeouts", "ejections", "last-cause", "cores", "service-p99")
		for _, row := range r.PerBackend {
			ejections, cause := 0, "-"
			if row.Ejection != nil {
				ejections, cause = row.Ejection.Ejections, row.Ejection.LastCause
			}
			cores := fmt.Sprint(row.Cores)
			if row.CoreStats != nil {
				cores = fmt.Sprintf("%d (%d..%d)", row.Cores, row.CoreStats.LimitMin, row.CoreStats.LimitMax)
			}
			fmt.Fprintf(&b, "%-10d %8d %9d %10s %12s %12d\n",
				row.Backend, row.Timeouts, ejections, cause, cores, row.ServiceP99)
		}
		fmt.Fprintf(&b, "\nhedges %d (won %d, key violations %d) | link drops %d | timeouts %d | no-backend %d\n",
			r.Hedges, r.HedgeWins, r.HedgeKeyViolations, r.LinkDrops, r.Timeouts, r.NoBackend)
		fmt.Fprintf(&b, "brownout: %d shed (max level %d) | ejections %d\n",
			r.BrownedOut, r.BrownoutMaxLevel, r.Ejections)
		if r.Budget != nil {
			fmt.Fprintf(&b, "retry budget: %d primaries, %d secondaries granted, %d denied (bound %d)\n",
				r.Budget.Primaries, r.Budget.Granted, r.Budget.Denied, r.BudgetBound)
		}
	}

	fmt.Fprintf(&b, "\ninjected faults %d | retries %d | sheds %d | breaker denied %d\n",
		r.Injected, r.Retries, r.Sheds, r.BreakerDenied)
	if r.Checkpoints > 0 || r.TornCommits > 0 || r.Restores > 0 {
		fmt.Fprintf(&b, "checkpoints %d | warm restores %d | torn commits %d\n",
			r.Checkpoints, r.Restores, r.TornCommits)
	}
	if len(r.Causes) > 0 {
		parts := make([]string, 0, len(r.Causes))
		for _, c := range r.Causes {
			parts = append(parts, fmt.Sprintf("%s:%d", c.Scheme, c.Count))
		}
		fmt.Fprintf(&b, "detections by cause: %s\n", strings.Join(parts, " "))
	}

	if r.KilledBackend >= 0 {
		fmt.Fprintf(&b, "\nfailover: orphans %d executing + %d queued | replayed %d | abandoned %d | budget charged %d\n",
			r.OrphansExecuting, r.OrphansQueued, r.Replayed, r.Abandoned, r.BudgetCharged)
		migs := r.Migrations
		if len(migs) == 0 && r.Migration != nil {
			migs = append(migs, r.Migration)
		}
		for _, m := range migs {
			fmt.Fprintf(&b, "migration: %d machine(s) backend %d -> %d, %d bytes shipped, shared-key violations %d\n",
				len(m.Machines), m.From, m.To, m.Bytes, m.SharedKeyViolations)
			for _, mm := range m.Machines {
				fmt.Fprintf(&b, "  %-16s seq %d -> %d | %5d bytes | keys re-seeded, shared=%v\n",
					mm.Scheme, mm.FromSeq, mm.ToSeq, mm.Bytes, mm.SharedKeys)
			}
		}
		if r.ReplayViolations > 0 {
			fmt.Fprintf(&b, "REPLAY VIOLATIONS: %d request(s) replayed more than once\n", r.ReplayViolations)
		}
	}

	if r.SLO != nil {
		b.WriteString(SLO(r.SLO))
	}

	fmt.Fprintf(&b, "\nvirtual cycles %d | in flight at end %d\n", r.VirtualCycles, r.InFlightAtEnd)
	if err := r.Check(); err == nil {
		fmt.Fprintf(&b, "graceful: every request reached a terminal state (%d+%d+%d+%d = %d issued), zero silent losses\n",
			r.OK, r.Detected, r.Silent, r.GaveUp, r.Issued)
	} else {
		fmt.Fprintf(&b, "FAILED: %v\n", err)
	}
	return b.String()
}
