// Package harness renders experiment results in the shape of the
// paper's tables and figures, so that cmd/pacstack-bench and
// cmd/pacstack-attack print directly comparable output and
// EXPERIMENTS.md can record paper-vs-measured side by side.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"pacstack/internal/attack"
	"pacstack/internal/compile"
	"pacstack/internal/confirm"
	"pacstack/internal/stats"
	"pacstack/internal/workload"
)

// Table1 renders the Section 6.2 violation-probability grid.
func Table1(cells []attack.Table1Cell, bits int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: maximum success probability of call-stack integrity violations (b = %d)\n", bits)
	fmt.Fprintf(&b, "%-34s %-10s %-12s %-22s\n", "Violation type", "Masking", "Expected", "Measured [95%% CI]")
	for _, c := range cells {
		mask := "no"
		if c.Masked {
			mask = "yes"
		}
		lo, hi := c.Measured.Wilson(1.96)
		fmt.Fprintf(&b, "%-34s %-10s %-12.3g %.3g [%.3g, %.3g]\n",
			c.Kind, mask, c.Expected, c.Measured.Rate(), lo, hi)
	}
	return b.String()
}

// Figure5 renders the per-benchmark overhead grid.
func Figure5(results []workload.Result) string {
	type key struct {
		bench  string
		scheme compile.Scheme
	}
	byKey := map[key]float64{}
	var benches []workload.Benchmark
	seen := map[string]bool{}
	for _, r := range results {
		byKey[key{r.Benchmark.Name, r.Scheme}] = r.Overhead
		if !seen[r.Benchmark.Name] {
			seen[r.Benchmark.Name] = true
			benches = append(benches, r.Benchmark)
		}
	}
	schemes := []compile.Scheme{
		compile.SchemeCanary, compile.SchemeBranchProtection, compile.SchemeShadowStack,
		compile.SchemePACStackNoMask, compile.SchemePACStack,
	}
	var b strings.Builder
	b.WriteString("Figure 5: run-time overhead relative to the uninstrumented baseline (%)\n")
	fmt.Fprintf(&b, "%-18s %5s", "benchmark", "lang")
	for _, s := range schemes {
		fmt.Fprintf(&b, " %12s", shortScheme(s))
	}
	b.WriteString("\n")
	for _, bench := range benches {
		fmt.Fprintf(&b, "%-18s %5s", bench.Name, bench.Lang)
		for _, s := range schemes {
			fmt.Fprintf(&b, " %11.2f%%", 100*byKey[key{bench.Name, s}])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func shortScheme(s compile.Scheme) string {
	switch s {
	case compile.SchemeCanary:
		return "canary"
	case compile.SchemeBranchProtection:
		return "branch-prot"
	case compile.SchemeShadowStack:
		return "shadowstack"
	case compile.SchemePACStackNoMask:
		return "pacs-nomask"
	case compile.SchemePACStack:
		return "pacstack"
	}
	return s.String()
}

// paperTable2 holds the published geometric means for side-by-side
// printing.
var paperTable2 = map[compile.Scheme]map[workload.Suite]float64{
	compile.SchemePACStack:         {workload.SPECrate: 0.0275, workload.SPECspeed: 0.0328},
	compile.SchemePACStackNoMask:   {workload.SPECrate: 0.0086, workload.SPECspeed: 0.0156},
	compile.SchemeShadowStack:      {workload.SPECrate: 0.0085, workload.SPECspeed: 0.0077},
	compile.SchemeBranchProtection: {workload.SPECrate: 0.0043, workload.SPECspeed: 0.0072},
	compile.SchemeCanary:           {workload.SPECrate: 0.0043, workload.SPECspeed: 0.0025},
}

// Table2 renders the geometric-mean aggregation next to the paper's
// published numbers.
func Table2(t2 map[compile.Scheme]map[workload.Suite]float64) string {
	var b strings.Builder
	b.WriteString("Table 2: geometric mean of measured overheads (paper values in parentheses)\n")
	fmt.Fprintf(&b, "%-26s %22s %22s\n", "", "SPECrate", "SPECspeed")
	order := []compile.Scheme{
		compile.SchemePACStack, compile.SchemePACStackNoMask, compile.SchemeShadowStack,
		compile.SchemeBranchProtection, compile.SchemeCanary,
	}
	for _, s := range order {
		m, ok := t2[s]
		if !ok {
			continue
		}
		p := paperTable2[s]
		fmt.Fprintf(&b, "%-26s %8.2f%% (%5.2f%%) %13.2f%% (%5.2f%%)\n",
			s,
			100*m[workload.SPECrate], 100*p[workload.SPECrate],
			100*m[workload.SPECspeed], 100*p[workload.SPECspeed])
	}
	return b.String()
}

// paperTable3 holds the published req/s figures.
var paperTable3 = map[[2]int]float64{
	{4, int(compile.SchemeNone)}:           14200,
	{4, int(compile.SchemePACStackNoMask)}: 13700,
	{4, int(compile.SchemePACStack)}:       13500,
	{8, int(compile.SchemeNone)}:           30700,
	{8, int(compile.SchemePACStackNoMask)}: 28600,
	{8, int(compile.SchemePACStack)}:       27200,
}

// Table3 renders the NGINX SSL TPS comparison.
func Table3(rows []workload.NginxResult) string {
	var b strings.Builder
	b.WriteString("Table 3: NGINX SSL transactions per second (paper values in parentheses)\n")
	fmt.Fprintf(&b, "%-10s %-26s %14s %14s %10s\n",
		"workers", "configuration", "req/s", "paper req/s", "overhead")
	for _, r := range rows {
		paper := paperTable3[[2]int{r.Workers, int(r.Scheme)}]
		fmt.Fprintf(&b, "%-10d %-26s %14.0f %14.0f %9.1f%%\n",
			r.Workers, r.Scheme, r.RequestsPerSec, paper, 100*r.OverheadVsBase)
	}
	return b.String()
}

// Reuse renders the Section 6.1 reuse-attack matrix.
func Reuse(results []attack.ReuseResult) string {
	var b strings.Builder
	b.WriteString("Section 6.1: SP-modifier reuse attack (Listing 6)\n")
	for _, r := range results {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}

// Birthday renders the harvest experiment.
func Birthday(res attack.BirthdayResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 6.2.1: token harvesting until collision (b = %d, %d trials)\n",
		res.Bits, res.Trials)
	fmt.Fprintf(&b, "  expected draws (sqrt(pi*2^b/2)): %8.1f\n", res.ExpectedDraws)
	fmt.Fprintf(&b, "  measured mean draws:             %8.1f\n", res.MeanDraws)
	fmt.Fprintf(&b, "  P[collision within expectation]: %s\n", res.CollisionProbAt)
	return b.String()
}

// BruteForce renders the Section 4.3 guessing comparison.
func BruteForce(results []attack.BruteForceResult) string {
	var b strings.Builder
	b.WriteString("Section 4.3: brute-force guessing cost (guesses to land an arbitrary jump)\n")
	fmt.Fprintf(&b, "%-44s %6s %12s %12s\n", "victim configuration", "b", "expected", "measured")
	for _, r := range results {
		fmt.Fprintf(&b, "%-44s %6d %12.0f %12.1f\n",
			r.Strategy, r.Bits, r.ExpectedGuesses, r.MeanGuesses)
	}
	return b.String()
}

// Confirm renders the compatibility matrix.
func Confirm(results []confirm.Result) string {
	tests := map[string]map[compile.Scheme]bool{}
	var names []string
	for _, r := range results {
		if tests[r.Test] == nil {
			tests[r.Test] = map[compile.Scheme]bool{}
			names = append(names, r.Test)
		}
		tests[r.Test][r.Scheme] = r.Pass
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("Section 7.3: ConFIRM compatibility suite\n")
	fmt.Fprintf(&b, "%-24s", "test")
	for _, s := range compile.Schemes {
		fmt.Fprintf(&b, " %12s", shortSchemeAll(s))
	}
	b.WriteString("\n")
	for _, n := range names {
		fmt.Fprintf(&b, "%-24s", n)
		for _, s := range compile.Schemes {
			mark := "FAIL"
			if tests[n][s] {
				mark = "pass"
			}
			fmt.Fprintf(&b, " %12s", mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func shortSchemeAll(s compile.Scheme) string {
	if s == compile.SchemeNone {
		return "baseline"
	}
	return shortScheme(s)
}

// Ablation renders the masked-collision modelling note measurement.
func Ablation(res stats.Binomial, bits, harvest int) string {
	var b strings.Builder
	b.WriteString("Modelling note: literal Listing 3 semantics vs. the Appendix A model\n")
	fmt.Fprintf(&b, "  visible masked-token collision exploitation (b=%d, %d harvested): %s\n",
		bits, harvest, res)
	b.WriteString("  (the formal model bounds the masked on-graph attack at 2^-b; see DESIGN.md)\n")
	return b.String()
}
