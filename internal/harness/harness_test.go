package harness

import (
	"strings"
	"testing"

	"pacstack/internal/attack"
	"pacstack/internal/compile"
	"pacstack/internal/confirm"
	"pacstack/internal/fault"
	"pacstack/internal/stats"
	"pacstack/internal/supervise"
	"pacstack/internal/workload"
)

func TestTable1Render(t *testing.T) {
	cells := []attack.Table1Cell{
		{Kind: attack.OnGraph, Masked: false, Expected: 1,
			Measured: stats.Binomial{Successes: 99, Trials: 100}},
		{Kind: attack.OnGraph, Masked: true, Expected: 0.0039,
			Measured: stats.Binomial{Successes: 1, Trials: 100}},
	}
	out := Table1(cells, 8)
	for _, want := range []string{"Table 1", "on-graph", "yes", "no", "0.99"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigure5AndTable2Render(t *testing.T) {
	b := workload.SPEC[0]
	results := []workload.Result{
		{Benchmark: b, Scheme: compile.SchemePACStack, Overhead: 0.08},
		{Benchmark: b, Scheme: compile.SchemeCanary, Overhead: 0.004},
	}
	out := Figure5(results)
	if !strings.Contains(out, b.Name) || !strings.Contains(out, "8.00%") {
		t.Errorf("figure 5 render:\n%s", out)
	}
	t2 := map[compile.Scheme]map[workload.Suite]float64{
		compile.SchemePACStack: {workload.SPECrate: 0.028, workload.SPECspeed: 0.031},
	}
	out = Table2(t2)
	if !strings.Contains(out, "2.80%") || !strings.Contains(out, "2.75%") {
		t.Errorf("table 2 render:\n%s", out)
	}
}

func TestTable3Render(t *testing.T) {
	rows := []workload.NginxResult{
		{Scheme: compile.SchemeNone, Workers: 4, RequestsPerSec: 14100},
		{Scheme: compile.SchemePACStack, Workers: 4, RequestsPerSec: 13100, OverheadVsBase: 0.076},
	}
	out := Table3(rows)
	if !strings.Contains(out, "14100") || !strings.Contains(out, "14200") {
		t.Errorf("table 3 render:\n%s", out)
	}
}

func TestAttackRenders(t *testing.T) {
	if out := Reuse([]attack.ReuseResult{{Scheme: compile.SchemePACStack}}); !strings.Contains(out, "PACStack") {
		t.Error("reuse render")
	}
	res := attack.BirthdayResult{Bits: 16, ExpectedDraws: 320.9, MeanDraws: 318, Trials: 10}
	if out := Birthday(res); !strings.Contains(out, "320.9") {
		t.Error("birthday render")
	}
	bf := []attack.BruteForceResult{{Strategy: attack.ForkedSiblings, Bits: 6, ExpectedGuesses: 64, MeanGuesses: 66.1}}
	if out := BruteForce(bf); !strings.Contains(out, "66.1") {
		t.Error("bruteforce render")
	}
	if out := Ablation(stats.Binomial{Successes: 9, Trials: 10}, 8, 96); !strings.Contains(out, "Listing 3") {
		t.Error("ablation render")
	}
}

func TestConfirmRender(t *testing.T) {
	results := []confirm.Result{
		{Test: "tail-call", Scheme: compile.SchemeNone, Pass: true},
		{Test: "tail-call", Scheme: compile.SchemePACStack, Pass: true},
		{Test: "callback", Scheme: compile.SchemePACStack, Pass: false},
	}
	out := Confirm(results)
	if !strings.Contains(out, "tail-call") || !strings.Contains(out, "FAIL") || !strings.Contains(out, "pass") {
		t.Errorf("confirm render:\n%s", out)
	}
}

func TestDetectionCoverageRender(t *testing.T) {
	reports := []fault.Report{
		{Scheme: compile.SchemeNone, Kind: fault.KindRetAddr, Trials: 10, Detected: 2, Benign: 3, Silent: 5},
		{Scheme: compile.SchemePACStack, Kind: fault.KindRetAddr, Trials: 10, Detected: 9, Benign: 1,
			ByCause: func() (bc [fault.NumCauses]int) { bc[fault.CauseAuth] = 9; return }()},
	}
	out := DetectionCoverage(reports)
	for _, want := range []string{"return-address overwrite", "silent", "auth:9", "50.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("coverage table missing %q:\n%s", want, out)
		}
	}
}

func TestSupervisionRender(t *testing.T) {
	out := Supervision([]attack.SupervisedResult{{
		Respawn: supervise.RespawnFork, PACBits: 3, Attempts: 8,
		Crashes: 7, AuthKills: 7, Enumerated: true, Downtime: 1234,
	}})
	for _, want := range []string{"fork (shared keys)", "Section 4.3", "1234"} {
		if !strings.Contains(out, want) {
			t.Errorf("supervision table missing %q:\n%s", want, out)
		}
	}
}
