package snap_test

import (
	"bytes"
	"testing"

	"pacstack/internal/compile"
	"pacstack/internal/fault"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
	"pacstack/internal/snap"
)

// bootTemplate boots and hardens one pristine chain victim and
// returns it with its image.
func bootTemplate(t *testing.T, seed int64) (*compile.Image, *kernel.Process) {
	t.Helper()
	eng := fault.NewEngine(fault.DefaultProgram())
	img, err := eng.Image(compile.SchemePACStack)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(pa.DefaultConfig())
	k.Seed(seed)
	p, err := img.Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	fault.Harden(compile.SchemePACStack, p)
	return img, p
}

// TestBootImageRestoreAliasing is the decode-aliasing regression: many
// machines restored from ONE shared in-memory boot image must be fully
// isolated — mutating one restored machine (its stack, globals, shadow
// stack, output buffer) must not perturb a later restore's golden
// replay, and must not corrupt the shared image itself.
func TestBootImageRestoreAliasing(t *testing.T) {
	img, tpl := bootTemplate(t, 7)
	bi, err := snap.EncodeBootImage(tpl, img.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := bi.VerifyProgram(img.Prog); err != nil {
		t.Fatal(err)
	}

	eng := fault.NewEngine(fault.DefaultProgram())
	goldenOut, goldenExit, _, err := eng.Golden(compile.SchemePACStack)
	if err != nil {
		t.Fatal(err)
	}

	boot := func(seed int64) *kernel.Process {
		k := kernel.New(pa.DefaultConfig())
		k.Seed(seed)
		p, err := img.Boot(k)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Restore machine A and vandalize every writable region it has,
	// plus its kernel-side output buffer.
	a := boot(11)
	if err := bi.Restore(a); err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0xa5}, 4096)
	l := img.Layout
	for off := uint64(0); off < l.StackSize; off += uint64(len(junk)) {
		if err := a.Mem.WriteBytes(l.StackBase+off, junk); err != nil {
			t.Fatalf("smashing restored stack: %v", err)
		}
	}
	for off := uint64(0); off < l.ShadowSize; off += uint64(len(junk)) {
		if err := a.Mem.WriteBytes(l.ShadowBase+off, junk); err != nil {
			t.Fatalf("smashing restored shadow stack: %v", err)
		}
	}
	if err := a.Mem.WriteBytes(l.GlobalsBase, junk); err != nil {
		t.Fatalf("smashing restored globals: %v", err)
	}
	a.Output = append(a.Output, []byte("tainted")...)

	// Replay machine B from the same shared image: it must be golden.
	for i, seed := range []int64{23, 29} {
		b := boot(seed)
		if err := bi.Restore(b); err != nil {
			t.Fatal(err)
		}
		if err := b.Run(1 << 20); err != nil {
			t.Fatalf("restore %d after mutation: replay killed: %v (kill=%v)", i, err, b.Kill)
		}
		if string(b.Output) != string(goldenOut) || b.ExitCode != goldenExit {
			t.Fatalf("restore %d after mutation diverged: output %q exit %d, golden %q exit %d",
				i, b.Output, b.ExitCode, goldenOut, goldenExit)
		}
		// Mutate this one too, so the next iteration re-proves isolation
		// against a second vandalized sibling.
		if err := b.Mem.WriteBytes(l.StackBase, junk); err != nil {
			t.Fatal(err)
		}
	}

	// The raw image bytes must be unscathed: a fresh decode of Bytes()
	// still restores and replays golden.
	bi2, err := snap.NewBootImage(bi.Bytes())
	if err != nil {
		t.Fatalf("image bytes corrupted by restores: %v", err)
	}
	c := boot(31)
	if err := bi2.Restore(c); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1 << 20); err != nil {
		t.Fatalf("re-decoded image replay killed: %v", err)
	}
	if string(c.Output) != string(goldenOut) || c.ExitCode != goldenExit {
		t.Fatalf("re-decoded image replay diverged: output %q exit %d", c.Output, c.ExitCode)
	}
}

// TestBootImageKeys pins that the image exposes the checkpointed key
// set: a process restored from the image authenticates pointers sealed
// under bi.Keys(), which is exactly the §4.3 hazard the pool's
// per-reset probe (and ReseedKeys) exists to eliminate.
func TestBootImageKeys(t *testing.T) {
	img, tpl := bootTemplate(t, 7)
	bi, err := snap.EncodeBootImage(tpl, img.Prog)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(pa.DefaultConfig())
	k.Seed(13)
	p, err := img.Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	if err := bi.Restore(p); err != nil {
		t.Fatal(err)
	}
	imgAuth := pa.New(bi.Keys(), kernel.New(pa.DefaultConfig()).Config())
	sealed := imgAuth.AddPAC(pa.KeyIA, 0x10040, 0xfeed)
	if _, ok := p.Auth.Auth(pa.KeyIA, sealed, 0xfeed); !ok {
		t.Fatal("restored process does not carry the image keys (Restore contract changed?)")
	}
	p.ReseedKeys()
	if _, ok := p.Auth.Auth(pa.KeyIA, sealed, 0xfeed); ok {
		t.Fatal("ReseedKeys left the image keys live — §4.3 freshness broken")
	}
}
