// The storage layer under the snapshot store. FS is the narrow
// filesystem contract the commit protocol needs; MemFS is the
// deterministic in-memory implementation the fault injector and the
// crash matrix drive (a crash is a byte budget: ops apply until the
// budget runs out, the op in flight lands torn, everything after
// fails); DirFS is the real thing for the daemon's on-disk stores.

package snap

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the filesystem surface the store commits through. Every
// mutation the commit protocol performs is one call, so a fault
// injector wrapping an FS sees — and can tear — each durability step
// individually.
type FS interface {
	// WriteFile creates or truncates name with data (the write-temp
	// step; not yet durable until Sync).
	WriteFile(name string, data []byte) error
	// Append appends data to name, creating it if needed (the journal
	// step).
	Append(name string, data []byte) error
	// Sync makes name's content durable.
	Sync(name string) error
	// SyncDir makes directory metadata (renames, creations) durable.
	SyncDir() error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	ReadFile(name string) ([]byte, error)
	// List returns all file names, sorted.
	List() ([]string, error)
	Remove(name string) error
}

// ErrCrashed is returned by a MemFS whose crash budget ran out: the
// simulated machine died mid-commit. The bytes written before the
// crash point are durable (possibly torn); everything after never
// happened. Heal revives the storage for recovery — disks survive the
// machines attached to them.
var ErrCrashed = errors.New("snap: simulated crash during storage operation")

// Op costs for the crash budget, in budget units. Data-carrying ops
// cost one unit per byte (a torn write can stop at any byte offset);
// metadata ops cost one unit each (they either happened or did not).
const (
	costRename  = 1
	costSync    = 1
	costSyncDir = 1
)

// MemFS is a deterministic in-memory FS with a crash budget. The zero
// budget state (-1) is "never crash".
type MemFS struct {
	mu      sync.Mutex
	files   map[string][]byte
	budget  int64 // -1: unlimited
	crashed bool
	spent   int64 // cumulative budget units applied, for cost measurement
}

// NewMemFS returns an empty in-memory filesystem with no crash armed.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte), budget: -1}
}

// Clone returns a deep copy, including the crash state.
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &MemFS{files: make(map[string][]byte, len(m.files)), budget: m.budget, crashed: m.crashed}
	for k, v := range m.files {
		c.files[k] = append([]byte(nil), v...)
	}
	return c
}

// Crash arms a byte budget: subsequent ops consume it and the op that
// exhausts it applies partially (a torn write) and fails with
// ErrCrashed, as does everything after. Crash(0) fails the very next
// op with nothing applied.
func (m *MemFS) Crash(budget int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.budget = budget
	m.crashed = false
}

// Heal clears the crash state: storage is intact (torn bytes and all)
// and fully operational again — the recovery-after-reboot view.
func (m *MemFS) Heal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.budget = -1
	m.crashed = false
}

// Crashed reports whether an armed crash has fired.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Spent returns the cumulative budget units applied so far; the
// crash matrix measures a commit's total cost by diffing it across a
// dry run, so the crash-point enumeration never hardcodes the
// protocol's op sequence.
func (m *MemFS) Spent() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spent
}

// spend consumes cost units of the crash budget; it returns how many
// units of the current op may still be applied, and whether the op
// survives whole. Callers hold m.mu.
func (m *MemFS) spend(cost int64) (applied int64, ok bool) {
	if m.crashed {
		return 0, false
	}
	if m.budget < 0 {
		m.spent += cost
		return cost, true
	}
	if cost <= m.budget {
		m.budget -= cost
		m.spent += cost
		return cost, true
	}
	applied = m.budget
	m.budget = 0
	m.crashed = true
	m.spent += applied
	return applied, false
}

func (m *MemFS) WriteFile(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	applied, ok := m.spend(int64(len(data)))
	if !ok {
		// Torn write: the file exists with a prefix of the data. A
		// create-then-crash at offset 0 leaves an empty file — the
		// metadata op (creation) precedes the data in this model, which
		// is the more adversarial of the two orders.
		m.files[name] = append([]byte(nil), data[:applied]...)
		return ErrCrashed
	}
	m.files[name] = append([]byte(nil), data...)
	return nil
}

func (m *MemFS) Append(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	applied, ok := m.spend(int64(len(data)))
	old := m.files[name]
	if !ok {
		m.files[name] = append(append([]byte(nil), old...), data[:applied]...)
		return ErrCrashed
	}
	m.files[name] = append(append([]byte(nil), old...), data...)
	return nil
}

func (m *MemFS) Sync(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.spend(costSync); !ok {
		return ErrCrashed
	}
	return nil
}

func (m *MemFS) SyncDir() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.spend(costSyncDir); !ok {
		return ErrCrashed
	}
	return nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.spend(costRename); !ok {
		return ErrCrashed
	}
	data, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("snap: rename %s: %w", oldname, os.ErrNotExist)
	}
	m.files[newname] = data
	delete(m.files, oldname)
	return nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("snap: read %s: %w", name, os.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

// corrupt applies a post-hoc storage fault directly to a stored file,
// bypassing the budget: the injector's bit-rot and truncation faults.
func (m *MemFS) corrupt(name string, f func([]byte) []byte) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return false
	}
	m.files[name] = f(append([]byte(nil), data...))
	return true
}

// plant writes a file directly, bypassing the budget: the injector's
// duplicate-rename leftovers.
func (m *MemFS) plant(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), data...)
}

// DirFS is the os-backed FS rooted at a directory, used by the
// daemon for durable on-disk checkpoint stores. Its Sync calls are
// real fsyncs: the commit protocol's durability points hold on actual
// storage, not just in the simulator.
type DirFS struct{ root string }

// NewDirFS returns a DirFS rooted at dir, creating it if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirFS{root: dir}, nil
}

func (d *DirFS) path(name string) string { return filepath.Join(d.root, filepath.Base(name)) }

func (d *DirFS) WriteFile(name string, data []byte) error {
	return os.WriteFile(d.path(name), data, 0o644)
}

func (d *DirFS) Append(name string, data []byte) error {
	f, err := os.OpenFile(d.path(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (d *DirFS) Sync(name string) error {
	f, err := os.Open(d.path(name))
	if err != nil {
		return err
	}
	err = f.Sync()
	cerr := f.Close()
	if err != nil {
		return err
	}
	return cerr
}

func (d *DirFS) SyncDir() error {
	f, err := os.Open(d.root)
	if err != nil {
		return err
	}
	err = f.Sync()
	cerr := f.Close()
	if err != nil {
		return err
	}
	return cerr
}

func (d *DirFS) Rename(oldname, newname string) error {
	return os.Rename(d.path(oldname), d.path(newname))
}

func (d *DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(d.path(name))
}

func (d *DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.root)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d *DirFS) Remove(name string) error {
	return os.Remove(d.path(name))
}
