// The seeded storage-fault injector. Torn writes are modelled by the
// MemFS crash budget (they happen *during* a commit); the faults here
// are post-hoc damage to bytes already at rest — bit rot, truncation,
// and the debris of a duplicate-rename race. Every fault is drawn from
// a seeded rng, so a campaign replays exactly and its report can be
// diffed byte-for-byte across runs.

package snap

import (
	"fmt"
	mrand "math/rand"
	"strings"
)

// Fault kind names, used in reports. They form the storage-side
// counterpart of internal/fault's corruption kinds.
const (
	FaultTornWrite = "torn-write"
	FaultBitRot    = "bit-rot"
	FaultTruncate  = "truncation"
	FaultDupRename = "duplicate-rename"
)

// InjectedFault describes one applied fault, precisely enough to
// reproduce it by hand.
type InjectedFault struct {
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Offset int64  `json:"offset,omitempty"`
	Bit    int    `json:"bit,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Injector applies seeded post-hoc faults to a MemFS-backed store.
type Injector struct {
	fs  *MemFS
	rng *mrand.Rand
}

// NewInjector returns an injector over fs drawing from seed.
func NewInjector(fs *MemFS, seed int64) *Injector {
	return &Injector{fs: fs, rng: mrand.New(mrand.NewSource(seed))}
}

// targets lists the store files worth damaging (snapshots and the
// journal), sorted so rng draws are stable.
func (in *Injector) targets() []string {
	names, _ := in.fs.List()
	var out []string
	for _, n := range names {
		if n == journalName || strings.HasPrefix(n, snapPrefix) {
			out = append(out, n)
		}
	}
	return out
}

// pick returns a seeded non-empty target, or "" if none exists.
func (in *Injector) pick() string {
	var nonEmpty []string
	for _, n := range in.targets() {
		if data, err := in.fs.ReadFile(n); err == nil && len(data) > 0 {
			nonEmpty = append(nonEmpty, n)
		}
	}
	if len(nonEmpty) == 0 {
		return ""
	}
	return nonEmpty[in.rng.Intn(len(nonEmpty))]
}

// BitRot flips one seeded bit in one stored file. Every stored byte is
// under a checksum (image trailer or journal record CRC), so a single
// flipped bit anywhere must surface as a detection.
func (in *Injector) BitRot() (InjectedFault, bool) {
	name := in.pick()
	if name == "" {
		return InjectedFault{}, false
	}
	var off int64
	var bit int
	in.fs.corrupt(name, func(data []byte) []byte {
		off = int64(in.rng.Intn(len(data)))
		bit = in.rng.Intn(8)
		data[off] ^= 1 << bit
		return data
	})
	return InjectedFault{Kind: FaultBitRot, Name: name, Offset: off, Bit: bit}, true
}

// Truncate cuts one stored file at a seeded offset strictly inside it
// — lost tail, the classic symptom of an unsynced write that never
// reached the platter.
func (in *Injector) Truncate() (InjectedFault, bool) {
	name := in.pick()
	if name == "" {
		return InjectedFault{}, false
	}
	var off int64
	in.fs.corrupt(name, func(data []byte) []byte {
		off = int64(in.rng.Intn(len(data)))
		return data[:off]
	})
	return InjectedFault{Kind: FaultTruncate, Name: name, Offset: off}, true
}

// DupRename plants the debris of a duplicate-rename race. Two
// variants, seeded: a leftover write-temp from the racer that lost
// (recovery must sweep and report it), or — the nastier one — the
// newest snapshot name holding an *older* image's bytes because the
// wrong temp won the rename. The second variant produces a file that
// is internally self-consistent (valid magic, valid checksum), so
// only the journal cross-check can catch it.
func (in *Injector) DupRename() (InjectedFault, bool) {
	var snaps []string
	for _, n := range in.targets() {
		if n != journalName {
			snaps = append(snaps, n)
		}
	}
	if len(snaps) == 0 {
		return InjectedFault{}, false
	}
	newest := snaps[len(snaps)-1] // List is sorted; zero-padded names order by seq
	seq, _ := parseSnapName(newest)
	if len(snaps) >= 2 && in.rng.Intn(2) == 0 {
		older := snaps[len(snaps)-2]
		data, err := in.fs.ReadFile(older)
		if err != nil {
			return InjectedFault{}, false
		}
		in.fs.plant(newest, data)
		return InjectedFault{
			Kind: FaultDupRename, Name: newest,
			Detail: fmt.Sprintf("wrong rename winner: %s now holds the bytes of %s", newest, older),
		}, true
	}
	data, err := in.fs.ReadFile(newest)
	if err != nil {
		return InjectedFault{}, false
	}
	in.fs.plant(tmpName(seq+1), data)
	return InjectedFault{
		Kind: FaultDupRename, Name: tmpName(seq + 1),
		Detail: "leftover write-temp from the losing racer",
	}, true
}
