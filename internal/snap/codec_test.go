package snap

import (
	"bytes"
	"errors"
	"hash/crc64"
	"testing"

	"pacstack/internal/compile"
	"pacstack/internal/cpu"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
)

// bootVictim boots the built-in matrix victim under full PACStack
// with a seeded kernel and runs it partway, so checkpoints carry a
// live authenticated chain, dirty pages and nonzero counters.
func bootVictim(t testing.TB, seed int64, instrs uint64) (*kernel.Process, *compile.Image) {
	t.Helper()
	img, err := compile.Compile(matrixProgram(), compile.SchemePACStack, compile.DefaultLayout())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	k := kernel.New(pa.DefaultConfig())
	k.Seed(seed)
	p, err := img.Boot(k)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	p.FullFrameSigreturn = true
	if err := p.Run(instrs); !errors.Is(err, cpu.ErrStepLimit) {
		t.Fatalf("run: got %v, want step limit", err)
	}
	return p, img
}

func TestCodecRoundTrip(t *testing.T) {
	p, img := bootVictim(t, 7, 500)
	cp := p.Checkpoint()
	enc, err := Encode(cp, img.Prog)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, meta, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	progCRC, err := ProgramCRC(img.Prog)
	if err != nil {
		t.Fatalf("program crc: %v", err)
	}
	if meta.ProgCRC != progCRC || meta.ProgBase != img.Prog.Base {
		t.Errorf("meta = %+v, want base %#x crc %#x", meta, img.Prog.Base, progCRC)
	}
	// Re-encoding the decoded checkpoint must be byte-identical: the
	// encoding is canonical, which the crash matrix's replay-identity
	// check leans on.
	re, err := Encode(dec, img.Prog)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(enc, re) {
		t.Errorf("re-encoded image differs: %d vs %d bytes", len(enc), len(re))
	}
	if dec.Keys != cp.Keys {
		t.Errorf("keys did not round-trip")
	}
	if len(dec.Tasks) != len(cp.Tasks) {
		t.Fatalf("tasks = %d, want %d", len(dec.Tasks), len(cp.Tasks))
	}
	if dec.Tasks[0].M != cp.Tasks[0].M {
		t.Errorf("task 0 machine state did not round-trip")
	}
}

func TestRestoreReplaysIdentically(t *testing.T) {
	p, img := bootVictim(t, 11, 400)
	enc, err := Encode(p.Checkpoint(), img.Prog)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Golden: the original process runs to completion.
	if err := p.Run(1 << 22); err != nil {
		t.Fatalf("golden run: %v", err)
	}
	golden, err := Encode(p.Checkpoint(), img.Prog)
	if err != nil {
		t.Fatalf("golden encode: %v", err)
	}

	// Restored: a fresh boot overwritten with the checkpoint must
	// replay to the same final bytes.
	cp, _, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	k := kernel.New(pa.DefaultConfig())
	k.Seed(999) // different boot entropy: Restore must overwrite all of it
	q, err := img.Boot(k)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	q.FullFrameSigreturn = true
	if err := q.Restore(cp); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := q.Run(1 << 22); err != nil {
		t.Fatalf("restored run: %v", err)
	}
	got, err := Encode(q.Checkpoint(), img.Prog)
	if err != nil {
		t.Fatalf("restored encode: %v", err)
	}
	if !bytes.Equal(got, golden) {
		t.Errorf("restored run diverged from uninterrupted run (%d vs %d bytes)", len(got), len(golden))
	}
	if string(q.Output) != string(p.Output) {
		t.Errorf("output diverged: %q vs %q", q.Output, p.Output)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p, img := bootVictim(t, 13, 300)
	enc, err := Encode(p.Checkpoint(), img.Prog)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Every single-bit flip anywhere in the image must be detected:
	// the image is fully covered by the trailing CRC.
	for off := 0; off < len(enc); off += 41 { // stride keeps the test fast; offset 0 and the trailer are covered
		for bit := 0; bit < 8; bit += 3 {
			mut := append([]byte(nil), enc...)
			mut[off] ^= 1 << bit
			if _, _, err := Decode(mut); err == nil {
				t.Fatalf("flip at byte %d bit %d decoded as valid", off, bit)
			}
		}
	}
	// Truncation at any length must be detected.
	for n := 0; n < len(enc); n += 97 {
		if _, _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded as valid", n)
		}
	}
	// Unknown version must be refused, not misparsed.
	mut := append([]byte(nil), enc...)
	mut[4] = 0xFF
	if _, _, err := Decode(mut); err == nil {
		t.Fatalf("bad version decoded as valid")
	}
}

// FuzzRestore feeds mutated snapshot bytes into the decoder. The
// decoder sits on the recovery path of a crashed supervisor, so it
// must fail-stop on arbitrary garbage: never panic, and never report
// valid for an image whose checksum does not hold.
func FuzzRestore(f *testing.F) {
	p, img := bootVictim(f, 17, 350)
	enc, err := Encode(p.Checkpoint(), img.Prog)
	if err != nil {
		f.Fatalf("encode: %v", err)
	}
	f.Add(enc)                            // a real checkpoint image
	f.Add(enc[:len(enc)/2])               // torn mid-payload
	f.Add(enc[:headerSize])               // header only
	f.Add([]byte("PSNP"))                 // bare magic
	f.Add(encodeRec(1, 100, 0xdeadbeef))  // a journal record is not an image
	f.Add(bytes.Repeat([]byte{0xFF}, 64)) // noise

	f.Fuzz(func(t *testing.T, img []byte) {
		cp, _, err := Decode(img) // must not panic
		if err != nil {
			return
		}
		// Decode said valid: the stored checksum must actually hold
		// over the image bytes, and the checkpoint must be structurally
		// usable (re-encodable).
		stored, ok := ImageCRC(img)
		if !ok {
			t.Fatalf("decoded valid but image too short for a checksum")
		}
		if computed := crc64.Checksum(img[:len(img)-crcSize], crcTable); stored != computed {
			t.Fatalf("decoded valid with checksum mismatch: stored %#x computed %#x", stored, computed)
		}
		if cp == nil || len(cp.Tasks) == 0 && !cp.Exited && cp.Kill == nil {
			t.Fatalf("decoded valid but checkpoint is vacuous: %+v", cp)
		}
	})
}
