// Package snap is the crash-consistent checkpoint/restore subsystem:
// a versioned, checksummed codec for full machine state
// (kernel.Checkpoint), an append-only journal, and a snapshot store
// whose commit protocol — write-temp, fsync, rename, fsync, journal
// append, fsync — guarantees that a crash at any byte offset leaves
// either the previous snapshot or the new one durable, never a torn
// hybrid that restores.
//
// The package carries its own adversary: a seeded storage-fault
// injector (torn writes at arbitrary offsets, bit rot, truncation,
// duplicate-rename races) layered over the store's filesystem, and a
// recovery routine that classifies every snapshot it finds as valid,
// corrupt-detected or stale and always restores the newest valid one.
// Outcomes follow the same detected / benign / silent taxonomy as the
// runtime fault engine (internal/fault): a fault that recovery
// reports is detected, a crash that left no durable trace is benign,
// and a fault that alters what restores without being reported is
// silent — the class the crash matrix (CrashMatrix) drives to zero.
package snap

import (
	"errors"
	"fmt"
	"hash/crc64"

	"pacstack/internal/isa"
	"pacstack/internal/kernel"
	"pacstack/internal/mem"
	"pacstack/internal/qarma"
)

// Image format, all little-endian:
//
//	[0:4)   magic "PSNP"
//	[4:8)   version (1)
//	[8:16)  payload length
//	[16:16+len) payload (field stream, see encode)
//	[16+len:24+len) CRC-64/ECMA over everything before it
//
// The trailing CRC covers header and payload, so any torn write,
// truncation or bit rot anywhere in the file fails verification.
const (
	imageMagic   = "PSNP"
	imageVersion = 1
	headerSize   = 16
	crcSize      = 8
)

// Decode limits: a hostile or corrupt image must not be able to make
// the decoder allocate unboundedly before the checksum is even
// checked (the checksum is verified first, but the limits also bound
// structurally absurd images that collide on CRC by chance).
const (
	maxTasks   = 1 << 12
	maxPages   = 1 << 20
	maxSigRefs = 1 << 16
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// ErrCorrupt is the root of every decode failure: wrong magic,
// truncation, checksum mismatch, or malformed structure. Recovery
// classifies any image whose decode error wraps ErrCorrupt as
// corrupt-detected.
var ErrCorrupt = errors.New("snap: corrupt snapshot image")

// ErrVersion reports an image from a different format version —
// detected, but distinguishable from damage.
var ErrVersion = fmt.Errorf("%w: unsupported version", ErrCorrupt)

// Encode serializes a checkpoint into a self-checking image. prog is
// the program the checkpointed process executes; its encoded-text
// checksum is embedded so Restore can refuse a snapshot taken under a
// different binary.
func Encode(cp *kernel.Checkpoint, prog *isa.Program) ([]byte, error) {
	progCRC, err := ProgramCRC(prog)
	if err != nil {
		return nil, err
	}
	w := &writer{}
	w.u64(uint64(int64(cp.PID)))
	w.u64(uint64(int64(cp.NextPID)))
	w.u64(uint64(int64(cp.NextTID)))
	for _, k := range cp.Keys {
		w.u64(k.W0)
		w.u64(k.K0)
	}
	w.u64(cp.Keys.Fingerprint())
	w.u64(uint64(int64(cp.Config.VASize)))
	w.bool(cp.Config.Tagging)
	w.u64(uint64(int64(cp.Config.Rounds)))
	w.u64(uint64(int64(cp.Config.Sbox)))
	w.u64(prog.Base)
	w.u64(progCRC)
	w.bytes(cp.Output)
	w.bool(cp.Exited)
	w.u64(cp.ExitCode)
	w.bool(cp.HardenedSigreturn)
	w.bool(cp.FullFrameSigreturn)
	w.bool(cp.Kill != nil)
	if cp.Kill != nil {
		w.u64(uint64(int64(cp.Kill.TaskID)))
		w.u64(cp.Kill.PC)
		w.bytes([]byte(cp.Kill.Symbol))
		w.bytes([]byte(cp.Kill.Cause))
	}
	w.u64(uint64(len(cp.Tasks)))
	for _, t := range cp.Tasks {
		w.u64(uint64(int64(t.ID)))
		for _, r := range t.M.Regs {
			w.u64(r)
		}
		w.u64(t.M.PC)
		w.bool(t.M.N)
		w.bool(t.M.Z)
		w.bool(t.M.C)
		w.bool(t.M.V)
		w.u64(t.M.Cycles)
		w.u64(t.M.Instrs)
		w.bool(t.M.Halted)
		w.u64(t.M.ExitCode)
		w.bool(t.Done)
		w.u64(uint64(len(t.SigRefs)))
		for _, r := range t.SigRefs {
			w.u64(r)
		}
	}
	w.u64(uint64(len(cp.Pages)))
	for _, pg := range cp.Pages {
		w.u64(pg.Addr)
		w.u64(uint64(pg.Perm))
		// Trailing zeros are trimmed: stacks and fresh heaps are mostly
		// zero pages, and the decoder zero-extends back to PageSize.
		data := pg.Data
		for len(data) > 0 && data[len(data)-1] == 0 {
			data = data[:len(data)-1]
		}
		w.bytes(data)
	}

	payload := w.buf
	img := make([]byte, 0, headerSize+len(payload)+crcSize)
	img = append(img, imageMagic...)
	img = appendU32(img, imageVersion)
	img = appendU64(img, uint64(len(payload)))
	img = append(img, payload...)
	img = appendU64(img, crc64.Checksum(img, crcTable))
	return img, nil
}

// Decode parses and verifies an image. It never panics on arbitrary
// input; every failure wraps ErrCorrupt. On success the returned
// checkpoint is structurally valid (page alignment, W⊕X, register
// counts) and the embedded key fingerprint has been re-verified
// against the key material.
func Decode(img []byte) (*kernel.Checkpoint, *ImageMeta, error) {
	if len(img) < headerSize+crcSize {
		return nil, nil, fmt.Errorf("%w: %d bytes is shorter than the fixed framing", ErrCorrupt, len(img))
	}
	if string(img[:4]) != imageMagic {
		return nil, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, img[:4])
	}
	if v := readU32(img[4:]); v != imageVersion {
		return nil, nil, fmt.Errorf("%w %d", ErrVersion, v)
	}
	plen := readU64(img[8:])
	if plen != uint64(len(img)-headerSize-crcSize) {
		return nil, nil, fmt.Errorf("%w: payload length %d does not match file size %d", ErrCorrupt, plen, len(img))
	}
	body := img[:len(img)-crcSize]
	if got, want := crc64.Checksum(body, crcTable), readU64(img[len(img)-crcSize:]); got != want {
		return nil, nil, fmt.Errorf("%w: checksum mismatch (stored %#x, computed %#x)", ErrCorrupt, want, got)
	}

	r := &reader{buf: img[headerSize : headerSize+int(plen)]}
	cp := &kernel.Checkpoint{}
	meta := &ImageMeta{}
	cp.PID = int(int64(r.u64()))
	cp.NextPID = int(int64(r.u64()))
	cp.NextTID = int(int64(r.u64()))
	for i := range cp.Keys {
		cp.Keys[i].W0 = r.u64()
		cp.Keys[i].K0 = r.u64()
	}
	fp := r.u64()
	cp.Config.VASize = int(int64(r.u64()))
	cp.Config.Tagging = r.bool()
	cp.Config.Rounds = int(int64(r.u64()))
	cp.Config.Sbox = qarma.Sigma(int64(r.u64()))
	meta.ProgBase = r.u64()
	meta.ProgCRC = r.u64()
	cp.Output = r.bytes(1 << 24)
	cp.Exited = r.bool()
	cp.ExitCode = r.u64()
	cp.HardenedSigreturn = r.bool()
	cp.FullFrameSigreturn = r.bool()
	if r.bool() {
		k := &kernel.KillCheckpoint{}
		k.TaskID = int(int64(r.u64()))
		k.PC = r.u64()
		k.Symbol = string(r.bytes(1 << 16))
		k.Cause = string(r.bytes(1 << 16))
		cp.Kill = k
	}
	nTasks := r.u64()
	if nTasks > maxTasks {
		r.fail(fmt.Sprintf("task count %d exceeds limit", nTasks))
	}
	for i := uint64(0); i < nTasks && r.err == nil; i++ {
		var t kernel.TaskCheckpoint
		t.ID = int(int64(r.u64()))
		for j := range t.M.Regs {
			t.M.Regs[j] = r.u64()
		}
		t.M.PC = r.u64()
		t.M.N = r.bool()
		t.M.Z = r.bool()
		t.M.C = r.bool()
		t.M.V = r.bool()
		t.M.Cycles = r.u64()
		t.M.Instrs = r.u64()
		t.M.Halted = r.bool()
		t.M.ExitCode = r.u64()
		t.Done = r.bool()
		nRefs := r.u64()
		if nRefs > maxSigRefs {
			r.fail(fmt.Sprintf("sigref count %d exceeds limit", nRefs))
			break
		}
		for j := uint64(0); j < nRefs && r.err == nil; j++ {
			t.SigRefs = append(t.SigRefs, r.u64())
		}
		cp.Tasks = append(cp.Tasks, t)
	}
	nPages := r.u64()
	if nPages > maxPages {
		r.fail(fmt.Sprintf("page count %d exceeds limit", nPages))
	}
	for i := uint64(0); i < nPages && r.err == nil; i++ {
		var pg mem.PageState
		pg.Addr = r.u64()
		pg.Perm = mem.Perm(r.u64())
		pg.Data = r.bytes(mem.PageSize)
		cp.Pages = append(cp.Pages, pg)
	}
	if r.err == nil && len(r.buf) != r.off {
		r.fail(fmt.Sprintf("%d trailing payload bytes", len(r.buf)-r.off))
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	if got := cp.Keys.Fingerprint(); got != fp {
		return nil, nil, fmt.Errorf("%w: key fingerprint mismatch (stored %#x, computed %#x)", ErrCorrupt, fp, got)
	}
	// Structural validation via a trial address-space reconstruction,
	// so a checksum-colliding or hand-built image still cannot smuggle
	// a W⊕X violation or overlapping pages past Restore.
	if _, err := mem.FromPages(cp.Pages); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return cp, meta, nil
}

// ImageMeta is the image-level metadata stored alongside the
// checkpoint: which program the state belongs to.
type ImageMeta struct {
	ProgBase uint64
	ProgCRC  uint64
}

// ProgramCRC returns the CRC-64 of the program's encoded text
// segment, the binding between a snapshot and the binary that can
// resume it.
func ProgramCRC(prog *isa.Program) (uint64, error) {
	text, err := isa.EncodeProgram(prog)
	if err != nil {
		return 0, fmt.Errorf("snap: encoding program text: %w", err)
	}
	return crc64.Checksum(text, crcTable), nil
}

// ImageCRC returns the stored trailing checksum of an encoded image,
// used by the journal to cross-check the snapshot file it names.
func ImageCRC(img []byte) (uint64, bool) {
	if len(img) < headerSize+crcSize {
		return 0, false
	}
	return readU64(img[len(img)-crcSize:]), true
}

// writer is a minimal deterministic field stream.
type writer struct{ buf []byte }

func (w *writer) u64(v uint64) { w.buf = appendU64(w.buf, v) }
func (w *writer) bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}
func (w *writer) bytes(b []byte) {
	w.u64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// reader is the bounds-checked inverse. After the first failure every
// further read returns zero values, so decode loops terminate without
// panicking on any input.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, msg, r.off)
	}
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("truncated u64")
		return 0
	}
	v := readU64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.off+1 > len(r.buf) {
		r.fail("truncated bool")
		return false
	}
	b := r.buf[r.off]
	r.off++
	if b > 1 {
		r.fail(fmt.Sprintf("bool byte %#x", b))
		return false
	}
	return b == 1
}

func (r *reader) bytes(limit int) []byte {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > uint64(limit) || n > uint64(len(r.buf)-r.off) {
		r.fail(fmt.Sprintf("byte-slice length %d exceeds bounds", n))
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func readU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
