// The crash matrix: the experiment that earns the subsystem its
// keep. For each seed it runs a PACStack victim, commits a snapshot
// mid-run (A), then attempts a second commit (B) under a simulated
// crash at every interesting byte offset of the commit protocol —
// every journal-append offset exhaustively, the image-write region at
// its boundaries plus seeded samples, and every metadata step
// (fsync, rename, directory fsync) — plus seeded post-hoc bit rot,
// truncation and duplicate-rename faults. After each fault, recovery
// must restore either A or B (never a hybrid), must report the damage
// as detected whenever damage exists, and the restored machine must
// replay to a final state byte-identical to the uninterrupted run.
// The tallies mirror internal/fault's detected / benign / silent
// taxonomy; the acceptance bar is silent == 0 and panics == 0.

package snap

import (
	"bytes"
	"errors"
	"fmt"
	mrand "math/rand"
	"sort"

	"pacstack/internal/compile"
	"pacstack/internal/cpu"
	"pacstack/internal/ir"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
)

// MatrixConfig parameterizes one crash-matrix campaign. Zero values
// get defaults from Normalize.
type MatrixConfig struct {
	// Seeds is the number of kernel seeds; seed i is BaseSeed+i.
	Seeds    int
	BaseSeed int64
	// Scheme is the protection scheme the victim is compiled under.
	Scheme compile.Scheme
	// Prog overrides the built-in chain workload.
	Prog *ir.Program
	// ImageSamples is how many seeded torn offsets are tried inside
	// the image-write region, in addition to its boundaries. The
	// journal region and all metadata steps are covered exhaustively.
	ImageSamples int
	// RotFaults, TruncFaults, DupFaults are the per-seed counts of
	// post-hoc faults.
	RotFaults, TruncFaults, DupFaults int
	// Tel, when non-nil, is attached to every store the campaign
	// creates — golden commits, crashed commits, and every recovery
	// trial alike. The campaign is serial and fully seeded, so the
	// resulting counter values are deterministic for one config.
	Tel *Telemetry
}

// store builds a store over fs carrying the campaign's telemetry.
func (c MatrixConfig) store(fs FS) *Store {
	st := NewStore(fs)
	st.Tel = c.Tel
	return st
}

// Normalize fills defaults in place and returns the config.
func (c MatrixConfig) Normalize() MatrixConfig {
	if c.Seeds == 0 {
		c.Seeds = 8
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Scheme == compile.SchemeNone {
		c.Scheme = compile.SchemePACStack
	}
	if c.Prog == nil {
		c.Prog = matrixProgram()
	}
	if c.ImageSamples == 0 {
		c.ImageSamples = 24
	}
	if c.RotFaults == 0 {
		c.RotFaults = 8
	}
	if c.TruncFaults == 0 {
		c.TruncFaults = 8
	}
	if c.DupFaults == 0 {
		c.DupFaults = 4
	}
	return c
}

// FaultTally is one fault kind's outcome counts: Detected means
// recovery surfaced the damage, Benign means the crash left no
// inconsistency to find (it landed after full durability), Silent is
// the never-acceptable bucket — wrong state restored, damage missed,
// or a replay divergence.
type FaultTally struct {
	Runs     int `json:"runs"`
	Detected int `json:"detected"`
	Benign   int `json:"benign"`
	Silent   int `json:"silent"`
}

func (t *FaultTally) add(o trialOutcome) {
	t.Runs++
	switch {
	case o.silent:
		t.Silent++
	case o.detected:
		t.Detected++
	default:
		t.Benign++
	}
}

// MatrixRow is one seed's results.
type MatrixRow struct {
	Seed        int64      `json:"seed"`
	TotalInstrs uint64     `json:"total_instrs"`
	ImageBytes  int        `json:"image_bytes"`
	CommitCost  int64      `json:"commit_cost"`
	CrashPoints int        `json:"crash_points"`
	Torn        FaultTally `json:"torn_write"`
	BitRot      FaultTally `json:"bit_rot"`
	Truncate    FaultTally `json:"truncation"`
	DupRename   FaultTally `json:"duplicate_rename"`
	// RestoredPrev / RestoredNew count which side of the commit each
	// recovery landed on; their sum equals the non-silent runs.
	RestoredPrev     int `json:"restored_prev"`
	RestoredNew      int `json:"restored_new"`
	ReplayMismatches int `json:"replay_mismatches"`
	Panics           int `json:"panics"`
}

// MatrixTotals aggregates over all seeds.
type MatrixTotals struct {
	Runs             int `json:"runs"`
	Detected         int `json:"detected"`
	Benign           int `json:"benign"`
	Silent           int `json:"silent"`
	RestoredPrev     int `json:"restored_prev"`
	RestoredNew      int `json:"restored_new"`
	ReplayMismatches int `json:"replay_mismatches"`
	Panics           int `json:"panics"`
}

// MatrixReport is the deterministic campaign result: same config in,
// byte-identical JSON out.
type MatrixReport struct {
	Scheme   string       `json:"scheme"`
	Seeds    int          `json:"seeds"`
	BaseSeed int64        `json:"base_seed"`
	Rows     []MatrixRow  `json:"rows"`
	Totals   MatrixTotals `json:"totals"`
}

// Clean reports whether the campaign met the acceptance bar: zero
// silent corruptions, zero restore panics, zero replay divergences.
func (r *MatrixReport) Clean() bool {
	return r.Totals.Silent == 0 && r.Totals.Panics == 0 && r.Totals.ReplayMismatches == 0
}

// matrixProgram is the built-in victim: a call tree deep enough that
// the authenticated chain spans several frames at checkpoint time, an
// indirect call so forward-edge CFI is live state, and output so a
// replay divergence cannot hide.
func matrixProgram() *ir.Program {
	return &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Locals: 2, Body: []ir.Op{
			ir.Write{Byte: '<'},
			ir.StoreLocal{Slot: 0, Value: 23},
			ir.Loop{Count: 8, Body: []ir.Op{
				ir.Call{Target: "work"},
				ir.CallPtr{Target: "helper"},
			}},
			ir.LoadLocal{Slot: 0},
			ir.Write{Byte: '>'},
		}},
		{Name: "work", Locals: 1, Body: []ir.Op{
			ir.StoreLocal{Slot: 0, Value: 9},
			ir.Compute{Units: 6},
			ir.Call{Target: "inner"},
			ir.LoadLocal{Slot: 0},
			ir.Write{Byte: 'w'},
		}},
		{Name: "inner", Locals: 1, Body: []ir.Op{
			ir.Compute{Units: 4},
			ir.Call{Target: "leaf"},
			ir.Write{Byte: 'i'},
		}},
		{Name: "helper", Body: []ir.Op{
			ir.Compute{Units: 3},
			ir.Call{Target: "leaf"},
			ir.Write{Byte: 'h'},
		}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 2}}},
	}}
}

// matrixMix is splitmix64 over the campaign seed inputs, so every
// trial's rng stream is independent and reproducible.
func matrixMix(vs ...int64) int64 {
	x := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		x ^= uint64(v)
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
	}
	return int64(x >> 1)
}

const matrixRunBudget = 1 << 22

// harden applies the scheme's sigreturn hardening, matching
// internal/fault's policy.
func harden(s compile.Scheme, p *kernel.Process) {
	switch s {
	case compile.SchemePACStack:
		p.FullFrameSigreturn = true
	case compile.SchemePACStackNoMask:
		p.HardenedSigreturn = true
	}
}

// seedRun holds one seed's golden lineage: the two mid-run snapshot
// images, the replay slicing that produced them, and the final-state
// image every replay must reproduce byte-for-byte.
type seedRun struct {
	imgA, imgB []byte
	sliceA     []uint64 // instruction slices remaining after checkpoint A
	sliceB     []uint64
	final      []byte
	total      uint64
}

func (c MatrixConfig) boot(img *compile.Image, seed int64) (*kernel.Process, error) {
	k := kernel.New(pa.DefaultConfig())
	k.Seed(seed)
	p, err := img.Boot(k)
	if err != nil {
		return nil, err
	}
	harden(c.Scheme, p)
	return p, nil
}

// goldenLineage runs the victim once to completion to learn its
// length, then reruns it checkpointing at one third and two thirds,
// recording the exact run slicing so replays schedule identically.
func (c MatrixConfig) goldenLineage(img *compile.Image, seed int64) (*seedRun, error) {
	probe, err := c.boot(img, seed)
	if err != nil {
		return nil, err
	}
	if err := probe.Run(matrixRunBudget); err != nil {
		return nil, fmt.Errorf("snap: matrix probe run: %w", err)
	}
	var total uint64
	for _, t := range probe.Tasks {
		total += t.M.Instrs
	}
	if total < 16 {
		return nil, fmt.Errorf("snap: matrix victim too short (%d instrs)", total)
	}
	n := total / 3

	p, err := c.boot(img, seed)
	if err != nil {
		return nil, err
	}
	run := &seedRun{total: total, sliceA: []uint64{n, matrixRunBudget}, sliceB: []uint64{matrixRunBudget}}
	if err := p.Run(n); !errors.Is(err, cpu.ErrStepLimit) {
		return nil, fmt.Errorf("snap: matrix slice 1: got %v, want step limit", err)
	}
	if run.imgA, err = Encode(p.Checkpoint(), img.Prog); err != nil {
		return nil, err
	}
	if err := p.Run(n); !errors.Is(err, cpu.ErrStepLimit) {
		return nil, fmt.Errorf("snap: matrix slice 2: got %v, want step limit", err)
	}
	if run.imgB, err = Encode(p.Checkpoint(), img.Prog); err != nil {
		return nil, err
	}
	if err := p.Run(matrixRunBudget); err != nil {
		return nil, fmt.Errorf("snap: matrix final slice: %w", err)
	}
	if run.final, err = Encode(p.Checkpoint(), img.Prog); err != nil {
		return nil, err
	}
	return run, nil
}

// trialOutcome classifies one recovery trial.
type trialOutcome struct {
	detected     bool
	silent       bool
	restoredPrev bool
	restoredNew  bool
	replayBad    bool
	panicked     bool
}

// recoverTrial runs recovery on fs after a fault and checks every
// invariant: a snapshot restores, it is exactly A or B, damage (when
// the restored state is not the newest commit, or any torn evidence
// exists) is detected, and the restored machine replays to the golden
// final state. Panics anywhere in recovery or replay are caught and
// counted — a corrupt image must fail-stop, never take the
// supervisor down with it.
func recoverTrial(fs *MemFS, img *compile.Image, c MatrixConfig, run *seedRun, seqA, seqB uint64) (out trialOutcome) {
	defer func() {
		if r := recover(); r != nil {
			out.panicked = true
			out.silent = true
		}
	}()
	fs.Heal()
	st := c.store(fs) // fresh store: the post-reboot view, no cached state
	cp, _, rep, err := st.Recover()
	if err != nil {
		// Snapshot A was durably committed before the fault; losing it
		// is silent data loss no matter what the report says.
		out.silent = true
		return out
	}
	out.detected = rep.Detected()
	switch rep.RestoredSeq {
	case seqA:
		out.restoredPrev = true
	case seqB:
		out.restoredNew = true
	default:
		out.silent = true
		return out
	}
	// Falling back to the previous snapshot without any detected
	// evidence would mean the new commit evaporated tracelessly.
	if out.restoredPrev && !out.detected {
		out.silent = true
		return out
	}

	// Replay: resurrect the restored checkpoint on a fresh boot and
	// run it to completion with the same slicing as the golden
	// lineage. The final encoded state must match byte-for-byte.
	p, err := c.boot(img, 0) // entropy is overwritten by Restore; seed irrelevant
	if err != nil {
		out.silent = true
		return out
	}
	if err := p.Restore(cp); err != nil {
		out.silent = true
		return out
	}
	slices := run.sliceB
	if out.restoredPrev {
		slices = run.sliceA
	}
	for i, s := range slices {
		err := p.Run(s)
		last := i == len(slices)-1
		if last && err != nil || !last && !errors.Is(err, cpu.ErrStepLimit) {
			out.silent = true
			out.replayBad = true
			return out
		}
	}
	got, err := Encode(p.Checkpoint(), img.Prog)
	if err != nil || !bytes.Equal(got, run.final) {
		out.silent = true
		out.replayBad = true
	}
	return out
}

// crashPoints enumerates the torn-write offsets to try for a commit
// of imgLen bytes and total cost units: the image-write region at its
// boundaries plus seeded samples, then everything after the image
// write — metadata steps and the journal append — exhaustively.
func crashPoints(imgLen int, cost int64, rng *mrand.Rand, samples int) []int64 {
	set := map[int64]bool{0: true, 1: true}
	if imgLen > 1 {
		set[int64(imgLen)-1] = true
		set[int64(imgLen)] = true
	}
	for i := 0; i < samples && imgLen > 2; i++ {
		set[1+rng.Int63n(int64(imgLen)-1)] = true
	}
	for k := int64(imgLen); k < cost; k++ {
		set[k] = true
	}
	var points []int64
	for k := range set {
		if k < cost { // k == cost means the commit completes untorn
			points = append(points, k)
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	return points
}

// RunMatrix executes the campaign and returns its deterministic
// report. An error means the harness itself failed (compile or golden
// run), not that faults were found — fault results live in the
// report.
func RunMatrix(cfg MatrixConfig) (*MatrixReport, error) {
	cfg = cfg.Normalize()
	img, err := compile.Compile(cfg.Prog, cfg.Scheme, compile.DefaultLayout())
	if err != nil {
		return nil, err
	}
	rep := &MatrixReport{Scheme: cfg.Scheme.String(), Seeds: cfg.Seeds, BaseSeed: cfg.BaseSeed}

	for i := 0; i < cfg.Seeds; i++ {
		seed := cfg.BaseSeed + int64(i)
		run, err := cfg.goldenLineage(img, seed)
		if err != nil {
			return nil, fmt.Errorf("snap: seed %d: %w", seed, err)
		}
		row := MatrixRow{Seed: seed, TotalInstrs: run.total, ImageBytes: len(run.imgB)}

		// Base store: A durably committed, B about to be.
		baseFS := NewMemFS()
		baseStore := cfg.store(baseFS)
		seqA, err := baseStore.Commit(run.imgA)
		if err != nil {
			return nil, fmt.Errorf("snap: seed %d: committing A: %w", seed, err)
		}
		seqB := seqA + 1

		// Dry run on a clone to measure the commit's total cost in
		// budget units; crash points are enumerated against it.
		dryFS := baseFS.Clone()
		before := dryFS.Spent()
		if _, err := cfg.store(dryFS).Commit(run.imgB); err != nil {
			return nil, fmt.Errorf("snap: seed %d: dry commit: %w", seed, err)
		}
		row.CommitCost = dryFS.Spent() - before

		tally := func(o trialOutcome, t *FaultTally) {
			t.add(o)
			if o.restoredPrev {
				row.RestoredPrev++
			}
			if o.restoredNew {
				row.RestoredNew++
			}
			if o.replayBad {
				row.ReplayMismatches++
			}
			if o.panicked {
				row.Panics++
			}
		}

		// Torn writes: crash the commit at every enumerated offset.
		rng := mrand.New(mrand.NewSource(matrixMix(cfg.BaseSeed, seed, 0)))
		points := crashPoints(len(run.imgB), row.CommitCost, rng, cfg.ImageSamples)
		row.CrashPoints = len(points)
		for _, k := range points {
			fs := baseFS.Clone()
			fs.Crash(k)
			if _, err := cfg.store(fs).Commit(run.imgB); err == nil {
				return nil, fmt.Errorf("snap: seed %d: commit survived crash budget %d", seed, k)
			}
			tally(recoverTrial(fs, img, cfg, run, seqA, seqB), &row.Torn)
		}

		// Post-hoc faults hit a store where both commits landed clean.
		fullFS := baseFS.Clone()
		if _, err := cfg.store(fullFS).Commit(run.imgB); err != nil {
			return nil, fmt.Errorf("snap: seed %d: committing B: %w", seed, err)
		}
		posthoc := func(n int, t *FaultTally, apply func(*Injector) (InjectedFault, bool)) {
			for j := 0; j < n; j++ {
				fs := fullFS.Clone()
				inj := NewInjector(fs, matrixMix(cfg.BaseSeed, seed, int64(j)+1))
				if _, ok := apply(inj); !ok {
					continue
				}
				o := recoverTrial(fs, img, cfg, run, seqA, seqB)
				// A post-hoc fault always damages durable bytes; an
				// undetected one is silent by definition, even if the
				// restored state happens to be correct.
				if !o.detected && !o.silent {
					o.silent = true
				}
				tally(o, t)
			}
		}
		posthoc(cfg.RotFaults, &row.BitRot, (*Injector).BitRot)
		posthoc(cfg.TruncFaults, &row.Truncate, (*Injector).Truncate)
		posthoc(cfg.DupFaults, &row.DupRename, (*Injector).DupRename)

		rep.Rows = append(rep.Rows, row)
		for _, t := range []FaultTally{row.Torn, row.BitRot, row.Truncate, row.DupRename} {
			rep.Totals.Runs += t.Runs
			rep.Totals.Detected += t.Detected
			rep.Totals.Benign += t.Benign
			rep.Totals.Silent += t.Silent
		}
		rep.Totals.RestoredPrev += row.RestoredPrev
		rep.Totals.RestoredNew += row.RestoredNew
		rep.Totals.ReplayMismatches += row.ReplayMismatches
		rep.Totals.Panics += row.Panics
	}
	return rep, nil
}
