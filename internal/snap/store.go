// The snapshot store: an append-only journal plus one file per
// snapshot, committed with the classic crash-consistency protocol —
// write the new image to a temp name, fsync it, rename it over the
// final name, fsync the directory, then append a checksummed journal
// record and fsync that. Each step is durable before the next begins,
// so a crash at any byte offset leaves the store in one of a small
// set of states, every one of which Recover maps to "previous
// snapshot" or "new snapshot" — never a torn hybrid.

package snap

import (
	"errors"
	"fmt"
	"hash/crc64"
	"sort"
	"strings"
	"sync"

	"pacstack/internal/compile"
	"pacstack/internal/kernel"
	"pacstack/internal/telemetry"
)

// File naming. Sequence numbers are monotonically increasing and
// zero-padded so lexical order is commit order.
const (
	snapPrefix  = "snap-"
	snapSuffix  = ".pss"
	tmpPrefix   = "tmp-"
	journalName = "journal.psj"
)

func snapName(seq uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix) }
func tmpName(seq uint64) string  { return fmt.Sprintf("%s%016x%s", tmpPrefix, seq, snapSuffix) }

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if len(hexpart) != 16 {
		return 0, false
	}
	var seq uint64
	for _, c := range hexpart {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		seq = seq<<4 | d
	}
	return seq, true
}

// Journal record format (fixed 36 bytes, little-endian):
//
//	[0:4)   magic "PSJR"
//	[4:12)  snapshot sequence number
//	[12:20) snapshot image size in bytes
//	[20:28) snapshot image trailing CRC
//	[28:36) CRC-64/ECMA over bytes [0:28)
//
// The per-record CRC makes a torn append detectable: the journal's
// valid prefix is authoritative, the torn tail is reported and
// ignored.
const (
	recMagic = "PSJR"
	recSize  = 36
)

type journalRec struct {
	Seq    uint64
	Size   uint64
	ImgCRC uint64
	Offset int // byte offset of the record in the journal
}

func encodeRec(seq uint64, size uint64, imgCRC uint64) []byte {
	b := make([]byte, 0, recSize)
	b = append(b, recMagic...)
	b = appendU64(b, seq)
	b = appendU64(b, size)
	b = appendU64(b, imgCRC)
	b = appendU64(b, crc64.Checksum(b, crcTable))
	return b
}

// parseJournal splits the journal into its valid record prefix and
// reports whether a torn or corrupt tail follows it.
func parseJournal(data []byte) (recs []journalRec, tornTail bool) {
	off := 0
	for off+recSize <= len(data) {
		rec := data[off : off+recSize]
		if string(rec[:4]) != recMagic ||
			crc64.Checksum(rec[:28], crcTable) != readU64(rec[28:]) {
			return recs, true
		}
		recs = append(recs, journalRec{
			Seq:    readU64(rec[4:]),
			Size:   readU64(rec[12:]),
			ImgCRC: readU64(rec[20:]),
			Offset: off,
		})
		off += recSize
	}
	return recs, off != len(data)
}

// ErrNoSnapshot reports that recovery found nothing restorable: an
// empty store, or one where every snapshot is damaged.
var ErrNoSnapshot = errors.New("snap: no valid snapshot to restore")

// Store is a snapshot store over an FS. All methods are safe for
// concurrent use; commits are serialized.
type Store struct {
	mu     sync.Mutex
	fs     FS
	seq    uint64
	inited bool

	// Tel, when non-nil, counts commits, bytes, and recovery anomalies
	// into shared registry handles. Set it before traffic; all fields
	// are nil-safe.
	Tel *Telemetry
}

// Telemetry is the store's instrumentation bundle.
type Telemetry struct {
	Commits     *telemetry.Counter // commits that reached full durability
	CommitErrs  *telemetry.Counter // commits that died partway
	CommitBytes *telemetry.Counter // image bytes durably committed
	Recoveries  *telemetry.Counter // recovery passes run
	// Anomalies is labeled by anomaly kind (journal-torn-tail,
	// torn-temp, unjournaled-snapshot, ...) plus the pseudo-kind
	// "snapshot-corrupt" for files that fail classification.
	Anomalies *telemetry.CounterVec
}

// NewTelemetry resolves the store's instrumentation bundle against
// reg under the canonical pacstack_snap_* family names. Handles are
// shared: any number of stores may point at one bundle.
func NewTelemetry(reg *telemetry.Registry) *Telemetry {
	return &Telemetry{
		Commits:     reg.Counter("pacstack_snap_commits_total", "store commits that reached full durability"),
		CommitErrs:  reg.Counter("pacstack_snap_commit_errors_total", "store commits that died partway"),
		CommitBytes: reg.Counter("pacstack_snap_commit_bytes_total", "image bytes durably committed"),
		Recoveries:  reg.Counter("pacstack_snap_recoveries_total", "recovery passes run"),
		Anomalies:   reg.CounterVec("pacstack_snap_anomalies_total", "recovery findings by kind", "kind"),
	}
}

// NewStore returns a store over fs. Existing snapshots and journal
// content are picked up lazily on the first Commit or Recover.
func NewStore(fs FS) *Store { return &Store{fs: fs} }

// FS returns the store's filesystem, for fault injection and tests.
func (s *Store) FS() FS { return s.fs }

// Heal revives crashed MemFS-backed storage (a no-op on other FS
// implementations): the respawn path calls it before recovery,
// because the disk outlives the machine that died writing to it.
func (s *Store) Heal() {
	if h, ok := s.fs.(interface{ Heal() }); ok {
		h.Heal()
	}
}

// initSeq derives the next sequence number from whatever is already
// in the store (files and journal both, so a crash cannot reuse a
// sequence number). Callers hold s.mu.
func (s *Store) initSeq() error {
	if s.inited {
		return nil
	}
	names, err := s.fs.List()
	if err != nil {
		return err
	}
	var max uint64
	for _, n := range names {
		base := n
		if strings.HasPrefix(base, tmpPrefix) {
			base = snapPrefix + strings.TrimPrefix(base, tmpPrefix)
		}
		if seq, ok := parseSnapName(base); ok && seq > max {
			max = seq
		}
	}
	if data, err := s.fs.ReadFile(journalName); err == nil {
		recs, _ := parseJournal(data)
		for _, r := range recs {
			if r.Seq > max {
				max = r.Seq
			}
		}
	}
	s.seq = max
	s.inited = true
	return nil
}

// Commit durably stores one encoded snapshot image and returns its
// sequence number. On any error — including a simulated crash — the
// store is left for Recover to classify; the sequence number is
// burned either way, so a half-landed commit can never alias a later
// one.
func (s *Store) Commit(img []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.initSeq(); err != nil {
		return 0, err
	}
	s.seq++
	seq := s.seq
	tmp, final := tmpName(seq), snapName(seq)

	// 1-2. Write the full image to a temp name and make it durable.
	if err := s.fs.WriteFile(tmp, img); err != nil {
		return seq, s.commitErr(fmt.Errorf("snap: commit %d: writing temp: %w", seq, err))
	}
	if err := s.fs.Sync(tmp); err != nil {
		return seq, s.commitErr(fmt.Errorf("snap: commit %d: syncing temp: %w", seq, err))
	}
	// 3-4. Atomically give it its final name and make the rename
	// durable.
	if err := s.fs.Rename(tmp, final); err != nil {
		return seq, s.commitErr(fmt.Errorf("snap: commit %d: rename: %w", seq, err))
	}
	if err := s.fs.SyncDir(); err != nil {
		return seq, s.commitErr(fmt.Errorf("snap: commit %d: syncing directory: %w", seq, err))
	}
	// 5-6. Journal the commit and make the record durable.
	crc, ok := ImageCRC(img)
	if !ok {
		return seq, s.commitErr(fmt.Errorf("snap: commit %d: image too short to carry a checksum", seq))
	}
	if err := s.fs.Append(journalName, encodeRec(seq, uint64(len(img)), crc)); err != nil {
		return seq, s.commitErr(fmt.Errorf("snap: commit %d: journal append: %w", seq, err))
	}
	if err := s.fs.Sync(journalName); err != nil {
		return seq, s.commitErr(fmt.Errorf("snap: commit %d: syncing journal: %w", seq, err))
	}
	if t := s.Tel; t != nil {
		t.Commits.Inc()
		t.CommitBytes.Add(uint64(len(img)))
	}
	return seq, nil
}

// commitErr counts a failed commit and passes the error through.
func (s *Store) commitErr(err error) error {
	if s.Tel != nil {
		s.Tel.CommitErrs.Inc()
	}
	return err
}

// CommitProcess checkpoints a live process and commits it.
func (s *Store) CommitProcess(p *kernel.Process) (uint64, error) {
	img, err := Encode(p.Checkpoint(), p.Prog)
	if err != nil {
		return 0, err
	}
	return s.Commit(img)
}

// Class is the recovery classification of one snapshot file.
type Class int

const (
	// ClassValid: decoded, checksum verified, journal consistent, and
	// the newest such — this is what restores.
	ClassValid Class = iota
	// ClassStale: fully valid but superseded by a newer valid
	// snapshot.
	ClassStale
	// ClassCorrupt: damage detected — checksum mismatch, truncation,
	// malformed structure, or disagreement with the journal.
	ClassCorrupt
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassValid:
		return "valid"
	case ClassStale:
		return "stale"
	case ClassCorrupt:
		return "corrupt-detected"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// SnapshotRecord is one classified snapshot in a recovery report.
type SnapshotRecord struct {
	Name   string `json:"name"`
	Seq    uint64 `json:"seq"`
	Class  string `json:"class"`
	Detail string `json:"detail,omitempty"`
}

// Anomaly is storage evidence of a crash or fault that is not itself
// a snapshot file: a torn journal tail, a leftover temp file, a
// journal record whose snapshot never landed. Every anomaly counts as
// a detection.
type Anomaly struct {
	Kind   string `json:"kind"`
	Name   string `json:"name,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// RecoveryReport is the full account of one recovery pass.
type RecoveryReport struct {
	Snapshots      []SnapshotRecord `json:"snapshots"`
	Anomalies      []Anomaly        `json:"anomalies,omitempty"`
	JournalRecords int              `json:"journal_records"`
	Restored       bool             `json:"restored"`
	RestoredSeq    uint64           `json:"restored_seq,omitempty"`
}

// Detected reports whether the pass found any evidence of damage or
// interrupted commits — the storage analogue of OutcomeDetected.
func (r *RecoveryReport) Detected() bool {
	if len(r.Anomalies) > 0 {
		return true
	}
	for _, s := range r.Snapshots {
		if s.Class == ClassCorrupt.String() {
			return true
		}
	}
	return false
}

// Recover scans the store, classifies every snapshot as valid /
// corrupt-detected / stale, and returns the newest valid image
// decoded. Leftover temp files are reported and removed. The report
// is returned even when the error is non-nil; with ErrNoSnapshot the
// report explains what was found and rejected.
func (s *Store) Recover() (*kernel.Checkpoint, *ImageMeta, *RecoveryReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.initSeq(); err != nil {
		return nil, nil, nil, err
	}
	rep := &RecoveryReport{}
	if t := s.Tel; t != nil {
		t.Recoveries.Inc()
		// Count whatever the pass ends up finding, on every return path.
		defer func() {
			for _, a := range rep.Anomalies {
				t.Anomalies.With(a.Kind).Inc()
			}
			for _, sr := range rep.Snapshots {
				if sr.Class == ClassCorrupt.String() {
					t.Anomalies.With("snapshot-corrupt").Inc()
				}
			}
		}()
	}

	var recs []journalRec
	if data, err := s.fs.ReadFile(journalName); err == nil {
		var torn bool
		recs, torn = parseJournal(data)
		if torn {
			rep.Anomalies = append(rep.Anomalies, Anomaly{
				Kind: "journal-torn-tail", Name: journalName,
				Detail: fmt.Sprintf("valid prefix %d record(s), torn or corrupt bytes follow", len(recs)),
			})
		}
	}
	rep.JournalRecords = len(recs)
	bySeq := make(map[uint64]journalRec, len(recs))
	for _, r := range recs {
		if prev, dup := bySeq[r.Seq]; dup {
			rep.Anomalies = append(rep.Anomalies, Anomaly{
				Kind: "journal-duplicate-seq", Name: journalName,
				Detail: fmt.Sprintf("sequence %d journaled at offsets %d and %d", r.Seq, prev.Offset, r.Offset),
			})
		}
		bySeq[r.Seq] = r
	}

	names, err := s.fs.List()
	if err != nil {
		return nil, nil, rep, err
	}

	type candidate struct {
		seq  uint64
		cp   *kernel.Checkpoint
		meta *ImageMeta
	}
	var best *candidate
	seen := make(map[uint64]bool)
	for _, name := range names {
		switch {
		case name == journalName:
			continue
		case strings.HasPrefix(name, tmpPrefix):
			// A temp file is a commit that never reached its rename: a
			// torn write or a duplicate-rename race left it behind.
			// Detected, reported, swept.
			rep.Anomalies = append(rep.Anomalies, Anomaly{
				Kind: "torn-temp", Name: name,
				Detail: "leftover write-temp from an interrupted commit; removed",
			})
			if err := s.fs.Remove(name); err != nil {
				return nil, nil, rep, err
			}
			continue
		}
		seq, ok := parseSnapName(name)
		if !ok {
			rep.Anomalies = append(rep.Anomalies, Anomaly{Kind: "unknown-file", Name: name})
			continue
		}
		seen[seq] = true
		img, err := s.fs.ReadFile(name)
		if err != nil {
			rep.Snapshots = append(rep.Snapshots, SnapshotRecord{
				Name: name, Seq: seq, Class: ClassCorrupt.String(), Detail: fmt.Sprintf("unreadable: %v", err),
			})
			continue
		}
		if rec, ok := bySeq[seq]; ok {
			crc, crcOK := ImageCRC(img)
			if uint64(len(img)) != rec.Size || !crcOK || crc != rec.ImgCRC {
				rep.Snapshots = append(rep.Snapshots, SnapshotRecord{
					Name: name, Seq: seq, Class: ClassCorrupt.String(),
					Detail: fmt.Sprintf("journal mismatch: journaled %d bytes crc %#x, file has %d bytes", rec.Size, rec.ImgCRC, len(img)),
				})
				continue
			}
		}
		cp, meta, err := Decode(img)
		if err != nil {
			rep.Snapshots = append(rep.Snapshots, SnapshotRecord{
				Name: name, Seq: seq, Class: ClassCorrupt.String(), Detail: err.Error(),
			})
			continue
		}
		rec := SnapshotRecord{Name: name, Seq: seq, Class: ClassStale.String()}
		if _, journaled := bySeq[seq]; !journaled {
			// Fully durable but unjournaled: the crash hit between the
			// directory fsync and the journal append. The image is
			// self-checking, so it is restorable — and the gap itself is
			// crash evidence worth reporting.
			rep.Anomalies = append(rep.Anomalies, Anomaly{
				Kind: "unjournaled-snapshot", Name: name,
				Detail: "snapshot durable but its journal record never landed",
			})
		}
		rep.Snapshots = append(rep.Snapshots, rec)
		if best == nil || seq > best.seq {
			best = &candidate{seq: seq, cp: cp, meta: meta}
		}
	}
	for seq, r := range bySeq {
		if !seen[seq] {
			rep.Anomalies = append(rep.Anomalies, Anomaly{
				Kind: "missing-snapshot", Name: snapName(seq),
				Detail: fmt.Sprintf("journaled (%d bytes, crc %#x) but absent", r.Size, r.ImgCRC),
			})
		}
	}

	sort.Slice(rep.Snapshots, func(i, j int) bool { return rep.Snapshots[i].Seq < rep.Snapshots[j].Seq })
	sort.Slice(rep.Anomalies, func(i, j int) bool {
		if rep.Anomalies[i].Kind != rep.Anomalies[j].Kind {
			return rep.Anomalies[i].Kind < rep.Anomalies[j].Kind
		}
		return rep.Anomalies[i].Name < rep.Anomalies[j].Name
	})

	if best == nil {
		return nil, nil, rep, ErrNoSnapshot
	}
	for i := range rep.Snapshots {
		if rep.Snapshots[i].Seq == best.seq && rep.Snapshots[i].Class == ClassStale.String() {
			rep.Snapshots[i].Class = ClassValid.String()
		}
	}
	rep.Restored = true
	rep.RestoredSeq = best.seq
	return best.cp, best.meta, rep, nil
}

// RestoreProcess recovers the newest valid snapshot from the store
// and resurrects it as a live process: the image is booted fresh (so
// syscall and CFI bindings are re-installed from the binary, not from
// storage) and then overwritten with the checkpointed state. The
// snapshot must have been taken under the same program — the embedded
// text checksum is verified before anything restores.
func RestoreProcess(st *Store, img *compile.Image, k *kernel.Kernel) (*kernel.Process, *RecoveryReport, error) {
	cp, meta, rep, err := st.Recover()
	if err != nil {
		return nil, rep, err
	}
	progCRC, err := ProgramCRC(img.Prog)
	if err != nil {
		return nil, rep, err
	}
	if meta.ProgCRC != progCRC || meta.ProgBase != img.Prog.Base {
		return nil, rep, fmt.Errorf("%w: snapshot was taken under a different program (base %#x crc %#x, image has base %#x crc %#x)",
			ErrCorrupt, meta.ProgBase, meta.ProgCRC, img.Prog.Base, progCRC)
	}
	p, err := img.Boot(k)
	if err != nil {
		return nil, rep, err
	}
	if err := p.Restore(cp); err != nil {
		return nil, rep, err
	}
	return p, rep, nil
}
