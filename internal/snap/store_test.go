package snap

import (
	"errors"
	"strings"
	"testing"

	"pacstack/internal/compile"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
)

func commitVictim(t *testing.T, st *Store, seed int64, instrs uint64) (uint64, []byte) {
	t.Helper()
	p, img := bootVictim(t, seed, instrs)
	enc, err := Encode(p.Checkpoint(), img.Prog)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	seq, err := st.Commit(enc)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	return seq, enc
}

func TestCommitRecoverCleanStore(t *testing.T) {
	fs := NewMemFS()
	st := NewStore(fs)
	if _, _, _, err := st.Recover(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty recover: got %v, want ErrNoSnapshot", err)
	}
	seq1, _ := commitVictim(t, st, 3, 200)
	seq2, _ := commitVictim(t, st, 3, 400)
	if seq2 != seq1+1 {
		t.Fatalf("seq2 = %d, want %d", seq2, seq1+1)
	}
	_, _, rep, err := NewStore(fs).Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.RestoredSeq != seq2 || !rep.Restored {
		t.Errorf("restored seq %d, want %d", rep.RestoredSeq, seq2)
	}
	if rep.Detected() {
		t.Errorf("clean store reported detections: %+v", rep)
	}
	classes := map[uint64]string{}
	for _, s := range rep.Snapshots {
		classes[s.Seq] = s.Class
	}
	if classes[seq1] != "stale" || classes[seq2] != "valid" {
		t.Errorf("classes = %v", classes)
	}
}

// TestCrashAtEveryOffset is the core commit-protocol invariant, run
// exhaustively at unit granularity for one seed: whatever byte the
// crash lands on, recovery yields the previous or the new snapshot,
// and any fallback to the previous one comes with detected evidence.
func TestCrashAtEveryOffset(t *testing.T) {
	base := NewMemFS()
	st := NewStore(base)
	seqA, _ := commitVictim(t, st, 5, 200)
	p, img := bootVictim(t, 5, 500)
	imgB, err := Encode(p.Checkpoint(), img.Prog)
	if err != nil {
		t.Fatalf("encode B: %v", err)
	}

	dry := base.Clone()
	if _, err := NewStore(dry).Commit(imgB); err != nil {
		t.Fatalf("dry commit: %v", err)
	}
	cost := dry.Spent()

	// Exhaustive is affordable here because recovery (not replay) is
	// the expensive part the matrix samples; one seed at every offset
	// is a few thousand recoveries.
	for k := int64(0); k < cost; k++ {
		fs := base.Clone()
		fs.Crash(k)
		if _, err := NewStore(fs).Commit(imgB); !errors.Is(err, ErrCrashed) {
			t.Fatalf("k=%d: commit err = %v, want ErrCrashed", k, err)
		}
		fs.Heal()
		_, _, rep, err := NewStore(fs).Recover()
		if err != nil {
			t.Fatalf("k=%d: recover: %v", k, err)
		}
		if rep.RestoredSeq != seqA && rep.RestoredSeq != seqA+1 {
			t.Fatalf("k=%d: restored seq %d, want %d or %d", k, rep.RestoredSeq, seqA, seqA+1)
		}
		if rep.RestoredSeq == seqA && !rep.Detected() {
			t.Fatalf("k=%d: fell back to previous snapshot with no detected evidence", k)
		}
	}

	// Control: the very same commit with the budget exactly equal to
	// its cost completes and recovers clean.
	fs := base.Clone()
	fs.Crash(cost)
	if _, err := NewStore(fs).Commit(imgB); err != nil {
		t.Fatalf("commit at exact budget: %v", err)
	}
	fs.Heal()
	_, _, rep, err := NewStore(fs).Recover()
	if err != nil || rep.RestoredSeq != seqA+1 {
		t.Fatalf("control recover: seq %d err %v", rep.RestoredSeq, err)
	}
}

func TestInjectedFaultsAlwaysDetected(t *testing.T) {
	base := NewMemFS()
	st := NewStore(base)
	seqA, _ := commitVictim(t, st, 9, 200)
	seqB, _ := commitVictim(t, st, 9, 450)

	cases := []struct {
		kind  string
		apply func(*Injector) (InjectedFault, bool)
	}{
		{FaultBitRot, (*Injector).BitRot},
		{FaultTruncate, (*Injector).Truncate},
		{FaultDupRename, (*Injector).DupRename},
	}
	for _, tc := range cases {
		for seed := int64(0); seed < 32; seed++ {
			fs := base.Clone()
			_, ok := tc.apply(NewInjector(fs, seed))
			if !ok {
				t.Fatalf("%s seed %d: no fault applied", tc.kind, seed)
			}
			_, _, rep, err := NewStore(fs).Recover()
			if err != nil {
				t.Fatalf("%s seed %d: recover: %v (report %+v)", tc.kind, seed, err, rep)
			}
			if !rep.Detected() {
				t.Errorf("%s seed %d: fault not detected (restored %d)", tc.kind, seed, rep.RestoredSeq)
			}
			if rep.RestoredSeq != seqA && rep.RestoredSeq != seqB {
				t.Errorf("%s seed %d: restored seq %d, want %d or %d", tc.kind, seed, rep.RestoredSeq, seqA, seqB)
			}
		}
	}
}

func TestRecoverSweepsTornTemp(t *testing.T) {
	fs := NewMemFS()
	st := NewStore(fs)
	seq, _ := commitVictim(t, st, 21, 250)
	fs.plant(tmpName(seq+1), []byte("half-written garbage"))
	_, _, rep, err := NewStore(fs).Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	found := false
	for _, a := range rep.Anomalies {
		if a.Kind == "torn-temp" {
			found = true
		}
	}
	if !found {
		t.Errorf("torn temp not reported: %+v", rep.Anomalies)
	}
	names, _ := fs.List()
	for _, n := range names {
		if strings.HasPrefix(n, tmpPrefix) {
			t.Errorf("temp file %s not swept", n)
		}
	}
	// A temp never has a journal record (the append comes after the
	// rename), so its sequence is safe to reuse after the sweep: the
	// next commit takes it and recovers clean.
	st2 := NewStore(fs)
	p, img := bootVictim(t, 21, 300)
	enc, _ := Encode(p.Checkpoint(), img.Prog)
	seq2, err := st2.Commit(enc)
	if err != nil {
		t.Fatalf("post-sweep commit: %v", err)
	}
	if seq2 != seq+1 {
		t.Errorf("seq2 = %d, want %d", seq2, seq+1)
	}
	_, _, rep2, err := NewStore(fs).Recover()
	if err != nil || rep2.Detected() || rep2.RestoredSeq != seq2 {
		t.Errorf("post-sweep recover: seq %d detected %v err %v", rep2.RestoredSeq, rep2.Detected(), err)
	}
}

func TestRestoreProcessVerifiesProgram(t *testing.T) {
	fs := NewMemFS()
	st := NewStore(fs)
	_, _ = commitVictim(t, st, 25, 300)

	// Same program: restores and runs.
	img, err := compile.Compile(matrixProgram(), compile.SchemePACStack, compile.DefaultLayout())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	k := kernel.New(pa.DefaultConfig())
	k.Seed(1)
	p, rep, err := RestoreProcess(st, img, k)
	if err != nil {
		t.Fatalf("restore: %v (report %+v)", err, rep)
	}
	if err := p.Run(1 << 22); err != nil {
		t.Fatalf("restored process run: %v", err)
	}
	if !p.Exited {
		t.Fatalf("restored process did not exit")
	}

	// Different program text: refused before any state moves.
	other, err := compile.Compile(matrixProgram(), compile.SchemePACStackNoMask, compile.DefaultLayout())
	if err != nil {
		t.Fatalf("compile other: %v", err)
	}
	k2 := kernel.New(pa.DefaultConfig())
	k2.Seed(1)
	if _, _, err := RestoreProcess(NewStore(fs), other, k2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("cross-program restore: got %v, want ErrCorrupt", err)
	}
}

// TestCrashMatrixSmall runs a reduced campaign end to end and holds
// it to the acceptance bar. The full 8-seed campaign runs in
// cmd/pacstack-snap and check.sh.
func TestCrashMatrixSmall(t *testing.T) {
	rep, err := RunMatrix(MatrixConfig{Seeds: 2, BaseSeed: 42, ImageSamples: 8, RotFaults: 4, TruncFaults: 4, DupFaults: 2})
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("matrix not clean: %+v", rep.Totals)
	}
	if rep.Totals.Runs == 0 || rep.Totals.Detected == 0 {
		t.Fatalf("matrix ran nothing: %+v", rep.Totals)
	}
	if rep.Totals.RestoredPrev == 0 || rep.Totals.RestoredNew == 0 {
		t.Errorf("matrix never exercised both restore sides: %+v", rep.Totals)
	}
}

// TestCrashMatrixDeterministic: same config, byte-identical report —
// the property check.sh's double-run cmp gate relies on.
func TestCrashMatrixDeterministic(t *testing.T) {
	cfg := MatrixConfig{Seeds: 1, BaseSeed: 7, ImageSamples: 4, RotFaults: 2, TruncFaults: 2, DupFaults: 1}
	a, err := RunMatrix(cfg)
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	b, err := RunMatrix(cfg)
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	if len(a.Rows) != len(b.Rows) || a.Totals != b.Totals {
		t.Fatalf("matrix not deterministic: %+v vs %+v", a.Totals, b.Totals)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}
