// BootImage: the decode-once / restore-many form of a snapshot, the
// in-memory analogue of a fork-server's pristine parent. The serving
// pool (internal/pool) decodes one encoded boot snapshot at start-up
// and then restores every pooled machine from the same decoded
// checkpoint, thousands of times, concurrently.
//
// The load-bearing property is isolation: a restore must deep-copy
// every page out of the shared checkpoint, so that one restored
// machine scribbling on its stack can never alias another machine's
// memory — or worse, the checkpoint itself, which would leak one
// request's state into every later restore. kernel.Process.Restore
// guarantees this (mem.FromPages copies page contents into fresh
// page frames; Output and SigRefs are copied slices), and
// TestBootImageRestoreAliasing pins it: mutate one restored machine,
// replay another, and the replay must stay golden.
package snap

import (
	"fmt"

	"pacstack/internal/isa"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
)

// BootImage is a validated, decoded snapshot held in memory for
// repeated restores. The decoded checkpoint is shared by every
// restore and must never be mutated; all mutation happens in the
// per-machine copies Restore makes.
type BootImage struct {
	raw  []byte
	meta ImageMeta
	cp   *kernel.Checkpoint
}

// NewBootImage decodes and validates an encoded snapshot image once,
// returning the restore-many handle. The raw bytes are copied, so the
// caller's buffer may be reused.
func NewBootImage(raw []byte) (*BootImage, error) {
	cp, meta, err := Decode(raw)
	if err != nil {
		return nil, err
	}
	return &BootImage{
		raw:  append([]byte(nil), raw...),
		meta: *meta,
		cp:   cp,
	}, nil
}

// EncodeBootImage checkpoints the process and round-trips it through
// the wire codec into a BootImage — the pool's start-up path, which
// deliberately exercises Encode+Decode so a codec regression cannot
// hide behind an in-process shortcut.
func EncodeBootImage(p *kernel.Process, prog *isa.Program) (*BootImage, error) {
	raw, err := Encode(p.Checkpoint(), prog)
	if err != nil {
		return nil, err
	}
	return NewBootImage(raw)
}

// Bytes returns a copy of the encoded image — what migration ships to
// a survivor backend, which re-pools it with NewBootImage.
func (bi *BootImage) Bytes() []byte { return append([]byte(nil), bi.raw...) }

// Meta returns the image's program identity (base, CRC).
func (bi *BootImage) Meta() ImageMeta { return bi.meta }

// Pages returns the mapped page count of the checkpointed address
// space — the input to the virtual-time boot-cost model.
func (bi *BootImage) Pages() int { return len(bi.cp.Pages) }

// Keys returns the PA key set frozen in the image. A warm restore
// MUST NOT serve under these keys (PACStack §4.3: every incarnation
// draws fresh keys); the pool probes each reset against them.
func (bi *BootImage) Keys() pa.Keys { return bi.cp.Keys }

// VerifyProgram checks that the image was taken from prog (CRC over
// the symbolic program), the same identity check Store.Recover makes.
func (bi *BootImage) VerifyProgram(prog *isa.Program) error {
	crc, err := ProgramCRC(prog)
	if err != nil {
		return err
	}
	if crc != bi.meta.ProgCRC {
		return fmt.Errorf("%w: image program CRC %016x does not match %016x", ErrCorrupt, bi.meta.ProgCRC, crc)
	}
	return nil
}

// Restore overwrites p with the image's checkpoint. p must be a
// booted process from the same program image (kernel.Process.Restore's
// contract). The checkpoint is shared across restores; Restore
// deep-copies, so the returned state is fully isolated from both the
// image and every other restored machine.
func (bi *BootImage) Restore(p *kernel.Process) error {
	return p.Restore(bi.cp)
}
