package snap

import (
	"errors"
	"testing"

	"pacstack/internal/compile"
	"pacstack/internal/fault"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
)

// bootAndCommit builds a store with n committed boot-state snapshots
// of the pacstack chain image and returns the store, the image (for
// restore verification), and the newest committed sequence number.
func bootAndCommit(t *testing.T, n int) (*Store, *compile.Image, uint64) {
	t.Helper()
	eng := fault.NewEngine(fault.DefaultProgram())
	img, err := eng.Image(compile.SchemePACStack)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(NewMemFS())
	var last uint64
	for i := 0; i < n; i++ {
		k := kernel.New(pa.DefaultConfig())
		k.Seed(int64(100 + i))
		p, err := img.Boot(k)
		if err != nil {
			t.Fatal(err)
		}
		if last, err = st.CommitProcess(p); err != nil {
			t.Fatal(err)
		}
	}
	return st, img, last
}

// anomalyKinds collects the report's anomaly kinds into a set.
func anomalyKinds(rep *RecoveryReport) map[string]int {
	kinds := map[string]int{}
	for _, a := range rep.Anomalies {
		kinds[a.Kind]++
	}
	return kinds
}

// TestRecoverMissingJournal: snapshots exist but the journal is gone
// entirely (a deleted or never-synced journal). Every snapshot is
// self-checking, so recovery must still restore the newest one — and
// must classify the gap as detected (unjournaled-snapshot anomalies),
// never as a clean pass.
func TestRecoverMissingJournal(t *testing.T) {
	st, _, newest := bootAndCommit(t, 2)
	if err := st.FS().Remove("journal.psj"); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same FS models recovery after a restart.
	st2 := NewStore(st.FS())
	cp, _, rep, err := st2.Recover()
	if err != nil {
		t.Fatalf("recover with missing journal: %v", err)
	}
	if cp == nil || !rep.Restored || rep.RestoredSeq != newest {
		t.Fatalf("restored=%v seq=%d, want newest (%d)", rep.Restored, rep.RestoredSeq, newest)
	}
	if !rep.Detected() {
		t.Fatal("missing journal recovered without any detection — silent gap")
	}
	kinds := anomalyKinds(rep)
	if kinds["unjournaled-snapshot"] != 2 {
		t.Fatalf("want 2 unjournaled-snapshot anomalies, got %v", kinds)
	}
}

// TestRecoverEmptyJournal: the journal file exists with zero bytes (a
// created-then-never-flushed journal). Same contract as missing:
// restore the self-checking snapshots, flag the gap.
func TestRecoverEmptyJournal(t *testing.T) {
	st, _, newest := bootAndCommit(t, 2)
	if err := st.FS().WriteFile("journal.psj", nil); err != nil {
		t.Fatal(err)
	}
	st2 := NewStore(st.FS())
	cp, _, rep, err := st2.Recover()
	if err != nil {
		t.Fatalf("recover with empty journal: %v", err)
	}
	if cp == nil || rep.RestoredSeq != newest {
		t.Fatalf("restored seq %d, want %d", rep.RestoredSeq, newest)
	}
	if !rep.Detected() {
		t.Fatal("empty journal recovered without any detection")
	}
	if kinds := anomalyKinds(rep); kinds["unjournaled-snapshot"] != 2 {
		t.Fatalf("want 2 unjournaled-snapshot anomalies, got %v", kinds)
	}
	// An empty valid prefix is not itself a torn tail.
	if kinds := anomalyKinds(rep); kinds["journal-torn-tail"] != 0 {
		t.Fatalf("empty journal misread as torn: %v", kinds)
	}
}

// TestRecoverJournalOnlyTornRecord: the journal holds nothing but a
// torn final record — fewer bytes than one record, none of them
// trustworthy. The tear must be detected, the snapshots must still
// restore, and the empty store variant must fail benignly
// (ErrNoSnapshot), never silently.
func TestRecoverJournalOnlyTornRecord(t *testing.T) {
	st, _, newest := bootAndCommit(t, 1)
	// Replace the journal wholesale with a partial record: the first 20
	// bytes of garbage-free prefix would still fail the CRC; use
	// recognizable magic plus truncation to model a torn append.
	torn := []byte("PSJR\x01\x02\x03")
	if err := st.FS().WriteFile("journal.psj", torn); err != nil {
		t.Fatal(err)
	}
	st2 := NewStore(st.FS())
	cp, _, rep, err := st2.Recover()
	if err != nil {
		t.Fatalf("recover with torn-only journal: %v", err)
	}
	if cp == nil || rep.RestoredSeq != newest {
		t.Fatalf("restored seq %d, want %d", rep.RestoredSeq, newest)
	}
	if !rep.Detected() {
		t.Fatal("torn-only journal recovered without any detection")
	}
	kinds := anomalyKinds(rep)
	if kinds["journal-torn-tail"] != 1 {
		t.Fatalf("want journal-torn-tail anomaly, got %v", kinds)
	}
	if rep.JournalRecords != 0 {
		t.Fatalf("torn-only journal parsed %d valid records, want 0", rep.JournalRecords)
	}

	// Same torn-only journal over an otherwise empty store: nothing to
	// restore is a benign, typed failure — not a silent success.
	empty := NewStore(NewMemFS())
	if err := empty.FS().WriteFile("journal.psj", torn); err != nil {
		t.Fatal(err)
	}
	_, _, rep2, err := empty.Recover()
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty store with torn journal: err=%v, want ErrNoSnapshot", err)
	}
	if rep2 == nil || !rep2.Detected() {
		t.Fatal("benign failure must still report the torn tail")
	}
	if rep2.Restored {
		t.Fatal("nothing valid existed but the report claims a restore")
	}
}

// TestRecoverEdgeRestoresWorkingProcess: after the nastiest edge (torn
// journal), the restored checkpoint is not just classified — it boots
// into a process that runs to the golden output.
func TestRecoverEdgeRestoresWorkingProcess(t *testing.T) {
	st, img, _ := bootAndCommit(t, 1)
	if err := st.FS().WriteFile("journal.psj", []byte("PS")); err != nil {
		t.Fatal(err)
	}
	st2 := NewStore(st.FS())
	k := kernel.New(pa.DefaultConfig())
	k.Seed(777)
	p, rep, err := RestoreProcess(st2, img, k)
	if err != nil {
		t.Fatalf("RestoreProcess: %v", err)
	}
	if !rep.Detected() {
		t.Fatal("torn journal not detected")
	}
	eng := fault.NewEngine(fault.DefaultProgram())
	goldenOut, goldenExit, goldenInstrs, err := eng.Golden(compile.SchemePACStack)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(4*goldenInstrs + 10_000); err != nil {
		t.Fatalf("restored process run: %v", err)
	}
	if string(p.Output) != string(goldenOut) || p.ExitCode != goldenExit {
		t.Fatalf("restored process diverged: %q exit %d, golden %q exit %d",
			p.Output, p.ExitCode, goldenOut, goldenExit)
	}
}
