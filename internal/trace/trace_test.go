package trace

import (
	"strings"
	"testing"

	"pacstack/internal/compile"
	"pacstack/internal/ir"
	"pacstack/internal/isa"
	"pacstack/internal/kernel"
	"pacstack/internal/pa"
)

func traceProgram() *ir.Program {
	return &ir.Program{Entry: "main", Functions: []*ir.Function{
		{Name: "main", Body: []ir.Op{
			ir.Loop{Count: 4, Body: []ir.Op{ir.Call{Target: "worker"}}},
			ir.CallPtr{Target: "worker"},
		}},
		{Name: "worker", Body: []ir.Op{
			ir.Compute{Units: 10},
			ir.Call{Target: "leaf"},
		}},
		{Name: "leaf", Body: []ir.Op{ir.Compute{Units: 2}}},
	}}
}

func bootTraced(t *testing.T) (*kernel.Process, *Profiler) {
	t.Helper()
	img := compile.MustCompile(traceProgram(), compile.SchemePACStack, compile.DefaultLayout())
	proc := img.MustBoot(kernel.New(pa.DefaultConfig()))
	p := AttachProfiler(proc.Tasks[0].M)
	if err := proc.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return proc, p
}

func TestProfilerCounts(t *testing.T) {
	_, p := bootTraced(t)
	w := p.ByFunc["worker"]
	if w == nil {
		t.Fatal("worker not profiled")
	}
	if w.Calls != 5 { // 4 direct + 1 indirect
		t.Errorf("worker calls = %d, want 5", w.Calls)
	}
	l := p.ByFunc["leaf"]
	if l == nil || l.Calls != 5 {
		t.Errorf("leaf calls = %+v, want 5", l)
	}
	if w.Cycles == 0 || w.Instrs == 0 {
		t.Error("no cycles attributed to worker")
	}
	if p.ByFunc["main"] == nil {
		t.Error("main not profiled")
	}
}

func TestProfilerTotalMatchesMachine(t *testing.T) {
	proc, p := bootTraced(t)
	if got, want := p.TotalCycles(), proc.Tasks[0].M.Cycles; got != want {
		t.Errorf("attributed %d cycles, machine counted %d", got, want)
	}
}

func TestProfilerEdges(t *testing.T) {
	_, p := bootTraced(t)
	if p.Edges[[2]string{"main", "worker"}] != 5 {
		t.Errorf("main->worker = %d", p.Edges[[2]string{"main", "worker"}])
	}
	if p.Edges[[2]string{"worker", "leaf"}] != 5 {
		t.Errorf("worker->leaf = %d", p.Edges[[2]string{"worker", "leaf"}])
	}
}

func TestProfilerReport(t *testing.T) {
	_, p := bootTraced(t)
	rep := p.Report()
	for _, want := range []string{"function", "worker", "leaf", "main", "%"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	cg := p.CallGraph()
	if !strings.Contains(cg, "main") || !strings.Contains(cg, "->") {
		t.Errorf("call graph render:\n%s", cg)
	}
}

func TestProfilerChainsExistingTrace(t *testing.T) {
	img := compile.MustCompile(traceProgram(), compile.SchemeNone, compile.DefaultLayout())
	proc := img.MustBoot(kernel.New(pa.DefaultConfig()))
	m := proc.Tasks[0].M
	count := 0
	m.Trace = func(pc uint64, ins isa.Instr) { count++ }
	AttachProfiler(m)
	if err := proc.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Error("previous trace hook was dropped")
	}
}

func TestRecorderKeepsTail(t *testing.T) {
	img := compile.MustCompile(traceProgram(), compile.SchemeNone, compile.DefaultLayout())
	proc := img.MustBoot(kernel.New(pa.DefaultConfig()))
	r := AttachRecorder(proc.Tasks[0].M, 16)
	if err := proc.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	last := r.Last()
	if len(last) != 16 {
		t.Fatalf("recorded %d entries", len(last))
	}
	// The final instruction is the exit SVC in _start.
	tail := last[len(last)-1]
	if tail.Instr.Op != isa.SVC {
		t.Errorf("last recorded = %v", tail.Instr)
	}
	if !strings.Contains(r.Dump(), "SVC") {
		t.Error("dump missing SVC")
	}
}

func TestRecorderPartialFill(t *testing.T) {
	img := compile.MustCompile(traceProgram(), compile.SchemeNone, compile.DefaultLayout())
	proc := img.MustBoot(kernel.New(pa.DefaultConfig()))
	r := AttachRecorder(proc.Tasks[0].M, 1_000_000)
	if err := proc.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if uint64(len(r.Last())) != proc.Tasks[0].M.Instrs {
		t.Errorf("recorded %d, retired %d", len(r.Last()), proc.Tasks[0].M.Instrs)
	}
}

func TestRecorderBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AttachRecorder(nil, 0)
}
