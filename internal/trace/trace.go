// Package trace provides execution observation tools for the
// simulated machine: a flat profiler attributing retired instructions
// and cycles to functions, a dynamic call-graph recorder, and a
// flight recorder keeping the last N instructions for post-mortem
// analysis of faults (which is how most attack experiments end).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"pacstack/internal/cpu"
	"pacstack/internal/isa"
)

// FuncStats accumulates per-function execution counts.
type FuncStats struct {
	Calls  uint64 // activations observed (BL/BLR targets)
	Instrs uint64 // instructions retired while the symbol was current
	Cycles uint64 // cycles attributed likewise
}

// Profiler observes a machine and attributes execution to symbols.
// Attribution is flat (self time): an instruction belongs to the
// function whose symbol covers its PC.
type Profiler struct {
	m       *cpu.Machine
	ByFunc  map[string]*FuncStats
	Edges   map[[2]string]uint64 // dynamic call graph: caller -> callee
	current string
	prev    func(pc uint64, ins isa.Instr)
}

// AttachProfiler hooks a profiler onto m's trace point, chaining any
// existing trace function.
func AttachProfiler(m *cpu.Machine) *Profiler {
	p := &Profiler{
		m:      m,
		ByFunc: make(map[string]*FuncStats),
		Edges:  make(map[[2]string]uint64),
		prev:   m.Trace,
	}
	m.Trace = p.observe
	return p
}

// funcSymbol maps an address to its enclosing function: generated
// internal labels carry a "fn$kind" suffix that is stripped.
func (p *Profiler) funcSymbol(addr uint64) string {
	sym, _ := p.m.Prog.SymbolFor(addr)
	if sym == "" {
		return "?"
	}
	if i := strings.IndexByte(sym, '$'); i >= 0 {
		sym = sym[:i]
	}
	return sym
}

func (p *Profiler) observe(pc uint64, ins isa.Instr) {
	if p.prev != nil {
		p.prev(pc, ins)
	}
	sym := p.funcSymbol(pc)
	fs := p.ByFunc[sym]
	if fs == nil {
		fs = &FuncStats{}
		p.ByFunc[sym] = fs
	}
	fs.Instrs++
	fs.Cycles += uint64(p.m.Cost.Cost(ins.Op))

	switch ins.Op {
	case isa.BL:
		p.recordCall(sym, p.funcSymbol(ins.Target))
	case isa.BLR:
		p.recordCall(sym, p.funcSymbol(p.m.Reg(ins.Rn)))
	}
	p.current = sym
}

func (p *Profiler) recordCall(caller, callee string) {
	if callee == "" {
		callee = "?"
	}
	fs := p.ByFunc[callee]
	if fs == nil {
		fs = &FuncStats{}
		p.ByFunc[callee] = fs
	}
	fs.Calls++
	p.Edges[[2]string{caller, callee}]++
}

// TotalCycles sums attributed cycles.
func (p *Profiler) TotalCycles() uint64 {
	var t uint64
	for _, fs := range p.ByFunc {
		t += fs.Cycles
	}
	return t
}

// Report renders a profile sorted by cycles, with cumulative
// percentages — the classic flat profile.
func (p *Profiler) Report() string {
	type row struct {
		name string
		fs   *FuncStats
	}
	rows := make([]row, 0, len(p.ByFunc))
	for n, fs := range p.ByFunc {
		rows = append(rows, row{n, fs})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].fs.Cycles != rows[j].fs.Cycles {
			return rows[i].fs.Cycles > rows[j].fs.Cycles
		}
		return rows[i].name < rows[j].name
	})
	total := float64(p.TotalCycles())
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %12s %12s %7s\n", "function", "calls", "instrs", "cycles", "%")
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.fs.Cycles) / total
		}
		fmt.Fprintf(&b, "%-24s %10d %12d %12d %6.1f%%\n",
			r.name, r.fs.Calls, r.fs.Instrs, r.fs.Cycles, pct)
	}
	return b.String()
}

// CallGraph renders the dynamic call graph as sorted edges.
func (p *Profiler) CallGraph() string {
	type edge struct {
		from, to string
		n        uint64
	}
	edges := make([]edge, 0, len(p.Edges))
	for k, n := range p.Edges {
		edges = append(edges, edge{k[0], k[1], n})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].n != edges[j].n {
			return edges[i].n > edges[j].n
		}
		return edges[i].from+edges[i].to < edges[j].from+edges[j].to
	})
	var b strings.Builder
	for _, e := range edges {
		fmt.Fprintf(&b, "%-24s -> %-24s %8d\n", e.from, e.to, e.n)
	}
	return b.String()
}

// Recorder is a flight recorder: it keeps the last N retired
// instructions so the run-up to a fault can be inspected.
type Recorder struct {
	m    *cpu.Machine
	ring []Entry
	next int
	full bool
	prev func(pc uint64, ins isa.Instr)
}

// Entry is one recorded instruction.
type Entry struct {
	PC     uint64
	Symbol string
	Offset uint64
	Instr  isa.Instr
}

// AttachRecorder hooks a flight recorder with capacity n onto m.
func AttachRecorder(m *cpu.Machine, n int) *Recorder {
	if n <= 0 {
		panic("trace: recorder capacity must be positive")
	}
	r := &Recorder{m: m, ring: make([]Entry, n), prev: m.Trace}
	m.Trace = r.observe
	return r
}

func (r *Recorder) observe(pc uint64, ins isa.Instr) {
	if r.prev != nil {
		r.prev(pc, ins)
	}
	sym, off := r.m.Prog.SymbolFor(pc)
	r.ring[r.next] = Entry{PC: pc, Symbol: sym, Offset: off, Instr: ins}
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
}

// Last returns the recorded instructions, oldest first.
func (r *Recorder) Last() []Entry {
	if !r.full {
		return append([]Entry(nil), r.ring[:r.next]...)
	}
	out := make([]Entry, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Dump renders the recorded tail.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Last() {
		fmt.Fprintf(&b, "%#08x <%s+%d> %s\n", e.PC, e.Symbol, e.Offset, e.Instr)
	}
	return b.String()
}
